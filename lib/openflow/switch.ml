open Horse_engine
open Horse_emulation
module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge

type metrics = {
  m_packet_ins : Counter.t;
  m_flow_mods : Counter.t;
  g_table : Gauge.t;
  m_micro_hits : Counter.t;
  m_mega_hits : Counter.t;
  m_tss_hits : Counter.t;
  m_lookup_misses : Counter.t;
  m_invalidations : Counter.t;
  g_micro : Gauge.t;
  g_mega : Gauge.t;
}

(* Lookup counters and cache gauges carry a per-switch [dpid] label
   plus the lookup stage as a [table] label, so one scheduler's worth
   of switches no longer aggregates into a single opaque series;
   summing over the labels recovers the old fleet-wide view.
   PACKET_IN / FLOW_MOD totals stay unlabeled fleet aggregates. *)
let make_metrics ~dpid reg =
  let sw = [ ("dpid", string_of_int dpid) ] in
  let staged table = ("table", table) :: sw in
  {
    m_packet_ins =
      Registry.counter reg ~subsystem:"openflow"
        ~help:"PACKET_IN messages sent to the controller" "packet_ins_total";
    m_flow_mods =
      Registry.counter reg ~subsystem:"openflow"
        ~help:"FLOW_MOD messages applied by switches" "flow_mods_total";
    g_table =
      Registry.gauge reg ~subsystem:"openflow" ~labels:sw
        ~help:"Flow-table entries of one switch" "flow_table_entries";
    m_micro_hits =
      Registry.counter reg ~subsystem:"openflow"
        ~labels:(staged "microflow")
        ~help:"Lookups answered by the exact-match microflow cache"
        "microflow_hits_total";
    m_mega_hits =
      Registry.counter reg ~subsystem:"openflow"
        ~labels:(staged "megaflow")
        ~help:"Lookups answered by the wildcarded megaflow cache"
        "megaflow_hits_total";
    m_tss_hits =
      Registry.counter reg ~subsystem:"openflow"
        ~labels:(staged "classifier")
        ~help:"Lookups that fell through to the slow-path classifier and hit"
        "tss_hits_total";
    m_lookup_misses =
      Registry.counter reg ~subsystem:"openflow" ~labels:sw
        ~help:"Lookups no flow entry matched (slow path included)"
        "lookup_misses_total";
    m_invalidations =
      Registry.counter reg ~subsystem:"openflow" ~labels:sw
        ~help:"Microflow/megaflow cache cells dropped by flow_mod or expiry"
        "cache_invalidations_total";
    g_micro =
      Registry.gauge reg ~subsystem:"openflow"
        ~labels:(staged "microflow")
        ~help:"Microflow cache cells of one switch" "microflow_cells";
    g_mega =
      Registry.gauge reg ~subsystem:"openflow"
        ~labels:(staged "megaflow")
        ~help:"Megaflow cache cells of one switch" "megaflow_cells";
  }

(* Last published per-switch values: lookup stats are accumulated
   inside the flow table on the hot path and folded into the shared
   registry as deltas from the expiry timer and flow_mod handler. *)
type snap = {
  mutable p_micro : int;
  mutable p_mega : int;
  mutable p_slow : int;
  mutable p_miss : int;
  mutable p_inv : int;
  mutable p_micro_cells : int;
  mutable p_mega_cells : int;
}

type t = {
  proc : Process.t;
  dpid : int;
  table : Flow_table.t;
  endpoint : Channel.endpoint;
  port_to_link : (int * int) list;
  trace : Trace.t option;
  m : metrics;
  mutable flow_mod_hooks : (Ofmsg.flow_mod -> unit) list;
  mutable packet_out_hooks : (Ofmsg.packet_out -> unit) list;
  mutable expired_hooks : (Flow_table.entry -> unit) list;
  mutable flow_stats_provider : (Flow_table.entry -> int * int) option;
  mutable port_stats_provider : (int -> Ofmsg.port_stats) option;
  mutable packet_ins : int;
  mutable flow_mods : int;
  mutable started : bool;
  down_ports : (int, unit) Hashtbl.t;
  mutable rev_flow_prov : (Ofmsg.flow_mod * Causal.id) list;
  snap : snap;
}

let sync_lookup_metrics t =
  let st = Flow_table.stats t.table in
  let micro_cells, mega_cells = Flow_table.cache_sizes t.table in
  let s = t.snap in
  Counter.add t.m.m_micro_hits (st.Flow_table.micro_hits - s.p_micro);
  Counter.add t.m.m_mega_hits (st.Flow_table.mega_hits - s.p_mega);
  Counter.add t.m.m_tss_hits (st.Flow_table.slow_hits - s.p_slow);
  Counter.add t.m.m_lookup_misses (st.Flow_table.misses - s.p_miss);
  Counter.add t.m.m_invalidations (st.Flow_table.invalidations - s.p_inv);
  Gauge.add t.m.g_micro (float_of_int (micro_cells - s.p_micro_cells));
  Gauge.add t.m.g_mega (float_of_int (mega_cells - s.p_mega_cells));
  s.p_micro <- st.Flow_table.micro_hits;
  s.p_mega <- st.Flow_table.mega_hits;
  s.p_slow <- st.Flow_table.slow_hits;
  s.p_miss <- st.Flow_table.misses;
  s.p_inv <- st.Flow_table.invalidations;
  s.p_micro_cells <- micro_cells;
  s.p_mega_cells <- mega_cells

let now t = Sched.now (Process.scheduler t.proc)

let tracef t fmt =
  match t.trace with
  | Some trace -> Trace.addf trace ~at:(now t) ~label:"ofswitch" fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let send t msg = Channel.send t.endpoint (Ofmsg.encode msg)
let send_xid t xid msg = Channel.send t.endpoint (Ofmsg.encode ~xid msg)

let handle t msg xid =
  match (msg : Ofmsg.t) with
  | Ofmsg.Hello -> ()
  | Ofmsg.Echo_request -> send_xid t xid Ofmsg.Echo_reply
  | Ofmsg.Echo_reply -> ()
  | Ofmsg.Features_request ->
      send_xid t xid
        (Ofmsg.Features_reply
           { dpid = t.dpid; n_ports = List.length t.port_to_link })
  | Ofmsg.Barrier_request -> send_xid t xid Ofmsg.Barrier_reply
  | Ofmsg.Flow_mod fm ->
      t.flow_mods <- t.flow_mods + 1;
      Counter.incr t.m.m_flow_mods;
      Sched.protect_cause (Process.scheduler t.proc) (fun () ->
          let cause =
            Sched.cause_point (Process.scheduler t.proc) ~kind:"of:flow_mod"
              (fun () -> Printf.sprintf "dpid=%d" t.dpid)
          in
          t.rev_flow_prov <- (fm, cause) :: t.rev_flow_prov;
          let before = Flow_table.size t.table in
          Flow_table.apply_flow_mod t.table ~now:(now t) fm;
          Gauge.add t.m.g_table
            (float_of_int (Flow_table.size t.table - before));
          sync_lookup_metrics t;
          tracef t "flow_mod applied (table size %d)" (Flow_table.size t.table);
          List.iter (fun f -> f fm) t.flow_mod_hooks)
  | Ofmsg.Packet_out po -> List.iter (fun f -> f po) t.packet_out_hooks
  | Ofmsg.Stats_request (Ofmsg.Flow_stats_req m) ->
      let entries = Flow_table.matching_entries t.table m in
      let stats =
        List.map
          (fun (e : Flow_table.entry) ->
            let packets, bytes =
              match t.flow_stats_provider with
              | Some provider -> provider e
              | None -> (e.Flow_table.packets, e.Flow_table.bytes)
            in
            {
              Ofmsg.fs_match = e.Flow_table.match_;
              fs_priority = e.Flow_table.priority;
              fs_cookie = e.Flow_table.cookie;
              fs_packets = packets;
              fs_bytes = bytes;
              fs_duration_s =
                int_of_float
                  (Time.to_sec (Time.sub (now t) e.Flow_table.installed_at));
              fs_actions = e.Flow_table.actions;
            })
          entries
      in
      send_xid t xid (Ofmsg.Stats_reply (Ofmsg.Flow_stats_rep stats))
  | Ofmsg.Stats_request (Ofmsg.Port_stats_req port) ->
      let wanted =
        if port = 0xFFFF then List.map fst t.port_to_link else [ port ]
      in
      let stats =
        List.map
          (fun p ->
            match t.port_stats_provider with
            | Some provider -> provider p
            | None ->
                {
                  Ofmsg.ps_port = p;
                  ps_rx_packets = 0;
                  ps_tx_packets = 0;
                  ps_rx_bytes = 0;
                  ps_tx_bytes = 0;
                })
          wanted
      in
      send_xid t xid (Ofmsg.Stats_reply (Ofmsg.Port_stats_rep stats))
  | Ofmsg.Features_reply _ | Ofmsg.Packet_in _ | Ofmsg.Stats_reply _
  | Ofmsg.Port_status _ | Ofmsg.Barrier_reply ->
      (* Controller-to-switch direction only; a controller never sends
         these. Ignore rather than fail, as a real agent would. *)
      ()

let receive t bytes =
  if Process.is_alive t.proc then
    match Ofmsg.decode bytes with
    | Ok (msg, xid) -> handle t msg xid
    | Error err -> tracef t "decode error: %s" err

let create ?trace ?classifier proc ~dpid ~ports endpoint =
  let port_numbers = List.map fst ports in
  if List.length (List.sort_uniq Int.compare port_numbers) <> List.length ports
  then invalid_arg "Switch.create: duplicate port numbers";
  let t =
    {
      proc;
      dpid;
      table = Flow_table.create ?backend:classifier ();
      endpoint;
      port_to_link = ports;
      trace;
      m = make_metrics ~dpid (Sched.registry (Process.scheduler proc));
      flow_mod_hooks = [];
      packet_out_hooks = [];
      expired_hooks = [];
      flow_stats_provider = None;
      port_stats_provider = None;
      packet_ins = 0;
      flow_mods = 0;
      started = false;
      down_ports = Hashtbl.create 4;
      rev_flow_prov = [];
      snap =
        {
          p_micro = 0;
          p_mega = 0;
          p_slow = 0;
          p_miss = 0;
          p_inv = 0;
          p_micro_cells = 0;
          p_mega_cells = 0;
        };
    }
  in
  Channel.set_receiver endpoint (fun bytes -> receive t bytes);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    send t Ofmsg.Hello;
    ignore
      (Process.every t.proc (Time.of_sec 1.0) (fun () ->
           let gone = Flow_table.expire t.table ~now:(now t) in
           if gone <> [] then
             Gauge.add t.m.g_table (-.float_of_int (List.length gone));
           sync_lookup_metrics t;
           List.iter
             (fun e -> List.iter (fun f -> f e) t.expired_hooks)
             gone))
  end

let dpid t = t.dpid
let table t = t.table
let ports t = t.port_to_link

let is_port_down t port = Hashtbl.mem t.down_ports port

let set_port_down t port =
  if not (Hashtbl.mem t.down_ports port) then begin
    Hashtbl.replace t.down_ports port ();
    tracef t "port %d down" port;
    send t (Ofmsg.Port_status { Ofmsg.pst_reason = 1; pst_port = port })
  end

let set_port_up t port =
  if Hashtbl.mem t.down_ports port then begin
    Hashtbl.remove t.down_ports port;
    tracef t "port %d up" port;
    send t (Ofmsg.Port_status { Ofmsg.pst_reason = 0; pst_port = port })
  end

let link_of_port t port =
  if Hashtbl.mem t.down_ports port then None
  else List.assoc_opt port t.port_to_link

let port_of_link t link =
  List.find_map
    (fun (p, l) -> if l = link then Some p else None)
    t.port_to_link

let lookup t fields = Flow_table.lookup t.table fields

let packet_in t ~in_port ?(reason = 0) data =
  t.packet_ins <- t.packet_ins + 1;
  Counter.incr t.m.m_packet_ins;
  Sched.protect_cause (Process.scheduler t.proc) (fun () ->
      ignore
        (Sched.cause_point (Process.scheduler t.proc) ~kind:"of:packet_in"
           (fun () -> Printf.sprintf "dpid=%d port=%d" t.dpid in_port));
      send t
        (Ofmsg.Packet_in
           {
             buffer_id = 0xFFFFFFFF;
             total_len = Bytes.length data;
             in_port;
             reason;
             data;
           }))

let on_flow_mod t f = t.flow_mod_hooks <- t.flow_mod_hooks @ [ f ]
let on_packet_out t f = t.packet_out_hooks <- t.packet_out_hooks @ [ f ]
let on_expired t f = t.expired_hooks <- t.expired_hooks @ [ f ]
let set_flow_stats_provider t f = t.flow_stats_provider <- Some f
let set_port_stats_provider t f = t.port_stats_provider <- Some f
let packet_ins_sent t = t.packet_ins
let flow_mods_received t = t.flow_mods
let flow_provenance t = List.rev t.rev_flow_prov
