(** Fixed-bucket histograms with logarithmic bucketing and a terminal
    rendering, for latency/FCT distributions.

    An alias of {!Horse_telemetry.Histogram} (where the implementation
    lives so the metrics registry can use it); the types are equal, so
    histograms registered in a telemetry registry and histograms built
    here interoperate. *)

include module type of struct
  include Horse_telemetry.Histogram
end
