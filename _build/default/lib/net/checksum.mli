(** The Internet checksum (RFC 1071).

    The ones'-complement sum of 16-bit big-endian words, complemented.
    Used by the IPv4 header and by the UDP/TCP pseudo-header sums. *)

type accumulator
(** A partial ones'-complement sum, for checksumming discontiguous
    regions (e.g. pseudo-header then payload). *)

val empty : accumulator
(** The sum of nothing. *)

val add_bytes : accumulator -> Bytes.t -> int -> int -> accumulator
(** [add_bytes acc buf off len] folds [len] bytes of [buf] starting at
    [off] into the sum. A trailing odd byte is padded with zero, as the
    RFC specifies — so splitting a region at an odd offset is NOT
    equivalent to summing it whole.
    @raise Invalid_argument if the range is outside [buf]. *)

val add_uint16 : accumulator -> int -> accumulator
(** Folds one 16-bit word (low 16 bits of the argument) into the sum. *)

val finish : accumulator -> int
(** Final checksum: the complement of the folded sum, in [0, 0xFFFF]. *)

val of_bytes : Bytes.t -> int -> int -> int
(** One-shot checksum of a contiguous region. *)

val verify : Bytes.t -> int -> int -> bool
(** [verify buf off len] is [true] iff the region (which must embed its
    own checksum field) sums to a valid value, i.e. the folded sum is
    [0xFFFF]. *)
