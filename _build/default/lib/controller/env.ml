open Horse_net
open Horse_topo

type t = {
  env_topo : Topology.t;
  env_dpid_of_node : int -> int option;
  env_node_of_dpid : int -> int option;
  env_port_of_link : int -> int option;
  mutable trees : (int, Spf.tree) Hashtbl.t;
  mutable ip_index : (Ipv4.t, int) Hashtbl.t option;
  down_links : (int, unit) Hashtbl.t;
}

let create ~topo ~dpid_of_node ~node_of_dpid ~port_of_link () =
  {
    env_topo = topo;
    env_dpid_of_node = dpid_of_node;
    env_node_of_dpid = node_of_dpid;
    env_port_of_link = port_of_link;
    trees = Hashtbl.create 32;
    ip_index = None;
    down_links = Hashtbl.create 8;
  }

let topo t = t.env_topo
let dpid_of_node t = t.env_dpid_of_node
let node_of_dpid t = t.env_node_of_dpid
let port_of_link t = t.env_port_of_link

let ip_index t =
  match t.ip_index with
  | Some index -> index
  | None ->
      let index = Hashtbl.create 64 in
      List.iter
        (fun (n : Topology.node) ->
          match (n.Topology.kind, n.Topology.ip) with
          | Topology.Host, Some ip -> Hashtbl.replace index ip n.Topology.id
          | (Topology.Host | Topology.Switch | Topology.Router), _ -> ())
        (Topology.nodes t.env_topo);
      t.ip_index <- Some index;
      index

let host_of_ip t ip = Hashtbl.find_opt (ip_index t) ip

let link_usable t link_id = not (Hashtbl.mem t.down_links link_id)

let set_link_usable t link_id usable =
  let changed =
    if usable then Hashtbl.mem t.down_links link_id
    else not (Hashtbl.mem t.down_links link_id)
  in
  if changed then begin
    if usable then Hashtbl.remove t.down_links link_id
    else Hashtbl.replace t.down_links link_id ();
    (* Paths through the link are stale. *)
    t.trees <- Hashtbl.create 32
  end

let tree t src =
  match Hashtbl.find_opt t.trees src with
  | Some tr -> tr
  | None ->
      let tr =
        Spf.shortest_tree
          ~usable:(fun (l : Topology.link) -> link_usable t l.Topology.link_id)
          t.env_topo ~src
      in
      Hashtbl.add t.trees src tr;
      tr

let ecmp_paths t ~src ~dst = Spf.ecmp_paths (tree t src) t.env_topo ~dst

let edge_switch_of_host t host =
  List.find_map
    (fun (l : Topology.link) ->
      let peer = Topology.node t.env_topo l.Topology.dst in
      match peer.Topology.kind with
      | Topology.Switch -> Some peer.Topology.id
      | Topology.Host | Topology.Router -> None)
    (Topology.out_links t.env_topo host)

let edge_dpids t =
  let dpids =
    List.filter_map
      (fun (h : Topology.node) ->
        match edge_switch_of_host t h.Topology.id with
        | Some sw -> t.env_dpid_of_node sw
        | None -> None)
      (Topology.hosts t.env_topo)
  in
  List.sort_uniq Int.compare dpids

let invalidate t =
  t.trees <- Hashtbl.create 32;
  t.ip_index <- None
