(* Scheduler fast-path smoke: the down-scaled fault-storm TE scenario
   run twice — eager scheduler (fast_path = false) vs the fast path
   (timing-wheel timers, demand-driven pollers, FTI fast-forward).

   Gates, failing @bench-smoke (and @runtest with it):
   - the fast path makes >= 5x fewer poller invocations;
   - fast-path wall time is no worse than eager (1.5x tolerance
     against timer noise on loaded CI machines);
   - determinism: both runs produce the same mode timeline
     (at/from/to/reason for every transition) and the same final FIB
     fingerprint — fast-forward must be invisible to the experiment.

   Writes both runs' scheduler stats to the path given as argv(1). *)

module Time = Horse_engine.Time
module Sched = Horse_engine.Sched
module Topology = Horse_topo.Topology
module Fat_tree = Horse_topo.Fat_tree
module Scenario = Horse_core.Scenario
module Plan = Horse_faults.Plan
module Json = Horse_telemetry.Json

let tick_budget = 5.0
let wall_tolerance = 1.5

(* The fault_smoke plan: a deterministic flap storm plus a node
   crash/restart, so the run alternates control-plane bursts with the
   quiet FTI windows fast-forward exists for. *)
let plan =
  let ft = Fat_tree.build ~k:4 () in
  let is_switch (n : Topology.node) =
    match n.Topology.kind with
    | Topology.Switch | Topology.Router -> true
    | Topology.Host -> false
  in
  let sites =
    List.filteri
      (fun i _ -> i mod 9 = 0)
      (List.filter_map
         (fun (l : Topology.link) ->
           if l.Topology.link_id < l.Topology.peer then
             let src = Topology.node ft.Fat_tree.topo l.Topology.src in
             let dst = Topology.node ft.Fat_tree.topo l.Topology.dst in
             if is_switch src && is_switch dst then
               Some (src.Topology.name, dst.Topology.name)
             else None
           else None)
         (Topology.links ft.Fat_tree.topo))
  in
  let victim = ft.Fat_tree.aggs.(2).(0).Topology.name in
  let storm =
    Plan.flap_storm ~seed:5 ~sites ~start:(Time.of_sec 5.0)
      ~stop:(Time.of_sec 15.0) ~period:(Time.of_sec 4.0)
      ~down_for:(Time.of_sec 1.0) ()
  in
  {
    storm with
    Plan.events =
      [
        { Plan.at = Time.of_sec 6.0; action = Plan.Node_crash victim };
        { Plan.at = Time.of_sec 12.0; action = Plan.Node_restart victim };
      ];
  }

let run ~fast_path =
  Scenario.run_fat_tree_te ~pods:4 ~te:Scenario.Bgp_ecmp
    ~config:{ Sched.default_config with Sched.fast_path }
    ~faults:plan ~duration:(Time.of_sec 20.0) ()

let timeline (r : Scenario.result) =
  List.map
    (fun (tr : Sched.transition) ->
      ( Time.to_us tr.Sched.at,
        Sched.mode_to_string tr.Sched.from_mode,
        Sched.mode_to_string tr.Sched.to_mode,
        tr.Sched.reason ))
    r.Scenario.sched_stats.Sched.transitions

let run_json (r : Scenario.result) =
  let s = r.Scenario.sched_stats in
  Json.Obj
    [
      ("poller_ticks", Json.Int s.Sched.poller_ticks);
      ("poller_ticks_saved", Json.Int s.Sched.poller_ticks_saved);
      ("fti_increments", Json.Int s.Sched.fti_increments);
      ("fti_increments_skipped", Json.Int s.Sched.fti_increments_skipped);
      ("transitions", Json.Int (List.length s.Sched.transitions));
      ("run_wall_s", Json.Float r.Scenario.run_wall_s);
      ( "fib_fingerprint",
        match r.Scenario.fib_fingerprint with
        | Some f -> Json.String f
        | None -> Json.Null );
    ]

let () =
  let out = Sys.argv.(1) in
  let eager = run ~fast_path:false in
  let fast = run ~fast_path:true in
  let e = eager.Scenario.sched_stats and f = fast.Scenario.sched_stats in
  let ratio =
    float_of_int e.Sched.poller_ticks
    /. float_of_int (max 1 f.Sched.poller_ticks)
  in
  let oc = open_out out in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("eager", run_json eager);
            ("fast", run_json fast);
            ("tick_reduction", Json.Float ratio);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "sched-smoke: poller ticks %d -> %d (%.1fx), %d/%d increments \
     fast-forwarded, wall %.3fs -> %.3fs\n"
    e.Sched.poller_ticks f.Sched.poller_ticks ratio
    f.Sched.fti_increments_skipped f.Sched.fti_increments
    eager.Scenario.run_wall_s fast.Scenario.run_wall_s;
  if ratio < tick_budget then begin
    Printf.eprintf
      "sched-smoke: poller-tick budget missed: %.1fx < %.1fx — wake hints or \
       fast-forward regressed?\n"
      ratio tick_budget;
    exit 1
  end;
  if
    fast.Scenario.run_wall_s
    > (wall_tolerance *. eager.Scenario.run_wall_s) +. 0.05
  then begin
    Printf.eprintf "sched-smoke: fast path slower than eager: %.3fs > %.3fs\n"
      fast.Scenario.run_wall_s eager.Scenario.run_wall_s;
    exit 1
  end;
  if timeline eager <> timeline fast then begin
    Printf.eprintf
      "sched-smoke: mode timeline diverged between eager and fast path\n";
    exit 1
  end;
  if
    eager.Scenario.fib_fingerprint <> fast.Scenario.fib_fingerprint
    || fast.Scenario.fib_fingerprint = None
  then begin
    Printf.eprintf
      "sched-smoke: final FIBs diverged between eager and fast path\n";
    exit 1
  end
