lib/core/p4_fabric.mli: Agent Connection_manager Flow_key Horse_engine Horse_net Horse_p4 Horse_topo Prog Spf Time Topology
