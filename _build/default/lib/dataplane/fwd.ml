open Horse_net

(* One hash table per prefix length; lookup probes lengths from /32
   down to /0, so a miss costs at most 33 probes. *)
type t = {
  by_len : (int32, int list) Hashtbl.t array;  (* index: prefix length *)
  mutable count : int;
}

let create () = { by_len = Array.init 33 (fun _ -> Hashtbl.create 8); count = 0 }

let key p = Ipv4.to_int32 (Prefix.network p)

let set_route t p ~next_hops =
  if next_hops = [] then invalid_arg "Fwd.set_route: empty next-hop set";
  let group = List.sort_uniq Int.compare next_hops in
  let table = t.by_len.(Prefix.length p) in
  if not (Hashtbl.mem table (key p)) then t.count <- t.count + 1;
  Hashtbl.replace table (key p) group

let remove_route t p =
  let table = t.by_len.(Prefix.length p) in
  if Hashtbl.mem table (key p) then begin
    Hashtbl.remove table (key p);
    t.count <- t.count - 1
  end

let lookup t addr =
  let a = Ipv4.to_int32 addr in
  let rec probe len =
    if len < 0 then None
    else
      let masked =
        if len = 0 then 0l else Int32.logand a (Int32.shift_left 0xFFFFFFFFl (32 - len))
      in
      match Hashtbl.find_opt t.by_len.(len) masked with
      | Some group -> Some group
      | None -> probe (len - 1)
  in
  probe 32

let lookup_select t addr ~hash =
  match lookup t addr with
  | None -> None
  | Some [] -> None
  | Some group -> Some (List.nth group (hash mod List.length group))

let routes t =
  let all = ref [] in
  Array.iteri
    (fun len table ->
      Hashtbl.iter
        (fun net group ->
          all := (Prefix.make (Ipv4.of_int32 net) len, group) :: !all)
        table)
    t.by_len;
  List.sort (fun (p, _) (q, _) -> Prefix.compare p q) !all

let route_count t = t.count

let clear t =
  Array.iter Hashtbl.reset t.by_len;
  t.count <- 0

let pp fmt t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline
    (fun fmt (p, group) ->
      Format.fprintf fmt "%a -> links %a" Prefix.pp p
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           Format.pp_print_int)
        group)
    fmt (routes t)
