(** Fixed-bucket histograms with logarithmic bucketing and a terminal
    rendering, for latency/FCT distributions.

    This module lives at the bottom of the dependency stack so the
    telemetry registry can use it; [Horse_stats.Histogram] re-exports
    it unchanged for existing callers. *)

type t

val create_log : ?buckets_per_decade:int -> lo:float -> hi:float -> unit -> t
(** Logarithmic buckets covering [lo, hi] (default 3 buckets per
    decade), plus underflow and overflow buckets.
    @raise Invalid_argument unless [0 < lo < hi]. *)

val add : t -> float -> unit
val add_list : t -> float list -> unit

val empty_like : t -> t
(** A fresh, zeroed histogram with the same bucket layout. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s samples (buckets, under/overflow,
    count and sum) into [dst].
    @raise Invalid_argument when the bucket layouts differ. *)

val count : t -> int
val underflow : t -> int
val overflow : t -> int

val sum : t -> float
(** Sum of every observed value (including under/overflow). *)

val buckets : t -> (float * float * int) list
(** [(lo, hi, count)] per bucket, ascending. *)

val cumulative : t -> (float * int) list
(** Prometheus-style cumulative counts: [(upper_bound, samples <=
    upper_bound)] per bucket edge, ending with [(infinity, count)]. *)

val pp : Format.formatter -> t -> unit
(** Bars scaled to the fullest bucket; empty leading/trailing buckets
    are skipped. *)
