lib/p4/interp.mli: Prog
