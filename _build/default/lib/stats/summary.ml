type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let of_list xs =
  match xs with
  | [] -> { count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
  | first :: _ ->
      let count = List.length xs in
      let sum = List.fold_left ( +. ) 0.0 xs in
      let mean = sum /. float_of_int count in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs in
      let stddev = sqrt (sq /. float_of_int count) in
      let mn = List.fold_left Float.min first xs in
      let mx = List.fold_left Float.max first xs in
      { count; mean; stddev; min = mn; max = mx }

let percentile xs p =
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p outside [0,100]";
  match xs with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then a.(lo)
      else
        let frac = rank -. float_of_int lo in
        (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.count t.mean
    t.stddev t.min t.max
