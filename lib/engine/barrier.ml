(* Deterministic lockstep driver for sharded experiments.

   Time is cut into epochs delimited by barrier instants B_0 < B_1 <
   ... on a fixed grid (multiples of the quantum above the start
   time). During epoch (B_i, B_i+1] every shard runs its own scheduler
   independently — on its own domain when [domains > 1] — and buffers
   any cross-shard work it produces into a per-(src, dst) mailbox. At
   the barrier, with every shard parked, the coordinator drains the
   mailboxes in (src, dst) index order and schedules each item into
   its destination scheduler. Because the items of one mailbox are
   appended by exactly one domain (the source shard's) in its
   deterministic execution order, and the drain order over mailboxes
   is fixed, the destination sees remote work at a virtual time and in
   a sequence that depend only on the experiment — never on how the
   domains interleaved in wall time.

   Causal safety is the conservative-lookahead argument: a message
   posted during epoch (B, B'] carries a delivery time >= send time +
   link latency, and every cross-shard link must have latency >= the
   quantum, so the delivery lands strictly after B' — i.e. in an epoch
   that has not started when the item is drained. Nothing is ever
   delivered into a shard's past. *)

type mailbox = { mutable rev_items : (Time.t * (unit -> unit)) list }

type t = {
  shards : Shard.t array;
  boxes : mailbox array array;  (* [src].(dst) — single writer: src *)
  quantum : Time.t;
  mutable clock : Time.t;  (* last barrier instant *)
  mutable epochs : int;
  mutable jumps : int;  (* epochs extended past one quantum *)
  mutable posted : int;
  mutable delivered : int;
  mutable stop_requested : bool;
}

let create ?(quantum = Time.of_ms 1) shards =
  if Array.length shards = 0 then invalid_arg "Barrier.create: no shards";
  if Time.(quantum <= Time.zero) then
    invalid_arg "Barrier.create: quantum must be positive";
  let n = Array.length shards in
  Array.iteri
    (fun i sh ->
      if Shard.index sh <> i then
        invalid_arg "Barrier.create: shard indices must match positions")
    shards;
  {
    shards;
    boxes =
      Array.init n (fun _ -> Array.init n (fun _ -> { rev_items = [] }));
    quantum;
    clock = Time.zero;
    epochs = 0;
    jumps = 0;
    posted = 0;
    delivered = 0;
    stop_requested = false;
  }

let shards t = t.shards
let n_shards t = Array.length t.shards
let quantum t = t.quantum
let epochs t = t.epochs
let jumps t = t.jumps
let cross_messages t = t.delivered
let now t = t.clock
let stop t = t.stop_requested <- true

(* Called from [src]'s domain while its epoch runs (or from the
   coordinator during setup). No lock: the mailbox has exactly one
   writer per epoch, and the barrier handshake publishes the items to
   the coordinator. *)
let post t ~src ~dst ~at thunk =
  let box = t.boxes.(src).(dst) in
  box.rev_items <- (at, thunk) :: box.rev_items;
  t.posted <- t.posted + 1

(* Drain in fixed (src, dst) order, per-box in send order. Runs on the
   coordinator with every shard parked; [Sched.schedule_at] clamps a
   delivery time the destination already passed (possible only for
   setup-time posts) to its clock. *)
let drain t =
  Array.iteri
    (fun _src row ->
      Array.iteri
        (fun dst box ->
          match box.rev_items with
          | [] -> ()
          | rev ->
              box.rev_items <- [];
              let dst_sched = Shard.sched t.shards.(dst) in
              List.iter
                (fun (at, thunk) ->
                  t.delivered <- t.delivered + 1;
                  ignore (Sched.schedule_at dst_sched at thunk))
                (List.rev rev))
        row)
    t.boxes

(* The next barrier instant: one quantum ahead by default, further —
   but always on the quantum grid, so FTI increments never get clipped
   mid-step — when every shard is provably idle until some later time.
   The grid jump mirrors Sched's own FTI fast-forward one level up. *)
let next_target t ~until =
  let base = Time.min (Time.add t.clock t.quantum) until in
  let t_min =
    Array.fold_left
      (fun acc sh ->
        match Sched.next_activity (Shard.sched sh) with
        | None -> acc
        | Some ta -> (
            match acc with
            | None -> Some ta
            | Some b -> Some (Time.min b ta)))
      None t.shards
  in
  match t_min with
  | None ->
      if Time.(until > base) then t.jumps <- t.jumps + 1;
      until
  | Some ta when Time.(ta <= base) -> base
  | Some ta ->
      let q = Time.to_us t.quantum in
      let k = (Time.to_us ta - Time.to_us t.clock) / q in
      let target = Time.add t.clock (Time.of_us (k * q)) in
      t.jumps <- t.jumps + 1;
      Time.min target until

let any_aborted t =
  Array.exists (fun sh -> Sched.aborted (Shard.sched sh)) t.shards

(* --- sequential vehicle (domains = 1) -------------------------------- *)

let run_epochs_seq t ~until =
  while Time.(t.clock < until) && (not t.stop_requested) && not (any_aborted t)
  do
    let target = next_target t ~until in
    Array.iter
      (fun sh -> ignore (Sched.run ~until:target (Shard.sched sh)))
      t.shards;
    t.clock <- target;
    t.epochs <- t.epochs + 1;
    drain t
  done

(* --- parallel vehicle (domains > 1) ----------------------------------- *)

(* A persistent pool: workers park on a condition variable between
   epochs instead of paying a Domain.spawn per epoch. Worker [w] owns
   shards {s | s mod workers = w}; the coordinator doubles as worker
   0. The mutex handshake is also the memory-model publication point
   for everything a worker wrote during its epoch (shard state and
   mailbox items): the coordinator only reads after the worker's
   finish increment, and workers only resume after the coordinator's
   next broadcast, which happens after the drain. *)
let run_epochs_par t ~until ~workers =
  let n = Array.length t.shards in
  let m = Mutex.create () in
  let cv_start = Condition.create () in
  let cv_done = Condition.create () in
  let generation = ref 0 in
  let target = ref t.clock in
  let finished = ref 0 in
  let quit = ref false in
  let failure : exn option ref = ref None in
  let record_failure e =
    Mutex.lock m;
    if !failure = None then failure := Some e;
    Mutex.unlock m
  in
  let run_share w tgt =
    let i = ref w in
    while !i < n do
      (try ignore (Sched.run ~until:tgt (Shard.sched t.shards.(!i)))
       with e -> record_failure e);
      i := !i + workers
    done
  in
  let worker w () =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock m;
      while !generation = !seen && not !quit do
        Condition.wait cv_start m
      done;
      if !quit then begin
        Mutex.unlock m;
        running := false
      end
      else begin
        seen := !generation;
        let tgt = !target in
        Mutex.unlock m;
        run_share w tgt;
        Mutex.lock m;
        incr finished;
        if !finished = workers - 1 then Condition.signal cv_done;
        Mutex.unlock m
      end
    done
  in
  let domains =
    Array.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  let release () =
    Mutex.lock m;
    quit := true;
    Condition.broadcast cv_start;
    Mutex.unlock m;
    Array.iter Domain.join domains
  in
  Fun.protect ~finally:release (fun () ->
      while
        Time.(t.clock < until)
        && (not t.stop_requested)
        && (not (any_aborted t))
        && !failure = None
      do
        let tgt = next_target t ~until in
        Mutex.lock m;
        target := tgt;
        incr generation;
        finished := 0;
        Condition.broadcast cv_start;
        Mutex.unlock m;
        run_share 0 tgt;
        Mutex.lock m;
        while !finished < workers - 1 do
          Condition.wait cv_done m
        done;
        Mutex.unlock m;
        t.clock <- tgt;
        t.epochs <- t.epochs + 1;
        drain t
      done;
      match !failure with Some e -> raise e | None -> ())

let run ?(domains = 1) ~until t =
  if domains < 1 then invalid_arg "Barrier.run: domains must be >= 1";
  (* Setup-time posts (cross-shard wiring done before the run) land
     before the first epoch. *)
  drain t;
  let workers = min domains (Array.length t.shards) in
  if workers <= 1 then run_epochs_seq t ~until
  else run_epochs_par t ~until ~workers;
  (* Items destined past the horizon: park them in the destination
     queues like any other future event. *)
  drain t
