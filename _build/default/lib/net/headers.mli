(** Protocol header records and their wire codecs.

    Each header module offers [size] (fixed encoded size in bytes, or
    [size_of] when variable), [write buf off t] and
    [read : t Wire.reader]. Checksums are computed by [write] and
    validated by the packet-level decoder in {!Packet}, not here. *)

(** IP protocol numbers used by the library. *)
module Proto : sig
  type t = Icmp | Tcp | Udp | Other of int

  val to_int : t -> int
  val of_int : int -> t
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
end

(** Ethernet II frame header (no 802.1Q support). *)
module Eth : sig
  type ethertype = Ipv4_type | Arp_type | Unknown of int

  type t = { dst : Mac.t; src : Mac.t; ethertype : ethertype }

  val size : int
  (** 14 bytes. *)

  val ethertype_to_int : ethertype -> int
  val ethertype_of_int : int -> ethertype
  val write : Bytes.t -> int -> t -> unit
  val read : t Wire.reader
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** ARP for IPv4 over Ethernet. *)
module Arp : sig
  type op = Request | Reply

  type t = {
    op : op;
    sender_mac : Mac.t;
    sender_ip : Ipv4.t;
    target_mac : Mac.t;
    target_ip : Ipv4.t;
  }

  val size : int
  (** 28 bytes. *)

  val write : Bytes.t -> int -> t -> unit

  val read : t Wire.reader
  (** Fails on non-Ethernet/IPv4 hardware or protocol types and on
      unknown opcodes. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** IPv4 header, options unsupported (IHL is always 5). *)
module Ip : sig
  type t = {
    dscp : int;  (** 6 bits *)
    ident : int;  (** 16 bits *)
    dont_fragment : bool;
    ttl : int;
    proto : Proto.t;
    src : Ipv4.t;
    dst : Ipv4.t;
    total_length : int;  (** header + payload, in bytes *)
  }

  val size : int
  (** 20 bytes (no options). *)

  val write : Bytes.t -> int -> t -> unit
  (** Writes the header with a correct checksum. *)

  val read : t Wire.reader
  (** Fails on version <> 4, IHL <> 5, or bad header checksum. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

val pseudo_header_sum :
  src:Ipv4.t -> dst:Ipv4.t -> proto:Proto.t -> length:int -> Checksum.accumulator
(** Ones'-complement sum of the RFC 768/793 pseudo-header, the common
    prefix of the UDP and TCP checksums. *)

(** UDP header. The checksum covers the RFC 768 pseudo-header and the
    payload; [write_with_checksum] needs both. *)
module Udp : sig
  type t = { src_port : int; dst_port : int; length : int (** incl. header *) }

  val size : int
  (** 8 bytes. *)

  val write_with_checksum :
    Bytes.t -> int -> t -> src:Ipv4.t -> dst:Ipv4.t -> payload_off:int -> unit
  (** Writes the header at [off] and computes the checksum over the
      pseudo-header and [t.length - size] payload bytes which must
      already be present at [payload_off]. *)

  val read : t Wire.reader
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** TCP header (no options; data offset always 5). *)
module Tcp : sig
  type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

  type t = {
    src_port : int;
    dst_port : int;
    seq : int;  (** 32 bits, unsigned *)
    ack_num : int;  (** 32 bits, unsigned *)
    flags : flags;
    window : int;
  }

  val size : int
  (** 20 bytes. *)

  val no_flags : flags

  val write_with_checksum :
    Bytes.t ->
    int ->
    t ->
    src:Ipv4.t ->
    dst:Ipv4.t ->
    payload_off:int ->
    payload_len:int ->
    unit

  val read : t Wire.reader
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
