(* Tests for the causal-tracing layer: the Causal graph itself, the
   scheduler's ambient-cause plumbing, determinism (same seed + plan
   => byte-identical causal-graph hash), zero-cost-off equivalence,
   FIB provenance chains, and the convergence explainer. *)

open Horse_engine
open Horse_topo
open Horse_core

let check = Alcotest.check

(* --- the graph ---------------------------------------------------------- *)

let test_graph_basics () =
  let g = Causal.create () in
  check Alcotest.int "empty" 0 (Causal.length g);
  let a = Causal.node g ~at:Time.zero ~kind:"a" ~detail:(fun () -> "") ~parent:Causal.none in
  let b = Causal.node g ~at:(Time.of_us 5) ~kind:"b" ~detail:(fun () -> "x") ~parent:a in
  let c = Causal.node g ~at:(Time.of_us 9) ~kind:"c" ~detail:(fun () -> "y") ~parent:b in
  check Alcotest.int "three nodes" 3 (Causal.length g);
  check Alcotest.bool "none is none" true (Causal.is_none Causal.none);
  check Alcotest.bool "node is not none" false (Causal.is_none c);
  let chain = Causal.chain g c in
  check Alcotest.int "chain root-first" 3 (List.length chain);
  check (Alcotest.list Alcotest.string) "kinds in order" [ "a"; "b"; "c" ]
    (List.map (fun (i : Causal.info) -> i.Causal.kind) chain);
  (* Foreign / garbage parents degrade to roots, never raise. *)
  let d = Causal.node g ~at:Time.zero ~kind:"d" ~detail:(fun () -> "") ~parent:12345 in
  check Alcotest.int "wild parent becomes root" 1
    (List.length (Causal.chain g d))

let test_graph_cap_drops () =
  let g = Causal.create ~max_nodes:4 () in
  let last = ref Causal.none in
  for i = 0 to 9 do
    last :=
      Causal.node g ~at:(Time.of_us i) ~kind:"k" ~detail:(fun () -> "") ~parent:!last
  done;
  check Alcotest.int "capped" 4 (Causal.length g);
  check Alcotest.int "drops counted" 6 (Causal.dropped g);
  check Alcotest.bool "overflow returns none" true (Causal.is_none !last)

let test_hash_sensitivity () =
  let build details =
    let g = Causal.create () in
    ignore
      (List.fold_left
         (fun parent d ->
           Causal.node g ~at:Time.zero ~kind:"k" ~detail:(fun () -> d) ~parent)
         Causal.none details);
    Causal.hash g
  in
  check Alcotest.string "same content, same hash" (build [ "a"; "b" ])
    (build [ "a"; "b" ]);
  check Alcotest.bool "different content, different hash" true
    (build [ "a"; "b" ] <> build [ "a"; "c" ])

(* --- scheduler plumbing ------------------------------------------------- *)

let test_ambient_cause_propagation () =
  let sched = Sched.create () in
  let seen = ref [] in
  ignore
    (Sched.schedule_at sched (Time.of_ms 1) (fun () ->
         let root = Sched.cause_point sched ~kind:"root" (fun () -> "") in
         (* The action scheduled here must fire under [root] even
            though other events run in between. *)
         ignore
           (Sched.schedule_at sched (Time.of_ms 3) (fun () ->
                let child =
                  Sched.cause_point sched ~kind:"child" (fun () -> "")
                in
                seen := (root, child) :: !seen))));
  ignore
    (Sched.schedule_at sched (Time.of_ms 2) (fun () ->
         ignore (Sched.cause_point sched ~kind:"noise" (fun () -> ""))));
  ignore (Sched.run ~until:(Time.of_ms 10) sched);
  let g = Option.get (Sched.causal sched) in
  match !seen with
  | [ (root, child) ] ->
      let chain = Causal.chain g child in
      check
        (Alcotest.list Alcotest.string)
        "child chains to its scheduling cause, not the interleaved one"
        [ "root"; "child" ]
        (List.map (fun (i : Causal.info) -> i.Causal.kind) chain);
      check Alcotest.int "parent edge" root
        (List.nth chain 1).Causal.parent
  | _ -> Alcotest.fail "child event did not run"

let test_causal_off_is_noop () =
  let sched =
    Sched.create ~config:{ Sched.default_config with Sched.causal = false } ()
  in
  check Alcotest.bool "no graph" true (Sched.causal sched = None);
  let id = Sched.cause_point sched ~kind:"k" (fun () -> assert false) in
  check Alcotest.bool "points are none" true (Causal.is_none id);
  Sched.with_cause sched id (fun () -> ());
  Sched.protect_cause sched (fun () -> ())

(* --- end-to-end determinism -------------------------------------------- *)

let storm_plan =
  let module Plan = Horse_faults.Plan in
  let ft = Fat_tree.build ~k:4 () in
  let is_switch (n : Topology.node) =
    match n.Topology.kind with
    | Topology.Switch | Topology.Router -> true
    | Topology.Host -> false
  in
  let sites =
    List.filteri
      (fun i _ -> i mod 9 = 0)
      (List.filter_map
         (fun (l : Topology.link) ->
           if l.Topology.link_id < l.Topology.peer then
             let src = Topology.node ft.Fat_tree.topo l.Topology.src in
             let dst = Topology.node ft.Fat_tree.topo l.Topology.dst in
             if is_switch src && is_switch dst then
               Some (src.Topology.name, dst.Topology.name)
             else None
           else None)
         (Topology.links ft.Fat_tree.topo))
  in
  Plan.flap_storm ~seed:5 ~sites ~start:(Time.of_sec 2.0)
    ~stop:(Time.of_sec 6.0) ~period:(Time.of_sec 3.0)
    ~down_for:(Time.of_sec 1.0) ()

let run_storm ?(causal = true) ?(plan = storm_plan) () =
  Scenario.run_fat_tree_te ~seed:11
    ~config:{ Sched.default_config with Sched.causal }
    ~faults:plan ~pods:4 ~te:Scenario.Bgp_ecmp ~duration:(Time.of_sec 8.0) ()

let graph_hash (r : Scenario.result) =
  Causal.hash (Option.get r.Scenario.causal)

let test_same_seed_same_hash () =
  let a = run_storm () and b = run_storm () in
  check Alcotest.string "identical causal-graph hash" (graph_hash a)
    (graph_hash b);
  check Alcotest.bool "identical fib fingerprint" true
    (a.Scenario.fib_fingerprint = b.Scenario.fib_fingerprint
    && a.Scenario.fib_fingerprint <> None)

let test_plan_change_changes_hash () =
  let module Plan = Horse_faults.Plan in
  let a = run_storm () in
  let other =
    {
      storm_plan with
      Plan.events =
        [
          {
            Plan.at = Time.of_sec 3.0;
            action = Plan.Node_crash "agg-p2-0";
          };
        ];
    }
  in
  let b = run_storm ~plan:other () in
  check Alcotest.bool "different plan, different hash" true
    (graph_hash a <> graph_hash b)

let test_causal_off_same_results () =
  let on_ = run_storm ~causal:true () and off = run_storm ~causal:false () in
  check Alcotest.bool "tracing must not perturb the experiment" true
    (on_.Scenario.fib_fingerprint = off.Scenario.fib_fingerprint
    && off.Scenario.fib_fingerprint <> None);
  check Alcotest.bool "off has no graph" true (off.Scenario.causal = None);
  check Alcotest.bool "off has provenance entries, all none" true
    (off.Scenario.fib_provenance <> []
    && List.for_all
         (fun (_, _, c) -> Causal.is_none c)
         off.Scenario.fib_provenance)

(* --- provenance + explainer --------------------------------------------- *)

let test_provenance_and_explainer () =
  let r = run_storm () in
  let g = Option.get r.Scenario.causal in
  check Alcotest.bool "provenance is nonempty" true
    (r.Scenario.fib_provenance <> []);
  List.iter
    (fun (node, prefix, cause) ->
      let label =
        Printf.sprintf "%s %s" node (Horse_net.Prefix.to_string prefix)
      in
      check Alcotest.bool (label ^ ": has cause") false (Causal.is_none cause);
      let chain = Causal.chain g cause in
      check Alcotest.bool (label ^ ": nonempty chain") true (chain <> []);
      let last = List.nth chain (List.length chain - 1) in
      check Alcotest.string
        (label ^ ": chain ends at the FIB write")
        "fib:write" last.Causal.kind)
    r.Scenario.fib_provenance;
  let inj = Option.get r.Scenario.injector in
  let attrs =
    Horse_causal.Explain.attribute ~graph:g
      ~provenance:
        (List.map
           (fun (n, p, c) -> (n, Horse_net.Prefix.to_string p, c))
           r.Scenario.fib_provenance)
      ~reconvergence:(Horse_faults.Injector.reconvergence inj)
  in
  check Alcotest.bool "one attribution per reconvergence sample" true
    (List.length attrs
    = List.length (Horse_faults.Injector.reconvergence inj)
    && attrs <> []);
  (* At least one fault must explain with a full critical path that
     starts at the fault and ends at a FIB write. *)
  let explained =
    List.filter
      (fun (a : Horse_causal.Explain.attribution) ->
        match (a.Horse_causal.Explain.critical, List.rev a.critical) with
        | first :: _, last :: _ ->
            String.length first.Causal.kind >= 6
            && String.sub first.Causal.kind 0 6 = "fault:"
            && String.equal last.Causal.kind "fib:write"
            && a.Horse_causal.Explain.hops >= 3
        | _, _ -> false)
      attrs
  in
  check Alcotest.bool "at least one full fault->...->fib chain" true
    (explained <> []);
  List.iter
    (fun (a : Horse_causal.Explain.attribution) ->
      check Alcotest.bool "latency breakdown present" true
        (a.Horse_causal.Explain.per_proto_latency <> []);
      check Alcotest.bool "messages counted" true
        (a.Horse_causal.Explain.messages > 0))
    explained

let () =
  Alcotest.run "horse_causal"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "cap drops" `Quick test_graph_cap_drops;
          Alcotest.test_case "hash sensitivity" `Quick test_hash_sensitivity;
        ] );
      ( "sched",
        [
          Alcotest.test_case "ambient cause propagation" `Quick
            test_ambient_cause_propagation;
          Alcotest.test_case "off is a no-op" `Quick test_causal_off_is_noop;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same hash" `Quick
            test_same_seed_same_hash;
          Alcotest.test_case "plan change changes hash" `Quick
            test_plan_change_changes_hash;
          Alcotest.test_case "off: identical results" `Quick
            test_causal_off_same_results;
        ] );
      ( "explain",
        [
          Alcotest.test_case "provenance chains + explainer" `Quick
            test_provenance_and_explainer;
        ] );
    ]
