lib/p4/prog.ml: Format List Printf Result String
