(** OSPFv2 packets and LSAs with a binary codec (RFC 2328 subset).

    Supported packets: HELLO, LS UPDATE and LS ACK — enough for
    point-to-point adjacencies over reliable emulated channels (no DR
    election, no database-description exchange: a new Full neighbour
    simply receives a flood of the whole LSDB, which converges to the
    same state). Only Router-LSAs exist; stub links carry the
    originated prefixes. Packet checksums use the Internet checksum
    over the whole packet (the RFC excludes the auth field and uses
    Fletcher for LSAs; this simplification is documented here and
    checked by tests). *)

open Horse_net

(** One link advertised inside a Router-LSA. *)
type lsa_link =
  | Point_to_point of { neighbor : Ipv4.t; metric : int }
      (** an adjacency to another router (by router id) *)
  | Stub of { prefix : Prefix.t; metric : int }
      (** an attached prefix *)

type lsa = {
  adv_router : Ipv4.t;  (** originating router id (also the LS id) *)
  seq : int;  (** 32-bit sequence number; higher = newer *)
  links : lsa_link list;
}

val lsa_equal : lsa -> lsa -> bool
val pp_lsa : Format.formatter -> lsa -> unit

type hello = {
  hello_interval_s : int;
  dead_interval_s : int;
  neighbors : Ipv4.t list;  (** router ids heard on this interface *)
}

type t =
  | Hello of hello
  | Ls_update of lsa list
  | Ls_ack of (Ipv4.t * int) list  (** acknowledged (adv_router, seq) *)

val encode : router_id:Ipv4.t -> t -> Bytes.t
(** Serializes with the 24-byte OSPF header (version 2, area 0) and a
    valid packet checksum. *)

val decode : Bytes.t -> (Ipv4.t * t, string) result
(** Returns the sender's router id and the packet. Verifies version,
    length and checksum. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
