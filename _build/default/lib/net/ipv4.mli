(** IPv4 addresses.

    An address is an immutable 32-bit value. All arithmetic treats the
    address as an unsigned integer in network (big-endian) order, so
    [succ (of_string_exn "10.0.0.255") = of_string_exn "10.0.1.0"]. *)

type t
(** An IPv4 address. Structural equality and comparison are meaningful. *)

val of_int32 : int32 -> t
(** [of_int32 n] is the address whose big-endian 32-bit representation
    is [n]. Total: every [int32] is a valid address. *)

val to_int32 : t -> int32
(** [to_int32 a] is the inverse of {!of_int32}. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [0, 255]. *)

val to_octets : t -> int * int * int * int
(** [to_octets a] is the four dotted-quad octets of [a], each in
    [0, 255]. *)

val of_string : string -> t option
(** [of_string s] parses dotted-quad notation ["a.b.c.d"]. Returns
    [None] on any syntax error (wrong number of fields, empty fields,
    non-digits, octets above 255). *)

val of_string_exn : string -> t
(** Like {!of_string}.
    @raise Invalid_argument on parse failure, with the offending
    string in the message. *)

val to_string : t -> string
(** [to_string a] is dotted-quad notation, e.g. ["192.168.0.1"]. *)

val any : t
(** [0.0.0.0]. *)

val broadcast : t
(** [255.255.255.255]. *)

val localhost : t
(** [127.0.0.1]. *)

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val add : t -> int -> t
(** [add a n] offsets [a] by [n] (may be negative), with unsigned
    wrap-around. *)

val diff : t -> t -> int
(** [diff a b] is the unsigned distance [a - b] interpreted in
    [0, 2^32); exact for all inputs on a 64-bit platform. *)

val compare : t -> t -> int
(** Unsigned order: [0.0.0.1 < 128.0.0.0 < 255.255.255.255]. *)

val equal : t -> t -> bool

val hash : t -> int
(** A well-mixed hash suitable for [Hashtbl]. *)

val pp : Format.formatter -> t -> unit
(** Prints dotted-quad notation. *)
