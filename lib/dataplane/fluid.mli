(** The fluid-rate simulated data plane (paper §2: "a simplistic
    simulated data plane that runs a fluid rate traffic model").

    Traffic is a set of {!Flow.t} values. Whenever the flow set, a
    path, or a demand changes, the engine (1) integrates the affected
    flows' delivered bits up to the current virtual time at their old
    rates and (2) reassigns rates by max-min fair share. Between
    changes nothing happens — which is exactly why the hybrid clock
    can leap forward in DES mode while only data-plane traffic is
    active.

    {b Recompute coalescing.} Mutations ({!start_flow}, {!stop_flow},
    {!set_path}) do not solve on the spot: they mark the engine dirty
    and the single pending solve drains at the end of the current
    scheduler instant (via {!Sched.defer}), or lazily on the first
    rate read — so a burst of [k] flow events inside one event batch
    costs one max-min solve, not [k]. The coalescing is observable
    only through the [recomputes_total] vs [recompute_requests_total]
    counters: every read accessor flushes first, so rates are always
    consistent with the full mutation history.

    {b Indexed flow state.} Stopped flows retire out of every scan
    path into completed accumulators; an active table plus per-link
    and per-destination membership indexes make {!find_flow},
    {!link_load}, {!host_rx_rate}, {!total_rx_rate} and the sampler
    proportional to the active (or per-link) flow count. A solve is
    further restricted to the bottleneck-connected component of links
    touched by the changed flows — max-min allocation decomposes
    exactly over connected components of the flow/link sharing graph,
    so rates outside the component are provably unchanged.

    Rate sampling (for the demonstration's aggregate-throughput graph)
    is a periodic simulation event recorded into {!Horse_stats.Series}
    containers. *)

open Horse_net
open Horse_engine
open Horse_topo

type t

type solver =
  | Component
      (** re-solve the dirty connected component from scratch on every
          flush (the pre-delta behaviour, kept for A/B benchmarks) *)
  | Delta
      (** incremental {!Fair_share.Delta} solves: persistent per-link
          bottleneck state, water filling only over links whose
          bottleneck set changed (the default) *)

val create : ?eager:bool -> ?solver:solver -> Sched.t -> Topology.t -> t
(** [~eager:true] restores the pre-coalescing behaviour — one max-min
    solve per mutation, on the spot. Kept so benchmarks can measure
    the coalescing win; experiments should use the default.
    [~solver] picks the rate solver (default {!Delta}); both produce
    max-min fair rates, differing only in per-event solve work. *)

val topology : t -> Topology.t
val scheduler : t -> Sched.t

val start_flow :
  ?demand:float -> ?users:int -> t -> key:Flow_key.t -> path:Spf.path -> Flow.t
(** Starts a flow at the current virtual time. Default demand 1 Gbps.
    An empty path models a locally-delivered (never-constrained)
    flow. [?users] (default 1) makes the flow a {e flow class}: one
    fluid flow standing for that many users, with [demand] the class
    aggregate — the million-user workload unit.
    @raise Invalid_argument on non-positive demand, [users < 1], or a
    discontiguous path. *)

val start_finite_flow :
  ?demand:float ->
  ?users:int ->
  t ->
  key:Flow_key.t ->
  path:Spf.path ->
  size_bits:float ->
  on_complete:(Flow.t -> unit) ->
  Flow.t
(** Like {!start_flow}, but the flow carries a finite volume: once
    [size_bits] have been delivered the engine stops the flow and
    fires [on_complete]. Completion timing is exact under the fluid
    model — the engine re-aims the completion event whenever a rate
    reallocation changes the flow's ETA. Flow completion time is
    [stopped_at - started].
    @raise Invalid_argument on non-positive size. *)

val stop_flow : t -> Flow.t -> unit
(** Integrates, deactivates and removes the flow from the allocation.
    Idempotent. *)

val set_path : t -> Flow.t -> Spf.path -> unit
(** Reroutes the flow (e.g. after a control-plane update); its
    delivered bits are preserved.
    @raise Invalid_argument on a discontiguous path or a stopped
    flow. *)

val active_flows : t -> Flow.t list
(** In start order. *)

val flow_count : t -> int

val find_flow : t -> Flow_key.t -> Flow.t option
(** The active flow with this exact 5-tuple, if any (the newest when
    several share the tuple). O(1) via the key index. *)

val flows_on_link : t -> int -> Flow.t list
(** Active flows whose path crosses the directed link, in start
    order. O(flows on that link) via the membership index. *)

val iter_flows_on_link : t -> int -> (Flow.t -> unit) -> unit
(** Like {!flows_on_link} but allocation-free: no list is built and
    the iteration order is unspecified. The choice for telemetry hot
    paths (e.g. per-port stats providers). *)

val current_rate : t -> Flow.t -> float
(** Allocated rate right now (0 for a stopped flow). *)

val delivered_bits : t -> Flow.t -> float
(** Bits delivered up to the current virtual time (integrates on
    read). *)

val link_load : t -> int -> float
(** Total allocated bps crossing a directed link. *)

val link_utilization : t -> int -> float
(** [link_load / capacity], in [0, 1] for a feasible allocation. *)

val total_rx_rate : t -> float
(** Sum of all active flows' rates — the demonstration's "aggregated
    rate of all flows arriving at the hosts". *)

val host_rx_rate : t -> int -> float
(** Aggregate rate of flows terminating at the given node. *)

val start_sampling : t -> every:Time.t -> unit
(** Begin periodic sampling of the aggregate rx rate (and per-host
    rates) into the series below. Restarting moves the cadence. *)

val stop_sampling : t -> unit

val aggregate_series : t -> Horse_stats.Series.t

val host_series : t -> int -> Horse_stats.Series.t option
(** Per-host series exist once sampling has started and the host has
    terminated at least one flow. *)

val total_delivered_bits : t -> float
(** Bits delivered by all flows ever — active (integrated to now) and
    completed. *)

val completed_flow_count : t -> int
(** Flows that have stopped or completed since creation. *)

val recompute_count : t -> int
(** Max-min solves actually executed. With coalescing this is the
    cost metric; it can be far below {!recompute_requests}. *)

val recompute_requests : t -> int
(** Mutations that asked for a recompute (one per flow
    start/stop/reroute). [recompute_requests / recompute_count] is
    the coalescing ratio the benchmarks report. *)

val active_users : t -> int
(** Users represented by the active flow classes (sum of
    [Flow.users]). *)

val solve_work : t -> int
(** Flows that entered a solve, summed over all solves — the
    solver-work metric the delta benchmarks gate. A component solve
    counts its whole component; a delta solve counts only its scoped
    water fills. *)

val delta_stats : t -> Fair_share.Delta.stats option
(** The incremental solver's counters ([None] under
    {!solver.Component}). *)
