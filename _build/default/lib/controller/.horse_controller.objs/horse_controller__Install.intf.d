lib/controller/install.mli: Controller Env Horse_openflow Horse_topo Ofmatch Spf
