(** The convergence explainer: from causal graph to critical path.

    Joins three per-run artefacts — the {!Horse_engine.Causal} graph,
    the FIB provenance list (which causal node last wrote each FIB
    entry) and the injector's reconvergence samples — to answer, for
    each [horse_faults_reconvergence_seconds] sample, {e which chain
    of events carried the fault to the slowest FIB write}: hop count,
    per-protocol latency breakdown and message count along the
    chain. *)

module Causal = Horse_engine.Causal
module Time = Horse_engine.Time

type attribution = {
  fault_label : string;
  injected_at : Time.t;
  reconverged_at : Time.t;
  fib_writes : int;
      (** FIB entries whose provenance chain passes through this
          fault *)
  hops : int;  (** length of the critical path *)
  critical : Causal.info list;
      (** the attributed chain ending at the latest such FIB write,
          root first; [[]] when no chain reaches the fault (e.g. a
          node crash detected only by hold timers) *)
  per_proto_latency : (string * Time.t) list;
      (** virtual time spent entering each subsystem along the
          critical path, keyed by kind prefix (["chan"], ["bgp"],
          ["fib"], ...), largest first *)
  messages : int;  (** channel hops on the critical path *)
}

val attribute :
  graph:Causal.t ->
  provenance:(string * string * Causal.id) list ->
  reconvergence:(string * Time.t * Time.t) list ->
  attribution list
(** [provenance] is [(node, prefix, cause)] (strings so callers above
    any fabric can use it); [reconvergence] is the injector's
    [(label, injected_at, reconverged_at)] samples. One attribution
    per sample, in sample order. *)

val pp_attribution : Format.formatter -> attribution -> unit
(** The fault header, the critical path one hop per line with per-hop
    latencies, and the per-protocol breakdown. *)

val pp_report : Format.formatter -> attribution list -> unit
(** All attributions under a ["Convergence explanation"] heading;
    prints a note instead when the list is empty. *)
