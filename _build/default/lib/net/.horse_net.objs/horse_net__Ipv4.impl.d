lib/net/ipv4.ml: Char Format Int32 Int64 List Printf String
