open Horse_net

type t = { store : (int32, Ospf_msg.lsa) Hashtbl.t }

let key id = Ipv4.to_int32 id

let create () = { store = Hashtbl.create 32 }

type install_outcome = Newer | Duplicate | Older

let install t (lsa : Ospf_msg.lsa) =
  match Hashtbl.find_opt t.store (key lsa.Ospf_msg.adv_router) with
  | Some existing when existing.Ospf_msg.seq > lsa.Ospf_msg.seq -> Older
  | Some existing when existing.Ospf_msg.seq = lsa.Ospf_msg.seq -> Duplicate
  | Some _ | None ->
      Hashtbl.replace t.store (key lsa.Ospf_msg.adv_router) lsa;
      Newer

let lookup t id = Hashtbl.find_opt t.store (key id)

let lsas t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.store []
  |> List.sort (fun (a : Ospf_msg.lsa) b ->
         Ipv4.compare a.Ospf_msg.adv_router b.Ospf_msg.adv_router)

let size t = Hashtbl.length t.store
let remove t id = Hashtbl.remove t.store (key id)

type route = { prefix : Prefix.t; cost : int; next_hops : Ipv4.t list }

(* Adjacency metric from [a] towards [b], if advertised. *)
let adj_metric (lsa : Ospf_msg.lsa) towards =
  List.find_map
    (function
      | Ospf_msg.Point_to_point { neighbor; metric } when Ipv4.equal neighbor towards
        ->
          Some metric
      | Ospf_msg.Point_to_point _ | Ospf_msg.Stub _ -> None)
    lsa.Ospf_msg.links

let routes t ~self =
  match lookup t self with
  | None -> []
  | Some _root ->
      (* Dijkstra over router ids; dist and first-hop sets. *)
      let dist : (int32, int) Hashtbl.t = Hashtbl.create 32 in
      let hops : (int32, Ipv4.t list) Hashtbl.t = Hashtbl.create 32 in
      let visited : (int32, unit) Hashtbl.t = Hashtbl.create 32 in
      Hashtbl.replace dist (key self) 0;
      Hashtbl.replace hops (key self) [];
      let pick_next () =
        Hashtbl.fold
          (fun k d best ->
            if Hashtbl.mem visited k then best
            else
              match best with
              | Some (_, bd) when bd <= d -> best
              | Some _ | None -> Some (k, d))
          dist None
      in
      let rec loop () =
        match pick_next () with
        | None -> ()
        | Some (uk, du) ->
            Hashtbl.replace visited uk ();
            (match Hashtbl.find_opt t.store uk with
            | None -> ()
            | Some lsa_u ->
                List.iter
                  (function
                    | Ospf_msg.Stub _ -> ()
                    | Ospf_msg.Point_to_point { neighbor = v; metric } -> (
                        (* Two-way check: v must advertise u back. *)
                        let u = Ipv4.of_int32 uk in
                        match Hashtbl.find_opt t.store (key v) with
                        | Some lsa_v when adj_metric lsa_v u <> None ->
                            let nd = du + metric in
                            let first_hops_via =
                              if Ipv4.equal u self then [ v ]
                              else
                                Option.value
                                  (Hashtbl.find_opt hops uk)
                                  ~default:[]
                            in
                            let cur =
                              Option.value
                                (Hashtbl.find_opt dist (key v))
                                ~default:max_int
                            in
                            if nd < cur then begin
                              Hashtbl.replace dist (key v) nd;
                              Hashtbl.replace hops (key v) first_hops_via
                            end
                            else if nd = cur then begin
                              let merged =
                                List.sort_uniq Ipv4.compare
                                  (first_hops_via
                                  @ Option.value
                                      (Hashtbl.find_opt hops (key v))
                                      ~default:[])
                              in
                              Hashtbl.replace hops (key v) merged
                            end
                        | Some _ | None -> ()))
                  lsa_u.Ospf_msg.links);
            loop ()
      in
      loop ();
      (* Attach stub prefixes; equal-cost router attachments merge. *)
      let best : (Prefix.t, int * Ipv4.t list) Hashtbl.t = Hashtbl.create 32 in
      Hashtbl.iter
        (fun rk d ->
          match Hashtbl.find_opt t.store rk with
          | None -> ()
          | Some lsa ->
              List.iter
                (function
                  | Ospf_msg.Point_to_point _ -> ()
                  | Ospf_msg.Stub { prefix; metric } ->
                      if not (Ipv4.equal (Ipv4.of_int32 rk) self) then begin
                        let cost = d + metric in
                        let nh =
                          Option.value (Hashtbl.find_opt hops rk) ~default:[]
                        in
                        match Hashtbl.find_opt best prefix with
                        | Some (c, _) when c < cost -> ()
                        | Some (c, existing) when c = cost ->
                            Hashtbl.replace best prefix
                              (c, List.sort_uniq Ipv4.compare (nh @ existing))
                        | Some _ | None -> Hashtbl.replace best prefix (cost, nh)
                      end)
                lsa.Ospf_msg.links)
        dist;
      Hashtbl.fold
        (fun prefix (cost, next_hops) acc ->
          if next_hops = [] then acc else { prefix; cost; next_hops } :: acc)
        best []
      |> List.sort (fun a b -> Prefix.compare a.prefix b.prefix)
