type expr =
  | Const of int
  | Field of string
  | Param of string
  | Add of expr * expr
  | Xor of expr * expr
  | Mod of expr * expr
  | Hash of string list

type stmt =
  | Set_field of string * expr
  | Drop
  | Forward of expr
  | Count of string

type action_def = {
  action_name : string;
  params : (string * int) list;
  body : stmt list;
}

type match_kind = Exact | Lpm | Ternary

type table_def = {
  table_name : string;
  keys : (string * match_kind) list;
  action_refs : string list;
  default_action : string * int list;
}

type control =
  | Apply of string
  | Seq of control list
  | If of expr * control * control
  | Nop

type t = {
  name : string;
  fields : (string * int) list;
  actions : action_def list;
  tables : table_def list;
  counters : string list;
  pipeline : control;
}

let field_width t name = List.assoc_opt name t.fields

let find_table t name =
  List.find_opt (fun tb -> String.equal tb.table_name name) t.tables

let find_action t name =
  List.find_opt (fun a -> String.equal a.action_name name) t.actions

(* --- validation ------------------------------------------------------ *)

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let unique what names =
  if List.length (List.sort_uniq String.compare names) = List.length names then
    Ok ()
  else err "p4: duplicate %s name" what

let rec check_expr t ~params e =
  match e with
  | Const _ -> Ok ()
  | Field f ->
      if List.mem_assoc f t.fields then Ok () else err "p4: unknown field %s" f
  | Param p ->
      if List.mem_assoc p params then Ok ()
      else err "p4: unknown action parameter %s" p
  | Add (a, b) | Xor (a, b) | Mod (a, b) ->
      let* () = check_expr t ~params a in
      check_expr t ~params b
  | Hash fields ->
      if fields = [] then err "p4: hash of no fields"
      else
        List.fold_left
          (fun acc f ->
            let* () = acc in
            if List.mem_assoc f t.fields then Ok ()
            else err "p4: hash over unknown field %s" f)
          (Ok ()) fields

let check_stmt t ~params = function
  | Set_field (f, e) ->
      if not (List.mem_assoc f t.fields) then err "p4: set of unknown field %s" f
      else check_expr t ~params e
  | Drop -> Ok ()
  | Forward e -> check_expr t ~params e
  | Count c ->
      if List.mem c t.counters then Ok () else err "p4: unknown counter %s" c

let check_action t a =
  List.fold_left
    (fun acc s ->
      let* () = acc in
      check_stmt t ~params:a.params s)
    (Ok ()) a.body

let check_table t tb =
  let* () =
    List.fold_left
      (fun acc (f, _) ->
        let* () = acc in
        if List.mem_assoc f t.fields then Ok ()
        else err "p4: table %s keys unknown field %s" tb.table_name f)
      (Ok ()) tb.keys
  in
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        match find_action t a with
        | Some _ -> Ok ()
        | None -> err "p4: table %s references unknown action %s" tb.table_name a)
      (Ok ()) tb.action_refs
  in
  let name, args = tb.default_action in
  if not (List.mem name tb.action_refs) then
    err "p4: table %s default action %s not permitted" tb.table_name name
  else
    match find_action t name with
    | Some a when List.length a.params = List.length args -> Ok ()
    | Some _ -> err "p4: table %s default action arity mismatch" tb.table_name
    | None -> err "p4: unknown default action %s" name

let rec check_control t = function
  | Nop -> Ok ()
  | Apply name -> (
      match find_table t name with
      | Some _ -> Ok ()
      | None -> err "p4: pipeline applies unknown table %s" name)
  | Seq cs ->
      List.fold_left
        (fun acc c ->
          let* () = acc in
          check_control t c)
        (Ok ()) cs
  | If (cond, yes, no) ->
      let* () = check_expr t ~params:[] cond in
      let* () = check_control t yes in
      check_control t no

let validate t =
  let* () = unique "field" (List.map fst t.fields) in
  let* () = unique "action" (List.map (fun a -> a.action_name) t.actions) in
  let* () = unique "table" (List.map (fun tb -> tb.table_name) t.tables) in
  let* () = unique "counter" t.counters in
  let* () =
    List.fold_left
      (fun acc (f, w) ->
        let* () = acc in
        if w >= 1 && w <= 62 then Ok ()
        else err "p4: field %s width %d outside [1,62]" f w)
      (Ok ()) t.fields
  in
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        check_action t a)
      (Ok ()) t.actions
  in
  let* () =
    List.fold_left
      (fun acc tb ->
        let* () = acc in
        check_table t tb)
      (Ok ()) t.tables
  in
  check_control t t.pipeline

(* --- pretty printing ------------------------------------------------- *)

let rec pp_expr fmt = function
  | Const n -> Format.pp_print_int fmt n
  | Field f -> Format.fprintf fmt "meta.%s" f
  | Param p -> Format.pp_print_string fmt p
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | Xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp_expr a pp_expr b
  | Mod (a, b) -> Format.fprintf fmt "(%a %% %a)" pp_expr a pp_expr b
  | Hash fs -> Format.fprintf fmt "hash(%s)" (String.concat ", " fs)

let pp_stmt fmt = function
  | Set_field (f, e) -> Format.fprintf fmt "meta.%s = %a;" f pp_expr e
  | Drop -> Format.pp_print_string fmt "mark_to_drop();"
  | Forward e -> Format.fprintf fmt "standard_metadata.egress_spec = %a;" pp_expr e
  | Count c -> Format.fprintf fmt "%s.count();" c

let pp_kind fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Lpm -> Format.pp_print_string fmt "lpm"
  | Ternary -> Format.pp_print_string fmt "ternary"

let rec pp_control fmt = function
  | Nop -> Format.pp_print_string fmt "/* nop */"
  | Apply name -> Format.fprintf fmt "%s.apply();" name
  | Seq cs ->
      Format.pp_print_list ~pp_sep:Format.pp_print_space pp_control fmt cs
  | If (c, y, n) ->
      Format.fprintf fmt "if (%a != 0) { %a } else { %a }" pp_expr c pp_control
        y pp_control n

let pp fmt t =
  Format.fprintf fmt "@[<v>// program %s@," t.name;
  List.iter (fun (f, w) -> Format.fprintf fmt "bit<%d> %s;@," w f) t.fields;
  List.iter
    (fun a ->
      Format.fprintf fmt "action %s(%s) {@," a.action_name
        (String.concat ", "
           (List.map (fun (p, w) -> Printf.sprintf "bit<%d> %s" w p) a.params));
      List.iter (fun s -> Format.fprintf fmt "  %a@," pp_stmt s) a.body;
      Format.fprintf fmt "}@,")
    t.actions;
  List.iter
    (fun tb ->
      Format.fprintf fmt "table %s {@,  key = {" tb.table_name;
      List.iter
        (fun (f, k) -> Format.fprintf fmt " meta.%s: %a;" f pp_kind k)
        tb.keys;
      Format.fprintf fmt " }@,  actions = { %s }@,}@,"
        (String.concat "; " tb.action_refs))
    t.tables;
  Format.fprintf fmt "apply { %a }@]" pp_control t.pipeline

(* --- the demonstration's router, in P4 ------------------------------- *)

let ecmp_router =
  {
    name = "ecmp_router";
    fields =
      [
        ("dst", 32);
        ("src", 32);
        ("sport", 16);
        ("dport", 16);
        ("proto", 8);
        ("group", 16);
        ("member", 16);
      ];
    actions =
      [
        {
          action_name = "forward";
          params = [ ("port", 16) ];
          body = [ Count "routed"; Forward (Param "port") ];
        };
        {
          action_name = "set_group";
          params = [ ("gid", 16); ("size", 16) ];
          body =
            [
              Set_field ("group", Param "gid");
              Set_field
                ( "member",
                  Mod (Hash [ "src"; "dst"; "proto"; "sport"; "dport" ], Param "size")
                );
            ];
        };
        { action_name = "discard"; params = []; body = [ Drop ] };
      ];
    tables =
      [
        {
          table_name = "ipv4_lpm";
          keys = [ ("dst", Lpm) ];
          action_refs = [ "forward"; "set_group"; "discard" ];
          default_action = ("discard", []);
        };
        {
          table_name = "ecmp_select";
          keys = [ ("group", Exact); ("member", Exact) ];
          action_refs = [ "forward"; "discard" ];
          default_action = ("discard", []);
        };
      ];
    counters = [ "routed" ];
    pipeline =
      Seq
        [
          Apply "ipv4_lpm";
          If (Field "group", Apply "ecmp_select", Nop);
        ];
  }
