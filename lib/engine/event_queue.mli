(** The simulator's pending-event set: a hierarchical timing wheel
    (3 levels x 256 slots at 2^10/2^18/2^26 us granularity) fronted by
    a due-heap and backed by an overflow heap for the far future.

    The observable contract is unchanged from the binary-heap
    original (kept as {!Heap_queue} for the differential suite): pops
    come in (timestamp, insertion sequence number) order, so two
    events at the same timestamp execute in insertion order and runs
    stay deterministic. Scheduling in the past is the caller's
    responsibility: the queue itself is time-agnostic and will happily
    return such an event first.

    Cancellation is O(1) lazy: a cancelled event stays bucketed but is
    dropped when its slot cascades or it surfaces in a heap, and live
    counts are maintained at cancel time so {!size} is O(1). Insertion
    is O(1) (no sift), and {!reschedule} re-aims a timer in place —
    the cancel + reinsert that keepalive/hold/MRAI re-arming used to
    pay on the heap becomes two O(1) bucket operations. *)

type t
(** A mutable event queue. *)

type handle
(** Names one scheduled event, for cancellation and re-aiming. *)

val create : unit -> t

val schedule : t -> ?cause:int -> Time.t -> (unit -> unit) -> handle
(** [schedule q at action] enqueues [action] to run at virtual time
    [at]. *)

val cancel : handle -> unit
(** Idempotent. A cancelled event never runs. *)

val is_cancelled : handle -> bool

val reschedule : handle -> Time.t -> unit
(** [reschedule h at] re-aims [h]'s event at [at], reusing its action.
    Equivalent to cancel + schedule — the event takes a fresh sequence
    number, so among same-timestamp peers it runs after events already
    scheduled there — but without growing the handle graph. An event
    that already fired or was cancelled is re-armed. *)

val size : t -> int
(** Number of live (non-cancelled) events. O(1). *)

val is_empty : t -> bool

val next_time : t -> Time.t option
(** Timestamp of the earliest live event, without removing it. *)

val pop : t -> (Time.t * (unit -> unit) * int) option
(** Removes and returns the earliest live event. *)

val pop_until : t -> Time.t -> (Time.t * (unit -> unit) * int) option
(** Like {!pop} but only if the earliest live event is at or before
    the given time. *)

val clear : t -> unit

type occupancy = {
  occ_due : int;  (** live events in the due heap (before [base]) *)
  occ_levels : int array;  (** live timers per wheel level, finest first *)
  occ_overflow : int;  (** live timers beyond the wheel horizon *)
}

val occupancy : t -> occupancy
(** A point-in-time census of where live events sit — the source for
    the [horse_sched_wheel_occupancy{level}] and
    [horse_sched_overflow_heap_size] gauges. O(levels). *)
