lib/openflow/switch.ml: Bytes Channel Flow_table Format Hashtbl Horse_emulation Horse_engine Int List Ofmsg Process Sched Time Trace
