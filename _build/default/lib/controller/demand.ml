type flow = { src : int; dst : int; tag : int }

type cell = {
  flow : flow;
  mutable demand : float;
  mutable converged : bool;  (* receiver-limited *)
}

let group_by key flows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let k = key c.flow in
      Hashtbl.replace tbl k (c :: Option.value (Hashtbl.find_opt tbl k) ~default:[]))
    flows;
  tbl

let estimate ?(max_iters = 100) flows =
  let cells =
    List.map (fun flow -> { flow; demand = 0.0; converged = false }) flows
  in
  let by_src = group_by (fun f -> f.src) cells in
  let by_dst = group_by (fun f -> f.dst) cells in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < max_iters do
    changed := false;
    incr iters;
    (* Source pass: spread each sender's spare capacity over its
       unconverged flows. *)
    Hashtbl.iter
      (fun _src outgoing ->
        let converged_demand =
          List.fold_left
            (fun acc c -> if c.converged then acc +. c.demand else acc)
            0.0 outgoing
        in
        let unconverged = List.filter (fun c -> not c.converged) outgoing in
        match unconverged with
        | [] -> ()
        | _ :: _ ->
            let share =
              Float.max 0.0 (1.0 -. converged_demand)
              /. float_of_int (List.length unconverged)
            in
            List.iter
              (fun c ->
                if Float.abs (c.demand -. share) > 1e-12 then begin
                  c.demand <- share;
                  changed := true
                end)
              unconverged)
      by_src;
    (* Receiver pass: water-fill each overloaded receiver; flows cut
       down by the receiver become converged. *)
    Hashtbl.iter
      (fun _dst incoming ->
        let total = List.fold_left (fun acc c -> acc +. c.demand) 0.0 incoming in
        if total > 1.0 +. 1e-12 then begin
          (* Iteratively exempt flows smaller than the equal share. *)
          let sorted =
            List.sort (fun a b -> Float.compare a.demand b.demand) incoming
          in
          let rec fill remaining_cap = function
            | [] -> ()
            | (c :: rest : cell list) ->
                let n = List.length (c :: rest) in
                let share = remaining_cap /. float_of_int n in
                if c.demand <= share +. 1e-12 then begin
                  (* small flow keeps its demand *)
                  fill (remaining_cap -. c.demand) rest
                end
                else
                  (* every remaining flow is capped at the share *)
                  List.iter
                    (fun c ->
                      if (not c.converged) || Float.abs (c.demand -. share) > 1e-12
                      then begin
                        c.demand <- share;
                        c.converged <- true;
                        changed := true
                      end)
                    (c :: rest)
          in
          fill 1.0 sorted
        end)
      by_dst
  done;
  List.map (fun c -> (c.flow, c.demand)) cells

let big_flows ?(threshold = 0.1) estimated =
  List.filter (fun (_, d) -> d >= threshold) estimated
