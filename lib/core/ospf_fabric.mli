(** An OSPF-routed fabric: one emulated OSPF daemon per switch/router
    node, point-to-point adjacencies over every inter-switch link, and
    shortest-path routes installed into per-node forwarding tables.

    The OSPF counterpart of {!Routed_fabric} — same data-plane
    contract (static host routes, FIB walk with ECMP hashing), but a
    link-state control plane whose periodic HELLOs keep pulling the
    hybrid clock back into FTI mode even after convergence, which
    makes it a useful contrast experiment (see the [protocols] bench
    section). *)

open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane
open Horse_emulation
open Horse_ospf

type t

val build :
  ?hello_interval:Time.t ->
  ?dead_interval:Time.t ->
  cm:Connection_manager.t ->
  originate:(int -> (Prefix.t * int) list) ->
  Topology.t ->
  t
(** [originate node] lists (prefix, metric) stubs the daemon on that
    node advertises. Defaults: hello 2 s, dead 8 s. Daemons are
    created but not started. *)

val start : t -> unit

val topo : t -> Topology.t
val daemons : t -> (int * Daemon.t) list
val daemon : t -> int -> Daemon.t option
val table : t -> int -> Fwd.t
val all_prefixes : t -> Prefix.t list

val is_converged : t -> bool
(** Every daemon has a route to every stub prefix it does not itself
    originate. *)

val when_converged : ?check_every:Time.t -> t -> (unit -> unit) -> unit

val path_for :
  ?hash:(Flow_key.t -> int) -> t -> Flow_key.t -> (Spf.path, string) result

val adjacencies_expected : t -> int
val adjacencies_full : t -> int
(** Counted per direction over 2 (a Full adjacency needs both ends). *)

val fail_link : t -> a:int -> b:int -> bool
(** Cuts the control channel between two adjacent daemons; both ends
    see the closure, drop the adjacency, re-originate their LSAs and
    reconverge around the link. *)

val restore_link : t -> a:int -> b:int -> bool
(** Re-creates the control channel of a previously failed link and
    rebinds both daemons' interfaces to it; hellos resume immediately
    and the adjacency re-forms through the normal Init → TwoWay → Full
    progression. Returns [false] if no session exists between the
    nodes or the link is not failed. *)

val crash_node : t -> int -> bool
(** Kills the node's daemon process — silent on the wire; neighbours
    notice via their dead intervals. [false] if the node has no daemon
    or is already dead. *)

val restart_node : t -> int -> bool
(** Respawns a crashed daemon: it re-originates its LSA and resumes
    hellos on every interface. [false] unless the node is currently
    crashed. *)

val impair_link :
  t -> a:int -> b:int -> rng:Rng.t -> Channel.impairment option -> bool
(** Applies ([Some]) or clears ([None]) a channel impairment on the
    link between the nodes. *)

val fault_target : t -> Horse_faults.Injector.target
(** The fabric as a fault-injection target (node names resolve via the
    topology). [session_reset] is unsupported (OSPF adjacencies have
    no administrative reset here) and reports the fault as skipped;
    [converged] means every adjacency Full and every routing table
    complete. *)
