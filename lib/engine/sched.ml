module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge

type mode = Des | Fti

let mode_to_string = function Des -> "DES" | Fti -> "FTI"
let pp_mode fmt m = Format.pp_print_string fmt (mode_to_string m)

type config = {
  fti_increment : Time.t;
  quiet_timeout : Time.t;
  start_in_fti : bool;
  fti_pacing : float;
  max_wall_s : float;
  fast_path : bool;
  causal : bool;
  profile : bool;
}

let default_config =
  {
    fti_increment = Time.of_ms 1;
    quiet_timeout = Time.of_sec 1.0;
    start_in_fti = false;
    fti_pacing = 0.0;
    max_wall_s = 0.0;
    fast_path = true;
    causal = true;
    profile = false;
  }

type transition = {
  at : Time.t;
  wall : float;
  from_mode : mode;
  to_mode : mode;
  reason : string;
}

type stats = {
  events_executed : int;
  fti_increments : int;
  fti_increments_skipped : int;
  poller_ticks : int;
  poller_ticks_saved : int;
  transitions : transition list;
  virtual_in_fti : Time.t;
  virtual_in_des : Time.t;
  wall_in_fti : float;
  wall_in_des : float;
  wall_total : float;
  end_time : Time.t;
  aborted : bool;
}

(* The scheduler's own bookkeeping lives in the telemetry registry;
   {!stats} is a view over these metrics. Virtual residency is kept
   exactly in integer-microsecond counters, with float-second gauges
   mirrored for exporters. *)
type metrics = {
  m_events : Counter.t;
  m_fti_increments : Counter.t;
  m_fti_skipped : Counter.t;
  m_poller_ticks : Counter.t;
  m_poller_saved : Counter.t;
  m_transitions : Counter.t;
  m_virt_des_us : Counter.t;
  m_virt_fti_us : Counter.t;
  g_virt_des_s : Gauge.t;
  g_virt_fti_s : Gauge.t;
  g_wall_des_s : Gauge.t;
  g_wall_fti_s : Gauge.t;
  g_wall_total_s : Gauge.t;
  g_mode : Gauge.t;
  g_end_time_s : Gauge.t;
  m_watchdog_aborts : Counter.t;
  h_fti_wall : Horse_telemetry.Histogram.t;
  m_ff_us : Counter.t;
}

let make_metrics reg =
  let counter = Registry.counter reg ~subsystem:"sched" in
  let gauge = Registry.gauge reg ~subsystem:"sched" in
  {
    m_events =
      counter ~help:"Events executed by the hybrid scheduler" "events_total";
    m_fti_increments =
      counter ~help:"Fixed-time increments stepped (including fast-forwarded)"
        "fti_increments_total";
    m_fti_skipped =
      counter
        ~help:"FTI increments covered by fast-forward instead of stepping"
        "fti_increments_skipped_total";
    m_poller_ticks =
      counter ~help:"Poller invocations across FTI increments"
        "poller_ticks_total";
    m_poller_saved =
      counter ~help:"Poller invocations avoided by dozing and fast-forward"
        "poller_ticks_saved_total";
    m_transitions =
      counter ~help:"DES<->FTI mode transitions" "transitions_total";
    m_virt_des_us =
      counter ~help:"Virtual time spent in DES mode, microseconds"
        "virtual_in_des_us_total";
    m_virt_fti_us =
      counter ~help:"Virtual time spent in FTI mode, microseconds"
        "virtual_in_fti_us_total";
    g_virt_des_s =
      gauge ~help:"Virtual time spent in DES mode, seconds"
        "virtual_in_des_seconds";
    g_virt_fti_s =
      gauge ~help:"Virtual time spent in FTI mode, seconds"
        "virtual_in_fti_seconds";
    g_wall_des_s =
      gauge ~help:"Wall time spent in DES mode, seconds" "wall_in_des_seconds";
    g_wall_fti_s =
      gauge ~help:"Wall time spent in FTI mode, seconds" "wall_in_fti_seconds";
    g_wall_total_s =
      gauge ~help:"Wall time spent inside Sched.run, seconds"
        "wall_total_seconds";
    g_mode = gauge ~help:"Current execution mode (0 = DES, 1 = FTI)" "mode";
    g_end_time_s =
      gauge ~help:"Virtual clock at the last snapshot, seconds"
        "end_time_seconds";
    m_watchdog_aborts =
      counter ~help:"Runs aborted by the wall-clock watchdog"
        "watchdog_aborts_total";
    h_fti_wall =
      Registry.histogram reg ~subsystem:"sched"
        ~help:"Wall-clock cost of one FTI increment, seconds" ~lo:1e-7 ~hi:1.0
        "fti_increment_wall_seconds";
    m_ff_us =
      counter
        ~help:"Virtual microseconds covered by FTI fast-forward (wall saved \
               in proportion)"
        "fast_forwarded_us_total";
  }

type wake_hint = Wake_at of Time.t | Wake_on_input | Always

type t = {
  cfg : config;
  queue : Event_queue.t;
  reg : Registry.t;
  m : metrics;
  mutable clock : Time.t;
  mutable cur_mode : mode;
  mutable last_activity : Time.t;
  mutable running : bool;
  mutable stop_requested : bool;
  pollers : poller Hooks.t;
  mutable runnable_pollers : int;
  mutable rev_transitions : transition list;
  mutable run_start_wall : float;
  mutable abort_flag : bool;
  mutable rev_abort_hooks : (unit -> unit) list;
  deferred : (unit -> unit) Queue.t;
  causal_g : Causal.t option;
  mutable cur_cause : Causal.id;
}

and poller = {
  pfn : unit -> wake_hint;
  owner : t;
  pname : string;
  phist : Horse_telemetry.Histogram.t option;
  mutable runnable : bool;
  mutable wake_ev : Event_queue.handle option;
}

let gauge_of_mode = function Des -> 0.0 | Fti -> 1.0

let create ?(config = default_config) ?registry () =
  let reg =
    match registry with Some reg -> reg | None -> Registry.create ()
  in
  let m = make_metrics reg in
  let cur_mode = if config.start_in_fti then Fti else Des in
  Gauge.set m.g_mode (gauge_of_mode cur_mode);
  {
    cfg = config;
    queue = Event_queue.create ();
    reg;
    m;
    clock = Time.zero;
    cur_mode;
    last_activity = Time.zero;
    running = false;
    stop_requested = false;
    pollers = Hooks.create ();
    runnable_pollers = 0;
    rev_transitions = [];
    run_start_wall = Wall.now ();
    abort_flag = false;
    rev_abort_hooks = [];
    deferred = Queue.create ();
    causal_g = (if config.causal then Some (Causal.create ()) else None);
    cur_cause = Causal.none;
  }

let config t = t.cfg
let now t = t.clock
let mode t = t.cur_mode
let registry t = t.reg

(* --- causal tracing ---------------------------------------------------- *)

let causal t = t.causal_g
let current_cause t = t.cur_cause

(* The ambient cause travels with scheduled work: an action wrapped at
   schedule time re-establishes the cause that was ambient when it was
   scheduled, so timers, deferred recomputes and delayed deliveries
   inherit their trigger's provenance with no per-callsite wiring.
   With tracing off the action is returned untouched — zero cost. *)
let wrap_cause t action =
  match t.causal_g with
  | None -> action
  | Some _ ->
      let cause = t.cur_cause in
      fun () ->
        let saved = t.cur_cause in
        t.cur_cause <- cause;
        action ();
        t.cur_cause <- saved

let cause_point t ~kind detail =
  match t.causal_g with
  | None -> Causal.none
  | Some g ->
      let id =
        Causal.node g ~at:t.clock ~kind ~detail
          ~parent:t.cur_cause
      in
      t.cur_cause <- id;
      id

(* Hand-rolled save/restore rather than [Fun.protect]: these brackets
   wrap every channel send and routing decision, and Fun.protect's
   finally-closure allocation is measurable there. *)
let with_cause t id f =
  match t.causal_g with
  | None -> f ()
  | Some _ -> (
      let saved = t.cur_cause in
      t.cur_cause <- id;
      match f () with
      | x ->
          t.cur_cause <- saved;
          x
      | exception e ->
          t.cur_cause <- saved;
          raise e)

let protect_cause t f =
  match t.causal_g with
  | None -> f ()
  | Some _ -> (
      let saved = t.cur_cause in
      match f () with
      | x ->
          t.cur_cause <- saved;
          x
      | exception e ->
          t.cur_cause <- saved;
          raise e)

let with_span t ~name f =
  Horse_telemetry.Span.with_span
    (Horse_telemetry.Registry.spans t.reg)
    ~name
    ~now_us:(fun () -> Int64.of_int (Time.to_us t.clock))
    f

(* End-of-instant work queue: callbacks registered here run before the
   virtual clock advances past the current instant (and before [run]
   returns). Subsystems use it to coalesce work triggered many times
   inside one event batch — e.g. the fluid data plane folds a burst of
   k flow starts into one fair-share solve. Callbacks may defer again;
   everything drains before time moves. *)
let defer t f = Queue.add (wrap_cause t f) t.deferred

let has_deferred t = not (Queue.is_empty t.deferred)

let flush_deferred t =
  while not (Queue.is_empty t.deferred) do
    (Queue.pop t.deferred) ()
  done

(* The ambient cause rides in the entry itself rather than in a
   wrapping closure: closures stored in the timing wheel survive until
   fire time, so they get promoted out of the minor heap — measurably
   the dominant cost of tracing on storm runs. The pop sites restore
   the cause before running the action. *)
let schedule_at t at action =
  Event_queue.schedule t.queue ~cause:t.cur_cause (Time.max at t.clock) action

let schedule_after t delay action =
  schedule_at t (Time.add t.clock delay) action

let cancel = Event_queue.cancel

let reschedule t h at = Event_queue.reschedule h (Time.max at t.clock)

type recurring = {
  mutable cancelled : bool;
  mutable pending : Event_queue.handle option;
}

(* One event handle per recurring timer, re-aimed in place after each
   firing — the wheel makes that O(1), where cancel + reinsert on the
   old heap cost two O(log n) sifts per period. *)
let every t ?start_after period f =
  if Time.(period <= Time.zero) then
    invalid_arg "Sched.every: period must be positive";
  let first_delay = Option.value start_after ~default:period in
  let r = { cancelled = false; pending = None } in
  let at = ref (Time.add t.clock first_delay) in
  let fire () =
    f ();
    if not r.cancelled then begin
      (* Anchor the cadence on scheduled times, not execution times,
         so periods never drift. *)
      at := Time.add !at period;
      match r.pending with
      | Some h -> Event_queue.reschedule h (Time.max !at t.clock)
      | None -> ()
    end
  in
  r.pending <- Some (schedule_at t !at fire);
  r

let cancel_recurring r =
  r.cancelled <- true;
  Option.iter Event_queue.cancel r.pending

(* --- demand-driven pollers -------------------------------------------- *)

let add_poller ?name t f =
  let pname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "poller-%d" (Hooks.length t.pollers)
  in
  let phist =
    if t.cfg.profile then
      Some
        (Registry.histogram t.reg ~subsystem:"sched"
           ~help:"Wall-clock cost of one poller tick, seconds"
           ~labels:[ ("poller", pname) ] ~lo:1e-8 ~hi:1.0
           "poller_tick_seconds")
    else None
  in
  let p = { pfn = f; owner = t; pname; phist; runnable = true; wake_ev = None } in
  Hooks.add t.pollers p;
  t.runnable_pollers <- t.runnable_pollers + 1;
  p

let wake_poller p =
  if not p.runnable then begin
    p.runnable <- true;
    p.owner.runnable_pollers <- p.owner.runnable_pollers + 1
  end

let doze p =
  if p.runnable then begin
    p.runnable <- false;
    p.owner.runnable_pollers <- p.owner.runnable_pollers - 1
  end

let apply_hint t p hint =
  match hint with
  | Always -> ()
  | Wake_on_input ->
      doze p;
      (* A stale timed wake-up would tick the poller for nothing. *)
      (match p.wake_ev with Some h -> Event_queue.cancel h | None -> ())
  | Wake_at at ->
      if Time.(at <= t.clock) then () (* due now: stay runnable *)
      else begin
        doze p;
        match p.wake_ev with
        | Some h -> Event_queue.reschedule h at
        | None ->
            p.wake_ev <-
              Some (Event_queue.schedule t.queue at (fun () -> wake_poller p))
      end

(* One FTI increment's poller pass. Eager mode ([fast_path = false])
   reproduces the original scheduler exactly: every poller ticks every
   increment and wake hints are ignored. The fast path ticks only
   runnable pollers — in registration order, so waking a subset never
   reorders work — and skips the whole walk when none are runnable. *)
let tick_one t p =
  (* A poller tick is spontaneous activity: whatever it causes roots a
     fresh chain, never the previous event's. *)
  if t.causal_g <> None then t.cur_cause <- Causal.none;
  match p.phist with
  | None -> p.pfn ()
  | Some h ->
      let w0 = Wall.now () in
      let hint = p.pfn () in
      Horse_telemetry.Histogram.add h (Wall.now () -. w0);
      hint

let tick_pollers t =
  let n = Hooks.length t.pollers in
  if n > 0 then begin
    if not t.cfg.fast_path then
      Hooks.iter
        (fun p ->
          Counter.incr t.m.m_poller_ticks;
          ignore (tick_one t p))
        t.pollers
    else if t.runnable_pollers = 0 then Counter.add t.m.m_poller_saved n
    else begin
      let ticked = ref 0 in
      Hooks.iter
        (fun p ->
          if p.runnable then begin
            incr ticked;
            Counter.incr t.m.m_poller_ticks;
            apply_hint t p (tick_one t p)
          end)
        t.pollers;
      Counter.add t.m.m_poller_saved (n - !ticked)
    end
  end

let record_transition t to_mode reason =
  let wall = if t.running then Wall.now () -. t.run_start_wall else 0.0 in
  t.rev_transitions <-
    { at = t.clock; wall; from_mode = t.cur_mode; to_mode; reason }
    :: t.rev_transitions;
  Counter.incr t.m.m_transitions;
  Gauge.set t.m.g_mode (gauge_of_mode to_mode);
  t.cur_mode <- to_mode

let control_activity ?(reason = "control-plane activity") t =
  t.last_activity <- t.clock;
  match t.cur_mode with
  | Fti -> ()
  | Des -> record_transition t Fti reason

(* The barrier driver's lookahead probe: the earliest virtual time at
   which this scheduler could possibly do anything (and therefore emit
   a cross-shard message). Conservative by construction — deferred
   work and runnable pollers mean "now"; an idle FTI scheduler is
   still bounded by its quiet-timeout transition, which the epoch loop
   must not jump over. [None] means fully idle: no event will ever
   fire without outside input. *)
let next_activity t =
  if has_deferred t then Some t.clock
  else
    match t.cur_mode with
    | Des -> Event_queue.next_time t.queue
    | Fti ->
        if t.runnable_pollers > 0 then Some t.clock
        else
          let quiet = Time.add t.last_activity t.cfg.quiet_timeout in
          Some
            (match Event_queue.next_time t.queue with
            | Some te -> Time.min te quiet
            | None -> quiet)

let stop t = t.stop_requested <- true
let on_abort t f = t.rev_abort_hooks <- f :: t.rev_abort_hooks
let aborted t = t.abort_flag

let snapshot t =
  Gauge.set t.m.g_end_time_s (Time.to_sec t.clock);
  (* Timing-wheel internals, exported for the Prometheus scrape. *)
  let occ = Event_queue.occupancy t.queue in
  Array.iteri
    (fun i n ->
      Gauge.set
        (Registry.gauge t.reg ~subsystem:"sched"
           ~help:"Live timers per timing-wheel level"
           ~labels:[ ("level", string_of_int i) ]
           "wheel_occupancy")
        (float_of_int n))
    occ.Event_queue.occ_levels;
  Gauge.set
    (Registry.gauge t.reg ~subsystem:"sched"
       ~help:"Live timers in the wheel overflow heap" "overflow_heap_size")
    (float_of_int occ.Event_queue.occ_overflow);
  Gauge.set
    (Registry.gauge t.reg ~subsystem:"sched"
       ~help:"Live events in the due heap" "wheel_due_size")
    (float_of_int occ.Event_queue.occ_due);
  {
    events_executed = Counter.value t.m.m_events;
    fti_increments = Counter.value t.m.m_fti_increments;
    fti_increments_skipped = Counter.value t.m.m_fti_skipped;
    poller_ticks = Counter.value t.m.m_poller_ticks;
    poller_ticks_saved = Counter.value t.m.m_poller_saved;
    transitions = List.rev t.rev_transitions;
    virtual_in_fti = Time.of_us (Counter.value t.m.m_virt_fti_us);
    virtual_in_des = Time.of_us (Counter.value t.m.m_virt_des_us);
    wall_in_fti = Gauge.value t.m.g_wall_fti_s;
    wall_in_des = Gauge.value t.m.g_wall_des_s;
    wall_total = Gauge.value t.m.g_wall_total_s;
    end_time = t.clock;
    aborted = t.abort_flag;
  }

let account t mode0 wall0 clock0 =
  let dw = Wall.now () -. wall0 in
  let dv_us = Time.to_us (Time.sub t.clock clock0) in
  (match mode0 with
  | Des ->
      Gauge.add t.m.g_wall_des_s dw;
      Counter.add t.m.m_virt_des_us dv_us
  | Fti ->
      Gauge.add t.m.g_wall_fti_s dw;
      Counter.add t.m.m_virt_fti_us dv_us);
  (* Mirror the exact microsecond counters into the exported
     float-second gauges. *)
  Gauge.set t.m.g_virt_des_s
    (float_of_int (Counter.value t.m.m_virt_des_us) /. 1e6);
  Gauge.set t.m.g_virt_fti_s
    (float_of_int (Counter.value t.m.m_virt_fti_us) /. 1e6)

(* One DES step: execute the next event (jumping the clock), or jump
   to the horizon when nothing is left before it. Returns [false] when
   the run is over. *)
let des_step t until =
  let wall0 = Wall.now () and clock0 = t.clock in
  let rec exec () =
    let next = Event_queue.next_time t.queue in
    (* Drain deferred work before the clock can leave the instant that
       registered it. *)
    let advancing =
      match next with Some nt -> Time.(nt > t.clock) | None -> true
    in
    if advancing && has_deferred t then begin
      flush_deferred t;
      exec ()
    end
    else
      let beyond_horizon =
        match (next, until) with
        | None, _ -> true
        | Some nt, Some u -> Time.(nt > u)
        | Some _, None -> false
      in
      if beyond_horizon then begin
        (match until with Some u -> t.clock <- Time.max t.clock u | None -> ());
        false
      end
      else
        match Event_queue.pop t.queue with
        | None -> false
        | Some (time, action, cause) ->
            t.clock <- Time.max t.clock time;
            t.cur_cause <- cause;
            Counter.incr t.m.m_events;
            action ();
            t.cur_cause <- Causal.none;
            true
  in
  let continue = exec () in
  account t Des wall0 clock0;
  continue

(* Fast-forward: with no runnable poller, the increments up to the
   next pending event are pure clock advances — and the quiet-timeout
   boundary caps the skip, so the DES transition fires at exactly the
   boundary the eager loop would pick. Skipped increments still count
   in [fti_increments_total] (and the virtual-residency counters), so
   stats and the mode timeline are identical to an eager run; only the
   loop iterations and poller walks disappear. *)
let fast_forward t until =
  if
    t.cfg.fast_path && t.cfg.fti_pacing <= 0.0 && t.runnable_pollers = 0
    && not (has_deferred t)
  then begin
    let inc = Time.to_us t.cfg.fti_increment in
    let clock = Time.to_us t.clock in
    (* Increments we may skip before reaching [bound]: boundaries
       strictly below it, so the step that lands on (or past) the
       bound runs through the normal loop. *)
    let gap_to bound = if bound > clock then (bound - clock - 1) / inc else 0 in
    let k_ev =
      match Event_queue.next_time t.queue with
      | Some te -> gap_to (Time.to_us te)
      | None -> max_int
    in
    let k_quiet =
      gap_to (Time.to_us (Time.add t.last_activity t.cfg.quiet_timeout))
    in
    let k_until =
      match until with Some u -> gap_to (Time.to_us u) | None -> max_int
    in
    let k = min k_ev (min k_quiet k_until) in
    if k > 0 then begin
      t.clock <- Time.of_us (clock + (k * inc));
      Counter.add t.m.m_fti_increments k;
      Counter.add t.m.m_fti_skipped k;
      Counter.add t.m.m_ff_us (k * inc);
      Counter.add t.m.m_poller_saved (k * Hooks.length t.pollers)
    end
  end

(* One FTI increment: run every event due within the increment, give
   each runnable poller its tick, advance the clock by exactly one
   increment (clipped to the horizon), fast-forward over a provably
   idle window, then apply the quiet-timeout rule. *)
let fti_step t until =
  let wall0 = Wall.now () and clock0 = t.clock in
  let target =
    let target = Time.add t.clock t.cfg.fti_increment in
    match until with Some u -> Time.min target u | None -> target
  in
  let rec drain () =
    let next = Event_queue.next_time t.queue in
    let advancing =
      match next with Some nt -> Time.(nt > t.clock) | None -> true
    in
    if advancing && has_deferred t then begin
      flush_deferred t;
      drain ()
    end
    else
      match Event_queue.pop_until t.queue target with
      | Some (time, action, cause) ->
          t.clock <- Time.max t.clock time;
          t.cur_cause <- cause;
          Counter.incr t.m.m_events;
          action ();
          t.cur_cause <- Causal.none;
          drain ()
      | None -> ()
  in
  drain ();
  tick_pollers t;
  flush_deferred t;
  t.clock <- Time.max t.clock target;
  Counter.incr t.m.m_fti_increments;
  fast_forward t until;
  if t.cfg.fti_pacing > 0.0 then
    Unix.sleepf (Time.to_sec t.cfg.fti_increment /. t.cfg.fti_pacing);
  Horse_telemetry.Histogram.add t.m.h_fti_wall (Wall.now () -. wall0);
  account t Fti wall0 clock0;
  if
    t.cur_mode = Fti
    && Time.(Time.sub t.clock t.last_activity >= t.cfg.quiet_timeout)
  then record_transition t Des "quiet timeout";
  match until with Some u -> Time.(t.clock < u) | None -> true

(* Wall-clock watchdog: with [max_wall_s > 0], a run that outlives its
   wall budget is aborted between steps — [run] still returns normally
   so callers flush exporters and emit a partial report instead of
   spinning forever. *)
let watchdog_expired t =
  t.cfg.max_wall_s > 0.0
  && Wall.now () -. t.run_start_wall > t.cfg.max_wall_s

let fire_abort t =
  t.abort_flag <- true;
  Counter.incr t.m.m_watchdog_aborts;
  List.iter (fun f -> f ()) (List.rev t.rev_abort_hooks)

let run ?until t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  t.stop_requested <- false;
  t.abort_flag <- false;
  t.run_start_wall <- Wall.now ();
  let rec loop () =
    if t.stop_requested then ()
    else if watchdog_expired t then fire_abort t
    else
      let continue =
        match t.cur_mode with
        | Des -> des_step t until
        | Fti -> fti_step t until
      in
      if continue then loop ()
  in
  loop ();
  (* A stop request can leave end-of-instant work pending. *)
  flush_deferred t;
  Gauge.add t.m.g_wall_total_s (Wall.now () -. t.run_start_wall);
  t.running <- false;
  snapshot t

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "@[<v>events executed : %d@,\
     fti increments  : %d (%d fast-forwarded)@,\
     poller ticks    : %d (%d saved)@,\
     transitions     : %d@,\
     virtual time    : %a (FTI %a / DES %a)@,\
     wall time       : %.3fs (FTI %.3fs / DES %.3fs)@]"
    s.events_executed s.fti_increments s.fti_increments_skipped s.poller_ticks
    s.poller_ticks_saved
    (List.length s.transitions)
    Time.pp s.end_time Time.pp s.virtual_in_fti Time.pp s.virtual_in_des
    s.wall_total s.wall_in_fti s.wall_in_des

let pp_transition fmt (tr : transition) =
  Format.fprintf fmt "[%a] %a -> %a (%s)" Time.pp tr.at pp_mode tr.from_mode
    pp_mode tr.to_mode tr.reason

let pp_timeline fmt (s : stats) =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_transition fmt
    s.transitions
