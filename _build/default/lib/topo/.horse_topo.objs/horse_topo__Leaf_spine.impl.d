lib/topo/leaf_spine.ml: Array Horse_engine Horse_net Ipv4 Mac Option Prefix Printf Topology
