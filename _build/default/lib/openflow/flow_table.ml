open Horse_engine

type entry = {
  match_ : Ofmatch.t;
  priority : int;
  actions : Action.t list;
  cookie : int;
  idle_timeout : Time.t option;
  hard_timeout : Time.t option;
  installed_at : Time.t;
  mutable last_used : Time.t;
  mutable packets : int;
  mutable bytes : int;
}

(* Entries kept sorted: priority descending, then insertion sequence
   ascending. The seq lives outside [entry] to keep the public record
   clean. *)
type t = { mutable entries : (int * entry) list; mutable next_seq : int }

let create () = { entries = []; next_seq = 0 }

let order (sa, (a : entry)) (sb, (b : entry)) =
  match Int.compare b.priority a.priority with
  | 0 -> Int.compare sa sb
  | c -> c

let timeout_of_seconds s = if s = 0 then None else Some (Time.of_sec (float_of_int s))

let insert t ~now (fm : Ofmsg.flow_mod) =
  let entry =
    {
      match_ = fm.Ofmsg.match_;
      priority = fm.Ofmsg.priority;
      actions = fm.Ofmsg.actions;
      cookie = fm.Ofmsg.cookie;
      idle_timeout = timeout_of_seconds fm.Ofmsg.idle_timeout_s;
      hard_timeout = timeout_of_seconds fm.Ofmsg.hard_timeout_s;
      installed_at = now;
      last_used = now;
      packets = 0;
      bytes = 0;
    }
  in
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  t.entries <- List.sort order ((seq, entry) :: t.entries)

let apply_flow_mod t ~now (fm : Ofmsg.flow_mod) =
  match fm.Ofmsg.command with
  | Ofmsg.Add ->
      t.entries <-
        List.filter
          (fun (_, e) ->
            not (Ofmatch.equal e.match_ fm.Ofmsg.match_ && e.priority = fm.Ofmsg.priority))
          t.entries;
      insert t ~now fm
  | Ofmsg.Modify ->
      let touched = ref false in
      t.entries <-
        List.map
          (fun (s, e) ->
            if Ofmatch.equal e.match_ fm.Ofmsg.match_ then begin
              touched := true;
              (s, { e with actions = fm.Ofmsg.actions })
            end
            else (s, e))
          t.entries;
      if not !touched then insert t ~now fm
  | Ofmsg.Delete ->
      t.entries <-
        List.filter
          (fun (_, e) -> not (Ofmatch.is_exact_overlap fm.Ofmsg.match_ e.match_))
          t.entries

let lookup t fields =
  List.find_map
    (fun (_, e) -> if Ofmatch.matches e.match_ fields then Some e else None)
    t.entries

let account entry ~now ~packets ~bytes =
  entry.packets <- entry.packets + packets;
  entry.bytes <- entry.bytes + bytes;
  entry.last_used <- now

let expired_at now e =
  let hard_hit =
    match e.hard_timeout with
    | Some dt -> Time.(Time.sub now e.installed_at >= dt)
    | None -> false
  in
  let idle_hit =
    match e.idle_timeout with
    | Some dt -> Time.(Time.sub now e.last_used >= dt)
    | None -> false
  in
  hard_hit || idle_hit

let expire t ~now =
  let gone, kept = List.partition (fun (_, e) -> expired_at now e) t.entries in
  t.entries <- kept;
  List.map snd gone

let entries t = List.map snd t.entries

let matching_entries t m =
  List.filter_map
    (fun (_, e) -> if Ofmatch.is_exact_overlap m e.match_ then Some e else None)
    t.entries

let size t = List.length t.entries
let clear t = t.entries <- []

let pp fmt t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline
    (fun fmt (e : entry) ->
      Format.fprintf fmt "prio=%d %a -> [%a] pkts=%d bytes=%d" e.priority
        Ofmatch.pp e.match_
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           Action.pp)
        e.actions e.packets e.bytes)
    fmt (entries t)
