examples/p4_pipeline.ml: Array Experiment Fat_tree Flow_key Fluid Format Horse_core Horse_dataplane Horse_engine Horse_net Horse_p4 Horse_topo Option P4_fabric Sched Time Topology
