(** Shared data-plane path resolution: walk per-node forwarding tables
    from a flow's source host, choosing among ECMP groups by hash.
    Used by both the BGP and the OSPF fabrics. *)

open Horse_net
open Horse_topo
open Horse_dataplane

val path_for :
  ?hash:(Flow_key.t -> int) ->
  topo:Topology.t ->
  table:(int -> Fwd.t) ->
  Flow_key.t ->
  (Spf.path, string) result
(** Default hash: {!Flow_key.hash_src_dst}. Fails on an unknown source
    address, a missing route, or a walk beyond 64 hops. *)
