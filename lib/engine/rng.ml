type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (int64 t) }

(* FNV-1a over the key bytes, folded into the parent's current state
   without advancing it: the derived stream depends only on (parent
   state, key), so sites keyed by distinct names get streams that do
   not shift when other sites are added or removed. *)
let split_key t key =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    key;
  { state = mix (Int64.add (mix t.state) (Int64.mul !h golden)) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_needed = bound - 1 in
  let rec bits_for n acc = if n = 0 then acc else bits_for (n lsr 1) (acc + 1) in
  let bits = bits_for mask_needed 0 in
  let mask = (1 lsl bits) - 1 in
  let rec draw () =
    let v = Int64.to_int (int64 t) land mask in
    if v < bound then v else draw ()
  in
  if bound = 1 then 0 else draw ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let derangement t n =
  if n <= 1 then Array.init n (fun i -> i)
  else
    let rec try_one () =
      let a = permutation t n in
      let fixed = ref false in
      Array.iteri (fun i v -> if i = v then fixed := true) a;
      if !fixed then try_one () else a
    in
    try_one ()
