lib/core/scenario.mli: Format Horse_engine Horse_stats Sched Series Time
