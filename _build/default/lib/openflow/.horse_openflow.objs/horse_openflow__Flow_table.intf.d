lib/openflow/flow_table.mli: Action Format Horse_engine Ofmatch Ofmsg Time
