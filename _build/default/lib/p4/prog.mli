(** P4-style programmable data-plane programs.

    The Horse paper's future work: "we plan to also support P4
    switches." This module defines a P4₁₆-flavoured abstract pipeline:
    named metadata fields of fixed bit widths, parameterised actions
    built from primitive statements, match-action tables (exact / LPM
    / ternary keys), counters, and a control block sequencing the
    tables with conditionals. {!Interp} executes programs;
    {!Runtime} programs their tables over a control channel.

    Programs are static descriptions — validation ({!validate})
    checks all cross-references and widths once, so the interpreter
    can trust them. *)

(** Expressions over metadata fields and action parameters. *)
type expr =
  | Const of int
  | Field of string
  | Param of string
  | Add of expr * expr
  | Xor of expr * expr
  | Mod of expr * expr  (** modulo; x mod 0 = 0 *)
  | Hash of string list
      (** deterministic hash of the named fields' current values *)

(** Primitive action statements. *)
type stmt =
  | Set_field of string * expr
  | Drop
  | Forward of expr  (** set the egress port *)
  | Count of string  (** bump a named counter *)

type action_def = {
  action_name : string;
  params : (string * int) list;  (** name, bit width *)
  body : stmt list;
}

type match_kind = Exact | Lpm | Ternary

type table_def = {
  table_name : string;
  keys : (string * match_kind) list;  (** field name, kind *)
  action_refs : string list;  (** actions this table may invoke *)
  default_action : string * int list;  (** action name, argument values *)
}

(** The control block: which tables apply, in what order. *)
type control =
  | Apply of string
  | Seq of control list
  | If of expr * control * control  (** condition: non-zero = true *)
  | Nop

type t = {
  name : string;
  fields : (string * int) list;  (** metadata fields: name, bit width *)
  actions : action_def list;
  tables : table_def list;
  counters : string list;
  pipeline : control;
}

val validate : t -> (unit, string) result
(** Checks that every field, action, table, counter and parameter
    reference resolves, that widths are in [1, 62], and that names are
    unique. *)

val field_width : t -> string -> int option
val find_table : t -> string -> table_def option
val find_action : t -> string -> action_def option

val pp : Format.formatter -> t -> unit
(** A P4-ish source rendering, for documentation and debugging. *)

(** A ready-made program: IPv4 LPM routing with hash-based ECMP group
    member selection — the fabric data plane of the demonstration,
    expressed as P4. Fields: [dst] (32), [src] (32), [sport]/[dport]
    (16), [proto] (8), [group] (16), [hash] (16). Tables:
    [ipv4_lpm] (LPM on [dst] → [set_group] or [forward]) and
    [ecmp_select] (exact on [group], [hash] → [forward]). *)
val ecmp_router : t
