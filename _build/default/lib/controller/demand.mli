(** Hedera's demand estimation (Al-Fares et al., NSDI 2010, Fig. 4).

    Given only which host pairs have active flows, estimate each
    flow's {e natural demand}: the rate it would achieve in an ideal
    non-blocking fabric where every host NIC has capacity 1. The
    algorithm alternates two passes until a fixpoint:

    - {b source pass}: each sender divides its spare capacity equally
      among its not-yet-limited flows;
    - {b receiver pass}: each overloaded receiver caps its incoming
      flows fairly, marking the capped flows receiver-limited
      (converged).

    Demands are fractions of NIC capacity in [0, 1]. *)

type flow = { src : int; dst : int; tag : int (** caller's identifier *) }

val estimate : ?max_iters:int -> flow list -> (flow * float) list
(** Returns each flow with its estimated demand, in input order.
    [max_iters] (default 100) bounds the fixpoint loop; the algorithm
    converges far earlier on realistic inputs. *)

val big_flows : ?threshold:float -> (flow * float) list -> (flow * float) list
(** Flows whose estimated demand is at least [threshold] (default 0.1,
    the paper's 10% of NIC rate). *)
