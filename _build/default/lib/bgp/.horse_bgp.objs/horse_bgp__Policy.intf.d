lib/bgp/policy.mli: Format Horse_net Msg Prefix
