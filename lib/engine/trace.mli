(** Annotated experiment traces.

    A lightweight append-only log of (virtual time, label, detail)
    records. The Connection Manager logs control-plane activity here
    and the BGP/OpenFlow agents log protocol milestones; the FIG1
    harness renders the result as the paper's mode-transition
    timeline.

    By default the log grows without bound. Pass [~capacity] to
    {!create} for a ring buffer that retains only the newest entries
    and counts what it dropped — the right mode for long FTI-heavy
    runs. *)

type entry = {
  at : Time.t;  (** virtual time of the record *)
  wall : float;  (** wall seconds since trace creation *)
  label : string;  (** category, e.g. ["bgp"], ["mode"], ["cm"] *)
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Unbounded without [?capacity]; a ring of at most [capacity]
    entries otherwise.
    @raise Invalid_argument if [capacity <= 0]. *)

val bind_registry : t -> Horse_telemetry.Registry.t -> unit
(** Mirrors this trace's totals as [horse_trace_entries_total] and
    [horse_trace_dropped_total] counters in [reg] (past activity is
    credited immediately), so ring-buffer evictions — previously
    visible only via {!dropped} — surface in every metrics export and
    trip the [Report] warning. *)

val add : t -> at:Time.t -> label:string -> string -> unit

val addf :
  t -> at:Time.t -> label:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!add}. *)

val entries : t -> entry list
(** Retained entries, chronological (insertion) order. *)

val by_label : t -> string -> entry list

val length : t -> int
(** Retained entry count (bounded by the capacity, if any). *)

val total_added : t -> int
(** Entries ever added, including dropped ones. *)

val dropped : t -> int
(** Entries evicted by the ring buffer; always 0 when unbounded. *)

val capacity : t -> int option

val clear : t -> unit
(** Empties the trace and resets the {!total_added}/{!dropped}
    counters. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
