lib/openflow/action.ml: Format Horse_net List Printf
