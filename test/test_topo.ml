(* Tests for horse_topo: the graph, the Fat-Tree builder, WAN
   topologies and shortest-path computation. *)

open Horse_net
open Horse_topo
module Tm = Traffic_matrix

let check = Alcotest.check
let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Topology --------------------------------------------------------- *)

let test_duplex_links () =
  let t = Topology.create () in
  let a = Topology.add_node t Topology.Switch in
  let b = Topology.add_node t Topology.Switch in
  let fwd, rev = Topology.add_duplex t ~capacity:1e9 a b in
  check Alcotest.int "fwd src" a.Topology.id fwd.Topology.src;
  check Alcotest.int "fwd dst" b.Topology.id fwd.Topology.dst;
  check Alcotest.int "peer of fwd" rev.Topology.link_id fwd.Topology.peer;
  check Alcotest.int "peer of rev" fwd.Topology.link_id rev.Topology.peer;
  check Alcotest.int "n_links counts directions" 2 (Topology.n_links t);
  check Alcotest.bool "find_link" true
    (Topology.find_link t ~src:a.Topology.id ~dst:b.Topology.id <> None);
  check Alcotest.bool "find_link reverse" true
    (Topology.find_link t ~src:b.Topology.id ~dst:a.Topology.id <> None)

let test_invalid_links () =
  let t = Topology.create () in
  let a = Topology.add_node t Topology.Switch in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Topology.add_duplex: self-loop") (fun () ->
      ignore (Topology.add_duplex t ~capacity:1e9 a a));
  let b = Topology.add_node t Topology.Switch in
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Topology.add_duplex: capacity <= 0") (fun () ->
      ignore (Topology.add_duplex t ~capacity:0.0 a b))

let test_node_queries () =
  let t = Topology.create () in
  let h = Topology.add_node t ~name:"h0" ~ip:(Ipv4.of_octets 10 0 0 1) Topology.Host in
  let s = Topology.add_node t Topology.Switch in
  let _r = Topology.add_node t Topology.Router in
  check Alcotest.int "hosts" 1 (List.length (Topology.hosts t));
  check Alcotest.int "switches" 1 (List.length (Topology.switches t));
  check Alcotest.int "routers" 1 (List.length (Topology.routers t));
  check Alcotest.bool "by name" true (Topology.node_by_name t "h0" = Some h);
  check Alcotest.bool "by ip" true
    (Topology.node_by_ip t (Ipv4.of_octets 10 0 0 1) = Some h);
  check Alcotest.string "generated name" "switch1" s.Topology.name

(* --- Fat tree ---------------------------------------------------------- *)

let count_links_between topo pred =
  List.length (List.filter pred (Topology.links topo)) / 2

let fat_tree_structure k =
  let ft = Fat_tree.build ~k () in
  let topo = ft.Fat_tree.topo in
  check Alcotest.int "hosts" (k * k * k / 4) (Array.length ft.Fat_tree.hosts);
  check Alcotest.int "switch count"
    (5 * k * k / 4)
    (List.length (Topology.switches topo));
  check Alcotest.int "cores" (k * k / 4) (Array.length ft.Fat_tree.cores);
  (* Every edge switch: k/2 hosts + k/2 aggs. *)
  Array.iter
    (fun pod_edges ->
      Array.iter
        (fun (e : Topology.node) ->
          check Alcotest.int "edge degree" k
            (List.length (Topology.out_links topo e.Topology.id)))
        pod_edges)
    ft.Fat_tree.edges;
  (* Core degree = k (one per pod). *)
  Array.iter
    (fun (c : Topology.node) ->
      check Alcotest.int "core degree" k
        (List.length (Topology.out_links topo c.Topology.id)))
    ft.Fat_tree.cores;
  (* Total duplex links: k^3/4 host + k*(k/2)^2 edge-agg + (k/2)^2*k agg-core. *)
  let expected = (k * k * k / 4) + (k * k * k / 4) + (k * k * k / 4) in
  check Alcotest.int "duplex link count" expected
    (count_links_between topo (fun _ -> true))

let test_fat_tree_k4 () = fat_tree_structure 4
let test_fat_tree_k6 () = fat_tree_structure 6
let test_fat_tree_k8 () = fat_tree_structure 8

let test_fat_tree_addressing () =
  let ft = Fat_tree.build ~k:4 () in
  (* First host of pod 0 edge 0. *)
  check Alcotest.string "host 0" "10.0.0.2" (Ipv4.to_string (Fat_tree.host_ip ft 0));
  check Alcotest.string "host 1" "10.0.0.3" (Ipv4.to_string (Fat_tree.host_ip ft 1));
  (* Pod-major order: host 4 is pod 1. *)
  check Alcotest.int "pod of host 4" 1 (Fat_tree.pod_of_host ft 4);
  check Alcotest.string "host 4" "10.1.0.2" (Ipv4.to_string (Fat_tree.host_ip ft 4));
  (* Unique addresses all around. *)
  let all =
    List.filter_map (fun (n : Topology.node) -> n.Topology.ip)
      (Topology.nodes ft.Fat_tree.topo)
  in
  check Alcotest.int "all addresses unique" (List.length all)
    (List.length (List.sort_uniq Ipv4.compare all));
  (* Reverse lookup. *)
  match Fat_tree.host_of_ip ft (Ipv4.of_octets 10 1 0 2) with
  | Some n -> check Alcotest.string "reverse lookup" "h-p1-e0-0" n.Topology.name
  | None -> Alcotest.fail "host_of_ip failed"

let test_fat_tree_bad_k () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Fat_tree.build: k must be even and >= 2, got 3") (fun () ->
      ignore (Fat_tree.build ~k:3 ()))

(* --- Leaf-spine -------------------------------------------------------- *)

let test_leaf_spine_structure () =
  let ls = Leaf_spine.build ~leaves:4 ~spines:3 ~hosts_per_leaf:5 () in
  let topo = ls.Leaf_spine.topo in
  check Alcotest.int "hosts" 20 (Array.length ls.Leaf_spine.hosts);
  check Alcotest.int "switches" 7 (List.length (Topology.switches topo));
  (* duplex links: 20 host + 4*3 fabric *)
  check Alcotest.int "duplex links" 32 (Topology.n_links topo / 2);
  (* leaf degree = hosts_per_leaf + spines *)
  Array.iter
    (fun (l : Topology.node) ->
      check Alcotest.int "leaf degree" 8
        (List.length (Topology.out_links topo l.Topology.id)))
    ls.Leaf_spine.leaves;
  check Alcotest.string "host addressing" "10.128.2.3"
    (Ipv4.to_string (Leaf_spine.host_ip ls (2 * 5) |> Ipv4.succ));
  check Alcotest.bool "leaf prefix contains host" true
    (Prefix.mem (Leaf_spine.host_ip ls 7) (Leaf_spine.leaf_prefix ls 1))

let test_leaf_spine_ecmp () =
  let ls = Leaf_spine.build ~leaves:4 ~spines:6 ~hosts_per_leaf:2 () in
  let topo = ls.Leaf_spine.topo in
  let src = ls.Leaf_spine.hosts.(0).Topology.id in
  let tree = Spf.shortest_tree topo ~src in
  (* Different leaves: one path per spine; same leaf: one 2-hop path. *)
  check Alcotest.int "inter-leaf paths = spines" 6
    (List.length
       (Spf.ecmp_paths ~max_paths:100 tree topo
          ~dst:ls.Leaf_spine.hosts.(7).Topology.id));
  check Alcotest.int "intra-leaf single path" 1
    (List.length
       (Spf.ecmp_paths tree topo ~dst:ls.Leaf_spine.hosts.(1).Topology.id))

let test_leaf_spine_validation () =
  Alcotest.check_raises "zero spines"
    (Invalid_argument "Leaf_spine.build: dimensions must be positive")
    (fun () -> ignore (Leaf_spine.build ~leaves:2 ~spines:0 ~hosts_per_leaf:1 ()))

(* --- SPF --------------------------------------------------------------- *)

let test_spf_line () =
  let wan = Wan.linear 4 in
  let topo = wan.Wan.topo in
  let tree = Spf.shortest_tree topo ~src:0 in
  check (Alcotest.option Alcotest.int) "dist to 3" (Some 3) (Spf.distance tree 3);
  match Spf.first_path tree topo ~dst:3 with
  | Some path ->
      check Alcotest.int "3 hops" 3 (Spf.path_length path);
      check (Alcotest.list Alcotest.int) "node sequence" [ 0; 1; 2; 3 ]
        (Spf.path_nodes path)
  | None -> Alcotest.fail "no path on a line"

let test_spf_unreachable () =
  let t = Topology.create () in
  let _a = Topology.add_node t Topology.Router in
  let _b = Topology.add_node t Topology.Router in
  let tree = Spf.shortest_tree t ~src:0 in
  check (Alcotest.option Alcotest.int) "unreachable" None (Spf.distance tree 1);
  check Alcotest.bool "no path" true (Spf.first_path tree t ~dst:1 = None);
  check Alcotest.int "no ecmp paths" 0
    (List.length (Spf.ecmp_paths tree t ~dst:1))

let test_fat_tree_ecmp_count () =
  (* Between hosts in different pods of a k-ary fat tree there are
     (k/2)^2 equal-cost shortest paths. *)
  List.iter
    (fun k ->
      let ft = Fat_tree.build ~k () in
      let topo = ft.Fat_tree.topo in
      let src = ft.Fat_tree.hosts.(0).Topology.id in
      let dst = ft.Fat_tree.hosts.(Array.length ft.Fat_tree.hosts - 1).Topology.id in
      let tree = Spf.shortest_tree topo ~src in
      let paths = Spf.ecmp_paths ~max_paths:1000 tree topo ~dst in
      check Alcotest.int
        (Printf.sprintf "k=%d inter-pod paths" k)
        (k * k / 4) (List.length paths);
      (* All paths are 6 hops: host-edge-agg-core-agg-edge-host. *)
      List.iter
        (fun p -> check Alcotest.int "6 hops" 6 (Spf.path_length p))
        paths;
      (* Same-edge hosts: a single 2-hop path. *)
      let dst2 = ft.Fat_tree.hosts.(1).Topology.id in
      let paths2 = Spf.ecmp_paths tree topo ~dst:dst2 in
      check Alcotest.int "same-edge paths" 1 (List.length paths2);
      check Alcotest.int "2 hops" 2 (Spf.path_length (List.hd paths2)))
    [ 4; 6 ]

let test_ecmp_paths_distinct_and_valid () =
  let ft = Fat_tree.build ~k:4 () in
  let topo = ft.Fat_tree.topo in
  let src = ft.Fat_tree.hosts.(0).Topology.id in
  let dst = ft.Fat_tree.hosts.(15).Topology.id in
  let tree = Spf.shortest_tree topo ~src in
  let paths = Spf.ecmp_paths tree topo ~dst in
  (* Distinct. *)
  let as_ids =
    List.map (fun p -> List.map (fun (l : Topology.link) -> l.Topology.link_id) p) paths
  in
  check Alcotest.int "distinct paths" (List.length as_ids)
    (List.length (List.sort_uniq compare as_ids));
  (* Contiguous and correctly terminated. *)
  List.iter
    (fun path ->
      (match Spf.path_nodes path with
      | first :: _ -> check Alcotest.int "starts at src" src first
      | [] -> Alcotest.fail "empty path");
      let rec contiguous = function
        | [] | [ _ ] -> true
        | (a : Topology.link) :: (b :: _ as rest) ->
            a.Topology.dst = b.Topology.src && contiguous rest
      in
      check Alcotest.bool "contiguous" true (contiguous path);
      match List.rev (Spf.path_nodes path) with
      | last :: _ -> check Alcotest.int "ends at dst" dst last
      | [] -> Alcotest.fail "empty path")
    paths

let prop_spf_matches_floyd_warshall =
  qtest "spf: Dijkstra distances match Floyd-Warshall on random graphs"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 2 14))
    (fun (seed, n) ->
      let wan = Wan.random_gnp ~seed ~n ~p:0.3 () in
      let topo = wan.Wan.topo in
      let fw = Spf.all_pairs_hops topo in
      let ok = ref true in
      for src = 0 to n - 1 do
        let tree = Spf.shortest_tree topo ~src in
        for dst = 0 to n - 1 do
          let d1 = Option.value (Spf.distance tree dst) ~default:max_int in
          if d1 <> fw.(src).(dst) then ok := false
        done
      done;
      !ok)

let prop_ecmp_paths_equal_length =
  qtest "spf: all ecmp paths share the shortest length"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 3 12))
    (fun (seed, n) ->
      let wan = Wan.random_gnp ~seed ~n ~p:0.4 () in
      let topo = wan.Wan.topo in
      let tree = Spf.shortest_tree topo ~src:0 in
      let ok = ref true in
      for dst = 1 to n - 1 do
        match Spf.distance tree dst with
        | None -> ()
        | Some d ->
            List.iter
              (fun p -> if Spf.path_length p <> d then ok := false)
              (Spf.ecmp_paths tree topo ~dst)
      done;
      !ok)

(* --- WAN --------------------------------------------------------------- *)

let test_wan_shapes () =
  let line = Wan.linear 5 in
  check Alcotest.int "line links" 8 (Topology.n_links line.Wan.topo);
  let ring = Wan.ring 5 in
  check Alcotest.int "ring links" 10 (Topology.n_links ring.Wan.topo);
  let star = Wan.star 5 in
  check Alcotest.int "star nodes" 6 (Topology.n_nodes star.Wan.topo);
  check Alcotest.int "star links" 10 (Topology.n_links star.Wan.topo);
  let ab = Wan.abilene () in
  check Alcotest.int "abilene nodes" 11 (Topology.n_nodes ab.Wan.topo);
  check Alcotest.int "abilene duplex links" 15 (Topology.n_links ab.Wan.topo / 2)

let test_wan_ring_distance () =
  let ring = Wan.ring 6 in
  let tree = Spf.shortest_tree ring.Wan.topo ~src:0 in
  check (Alcotest.option Alcotest.int) "opposite side" (Some 3)
    (Spf.distance tree 3);
  (* Two equal-cost paths around the ring to the opposite node. *)
  check Alcotest.int "two ways around" 2
    (List.length (Spf.ecmp_paths tree ring.Wan.topo ~dst:3))

let prop_random_gnp_connected =
  qtest "wan: random graphs are connected"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 2 20))
    (fun (seed, n) ->
      let wan = Wan.random_gnp ~seed ~n ~p:0.1 () in
      let tree = Spf.shortest_tree wan.Wan.topo ~src:0 in
      let ok = ref true in
      for dst = 0 to n - 1 do
        if Spf.distance tree dst = None then ok := false
      done;
      !ok)

let test_wan_determinism () =
  let a = Wan.random_gnp ~seed:9 ~n:12 ~p:0.3 () in
  let b = Wan.random_gnp ~seed:9 ~n:12 ~p:0.3 () in
  check Alcotest.int "same link count" (Topology.n_links a.Wan.topo)
    (Topology.n_links b.Wan.topo)

(* --- Traffic matrices -------------------------------------------------- *)

let test_tm_gravity_normalises () =
  let masses = Tm.zipf_masses 8 in
  let tm = Tm.gravity ~total:1e9 ~masses in
  check (Alcotest.float 1.0) "cells sum to total" 1e9 (Tm.total tm);
  for i = 0 to Tm.n tm - 1 do
    check (Alcotest.float 0.0) "zero diagonal" 0.0 (Tm.demand tm ~src:i ~dst:i)
  done;
  (* Gravity: cell ratio equals mass-product ratio. *)
  let d01 = Tm.demand tm ~src:0 ~dst:1 and d23 = Tm.demand tm ~src:2 ~dst:3 in
  check (Alcotest.float 1e-9) "mass-product proportionality"
    (masses.(0) *. masses.(1) /. (masses.(2) *. masses.(3)))
    (d01 /. d23)

let test_tm_zipf_shape () =
  let m = Tm.zipf_masses 5 in
  check (Alcotest.float 1e-12) "rank 1" 1.0 m.(0);
  check (Alcotest.float 1e-12) "rank 3" (1.0 /. 3.0) m.(2);
  check Alcotest.bool "monotone" true
    (m.(0) > m.(1) && m.(1) > m.(2) && m.(2) > m.(3) && m.(3) > m.(4))

let prop_tm_diurnal_bounds =
  qtest "tm: diurnal factor stays within [trough, 1]"
    QCheck2.Gen.(
      triple (float_range 0.0 86_400.0) (float_range 0.0 1.0)
        (float_range 0.0 1.0))
    (fun (t, phase, trough) ->
      let f =
        Tm.diurnal_factor ~trough ~period_s:86_400.0 ~phase t
      in
      f >= trough -. 1e-9 && f <= 1.0 +. 1e-9)

let test_tm_diurnal_peak_at_phase () =
  (* Phase is in cycles: the peak sits at phase × period. *)
  let f = Tm.diurnal_factor ~period_s:100.0 ~phase:0.25 25.0 in
  check (Alcotest.float 1e-9) "peak" 1.0 f;
  let g = Tm.diurnal_factor ~trough:0.2 ~period_s:100.0 ~phase:0.25 75.0 in
  check (Alcotest.float 1e-9) "trough opposite the peak" 0.2 g

let () =
  Alcotest.run "horse_topo"
    [
      ( "topology",
        [
          Alcotest.test_case "duplex links" `Quick test_duplex_links;
          Alcotest.test_case "invalid links" `Quick test_invalid_links;
          Alcotest.test_case "node queries" `Quick test_node_queries;
        ] );
      ( "fat_tree",
        [
          Alcotest.test_case "structure k=4" `Quick test_fat_tree_k4;
          Alcotest.test_case "structure k=6" `Quick test_fat_tree_k6;
          Alcotest.test_case "structure k=8" `Quick test_fat_tree_k8;
          Alcotest.test_case "addressing" `Quick test_fat_tree_addressing;
          Alcotest.test_case "bad k rejected" `Quick test_fat_tree_bad_k;
        ] );
      ( "leaf_spine",
        [
          Alcotest.test_case "structure" `Quick test_leaf_spine_structure;
          Alcotest.test_case "ecmp count" `Quick test_leaf_spine_ecmp;
          Alcotest.test_case "validation" `Quick test_leaf_spine_validation;
        ] );
      ( "spf",
        [
          Alcotest.test_case "line" `Quick test_spf_line;
          Alcotest.test_case "unreachable" `Quick test_spf_unreachable;
          Alcotest.test_case "fat-tree ecmp count" `Quick test_fat_tree_ecmp_count;
          Alcotest.test_case "ecmp paths distinct and valid" `Quick
            test_ecmp_paths_distinct_and_valid;
          prop_spf_matches_floyd_warshall;
          prop_ecmp_paths_equal_length;
        ] );
      ( "wan",
        [
          Alcotest.test_case "shapes" `Quick test_wan_shapes;
          Alcotest.test_case "ring distances" `Quick test_wan_ring_distance;
          Alcotest.test_case "determinism" `Quick test_wan_determinism;
          prop_random_gnp_connected;
        ] );
      ( "traffic_matrix",
        [
          Alcotest.test_case "gravity normalises" `Quick
            test_tm_gravity_normalises;
          Alcotest.test_case "zipf masses" `Quick test_tm_zipf_shape;
          Alcotest.test_case "diurnal peak and trough" `Quick
            test_tm_diurnal_peak_at_phase;
          prop_tm_diurnal_bounds;
        ] );
    ]
