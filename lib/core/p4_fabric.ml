open Horse_net
open Horse_engine
open Horse_topo
open Horse_emulation
open Horse_p4

type sw = {
  agent : Agent.t;
  ctrl_end : Channel.endpoint;  (* controller side of the runtime channel *)
}

type t = {
  fabric_topo : Topology.t;
  sched : Sched.t;
  ctrl_proc : Process.t;
  switches : (int, sw) Hashtbl.t;  (* node id -> switch *)
  pending : (int, int -> unit) Hashtbl.t;  (* xid -> counter callback *)
  mutable next_xid : int;
  mutable sent : int;
  mutable acks : int;
  mutable nacks : int;
  mutable programmed_fired : bool;
  mutable programmed_hooks : (unit -> unit) list;  (* reversed *)
  mutable checker_armed : bool;
}

let fresh_xid t =
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  xid

let on_response t bytes =
  match Runtime.decode_response bytes with
  | Error _ -> ()
  | Ok (xid, resp) -> (
      match resp with
      | Runtime.Ack -> t.acks <- t.acks + 1
      | Runtime.Nack _ -> t.nacks <- t.nacks + 1
      | Runtime.Counter_value (_, v) -> (
          match Hashtbl.find_opt t.pending xid with
          | Some k ->
              Hashtbl.remove t.pending xid;
              k v
          | None -> ()))

let build ?(program = Prog.ecmp_router) ~cm topo =
  match Prog.validate program with
  | Error _ as e -> e
  | Ok () ->
      let sched = Connection_manager.scheduler cm in
      let trace = Connection_manager.trace cm in
      let ctrl_proc = Process.create sched ~name:"p4-controller" in
      let t =
        {
          fabric_topo = topo;
          sched;
          ctrl_proc;
          switches = Hashtbl.create 64;
          pending = Hashtbl.create 64;
          next_xid = 1;
          sent = 0;
          acks = 0;
          nacks = 0;
          programmed_fired = false;
          programmed_hooks = [];
          checker_armed = false;
        }
      in
      let build_error = ref None in
      List.iter
        (fun (n : Topology.node) ->
          if n.Topology.kind = Topology.Switch then begin
            let proc = Process.create sched ~name:("p4-" ^ n.Topology.name) in
            let channel =
              Connection_manager.control_channel
                ~name:("p4runtime " ^ n.Topology.name)
                ~owner_a:proc cm
            in
            let sw_end, ctrl_end = Channel.endpoints channel in
            let ports =
              List.mapi
                (fun i (l : Topology.link) -> (i + 1, l.Topology.link_id))
                (Topology.out_links topo n.Topology.id)
            in
            match Agent.create ~trace proc ~program ~ports sw_end with
            | Ok agent ->
                Channel.set_receiver ctrl_end (fun bytes -> on_response t bytes);
                Hashtbl.replace t.switches n.Topology.id { agent; ctrl_end }
            | Error msg -> build_error := Some msg
          end)
        (Topology.nodes topo);
      (match !build_error with Some msg -> Error msg | None -> Ok t)

let topo t = t.fabric_topo

let agent t node =
  Option.map (fun sw -> sw.agent) (Hashtbl.find_opt t.switches node)

let send_insert t sw entry =
  t.sent <- t.sent + 1;
  Channel.send sw.ctrl_end
    (Runtime.encode_request ~xid:(fresh_xid t) (Runtime.Insert entry))

let ip_int a = Int32.to_int (Ipv4.to_int32 a) land 0xFFFFFFFF

(* Shortest-path ECMP entries towards every host, per switch. For a
   single next hop, a plain LPM forward; for several, an LPM
   [set_group] plus one [ecmp_select] member entry per port. *)
let program_routes t =
  let topo = t.fabric_topo in
  let next_gid = ref 1 in
  List.iter
    (fun (h : Topology.node) ->
      match (h.Topology.kind, h.Topology.ip) with
      | Topology.Host, Some dst_ip ->
          let tree = Spf.shortest_tree topo ~src:h.Topology.id in
          Hashtbl.iter
            (fun node sw ->
              let dist v =
                match Spf.distance tree v with Some d -> d | None -> max_int
              in
              let my_dist = dist node in
              if my_dist < max_int && my_dist > 0 then begin
                let ports =
                  List.filter_map
                    (fun (l : Topology.link) ->
                      if dist l.Topology.dst = my_dist - 1 then
                        Agent.port_of_link sw.agent l.Topology.link_id
                      else None)
                    (Topology.out_links topo node)
                in
                let lpm_key = [ Interp.K_lpm (ip_int dst_ip, 32) ] in
                match ports with
                | [] -> ()
                | [ port ] ->
                    send_insert t sw
                      {
                        Interp.e_table = "ipv4_lpm";
                        key = lpm_key;
                        priority = 0;
                        action = "forward";
                        args = [ port ];
                      }
                | _ :: _ :: _ ->
                    let gid = !next_gid in
                    incr next_gid;
                    let size = List.length ports in
                    send_insert t sw
                      {
                        Interp.e_table = "ipv4_lpm";
                        key = lpm_key;
                        priority = 0;
                        action = "set_group";
                        args = [ gid; size ];
                      };
                    List.iteri
                      (fun member port ->
                        send_insert t sw
                          {
                            Interp.e_table = "ecmp_select";
                            key = [ Interp.K_exact gid; Interp.K_exact member ];
                            priority = 0;
                            action = "forward";
                            args = [ port ];
                          })
                      ports
              end)
            t.switches
      | (Topology.Host | Topology.Switch | Topology.Router), _ -> ())
    (Topology.nodes topo)

let entries_sent t = t.sent
let acks_received t = t.acks
let nacks_received t = t.nacks
let programmed t = t.sent > 0 && t.acks = t.sent

let when_programmed ?(check_every = Time.of_ms 10) t k =
  if t.programmed_fired then k ()
  else begin
    t.programmed_hooks <- k :: t.programmed_hooks;
    if not t.checker_armed then begin
      t.checker_armed <- true;
      let recurring = ref None in
      let check () =
        if (not t.programmed_fired) && programmed t then begin
          t.programmed_fired <- true;
          Option.iter Sched.cancel_recurring !recurring;
          List.iter (fun k -> k ()) (List.rev t.programmed_hooks);
          t.programmed_hooks <- []
        end
      in
      recurring := Some (Sched.every t.sched check_every check)
    end
  end

let fields_of_key (key : Flow_key.t) =
  [
    ("dst", ip_int key.Flow_key.dst);
    ("src", ip_int key.Flow_key.src);
    ("sport", key.Flow_key.src_port);
    ("dport", key.Flow_key.dst_port);
    ("proto", Headers.Proto.to_int key.Flow_key.proto);
  ]

let path_for ?hash t (key : Flow_key.t) =
  ignore hash;
  match Topology.node_by_ip t.fabric_topo key.Flow_key.src with
  | None -> Error "unknown source address"
  | Some src -> (
      match Topology.out_links t.fabric_topo src.Topology.id with
      | [ first ] ->
          let fields = fields_of_key key in
          let rec walk node acc hops =
            let n = Topology.node t.fabric_topo node in
            match n.Topology.ip with
            | Some ip when Ipv4.equal ip key.Flow_key.dst -> Ok (List.rev acc)
            | Some _ | None -> (
                if hops > 64 then Error "path exceeds 64 hops"
                else
                  match Hashtbl.find_opt t.switches node with
                  | None -> Error "walk reached a non-switch node"
                  | Some sw -> (
                      match Agent.process sw.agent fields with
                      | Interp.Dropped ->
                          Error
                            (Printf.sprintf "pipeline dropped the packet at %s"
                               n.Topology.name)
                      | Interp.Forwarded port -> (
                          match Agent.link_of_port sw.agent port with
                          | None -> Error "pipeline forwarded to unknown port"
                          | Some link_id ->
                              let link = Topology.link t.fabric_topo link_id in
                              walk link.Topology.dst (link :: acc) (hops + 1))))
          in
          walk first.Topology.dst [ first ] 0
      | [] | _ :: _ -> Error "source host must have degree 1")

let read_counter t ~dpid name k =
  match Hashtbl.find_opt t.switches dpid with
  | None -> ()
  | Some sw ->
      let xid = fresh_xid t in
      Hashtbl.replace t.pending xid k;
      Channel.send sw.ctrl_end
        (Runtime.encode_request ~xid (Runtime.Counter_read name))
