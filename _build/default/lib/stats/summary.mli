(** Descriptive statistics over a sample of floats. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
}

val of_list : float list -> t
(** All fields are 0 for the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [0, 100], by linear interpolation on
    the sorted sample; 0 on the empty list.
    @raise Invalid_argument if [p] is outside [0, 100]. *)

val pp : Format.formatter -> t -> unit
