lib/openflow/flow_table.ml: Action Format Horse_engine Int List Ofmatch Ofmsg Time
