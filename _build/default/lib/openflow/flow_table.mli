(** An OpenFlow switch's flow table: priority-ordered entries with
    idle/hard timeouts and traffic counters.

    Matching returns the highest-priority matching entry; among equal
    priorities the oldest entry wins (stable, deterministic).
    Expiry is driven explicitly by the owner via {!expire} — the
    switch agent calls it from a periodic virtual-time timer. *)

open Horse_engine

type entry = {
  match_ : Ofmatch.t;
  priority : int;
  actions : Action.t list;
  cookie : int;
  idle_timeout : Time.t option;
  hard_timeout : Time.t option;
  installed_at : Time.t;
  mutable last_used : Time.t;
  mutable packets : int;
  mutable bytes : int;
}

type t

val create : unit -> t

val apply_flow_mod : t -> now:Time.t -> Ofmsg.flow_mod -> unit
(** ADD replaces an entry with the same match and priority; MODIFY
    rewrites the actions of entries with an equal match (or behaves
    like ADD when none exists); DELETE removes every entry whose match
    overlaps the given one (an all-wildcard match clears the
    table). *)

val lookup : t -> Ofmatch.fields -> entry option
(** Does not touch counters — use {!account} when traffic actually
    hits the entry. *)

val account : entry -> now:Time.t -> packets:int -> bytes:int -> unit
(** Adds to the counters and refreshes the idle timestamp. *)

val expire : t -> now:Time.t -> entry list
(** Removes and returns entries past an idle or hard deadline. *)

val entries : t -> entry list
(** Priority order (the match order). *)

val matching_entries : t -> Ofmatch.t -> entry list
(** Entries whose match overlaps the given one — the flow-stats
    request semantics. *)

val size : t -> int
val clear : t -> unit
val pp : Format.formatter -> t -> unit
