open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane
open Horse_emulation
open Horse_ospf

type session = { node_a : int; node_b : int; channel : Channel.t }

type t = {
  fabric_topo : Topology.t;
  sched : Sched.t;
  daemons : (int, Daemon.t) Hashtbl.t;  (* node id -> daemon *)
  tables : Fwd.t array;
  iface_links : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* node -> iface id -> out-link id *)
  ospf_installed : (int, Prefix.t list ref) Hashtbl.t;  (* per node *)
  originated : (int, Prefix.t list) Hashtbl.t;
  mutable prefixes : Prefix.t list;
  mutable sessions : session list;
  mutable converged_fired : bool;
  mutable converged_hooks : (unit -> unit) list;  (* reversed *)
  mutable checker_armed : bool;
}

let synth_router_id id = Ipv4.of_octets 10 254 (id / 250) ((id mod 250) + 1)

let is_daemon_node (n : Topology.node) =
  match n.Topology.kind with
  | Topology.Switch | Topology.Router -> true
  | Topology.Host -> false

(* Replace a node's OSPF-learned routes with a fresh table, leaving
   the static host routes alone. *)
let install_routes t node (routes : Lsdb.route list) =
  let daemon = Hashtbl.find t.daemons node in
  let links = Hashtbl.find t.iface_links node in
  let installed =
    match Hashtbl.find_opt t.ospf_installed node with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.ospf_installed node r;
        r
  in
  let table = t.tables.(node) in
  List.iter (fun prefix -> Fwd.remove_route table prefix) !installed;
  installed := [];
  List.iter
    (fun (route : Lsdb.route) ->
      let next_hops =
        List.filter_map
          (fun rid ->
            match Daemon.interface_of_neighbor daemon rid with
            | Some iface -> Hashtbl.find_opt links iface
            | None -> None)
          route.Lsdb.next_hops
      in
      if next_hops <> [] then begin
        Fwd.set_route table route.Lsdb.prefix ~next_hops;
        installed := route.Lsdb.prefix :: !installed
      end)
    routes

let build ?(hello_interval = Time.of_sec 2.0) ?(dead_interval = Time.of_sec 8.0)
    ~cm ~originate topo =
  let sched = Connection_manager.scheduler cm in
  let trace = Connection_manager.trace cm in
  let t =
    {
      fabric_topo = topo;
      sched;
      daemons = Hashtbl.create 64;
      tables = Array.init (Topology.n_nodes topo) (fun _ -> Fwd.create ());
      iface_links = Hashtbl.create 64;
      ospf_installed = Hashtbl.create 64;
      originated = Hashtbl.create 64;
      prefixes = [];
      sessions = [];
      converged_fired = false;
      converged_hooks = [];
      checker_armed = false;
    }
  in
  List.iter
    (fun (n : Topology.node) ->
      if is_daemon_node n then begin
        let stubs = originate n.Topology.id in
        Hashtbl.replace t.originated n.Topology.id (List.map fst stubs);
        t.prefixes <- List.map fst stubs @ t.prefixes;
        let router_id =
          match n.Topology.ip with
          | Some ip -> ip
          | None -> synth_router_id n.Topology.id
        in
        let proc = Process.create sched ~name:("ospf-" ^ n.Topology.name) in
        let config =
          {
            (Daemon.default_config ~router_id) with
            Daemon.hello_interval;
            dead_interval;
            stub_prefixes = stubs;
          }
        in
        let daemon = Daemon.create ~trace proc config in
        Hashtbl.replace t.daemons n.Topology.id daemon;
        Hashtbl.replace t.iface_links n.Topology.id (Hashtbl.create 8)
      end)
    (Topology.nodes topo);
  t.prefixes <- List.sort_uniq Prefix.compare t.prefixes;
  (* Adjacencies over inter-daemon links. *)
  List.iter
    (fun (l : Topology.link) ->
      if l.Topology.link_id < l.Topology.peer then
        match
          ( Hashtbl.find_opt t.daemons l.Topology.src,
            Hashtbl.find_opt t.daemons l.Topology.dst )
        with
        | Some daemon_a, Some daemon_b ->
            let name =
              Printf.sprintf "ospf %s<->%s"
                (Topology.node topo l.Topology.src).Topology.name
                (Topology.node topo l.Topology.dst).Topology.name
            in
            let channel = Connection_manager.control_channel ~name cm in
            let ep_a, ep_b = Channel.endpoints channel in
            let iface_a = Daemon.add_interface daemon_a ep_a in
            let iface_b = Daemon.add_interface daemon_b ep_b in
            Hashtbl.replace
              (Hashtbl.find t.iface_links l.Topology.src)
              iface_a l.Topology.link_id;
            Hashtbl.replace
              (Hashtbl.find t.iface_links l.Topology.dst)
              iface_b l.Topology.peer;
            t.sessions <-
              { node_a = l.Topology.src; node_b = l.Topology.dst; channel }
              :: t.sessions
        | None, _ | _, None -> ())
    (Topology.links topo);
  (* FIB wiring. *)
  Hashtbl.iter
    (fun node daemon ->
      Daemon.on_routes_change daemon (fun routes -> install_routes t node routes))
    t.daemons;
  (* Static routes, as in the BGP fabric. *)
  List.iter
    (fun (h : Topology.node) ->
      if h.Topology.kind = Topology.Host then
        match Topology.out_links topo h.Topology.id with
        | [ up ] -> (
            Fwd.set_route t.tables.(h.Topology.id) Prefix.any
              ~next_hops:[ up.Topology.link_id ];
            match h.Topology.ip with
            | Some ip ->
                let down = Topology.link topo up.Topology.peer in
                Fwd.set_route t.tables.(up.Topology.dst) (Prefix.host ip)
                  ~next_hops:[ down.Topology.link_id ]
            | None -> ())
        | [] | _ :: _ ->
            invalid_arg "Ospf_fabric.build: hosts must have degree 1")
    (Topology.nodes topo);
  t

let start t = Hashtbl.iter (fun _node daemon -> Daemon.start daemon) t.daemons

let topo t = t.fabric_topo

let daemons t =
  Hashtbl.fold (fun node daemon acc -> (node, daemon) :: acc) t.daemons []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let daemon t node = Hashtbl.find_opt t.daemons node
let table t node = t.tables.(node)
let all_prefixes t = t.prefixes

let is_converged t =
  Hashtbl.fold
    (fun node _daemon acc ->
      acc
      &&
      let own = Option.value (Hashtbl.find_opt t.originated node) ~default:[] in
      List.for_all
        (fun prefix ->
          List.exists (Prefix.equal prefix) own
          || Option.is_some (Fwd.lookup t.tables.(node) (Prefix.network prefix)))
        t.prefixes)
    t.daemons true

let when_converged ?(check_every = Time.of_ms 50) t k =
  if t.converged_fired then k ()
  else begin
    t.converged_hooks <- k :: t.converged_hooks;
    if not t.checker_armed then begin
      t.checker_armed <- true;
      let recurring = ref None in
      let check () =
        if (not t.converged_fired) && is_converged t then begin
          t.converged_fired <- true;
          Horse_telemetry.Registry.Gauge.set
            (Horse_telemetry.Registry.gauge (Sched.registry t.sched)
               ~subsystem:"ospf"
               ~help:"Virtual time at which the fabric converged, seconds"
               "convergence_seconds")
            (Time.to_sec (Sched.now t.sched));
          Option.iter Sched.cancel_recurring !recurring;
          List.iter (fun k -> k ()) (List.rev t.converged_hooks);
          t.converged_hooks <- []
        end
      in
      recurring := Some (Sched.every t.sched check_every check)
    end
  end

let path_for ?hash t key =
  Fib_walk.path_for ?hash ~topo:t.fabric_topo
    ~table:(fun node -> t.tables.(node))
    key

let adjacencies_expected t = List.length t.sessions

let adjacencies_full t =
  Hashtbl.fold (fun _node d acc -> acc + Daemon.full_neighbors d) t.daemons 0 / 2

let fail_link t ~a ~b =
  match
    List.find_opt
      (fun s -> (s.node_a = a && s.node_b = b) || (s.node_a = b && s.node_b = a))
      t.sessions
  with
  | None -> false
  | Some session ->
      Channel.close session.channel;
      true
