(* Performance smoke for the fluid data plane: a down-scaled TE
   scenario (the FIG3 workload at its smallest size) where every host
   flow starts in the single BGP-convergence event.  Recompute
   coalescing must fold that burst into a bounded number of max-min
   solves; if the solve count creeps back toward one-per-mutation this
   exits non-zero and fails @bench-smoke (and @runtest with it).

   Writes the run's full telemetry snapshot to the path given as
   argv(1), in the same JSON shape as the bench harness's
   results/BENCH_*.json artefacts. *)

module Time = Horse_engine.Time
module Scenario = Horse_core.Scenario
module Registry = Horse_telemetry.Registry

let () =
  let out = Sys.argv.(1) in
  let r =
    Scenario.run_fat_tree_te ~pods:4 ~te:Scenario.Bgp_ecmp
      ~duration:(Time.of_sec 10.0) ()
  in
  let reg = r.Scenario.registry in
  let counter name =
    match Registry.find_counter reg name with
    | Some c -> Registry.Counter.value c
    | None -> failwith ("bench_smoke: counter not registered: " ^ name)
  in
  let requests = counter "horse_fluid_recompute_requests_total" in
  let solves = counter "horse_fluid_recomputes_total" in
  let oc = open_out out in
  output_string oc
    (Horse_telemetry.Json.to_string (Horse_telemetry.Export.json reg));
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench-smoke: %d recompute requests coalesced into %d solves\n"
    requests solves;
  (* Sanity: all 16 hosts started a flow and at least one solve ran. *)
  if solves = 0 || requests < r.Scenario.n_hosts then begin
    Printf.eprintf "bench-smoke: implausible counters (requests=%d, solves=%d)\n"
      requests solves;
    exit 1
  end;
  (* Coalescing budget: the convergence burst must cost at least 5x
     fewer solves than recompute requests. *)
  if solves * 5 > requests then begin
    Printf.eprintf
      "bench-smoke: coalescing budget exceeded: %d solves for %d requests \
       (want requests/solves >= 5)\n"
      solves requests;
    exit 1
  end
