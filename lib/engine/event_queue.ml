(* Hierarchical timing wheel with a due-heap front and an overflow
   heap back (see DESIGN.md "Scheduler fast path").

   Layout: three levels of 256 slots at power-of-two granularities —
   level 0 buckets 2^10 us (~1 ms, one FTI increment), level 1 2^18 us
   (~0.26 s), level 2 2^26 us (~67 s) — spanning ~4.77 h of future
   from the wheel anchor [base]; anything farther sits in an overflow
   min-heap. Entries at or past [base] live in the cheapest structure
   that covers them; entries before [base] (including past times — the
   queue stays time-agnostic) go into the [due] min-heap, ordered by
   the global (timestamp, sequence) key, from which every pop is
   served.

   Advancing: when [due] runs dry, [base] moves to the start of the
   earliest occupied slot (or the overflow watermark) — never past a
   live entry — and that slot's entries cascade: a level-0 slot spills
   into [due] wholesale, a higher-level slot re-buckets strictly below
   its level, and the overflow drains entries the wheel horizon now
   covers. Same-timestamp ties across structures resolve by processing
   the coarser structure first, so after cascading, the (time, seq)
   order inside [due] reproduces the reference heap's pop order
   exactly (Heap_queue, checked by the differential suite).

   Costs: schedule and cancel are O(1) (cancellation is lazy — a
   cancelled entry is dropped when its slot cascades or it surfaces in
   a heap); reschedule is cancel + O(1) reinsert on the same handle;
   each entry cascades at most [levels] times, so the per-event cost
   is O(1) amortised against heap timers' O(log n). *)

let g0_bits = 10
let slot_bits = 8
let wheel_slots = 1 lsl slot_bits
let levels = 3
let g0 = 1 lsl g0_bits

type entry = {
  time : Time.t;
  us : int;  (* Time.to_us time, cached for slot arithmetic *)
  seq : int;
  action : unit -> unit;
  cause : int;  (* opaque causal id carried to the pop site; -1 = none *)
  mutable cancelled : bool;
  mutable loc : loc;
}

and loc = Nowhere | In_due | In_overflow | In_slot of int
(* In_slot k: k = level * wheel_slots + slot index. Nowhere: popped,
   cleared, or dropped as garbage — no structure holds it. *)

(* Min-heap over (us, seq) with lazy deletion, used for both [due] and
   [overflow]. [hlive] counts live (non-cancelled) entries physically
   present; cancellation decrements it externally via [dec_loc]. *)
type heap = { mutable arr : entry array; mutable len : int; mutable hlive : int }

type t = {
  (* Wheel anchor, microseconds, always a multiple of [g0] and
     monotone: every wheel/overflow entry is >= base, every due entry
     is < base. *)
  mutable base : int;
  due : heap;
  overflow : heap;
  slots : entry list array;  (* levels * wheel_slots buckets, newest first *)
  slot_live : int array;
  level_live : int array;  (* live entries per level, to skip empty scans *)
  mutable next_seq : int;
  mutable live : int;
}

type handle = { q : t; mutable cur : entry }

let dummy =
  {
    time = Time.zero;
    us = 0;
    seq = -1;
    action = (fun () -> ());
    cause = -1;
    cancelled = true;
    loc = Nowhere;
  }

let heap_make () = { arr = Array.make 64 dummy; len = 0; hlive = 0 }

let create () =
  {
    base = 0;
    due = heap_make ();
    overflow = heap_make ();
    slots = Array.make (levels * wheel_slots) [];
    slot_live = Array.make (levels * wheel_slots) 0;
    level_live = Array.make levels 0;
    next_seq = 0;
    live = 0;
  }

(* --- the two heaps ---------------------------------------------------- *)

let before a b = if a.us = b.us then a.seq < b.seq else a.us < b.us

let hswap h i j =
  let tmp = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- tmp

let rec hsift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.arr.(i) h.arr.(parent) then begin
      hswap h i parent;
      hsift_up h parent
    end
  end

let rec hsift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && before h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.len && before h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    hswap h i !smallest;
    hsift_down h !smallest
  end

let hcompact h =
  let j = ref 0 in
  for i = 0 to h.len - 1 do
    let e = h.arr.(i) in
    if not e.cancelled then begin
      h.arr.(!j) <- e;
      incr j
    end
    else e.loc <- Nowhere
  done;
  Array.fill h.arr !j (h.len - !j) dummy;
  h.len <- !j;
  for i = (h.len / 2) - 1 downto 0 do
    hsift_down h i
  done

let heap_push h e =
  if h.len >= 64 && h.len - h.hlive > h.len / 2 then hcompact h;
  if h.len = Array.length h.arr then begin
    let arr = Array.make (2 * Array.length h.arr) dummy in
    Array.blit h.arr 0 arr 0 h.len;
    h.arr <- arr
  end;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  h.hlive <- h.hlive + 1;
  hsift_up h (h.len - 1)

let heap_remove_top h =
  h.len <- h.len - 1;
  h.arr.(0) <- h.arr.(h.len);
  h.arr.(h.len) <- dummy;
  if h.len > 0 then hsift_down h 0

(* Cancelled entries at the top are garbage: their [hlive] share was
   already released at cancel time. *)
let rec heap_peek h =
  if h.len = 0 then None
  else begin
    let e = h.arr.(0) in
    if e.cancelled then begin
      e.loc <- Nowhere;
      heap_remove_top h;
      heap_peek h
    end
    else Some e
  end

let heap_pop h =
  match heap_peek h with
  | None -> None
  | Some e ->
      heap_remove_top h;
      h.hlive <- h.hlive - 1;
      Some e

(* --- placement -------------------------------------------------------- *)

(* Bucket an entry (us >= base) into the lowest level whose current
   window covers it. The window test is index-based — [n] distinct
   per level — so a slot never mixes entries from different wheel
   revolutions. *)
let insert_wheel t e =
  let us = e.us in
  let rec place l =
    if l >= levels then begin
      e.loc <- In_overflow;
      heap_push t.overflow e
    end
    else begin
      let sh = g0_bits + (slot_bits * l) in
      let n = us lsr sh in
      if n - (t.base lsr sh) < wheel_slots then begin
        let k = (l * wheel_slots) + (n land (wheel_slots - 1)) in
        e.loc <- In_slot k;
        t.slots.(k) <- e :: t.slots.(k);
        t.slot_live.(k) <- t.slot_live.(k) + 1;
        t.level_live.(l) <- t.level_live.(l) + 1
      end
      else place (l + 1)
    end
  in
  place 0

let insert t e =
  if e.us < t.base then begin
    e.loc <- In_due;
    heap_push t.due e
  end
  else insert_wheel t e

let make_entry t time action cause =
  let e =
    {
      time;
      us = Time.to_us time;
      seq = t.next_seq;
      action;
      cause;
      cancelled = false;
      loc = Nowhere;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  insert t e;
  e

let schedule t ?(cause = -1) time action =
  { q = t; cur = make_entry t time action cause }

(* Release the live-count share of a cancelled entry from whichever
   structure holds it; the entry itself is garbage-collected lazily. *)
let dec_loc t = function
  | Nowhere -> ()
  | In_due -> t.due.hlive <- t.due.hlive - 1
  | In_overflow -> t.overflow.hlive <- t.overflow.hlive - 1
  | In_slot k ->
      t.slot_live.(k) <- t.slot_live.(k) - 1;
      t.level_live.(k / wheel_slots) <- t.level_live.(k / wheel_slots) - 1

let retire t (e : entry) =
  if not e.cancelled then begin
    e.cancelled <- true;
    (* Entries already popped (or cleared) no longer count. *)
    if e.loc <> Nowhere then begin
      dec_loc t e.loc;
      t.live <- t.live - 1
    end
  end

let cancel (h : handle) = retire h.q h.cur
let is_cancelled (h : handle) = h.cur.cancelled

let reschedule (h : handle) at =
  retire h.q h.cur;
  h.cur <- make_entry h.q at h.cur.action h.cur.cause

(* --- advancing the wheel ---------------------------------------------- *)

(* Earliest occupied slot of a level, as (absolute slot start, slot
   array index). Scans the level's 256-slot window from [base]
   upward; O(1) skip when the level is empty. *)
let level_candidate t l =
  if t.level_live.(l) = 0 then None
  else begin
    let sh = g0_bits + (slot_bits * l) in
    let a = t.base lsr sh in
    let rec scan k =
      if k = wheel_slots then None
      else begin
        let n = a + k in
        let idx = (l * wheel_slots) + (n land (wheel_slots - 1)) in
        if t.slot_live.(idx) > 0 then Some (n lsl sh, l, idx) else scan (k + 1)
      end
    in
    scan 0
  end

(* Pull entries forward until the earliest live entry (if any) sits in
   [due]. [base] only ever moves to the start of the earliest occupied
   structure, so no live entry is passed over; on equal starts the
   coarser structure cascades first, which preserves the global
   (time, seq) pop order. *)
let rec refill t =
  if t.due.hlive = 0 && t.live > 0 then begin
    let best = ref None in
    for l = 0 to levels - 1 do
      match level_candidate t l with
      | None -> ()
      | Some (start, _, _) as c -> (
          match !best with
          | Some (s, _, _) when s < start -> ()
          | _ -> best := c)
    done;
    let overflow_start =
      match heap_peek t.overflow with
      | Some e -> Some (e.us land lnot (g0 - 1))
      | None -> None
    in
    let use_overflow =
      match (overflow_start, !best) with
      | Some os, Some (s, _, _) -> os <= s
      | Some _, None -> true
      | None, _ -> false
    in
    if use_overflow then begin
      (match overflow_start with
      | Some os -> t.base <- max t.base os
      | None -> ());
      (* Re-anchored: drain every overflow entry the level-2 window
         now covers back through normal placement. *)
      let sh2 = g0_bits + (slot_bits * (levels - 1)) in
      let rec drain () =
        match heap_peek t.overflow with
        | Some e when (e.us lsr sh2) - (t.base lsr sh2) < wheel_slots ->
            ignore (heap_pop t.overflow);
            insert_wheel t e;
            drain ()
        | Some _ | None -> ()
      in
      drain ();
      refill t
    end
    else
      match !best with
      | None -> ()  (* unreachable: live > 0 implies some structure holds it *)
      | Some (start, l, idx) ->
          let es = t.slots.(idx) in
          t.slots.(idx) <- [];
          t.level_live.(l) <- t.level_live.(l) - t.slot_live.(idx);
          t.slot_live.(idx) <- 0;
          if l = 0 then begin
            (* The whole slot becomes due; new arrivals inside its
               window must join [due] too, or they could hide behind
               an already-extracted slot. *)
            t.base <- max t.base start + g0;
            List.iter
              (fun e ->
                if e.cancelled then e.loc <- Nowhere
                else begin
                  e.loc <- In_due;
                  heap_push t.due e
                end)
              es
          end
          else begin
            t.base <- max t.base start;
            (* Entries of a level-l slot always rebucket strictly
               below level l, so cascades terminate. *)
            List.iter
              (fun e ->
                if e.cancelled then e.loc <- Nowhere else insert_wheel t e)
              es
          end;
          refill t
  end

(* --- the queue API ---------------------------------------------------- *)

let size t = t.live
let is_empty t = t.live = 0

let next_time t =
  refill t;
  match heap_peek t.due with Some e -> Some e.time | None -> None

let take_due t e =
  ignore (heap_pop t.due);
  e.loc <- Nowhere;
  t.live <- t.live - 1;
  Some (e.time, e.action, e.cause)

let pop t =
  refill t;
  match heap_peek t.due with None -> None | Some e -> take_due t e

let pop_until t limit =
  refill t;
  match heap_peek t.due with
  | Some e when Time.(e.time <= limit) -> take_due t e
  | Some _ | None -> None

let clear t =
  let clear_heap h =
    for i = 0 to h.len - 1 do
      h.arr.(i).loc <- Nowhere
    done;
    Array.fill h.arr 0 h.len dummy;
    h.len <- 0;
    h.hlive <- 0
  in
  clear_heap t.due;
  clear_heap t.overflow;
  for k = 0 to (levels * wheel_slots) - 1 do
    List.iter (fun e -> e.loc <- Nowhere) t.slots.(k);
    t.slots.(k) <- [];
    t.slot_live.(k) <- 0
  done;
  Array.fill t.level_live 0 levels 0;
  t.live <- 0

type occupancy = { occ_due : int; occ_levels : int array; occ_overflow : int }

let occupancy t =
  {
    occ_due = t.due.hlive;
    occ_levels = Array.copy t.level_live;
    occ_overflow = t.overflow.hlive;
  }
