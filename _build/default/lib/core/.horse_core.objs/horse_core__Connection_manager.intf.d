lib/core/connection_manager.mli: Channel Horse_emulation Horse_engine Sched Time Trace
