open Horse_engine

type direction = A_to_b | B_to_a

type side = {
  mutable receiver : (Bytes.t -> unit) option;
  mutable backlog : Bytes.t list;  (* reversed *)
  mutable on_close : (unit -> unit) option;
}

type t = {
  sched : Sched.t;
  latency : Time.t;
  a : side;
  b : side;
  mutable observer : (direction -> Bytes.t -> unit) option;
  mutable open_ : bool;
  mutable messages : int;
  mutable bytes : int;
}

type endpoint = { chan : t; mine : side; theirs : side; dir_out : direction }

let new_side () = { receiver = None; backlog = []; on_close = None }

let create sched ?(latency = Time.of_ms 1) () =
  {
    sched;
    latency;
    a = new_side ();
    b = new_side ();
    observer = None;
    open_ = true;
    messages = 0;
    bytes = 0;
  }

let endpoints t =
  ( { chan = t; mine = t.a; theirs = t.b; dir_out = A_to_b },
    { chan = t; mine = t.b; theirs = t.a; dir_out = B_to_a } )

let peer e = { chan = e.chan; mine = e.theirs; theirs = e.mine; dir_out = (match e.dir_out with A_to_b -> B_to_a | B_to_a -> A_to_b) }

let deliver side msg =
  match side.receiver with
  | Some f -> f msg
  | None -> side.backlog <- msg :: side.backlog

let set_receiver e f =
  e.mine.receiver <- Some f;
  let queued = List.rev e.mine.backlog in
  e.mine.backlog <- [];
  List.iter f queued

let send e msg =
  let t = e.chan in
  if t.open_ then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + Bytes.length msg;
    (match t.observer with Some obs -> obs e.dir_out msg | None -> ());
    let target = e.theirs in
    ignore
      (Sched.schedule_after t.sched t.latency (fun () ->
           if t.open_ then deliver target msg))
  end

let send_many e msgs =
  match msgs with
  | [] -> ()
  | [ msg ] -> send e msg
  | msgs ->
      let t = e.chan in
      if t.open_ then begin
        List.iter
          (fun msg ->
            t.messages <- t.messages + 1;
            t.bytes <- t.bytes + Bytes.length msg;
            match t.observer with
            | Some obs -> obs e.dir_out msg
            | None -> ())
          msgs;
        let target = e.theirs in
        (* One scheduler event delivers the whole batch in order. *)
        ignore
          (Sched.schedule_after t.sched t.latency (fun () ->
               if t.open_ then List.iter (deliver target) msgs))
      end

let set_observer t obs = t.observer <- Some obs

let set_on_close e f = e.mine.on_close <- Some f

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (match t.a.on_close with Some f -> f () | None -> ());
    match t.b.on_close with Some f -> f () | None -> ()
  end

let is_open t = t.open_
let messages_sent t = t.messages
let bytes_sent t = t.bytes
