open Horse_engine

type direction = A_to_b | B_to_a

type impairment = {
  loss : float;
  extra_delay : Time.t;
  jitter : Time.t;
  duplicate : float;
}

let no_impairment =
  { loss = 0.0; extra_delay = Time.zero; jitter = Time.zero; duplicate = 0.0 }

(* Every mutable field lives on a side, and each side is owned by
   exactly one scheduler: for a plain channel both sides share one
   scheduler, for a split (cross-shard) channel each side belongs to
   its shard's scheduler and is only ever touched by that shard's
   domain — sends mutate the sender's side, deliveries mutate the
   receiver's side, and the only traffic between them is the immutable
   (time, thunk) pairs carried through the barrier mailboxes
   ([s_post]). That ownership rule is what makes the multicore run
   data-race-free without a single lock on the send path. *)
type side = {
  s_sched : Sched.t;
  s_post : (at:Time.t -> (unit -> unit) -> unit) option;
      (* when present, deliveries towards the peer side travel through
         the barrier mailbox instead of the local event queue *)
  mutable receiver : (Bytes.t -> unit) option;
  mutable backlog : Bytes.t list;  (* reversed *)
  mutable on_close : (unit -> unit) option;
  mutable on_wake : (unit -> unit) option;
  mutable s_open : bool;
  mutable s_messages : int;
  mutable s_bytes : int;
  mutable s_impair : (impairment * Rng.t) option;
  mutable s_observer : (direction -> Bytes.t -> unit) option;
  mutable s_dropped : int;
  mutable s_duplicated : int;
}

type t = { latency : Time.t; a : side; b : side; split : bool }

type endpoint = { chan : t; mine : side; theirs : side; dir_out : direction }

let new_side sched post =
  {
    s_sched = sched;
    s_post = post;
    receiver = None;
    backlog = [];
    on_close = None;
    on_wake = None;
    s_open = true;
    s_messages = 0;
    s_bytes = 0;
    s_impair = None;
    s_observer = None;
    s_dropped = 0;
    s_duplicated = 0;
  }

let create sched ?(latency = Time.of_ms 1) () =
  {
    latency;
    a = new_side sched None;
    b = new_side sched None;
    split = false;
  }

let create_split ~sched_a ~sched_b ~post_to_b ~post_to_a
    ?(latency = Time.of_ms 1) () =
  {
    latency;
    a = new_side sched_a (Some post_to_b);
    b = new_side sched_b (Some post_to_a);
    split = true;
  }

let is_split t = t.split

let endpoints t =
  ( { chan = t; mine = t.a; theirs = t.b; dir_out = A_to_b },
    { chan = t; mine = t.b; theirs = t.a; dir_out = B_to_a } )

let peer e =
  {
    chan = e.chan;
    mine = e.theirs;
    theirs = e.mine;
    dir_out = (match e.dir_out with A_to_b -> B_to_a | B_to_a -> A_to_b);
  }

let endpoint_sched e = e.mine.s_sched

let deliver side msg =
  (match side.receiver with
  | Some f -> f msg
  | None -> side.backlog <- msg :: side.backlog);
  (* Input arrived: let the owning process's dozing pollers run.
     After the receiver, so a poller woken by this message never
     observes the channel state from before it. *)
  match side.on_wake with Some w -> w () | None -> ()

let set_wake e f = e.mine.on_wake <- Some f

let set_receiver e f =
  e.mine.receiver <- Some f;
  let queued = List.rev e.mine.backlog in
  e.mine.backlog <- [];
  List.iter f queued

(* Delivery of one message to [target], [delay] after the sender's
   now. Local sides schedule straight into the shared event queue;
   split sides hand the thunk to the barrier mailbox, stamped with the
   exact delivery time — the destination shard executes it at that
   virtual instant (latency >= barrier quantum guarantees the instant
   is still in its future), and the delivery itself counts as control
   activity there, since the sender's FTI transition happened on
   another scheduler. *)
let schedule_delivery sender target delay msg =
  match sender.s_post with
  | None ->
      ignore
        (Sched.schedule_after sender.s_sched delay (fun () ->
             if target.s_open then deliver target msg))
  | Some post ->
      post
        ~at:(Time.add (Sched.now sender.s_sched) delay)
        (fun () ->
          if target.s_open then begin
            Sched.control_activity ~reason:"cross-shard delivery"
              target.s_sched;
            deliver target msg
          end)

(* Impairments act at send time, on the sender's side of the pipe —
   like a lossy link, not a broken receiver. Per message the draw
   order is fixed (loss, jitter, duplicate, duplicate's jitter) and
   draws are taken whenever the corresponding knob is enabled,
   regardless of earlier outcomes, so a given seed always consumes the
   stream identically for the same message sequence. *)
let impaired_schedule t sender target msg =
  match sender.s_impair with
  | None -> schedule_delivery sender target t.latency msg
  | Some (imp, rng) ->
      let draw_jitter () =
        if Time.(imp.jitter > Time.zero) then
          Time.of_us (Rng.int rng (max 1 (Time.to_us imp.jitter)))
        else Time.zero
      in
      let lost = imp.loss > 0.0 && Rng.float rng 1.0 < imp.loss in
      let base = Time.add t.latency imp.extra_delay in
      let delay = Time.add base (draw_jitter ()) in
      let dup = imp.duplicate > 0.0 && Rng.float rng 1.0 < imp.duplicate in
      let dup_delay = Time.add base (draw_jitter ()) in
      if lost then begin
        sender.s_dropped <- sender.s_dropped + 1;
        (* Leaf node: the message's provenance ends at the lossy link. *)
        ignore (Sched.cause_point sender.s_sched ~kind:"chan:drop" (fun () -> ""))
      end
      else begin
        schedule_delivery sender target delay msg;
        if dup then begin
          sender.s_duplicated <- sender.s_duplicated + 1;
          (* The copy gets its own node so downstream effects of the
             duplicate are distinguishable from the original's. *)
          Sched.protect_cause sender.s_sched (fun () ->
              ignore
                (Sched.cause_point sender.s_sched ~kind:"chan:dup" (fun () ->
                     ""));
              schedule_delivery sender target dup_delay msg)
        end
      end

(* chan:send detail thunks, shared per distinct message length: the
   graph stores one closure per size ever seen instead of one per
   message, so tracing a storm promotes a handful of closures, not
   thousands. Domain-local, because concurrent shard domains all send
   and an unsynchronised shared table would race. *)
let len_details_key : (int, unit -> string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let detail_of_len n =
  let len_details = Domain.DLS.get len_details_key in
  match Hashtbl.find_opt len_details n with
  | Some f -> f
  | None ->
      let f () = string_of_int n ^ "B" in
      Hashtbl.add len_details n f;
      f

let send e msg =
  let mine = e.mine in
  if mine.s_open then begin
    mine.s_messages <- mine.s_messages + 1;
    mine.s_bytes <- mine.s_bytes + Bytes.length msg;
    (match mine.s_observer with Some obs -> obs e.dir_out msg | None -> ());
    (* Bracketed so back-to-back sends are causal siblings, not a
       chain. *)
    let detail = detail_of_len (Bytes.length msg) in
    Sched.protect_cause mine.s_sched (fun () ->
        ignore (Sched.cause_point mine.s_sched ~kind:"chan:send" detail);
        impaired_schedule e.chan mine e.theirs msg)
  end

let send_many e msgs =
  match msgs with
  | [] -> ()
  | [ msg ] -> send e msg
  | msgs ->
      let mine = e.mine in
      if mine.s_open then begin
        List.iter
          (fun msg ->
            mine.s_messages <- mine.s_messages + 1;
            mine.s_bytes <- mine.s_bytes + Bytes.length msg;
            match mine.s_observer with
            | Some obs -> obs e.dir_out msg
            | None -> ())
          msgs;
        match mine.s_impair with
        | Some _ ->
            (* Per-message fates (drop/duplicate/jitter) break the
               single-event batch; fall back to per-message delivery. *)
            List.iter
              (fun msg ->
                let detail = detail_of_len (Bytes.length msg) in
                Sched.protect_cause mine.s_sched (fun () ->
                    ignore
                      (Sched.cause_point mine.s_sched ~kind:"chan:send" detail);
                    impaired_schedule e.chan mine e.theirs msg))
              msgs
        | None ->
            let target = e.theirs in
            (* One scheduler event (or one mailbox item) delivers the
               whole batch in order. *)
            let detail =
              let n = List.length msgs in
              fun () -> "batch n=" ^ string_of_int n
            in
            Sched.protect_cause mine.s_sched (fun () ->
                ignore
                  (Sched.cause_point mine.s_sched ~kind:"chan:send" detail);
                match mine.s_post with
                | None ->
                    ignore
                      (Sched.schedule_after mine.s_sched e.chan.latency
                         (fun () ->
                           if target.s_open then List.iter (deliver target) msgs))
                | Some post ->
                    post
                      ~at:(Time.add (Sched.now mine.s_sched) e.chan.latency)
                      (fun () ->
                        if target.s_open then begin
                          Sched.control_activity
                            ~reason:"cross-shard delivery" target.s_sched;
                          List.iter (deliver target) msgs
                        end))
      end

let set_impairment t ~rng imp =
  if imp.loss < 0.0 || imp.loss > 1.0 then
    invalid_arg "Channel.set_impairment: loss must be in [0, 1]";
  if imp.duplicate < 0.0 || imp.duplicate > 1.0 then
    invalid_arg "Channel.set_impairment: duplicate must be in [0, 1]";
  if Time.(imp.extra_delay < Time.zero) || Time.(imp.jitter < Time.zero) then
    invalid_arg "Channel.set_impairment: delays must be non-negative";
  if t.split then
    invalid_arg
      "Channel.set_impairment: split channel — impair each endpoint with \
       set_endpoint_impairment";
  (* Both directions share the (impairment, rng) pair, so the draw
     stream interleaves across directions in global send order —
     unchanged from the single-sided implementation. *)
  t.a.s_impair <- Some (imp, rng);
  t.b.s_impair <- Some (imp, rng)

let clear_impairment t =
  t.a.s_impair <- None;
  t.b.s_impair <- None

let set_endpoint_impairment e ~rng imp =
  (match imp with
  | Some imp ->
      if imp.loss < 0.0 || imp.loss > 1.0 then
        invalid_arg "Channel.set_endpoint_impairment: loss must be in [0, 1]";
      if imp.duplicate < 0.0 || imp.duplicate > 1.0 then
        invalid_arg
          "Channel.set_endpoint_impairment: duplicate must be in [0, 1]";
      if Time.(imp.extra_delay < Time.zero) || Time.(imp.jitter < Time.zero)
      then
        invalid_arg
          "Channel.set_endpoint_impairment: delays must be non-negative"
  | None -> ());
  e.mine.s_impair <- Option.map (fun i -> (i, rng)) imp

let impairment t = Option.map fst t.a.s_impair
let impaired_dropped t = t.a.s_dropped + t.b.s_dropped
let impaired_duplicated t = t.a.s_duplicated + t.b.s_duplicated

let set_observer t obs =
  t.a.s_observer <- Some obs;
  t.b.s_observer <- Some obs

let set_endpoint_observer e obs = e.mine.s_observer <- Some obs

let set_on_close e f = e.mine.on_close <- Some f

let close_side side =
  if side.s_open then begin
    side.s_open <- false;
    (match side.on_close with
    | Some f -> Sched.protect_cause side.s_sched f
    | None -> ());
    match side.on_wake with Some w -> w () | None -> ()
  end

let close t =
  if t.split then
    invalid_arg "Channel.close: split channel — use close_endpoint";
  if t.a.s_open || t.b.s_open then begin
    (* Each side's teardown is a causal sibling of the other's — both
       children of whatever closed the channel. A close is input too:
       dozing owners must get a tick to react (tear sessions down,
       start reconnecting). *)
    close_side t.a;
    close_side t.b
  end

(* One-sided close, from the domain that owns [e.mine]: the local side
   tears down now; the peer side learns at the next barrier, on its
   own scheduler — a deterministic instant, like a RST crossing the
   link. In-flight deliveries towards either side check that side's
   open flag at execution, so nothing lands after the teardown. *)
let close_endpoint e =
  if not e.chan.split then close e.chan
  else begin
    close_side e.mine;
    match e.mine.s_post with
    | None -> assert false (* split channels always post *)
    | Some post ->
        let theirs = e.theirs in
        post
          ~at:(Sched.now e.mine.s_sched)
          (fun () ->
            if theirs.s_open then begin
              Sched.control_activity ~reason:"cross-shard close" theirs.s_sched;
              close_side theirs
            end)
  end

let is_open t = t.a.s_open && t.b.s_open
let endpoint_open e = e.mine.s_open
let messages_sent t = t.a.s_messages + t.b.s_messages
let bytes_sent t = t.a.s_bytes + t.b.s_bytes
