test/test_ospf.mli:
