(** An OpenFlow fabric: one emulated switch agent per switch node, an
    emulated controller process, and the machinery that lets the fluid
    data plane consult the flow tables — "in this case the control
    plane packets are actually sent to the data plane allowing for
    programmability" (paper §2).

    When a fluid flow starts, {!route_flow} walks the flow tables from
    the source host. A table miss raises a real PACKET_IN (carrying
    the flow's first frame) from the missing switch; once the
    controller's FLOW_MODs / PACKET_OUT come back, the walk resumes
    and the completed path is handed to the caller, who starts the
    fluid flow on it. Edge switches serve flow statistics backed by
    the fluid engine's byte integrals, so Hedera polls real numbers. *)

open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane
open Horse_openflow
open Horse_controller

type t

val build :
  ?channel_latency:Time.t ->
  ?classifier:Horse_openflow.Classifier.backend ->
  cm:Connection_manager.t ->
  fluid:Fluid.t ->
  Topology.t ->
  t
(** Creates the controller and every switch agent, connects them
    through CM-observed channels (default latency 1 ms), and performs
    the handshake when the scheduler runs. Dpids equal node ids;
    port [i+1] of a switch is its [i]-th out-link.  [classifier]
    selects every switch's slow-path lookup backend (default
    tuple-space search). *)

val controller : t -> Controller.t
val env : t -> Env.t
val agent : t -> int -> Switch.t option
(** The switch agent on a node. *)

val route_flow : t -> Flow_key.t -> on_ready:(Spf.path -> unit) -> unit
(** Resolves the path for a new flow as described above. [on_ready]
    fires exactly once, possibly synchronously when every table
    already matches. Unresolvable flows (no route installed and no
    controller response) simply stay pending. *)

val resolve_now : t -> Flow_key.t -> Spf.path option
(** Pure table walk without PACKET_IN side effects; [None] on any
    miss. Used to re-resolve after a reroute. *)

val pending_flows : t -> int
val packet_ins : t -> int
(** Total PACKET_INs raised by all agents. *)

val handshaken : t -> bool
(** All switches completed the OpenFlow handshake. *)

val fail_link : t -> a:int -> b:int -> bool
(** Takes the duplex link between two adjacent switches down: both
    agents raise PORT_STATUS to the controller, their [link_of_port]
    stops resolving the ports, and table entries pointing at them act
    as misses (re-raising PACKET_INs) until the applications repair
    the paths. Returns [false] if the nodes are not adjacent
    switches. *)

val restore_link : t -> a:int -> b:int -> bool
