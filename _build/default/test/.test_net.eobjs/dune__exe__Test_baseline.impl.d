test/test_baseline.ml: Alcotest Horse_baseline Horse_engine Mininet_model Time
