open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane
open Horse_emulation
open Horse_ospf

type session = {
  node_a : int;
  node_b : int;
  iface_at_a : int;
  iface_at_b : int;
  mutable channel : Channel.t;
  session_name : string;
}

type t = {
  fabric_topo : Topology.t;
  sched : Sched.t;
  cm : Connection_manager.t;
  daemons : (int, Daemon.t) Hashtbl.t;  (* node id -> daemon *)
  processes : (int, Process.t) Hashtbl.t;
  tables : Fwd.t array;
  iface_links : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* node -> iface id -> out-link id *)
  ospf_installed : (int, Prefix.t list ref) Hashtbl.t;  (* per node *)
  originated : (int, Prefix.t list) Hashtbl.t;
  mutable prefixes : Prefix.t list;
  mutable sessions : session list;
  mutable converged_fired : bool;
  mutable converged_hooks : (unit -> unit) list;  (* reversed *)
  mutable checker_armed : bool;
}

let synth_router_id id = Ipv4.of_octets 10 254 (id / 250) ((id mod 250) + 1)

let is_daemon_node (n : Topology.node) =
  match n.Topology.kind with
  | Topology.Switch | Topology.Router -> true
  | Topology.Host -> false

(* Replace a node's OSPF-learned routes with a fresh table, leaving
   the static host routes alone. *)
let install_routes t node (routes : Lsdb.route list) =
  let daemon = Hashtbl.find t.daemons node in
  let links = Hashtbl.find t.iface_links node in
  let installed =
    match Hashtbl.find_opt t.ospf_installed node with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.ospf_installed node r;
        r
  in
  let table = t.tables.(node) in
  Sched.protect_cause t.sched (fun () ->
      ignore
        (Sched.cause_point t.sched ~kind:"fib:write" (fun () ->
             Printf.sprintf "%s (%d routes)"
               (Topology.node t.fabric_topo node).Topology.name
               (List.length routes)));
      List.iter (fun prefix -> Fwd.remove_route table prefix) !installed;
      installed := [];
      List.iter
        (fun (route : Lsdb.route) ->
          let next_hops =
            List.filter_map
              (fun rid ->
                match Daemon.interface_of_neighbor daemon rid with
                | Some iface -> Hashtbl.find_opt links iface
                | None -> None)
              route.Lsdb.next_hops
          in
          if next_hops <> [] then begin
            Fwd.set_route table route.Lsdb.prefix ~next_hops;
            installed := route.Lsdb.prefix :: !installed
          end)
        routes)

let build ?(hello_interval = Time.of_sec 2.0) ?(dead_interval = Time.of_sec 8.0)
    ~cm ~originate topo =
  let sched = Connection_manager.scheduler cm in
  let trace = Connection_manager.trace cm in
  let t =
    {
      fabric_topo = topo;
      sched;
      cm;
      daemons = Hashtbl.create 64;
      processes = Hashtbl.create 64;
      tables = Array.init (Topology.n_nodes topo) (fun _ -> Fwd.create ());
      iface_links = Hashtbl.create 64;
      ospf_installed = Hashtbl.create 64;
      originated = Hashtbl.create 64;
      prefixes = [];
      sessions = [];
      converged_fired = false;
      converged_hooks = [];
      checker_armed = false;
    }
  in
  List.iter
    (fun (n : Topology.node) ->
      if is_daemon_node n then begin
        let stubs = originate n.Topology.id in
        Hashtbl.replace t.originated n.Topology.id (List.map fst stubs);
        t.prefixes <- List.map fst stubs @ t.prefixes;
        let router_id =
          match n.Topology.ip with
          | Some ip -> ip
          | None -> synth_router_id n.Topology.id
        in
        let proc = Process.create sched ~name:("ospf-" ^ n.Topology.name) in
        let config =
          {
            (Daemon.default_config ~router_id) with
            Daemon.hello_interval;
            dead_interval;
            stub_prefixes = stubs;
          }
        in
        let daemon = Daemon.create ~trace proc config in
        Hashtbl.replace t.daemons n.Topology.id daemon;
        Hashtbl.replace t.processes n.Topology.id proc;
        Hashtbl.replace t.iface_links n.Topology.id (Hashtbl.create 8)
      end)
    (Topology.nodes topo);
  t.prefixes <- List.sort_uniq Prefix.compare t.prefixes;
  (* Adjacencies over inter-daemon links. *)
  List.iter
    (fun (l : Topology.link) ->
      if l.Topology.link_id < l.Topology.peer then
        match
          ( Hashtbl.find_opt t.daemons l.Topology.src,
            Hashtbl.find_opt t.daemons l.Topology.dst )
        with
        | Some daemon_a, Some daemon_b ->
            let name =
              Printf.sprintf "ospf %s<->%s"
                (Topology.node topo l.Topology.src).Topology.name
                (Topology.node topo l.Topology.dst).Topology.name
            in
            let channel =
              Connection_manager.control_channel ~name
                ~owner_a:(Hashtbl.find t.processes l.Topology.src)
                ~owner_b:(Hashtbl.find t.processes l.Topology.dst)
                cm
            in
            let ep_a, ep_b = Channel.endpoints channel in
            let iface_a = Daemon.add_interface daemon_a ep_a in
            let iface_b = Daemon.add_interface daemon_b ep_b in
            Hashtbl.replace
              (Hashtbl.find t.iface_links l.Topology.src)
              iface_a l.Topology.link_id;
            Hashtbl.replace
              (Hashtbl.find t.iface_links l.Topology.dst)
              iface_b l.Topology.peer;
            t.sessions <-
              {
                node_a = l.Topology.src;
                node_b = l.Topology.dst;
                iface_at_a = iface_a;
                iface_at_b = iface_b;
                channel;
                session_name = name;
              }
              :: t.sessions
        | None, _ | _, None -> ())
    (Topology.links topo);
  (* FIB wiring. *)
  Hashtbl.iter
    (fun node daemon ->
      Daemon.on_routes_change daemon (fun routes -> install_routes t node routes))
    t.daemons;
  (* Static routes, as in the BGP fabric. *)
  List.iter
    (fun (h : Topology.node) ->
      if h.Topology.kind = Topology.Host then
        match Topology.out_links topo h.Topology.id with
        | [ up ] -> (
            Fwd.set_route t.tables.(h.Topology.id) Prefix.any
              ~next_hops:[ up.Topology.link_id ];
            match h.Topology.ip with
            | Some ip ->
                let down = Topology.link topo up.Topology.peer in
                Fwd.set_route t.tables.(up.Topology.dst) (Prefix.host ip)
                  ~next_hops:[ down.Topology.link_id ]
            | None -> ())
        | [] | _ :: _ ->
            invalid_arg "Ospf_fabric.build: hosts must have degree 1")
    (Topology.nodes topo);
  t

let start t = Hashtbl.iter (fun _node daemon -> Daemon.start daemon) t.daemons

let topo t = t.fabric_topo

let daemons t =
  Hashtbl.fold (fun node daemon acc -> (node, daemon) :: acc) t.daemons []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let daemon t node = Hashtbl.find_opt t.daemons node
let table t node = t.tables.(node)
let all_prefixes t = t.prefixes

let is_converged t =
  Hashtbl.fold
    (fun node _daemon acc ->
      acc
      &&
      let own = Option.value (Hashtbl.find_opt t.originated node) ~default:[] in
      List.for_all
        (fun prefix ->
          List.exists (Prefix.equal prefix) own
          || Option.is_some (Fwd.lookup t.tables.(node) (Prefix.network prefix)))
        t.prefixes)
    t.daemons true

let when_converged ?(check_every = Time.of_ms 50) t k =
  if t.converged_fired then k ()
  else begin
    t.converged_hooks <- k :: t.converged_hooks;
    if not t.checker_armed then begin
      t.checker_armed <- true;
      let recurring = ref None in
      let check () =
        if (not t.converged_fired) && is_converged t then begin
          t.converged_fired <- true;
          Horse_telemetry.Registry.Gauge.set
            (Horse_telemetry.Registry.gauge (Sched.registry t.sched)
               ~subsystem:"ospf"
               ~help:"Virtual time at which the fabric converged, seconds"
               "convergence_seconds")
            (Time.to_sec (Sched.now t.sched));
          Option.iter Sched.cancel_recurring !recurring;
          List.iter (fun k -> k ()) (List.rev t.converged_hooks);
          t.converged_hooks <- []
        end
      in
      recurring := Some (Sched.every t.sched check_every check)
    end
  end

let path_for ?hash t key =
  Fib_walk.path_for ?hash ~topo:t.fabric_topo
    ~table:(fun node -> t.tables.(node))
    key

let adjacencies_expected t = List.length t.sessions

let adjacencies_full t =
  Hashtbl.fold (fun _node d acc -> acc + Daemon.full_neighbors d) t.daemons 0 / 2

let find_session t ~a ~b =
  List.find_opt
    (fun s -> (s.node_a = a && s.node_b = b) || (s.node_a = b && s.node_b = a))
    t.sessions

let fail_link t ~a ~b =
  match find_session t ~a ~b with
  | None -> false
  | Some session ->
      Channel.close session.channel;
      true

let restore_link t ~a ~b =
  match find_session t ~a ~b with
  | Some session when not (Channel.is_open session.channel) -> (
      match
        ( Hashtbl.find_opt t.daemons session.node_a,
          Hashtbl.find_opt t.daemons session.node_b )
      with
      | Some daemon_a, Some daemon_b ->
          let channel =
            Connection_manager.control_channel ~name:session.session_name
              ~owner_a:(Hashtbl.find t.processes session.node_a)
              ~owner_b:(Hashtbl.find t.processes session.node_b)
              t.cm
          in
          let ep_a, ep_b = Channel.endpoints channel in
          Daemon.rebind_interface daemon_a session.iface_at_a ep_a;
          Daemon.rebind_interface daemon_b session.iface_at_b ep_b;
          session.channel <- channel;
          true
      | None, _ | _, None -> false)
  | Some _ | None -> false

(* --- fault-injection surface ---------------------------------------- *)

let crash_node t node =
  match Hashtbl.find_opt t.processes node with
  | Some proc when Process.is_alive proc ->
      Process.kill proc;
      true
  | Some _ | None -> false

let restart_node t node =
  match Hashtbl.find_opt t.processes node with
  | Some proc when not (Process.is_alive proc) ->
      Process.restart proc;
      true
  | Some _ | None -> false

let impair_link t ~a ~b ~rng imp =
  match find_session t ~a ~b with
  | None -> false
  | Some session ->
      (match imp with
      | Some imp -> Channel.set_impairment session.channel ~rng imp
      | None -> Channel.clear_impairment session.channel);
      true

let node_name t id = (Topology.node t.fabric_topo id).Topology.name

let node_id t name =
  Option.map
    (fun (n : Topology.node) -> n.Topology.id)
    (Topology.node_by_name t.fabric_topo name)

let fault_target t =
  let with1 n f = match node_id t n with Some id -> f id | None -> false in
  let with2 a b f =
    match (node_id t a, node_id t b) with
    | Some a, Some b -> f a b
    | _, _ -> false
  in
  {
    Horse_faults.Injector.describe = "ospf-fabric";
    link_down = (fun ~a ~b -> with2 a b (fun a b -> fail_link t ~a ~b));
    link_up = (fun ~a ~b -> with2 a b (fun a b -> restore_link t ~a ~b));
    node_crash = (fun n -> with1 n (crash_node t));
    node_restart = (fun n -> with1 n (restart_node t));
    (* OSPF has no session abstraction to reset; model it as a flap. *)
    session_reset = (fun ~a:_ ~b:_ -> false);
    impair =
      (fun ~a ~b ~rng imp -> with2 a b (fun a b -> impair_link t ~a ~b ~rng imp));
    links =
      (fun () ->
        List.rev_map
          (fun s -> (node_name t s.node_a, node_name t s.node_b))
          t.sessions);
    converged =
      (fun () -> adjacencies_full t = adjacencies_expected t && is_converged t);
  }
