(** Reliable, ordered, duplex control-plane channels.

    This is the stand-in for the TCP connections that carry BGP
    sessions and OpenFlow channels between real daemons in the
    authors' implementation. Messages are opaque byte strings —
    protocol layers serialize real wire formats into them — delivered
    to the peer endpoint's receiver after a fixed latency.

    Every send is reported to the channel's observer (installed by the
    Connection Manager) {e at send time}; this is the hook that drives
    the DES→FTI transition. *)

open Horse_engine

type t
(** A duplex channel. *)

type endpoint
(** One side of a channel. *)

type direction = A_to_b | B_to_a

type impairment = {
  loss : float;  (** per-message drop probability, [0, 1] *)
  extra_delay : Time.t;  (** added to the channel latency *)
  jitter : Time.t;  (** uniform extra delay in [0, jitter) per message *)
  duplicate : float;  (** probability a message is delivered twice *)
}
(** A lossy/slow link model applied at send time (see
    {!set_impairment}). With jitter, deliveries may reorder — exactly
    the stress a real flapping WAN path puts on a routing session. *)

val no_impairment : impairment
(** All zeroes — a clean link. *)

val create : Sched.t -> ?latency:Time.t -> unit -> t
(** Default latency 1 ms (a LAN-ish control RTT of 2 ms). *)

val create_split :
  sched_a:Sched.t ->
  sched_b:Sched.t ->
  post_to_b:(at:Time.t -> (unit -> unit) -> unit) ->
  post_to_a:(at:Time.t -> (unit -> unit) -> unit) ->
  ?latency:Time.t ->
  unit ->
  t
(** A channel whose two sides live on different shards. Each side is
    owned by its shard's scheduler and only ever mutated by that
    shard's domain; traffic towards the peer is handed to the given
    post function (a {!Horse_engine.Barrier} mailbox), stamped with
    its exact virtual delivery time, and executed on the destination
    scheduler after the next barrier. For that to be causally safe the
    latency must be at least the barrier quantum — the sharded fabric
    constructor enforces this. Deliveries and the posted close count
    as control activity on the destination scheduler.

    Split channels are one-sided everywhere: use {!close_endpoint},
    {!set_endpoint_observer} and {!set_endpoint_impairment} instead of
    the whole-channel operations ({!close} / {!set_impairment} raise
    on a split channel). *)

val is_split : t -> bool

val endpoints : t -> endpoint * endpoint
(** The (a, b) sides. *)

val peer : endpoint -> endpoint

val endpoint_sched : endpoint -> Sched.t
(** The scheduler owning this side (both sides' scheduler on a plain
    channel). *)

val set_receiver : endpoint -> (Bytes.t -> unit) -> unit
(** Installs the message handler for traffic {e arriving at} this
    endpoint. Messages delivered while no receiver is installed are
    queued and flushed (in order, immediately) when one is
    installed. *)

val send : endpoint -> Bytes.t -> unit
(** Sends towards the peer endpoint; delivery happens [latency] later
    in virtual time. Silently dropped on a closed channel (as TCP
    data after a reset would be). *)

val send_many : endpoint -> Bytes.t list -> unit
(** Like iterating {!send}, but the whole batch is delivered (in
    order) by a single scheduler event — a flush of k packed UPDATEs
    costs one event instead of k. Counters and the observer still see
    every message. *)

val set_observer : t -> (direction -> Bytes.t -> unit) -> unit
(** At most one observer; it sees every message at send time, before
    latency. *)

val set_endpoint_observer : endpoint -> (direction -> Bytes.t -> unit) -> unit
(** Observer for messages {e sent from} this endpoint only — the form
    split channels need, where each shard's Connection Manager can
    observe only the side it owns. *)

val set_on_close : endpoint -> (unit -> unit) -> unit
(** Runs when the channel closes (either side), once. *)

val set_wake : endpoint -> (unit -> unit) -> unit
(** Installs the wake hook for traffic {e arriving at} this endpoint:
    it runs after every delivery (and on close), wiring channel input
    to the owning process's dozing pollers (see [Process.wake]). At
    most one hook; the Connection Manager installs it when it knows
    the endpoint's owner. *)

val close : t -> unit
(** Closes both directions; undelivered messages are dropped.
    Idempotent.
    @raise Invalid_argument on a split channel (use
    {!close_endpoint}). *)

val close_endpoint : endpoint -> unit
(** One-sided close from the domain owning this endpoint. On a plain
    channel this is {!close}. On a split channel the local side closes
    immediately; the peer side closes on its own scheduler after the
    next barrier — a deterministic instant, like a RST crossing the
    link. Idempotent. *)

val is_open : t -> bool
(** Both sides still open. *)

val endpoint_open : endpoint -> bool
val messages_sent : t -> int
val bytes_sent : t -> int

val set_impairment : t -> rng:Rng.t -> impairment -> unit
(** Applies an impairment to both directions from now on. Draws come
    from [rng] in a fixed per-message order, so a seeded stream
    reproduces drop/duplicate/jitter decisions exactly. Counters and
    the observer still see every message at send time (the sender did
    send it; the link ate it).
    @raise Invalid_argument on probabilities outside [0, 1] or
    negative delays, or on a split channel (use
    {!set_endpoint_impairment}). *)

val set_endpoint_impairment :
  endpoint -> rng:Rng.t -> impairment option -> unit
(** Impairs (or clears, with [None]) the traffic {e sent from} this
    endpoint only, with draws from [rng] — the per-side form split
    channels need; each shard impairs the direction it owns from its
    own RNG stream.
    @raise Invalid_argument on out-of-range probabilities or negative
    delays. *)

val clear_impairment : t -> unit

val impairment : t -> impairment option
val impaired_dropped : t -> int
val impaired_duplicated : t -> int
