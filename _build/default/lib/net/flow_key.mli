(** Transport 5-tuples and the ECMP hash functions used by the
    demonstration's traffic-engineering schemes.

    The paper compares (i) ECMP hashing only the IP source and
    destination (the BGP scenario) against (iii) ECMP hashing the full
    5-tuple (the SDN scenario); both hashes live here so the data plane
    and the controller agree on path selection. *)

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  proto : Headers.Proto.t;
  src_port : int;  (** 0 for protocols without ports *)
  dst_port : int;
}

val make :
  src:Ipv4.t ->
  dst:Ipv4.t ->
  ?proto:Headers.Proto.t ->
  ?src_port:int ->
  ?dst_port:int ->
  unit ->
  t
(** Defaults: UDP, ports 0. *)

val of_packet : Packet.t -> t option
(** [None] for non-IP frames. Ports are 0 for ICMP/other protocols. *)

val reverse : t -> t
(** Swaps source and destination address and port. *)

val hash_src_dst : t -> int
(** Non-negative hash of (src ip, dst ip) only — the BGP+ECMP
    selector. Deterministic across runs. *)

val hash_5tuple : t -> int
(** Non-negative hash of the full 5-tuple — the SDN ECMP selector.
    Deterministic across runs. *)

val select : hash:int -> int -> int
(** [select ~hash n] maps a hash onto a bucket in [0, n).
    @raise Invalid_argument if [n <= 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Hashtbl functor instance keyed by full 5-tuples. *)
module Table : Hashtbl.S with type key = t
