lib/ospf/daemon.mli: Channel Format Horse_emulation Horse_engine Horse_net Ipv4 Lsdb Prefix Process Time Trace
