module Registry = Horse_telemetry.Registry
module Span = Horse_telemetry.Span

let label_suffix = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let display (e : Registry.entry) = e.Registry.name ^ label_suffix e.Registry.labels

let pp fmt reg =
  let entries = Registry.to_list reg in
  let counters =
    List.filter_map
      (fun (e : Registry.entry) ->
        match e.Registry.metric with
        | Registry.M_counter c ->
            Some (display e, float_of_int (Registry.Counter.value c))
        | Registry.M_gauge _ | Registry.M_histogram _ -> None)
      entries
  in
  let gauges =
    List.filter_map
      (fun (e : Registry.entry) ->
        match e.Registry.metric with
        | Registry.M_gauge g -> Some (display e, Registry.Gauge.value g)
        | Registry.M_counter _ | Registry.M_histogram _ -> None)
      entries
  in
  let histograms =
    List.filter_map
      (fun (e : Registry.entry) ->
        match e.Registry.metric with
        | Registry.M_histogram h -> Some (display e, h)
        | Registry.M_counter _ | Registry.M_gauge _ -> None)
      entries
  in
  Format.fprintf fmt "== run report ==@\n";
  if counters <> [] then begin
    Format.fprintf fmt "@\ncounters:@\n";
    Ascii.bar_chart fmt counters
  end;
  if gauges <> [] then begin
    let w =
      List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 gauges
    in
    Format.fprintf fmt "@\ngauges:@\n";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "  %-*s %g@\n" w n v)
      gauges
  end;
  List.iter
    (fun (n, h) ->
      Format.fprintf fmt "@\n%s (count %d, sum %g):@\n%a@\n" n
        (Histogram.count h) (Histogram.sum h) Histogram.pp h)
    histograms;
  let spans = Span.records (Registry.spans reg) in
  if spans <> [] then
    Format.fprintf fmt "@\nspans:@\n%a@\n" Span.pp (Registry.spans reg);
  (match Registry.find_counter reg "horse_trace_dropped_total" with
  | Some c when Registry.Counter.value c > 0 ->
      Format.fprintf fmt
        "@\nWARNING: trace ring buffer dropped %d entries \
         (horse_trace_dropped_total) — oldest entries evicted; raise the \
         trace capacity to keep them@\n"
        (Registry.Counter.value c)
  | Some _ | None -> ())
