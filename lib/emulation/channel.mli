(** Reliable, ordered, duplex control-plane channels.

    This is the stand-in for the TCP connections that carry BGP
    sessions and OpenFlow channels between real daemons in the
    authors' implementation. Messages are opaque byte strings —
    protocol layers serialize real wire formats into them — delivered
    to the peer endpoint's receiver after a fixed latency.

    Every send is reported to the channel's observer (installed by the
    Connection Manager) {e at send time}; this is the hook that drives
    the DES→FTI transition. *)

open Horse_engine

type t
(** A duplex channel. *)

type endpoint
(** One side of a channel. *)

type direction = A_to_b | B_to_a

type impairment = {
  loss : float;  (** per-message drop probability, [0, 1] *)
  extra_delay : Time.t;  (** added to the channel latency *)
  jitter : Time.t;  (** uniform extra delay in [0, jitter) per message *)
  duplicate : float;  (** probability a message is delivered twice *)
}
(** A lossy/slow link model applied at send time (see
    {!set_impairment}). With jitter, deliveries may reorder — exactly
    the stress a real flapping WAN path puts on a routing session. *)

val no_impairment : impairment
(** All zeroes — a clean link. *)

val create : Sched.t -> ?latency:Time.t -> unit -> t
(** Default latency 1 ms (a LAN-ish control RTT of 2 ms). *)

val endpoints : t -> endpoint * endpoint
(** The (a, b) sides. *)

val peer : endpoint -> endpoint

val set_receiver : endpoint -> (Bytes.t -> unit) -> unit
(** Installs the message handler for traffic {e arriving at} this
    endpoint. Messages delivered while no receiver is installed are
    queued and flushed (in order, immediately) when one is
    installed. *)

val send : endpoint -> Bytes.t -> unit
(** Sends towards the peer endpoint; delivery happens [latency] later
    in virtual time. Silently dropped on a closed channel (as TCP
    data after a reset would be). *)

val send_many : endpoint -> Bytes.t list -> unit
(** Like iterating {!send}, but the whole batch is delivered (in
    order) by a single scheduler event — a flush of k packed UPDATEs
    costs one event instead of k. Counters and the observer still see
    every message. *)

val set_observer : t -> (direction -> Bytes.t -> unit) -> unit
(** At most one observer; it sees every message at send time, before
    latency. *)

val set_on_close : endpoint -> (unit -> unit) -> unit
(** Runs when the channel closes (either side), once. *)

val set_wake : endpoint -> (unit -> unit) -> unit
(** Installs the wake hook for traffic {e arriving at} this endpoint:
    it runs after every delivery (and on close), wiring channel input
    to the owning process's dozing pollers (see [Process.wake]). At
    most one hook; the Connection Manager installs it when it knows
    the endpoint's owner. *)

val close : t -> unit
(** Closes both directions; undelivered messages are dropped.
    Idempotent. *)

val is_open : t -> bool
val messages_sent : t -> int
val bytes_sent : t -> int

val set_impairment : t -> rng:Rng.t -> impairment -> unit
(** Applies an impairment to both directions from now on. Draws come
    from [rng] in a fixed per-message order, so a seeded stream
    reproduces drop/duplicate/jitter decisions exactly. Counters and
    the observer still see every message at send time (the sender did
    send it; the link ate it).
    @raise Invalid_argument on probabilities outside [0, 1] or
    negative delays. *)

val clear_impairment : t -> unit

val impairment : t -> impairment option
val impaired_dropped : t -> int
val impaired_duplicated : t -> int
