(* Multicore engine smoke: the sharded fat-tree convergence scenario
   run with domains = 1 and domains = 4.

   Gates, failing @multicore-smoke (and @runtest with it):
   - determinism, always: both runs must produce byte-identical FIB
     fingerprints, causal hashes and mode timelines — the barrier
     protocol makes domain interleaving unobservable, and this is the
     cheap canary for that invariant;
   - scaling, only where it can physically exist: when the machine
     advertises >= 4 cores (Domain.recommended_domain_count), the
     4-domain run must be >= 1.5x faster than the sequential one.
     On smaller machines the speedup gate is skipped with a notice —
     parallelism cannot be demonstrated on hardware that lacks it.

   Writes both runs (domains and core count stamped) to argv(1). *)

module Time = Horse_engine.Time
module Multicore = Horse_core.Multicore
module Json = Horse_telemetry.Json

let pods = 6
let duration = Time.of_sec 10.0
let speedup_budget = 1.5

let run domains = Multicore.run_fat_tree ~pods ~domains ~duration ()

let run_json (r : Multicore.result) =
  Json.Obj
    [
      ("domains", Json.Int r.Multicore.domains);
      ("run_wall_s", Json.Float r.Multicore.run_wall_s);
      ("setup_wall_s", Json.Float r.Multicore.setup_wall_s);
      ("epochs", Json.Int r.Multicore.epochs);
      ("jumps", Json.Int r.Multicore.jumps);
      ("cross_messages", Json.Int r.Multicore.cross_messages);
      ( "converged_s",
        match r.Multicore.converged_at with
        | Some t -> Json.Float (Time.to_sec t)
        | None -> Json.Null );
      ("fib_fingerprint", Json.String r.Multicore.fib_fingerprint);
      ("causal_hash", Json.String r.Multicore.causal_hash);
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "/dev/null" in
  let cores = Domain.recommended_domain_count () in
  let r1 = run 1 in
  let r4 = run 4 in
  let deterministic =
    r1.Multicore.fib_fingerprint = r4.Multicore.fib_fingerprint
    && r1.Multicore.causal_hash = r4.Multicore.causal_hash
    && r1.Multicore.timelines = r4.Multicore.timelines
  in
  let speedup = r1.Multicore.run_wall_s /. r4.Multicore.run_wall_s in
  let oc = open_out out in
  output_string oc
    (Json.to_string
       (Json.Obj
       [
         ("bench", Json.String "multicore_smoke");
         ("cores", Json.Int cores);
         ("pods", Json.Int pods);
         ("shards", Json.Int r1.Multicore.shards);
         ("duration_s", Json.Float (Time.to_sec duration));
         ("determinism_ok", Json.Bool deterministic);
         ("speedup_4_domains", Json.Float speedup);
         ("speedup_gated", Json.Bool (cores >= 4));
         ("runs", Json.List [ run_json r1; run_json r4 ]);
       ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "multicore-smoke: %d shards on %d cores, wall %.3fs -> %.3fs (%.2fx), \
     %d epochs (%d jumped), %d cross-shard deliveries\n"
    r1.Multicore.shards cores r1.Multicore.run_wall_s r4.Multicore.run_wall_s
    speedup r1.Multicore.epochs r1.Multicore.jumps r1.Multicore.cross_messages;
  if not deterministic then begin
    Printf.eprintf
      "multicore-smoke: domains=1 vs domains=4 diverged (fingerprint %s vs \
       %s, causal %s vs %s) — the barrier protocol leaked interleaving\n"
      r1.Multicore.fib_fingerprint r4.Multicore.fib_fingerprint
      r1.Multicore.causal_hash r4.Multicore.causal_hash;
    exit 1
  end;
  if r1.Multicore.converged_at = None then begin
    Printf.eprintf "multicore-smoke: fabric never converged\n";
    exit 1
  end;
  if cores >= 4 then begin
    if speedup < speedup_budget then begin
      Printf.eprintf
        "multicore-smoke: speedup budget missed on a %d-core machine: \
         %.2fx < %.1fx\n"
        cores speedup speedup_budget;
      exit 1
    end
  end
  else
    Printf.printf
      "multicore-smoke: %d core(s) — speedup gate skipped (needs >= 4)\n"
      cores
