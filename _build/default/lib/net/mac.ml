type t = int64

let mask48 = 0xFFFF_FFFF_FFFFL
let of_int64 n = Int64.logand n mask48
let to_int64 m = m

let of_octets a b c d e f =
  let check o =
    if o < 0 || o > 255 then
      invalid_arg (Printf.sprintf "Mac.of_octets: octet %d out of range" o)
  in
  List.iter check [ a; b; c; d; e; f ];
  Int64.logor
    (Int64.shift_left (Int64.of_int a) 40)
    (Int64.of_int
       ((b lsl 32) lor (c lsl 24) lor (d lsl 16) lor (e lsl 8) lor f))

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let of_string s =
  let fields = String.split_on_char ':' s in
  let parse_field f =
    match String.length f with
    | 1 -> hex_digit f.[0]
    | 2 -> (
        match (hex_digit f.[0], hex_digit f.[1]) with
        | Some h, Some l -> Some ((h lsl 4) lor l)
        | _, _ -> None)
    | _ -> None
  in
  if List.length fields <> 6 then None
  else
    let rec go acc = function
      | [] -> Some acc
      | f :: rest -> (
          match parse_field f with
          | None -> None
          | Some v -> go (Int64.logor (Int64.shift_left acc 8) (Int64.of_int v)) rest)
    in
    go 0L fields

let of_string_exn s =
  match of_string s with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Mac.of_string_exn: %S" s)

let to_string m =
  let octet i =
    Int64.to_int (Int64.logand (Int64.shift_right_logical m (8 * (5 - i))) 0xFFL)
  in
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (octet 0) (octet 1) (octet 2)
    (octet 3) (octet 4) (octet 5)

let broadcast = mask48
let zero = 0L
let is_broadcast m = Int64.equal m mask48
let is_multicast m = Int64.logand (Int64.shift_right_logical m 40) 1L = 1L

let of_index i =
  (* 0x02 first octet: locally administered, unicast. *)
  Int64.logor 0x0200_0000_0000L (Int64.logand (Int64.of_int i) 0xFF_FFFF_FFFFL)

let compare = Int64.compare
let equal = Int64.equal

let hash m =
  let z = Int64.mul (Int64.logxor m (Int64.shift_right_logical m 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

let pp fmt m = Format.pp_print_string fmt (to_string m)
