lib/p4/agent.mli: Channel Horse_emulation Horse_engine Interp Process Prog
