(** BGP Routing Information Bases and the decision process.

    One {!t} holds a speaker's Adj-RIB-In (per peer), its locally
    originated routes, and the Loc-RIB computed from them by the
    RFC 4271 decision process:

    + highest LOCAL_PREF (missing = 100),
    + shortest AS_PATH,
    + lowest ORIGIN (IGP < EGP < INCOMPLETE),
    + lowest MED, compared only between routes whose first AS_PATH
      hop is the same neighbour AS (missing = 0),
    + lowest peer BGP identifier,
    + lowest peer id (a stable final tiebreak).

    With multipath enabled, every route tying through step 4 enters
    the Loc-RIB as an ECMP set (the relaxation used by data-centre
    BGP fabrics); otherwise steps 5–6 pick a single winner.

    The decision process is {e incremental}: every prefix keeps its
    candidate set sorted under the lexicographic criteria (steps 1–3
    plus the tiebreaks; MED is a filter over the leading equivalence
    class), so a refresh after a single-peer change is a bounded
    update of one sorted list rather than a scan over every peer's
    Adj-RIB-In. Attributes are hash-consed through {!Attr_intern}:
    AS-path length is cached and attribute comparison is O(1). *)

open Horse_net
open Horse_engine

val local_peer : int
(** The pseudo peer id (-1) of locally originated routes. *)

type route = {
  prefix : Prefix.t;
  attrs : Msg.attrs;  (** canonical interned record, [iattrs.attrs] *)
  iattrs : Attr_intern.interned;  (** hash-consed handle *)
  peer : int;  (** {!local_peer} for local routes *)
  peer_bgp_id : Ipv4.t;
  learned_at : Time.t;
}

val pp_route : Format.formatter -> route -> unit

type t

val create : ?intern:Attr_intern.t -> unit -> t
(** [intern] shares the owner's attribute table (the speaker passes
    its own so Adj-RIB-Out grouping reuses the same uids); a private
    table is created otherwise. *)

val intern_table : t -> Attr_intern.t

val set_in :
  t -> peer:int -> peer_bgp_id:Ipv4.t -> at:Time.t -> Prefix.t -> Msg.attrs -> unit
(** Installs/replaces the peer's route in the Adj-RIB-In (implicit
    withdraw semantics). Does {e not} recompute the Loc-RIB — call
    {!refresh}. *)

val withdraw_in : t -> peer:int -> Prefix.t -> unit
(** Idempotent. *)

val drop_peer : t -> peer:int -> Prefix.t list
(** Removes every route learned from the peer (session failure);
    returns the affected prefixes so the caller can {!refresh}
    them. *)

val add_local : t -> at:Time.t -> Prefix.t -> Msg.attrs -> unit
val remove_local : t -> Prefix.t -> unit

type refresh_outcome =
  | Unchanged
  | Changed of route list  (** the new best set; [[]] = prefix gone *)

val refresh : ?multipath:bool -> t -> Prefix.t -> refresh_outcome
(** Recomputes the best set for one prefix and updates the Loc-RIB.
    [multipath] defaults to [true]. *)

val decide : multipath:bool -> t -> Prefix.t -> route list
(** The incremental decision process, without touching the Loc-RIB. *)

val decide_reference : multipath:bool -> t -> Prefix.t -> route list
(** The pre-incremental full-rebuild implementation, kept as the
    oracle for the differential test suite. *)

val best : t -> Prefix.t -> route list
(** Current Loc-RIB entry ([[]] if none). *)

val loc_rib : t -> (Prefix.t * route list) list
(** Sorted by prefix. *)

val loc_rib_size : t -> int

val adj_in : t -> peer:int -> (Prefix.t * Msg.attrs) list
(** Sorted by prefix; for inspection and tests. *)
