(** Wall-clock measurement (the quantity Horse is designed to save). *)

val now : unit -> float
(** Seconds since an arbitrary epoch, sub-millisecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result and elapsed wall
    seconds. *)
