lib/topo/wan.mli: Horse_engine Horse_net Ipv4 Prefix Topology
