lib/core/experiment.ml: Array Connection_manager Fluid Horse_dataplane Horse_engine Horse_topo Rng Sched Topology Trace
