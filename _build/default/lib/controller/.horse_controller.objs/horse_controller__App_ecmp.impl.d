lib/controller/app_ecmp.ml: Action Controller Env Flow_key Horse_net Horse_openflow Horse_topo Install List Ofmatch Ofmsg Packet Prefix Spf Topology
