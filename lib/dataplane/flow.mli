(** A fluid flow: the data plane's unit of traffic.

    A flow has a constant offered rate (demand) and a path through the
    topology; the fluid engine assigns its actual rate by max-min fair
    share and integrates delivered bits over virtual time. Mutation
    goes through {!Fluid}, never directly. *)

open Horse_net
open Horse_engine

type t = {
  id : int;
  key : Flow_key.t;
  demand : float;  (** aggregate offered rate of the class, bps *)
  users : int;
      (** multiplicity: one fluid flow standing for [users] users of a
          service (a {e flow class}, the million-user workload unit).
          1 for an ordinary flow; [demand] and [delivered_bits] are
          class aggregates, so per-user figures divide by this. *)
  started : Time.t;
  mutable path : Horse_topo.Spf.path;
  mutable rate : float;  (** current allocated rate, bps *)
  mutable delivered_bits : float;  (** integrated up to [last_integration] *)
  mutable last_integration : Time.t;
  mutable active : bool;
  mutable stopped_at : Time.t option;
}

val src_node : t -> int option
(** First node of the path, [None] for an empty path. *)

val dst_node : t -> int option
(** Last node of the path. *)

val link_ids : t -> int list

val pp : Format.formatter -> t -> unit
