lib/topo/leaf_spine.mli: Horse_engine Horse_net Ipv4 Prefix Topology
