lib/net/checksum.mli: Bytes
