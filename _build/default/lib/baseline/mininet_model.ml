open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane

type creation_model = {
  per_switch : float;
  per_host : float;
  per_link : float;
  base : float;
}

let default_creation_model =
  { per_switch = 0.30; per_host = 0.12; per_link = 0.025; base = 1.0 }

let creation_seconds m ~n_switches ~n_hosts ~n_links =
  m.base
  +. (m.per_switch *. float_of_int n_switches)
  +. (m.per_host *. float_of_int n_hosts)
  +. (m.per_link *. float_of_int (n_links / 2))

type result = {
  pods : int;
  creation_modeled_s : float;
  creation_real_s : float;
  exec_wall_s : float;
  exec_realtime_s : float;
  virtual_duration : Time.t;
  delivered_bits : float;
  offered_bits : float;
  packets_delivered : int;
  packets_dropped : int;
  hops_processed : int;
}

(* Static converged ECMP routing: hop-count shortest paths toward each
   edge subnet, all equal-cost next hops installed as one group. *)
let install_routes (ft : Fat_tree.t) (engine : Packet_engine.t) =
  let topo = ft.Fat_tree.topo in
  let half = ft.Fat_tree.k / 2 in
  (* Hosts: single default route up their access link. *)
  Array.iter
    (fun (h : Topology.node) ->
      match Topology.out_links topo h.Topology.id with
      | [ up ] ->
          Fwd.set_route
            (Packet_engine.table engine h.Topology.id)
            Prefix.any
            ~next_hops:[ up.Topology.link_id ]
      | [] | _ :: _ -> invalid_arg "baseline: host degree must be 1")
    ft.Fat_tree.hosts;
  (* Host /32 routes at their edge switch. *)
  Array.iter
    (fun (h : Topology.node) ->
      match (Topology.out_links topo h.Topology.id, h.Topology.ip) with
      | [ up ], Some ip ->
          let edge = up.Topology.dst in
          let down = Topology.link topo up.Topology.peer in
          Fwd.set_route
            (Packet_engine.table engine edge)
            (Prefix.host ip)
            ~next_hops:[ down.Topology.link_id ]
      | (_, _) -> ())
    ft.Fat_tree.hosts;
  (* Edge subnets everywhere else, via reverse shortest-path trees. *)
  Array.iteri
    (fun pod edges ->
      Array.iteri
        (fun e (edge : Topology.node) ->
          let subnet = Prefix.make (Ipv4.of_octets 10 pod e 0) 24 in
          let tree = Spf.shortest_tree topo ~src:edge.Topology.id in
          (* Links symmetric: dist from v to edge = dist from edge to v. *)
          List.iter
            (fun (n : Topology.node) ->
              if n.Topology.kind = Topology.Switch && n.Topology.id <> edge.Topology.id
              then begin
                let dist v =
                  match Spf.distance tree v with Some d -> d | None -> max_int
                in
                let my_dist = dist n.Topology.id in
                let next_hops =
                  List.filter_map
                    (fun (l : Topology.link) ->
                      let nd = dist l.Topology.dst in
                      if nd < max_int && nd = my_dist - 1 then
                        Some l.Topology.link_id
                      else None)
                    (Topology.out_links topo n.Topology.id)
                in
                if next_hops <> [] then
                  Fwd.set_route
                    (Packet_engine.table engine n.Topology.id)
                    subnet ~next_hops
              end)
            (Topology.nodes topo))
        edges)
    ft.Fat_tree.edges;
  ignore half

let run_fat_tree ?(creation = default_creation_model) ?(pkt_bytes = 1500)
    ?(rate = 1e9) ?(stack_work = true) ?(seed = 42) ?(contention = 1.2)
    ?realtime_duration ~pods ~duration () =
  let realtime_duration = Option.value realtime_duration ~default:duration in
  let (ft, engine, sched, streams), creation_real_s =
    Wall.time (fun () ->
        let ft = Fat_tree.build ~k:pods () in
        let sched = Sched.create () in
        let engine =
          Packet_engine.create ~stack_work ~hash:Flow_key.hash_5tuple sched
            ft.Fat_tree.topo ()
        in
        install_routes ft engine;
        let n = Array.length ft.Fat_tree.hosts in
        let rng = Rng.create seed in
        let dsts = Rng.derangement rng n in
        let streams =
          Array.to_list
            (Array.mapi
               (fun i (h : Topology.node) ->
                 let key =
                   Flow_key.make
                     ~src:(Fat_tree.host_ip ft i)
                     ~dst:(Fat_tree.host_ip ft dsts.(i))
                     ~src_port:(10000 + i) ~dst_port:(20000 + i) ()
                 in
                 Packet_engine.start_stream engine ~key ~at:h.Topology.id ~rate
                   ~pkt_bytes)
               ft.Fat_tree.hosts)
        in
        (ft, engine, sched, streams))
  in
  let _stats, exec_wall_s = Wall.time (fun () -> Sched.run ~until:duration sched) in
  List.iter (Packet_engine.stop_stream engine) streams;
  let n_hosts = Array.length ft.Fat_tree.hosts in
  {
    pods;
    creation_modeled_s =
      creation_seconds creation
        ~n_switches:(Fat_tree.n_switches ~k:pods)
        ~n_hosts ~n_links:(Topology.n_links ft.Fat_tree.topo);
    creation_real_s;
    exec_wall_s;
    exec_realtime_s = Time.to_sec realtime_duration *. contention;
    virtual_duration = duration;
    delivered_bits = float_of_int (Packet_engine.total_rx_bytes engine) *. 8.0;
    offered_bits = float_of_int n_hosts *. rate *. Time.to_sec duration;
    packets_delivered = Packet_engine.rx_packets engine;
    packets_dropped = Packet_engine.drops engine;
    hops_processed = Packet_engine.hops_processed engine;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>pods=%d hosts=%d@,\
     creation: %.2fs modeled (+%.3fs measured build)@,\
     execution: %.3fs wall for %a virtual@,\
     delivered %.3g of %.3g offered bits (%d pkts, %d drops, %d hops)@]"
    r.pods
    (r.pods * r.pods * r.pods / 4)
    r.creation_modeled_s r.creation_real_s r.exec_wall_s Time.pp
    r.virtual_duration r.delivered_bits r.offered_bits r.packets_delivered
    r.packets_dropped r.hops_processed
