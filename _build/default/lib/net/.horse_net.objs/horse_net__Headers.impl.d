lib/net/headers.ml: Checksum Format Int32 Ipv4 Mac Printf Wire
