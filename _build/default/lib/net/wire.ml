type 'a reader = Bytes.t -> int -> ('a, string) result

let check buf off len =
  if off >= 0 && len >= 0 && off + len <= Bytes.length buf then Ok ()
  else
    Error
      (Printf.sprintf "short buffer: need [%d,%d) but length is %d" off
         (off + len) (Bytes.length buf))

let ( let* ) = Result.bind

let u8 buf off =
  let* () = check buf off 1 in
  Ok (Bytes.get_uint8 buf off)

let u16 buf off =
  let* () = check buf off 2 in
  Ok (Bytes.get_uint16_be buf off)

let u32 buf off =
  let* () = check buf off 4 in
  Ok (Bytes.get_int32_be buf off)

let u32_int buf off =
  let* v = u32 buf off in
  Ok (Int32.to_int v land 0xFFFFFFFF)

let bytes n buf off =
  let* () = check buf off n in
  Ok (Bytes.sub buf off n)

let ipv4 buf off =
  let* v = u32 buf off in
  Ok (Ipv4.of_int32 v)

let mac buf off =
  let* () = check buf off 6 in
  let hi = Bytes.get_uint16_be buf off in
  let lo = Bytes.get_int32_be buf (off + 2) in
  let lo = Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL in
  Ok (Mac.of_int64 (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) lo))

let set_u8 buf off v = Bytes.set_uint8 buf off (v land 0xFF)
let set_u16 buf off v = Bytes.set_uint16_be buf off (v land 0xFFFF)
let set_u32 buf off v = Bytes.set_int32_be buf off v
let set_u32_int buf off v = Bytes.set_int32_be buf off (Int32.of_int v)
let set_ipv4 buf off a = set_u32 buf off (Ipv4.to_int32 a)

let set_mac buf off m =
  let v = Mac.to_int64 m in
  set_u16 buf off (Int64.to_int (Int64.shift_right_logical v 32));
  set_u32 buf (off + 2) (Int64.to_int32 v)
