(** OpenFlow 1.0-style flow match: a 12-tuple with wildcards, plus the
    concrete header-field record it is tested against.

    Encoded as the 40-byte [ofp_match] structure, including the
    wildcard bitfield with the 6-bit CIDR mask sub-fields for the
    network addresses. *)

open Horse_net

(** Concrete packet fields as seen by a switch port. *)
type fields = {
  in_port : int;
  eth_src : Mac.t;
  eth_dst : Mac.t;
  eth_type : int;
  ip_src : Ipv4.t;
  ip_dst : Ipv4.t;
  ip_proto : int;
  tp_src : int;
  tp_dst : int;
}

val fields_of_key : ?in_port:int -> Flow_key.t -> fields
(** Synthesises fields from a 5-tuple (MACs derived from the
    addresses, ethertype IPv4). *)

type t = {
  m_in_port : int option;
  m_eth_src : Mac.t option;
  m_eth_dst : Mac.t option;
  m_eth_type : int option;
  m_ip_src : Prefix.t option;
  m_ip_dst : Prefix.t option;
  m_ip_proto : int option;
  m_tp_src : int option;
  m_tp_dst : int option;
}

val any : t
(** Matches everything (all fields wildcarded). *)

val exact_5tuple : Flow_key.t -> t
(** Matches exactly this 5-tuple (L2 fields wildcarded, as the SDN
    ECMP application installs). *)

val to_dst : Prefix.t -> t
(** Match on IPv4 destination prefix only. *)

val matches : t -> fields -> bool

val fields_equal : fields -> fields -> bool

val hash_fields : fields -> int
(** Mixes all nine header fields (splitmix64-style), suitable for the
    exact-match microflow cache. *)

(** Hashtbl key module over concrete header fields. *)
module Fields_key : sig
  type t = fields

  val equal : t -> t -> bool
  val hash : t -> int
end

(** A wildcard mask: which of the nine fields a match (or a megaflow
    cache entry) actually consults. Network addresses carry a prefix
    length (0 = fully wildcarded) instead of a bit. *)
module Mask : sig
  type t = {
    k_in_port : bool;
    k_eth_src : bool;
    k_eth_dst : bool;
    k_eth_type : bool;
    k_ip_src : int;  (** consulted prefix bits, 0..32 *)
    k_ip_dst : int;  (** consulted prefix bits, 0..32 *)
    k_ip_proto : bool;
    k_tp_src : bool;
    k_tp_dst : bool;
  }

  val empty : t
  (** Consults nothing (matches everything). *)

  val union : t -> t -> t
  (** Field-wise or / prefix-length max — how a megaflow mask
      accumulates over the tables consulted during a lookup. *)

  val subsumes : t -> t -> bool
  (** [subsumes a b]: [a] consults at least every bit [b] does. *)

  val project : t -> fields -> fields
  (** Canonicalise fields under the mask: wildcarded fields zeroed,
      addresses truncated to the consulted prefix. Packets with equal
      projections are indistinguishable to any match whose mask is
      subsumed by this one. *)

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

val mask_of : t -> Mask.t
(** The fields this match constrains. *)

val fields_of_match : t -> fields
(** The match's constrained values as concrete fields (wildcards
    zeroed) — canonical under [mask_of], the per-bucket key of the
    tuple-space search. *)

(** Hashtbl key identifying a match up to semantic equality:
    (mask, canonical fields). Build one with {!match_key}. *)
module Match_key : sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

val match_key : t -> Match_key.t

val overlaps_region : t -> Mask.t -> fields -> bool
(** [overlaps_region m mask rep]: could [m] match some packet of the
    megaflow region {P | project mask P = project mask rep}? Drives
    cache invalidation on rule insertion. *)

val is_exact_overlap : t -> t -> bool
(** True when the two matches could both match some packet — used by
    flow-mod DELETE with loose matching semantics. Exact for this
    independent-field model: returns false whenever any single field
    carries provably disjoint constraints (different exact values, or
    non-overlapping prefixes). *)

val size : int
(** 40 bytes encoded. *)

val write : Bytes.t -> int -> t -> unit
val read : t Wire.reader

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
