open Horse_net

type t = {
  k : int;
  topo : Topology.t;
  hosts : Topology.node array;
  edges : Topology.node array array;
  aggs : Topology.node array array;
  cores : Topology.node array;
}

let n_hosts ~k = k * k * k / 4
let n_switches ~k = 5 * k * k / 4

let build ?(capacity = 1e9) ?(delay = Horse_engine.Time.of_us 10) ~k () =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg (Printf.sprintf "Fat_tree.build: k must be even and >= 2, got %d" k);
  let topo = Topology.create () in
  let half = k / 2 in
  let switch_ip ~pod ~s = Ipv4.of_octets 10 pod s 1 in
  let core_ip ~j ~i = Ipv4.of_octets 10 k j i in
  let host_addr ~pod ~e ~h = Ipv4.of_octets 10 pod e (h + 2) in
  let edges =
    Array.init k (fun pod ->
        Array.init half (fun e ->
            Topology.add_node topo
              ~name:(Printf.sprintf "edge-p%d-%d" pod e)
              ~ip:(switch_ip ~pod ~s:e) Topology.Switch))
  in
  let aggs =
    Array.init k (fun pod ->
        Array.init half (fun a ->
            Topology.add_node topo
              ~name:(Printf.sprintf "agg-p%d-%d" pod a)
              ~ip:(switch_ip ~pod ~s:(half + a))
              Topology.Switch))
  in
  let cores =
    Array.init (half * half) (fun idx ->
        let j = (idx / half) + 1 and i = (idx mod half) + 1 in
        Topology.add_node topo
          ~name:(Printf.sprintf "core-%d-%d" j i)
          ~ip:(core_ip ~j ~i) Topology.Switch)
  in
  let hosts =
    Array.init (n_hosts ~k) (fun idx ->
        let per_pod = half * half in
        let pod = idx / per_pod in
        let within = idx mod per_pod in
        let e = within / half and h = within mod half in
        Topology.add_node topo
          ~name:(Printf.sprintf "h-p%d-e%d-%d" pod e h)
          ~ip:(host_addr ~pod ~e ~h)
          ~mac:(Mac.of_index idx) Topology.Host)
  in
  let connect a b = ignore (Topology.add_duplex topo ~delay ~capacity a b) in
  (* host -- edge *)
  Array.iteri
    (fun idx host ->
      let per_pod = half * half in
      let pod = idx / per_pod in
      let e = idx mod per_pod / half in
      connect host edges.(pod).(e))
    hosts;
  (* edge -- agg: full bipartite graph inside each pod *)
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        connect edges.(pod).(e) aggs.(pod).(a)
      done
    done
  done;
  (* agg -- core: aggregation switch [a] serves core group [a] *)
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        connect aggs.(pod).(a) cores.((a * half) + c)
      done
    done
  done;
  { k; topo; hosts; edges; aggs; cores }

let host_ip t i =
  match t.hosts.(i).Topology.ip with
  | Some ip -> ip
  | None -> assert false (* every fat-tree host is built with an address *)

let host_of_ip t ip =
  Array.find_opt
    (fun (n : Topology.node) ->
      match n.Topology.ip with Some a -> Ipv4.equal a ip | None -> false)
    t.hosts

let pod_of_host t i = i / (t.k * t.k / 4)

let host_prefix _t (n : Topology.node) =
  match n.Topology.ip with
  | Some ip -> Prefix.host ip
  | None -> invalid_arg "Fat_tree.host_prefix: node has no address"
