(** Shortest paths and equal-cost multipath enumeration.

    Paths are hop-count shortest by default (every link has weight 1,
    matching how the demonstration's fabrics route); a custom link
    weight can be supplied. A path is the list of directed links from
    source to destination, in order. *)

type path = Topology.link list

val path_nodes : path -> int list
(** Node ids visited, source first. Empty path gives []. *)

val path_length : path -> int

type tree = {
  src : int;
  dist : int array;  (** [max_int] where unreachable *)
  preds : Topology.link list array;
      (** for each node, every in-link lying on some shortest path *)
}

val shortest_tree :
  ?weight:(Topology.link -> int) ->
  ?usable:(Topology.link -> bool) ->
  Topology.t ->
  src:int ->
  tree
(** Dijkstra from [src]. [weight] defaults to [fun _ -> 1] and must be
    positive; links for which [usable] (default: everything) is
    [false] are ignored — the hook for administratively-down links. *)

val distance : tree -> int -> int option
(** Distance to a node, [None] if unreachable. *)

val first_path : tree -> Topology.t -> dst:int -> path option
(** One (deterministic) shortest path from the tree's source. *)

val ecmp_paths : ?max_paths:int -> tree -> Topology.t -> dst:int -> path list
(** All distinct equal-cost shortest paths, in a deterministic order,
    truncated to [max_paths] (default 64). Empty if unreachable or
    [dst = src]. *)

val all_pairs_hops : Topology.t -> int array array
(** Floyd–Warshall hop-count matrix ([max_int] = unreachable); an
    O(n^3) oracle for tests. *)
