lib/controller/placer.mli: Horse_engine Horse_topo Spf
