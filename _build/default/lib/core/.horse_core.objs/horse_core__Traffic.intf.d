lib/core/traffic.mli: Experiment Flow_key Horse_engine Horse_net Horse_topo Rng Spf Time Topology
