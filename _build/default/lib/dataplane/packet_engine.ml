open Horse_net
open Horse_engine
open Horse_topo

type link_state = {
  mutable busy_until : Time.t;
  mutable queued : int;
}

type t = {
  sched : Sched.t;
  topo : Topology.t;
  queue_pkts : int;
  hash : Flow_key.t -> int;
  stack_work : bool;
  tables : Fwd.t array;
  links : link_state array;
  rx_bytes_per_node : int array;
  mutable total_rx_bytes : int;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable drops : int;
  mutable hops : int;
  mutable delay_sum : float;  (* seconds, over delivered packets *)
  mutable delay_max : float;
}

let create ?(queue_pkts = 100) ?(hash = Flow_key.hash_5tuple)
    ?(stack_work = false) sched topo () =
  let n = Topology.n_nodes topo and m = Topology.n_links topo in
  {
    sched;
    topo;
    queue_pkts;
    hash;
    stack_work;
    tables = Array.init n (fun _ -> Fwd.create ());
    links = Array.init m (fun _ -> { busy_until = Time.zero; queued = 0 });
    rx_bytes_per_node = Array.make n 0;
    total_rx_bytes = 0;
    rx_packets = 0;
    tx_packets = 0;
    drops = 0;
    hops = 0;
    delay_sum = 0.0;
    delay_max = 0.0;
  }

let table t node_id = t.tables.(node_id)

(* The "real stack" cost knob: build, serialize and re-parse an actual
   UDP frame of the right size, as a per-hop CPU cost proxy. *)
let churn_stack (key : Flow_key.t) bytes_len =
  let header_overhead =
    Headers.Eth.size + Headers.Ip.size + Headers.Udp.size
  in
  let payload = Bytes.make (Stdlib.max 0 (bytes_len - header_overhead)) 'x' in
  let frame =
    Packet.udp ~src_mac:(Mac.of_index 1) ~dst_mac:(Mac.of_index 2)
      ~src:key.Flow_key.src ~dst:key.Flow_key.dst
      ~src_port:key.Flow_key.src_port ~dst_port:key.Flow_key.dst_port payload
  in
  let encoded = Packet.encode frame in
  match Packet.decode encoded with
  | Ok _ -> ()
  | Error msg -> failwith ("Packet_engine: self-built frame failed: " ^ msg)

let rec arrive t ~node ~key ~bytes_len ~ttl ~sent_at =
  t.hops <- t.hops + 1;
  if t.stack_work then churn_stack key bytes_len;
  let n = Topology.node t.topo node in
  let is_destination =
    match n.Topology.ip with
    | Some ip -> Ipv4.equal ip key.Flow_key.dst
    | None -> false
  in
  if is_destination then begin
    t.rx_packets <- t.rx_packets + 1;
    t.rx_bytes_per_node.(node) <- t.rx_bytes_per_node.(node) + bytes_len;
    t.total_rx_bytes <- t.total_rx_bytes + bytes_len;
    let delay = Time.to_sec (Time.sub (Sched.now t.sched) sent_at) in
    t.delay_sum <- t.delay_sum +. delay;
    if delay > t.delay_max then t.delay_max <- delay
  end
  else if ttl = 0 then t.drops <- t.drops + 1
  else
    match Fwd.lookup_select t.tables.(node) key.Flow_key.dst ~hash:(t.hash key) with
    | None -> t.drops <- t.drops + 1
    | Some link_id -> transmit t ~link_id ~key ~bytes_len ~ttl:(ttl - 1) ~sent_at

and transmit t ~link_id ~key ~bytes_len ~ttl ~sent_at =
  let link = Topology.link t.topo link_id in
  let state = t.links.(link_id) in
  if state.queued >= t.queue_pkts then t.drops <- t.drops + 1
  else begin
    state.queued <- state.queued + 1;
    t.tx_packets <- t.tx_packets + 1;
    let now = Sched.now t.sched in
    let tx_time =
      Time.of_sec (float_of_int (bytes_len * 8) /. link.Topology.capacity)
    in
    let departure = Time.add (Time.max now state.busy_until) tx_time in
    state.busy_until <- departure;
    let arrival = Time.add departure link.Topology.delay in
    ignore
      (Sched.schedule_at t.sched arrival (fun () ->
           state.queued <- state.queued - 1;
           arrive t ~node:link.Topology.dst ~key ~bytes_len ~ttl ~sent_at))
  end

let inject t ~at ~key ~bytes_len =
  arrive t ~node:at ~key ~bytes_len ~ttl:64 ~sent_at:(Sched.now t.sched)

type stream = { recurring : Sched.recurring }

let start_stream t ~key ~at ~rate ~pkt_bytes =
  if rate <= 0.0 then invalid_arg "Packet_engine.start_stream: rate <= 0";
  if pkt_bytes <= 0 then invalid_arg "Packet_engine.start_stream: pkt_bytes <= 0";
  let period = Time.of_sec (float_of_int (pkt_bytes * 8) /. rate) in
  let recurring =
    Sched.every t.sched period (fun () -> inject t ~at ~key ~bytes_len:pkt_bytes)
  in
  { recurring }

let stop_stream _t s = Sched.cancel_recurring s.recurring

let rx_bytes t node_id = t.rx_bytes_per_node.(node_id)
let total_rx_bytes t = t.total_rx_bytes
let rx_packets t = t.rx_packets
let tx_packets t = t.tx_packets
let drops t = t.drops
let hops_processed t = t.hops

let mean_delay t =
  if t.rx_packets = 0 then 0.0 else t.delay_sum /. float_of_int t.rx_packets

let max_delay t = t.delay_max
