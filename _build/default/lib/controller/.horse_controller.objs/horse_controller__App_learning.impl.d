lib/controller/app_learning.ml: Action Controller Hashtbl Headers Horse_net Horse_openflow Mac Ofmatch Ofmsg Packet
