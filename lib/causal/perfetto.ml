module Time = Horse_engine.Time
module Sched = Horse_engine.Sched
module Causal = Horse_engine.Causal
module Span = Horse_telemetry.Span
module Json = Horse_telemetry.Json

(* Streamed emission: one event object per line into an unbounded
   [traceEvents] array, so a large causal graph never materialises as
   one JSON tree. Individual strings go through [Json] for correct
   escaping. *)

type w = { oc : out_channel; mutable first : bool }

let str s = Json.to_string (Json.String s)

let event w fields =
  if w.first then w.first <- false else output_string w.oc ",\n";
  output_char w.oc '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then output_char w.oc ',';
      output_string w.oc (str k);
      output_char w.oc ':';
      output_string w.oc v)
    fields;
  output_char w.oc '}'

let meta w ~pid ?tid ~name value =
  event w
    ([ ("ph", str "M"); ("pid", string_of_int pid) ]
    @ (match tid with Some t -> [ ("tid", string_of_int t) ] | None -> [])
    @ [ ("name", str name); ("args", Printf.sprintf "{\"name\":%s}" (str value)) ])

let pid = 1
let tid_spans = 1
let tid_mode = 2
let tid_causal_base = 10

let slice w ~tid ~name ~cat ~ts ~dur args =
  event w
    ([
       ("ph", str "X");
       ("pid", string_of_int pid);
       ("tid", string_of_int tid);
       ("name", str name);
       ("cat", str cat);
       ("ts", string_of_int ts);
       ("dur", string_of_int (max 1 dur));
     ]
    @ args)

let emit_spans w spans =
  List.iter
    (fun (r : Span.record) ->
      let ts = Int64.to_int r.Span.start_us in
      let dur = Int64.to_int (Int64.sub r.Span.end_us r.Span.start_us) in
      slice w ~tid:tid_spans ~name:r.Span.name ~cat:"span" ~ts ~dur
        [
          ( "args",
            Printf.sprintf "{\"wall_s\":%g}"
              (r.Span.wall_end_s -. r.Span.wall_start_s) );
        ])
    spans

let emit_mode w (transitions : Sched.transition list) end_time =
  let end_us = Time.to_us end_time in
  let emit_segment mode from_us to_us =
    if to_us > from_us then
      slice w ~tid:tid_mode ~name:(Sched.mode_to_string mode) ~cat:"mode"
        ~ts:from_us ~dur:(to_us - from_us) []
  in
  let rec walk mode from_us = function
    | [] -> emit_segment mode from_us end_us
    | (tr : Sched.transition) :: rest ->
        let at = Time.to_us tr.Sched.at in
        emit_segment mode from_us at;
        event w
          [
            ("ph", str "i");
            ("pid", string_of_int pid);
            ("tid", string_of_int tid_mode);
            ("s", str "t");
            ( "name",
              str
                (Printf.sprintf "%s->%s (%s)"
                   (Sched.mode_to_string tr.Sched.from_mode)
                   (Sched.mode_to_string tr.Sched.to_mode)
                   tr.Sched.reason) );
            ("ts", string_of_int at);
            ("cat", str "mode");
          ];
        walk tr.Sched.to_mode at rest
  in
  match transitions with
  | [] -> emit_segment Sched.Des 0 end_us
  | (first : Sched.transition) :: _ ->
      walk first.Sched.from_mode 0 transitions

let kind_track kind =
  match String.index_opt kind ':' with
  | Some i -> String.sub kind 0 i
  | None -> kind

let emit_causal w graph max_events =
  let n = Causal.length graph in
  let lo = max 0 (n - max_events) in
  (* Stable track numbering: tracks in order of first appearance. *)
  let tracks = Hashtbl.create 8 in
  let next = ref tid_causal_base in
  let tid_of kind =
    let track = kind_track kind in
    match Hashtbl.find_opt tracks track with
    | Some tid -> tid
    | None ->
        let tid = !next in
        incr next;
        Hashtbl.add tracks track tid;
        meta w ~pid ~tid ~name:"thread_name" ("causal:" ^ track);
        tid
  in
  Causal.iter graph (fun id info ->
      if id >= lo then begin
        let tid = tid_of info.Causal.kind in
        let ts = Time.to_us info.Causal.at in
        let name =
          if info.Causal.detail = "" then info.Causal.kind
          else info.Causal.kind ^ " " ^ info.Causal.detail
        in
        slice w ~tid ~name ~cat:"causal" ~ts ~dur:1
          [ ("args", Printf.sprintf "{\"id\":%d,\"parent\":%d}" id info.Causal.parent) ];
        let parent = info.Causal.parent in
        if parent >= lo && not (Causal.is_none parent) then
          match Causal.info graph parent with
          | None -> ()
          | Some p ->
              let ptid = tid_of p.Causal.kind in
              let pts = Time.to_us p.Causal.at in
              let common =
                [
                  ("pid", string_of_int pid);
                  ("cat", str "causal-flow");
                  ("name", str "cause");
                  ("id", string_of_int id);
                ]
              in
              event w
                (( "ph", str "s")
                :: ("tid", string_of_int ptid)
                :: ("ts", string_of_int pts)
                :: common);
              event w
                (("ph", str "f") :: ("bp", str "e")
                :: ("tid", string_of_int tid)
                :: ("ts", string_of_int ts)
                :: common)
      end);
  if lo > 0 then
    event w
      [
        ("ph", str "i");
        ("pid", string_of_int pid);
        ("tid", string_of_int tid_mode);
        ("s", str "g");
        ("name", str (Printf.sprintf "causal export truncated: first %d nodes omitted" lo));
        ("ts", "0");
        ("cat", str "causal");
      ]

let write ~path ?graph ?(max_causal_events = 50_000) ~spans ~transitions
    ~end_time () =
  let oc = open_out path in
  let w = { oc; first = true } in
  output_string oc "{\"traceEvents\":[\n";
  meta w ~pid ~name:"process_name" "horse";
  meta w ~pid ~tid:tid_spans ~name:"thread_name" "spans";
  meta w ~pid ~tid:tid_mode ~name:"thread_name" "scheduler mode (DES/FTI)";
  emit_spans w spans;
  emit_mode w transitions end_time;
  (match graph with
  | Some g -> emit_causal w g max_causal_events
  | None -> ());
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n";
  close_out oc
