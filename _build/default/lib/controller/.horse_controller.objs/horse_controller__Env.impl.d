lib/controller/env.ml: Hashtbl Horse_net Horse_topo Int Ipv4 List Spf Topology
