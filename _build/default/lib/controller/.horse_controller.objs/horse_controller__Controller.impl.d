lib/controller/controller.ml: Channel Format Hashtbl Horse_emulation Horse_engine Horse_openflow List Ofmatch Ofmsg Process Sched Trace
