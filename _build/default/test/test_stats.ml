(* Tests for horse_stats: series, summaries, CSV, ASCII rendering. *)

open Horse_engine
open Horse_stats

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let series_of samples =
  let s = Series.create () in
  List.iter (fun (ms, v) -> Series.add s (Time.of_ms ms) v) samples;
  s

let test_series_basics () =
  let s = series_of [ (0, 1.0); (100, 2.0); (200, 3.0) ] in
  check Alcotest.int "length" 3 (Series.length s);
  check (Alcotest.float 1e-9) "mean" 2.0 (Series.mean s);
  check (Alcotest.float 1e-9) "max" 3.0 (Series.max_value s);
  check Alcotest.bool "last" true
    (match Series.last s with Some (_, v) -> v = 3.0 | None -> false)

let test_series_monotonic () =
  let s = series_of [ (100, 1.0) ] in
  Alcotest.check_raises "non-monotonic rejected"
    (Invalid_argument "Series.add: non-monotonic timestamp") (fun () ->
      Series.add s (Time.of_ms 50) 2.0)

let test_series_integrate () =
  (* 1.0 for 100ms, then 3.0 for 100ms -> 0.1 + 0.3 = 0.4 *)
  let s = series_of [ (0, 1.0); (100, 3.0); (200, 99.0) ] in
  check (Alcotest.float 1e-9) "step integral" 0.4 (Series.integrate s)

let test_series_between_and_map () =
  let s = series_of [ (0, 1.0); (100, 2.0); (200, 3.0); (300, 4.0) ] in
  let mid = Series.between s (Time.of_ms 100) (Time.of_ms 200) in
  check Alcotest.int "between" 2 (Series.length mid);
  let doubled = Series.map s ~f:(fun v -> 2.0 *. v) in
  check (Alcotest.float 1e-9) "map mean" 5.0 (Series.mean doubled)

let test_series_merge_sum () =
  let a = series_of [ (0, 1.0); (100, 2.0) ] in
  let b = series_of [ (0, 10.0); (100, 20.0) ] in
  let sum = Series.merge_sum [ a; b ] in
  check (Alcotest.list (Alcotest.float 1e-9)) "pointwise" [ 11.0; 22.0 ]
    (Series.values sum);
  let short = series_of [ (0, 1.0) ] in
  Alcotest.check_raises "grid mismatch"
    (Invalid_argument "Series.merge_sum: length mismatch") (fun () ->
      ignore (Series.merge_sum [ a; short ]))

let prop_series_integrate_constant =
  qtest "series: integral of a constant is value * span"
    QCheck2.Gen.(pair (int_range 1 50) (float_range 0.0 100.0))
    (fun (n, v) ->
      let s = Series.create () in
      for i = 0 to n do
        Series.add s (Time.of_ms (100 * i)) v
      done;
      Float.abs (Series.integrate s -. (v *. 0.1 *. float_of_int n)) < 1e-6)

let test_summary () =
  let s = Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check Alcotest.int "count" 8 s.Summary.count;
  check (Alcotest.float 1e-9) "mean" 5.0 s.Summary.mean;
  check (Alcotest.float 1e-9) "stddev" 2.0 s.Summary.stddev;
  check (Alcotest.float 1e-9) "min" 2.0 s.Summary.min;
  check (Alcotest.float 1e-9) "max" 9.0 s.Summary.max;
  let empty = Summary.of_list [] in
  check Alcotest.int "empty count" 0 empty.Summary.count

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check (Alcotest.float 1e-9) "p0" 1.0 (Summary.percentile xs 0.0);
  check (Alcotest.float 1e-9) "p50" 3.0 (Summary.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p100" 5.0 (Summary.percentile xs 100.0);
  check (Alcotest.float 1e-9) "p25 interpolates" 2.0 (Summary.percentile xs 25.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Summary.percentile: p outside [0,100]") (fun () ->
      ignore (Summary.percentile xs 101.0))

let test_csv () =
  let a = series_of [ (0, 1.0); (500, 2.0) ] in
  let b = series_of [ (0, 3.0); (500, 4.0) ] in
  let out = Format.asprintf "%t" (fun fmt -> Csv.write_series fmt [ ("a", a); ("b", b) ]) in
  let lines = String.split_on_char '\n' (String.trim out) in
  check Alcotest.int "rows" 3 (List.length lines);
  check Alcotest.string "header" "time_s,a,b" (List.hd lines);
  check Alcotest.string "first row" "0.000000,1,3" (List.nth lines 1)

let test_csv_escaping () =
  let out =
    Format.asprintf "%t" (fun fmt ->
        Csv.write_rows fmt ~header:[ "x" ] [ [ "a,b" ]; [ "q\"uote" ] ])
  in
  check Alcotest.bool "comma quoted" true
    (String.length out > 0
    && String.split_on_char '\n' out |> fun lines ->
       List.nth lines 1 = "\"a,b\"" && List.nth lines 2 = "\"q\"\"uote\"")

let test_sparkline () =
  check Alcotest.string "empty" "" (Ascii.sparkline []);
  let line = Ascii.sparkline [ 0.0; 1.0 ] in
  check Alcotest.bool "two glyphs" true (String.length line > 0);
  (* constant series should not crash (zero range) *)
  ignore (Ascii.sparkline [ 5.0; 5.0; 5.0 ])

let test_plot_and_bars_render () =
  let s = series_of [ (0, 0.0); (1000, 5.0); (2000, 2.5) ] in
  let out = Format.asprintf "%t" (fun fmt -> Ascii.plot fmt [ ("demo", s) ]) in
  check Alcotest.bool "plot mentions legend" true
    (String.length out > 100
    &&
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains_sub out "demo");
  let bars =
    Format.asprintf "%t" (fun fmt ->
        Ascii.bar_chart fmt [ ("horse", 10.0); ("mininet", 50.0) ])
  in
  check Alcotest.bool "bar chart renders" true (String.length bars > 20)

let test_histogram_buckets () =
  let h = Histogram.create_log ~buckets_per_decade:1 ~lo:1.0 ~hi:1000.0 () in
  Histogram.add_list h [ 0.5; 1.5; 2.0; 15.0; 500.0; 5000.0 ];
  check Alcotest.int "total" 6 (Histogram.count h);
  check Alcotest.int "underflow" 1 (Histogram.underflow h);
  check Alcotest.int "overflow" 1 (Histogram.overflow h);
  (match Histogram.buckets h with
  | [ (_, _, a); (_, _, b); (_, _, c) ] ->
      check Alcotest.int "1-10" 2 a;
      check Alcotest.int "10-100" 1 b;
      check Alcotest.int "100-1000" 1 c
  | bs -> Alcotest.failf "expected 3 buckets, got %d" (List.length bs));
  let out = Format.asprintf "%a" Histogram.pp h in
  check Alcotest.bool "renders" true (String.length out > 20)

let prop_histogram_conserves =
  qtest "histogram: buckets + under + over = total"
    QCheck2.Gen.(list_size (int_range 0 300) (float_range 0.0001 100000.0))
    (fun vs ->
      let h = Histogram.create_log ~lo:0.001 ~hi:10000.0 () in
      Histogram.add_list h vs;
      let bucketed =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h)
      in
      bucketed + Histogram.underflow h + Histogram.overflow h = Histogram.count h
      && Histogram.count h = List.length vs)

let () =
  Alcotest.run "horse_stats"
    [
      ( "series",
        [
          Alcotest.test_case "basics" `Quick test_series_basics;
          Alcotest.test_case "monotonic enforcement" `Quick test_series_monotonic;
          Alcotest.test_case "integrate" `Quick test_series_integrate;
          Alcotest.test_case "between/map" `Quick test_series_between_and_map;
          Alcotest.test_case "merge_sum" `Quick test_series_merge_sum;
          prop_series_integrate_constant;
        ] );
      ( "summary",
        [
          Alcotest.test_case "moments" `Quick test_summary;
          Alcotest.test_case "percentiles" `Quick test_percentile;
        ] );
      ( "csv",
        [
          Alcotest.test_case "series export" `Quick test_csv;
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "log buckets" `Quick test_histogram_buckets;
          prop_histogram_conserves;
        ] );
      ( "ascii",
        [
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "plot and bars" `Quick test_plot_and_bars_render;
        ] );
    ]
