lib/openflow/ofmatch.ml: Flow_key Format Headers Horse_net Ipv4 Mac Option Prefix Wire
