(* Tests for horse_p4: program validation, the pipeline interpreter,
   the runtime codec, the agent, and the P4 fabric end-to-end. *)

open Horse_net
open Horse_engine
open Horse_emulation
open Horse_topo
open Horse_p4
open Horse_core

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- program validation ----------------------------------------------- *)

let test_ecmp_router_valid () =
  match Prog.validate Prog.ecmp_router with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_validate_catches () =
  let base = Prog.ecmp_router in
  let broken =
    [
      ( "unknown field in table key",
        {
          base with
          Prog.tables =
            [
              {
                Prog.table_name = "t";
                keys = [ ("nope", Prog.Exact) ];
                action_refs = [ "discard" ];
                default_action = ("discard", []);
              };
            ];
          pipeline = Prog.Apply "t";
        } );
      ( "unknown action in table",
        {
          base with
          Prog.tables =
            [
              {
                Prog.table_name = "t";
                keys = [ ("dst", Prog.Exact) ];
                action_refs = [ "missing" ];
                default_action = ("missing", []);
              };
            ];
          pipeline = Prog.Apply "t";
        } );
      ( "pipeline references unknown table",
        { base with Prog.pipeline = Prog.Apply "missing" } );
      ( "field width out of range",
        { base with Prog.fields = ("bad", 63) :: base.Prog.fields } );
      ( "duplicate field",
        { base with Prog.fields = ("dst", 32) :: base.Prog.fields } );
      ( "action references unknown param",
        {
          base with
          Prog.actions =
            {
              Prog.action_name = "oops";
              params = [];
              body = [ Prog.Forward (Prog.Param "nope") ];
            }
            :: base.Prog.actions;
        } );
    ]
  in
  List.iter
    (fun (what, prog) ->
      match Prog.validate prog with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "validator accepted: %s" what)
    broken

let test_pp_renders () =
  let out = Format.asprintf "%a" Prog.pp Prog.ecmp_router in
  check Alcotest.bool "mentions tables" true (String.length out > 200)

(* --- interpreter ------------------------------------------------------- *)

let simple_program =
  {
    Prog.name = "simple";
    fields = [ ("dst", 32); ("mark", 8) ];
    actions =
      [
        {
          Prog.action_name = "forward";
          params = [ ("port", 16) ];
          body = [ Prog.Forward (Prog.Param "port") ];
        };
        {
          Prog.action_name = "mark_and_forward";
          params = [ ("m", 8); ("port", 16) ];
          body =
            [
              Prog.Set_field ("mark", Prog.Param "m");
              Prog.Count "marked";
              Prog.Forward (Prog.Param "port");
            ];
        };
        { Prog.action_name = "discard"; params = []; body = [ Prog.Drop ] };
      ];
    tables =
      [
        {
          Prog.table_name = "route";
          keys = [ ("dst", Prog.Lpm) ];
          action_refs = [ "forward"; "mark_and_forward"; "discard" ];
          default_action = ("discard", []);
        };
      ];
    counters = [ "marked" ];
    pipeline = Prog.Apply "route";
  }

let ip_int s = Int32.to_int (Ipv4.to_int32 (Ipv4.of_string_exn s)) land 0xFFFFFFFF

let test_interp_lpm_longest_wins () =
  let e = Result.get_ok (Interp.create simple_program) in
  let insert key action args =
    match
      Interp.insert e
        { Interp.e_table = "route"; key; priority = 0; action; args }
    with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  in
  insert [ Interp.K_lpm (ip_int "10.0.0.0", 8) ] "forward" [ 1 ];
  insert [ Interp.K_lpm (ip_int "10.1.0.0", 16) ] "forward" [ 2 ];
  insert [ Interp.K_lpm (0, 0) ] "forward" [ 9 ];
  let run dst = Interp.exec e [ ("dst", ip_int dst) ] in
  check Alcotest.bool "/16 wins" true (run "10.1.2.3" = Interp.Forwarded 2);
  check Alcotest.bool "/8" true (run "10.9.9.9" = Interp.Forwarded 1);
  check Alcotest.bool "default /0" true (run "8.8.8.8" = Interp.Forwarded 9)

let test_interp_default_action () =
  let e = Result.get_ok (Interp.create simple_program) in
  check Alcotest.bool "empty table drops" true
    (Interp.exec e [ ("dst", 42) ] = Interp.Dropped)

let test_interp_counters_and_params () =
  let e = Result.get_ok (Interp.create simple_program) in
  (match
     Interp.insert e
       {
         Interp.e_table = "route";
         key = [ Interp.K_lpm (0, 0) ];
         priority = 0;
         action = "mark_and_forward";
         args = [ 7; 3 ];
       }
   with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check Alcotest.int "counter starts at 0" 0 (Interp.counter e "marked");
  check Alcotest.bool "forwards to arg port" true
    (Interp.exec e [ ("dst", 1) ] = Interp.Forwarded 3);
  check Alcotest.bool "again" true (Interp.exec e [ ("dst", 2) ] = Interp.Forwarded 3);
  check Alcotest.int "counter counted" 2 (Interp.counter e "marked")

let test_interp_insert_validation () =
  let e = Result.get_ok (Interp.create simple_program) in
  let bad entry = Result.is_error (Interp.insert e entry) in
  check Alcotest.bool "unknown table" true
    (bad { Interp.e_table = "zzz"; key = []; priority = 0; action = "forward"; args = [ 1 ] });
  check Alcotest.bool "kind mismatch" true
    (bad
       {
         Interp.e_table = "route";
         key = [ Interp.K_exact 1 ];
         priority = 0;
         action = "forward";
         args = [ 1 ];
       });
  check Alcotest.bool "arity mismatch" true
    (bad
       {
         Interp.e_table = "route";
         key = [ Interp.K_lpm (0, 0) ];
         priority = 0;
         action = "forward";
         args = [];
       })

let ternary_program =
  {
    simple_program with
    Prog.name = "ternary";
    tables =
      [
        {
          Prog.table_name = "route";
          keys = [ ("dst", Prog.Ternary) ];
          action_refs = [ "forward"; "discard" ];
          default_action = ("discard", []);
        };
      ];
    pipeline = Prog.Apply "route";
  }

let test_interp_ternary_priority () =
  let e = Result.get_ok (Interp.create ternary_program) in
  let insert ~priority key action args =
    Result.get_ok
      (Interp.insert e { Interp.e_table = "route"; key; priority; action; args })
  in
  insert ~priority:1 [ Interp.K_ternary (0, 0) ] "forward" [ 1 ];
  insert ~priority:10 [ Interp.K_ternary (0x80, 0xF0) ] "forward" [ 2 ];
  check Alcotest.bool "specific mask with priority wins" true
    (Interp.exec e [ ("dst", 0x8F) ] = Interp.Forwarded 2);
  check Alcotest.bool "fallthrough" true
    (Interp.exec e [ ("dst", 0x7F) ] = Interp.Forwarded 1)

let test_interp_hash_deterministic () =
  let e = Result.get_ok (Interp.create Prog.ecmp_router) in
  Result.get_ok
    (Interp.insert e
       {
         Interp.e_table = "ipv4_lpm";
         key = [ Interp.K_lpm (0, 0) ];
         priority = 0;
         action = "set_group";
         args = [ 5; 4 ];
       });
  for member = 0 to 3 do
    Result.get_ok
      (Interp.insert e
         {
           Interp.e_table = "ecmp_select";
           key = [ Interp.K_exact 5; Interp.K_exact member ];
           priority = 0;
           action = "forward";
           args = [ 100 + member ];
         })
  done;
  let fields i =
    [ ("dst", 1000 + i); ("src", 7); ("sport", i); ("dport", 80); ("proto", 17) ]
  in
  (* Deterministic per flow. *)
  List.iter
    (fun i ->
      check Alcotest.bool "same flow same port" true
        (Interp.exec e (fields i) = Interp.exec e (fields i)))
    [ 0; 1; 2; 3; 4 ];
  (* Spreads across members. *)
  let ports = Hashtbl.create 4 in
  for i = 0 to 63 do
    match Interp.exec e (fields i) with
    | Interp.Forwarded p -> Hashtbl.replace ports p ()
    | Interp.Dropped -> Alcotest.fail "dropped"
  done;
  check Alcotest.bool "uses several members" true (Hashtbl.length ports >= 3)

(* --- runtime codec -------------------------------------------------------- *)

let gen_key =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Interp.K_exact v) (int_bound 1_000_000);
        map2 (fun v l -> Interp.K_lpm (v, l)) (int_bound 1_000_000) (int_range 0 32);
        map2 (fun v m -> Interp.K_ternary (v, m)) (int_bound 1_000_000) (int_bound 0xFFFF);
      ])

let gen_name = QCheck2.Gen.(map (fun n -> Printf.sprintf "name%d" n) (int_bound 99))

let gen_request =
  let open QCheck2.Gen in
  oneof
    [
      return Runtime.Hello;
      (let* e_table = gen_name in
       let* key = list_size (int_range 0 4) gen_key in
       let* priority = int_bound 1000 in
       let* action = gen_name in
       let* args = list_size (int_range 0 4) (int_bound 100000) in
       return (Runtime.Insert { Interp.e_table; key; priority; action; args }));
      (let* d_table = gen_name in
       let* d_key = list_size (int_range 0 4) gen_key in
       return (Runtime.Delete { d_table; d_key }));
      map (fun c -> Runtime.Counter_read c) gen_name;
    ]

let gen_response =
  let open QCheck2.Gen in
  oneof
    [
      return Runtime.Ack;
      map (fun m -> Runtime.Nack m) gen_name;
      map2 (fun c v -> Runtime.Counter_value (c, v)) gen_name (int_bound 1_000_000);
    ]

let prop_request_roundtrip =
  qtest "p4runtime: request roundtrip"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 0xFFFF) gen_request)
    (fun (xid, req) ->
      match Runtime.decode_request (Runtime.encode_request ~xid req) with
      | Ok (xid', req') -> xid = xid' && Runtime.request_equal req req'
      | Error _ -> false)

let prop_response_roundtrip =
  qtest "p4runtime: response roundtrip"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 0xFFFF) gen_response)
    (fun (xid, resp) ->
      match Runtime.decode_response (Runtime.encode_response ~xid resp) with
      | Ok (xid', resp') -> xid = xid' && Runtime.response_equal resp resp'
      | Error _ -> false)

let prop_runtime_decode_total =
  qtest ~count:500 "p4runtime: decoders never raise on arbitrary bytes"
    QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 120)))
    (fun junk ->
      (match Runtime.decode_request junk with Ok _ | Error _ -> ());
      (match Runtime.decode_response junk with Ok _ | Error _ -> ());
      true)

(* --- agent over a channel --------------------------------------------------- *)

let test_agent_programming () =
  let sched = Sched.create () in
  let chan = Channel.create sched ~latency:(Time.of_ms 1) () in
  let sw_end, ctrl_end = Channel.endpoints chan in
  let agent =
    Result.get_ok
      (Agent.create
         (Process.create sched ~name:"p4sw")
         ~program:simple_program
         ~ports:[ (1, 100); (2, 200) ]
         sw_end)
  in
  let responses = ref [] in
  Channel.set_receiver ctrl_end (fun bytes ->
      match Runtime.decode_response bytes with
      | Ok (xid, r) -> responses := (xid, r) :: !responses
      | Error e -> Alcotest.fail e);
  let send xid req = Channel.send ctrl_end (Runtime.encode_request ~xid req) in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         send 1
           (Runtime.Insert
              {
                Interp.e_table = "route";
                key = [ Interp.K_lpm (0, 0) ];
                priority = 0;
                action = "forward";
                args = [ 2 ];
              });
         send 2
           (Runtime.Insert
              {
                Interp.e_table = "nonsense";
                key = [];
                priority = 0;
                action = "forward";
                args = [ 1 ];
              });
         send 3 (Runtime.Counter_read "marked")));
  ignore (Sched.run ~until:(Time.of_ms 100) sched);
  check Alcotest.int "one write applied" 1 (Agent.writes_applied agent);
  check Alcotest.int "one nack" 1 (Agent.nacks_sent agent);
  let find xid = List.assoc_opt xid !responses in
  check Alcotest.bool "insert acked" true (find 1 = Some Runtime.Ack);
  check Alcotest.bool "bad insert nacked" true
    (match find 2 with Some (Runtime.Nack _) -> true | _ -> false);
  check Alcotest.bool "counter read" true
    (find 3 = Some (Runtime.Counter_value ("marked", 0)));
  check Alcotest.bool "pipeline works" true
    (Agent.process agent [ ("dst", 5) ] = Interp.Forwarded 2);
  check (Alcotest.option Alcotest.int) "port mapping" (Some 200)
    (Agent.link_of_port agent 2)

(* --- P4 fabric end-to-end ---------------------------------------------------- *)

let test_p4_fabric_fat_tree () =
  let ft = Fat_tree.build ~k:4 () in
  let exp = Experiment.create ft.Fat_tree.topo in
  let fabric =
    Result.get_ok (P4_fabric.build ~cm:(Experiment.cm exp) ft.Fat_tree.topo)
  in
  let programmed_at = ref None in
  Experiment.at exp Time.zero (fun () -> P4_fabric.program_routes fabric);
  P4_fabric.when_programmed fabric (fun () ->
      programmed_at := Some (Sched.now (Experiment.scheduler exp)));
  let stats = Experiment.run ~until:(Time.of_sec 5.0) exp in
  check Alcotest.bool "entries sent" true (P4_fabric.entries_sent fabric > 100);
  check Alcotest.int "no nacks" 0 (P4_fabric.nacks_received fabric);
  check Alcotest.bool "programming finished" true (P4_fabric.programmed fabric);
  check Alcotest.bool "reported" true (!programmed_at <> None);
  check Alcotest.bool "programming held the clock in FTI" true
    (stats.Sched.fti_increments > 0);
  (* Every host pair resolves through the pipelines. *)
  let hosts = ft.Fat_tree.hosts in
  let used_cores = Hashtbl.create 8 in
  Array.iteri
    (fun i (src : Topology.node) ->
      Array.iteri
        (fun j (dst : Topology.node) ->
          if i <> j then begin
            let key =
              Flow_key.make
                ~src:(Option.get src.Topology.ip)
                ~dst:(Option.get dst.Topology.ip)
                ~src_port:(1000 + i) ~dst_port:(2000 + j) ()
            in
            match P4_fabric.path_for fabric key with
            | Ok path ->
                List.iter
                  (fun (l : Topology.link) ->
                    let n = Topology.node ft.Fat_tree.topo l.Topology.dst in
                    if String.length n.Topology.name >= 4
                       && String.sub n.Topology.name 0 4 = "core"
                    then Hashtbl.replace used_cores n.Topology.id ())
                  path;
                (* Paths are hop-count shortest: same pod 2 or 4, inter-pod 6. *)
                let hops = List.length path in
                if hops <> 2 && hops <> 4 && hops <> 6 then
                  Alcotest.failf "unexpected path length %d" hops
            | Error msg -> Alcotest.failf "unroutable: %s" msg
          end)
        hosts)
    hosts;
  check Alcotest.bool "ECMP spreads over several cores" true
    (Hashtbl.length used_cores >= 2);
  (* Counters: run some packets through an edge switch and read its
     counter over the runtime channel. *)
  let edge = ft.Fat_tree.edges.(0).(0) in
  let got = ref None in
  Experiment.at exp (Time.of_sec 6.0) (fun () ->
      P4_fabric.read_counter fabric ~dpid:edge.Topology.id "routed" (fun v ->
          got := Some v));
  ignore (Experiment.run ~until:(Time.of_sec 7.0) exp);
  match !got with
  | Some v -> check Alcotest.bool "routed counter grew" true (v > 0)
  | None -> Alcotest.fail "counter read never answered"

let () =
  Alcotest.run "horse_p4"
    [
      ( "program",
        [
          Alcotest.test_case "ecmp_router validates" `Quick test_ecmp_router_valid;
          Alcotest.test_case "validator catches errors" `Quick test_validate_catches;
          Alcotest.test_case "pretty printer" `Quick test_pp_renders;
        ] );
      ( "interp",
        [
          Alcotest.test_case "lpm longest wins" `Quick test_interp_lpm_longest_wins;
          Alcotest.test_case "default action" `Quick test_interp_default_action;
          Alcotest.test_case "counters and params" `Quick
            test_interp_counters_and_params;
          Alcotest.test_case "insert validation" `Quick test_interp_insert_validation;
          Alcotest.test_case "ternary priority" `Quick test_interp_ternary_priority;
          Alcotest.test_case "hash deterministic + spreads" `Quick
            test_interp_hash_deterministic;
        ] );
      ( "runtime",
        [ prop_request_roundtrip; prop_response_roundtrip;
          prop_runtime_decode_total;
          Alcotest.test_case "agent programming" `Quick test_agent_programming ] );
      ( "fabric",
        [ Alcotest.test_case "fat-tree end-to-end" `Quick test_p4_fabric_fat_tree ] );
    ]
