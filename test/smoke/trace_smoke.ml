(* Causal-tracing smoke: the 22-fault storm TE scenario run with
   tracing on vs off.

   Gates, failing @trace-smoke (and @runtest with it):
   - wall overhead of tracing <= 10% (min-of-3 per side, plus a small
     absolute slack against timer noise on loaded CI machines);
   - tracing is invisible to the experiment: identical final FIB
     fingerprint either way;
   - every BGP-learned FIB entry after the storm carries a provenance
     chain (non-none cause, nonempty chain ending at its fib:write);
   - determinism: two traced runs produce byte-identical causal-graph
     hashes.

   Writes both sides' numbers to the path given as argv(1). *)

module Time = Horse_engine.Time
module Sched = Horse_engine.Sched
module Causal = Horse_engine.Causal
module Topology = Horse_topo.Topology
module Fat_tree = Horse_topo.Fat_tree
module Scenario = Horse_core.Scenario
module Plan = Horse_faults.Plan
module Json = Horse_telemetry.Json

let overhead_budget = 0.10
let wall_slack_s = 0.05
let reps = 3

(* The sched_smoke storm: a deterministic flap storm plus a node
   crash/restart — 22 fault events over a 20s virtual run. *)
let plan =
  let ft = Fat_tree.build ~k:4 () in
  let is_switch (n : Topology.node) =
    match n.Topology.kind with
    | Topology.Switch | Topology.Router -> true
    | Topology.Host -> false
  in
  let sites =
    List.filteri
      (fun i _ -> i mod 9 = 0)
      (List.filter_map
         (fun (l : Topology.link) ->
           if l.Topology.link_id < l.Topology.peer then
             let src = Topology.node ft.Fat_tree.topo l.Topology.src in
             let dst = Topology.node ft.Fat_tree.topo l.Topology.dst in
             if is_switch src && is_switch dst then
               Some (src.Topology.name, dst.Topology.name)
             else None
           else None)
         (Topology.links ft.Fat_tree.topo))
  in
  let victim = ft.Fat_tree.aggs.(2).(0).Topology.name in
  let storm =
    Plan.flap_storm ~seed:5 ~sites ~start:(Time.of_sec 5.0)
      ~stop:(Time.of_sec 15.0) ~period:(Time.of_sec 4.0)
      ~down_for:(Time.of_sec 1.0) ()
  in
  {
    storm with
    Plan.events =
      [
        { Plan.at = Time.of_sec 6.0; action = Plan.Node_crash victim };
        { Plan.at = Time.of_sec 12.0; action = Plan.Node_restart victim };
      ];
  }

let run ~causal =
  Scenario.run_fat_tree_te ~pods:4 ~te:Scenario.Bgp_ecmp
    ~config:{ Sched.default_config with Sched.causal }
    ~faults:plan ~duration:(Time.of_sec 20.0) ()

(* Reps are interleaved (off, on, off, on, ...) rather than run as two
   blocks: within one process the GC debt of earlier runs is paid by
   later ones, so whichever block runs second looks slower — an
   ordering artifact worth several times the real overhead. *)
let measure () =
  let pick b r =
    match b with
    | Some (b : Scenario.result) when b.Scenario.run_wall_s <= r.Scenario.run_wall_s ->
        Some b
    | _ -> Some r
  in
  ignore (run ~causal:false);
  ignore (run ~causal:true);
  let off = ref None and traced = ref None in
  for _ = 1 to reps do
    off := pick !off (run ~causal:false);
    traced := pick !traced (run ~causal:true)
  done;
  (Option.get !off, Option.get !traced)

let () =
  let out = Sys.argv.(1) in
  let off, traced = measure () in
  let g = Option.get traced.Scenario.causal in
  let prov = traced.Scenario.fib_provenance in
  let overhead =
    (traced.Scenario.run_wall_s /. off.Scenario.run_wall_s) -. 1.0
  in
  let oc = open_out out in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("off_wall_s", Json.Float off.Scenario.run_wall_s);
            ("on_wall_s", Json.Float traced.Scenario.run_wall_s);
            ( "off_events",
              Json.Int off.Scenario.sched_stats.Sched.events_executed );
            ( "on_events",
              Json.Int traced.Scenario.sched_stats.Sched.events_executed );
            ( "off_ticks",
              Json.Int off.Scenario.sched_stats.Sched.poller_ticks );
            ( "on_ticks",
              Json.Int traced.Scenario.sched_stats.Sched.poller_ticks );
            ( "off_ffwd",
              Json.Int off.Scenario.sched_stats.Sched.fti_increments_skipped );
            ( "on_ffwd",
              Json.Int traced.Scenario.sched_stats.Sched.fti_increments_skipped );
            ("overhead", Json.Float overhead);
            ("causal_nodes", Json.Int (Causal.length g));
            ("causal_dropped", Json.Int (Causal.dropped g));
            ("causal_hash", Json.String (Causal.hash g));
            ("fib_entries", Json.Int (List.length prov));
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "trace-smoke: wall %.3fs -> %.3fs (%.1f%% overhead), %d causal nodes, %d \
     FIB entries with provenance\n"
    off.Scenario.run_wall_s traced.Scenario.run_wall_s (100.0 *. overhead)
    (Causal.length g) (List.length prov);
  if
    traced.Scenario.run_wall_s
    > ((1.0 +. overhead_budget) *. off.Scenario.run_wall_s) +. wall_slack_s
  then begin
    Printf.eprintf
      "trace-smoke: tracing overhead budget missed: %.3fs > %.3fs + %.0f%% — \
       a causal primitive grew a cost on the hot path?\n"
      traced.Scenario.run_wall_s off.Scenario.run_wall_s
      (100.0 *. overhead_budget);
    exit 1
  end;
  if
    traced.Scenario.fib_fingerprint <> off.Scenario.fib_fingerprint
    || off.Scenario.fib_fingerprint = None
  then begin
    Printf.eprintf "trace-smoke: tracing perturbed the final FIBs\n";
    exit 1
  end;
  if prov = [] then begin
    Printf.eprintf "trace-smoke: no FIB provenance entries after the storm\n";
    exit 1
  end;
  List.iter
    (fun (node, prefix, cause) ->
      let where = node ^ " " ^ Horse_net.Prefix.to_string prefix in
      if Causal.is_none cause then begin
        Printf.eprintf "trace-smoke: FIB entry %s has no provenance\n" where;
        exit 1
      end;
      match List.rev (Causal.chain g cause) with
      | [] ->
          Printf.eprintf "trace-smoke: FIB entry %s has an empty chain\n" where;
          exit 1
      | last :: _ when last.Causal.kind <> "fib:write" ->
          Printf.eprintf
            "trace-smoke: FIB entry %s chain ends at %s, not fib:write\n" where
            last.Causal.kind;
          exit 1
      | _ :: _ -> ())
    prov;
  let again = run ~causal:true in
  let h1 = Causal.hash g
  and h2 = Causal.hash (Option.get again.Scenario.causal) in
  if h1 <> h2 then begin
    Printf.eprintf
      "trace-smoke: causal-graph hash diverged across same-seed runs\n";
    exit 1
  end
