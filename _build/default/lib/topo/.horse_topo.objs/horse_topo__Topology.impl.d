lib/topo/topology.ml: Array Format Horse_engine Horse_net Ipv4 List Mac Option Printf String
