(* P4 switches in Horse — the paper's future-work item, realised.

   Prints the built-in ECMP router pipeline in P4-ish source form,
   builds a 4-pod fat-tree of P4 switches, programs their tables over
   CM-observed runtime channels (watch the clock go FTI while the
   controller writes entries), routes the demonstration's traffic
   through the interpreted pipelines, and reads a hardware-style
   counter back over the control channel.

   Run with:  dune exec examples/p4_pipeline.exe *)

open Horse_engine
open Horse_topo
open Horse_net
open Horse_dataplane
open Horse_core

let () =
  Format.printf "--- the pipeline -----------------------------------@.";
  Format.printf "%a@.@." Horse_p4.Prog.pp Horse_p4.Prog.ecmp_router;

  let ft = Fat_tree.build ~k:4 () in
  let exp = Experiment.create ft.Fat_tree.topo in
  let fabric =
    match P4_fabric.build ~cm:(Experiment.cm exp) ft.Fat_tree.topo with
    | Ok fabric -> fabric
    | Error msg -> failwith msg
  in
  Experiment.at exp Time.zero (fun () -> P4_fabric.program_routes fabric);
  P4_fabric.when_programmed fabric (fun () ->
      Format.printf "[%a] all %d table entries acknowledged@." Time.pp
        (Sched.now (Experiment.scheduler exp))
        (P4_fabric.entries_sent fabric));

  (* Start the demonstration traffic once the tables are in. *)
  let fluid = Experiment.fluid exp in
  P4_fabric.when_programmed fabric (fun () ->
      Array.iteri
        (fun i (src : Topology.node) ->
          let dst = ft.Fat_tree.hosts.((i + 5) mod Array.length ft.Fat_tree.hosts) in
          let key =
            Flow_key.make
              ~src:(Option.get src.Topology.ip)
              ~dst:(Option.get dst.Topology.ip)
              ~src_port:(4000 + i) ~dst_port:(5000 + i) ()
          in
          match P4_fabric.path_for fabric key with
          | Ok path -> ignore (Fluid.start_flow ~demand:1e9 fluid ~key ~path)
          | Error msg -> Format.printf "unroutable: %s@." msg)
        ft.Fat_tree.hosts);

  let stats = Experiment.run ~until:(Time.of_sec 10.0) exp in
  Format.printf "@.--- run --------------------------------------------@.";
  Format.printf "%a@." Sched.pp_stats stats;
  Format.printf "aggregate rx rate: %.2f Gbps over %d flows@."
    (Fluid.total_rx_rate fluid /. 1e9)
    (Fluid.flow_count fluid);

  (* Counter read over the runtime channel. *)
  let edge = ft.Fat_tree.edges.(0).(0) in
  let counter = ref None in
  Experiment.at exp (Time.of_sec 11.0) (fun () ->
      P4_fabric.read_counter fabric ~dpid:edge.Topology.id "routed" (fun v ->
          counter := Some v));
  ignore (Experiment.run ~until:(Time.of_sec 12.0) exp);
  match !counter with
  | Some v ->
      Format.printf "%s pipeline 'routed' counter: %d packets processed@."
        edge.Topology.name v
  | None -> Format.printf "counter read did not complete@."
