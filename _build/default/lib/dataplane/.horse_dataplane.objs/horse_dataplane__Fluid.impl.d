lib/dataplane/fluid.ml: Array Event_queue Fair_share Float Flow Flow_key Hashtbl Horse_engine Horse_net Horse_stats Horse_topo List Option Printf Sched Time Topology
