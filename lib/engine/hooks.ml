type 'f t = { mutable items : 'f array; mutable len : int }

let create () = { items = [||]; len = 0 }

let add t f =
  if t.len = Array.length t.items then begin
    let grown = Array.make (max 4 (2 * t.len)) f in
    Array.blit t.items 0 grown 0 t.len;
    t.items <- grown
  end;
  t.items.(t.len) <- f;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.items.(i)
  done

let length t = t.len
let is_empty t = t.len = 0
