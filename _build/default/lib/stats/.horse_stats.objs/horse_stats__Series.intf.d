lib/stats/series.mli: Format Horse_engine Time
