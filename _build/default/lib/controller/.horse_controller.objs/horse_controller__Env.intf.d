lib/controller/env.mli: Horse_net Horse_topo Ipv4 Spf Topology
