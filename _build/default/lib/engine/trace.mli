(** Annotated experiment traces.

    A lightweight append-only log of (virtual time, label, detail)
    records. The Connection Manager logs control-plane activity here
    and the BGP/OpenFlow agents log protocol milestones; the FIG1
    harness renders the result as the paper's mode-transition
    timeline. *)

type entry = {
  at : Time.t;  (** virtual time of the record *)
  wall : float;  (** wall seconds since trace creation *)
  label : string;  (** category, e.g. ["bgp"], ["mode"], ["cm"] *)
  detail : string;
}

type t

val create : unit -> t

val add : t -> at:Time.t -> label:string -> string -> unit

val addf :
  t -> at:Time.t -> label:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!add}. *)

val entries : t -> entry list
(** Chronological (insertion) order. *)

val by_label : t -> string -> entry list

val length : t -> int
val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
