(** Declarative fault plans.

    A plan is a list of virtual-time fault events plus a list of flap
    generators, all addressed by {e node name} (so plans are plain
    data, portable across topologies that use the same names, and
    serializable). Plans are pure values: nothing happens until an
    {!Injector} arms one on a scheduler against a fabric.

    Determinism: the plan carries its own [seed]. Generators and
    impairments draw from per-site streams derived with
    {!Horse_engine.Rng.split_key}, so the same seed + plan always
    yields the same event sequence — and adding a fault site never
    perturbs another site's draws. *)

open Horse_engine

type site = { a : string; b : string }
(** A link or session, by the names of its two endpoint nodes.
    Orientation does not matter. *)

type action =
  | Link_down of site
  | Link_up of site
  | Node_crash of string  (** silent kill — peers notice via timers *)
  | Node_restart of string
  | Session_reset of site  (** Cease NOTIFICATION + automatic re-open *)
  | Impair of site * Horse_emulation.Channel.impairment
  | Clear_impair of site
  | Partition of string list
      (** cut every link with exactly one endpoint in the group — a
          bisection of the fabric *)
  | Heal of string list  (** restore the links cut by [Partition] *)

type event = { at : Time.t; action : action }

type flavor =
  | Periodic of Time.t  (** one flap every period, starting at [start] *)
  | Poisson of float
      (** mean flaps per second; exponential gaps drawn from the
          site's seeded stream *)

type generator = {
  g_site : site;
  g_start : Time.t;
  g_stop : Time.t;  (** no flap begins at or after this time *)
  g_down_for : Time.t;  (** link-down duration of each flap *)
  g_flavor : flavor;
}
(** A flap source: each flap is a [Link_down] at the drawn time and a
    [Link_up] [g_down_for] later. *)

type t = { seed : int; events : event list; generators : generator list }

val empty : t
(** Seed 0, no events, no generators. *)

val flap_storm :
  seed:int ->
  sites:(string * string) list ->
  start:Time.t ->
  stop:Time.t ->
  ?period:Time.t ->
  ?rate:float ->
  down_for:Time.t ->
  unit ->
  t
(** Convenience: one generator per site — [Periodic period] when
    [period] is given, else [Poisson rate] (default rate 0.5/s). *)

val site_label : site -> string
(** ["a<->b"], endpoint names sorted — the canonical fault-site key
    used for {!Horse_engine.Rng.split_key} streams and traces. *)

val action_label : action -> string
(** Human- and diff-friendly one-liner, e.g.
    ["link_down r0<->r1"]. Stable across runs (used by the
    determinism tests). *)

val action_kind : action -> string
(** Short kind tag for metric labels: ["link_down"], ["node_crash"],
    ["impair"], … *)

(** {2 JSON codec}

    Times are float seconds. The schema:
    {v
    { "seed": 7,
      "events": [
        {"at": 5.0, "action": "link_down", "a": "r0", "b": "r1"},
        {"at": 6.0, "action": "node_crash", "node": "r2"},
        {"at": 8.0, "action": "impair", "a": "r0", "b": "r1",
         "loss": 0.1, "extra_delay": 0.01, "jitter": 0.005,
         "duplicate": 0.05},
        {"at": 9.0, "action": "partition", "group": ["r0", "r1"]} ],
      "generators": [
        {"a": "r0", "b": "r1", "kind": "periodic", "period": 4.0,
         "down_for": 1.0, "start": 5.0, "stop": 25.0},
        {"a": "r2", "b": "r3", "kind": "poisson", "rate": 0.5,
         "down_for": 1.0, "start": 5.0, "stop": 25.0} ] }
    v} *)

val to_json : t -> Horse_telemetry.Json.t
val of_json : Horse_telemetry.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val save_file : t -> string -> unit
val load_file : string -> (t, string) result
