(* Robustness smoke for the fault plane: a deterministic flap storm +
   node crash on the small fat-tree TE scenario.  The control plane
   must self-heal — every injected fault reconverged, all sessions
   re-established, all FIBs complete — and each fault must heal within
   a reconvergence budget.  Exits non-zero otherwise, failing
   @fault-smoke (and @runtest with it).

   Writes the armed plan and the per-fault reconvergence report to the
   path given as argv(1). *)

module Time = Horse_engine.Time
module Topology = Horse_topo.Topology
module Fat_tree = Horse_topo.Fat_tree
module Scenario = Horse_core.Scenario
module Plan = Horse_faults.Plan
module Injector = Horse_faults.Injector
module Json = Horse_telemetry.Json

(* Hold time 9 s + ConnectRetry 5 s bound a crash's healing time;
   link flaps heal in a couple of seconds.  20 s of virtual time per
   fault is a generous ceiling — blowing it means self-healing broke. *)
let budget_s = 20.0

(* Fault sites picked from the real topology so the plan's node names
   are always adjacent pairs (every 9th inter-switch link). *)
let plan =
  let ft = Fat_tree.build ~k:4 () in
  let is_switch (n : Topology.node) =
    match n.Topology.kind with
    | Topology.Switch | Topology.Router -> true
    | Topology.Host -> false
  in
  let sites =
    List.filteri
      (fun i _ -> i mod 9 = 0)
      (List.filter_map
         (fun (l : Topology.link) ->
           if l.Topology.link_id < l.Topology.peer then
             let src = Topology.node ft.Fat_tree.topo l.Topology.src in
             let dst = Topology.node ft.Fat_tree.topo l.Topology.dst in
             if is_switch src && is_switch dst then
               Some (src.Topology.name, dst.Topology.name)
             else None
           else None)
         (Topology.links ft.Fat_tree.topo))
  in
  let victim = ft.Fat_tree.aggs.(2).(0).Topology.name in
  let storm =
    Plan.flap_storm ~seed:5 ~sites ~start:(Time.of_sec 5.0)
      ~stop:(Time.of_sec 15.0) ~period:(Time.of_sec 4.0)
      ~down_for:(Time.of_sec 1.0) ()
  in
  {
    storm with
    Plan.events =
      [
        { Plan.at = Time.of_sec 6.0; action = Plan.Node_crash victim };
        { Plan.at = Time.of_sec 12.0; action = Plan.Node_restart victim };
      ];
  }

let () =
  let out = Sys.argv.(1) in
  let r =
    Scenario.run_fat_tree_te ~pods:4 ~te:Scenario.Bgp_ecmp ~faults:plan
      ~duration:(Time.of_sec 40.0) ()
  in
  let inj = Option.get r.Scenario.injector in
  let recon = Injector.reconvergence inj in
  let oc = open_out out in
  output_string oc
    (Json.to_string
       (Json.Obj
          [ ("plan", Plan.to_json plan); ("faults", Injector.report_json inj) ]));
  output_char oc '\n';
  close_out oc;
  let worst =
    List.fold_left
      (fun acc (_, at, healed) ->
        Float.max acc (Time.to_sec healed -. Time.to_sec at))
      0.0 recon
  in
  Printf.printf
    "fault-smoke: %d faults injected (%d skipped), %d healed, worst \
     reconvergence %.3fs\n"
    (Injector.injected inj) (Injector.skipped inj) (List.length recon) worst;
  if Injector.injected inj = 0 || Injector.skipped inj > 0 then begin
    Printf.eprintf
      "fault-smoke: plan did not fully apply (injected=%d skipped=%d) — \
       fault sites out of sync with the fat-tree names?\n"
      (Injector.injected inj) (Injector.skipped inj);
    exit 1
  end;
  if Injector.pending inj > 0 then begin
    Printf.eprintf "fault-smoke: %d faults never reconverged\n"
      (Injector.pending inj);
    exit 1
  end;
  if worst > budget_s then begin
    Printf.eprintf
      "fault-smoke: reconvergence budget exceeded: worst %.3fs > %.1fs\n" worst
      budget_s;
    exit 1
  end