open Horse_net
open Horse_engine
open Horse_emulation
module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge

type peer_state = Idle | OpenSent | OpenConfirm | Established

let pp_peer_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Idle -> "Idle"
    | OpenSent -> "OpenSent"
    | OpenConfirm -> "OpenConfirm"
    | Established -> "Established")

type config = {
  asn : int;
  router_id : Ipv4.t;
  hold_time : Time.t;
  mrai : Time.t;
  multipath : bool;
  networks : Prefix.t list;
  processing_delay : Time.t;
  packing : bool;
  connect_retry : Time.t;
}

let default_config ~asn ~router_id =
  {
    asn;
    router_id;
    hold_time = Time.of_sec 9.0;
    mrai = Time.zero;
    multipath = true;
    networks = [];
    processing_delay = Time.of_us 100;
    packing = true;
    connect_retry = Time.of_sec 5.0;
  }

type counters = {
  opens_sent : int;
  updates_sent : int;
  updates_received : int;
  keepalives_sent : int;
  keepalives_received : int;
  notifications_sent : int;
  decode_errors : int;
}

module Prefix_set = Set.Make (struct
  type t = Prefix.t

  let compare = Prefix.compare
end)

(* Peers sharing an [equal] export policy form one update group: the
   Adj-RIB-Out computation (split horizon aside), the export-policy
   evaluation and the serialized buffers are produced once per group
   and shared by every member, so a flush costs O(groups), not
   O(peers). *)
type peer = {
  id : int;
  remote_asn : int;
  mutable endpoint : Channel.endpoint;
  import : Policy.t;
  export : Policy.t;
  group : group;
  mutable state : peer_state;
  mutable remote_id : Ipv4.t;
  mutable negotiated_hold : Time.t;
  mutable last_rx : Time.t;
  mutable keepalive_timer : Sched.recurring option;
  mutable hold_ev : Event_queue.handle option;
      (* per-peer hold deadline, re-aimed in place on every RX *)
  mutable pending_announce : Prefix_set.t;
  mutable pending_withdraw : Prefix_set.t;
  mutable mrai_armed : bool;
  mutable advertised : Prefix_set.t;
  mutable admin_down : bool;
}

and group = {
  gid : int;
  g_export : Policy.t;
  g_prefix_independent : bool;
  mutable members : peer list;  (* reversed insertion order *)
  mutable up_members : int;
  mutable g_pending_announce : Prefix_set.t;
  mutable g_pending_withdraw : Prefix_set.t;
  mutable g_mrai_armed : bool;
  export_memo : (int, Attr_intern.interned option) Hashtbl.t;
      (* Loc-RIB attrs uid -> post-policy interned attrs; only
         consulted when the export policy is prefix-independent *)
  packer : Msg.Packer.t;
}

(* Registry handles shared by every speaker on the same scheduler:
   message counters are aggregates labeled by direction and type, the
   RIB gauge is per-router. *)
type metrics = {
  tx_open : Counter.t;
  tx_update : Counter.t;
  tx_keepalive : Counter.t;
  tx_notification : Counter.t;
  rx_open : Counter.t;
  rx_update : Counter.t;
  rx_keepalive : Counter.t;
  rx_notification : Counter.t;
  m_decode : Counter.t;
  g_established : Gauge.t;
  g_rib : Gauge.t;
  m_updates_sent : Counter.t;
  m_prefixes_sent : Counter.t;
  m_withdrawn_sent : Counter.t;
  m_intern_hits : Counter.t;
  m_interned : Counter.t;
  m_group_flushes : Counter.t;
  m_peer_flushes : Counter.t;
}

let make_metrics reg ~router_id =
  let msg dir ty =
    Registry.counter reg ~subsystem:"bgp"
      ~help:"BGP messages by direction and type"
      ~labels:[ ("dir", dir); ("type", ty) ]
      "messages_total"
  in
  {
    tx_open = msg "tx" "open";
    tx_update = msg "tx" "update";
    tx_keepalive = msg "tx" "keepalive";
    tx_notification = msg "tx" "notification";
    rx_open = msg "rx" "open";
    rx_update = msg "rx" "update";
    rx_keepalive = msg "rx" "keepalive";
    rx_notification = msg "rx" "notification";
    m_decode =
      Registry.counter reg ~subsystem:"bgp" ~help:"Undecodable BGP messages"
        "decode_errors_total";
    g_established =
      Registry.gauge reg ~subsystem:"bgp"
        ~help:"Currently established BGP sessions" "established_sessions";
    g_rib =
      Registry.gauge reg ~subsystem:"bgp" ~help:"Loc-RIB prefixes per router"
        ~labels:[ ("router", Ipv4.to_string router_id) ]
        "rib_routes";
    m_updates_sent =
      Registry.counter reg ~subsystem:"bgp"
        ~help:"UPDATE messages sent (packing denominator)"
        "updates_sent_total";
    m_prefixes_sent =
      Registry.counter reg ~subsystem:"bgp"
        ~help:"NLRI prefixes announced across all sent UPDATEs"
        "prefixes_sent_total";
    m_withdrawn_sent =
      Registry.counter reg ~subsystem:"bgp"
        ~help:"Prefixes withdrawn across all sent UPDATEs"
        "withdrawn_prefixes_sent_total";
    m_intern_hits =
      Registry.counter reg ~subsystem:"bgp"
        ~help:"Path-attribute intern lookups resolved to an existing record"
        "attr_intern_hits_total";
    m_interned =
      Registry.counter reg ~subsystem:"bgp"
        ~help:"Distinct path-attribute records interned"
        "attrs_interned_total";
    m_group_flushes =
      Registry.counter reg ~subsystem:"bgp"
        ~help:"Update-group flushes (shared Adj-RIB-Out computations)"
        "group_flushes_total";
    m_peer_flushes =
      Registry.counter reg ~subsystem:"bgp"
        ~help:"Per-peer flushes (initial table transfers and unpacked mode)"
        "peer_flushes_total";
  }

type t = {
  proc : Process.t;
  cfg : config;
  intern : Attr_intern.t;
  rib : Rib.t;
  trace : Trace.t option;
  m : metrics;
  mutable peers : peer list;  (* reversed insertion order *)
  mutable groups : group list;
  mutable next_peer_id : int;
  rib_hooks : (Prefix.t -> Rib.route list -> unit) Hooks.t;
  established_hooks : (int -> unit) Hooks.t;
  down_hooks : (int -> unit) Hooks.t;
  mutable started : bool;
  mutable established : int;  (* |peers in Established| *)
  mutable opens_sent : int;
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable keepalives_sent : int;
  mutable keepalives_received : int;
  mutable notifications_sent : int;
  mutable decode_errors : int;
  inbox : (peer * Bytes.t * Causal.id) Queue.t;
  mutable busy : bool;
}

let sched t = Process.scheduler t.proc
let now t = Sched.now (sched t)

let tracef t fmt =
  match t.trace with
  | Some trace -> Trace.addf trace ~at:(now t) ~label:"bgp" fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let create ?trace proc cfg =
  let m =
    make_metrics (Sched.registry (Process.scheduler proc)) ~router_id:cfg.router_id
  in
  let intern =
    Attr_intern.create
      ~on_hit:(fun () -> Counter.incr m.m_intern_hits)
      ~on_miss:(fun () -> Counter.incr m.m_interned)
      ()
  in
  {
    proc;
    cfg;
    intern;
    rib = Rib.create ~intern ();
    trace;
    m;
    peers = [];
    groups = [];
    next_peer_id = 0;
    rib_hooks = Hooks.create ();
    established_hooks = Hooks.create ();
    down_hooks = Hooks.create ();
    started = false;
    established = 0;
    opens_sent = 0;
    updates_sent = 0;
    updates_received = 0;
    keepalives_sent = 0;
    keepalives_received = 0;
    notifications_sent = 0;
    decode_errors = 0;
    inbox = Queue.create ();
    busy = false;
  }

let process t = t.proc
let asn t = t.cfg.asn
let router_id t = t.cfg.router_id
let peer_list t = List.rev t.peers

let find_peer t id =
  match List.find_opt (fun p -> p.id = id) t.peers with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Speaker: unknown peer %d" id)

let peer_state t id = (find_peer t id).state
let peer_ids t = List.rev_map (fun p -> p.id) t.peers

(* O(1): maintained on FSM transitions, not recounted. *)
let established_count t = t.established
let update_group_count t = List.length t.groups

let best t prefix = Rib.best t.rib prefix
let routes t = Rib.loc_rib t.rib
let loc_rib_size t = Rib.loc_rib_size t.rib

let on_loc_rib_change t f = Hooks.add t.rib_hooks f
let on_established t f = Hooks.add t.established_hooks f
let on_session_down t f = Hooks.add t.down_hooks f

let counters t =
  {
    opens_sent = t.opens_sent;
    updates_sent = t.updates_sent;
    updates_received = t.updates_received;
    keepalives_sent = t.keepalives_sent;
    keepalives_received = t.keepalives_received;
    notifications_sent = t.notifications_sent;
    decode_errors = t.decode_errors;
  }

(* --- sending ------------------------------------------------------- *)

let count_update t ~announced ~withdrawn =
  t.updates_sent <- t.updates_sent + 1;
  Counter.incr t.m.tx_update;
  Counter.incr t.m.m_updates_sent;
  Counter.add t.m.m_prefixes_sent announced;
  Counter.add t.m.m_withdrawn_sent withdrawn

let send_msg t peer msg =
  (match msg with
  | Msg.Open _ ->
      t.opens_sent <- t.opens_sent + 1;
      Counter.incr t.m.tx_open
  | Msg.Update u ->
      let announced =
        match u.Msg.reach with None -> 0 | Some (_, nlri) -> List.length nlri
      in
      count_update t ~announced ~withdrawn:(List.length u.Msg.withdrawn)
  | Msg.Keepalive ->
      t.keepalives_sent <- t.keepalives_sent + 1;
      Counter.incr t.m.tx_keepalive
  | Msg.Notification _ ->
      t.notifications_sent <- t.notifications_sent + 1;
      Counter.incr t.m.tx_notification);
  Channel.send peer.endpoint (Msg.encode msg)

(* Pre-serialized packed UPDATEs: the byte buffers may be shared
   between the members of an update group; one scheduler event
   delivers the whole batch. *)
let send_packed t peer (msgs : Msg.packed list) =
  match msgs with
  | [] -> ()
  | msgs ->
      List.iter
        (fun (m : Msg.packed) ->
          count_update t ~announced:m.Msg.announced ~withdrawn:m.Msg.withdrawn)
        msgs;
      Channel.send_many peer.endpoint
        (List.map (fun (m : Msg.packed) -> m.Msg.bytes) msgs)

(* Export-time attribute rewrite (eBGP): prepend our ASN, set
   NEXT_HOP to ourselves, strip MED and LOCAL_PREF; COMMUNITIES are
   transitive and carried through. *)
let export_attrs t (route : Rib.route) =
  {
    Msg.origin = route.Rib.attrs.Msg.origin;
    as_path = t.cfg.asn :: route.Rib.attrs.Msg.as_path;
    next_hop = t.cfg.router_id;
    med = None;
    local_pref = None;
    communities = route.Rib.attrs.Msg.communities;
  }

(* One export computation per (group, Loc-RIB attrs): the rewrite,
   the policy evaluation and the interning of the result are memoized
   on the interned input's uid whenever the policy cannot observe the
   prefix. *)
let export_for t group prefix (first : Rib.route) =
  let eval () =
    match Policy.eval group.g_export prefix (export_attrs t first) with
    | None -> None
    | Some attrs -> Some (Attr_intern.intern t.intern attrs)
  in
  if group.g_prefix_independent then begin
    let key = first.Rib.iattrs.Attr_intern.uid in
    match Hashtbl.find_opt group.export_memo key with
    | Some cached -> cached
    | None ->
        let r = eval () in
        Hashtbl.add group.export_memo key r;
        r
  end
  else eval ()

let advertise_all set prefixes =
  List.fold_left (fun s p -> Prefix_set.add p s) set prefixes

(* Flush one peer's pending sets: the initial table transfer of a
   fresh session (packed mode) and every flush in unpacked mode.
   NLRI sharing identical exported attributes group together — by
   interned uid, so grouping is O(1) per prefix. *)
let flush_peer t peer =
  peer.mrai_armed <- false;
  if Process.is_alive t.proc && peer.state = Established then begin
    Counter.incr t.m.m_peer_flushes;
    let withdraws =
      Prefix_set.filter (fun p -> Prefix_set.mem p peer.advertised)
        peer.pending_withdraw
    in
    let announces = peer.pending_announce in
    peer.pending_withdraw <- Prefix_set.empty;
    peer.pending_announce <- Prefix_set.empty;
    (* Re-read the loc-rib at flush time (MRAI coalescing). *)
    let grouped : (int, Msg.attrs * Prefix.t list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let order = ref [] in
    let extra_withdraws = ref Prefix_set.empty in
    Prefix_set.iter
      (fun prefix ->
        match Rib.best t.rib prefix with
        | [] -> extra_withdraws := Prefix_set.add prefix !extra_withdraws
        | (first :: _ : Rib.route list) as bests ->
            (* Split horizon: never advertise back to a source peer. *)
            let from_this_peer =
              List.exists (fun (r : Rib.route) -> r.Rib.peer = peer.id) bests
            in
            if from_this_peer then
              extra_withdraws := Prefix_set.add prefix !extra_withdraws
            else (
              match export_for t peer.group prefix first with
              | None ->
                  extra_withdraws := Prefix_set.add prefix !extra_withdraws
              | Some ia -> (
                  let uid = ia.Attr_intern.uid in
                  match Hashtbl.find_opt grouped uid with
                  | Some (_, nlri) -> nlri := prefix :: !nlri
                  | None ->
                      Hashtbl.add grouped uid
                        (ia.Attr_intern.attrs, ref [ prefix ]);
                      order := uid :: !order)))
      announces;
    let withdraws =
      Prefix_set.union withdraws
        (Prefix_set.filter (fun p -> Prefix_set.mem p peer.advertised)
           !extra_withdraws)
    in
    let withdraw_list = Prefix_set.elements withdraws in
    let groups = List.rev_map (fun uid -> Hashtbl.find grouped uid) !order in
    peer.advertised <- Prefix_set.diff peer.advertised withdraws;
    if t.cfg.packing then begin
      let msgs = ref [] in
      if withdraw_list <> [] then
        msgs := Msg.Packer.pack peer.group.packer ~withdrawn:withdraw_list ();
      List.iter
        (fun (attrs, nlri) ->
          let nlri = List.rev !nlri in
          msgs :=
            !msgs @ Msg.Packer.pack peer.group.packer ~reach:(attrs, nlri) ();
          peer.advertised <- advertise_all peer.advertised nlri)
        groups;
      send_packed t peer !msgs
    end
    else begin
      (* Legacy shape: one (unbounded) UPDATE per attribute group,
         withdrawals riding on the first. *)
      match (groups, withdraw_list) with
      | [], [] -> ()
      | [], w -> send_msg t peer (Msg.Update { withdrawn = w; reach = None })
      | groups, w ->
          List.iteri
            (fun i (attrs, nlri) ->
              let withdrawn = if i = 0 then w else [] in
              let nlri = List.rev !nlri in
              send_msg t peer
                (Msg.Update { withdrawn; reach = Some (attrs, nlri) });
              peer.advertised <- advertise_all peer.advertised nlri)
            groups
    end
  end

(* Flush a whole update group: the Adj-RIB-Out computation (best
   lookup, export rewrite + policy, serialization) runs once; every
   Established member receives the shared buffers. Split horizon is
   the only per-peer part — prefixes whose best route was learned
   from a member are diverted into that member's private withdraw
   set. *)
let flush_group t group =
  group.g_mrai_armed <- false;
  if Process.is_alive t.proc && group.up_members > 0 then begin
    Counter.incr t.m.m_group_flushes;
    let announces = group.g_pending_announce in
    let withdraws = group.g_pending_withdraw in
    group.g_pending_announce <- Prefix_set.empty;
    group.g_pending_withdraw <- Prefix_set.empty;
    let members =
      List.filter (fun p -> p.state = Established) group.members
    in
    (* Buckets keyed by (exported attrs uid, excluded member ids):
       almost always the excluded set is empty or one peer. *)
    let buckets :
        (int * int list, Msg.attrs * Prefix.t list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let order = ref [] in
    let shared_withdraw = ref withdraws in
    Prefix_set.iter
      (fun prefix ->
        match Rib.best t.rib prefix with
        | [] -> shared_withdraw := Prefix_set.add prefix !shared_withdraw
        | (first :: _ : Rib.route list) as bests -> (
            let excluded =
              List.filter_map
                (fun (r : Rib.route) ->
                  if r.Rib.peer = Rib.local_peer then None
                  else if List.exists (fun m -> m.id = r.Rib.peer) members
                  then Some r.Rib.peer
                  else None)
                bests
              |> List.sort_uniq Int.compare
            in
            match export_for t group prefix first with
            | None ->
                shared_withdraw := Prefix_set.add prefix !shared_withdraw
            | Some ia -> (
                let key = (ia.Attr_intern.uid, excluded) in
                match Hashtbl.find_opt buckets key with
                | Some (_, nlri) -> nlri := prefix :: !nlri
                | None ->
                    Hashtbl.add buckets key (ia.Attr_intern.attrs, ref [ prefix ]);
                    order := key :: !order)))
      announces;
    let withdraw_list = Prefix_set.elements !shared_withdraw in
    (* Serialize once per bucket (and once for the withdraw set). *)
    let withdraw_msgs =
      if withdraw_list = [] then []
      else Msg.Packer.pack group.packer ~withdrawn:withdraw_list ()
    in
    let packed_buckets =
      List.rev_map
        (fun ((_, excluded) as key) ->
          let attrs, nlri = Hashtbl.find buckets key in
          let nlri = List.rev !nlri in
          (excluded, nlri, Msg.Packer.pack group.packer ~reach:(attrs, nlri) ()))
        !order
    in
    List.iter
      (fun member ->
        let msgs = ref withdraw_msgs in
        member.advertised <- Prefix_set.diff member.advertised !shared_withdraw;
        let horizon = ref [] in
        List.iter
          (fun (excluded, nlri, packed) ->
            if List.mem member.id excluded then
              (* Split horizon: this member sourced the best route;
                 retract anything it was previously advertised. *)
              List.iter
                (fun p ->
                  if Prefix_set.mem p member.advertised then begin
                    horizon := p :: !horizon;
                    member.advertised <- Prefix_set.remove p member.advertised
                  end)
                nlri
            else begin
              msgs := !msgs @ packed;
              member.advertised <- advertise_all member.advertised nlri
            end)
          packed_buckets;
        if !horizon <> [] then
          msgs := !msgs @ Msg.Packer.pack group.packer ~withdrawn:!horizon ();
        send_packed t member !msgs)
      members
  end

let schedule_group_flush t group =
  if not group.g_mrai_armed then begin
    group.g_mrai_armed <- true;
    if Time.equal t.cfg.mrai Time.zero then
      (* End-of-instant coalescing: every prefix refreshed while
         processing the current event batch rides one flush. *)
      Sched.defer (sched t) (fun () -> flush_group t group)
    else Process.after t.proc t.cfg.mrai (fun () -> flush_group t group)
  end

let schedule_flush t peer =
  if t.cfg.packing then begin
    if not peer.mrai_armed then begin
      peer.mrai_armed <- true;
      if Time.equal t.cfg.mrai Time.zero then
        Sched.defer (sched t) (fun () -> flush_peer t peer)
      else Process.after t.proc t.cfg.mrai (fun () -> flush_peer t peer)
    end
  end
  else if Time.equal t.cfg.mrai Time.zero then flush_peer t peer
  else if not peer.mrai_armed then begin
    peer.mrai_armed <- true;
    Process.after t.proc t.cfg.mrai (fun () -> flush_peer t peer)
  end

(* Dirty-track one Loc-RIB change: O(update groups) in packed mode,
   O(peers) in unpacked mode. *)
let enqueue_prefix t prefix =
  if t.cfg.packing then
    List.iter
      (fun group ->
        if group.up_members > 0 then begin
          (match Rib.best t.rib prefix with
          | [] ->
              group.g_pending_withdraw <-
                Prefix_set.add prefix group.g_pending_withdraw;
              group.g_pending_announce <-
                Prefix_set.remove prefix group.g_pending_announce
          | _ :: _ ->
              group.g_pending_announce <-
                Prefix_set.add prefix group.g_pending_announce;
              group.g_pending_withdraw <-
                Prefix_set.remove prefix group.g_pending_withdraw);
          schedule_group_flush t group
        end)
      t.groups
  else
    List.iter
      (fun peer ->
        if peer.state = Established then begin
          (match Rib.best t.rib prefix with
          | [] ->
              peer.pending_withdraw <- Prefix_set.add prefix peer.pending_withdraw;
              peer.pending_announce <- Prefix_set.remove prefix peer.pending_announce
          | _ :: _ ->
              peer.pending_announce <- Prefix_set.add prefix peer.pending_announce;
              peer.pending_withdraw <- Prefix_set.remove prefix peer.pending_withdraw);
          schedule_flush t peer
        end)
      t.peers

let notify_rib_change t prefix routes =
  Hooks.iter (fun f -> f prefix routes) t.rib_hooks

let refresh_and_propagate t prefix =
  match Rib.refresh ~multipath:t.cfg.multipath t.rib prefix with
  | Rib.Unchanged -> ()
  | Rib.Changed routes ->
      Gauge.set t.m.g_rib (float_of_int (Rib.loc_rib_size t.rib));
      (* Each changed prefix is an independent decision: FIB writes and
         the UPDATEs it queues chain under this node, siblings under
         the triggering message. *)
      Sched.protect_cause (sched t) (fun () ->
          ignore
            (Sched.cause_point (sched t) ~kind:"bgp:decide" (fun () ->
                 Prefix.to_string prefix));
          notify_rib_change t prefix routes;
          enqueue_prefix t prefix)

(* --- session management -------------------------------------------- *)

let start_keepalive t peer =
  let interval = Time.div peer.negotiated_hold 3 in
  let interval = Time.max interval (Time.of_ms 100) in
  peer.keepalive_timer <-
    Some (Process.every t.proc interval (fun () -> send_msg t peer Msg.Keepalive))

let session_established t peer =
  ignore
    (Sched.cause_point (sched t) ~kind:"bgp:session" (fun () ->
         Printf.sprintf "established AS%d" peer.remote_asn));
  peer.state <- Established;
  t.established <- t.established + 1;
  peer.group.up_members <- peer.group.up_members + 1;
  Gauge.add t.m.g_established 1.0;
  tracef t "session to AS%d established" peer.remote_asn;
  start_keepalive t peer;
  Hooks.iter (fun f -> f peer.id) t.established_hooks;
  (* Initial table transfer: everything in the Loc-RIB, through the
     per-peer path (group flushes only carry deltas). *)
  List.iter
    (fun (prefix, _) ->
      peer.pending_announce <- Prefix_set.add prefix peer.pending_announce)
    (Rib.loc_rib t.rib);
  schedule_flush t peer

let session_down t peer ~reason =
  if peer.state <> Idle then begin
    ignore
      (Sched.cause_point (sched t) ~kind:"bgp:session" (fun () ->
           Printf.sprintf "down AS%d (%s)" peer.remote_asn reason));
    tracef t "session to AS%d down (%s)" peer.remote_asn reason;
    if peer.state = Established then begin
      Gauge.add t.m.g_established (-1.0);
      t.established <- t.established - 1;
      peer.group.up_members <- peer.group.up_members - 1
    end;
    peer.state <- Idle;
    Option.iter Sched.cancel_recurring peer.keepalive_timer;
    peer.keepalive_timer <- None;
    (* The handle stays: the next send_open re-arms it in place. *)
    Option.iter Sched.cancel peer.hold_ev;
    peer.pending_announce <- Prefix_set.empty;
    peer.pending_withdraw <- Prefix_set.empty;
    peer.advertised <- Prefix_set.empty;
    let affected = Rib.drop_peer t.rib ~peer:peer.id in
    List.iter (refresh_and_propagate t) affected;
    Hooks.iter (fun f -> f peer.id) t.down_hooks
  end

(* Hold-timer supervision: one deadline event per peer at
   [last_rx + negotiated_hold], re-aimed in place on every received
   message (an O(1) wheel operation) instead of the shared hold/3
   sweep the speaker used to poll with — so a quiet Established
   session keeps exactly one pending event and never wakes early. *)
let rec send_open t peer =
  peer.state <- OpenSent;
  peer.last_rx <- now t;
  arm_hold t peer;
  send_msg t peer
    (Msg.Open
       {
         asn = t.cfg.asn;
         hold_time_s = int_of_float (Time.to_sec t.cfg.hold_time);
         bgp_id = t.cfg.router_id;
       })

and arm_hold t peer =
  let deadline = Time.add peer.last_rx peer.negotiated_hold in
  match peer.hold_ev with
  | Some h -> Sched.reschedule (sched t) h deadline
  | None ->
      peer.hold_ev <-
        Some (Sched.schedule_at (sched t) deadline (fun () -> hold_expired t peer))

and hold_expired t peer =
  if Process.is_alive t.proc && peer.state <> Idle then
    if Time.(Time.sub (now t) peer.last_rx >= peer.negotiated_hold) then
      match peer.state with
      | Idle -> ()
      | OpenSent ->
          (* Retry OPEN if the peer stays silent; re-arms itself. *)
          send_open t peer
      | OpenConfirm | Established ->
          send_msg t peer (Msg.Notification { code = 4; subcode = 0 });
          session_down t peer ~reason:"hold timer expired"
    else
      (* RX raced the deadline without re-aiming it (defensive; every
         receive path re-arms): aim at the true deadline. *)
      arm_hold t peer

(* --- receiving ----------------------------------------------------- *)

let handle_open t peer (o : Msg.open_msg) =
  if o.Msg.asn <> peer.remote_asn then begin
    send_msg t peer (Msg.Notification { code = 2; subcode = 2 });
    session_down t peer ~reason:"bad peer AS"
  end
  else if peer.state = Idle && (peer.admin_down || not t.started) then
    (* RFC 4271 Idle: connection attempts are refused while the
       session is administratively down. *)
    tracef t "OPEN from AS%d ignored (session admin down)" peer.remote_asn
  else begin
    (* An OPEN on an Established session means the peer restarted
       without us noticing (silent crash, hold timer not yet
       expired): retract its stale routes and fall through to the
       passive open below. *)
    if peer.state = Established then session_down t peer ~reason:"peer restarted";
    (* Passive open: an Idle speaker receiving an OPEN (a revived
       peer's ConnectRetry probing us) answers with its own OPEN
       before confirming, so the session completes without any
       fabric-level intervention. *)
    if peer.state = Idle then send_open t peer;
    peer.remote_id <- o.Msg.bgp_id;
    peer.negotiated_hold <-
      Time.min t.cfg.hold_time (Time.of_sec (float_of_int o.Msg.hold_time_s));
    send_msg t peer Msg.Keepalive;
    peer.state <- OpenConfirm
  end

let handle_update t peer (u : Msg.update) =
  t.updates_received <- t.updates_received + 1;
  Counter.incr t.m.rx_update;
  (* Counts are hoisted so the stored thunk pins three ints, not the
     whole decoded UPDATE. *)
  let asn = peer.remote_asn
  and n_wd = List.length u.Msg.withdrawn
  and n_nlri =
    match u.Msg.reach with None -> 0 | Some (_, nlri) -> List.length nlri
  in
  ignore
    (Sched.cause_point (sched t) ~kind:"bgp:update" (fun () ->
         Printf.sprintf "from AS%d wd=%d nlri=%d" asn n_wd n_nlri));
  let affected = ref Prefix_set.empty in
  List.iter
    (fun prefix ->
      Rib.withdraw_in t.rib ~peer:peer.id prefix;
      affected := Prefix_set.add prefix !affected)
    u.Msg.withdrawn;
  (match u.Msg.reach with
  | None -> ()
  | Some (attrs, nlri) ->
      (* AS-path loop prevention. *)
      if not (List.mem t.cfg.asn attrs.Msg.as_path) then
        List.iter
          (fun prefix ->
            match Policy.eval peer.import prefix attrs with
            | None ->
                Rib.withdraw_in t.rib ~peer:peer.id prefix;
                affected := Prefix_set.add prefix !affected
            | Some attrs ->
                Rib.set_in t.rib ~peer:peer.id ~peer_bgp_id:peer.remote_id
                  ~at:(now t) prefix attrs;
                affected := Prefix_set.add prefix !affected)
          nlri);
  Prefix_set.iter (refresh_and_propagate t) !affected

let handle_message t peer msg =
  peer.last_rx <- now t;
  (match msg with
  | Msg.Open o ->
      Counter.incr t.m.rx_open;
      handle_open t peer o
  | Msg.Keepalive -> (
      t.keepalives_received <- t.keepalives_received + 1;
      Counter.incr t.m.rx_keepalive;
      match peer.state with
      | OpenConfirm -> session_established t peer
      | Idle | OpenSent | Established -> ())
  | Msg.Update u ->
      if peer.state = Established then handle_update t peer u
  | Msg.Notification { code; subcode } ->
      Counter.incr t.m.rx_notification;
      session_down t peer
        ~reason:(Printf.sprintf "notification %d/%d received" code subcode));
  (* Every RX pushes the hold deadline out — after dispatch, so an
     OPEN's freshly negotiated hold time is what gets armed (and a
     session the message tore down stays disarmed). *)
  if peer.state <> Idle then arm_hold t peer

let process_message t peer bytes =
  match Msg.decode bytes with
  | Ok msg -> handle_message t peer msg
  | Error err ->
      t.decode_errors <- t.decode_errors + 1;
      Counter.incr t.m.m_decode;
      tracef t "decode error from AS%d: %s" peer.remote_asn err;
      send_msg t peer (Msg.Notification { code = 1; subcode = 0 });
      session_down t peer ~reason:"message decode error"

(* Received messages drain through a single serialised work queue,
   each consuming [processing_delay] of virtual CPU time — a real
   daemon is effectively single-threaded, and this is what stretches
   convergence into the multi-millisecond range the FTI mode tracks. *)
let rec process_next t =
  match Queue.take_opt t.inbox with
  | None -> t.busy <- false
  | Some (peer, bytes, cause) ->
      (* Re-attach the cause captured at delivery: without this, every
         queued message would inherit the previous message's
         provenance through the ambient state. *)
      Sched.with_cause (sched t) cause (fun () ->
          process_message t peer bytes);
      Process.after t.proc t.cfg.processing_delay (fun () -> process_next t)

let receive t peer bytes =
  if Process.is_alive t.proc then
    if Time.equal t.cfg.processing_delay Time.zero then
      process_message t peer bytes
    else begin
      Queue.add (peer, bytes, Sched.current_cause (sched t)) t.inbox;
      if not t.busy then begin
        t.busy <- true;
        Process.after t.proc t.cfg.processing_delay (fun () -> process_next t)
      end
    end

let bind_endpoint t peer endpoint =
  peer.endpoint <- endpoint;
  Channel.set_receiver endpoint (fun bytes -> receive t peer bytes);
  Channel.set_wake endpoint (fun () -> Process.wake t.proc);
  Channel.set_on_close endpoint (fun () ->
      if Process.is_alive t.proc then
        session_down t peer ~reason:"channel closed")

let find_group t export =
  match List.find_opt (fun g -> Policy.equal g.g_export export) t.groups with
  | Some g -> g
  | None ->
      let g =
        {
          gid = List.length t.groups;
          g_export = export;
          g_prefix_independent = Policy.prefix_independent export;
          members = [];
          up_members = 0;
          g_pending_announce = Prefix_set.empty;
          g_pending_withdraw = Prefix_set.empty;
          g_mrai_armed = false;
          export_memo = Hashtbl.create 32;
          packer = Msg.Packer.create ();
        }
      in
      t.groups <- g :: t.groups;
      g

let add_peer ?(import = Policy.accept_all) ?(export = Policy.accept_all) t
    ~remote_asn endpoint =
  let group = find_group t export in
  let peer =
    {
      id = t.next_peer_id;
      remote_asn;
      endpoint;
      import;
      export;
      group;
      state = Idle;
      remote_id = Ipv4.any;
      negotiated_hold = t.cfg.hold_time;
      last_rx = Time.zero;
      keepalive_timer = None;
      hold_ev = None;
      pending_announce = Prefix_set.empty;
      pending_withdraw = Prefix_set.empty;
      mrai_armed = false;
      advertised = Prefix_set.empty;
      admin_down = false;
    }
  in
  t.next_peer_id <- t.next_peer_id + 1;
  t.peers <- peer :: t.peers;
  group.members <- peer :: group.members;
  bind_endpoint t peer endpoint;
  peer.id

(* ConnectRetry (RFC 4271 §8): Idle sessions that are not admin-down
   are periodically re-initiated with a fresh OPEN, so a session torn
   down by a peer crash or reset re-establishes by itself once the
   peer answers again. (Hold supervision is per-peer deadline events —
   see [arm_hold]; there is no periodic sweep left.) *)
let retry_idle t =
  List.iter
    (fun peer ->
      if peer.state = Idle && not peer.admin_down then send_open t peer)
    t.peers

let arm_timers t =
  if Time.(t.cfg.connect_retry > Time.zero) then
    ignore (Process.every t.proc t.cfg.connect_retry (fun () -> retry_idle t))

(* A crash (Process.kill) sends nothing on the wire: sessions drop
   silently and peers only find out when their hold timers expire.
   Local state is reset so a later restart starts clean. *)
let crash_cleanup t =
  Queue.clear t.inbox;
  t.busy <- false;
  List.iter (fun peer -> session_down t peer ~reason:"process killed") t.peers

(* A restart re-arms the timers (the old ones died with the process)
   and re-initiates every non-admin-down session; peers still probing
   us via their own ConnectRetry complete the handshake passively. *)
let revive t =
  if t.started then begin
    tracef t "speaker AS%d restarted" t.cfg.asn;
    arm_timers t;
    retry_idle t
  end

let local_attrs t =
  {
    Msg.origin = Msg.Igp;
    as_path = [];
    next_hop = t.cfg.router_id;
    med = None;
    local_pref = None;
    communities = [];
  }

let announce t prefix =
  Rib.add_local t.rib ~at:(now t) prefix (local_attrs t);
  refresh_and_propagate t prefix

let withdraw_network t prefix =
  Rib.remove_local t.rib prefix;
  refresh_and_propagate t prefix

let start t =
  if not t.started then begin
    t.started <- true;
    (* The daemon's FTI scheduling quantum (paper §2): polled every
       increment while runnable. All protocol work here is
       event-driven, so the quantum dozes whenever no message is
       queued or being processed; channel delivery wakes it. *)
    Process.tick t.proc (fun () ->
        if t.busy || not (Queue.is_empty t.inbox) then Sched.Always
        else Sched.Wake_on_input);
    Process.on_kill t.proc (fun () -> crash_cleanup t);
    Process.on_restart t.proc (fun () -> revive t);
    List.iter (fun prefix -> announce t prefix) t.cfg.networks;
    List.iter (fun peer -> send_open t peer) (peer_list t);
    arm_timers t;
    tracef t "speaker AS%d started with %d peers" t.cfg.asn (List.length t.peers)
  end

let shutdown t =
  List.iter
    (fun peer ->
      peer.admin_down <- true;
      if peer.state <> Idle then begin
        if Process.is_alive t.proc then
          send_msg t peer (Msg.Notification { code = 6; subcode = 0 });
        session_down t peer ~reason:"administrative shutdown"
      end)
    t.peers

let start_peer t peer_id =
  let peer = find_peer t peer_id in
  peer.admin_down <- false;
  if t.started && peer.state = Idle && Process.is_alive t.proc then
    send_open t peer

let reset_session t peer_id =
  let peer = find_peer t peer_id in
  if peer.state <> Idle && Process.is_alive t.proc then begin
    (* Cease / administrative reset: the peer drops the session too,
       and both ConnectRetry timers bring it back. *)
    send_msg t peer (Msg.Notification { code = 6; subcode = 4 });
    session_down t peer ~reason:"administrative session reset"
  end

let replace_peer_endpoint t peer_id endpoint =
  let peer = find_peer t peer_id in
  (* Rebinding means the old transport is gone for good; a session
     still riding it (e.g. OpenSent retries into a dead link) drops
     first. *)
  if peer.state <> Idle then session_down t peer ~reason:"endpoint replaced";
  bind_endpoint t peer endpoint
