module Causal = Horse_engine.Causal
module Time = Horse_engine.Time

type attribution = {
  fault_label : string;
  injected_at : Time.t;
  reconverged_at : Time.t;
  fib_writes : int;
  hops : int;
  critical : Causal.info list;
  per_proto_latency : (string * Time.t) list;
  messages : int;
}

let kind_prefix kind =
  match String.index_opt kind ':' with
  | Some i -> String.sub kind 0 i
  | None -> kind

let is_fault_hop ~label ~at (h : Causal.info) =
  String.length h.Causal.kind >= 6
  && String.sub h.Causal.kind 0 6 = "fault:"
  && String.equal h.Causal.detail label
  && Time.equal h.Causal.at at

(* Latency attribution: the gap between consecutive hops is charged to
   the subsystem being entered (the later hop) — the time a message
   spent in flight is charged to [chan], processing delay before an
   UPDATE handler to [bgp], and so on. *)
let breakdown chain =
  let tbl = Hashtbl.create 8 in
  let rec walk = function
    | (a : Causal.info) :: (b : Causal.info) :: rest ->
        let d = Time.sub b.Causal.at a.Causal.at in
        let key = kind_prefix b.Causal.kind in
        let cur =
          Option.value (Hashtbl.find_opt tbl key) ~default:Time.zero
        in
        Hashtbl.replace tbl key (Time.add cur d);
        walk (b :: rest)
    | [ _ ] | [] -> ()
  in
  walk chain;
  List.sort
    (fun (_, a) (_, b) -> Time.compare b a)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let attribute ~graph ~provenance ~reconvergence =
  (* Chains are resolved once per distinct cause id, not per sample. *)
  let chains =
    List.filter_map
      (fun (_node, _prefix, cause) ->
        if Causal.is_none cause then None
        else
          match Causal.chain graph cause with [] -> None | c -> Some c)
      provenance
  in
  List.map
    (fun (label, injected_at, reconverged_at) ->
      let matching =
        List.filter
          (List.exists (is_fault_hop ~label ~at:injected_at))
          chains
      in
      let critical =
        (* The chain whose FIB write landed last bounds this fault's
           reconvergence: the critical path. *)
        List.fold_left
          (fun best chain ->
            let ends c =
              match List.rev c with
              | last :: _ -> last.Causal.at
              | [] -> Time.zero
            in
            match best with
            | [] -> chain
            | b -> if Time.(ends chain > ends b) then chain else b)
          [] matching
      in
      (* Only the fault-onward suffix is the fault's doing; hops
         before it belong to whatever scheduled the fault. *)
      let critical =
        let rec from_fault = function
          | h :: rest when is_fault_hop ~label ~at:injected_at h ->
              h :: rest
          | _ :: rest -> from_fault rest
          | [] -> []
        in
        match from_fault critical with [] -> critical | suffix -> suffix
      in
      {
        fault_label = label;
        injected_at;
        reconverged_at;
        fib_writes = List.length matching;
        hops = List.length critical;
        critical;
        per_proto_latency = breakdown critical;
        messages =
          List.length
            (List.filter
               (fun (h : Causal.info) ->
                 String.equal (kind_prefix h.Causal.kind) "chan")
               critical);
      })
    reconvergence

let pp_attribution fmt a =
  Format.fprintf fmt "fault %s @@ %a -> reconverged @@ %a (%a)@."
    a.fault_label Time.pp a.injected_at Time.pp a.reconverged_at Time.pp
    (Time.sub a.reconverged_at a.injected_at);
  if a.critical = [] then
    Format.fprintf fmt
      "  no surviving FIB entry traces to this fault (its writes were \
       superseded by later events, or the fault was silent and detected \
       by timers)@."
  else begin
    Format.fprintf fmt
      "  %d FIB writes attributed; critical path (%d hops, %d messages):@."
      a.fib_writes a.hops a.messages;
    Causal.pp_chain fmt a.critical;
    Format.fprintf fmt "  latency by subsystem:";
    List.iter
      (fun (k, d) -> Format.fprintf fmt " %s=%a" k Time.pp d)
      a.per_proto_latency;
    Format.fprintf fmt "@."
  end

let pp_report fmt = function
  | [] ->
      Format.fprintf fmt
        "== Convergence explanation ==@.no reconvergence samples to \
         explain (no faults applied, or the run ended before \
         reconvergence)@."
  | attrs ->
      Format.fprintf fmt "== Convergence explanation ==@.";
      List.iter (pp_attribution fmt) attrs
