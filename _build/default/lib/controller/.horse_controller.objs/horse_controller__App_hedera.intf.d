lib/controller/app_hedera.mli: Controller Env Flow_key Horse_engine Horse_net Horse_topo Spf Time
