examples/quickstart.ml: Format Horse_core Horse_engine List Scenario Sched Time
