(** Growable registration-ordered callback lists.

    Subsystems that expose [on_<event>] registration used to append to
    an immutable list ([hooks <- hooks @ [f]]), making [n]
    registrations cost O(n²) and allocate n intermediate lists. This
    is a minimal amortised-O(1) dynamic array that preserves
    registration order on iteration. The element type is left fully
    polymorphic so callbacks of any arity can be stored without
    wrapping closures. *)

type 'f t

val create : unit -> 'f t

val add : 'f t -> 'f -> unit
(** Amortised O(1); iteration visits hooks in [add] order. *)

val iter : ('f -> unit) -> 'f t -> unit
(** No allocation besides the caller's closure; hooks added during
    iteration are not visited in that pass. *)

val length : 'f t -> int
val is_empty : 'f t -> bool
