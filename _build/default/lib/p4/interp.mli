(** The P4 pipeline interpreter: one switch's runtime state (table
    contents, counters) and packet execution.

    Executing a packet means: populate the metadata fields from the
    packet headers, run the control block (table lookups pick the
    highest-priority / longest-prefix matching entry or fall back to
    the table's default action), and read the verdict — the last
    egress port set by [Forward], unless any statement dropped. *)

(** A concrete match value for one key field. *)
type key_match =
  | K_exact of int
  | K_lpm of int * int  (** value, prefix length (bits of the field width) *)
  | K_ternary of int * int  (** value, mask *)

type entry = {
  e_table : string;
  key : key_match list;  (** positionally aligned with the table's keys *)
  priority : int;  (** higher wins among ternary ties *)
  action : string;
  args : int list;
}

val entry_key_equal : key_match list -> key_match list -> bool

type t

val create : Prog.t -> (t, string) result
(** Validates the program. *)

val program : t -> Prog.t

val insert : t -> entry -> (unit, string) result
(** Checks the entry against the table definition (key kinds and
    count, permitted action, argument arity) and installs it,
    replacing an entry with an identical key. *)

val delete : t -> table:string -> key:key_match list -> bool
(** [true] if an entry was removed. *)

val table_entries : t -> string -> entry list
val table_size : t -> string -> int

val counter : t -> string -> int
(** @raise Invalid_argument on an unknown counter. *)

type outcome = Forwarded of int | Dropped

val exec : t -> (string * int) list -> outcome
(** Runs one packet, given initial metadata values (unlisted fields
    start at 0; values are masked to their field width). *)
