(** An emulated BGP-4 routing daemon (the Quagga stand-in).

    A speaker runs as an {!Horse_emulation.Process}: its timers
    (keepalive, hold, MRAI) are virtual-time timers that die with the
    process, and its sessions are {!Horse_emulation.Channel}s carrying
    real serialized {!Msg} bytes. Sessions are eBGP: announcements to
    a peer get the speaker's ASN prepended, NEXT_HOP rewritten to the
    router id, and MED/LOCAL_PREF stripped.

    Protocol behaviour implemented: the session FSM
    (Idle → OpenSent → OpenConfirm → Established), hold-timer expiry
    with full route retraction, AS-path loop rejection, implicit and
    explicit withdraws, split-horizon towards the route's source
    peer(s), per-peer import/export policy, MRAI batching of updates,
    and BGP multipath in the decision process.

    {2 Control-plane scaling}

    With [packing] on (the default), the speaker behaves like a
    large-scale production daemon: peers whose export policies are
    {!Policy.equal} share one {e update group}, so the Adj-RIB-Out
    computation, the export-policy evaluation and the serialized
    UPDATE buffers are produced once per group and shared by every
    member; flushes pack as many NLRI as fit into each 4096-byte
    UPDATE ({!Msg.Packer}); with MRAI zero, flushes coalesce to the
    end of the current scheduler instant, so a received UPDATE
    carrying k prefixes triggers one outgoing flush, not k. Set
    [packing = false] to recover the original one-UPDATE-per-
    attribute-group behaviour — kept as the differential-testing
    baseline. Both modes converge to identical Loc-RIBs. *)

open Horse_net
open Horse_engine
open Horse_emulation

type peer_state = Idle | OpenSent | OpenConfirm | Established

val pp_peer_state : Format.formatter -> peer_state -> unit

type config = {
  asn : int;
  router_id : Ipv4.t;
  hold_time : Time.t;  (** proposed hold time; keepalives at a third *)
  mrai : Time.t;  (** Time.zero = advertise immediately *)
  multipath : bool;
  networks : Prefix.t list;  (** prefixes originated at startup *)
  processing_delay : Time.t;
      (** virtual CPU time consumed per received message, serialised
          through a single work queue — models the single-threaded
          processing of a real routing daemon. {!Time.zero} handles
          messages inline. *)
  packing : bool;
      (** Update groups + packed UPDATEs + end-of-instant flush
          coalescing (see module docs). [false] = legacy per-peer,
          per-attribute-group UPDATEs, used as the differential
          baseline. *)
  connect_retry : Time.t;
      (** RFC 4271 ConnectRetry: Idle sessions that are not admin-down
          are re-initiated with a fresh OPEN at this interval, so a
          session lost to a peer crash or reset re-establishes by
          itself once the peer answers again. {!Time.zero} disables
          automatic re-initiation (pre-fault-injection behaviour). *)
}

val default_config : asn:int -> router_id:Ipv4.t -> config
(** hold 9 s, MRAI 0, multipath on, no networks, 100 µs processing
    delay, packing on, ConnectRetry 5 s. *)

type t

val create : ?trace:Trace.t -> Process.t -> config -> t
val process : t -> Process.t
val asn : t -> int
val router_id : t -> Ipv4.t

val add_peer :
  ?import:Policy.t -> ?export:Policy.t -> t -> remote_asn:int -> Channel.endpoint -> int
(** Configures a session over the given channel endpoint and returns
    the peer id. Call before {!start}. Default policies accept
    everything. *)

val start : t -> unit
(** Sends OPEN to every configured peer and arms the timers. *)

val shutdown : t -> unit
(** Graceful admin-down: NOTIFICATION (Cease) to every peer, sessions
    to Idle, and every session marked administratively down —
    ConnectRetry stops probing and incoming OPENs are refused until
    {!start_peer}. The underlying process stays alive. For a crash,
    {!Horse_emulation.Process.kill} the process instead: nothing is
    sent, peers find out via their hold timers, and
    {!Horse_emulation.Process.restart} later brings the sessions back
    via ConnectRetry. *)

val start_peer : t -> int -> unit
(** (Re)starts one session: clears admin-down, sends OPEN and moves
    the peer to OpenSent (no OPEN is sent unless the peer is Idle and
    the speaker has been started). Used to bring a session back after
    {!shutdown} or a repaired link. *)

val reset_session : t -> int -> unit
(** Hard session reset ("clear ip bgp"): NOTIFICATION (Cease /
    administrative reset) then the session drops to Idle on both ends
    — {e without} marking it admin-down, so both ConnectRetry timers
    re-establish it. No-op on an Idle session. *)

val replace_peer_endpoint : t -> int -> Channel.endpoint -> unit
(** Rebinds a peer to a fresh channel endpoint (the old channel of a
    failed link is gone for good); a session still riding the old
    transport is dropped first. Follow with {!start_peer}. *)

val announce : t -> Prefix.t -> unit
(** Originates a prefix at runtime. *)

val withdraw_network : t -> Prefix.t -> unit
(** Stops originating a prefix. *)

val peer_state : t -> int -> peer_state
val peer_ids : t -> int list

val established_count : t -> int
(** O(1): maintained on FSM transitions. *)

val update_group_count : t -> int
(** Number of update groups (distinct export policies across peers). *)

val best : t -> Prefix.t -> Rib.route list
val routes : t -> (Prefix.t * Rib.route list) list

val loc_rib_size : t -> int
(** O(1). *)

val on_loc_rib_change : t -> (Prefix.t -> Rib.route list -> unit) -> unit
(** Fired whenever the Loc-RIB entry for a prefix changes; an empty
    route list means the prefix was removed. This is where the
    Connection Manager installs routes into the simulated data
    plane. *)

val on_established : t -> (int -> unit) -> unit
(** Fired with the peer id when a session reaches Established. *)

val on_session_down : t -> (int -> unit) -> unit

type counters = {
  opens_sent : int;
  updates_sent : int;
  updates_received : int;
  keepalives_sent : int;
  keepalives_received : int;
  notifications_sent : int;
  decode_errors : int;
}

val counters : t -> counters
