(** Deterministic pseudo-random numbers (splitmix64).

    Experiments must be reproducible run-to-run, so every source of
    randomness in the library goes through an explicitly seeded
    generator rather than [Stdlib.Random]. *)

type t

val create : int -> t
(** [create seed] is a fresh generator; equal seeds give equal
    streams. *)

val split : t -> t
(** A new generator whose stream is independent of (but determined by)
    the parent's current state; advances the parent. *)

val split_key : t -> string -> t
(** [split_key t key] is a generator determined only by [t]'s current
    state and [key] — the parent is {e not} advanced, so derived
    streams are order-independent: adding or removing one keyed stream
    never perturbs another's draw sequence. Used for per-fault-site
    streams in {!Horse_faults}. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0, n). *)

val derangement : t -> int -> int array
(** [derangement t n] is a permutation with no fixed points — the
    "each server sends to another server" traffic pattern of the
    demonstration. For [n = 1] there is no derangement; the identity
    is returned.
    Sampled by rejection, uniform over derangements. *)
