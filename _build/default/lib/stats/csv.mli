(** CSV export of time series, for offline plotting of the
    reproduced figures. *)

val write_series : Format.formatter -> (string * Series.t) list -> unit
(** Writes [time_s,<name1>,<name2>,...] rows. Series must share the
    same sampling grid (as produced by one experiment run); a grid
    mismatch raises [Invalid_argument]. *)

val save_series : path:string -> (string * Series.t) list -> unit
(** {!write_series} into a file. *)

val write_rows :
  Format.formatter -> header:string list -> string list list -> unit
(** Generic row writer; fields containing commas or quotes are
    escaped per RFC 4180. *)
