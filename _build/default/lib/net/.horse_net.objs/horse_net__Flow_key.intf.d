lib/net/flow_key.mli: Format Hashtbl Headers Ipv4 Packet
