open Horse_net
open Wire

type lsa_link =
  | Point_to_point of { neighbor : Ipv4.t; metric : int }
  | Stub of { prefix : Prefix.t; metric : int }

type lsa = { adv_router : Ipv4.t; seq : int; links : lsa_link list }

let lsa_link_equal a b =
  match (a, b) with
  | Point_to_point x, Point_to_point y ->
      Ipv4.equal x.neighbor y.neighbor && x.metric = y.metric
  | Stub x, Stub y -> Prefix.equal x.prefix y.prefix && x.metric = y.metric
  | (Point_to_point _ | Stub _), _ -> false

let lsa_equal a b =
  Ipv4.equal a.adv_router b.adv_router
  && a.seq = b.seq
  && List.equal lsa_link_equal a.links b.links

let pp_lsa fmt l =
  Format.fprintf fmt "lsa{%a seq=%d links=%d}" Ipv4.pp l.adv_router l.seq
    (List.length l.links)

type hello = {
  hello_interval_s : int;
  dead_interval_s : int;
  neighbors : Ipv4.t list;
}

type t =
  | Hello of hello
  | Ls_update of lsa list
  | Ls_ack of (Ipv4.t * int) list

let header_size = 24
let lsa_header_size = 20
let link_size = 12

let type_code = function Hello _ -> 1 | Ls_update _ -> 4 | Ls_ack _ -> 5

let lsa_size l = lsa_header_size + 4 + (link_size * List.length l.links)

let body_size = function
  | Hello h -> 16 + (4 * List.length h.neighbors)
  | Ls_update lsas -> 4 + List.fold_left (fun acc l -> acc + lsa_size l) 0 lsas
  | Ls_ack acks -> lsa_header_size * List.length acks

let write_lsa buf off l =
  if List.length l.links > 0xFFFF then invalid_arg "Ospf_msg: too many links";
  set_u16 buf off 0 (* age *);
  set_u8 buf (off + 2) 0 (* options *);
  set_u8 buf (off + 3) 1 (* router-LSA *);
  set_ipv4 buf (off + 4) l.adv_router (* ls id *);
  set_ipv4 buf (off + 8) l.adv_router;
  set_u32_int buf (off + 12) l.seq;
  set_u16 buf (off + 16) 0 (* lsa checksum: covered by packet checksum *);
  set_u16 buf (off + 18) (lsa_size l);
  set_u16 buf (off + 20) 0 (* flags *);
  set_u16 buf (off + 22) (List.length l.links);
  let o = ref (off + 24) in
  List.iter
    (fun link ->
      (match link with
      | Point_to_point { neighbor; metric } ->
          set_ipv4 buf !o neighbor;
          set_u32_int buf (!o + 4) 0;
          set_u8 buf (!o + 8) 1;
          set_u8 buf (!o + 9) 0;
          set_u16 buf (!o + 10) metric
      | Stub { prefix; metric } ->
          set_ipv4 buf !o (Prefix.network prefix);
          set_ipv4 buf (!o + 4) (Prefix.netmask prefix);
          set_u8 buf (!o + 8) 3;
          set_u8 buf (!o + 9) 0;
          set_u16 buf (!o + 10) metric);
      o := !o + link_size)
    l.links;
  !o

let read_lsa buf off =
  let* adv_router = ipv4 buf (off + 8) in
  let* seq = u32_int buf (off + 12) in
  let* total = u16 buf (off + 18) in
  let* nlinks = u16 buf (off + 22) in
  if total <> lsa_header_size + 4 + (link_size * nlinks) then
    Error "ospf: LSA length inconsistent with link count"
  else
    let rec go i acc =
      if i = nlinks then Ok (List.rev acc)
      else
        let o = off + 24 + (i * link_size) in
        let* link_id = ipv4 buf o in
        let* link_data = ipv4 buf (o + 4) in
        let* kind = u8 buf (o + 8) in
        let* metric = u16 buf (o + 10) in
        let* link =
          match kind with
          | 1 -> Ok (Point_to_point { neighbor = link_id; metric })
          | 3 ->
              (* Recover the prefix length from the mask. *)
              let mask = Ipv4.to_int32 link_data in
              let rec len_of bits n =
                if n = 32 then 32
                else if Int32.logand bits (Int32.shift_left 1l (31 - n)) = 0l
                then n
                else len_of bits (n + 1)
              in
              Ok (Stub { prefix = Prefix.make link_id (len_of mask 0); metric })
          | n -> Error (Printf.sprintf "ospf: link type %d unsupported" n)
        in
        go (i + 1) (link :: acc)
    in
    let* links = go 0 [] in
    Ok ({ adv_router; seq; links }, off + total)

let encode ~router_id t =
  let len = header_size + body_size t in
  let buf = Bytes.make len '\000' in
  set_u8 buf 0 2 (* version *);
  set_u8 buf 1 (type_code t);
  set_u16 buf 2 len;
  set_ipv4 buf 4 router_id;
  set_u32_int buf 8 0 (* area 0 *);
  set_u16 buf 12 0 (* checksum placeholder *);
  (* autype + auth already zero *)
  let off = header_size in
  (match t with
  | Hello h ->
      set_u32_int buf off 0 (* network mask *);
      set_u16 buf (off + 4) h.hello_interval_s;
      set_u8 buf (off + 6) 0 (* options *);
      set_u8 buf (off + 7) 0 (* priority *);
      set_u32_int buf (off + 8) h.dead_interval_s;
      (* dr + bdr zero at off+12? layout: mask(4) hello(2) opt(1)
         prio(1) dead(4) dr(4) bdr(4) = 16, then neighbors — but we
         packed dr/bdr into the 16 bytes: mask 4 + 2 + 1 + 1 + 4 = 12;
         remaining 4 bytes are the DR; BDR dropped to keep the body at
         16 bytes. *)
      List.iteri
        (fun i n -> set_ipv4 buf (off + 16 + (4 * i)) n)
        h.neighbors
  | Ls_update lsas ->
      set_u32_int buf off (List.length lsas);
      let o = ref (off + 4) in
      List.iter (fun l -> o := write_lsa buf !o l) lsas
  | Ls_ack acks ->
      List.iteri
        (fun i (adv, seq) ->
          let o = off + (i * lsa_header_size) in
          set_u8 buf (o + 3) 1;
          set_ipv4 buf (o + 4) adv;
          set_ipv4 buf (o + 8) adv;
          set_u32_int buf (o + 12) seq;
          set_u16 buf (o + 18) lsa_header_size)
        acks);
  set_u16 buf 12 (Checksum.of_bytes buf 0 len);
  buf

let decode buf =
  let* version = u8 buf 0 in
  if version <> 2 then Error (Printf.sprintf "ospf: version %d" version)
  else
    let* len = u16 buf 2 in
    if len <> Bytes.length buf then Error "ospf: length field mismatch"
    else if not (Checksum.verify buf 0 len) then Error "ospf: bad checksum"
    else
      let* type_ = u8 buf 1 in
      let* router_id = ipv4 buf 4 in
      let off = header_size in
      let* msg =
        match type_ with
        | 1 ->
            let* hello_interval_s = u16 buf (off + 4) in
            let* dead_interval_s = u32_int buf (off + 8) in
            let n_neighbors = (len - off - 16) / 4 in
            let rec go i acc =
              if i = n_neighbors then Ok (List.rev acc)
              else
                let* n = ipv4 buf (off + 16 + (4 * i)) in
                go (i + 1) (n :: acc)
            in
            let* neighbors = go 0 [] in
            Ok (Hello { hello_interval_s; dead_interval_s; neighbors })
        | 4 ->
            let* n = u32_int buf off in
            let rec go i o acc =
              if i = n then Ok (List.rev acc)
              else
                let* lsa, o' = read_lsa buf o in
                go (i + 1) o' (lsa :: acc)
            in
            let* lsas = go 0 (off + 4) [] in
            Ok (Ls_update lsas)
        | 5 ->
            let n = (len - off) / lsa_header_size in
            let rec go i acc =
              if i = n then Ok (List.rev acc)
              else
                let o = off + (i * lsa_header_size) in
                let* adv = ipv4 buf (o + 4) in
                let* seq = u32_int buf (o + 12) in
                go (i + 1) ((adv, seq) :: acc)
            in
            let* acks = go 0 [] in
            Ok (Ls_ack acks)
        | n -> Error (Printf.sprintf "ospf: packet type %d unsupported" n)
      in
      Ok (router_id, msg)

let equal a b =
  match (a, b) with
  | Hello x, Hello y ->
      x.hello_interval_s = y.hello_interval_s
      && x.dead_interval_s = y.dead_interval_s
      && List.equal Ipv4.equal x.neighbors y.neighbors
  | Ls_update x, Ls_update y -> List.equal lsa_equal x y
  | Ls_ack x, Ls_ack y ->
      List.equal (fun (a, s) (b, s') -> Ipv4.equal a b && s = s') x y
  | (Hello _ | Ls_update _ | Ls_ack _), _ -> false

let pp fmt = function
  | Hello h -> Format.fprintf fmt "HELLO neighbors=%d" (List.length h.neighbors)
  | Ls_update lsas -> Format.fprintf fmt "LS_UPDATE n=%d" (List.length lsas)
  | Ls_ack acks -> Format.fprintf fmt "LS_ACK n=%d" (List.length acks)
