(* The horse command-line interface: build topologies and run the
   paper's experiments without writing OCaml — the ergonomic
   equivalent of the original implementation's Python API. *)

open Cmdliner
open Horse_engine
open Horse_topo
open Horse_core

(* --- shared arguments -------------------------------------------------- *)

let pods_arg =
  let doc = "Fat-Tree pods (even, >= 2)." in
  Arg.(value & opt int 4 & info [ "p"; "pods" ] ~docv:"PODS" ~doc)

let duration_arg =
  let doc = "Virtual experiment duration in seconds." in
  Arg.(value & opt float 30.0 & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "Random seed (traffic permutation etc.)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let quiet_timeout_arg =
  let doc = "Control-plane quiet timeout before returning to DES, seconds." in
  Arg.(value & opt float 1.0 & info [ "quiet-timeout" ] ~docv:"SECONDS" ~doc)

let increment_arg =
  let doc = "FTI increment, milliseconds." in
  Arg.(value & opt float 1.0 & info [ "fti-increment" ] ~docv:"MS" ~doc)

let max_wall_arg =
  let doc =
    "Watchdog: abort the run after $(docv) wall-clock seconds (0 = off), \
     flushing telemetry so a partial report survives."
  in
  Arg.(value & opt float 0.0 & info [ "max-wall" ] ~docv:"SECONDS" ~doc)

let no_causal_arg =
  let doc =
    "Disable causal tracing (provenance chains, $(b,--explain), Perfetto \
     causal tracks)."
  in
  Arg.(value & flag & info [ "no-causal" ] ~doc)

let profile_arg =
  let doc =
    "Enable the scheduler self-profiler (per-poller tick-cost histograms)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let sched_config quiet_timeout increment_ms max_wall no_causal profile =
  {
    Sched.default_config with
    Sched.quiet_timeout = Time.of_sec quiet_timeout;
    fti_increment = Time.of_sec (increment_ms /. 1000.0);
    max_wall_s = max_wall;
    causal = not no_causal;
    profile;
  }

let warn_aborted (stats : Sched.stats) =
  if stats.Sched.aborted then
    Format.eprintf
      "horse: watchdog abort — wall-clock budget exhausted at %a virtual; \
       results below are partial@."
      Time.pp stats.Sched.end_time

(* --- fault plans ------------------------------------------------------- *)

let faults_arg =
  let doc =
    "Arm the fault-injection plan in $(docv) (JSON; link flaps, node \
     crashes, partitions, impairments — see Horse_faults.Plan)."
  in
  Arg.(value & opt (some file) None & info [ "faults" ] ~docv:"PLAN" ~doc)

let load_faults = function
  | None -> None
  | Some path -> (
      match Horse_faults.Plan.load_file path with
      | Ok plan -> Some plan
      | Error msg ->
          Format.eprintf "horse: cannot load fault plan %s: %s@." path msg;
          exit 1)

let pp_fault_summary fmt inj =
  let module I = Horse_faults.Injector in
  Format.fprintf fmt "faults: %d injected, %d skipped, %d still healing@."
    (I.injected inj) (I.skipped inj) (I.pending inj);
  List.iter
    (fun (label, at, healed) ->
      Format.fprintf fmt "  [%a] %s -> reconverged in %.3fs@." Time.pp at label
        (Time.to_sec healed -. Time.to_sec at))
    (I.reconvergence inj)

(* --- telemetry output -------------------------------------------------- *)

let metrics_out_arg =
  let doc = "Write the final metrics snapshot to $(docv) (Prometheus text)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write the event trace to $(docv): JSON lines by default, or a \
     Chrome-trace-event file loadable at ui.perfetto.dev when $(docv) ends \
     in .perfetto.json."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let report_arg =
  let doc = "Print the human run report (counters, gauges, histograms, spans)." in
  Arg.(value & flag & info [ "report" ] ~doc)

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Shared epilogue: export the registry as requested by the three
   flags above. [stats] and [causal] feed the Perfetto exporter when
   the trace path asks for it. *)
let emit_telemetry ?stats ?causal ~metrics_out ~trace_out ~report reg =
  let module Export = Horse_telemetry.Export in
  let write what pp path =
    try
      Export.to_file ~path pp reg;
      Format.printf "%s written to %s@." what path
    with Sys_error msg ->
      Format.eprintf "horse: cannot write %s: %s@." what msg;
      exit 1
  in
  Option.iter (write "metrics" Export.prometheus) metrics_out;
  Option.iter
    (fun path ->
      match (ends_with ~suffix:".perfetto.json" path, stats) with
      | true, Some (st : Sched.stats) ->
          Horse_causal.Perfetto.write ~path ?graph:causal
            ~spans:
              (Horse_telemetry.Span.records (Horse_telemetry.Registry.spans reg))
            ~transitions:st.Sched.transitions ~end_time:st.Sched.end_time ();
          Format.printf
            "perfetto trace written to %s (load it at ui.perfetto.dev)@." path
      | _ -> write "trace" Export.jsonl path)
    trace_out;
  if report then Format.printf "@.%a@." Horse_stats.Report.pp reg

(* --- te ----------------------------------------------------------------- *)

let te_conv =
  let parse s =
    match s with
    | "bgp" | "bgp-ecmp" -> Ok Scenario.Bgp_ecmp
    | "sdn" | "sdn-ecmp" -> Ok Scenario.Sdn_ecmp
    | "hedera" | "hedera-gff" -> Ok Scenario.Hedera_gff
    | "hedera-sa" -> Ok Scenario.Hedera_annealing
    | "p4" | "p4-ecmp" -> Ok Scenario.P4_ecmp
    | _ -> Error (`Msg (Printf.sprintf "unknown TE approach %S" s))
  in
  Arg.conv (parse, fun fmt te -> Format.pp_print_string fmt (Scenario.te_name te))

let te_cmd =
  let te_arg =
    let doc = "TE approach: bgp, sdn, hedera, hedera-sa, p4." in
    Arg.(value & opt te_conv Scenario.Bgp_ecmp & info [ "t"; "te" ] ~docv:"TE" ~doc)
  in
  let csv_arg =
    let doc = "Write the aggregate-rate series to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let explain_arg =
    let doc =
      "Explain each reconvergence: walk the causal graph from every FIB \
       entry back to the fault that triggered it and print the critical \
       path with per-hop virtual-time latencies."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let classifier_arg =
    let backend_conv =
      let parse s =
        match Horse_openflow.Classifier.backend_of_string s with
        | Some b -> Ok b
        | None ->
            Error (`Msg (Printf.sprintf "unknown classifier backend %S" s))
      in
      Arg.conv
        ( parse,
          fun fmt b ->
            Format.pp_print_string fmt
              (Horse_openflow.Classifier.backend_to_string b) )
    in
    let doc =
      "Slow-path lookup backend for the OpenFlow switches: tss (tuple-space \
       search, default) or interval (interval tree over ip_dst for very \
       large tables). Ignored by the non-OpenFlow TE approaches."
    in
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "classifier" ] ~docv:"BACKEND" ~doc)
  in
  let run pods te duration seed quiet_timeout increment max_wall no_causal
      profile faults classifier csv explain metrics_out trace_out report =
    let result =
      Scenario.run_fat_tree_te ~seed
        ~config:(sched_config quiet_timeout increment max_wall no_causal profile)
        ?faults:(load_faults faults) ?classifier ~pods ~te
        ~duration:(Time.of_sec duration)
        ()
    in
    Format.printf "%a@." Scenario.pp_result result;
    Format.printf "@.%a@." Sched.pp_stats result.Scenario.sched_stats;
    warn_aborted result.Scenario.sched_stats;
    Option.iter (pp_fault_summary Format.std_formatter) result.Scenario.injector;
    if explain then begin
      match result.Scenario.causal with
      | None ->
          Format.printf
            "explain: causal tracing is disabled (--no-causal); nothing to \
             walk@."
      | Some graph ->
          let provenance =
            List.map
              (fun (node, prefix, cause) ->
                (node, Horse_net.Prefix.to_string prefix, cause))
              result.Scenario.fib_provenance
          in
          let reconvergence =
            match result.Scenario.injector with
            | None -> []
            | Some inj -> Horse_faults.Injector.reconvergence inj
          in
          Format.printf "@.%a@." Horse_causal.Explain.pp_report
            (Horse_causal.Explain.attribute ~graph ~provenance ~reconvergence)
    end;
    Option.iter
      (fun path ->
        Horse_stats.Csv.save_series ~path
          [ (Scenario.te_name te, result.Scenario.aggregate) ];
        Format.printf "series written to %s@." path)
      csv;
    emit_telemetry ~stats:result.Scenario.sched_stats
      ?causal:result.Scenario.causal ~metrics_out ~trace_out ~report
      result.Scenario.registry
  in
  let doc = "Run one fat-tree traffic-engineering experiment on Horse." in
  Cmd.v
    (Cmd.info "te" ~doc)
    Term.(
      const run $ pods_arg $ te_arg $ duration_arg $ seed_arg
      $ quiet_timeout_arg $ increment_arg $ max_wall_arg $ no_causal_arg
      $ profile_arg $ faults_arg $ classifier_arg $ csv_arg $ explain_arg
      $ metrics_out_arg $ trace_out_arg $ report_arg)

(* --- multicore ----------------------------------------------------------- *)

let multicore_cmd =
  let domains_arg =
    let doc =
      "OCaml domains executing the shards (1 = sequential reference \
       vehicle; results are byte-identical for any value)."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Shard count (default: one per pod; must not exceed pods)." in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let check_arg =
    let doc =
      "Also run the domains=1 oracle and verify the FIB fingerprint, causal \
       hash and mode timelines match byte-for-byte."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let pp_mc_result fmt (r : Multicore.result) =
    Format.fprintf fmt
      "@[<v>multicore pods=%d shards=%d (%s) domains=%d@,\
       setup %.3fs wall, run %.3fs wall; %d epochs (%d jumped), %d \
       cross-shard deliveries@,\
       converged at %s; %d/%d sessions; %d control msgs (%d bytes); %d FIB \
       writes@,\
       faults: %d injected, %d skipped@,\
       fib fingerprint %s@,\
       causal hash     %s@]"
      r.Multicore.pods r.Multicore.shards r.Multicore.partition_name
      r.Multicore.domains r.Multicore.setup_wall_s r.Multicore.run_wall_s
      r.Multicore.epochs r.Multicore.jumps r.Multicore.cross_messages
      (match r.Multicore.converged_at with
      | Some at -> Format.asprintf "%a" Time.pp at
      | None -> "never")
      r.Multicore.sessions_up r.Multicore.sessions_total
      r.Multicore.control_messages r.Multicore.control_bytes
      r.Multicore.fib_writes r.Multicore.faults_injected
      r.Multicore.faults_skipped r.Multicore.fib_fingerprint
      r.Multicore.causal_hash
  in
  let run pods domains shards duration seed quiet_timeout increment max_wall
      no_causal profile faults check metrics_out trace_out report =
    let config =
      sched_config quiet_timeout increment max_wall no_causal profile
    in
    let faults = load_faults faults in
    let go domains =
      Multicore.run_fat_tree ~seed ~sched_config:config ?shards ~domains
        ?faults ~pods
        ~duration:(Time.of_sec duration)
        ()
    in
    let r = go domains in
    Format.printf "%a@." pp_mc_result r;
    if check && domains <> 1 then begin
      let oracle = go 1 in
      let same =
        r.Multicore.fib_fingerprint = oracle.Multicore.fib_fingerprint
        && r.Multicore.causal_hash = oracle.Multicore.causal_hash
        && r.Multicore.timelines = oracle.Multicore.timelines
        && r.Multicore.fault_trace = oracle.Multicore.fault_trace
      in
      if same then
        Format.printf
          "@.check: domains=%d matches the domains=1 oracle byte-for-byte \
           (%.3fs vs %.3fs wall)@."
          domains r.Multicore.run_wall_s oracle.Multicore.run_wall_s
      else begin
        Format.eprintf
          "@.check FAILED: domains=%d diverged from the domains=1 oracle@."
          domains;
        exit 1
      end
    end;
    emit_telemetry ~metrics_out ~trace_out ~report r.Multicore.registry
  in
  let doc =
    "Run the sharded BGP fat-tree experiment across OCaml domains with \
     deterministic barriers."
  in
  Cmd.v
    (Cmd.info "multicore" ~doc)
    Term.(
      const run $ pods_arg $ domains_arg $ shards_arg $ duration_arg $ seed_arg
      $ quiet_timeout_arg $ increment_arg $ max_wall_arg $ no_causal_arg
      $ profile_arg $ faults_arg $ check_arg $ metrics_out_arg $ trace_out_arg
      $ report_arg)

(* --- fig1 ---------------------------------------------------------------- *)

let fig1_cmd =
  let prefixes_arg =
    let doc = "Prefixes originated by each router." in
    Arg.(value & opt int 10 & info [ "prefixes" ] ~docv:"N" ~doc)
  in
  let run duration quiet_timeout increment max_wall no_causal profile faults
      prefixes metrics_out trace_out report =
    let wan = Wan.linear 2 in
    let exp =
      Experiment.create
        ~config:(sched_config quiet_timeout increment max_wall no_causal profile)
        wan.Wan.topo
    in
    let originate node =
      List.init prefixes (fun i ->
          Horse_net.Prefix.make (Horse_net.Ipv4.of_octets 20 node i 0) 24)
    in
    let fabric =
      Routed_fabric.build ~cm:(Experiment.cm exp)
        ~hold_time:(Time.of_sec 90.0) ~originate wan.Wan.topo
    in
    Experiment.at exp Time.zero (fun () -> Routed_fabric.start fabric);
    let injector =
      Option.map
        (fun plan ->
          Horse_faults.Injector.arm (Experiment.scheduler exp)
            ~target:(Routed_fabric.fault_target fabric)
            plan)
        (load_faults faults)
    in
    let stats = Experiment.run ~until:(Time.of_sec duration) exp in
    warn_aborted stats;
    Option.iter (pp_fault_summary Format.std_formatter) injector;
    Format.printf "mode timeline:@.";
    List.iter
      (fun (tr : Sched.transition) ->
        Format.printf "  [%a] %a -> %a (%s)@." Time.pp tr.Sched.at Sched.pp_mode
          tr.Sched.from_mode Sched.pp_mode tr.Sched.to_mode tr.Sched.reason)
      stats.Sched.transitions;
    Format.printf "@.%a@." Sched.pp_stats stats;
    emit_telemetry ~stats
      ?causal:(Sched.causal (Experiment.scheduler exp))
      ~metrics_out ~trace_out ~report (Experiment.registry exp)
  in
  let doc = "Two-router BGP mode-transition demo (the paper's Figure 1)." in
  Cmd.v
    (Cmd.info "fig1" ~doc)
    Term.(
      const run $ duration_arg $ quiet_timeout_arg $ increment_arg
      $ max_wall_arg $ no_causal_arg $ profile_arg $ faults_arg $ prefixes_arg
      $ metrics_out_arg $ trace_out_arg $ report_arg)

(* --- baseline ------------------------------------------------------------- *)

let baseline_cmd =
  let rate_arg =
    let doc = "Per-flow rate, bits per second." in
    Arg.(value & opt float 1e9 & info [ "rate" ] ~docv:"BPS" ~doc)
  in
  let pkt_arg =
    let doc = "Packet size in bytes." in
    Arg.(value & opt int 1500 & info [ "pkt-bytes" ] ~docv:"BYTES" ~doc)
  in
  let stack_arg =
    let doc = "Disable the per-hop frame encode/decode work." in
    Arg.(value & flag & info [ "no-stack-work" ] ~doc)
  in
  let run pods duration seed rate pkt_bytes no_stack =
    let r =
      Horse_baseline.Mininet_model.run_fat_tree ~pods ~seed ~rate
        ~pkt_bytes ~stack_work:(not no_stack)
        ~duration:(Time.of_sec duration)
        ()
    in
    Format.printf "%a@." Horse_baseline.Mininet_model.pp_result r
  in
  let doc = "Run the Mininet-like per-packet baseline (Figure 3 comparator)." in
  Cmd.v
    (Cmd.info "baseline" ~doc)
    Term.(
      const run $ pods_arg $ duration_arg $ seed_arg $ rate_arg $ pkt_arg
      $ stack_arg)

(* --- wan --------------------------------------------------------------------- *)

let wan_cmd =
  let topo_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "abilene" ] -> Ok `Abilene
      | [ "ring"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 3 -> Ok (`Ring n)
          | Some _ | None -> Error (`Msg "ring needs n >= 3"))
      | [ "random"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 2 -> Ok (`Random n)
          | Some _ | None -> Error (`Msg "random needs n >= 2"))
      | _ -> Error (`Msg "expected abilene, ring:N or random:N")
    in
    let print fmt = function
      | `Abilene -> Format.pp_print_string fmt "abilene"
      | `Ring n -> Format.fprintf fmt "ring:%d" n
      | `Random n -> Format.fprintf fmt "random:%d" n
    in
    Arg.conv (parse, print)
  in
  let topo_arg =
    let doc = "WAN topology: abilene, ring:N or random:N." in
    Arg.(value & opt topo_conv `Abilene & info [ "w"; "wan" ] ~docv:"TOPO" ~doc)
  in
  let fail_arg =
    let doc =
      "Kill router $(docv) at one third of the run (hold-timer detection and \
       reconvergence follow)."
    in
    Arg.(value & opt (some int) None & info [ "kill" ] ~docv:"ROUTER" ~doc)
  in
  let run wan_kind duration seed quiet_timeout increment max_wall no_causal
      profile faults kill metrics_out trace_out report =
    let wan =
      match wan_kind with
      | `Abilene -> Wan.abilene ()
      | `Ring n -> Wan.ring n
      | `Random n -> Wan.random_gnp ~seed ~n ~p:0.3 ()
    in
    let hosts = Wan.attach_hosts wan in
    let exp =
      Experiment.create ~seed
        ~config:(sched_config quiet_timeout increment max_wall no_causal profile)
        wan.Wan.topo
    in
    (* Each router originates its PoP prefix (its host lives in it). *)
    let router_index = Hashtbl.create 16 in
    Array.iteri
      (fun i (r : Horse_topo.Topology.node) ->
        Hashtbl.replace router_index r.Horse_topo.Topology.id i)
      wan.Wan.routers;
    let fabric =
      Routed_fabric.build ~cm:(Experiment.cm exp)
        ~hold_time:(Time.of_sec 30.0)
        ~originate:(fun node ->
          match Hashtbl.find_opt router_index node with
          | Some i -> [ Wan.router_prefix wan i ]
          | None -> [])
        wan.Wan.topo
    in
    Experiment.at exp Time.zero (fun () -> Routed_fabric.start fabric);
    let fluid = Experiment.fluid exp in
    Horse_dataplane.Fluid.start_sampling fluid ~every:(Time.of_sec 1.0);
    (* Track flows so FIB changes re-path them (or stop them when the
       destination becomes unreachable). *)
    let flows :
        (Horse_net.Flow_key.t * Horse_dataplane.Flow.t * int ref) list ref =
      ref []
    in
    let dirty = ref true in
    Routed_fabric.on_fib_change fabric (fun _ _ -> dirty := true);
    (* Re-path flows when the FIBs change. Transient unreachability
       during reconvergence is tolerated; a flow is stopped only after
       its destination has stayed unroutable for 10 consecutive sweeps
       (2 s). *)
    ignore
      (Sched.every (Experiment.scheduler exp) (Time.of_ms 200) (fun () ->
           let retry_all = !dirty in
           dirty := false;
           List.iter
             (fun (key, flow, misses) ->
               if
                 flow.Horse_dataplane.Flow.active && (retry_all || !misses > 0)
               then
                 match Routed_fabric.path_for fabric key with
                 | Ok path ->
                     misses := 0;
                     Horse_dataplane.Fluid.set_path fluid flow path
                 | Error _ ->
                     incr misses;
                     if !misses >= 10 then begin
                       Format.printf
                         "[%a] flow %a unroutable for 2s; stopping@." Time.pp
                         (Sched.now (Experiment.scheduler exp))
                         Horse_net.Flow_key.pp key;
                       Horse_dataplane.Fluid.stop_flow fluid flow
                     end)
             !flows));
    Routed_fabric.when_converged fabric (fun () ->
        Format.printf "[%a] converged; starting permutation traffic@." Time.pp
          (Sched.now (Experiment.scheduler exp));
        let n = Array.length hosts in
        let rng = Rng.create seed in
        let dsts = Rng.derangement rng n in
        Array.iteri
          (fun i (h : Horse_topo.Topology.node) ->
            let key =
              Horse_net.Flow_key.make
                ~src:(Option.get h.Horse_topo.Topology.ip)
                ~dst:(Option.get hosts.(dsts.(i)).Horse_topo.Topology.ip)
                ~src_port:(7000 + i) ~dst_port:(8000 + i) ()
            in
            match Routed_fabric.path_for fabric key with
            | Ok path ->
                flows :=
                  ( key,
                    Horse_dataplane.Fluid.start_flow ~demand:1e9 fluid ~key ~path,
                    ref 0 )
                  :: !flows
            | Error msg -> Format.printf "unroutable: %s@." msg)
          hosts);
    Option.iter
      (fun victim ->
        Experiment.at exp
          (Time.of_sec (duration /. 3.0))
          (fun () ->
            Format.printf "[%a] *** killing r%d ***@." Time.pp
              (Sched.now (Experiment.scheduler exp))
              victim;
            match Routed_fabric.speaker fabric wan.Wan.routers.(victim).Horse_topo.Topology.id with
            | Some speaker ->
                Horse_emulation.Process.kill (Horse_bgp.Speaker.process speaker)
            | None -> ()))
      kill;
    let injector =
      Option.map
        (fun plan ->
          Horse_faults.Injector.arm (Experiment.scheduler exp)
            ~target:(Routed_fabric.fault_target fabric)
            plan)
        (load_faults faults)
    in
    let stats = Experiment.run ~until:(Time.of_sec duration) exp in
    warn_aborted stats;
    Option.iter (pp_fault_summary Format.std_formatter) injector;
    Format.printf "@.%a@.@.%a@." Sched.pp_timeline stats Sched.pp_stats stats;
    Format.printf "@.aggregate rate (Gbps):@.";
    Horse_stats.Ascii.plot ~height:10 Format.std_formatter
      [
        ( "aggregate",
          Horse_stats.Series.map
            (Horse_dataplane.Fluid.aggregate_series fluid)
            ~f:(fun v -> v /. 1e9) );
      ];
    emit_telemetry ~stats
      ?causal:(Sched.causal (Experiment.scheduler exp))
      ~metrics_out ~trace_out ~report (Experiment.registry exp)
  in
  let doc = "Run BGP + fluid traffic on a WAN topology (optionally kill a router)." in
  Cmd.v
    (Cmd.info "wan" ~doc)
    Term.(
      const run $ topo_arg $ duration_arg $ seed_arg $ quiet_timeout_arg
      $ increment_arg $ max_wall_arg $ no_causal_arg $ profile_arg $ faults_arg
      $ fail_arg $ metrics_out_arg $ trace_out_arg $ report_arg)

(* --- megauser -------------------------------------------------------------- *)

let megauser_cmd =
  let classes_arg =
    let doc = "Peak number of concurrent flow classes." in
    Arg.(value & opt int 20_000 & info [ "classes" ] ~docv:"N" ~doc)
  in
  let users_arg =
    let doc = "Total users represented at peak." in
    Arg.(value & opt int 1_000_000 & info [ "users" ] ~docv:"N" ~doc)
  in
  let user_demand_arg =
    let doc = "Per-user demand, bits per second." in
    Arg.(value & opt float 150e3 & info [ "user-demand" ] ~docv:"BPS" ~doc)
  in
  let cities_arg =
    let doc =
      "Build a random connected WAN with $(docv) cities instead of Abilene \
       (average degree 4)."
    in
    Arg.(value & opt (some int) None & info [ "cities" ] ~docv:"N" ~doc)
  in
  let sites_arg =
    let doc = "Anycast CDN replica sites." in
    Arg.(value & opt int 3 & info [ "sites" ] ~docv:"N" ~doc)
  in
  let ticks_arg =
    let doc = "Diurnal schedule granularity (ticks per day)." in
    Arg.(value & opt int 48 & info [ "ticks" ] ~docv:"N" ~doc)
  in
  let headroom_arg =
    let doc = "Capacity-planning headroom over expected peak link load." in
    Arg.(value & opt float 1.1 & info [ "headroom" ] ~docv:"FACTOR" ~doc)
  in
  let solver_conv =
    let parse = function
      | "delta" -> Ok Horse_dataplane.Fluid.Delta
      | "component" -> Ok Horse_dataplane.Fluid.Component
      | s -> Error (`Msg (Printf.sprintf "unknown solver %S" s))
    in
    let print fmt = function
      | Horse_dataplane.Fluid.Delta -> Format.pp_print_string fmt "delta"
      | Horse_dataplane.Fluid.Component ->
          Format.pp_print_string fmt "component"
    in
    Arg.conv (parse, print)
  in
  let solver_arg =
    let doc = "Fair-share solver: delta (incremental) or component." in
    Arg.(
      value
      & opt solver_conv Horse_dataplane.Fluid.Delta
      & info [ "solver" ] ~docv:"SOLVER" ~doc)
  in
  let eager_arg =
    let doc = "Solve on every event instead of coalescing per instant." in
    Arg.(value & flag & info [ "eager" ] ~doc)
  in
  let run duration seed classes users user_demand cities sites ticks headroom
      solver eager metrics_out report =
    let wan =
      Option.map
        (fun n -> Wan.random_gnp ~seed ~n ~p:(4.0 /. float_of_int n) ())
        cities
    in
    let r =
      Scenario.run_wan_megauser ~seed ~solver ~eager ?wan ~classes ~users
        ~user_demand ~headroom ~sites ~ticks
        ~duration:(Time.of_sec duration) ()
    in
    Format.printf "%a@." Scenario.pp_megauser_result r;
    Format.printf "@.aggregate rate (Gbps):@.";
    Horse_stats.Ascii.plot ~height:10 Format.std_formatter
      [
        ( "aggregate",
          Horse_stats.Series.map r.Scenario.mu_aggregate ~f:(fun v ->
              v /. 1e9) );
      ];
    (match r.Scenario.mu_delta with
    | Some d ->
        Format.printf
          "@.delta solver: %d solves, %d flows touched, %d links touched, %d \
           expansions, %d promotions@."
          d.Horse_dataplane.Fair_share.Delta.solves
          d.Horse_dataplane.Fair_share.Delta.flows_touched
          d.Horse_dataplane.Fair_share.Delta.links_touched
          d.Horse_dataplane.Fair_share.Delta.expansions
          d.Horse_dataplane.Fair_share.Delta.promotions
    | None -> ());
    emit_telemetry ~stats:r.Scenario.mu_sched_stats ~metrics_out
      ~trace_out:None ~report r.Scenario.mu_registry
  in
  let doc =
    "Run the million-user CDN/anycast workload (gravity traffic matrix, \
     diurnal flow-class churn, mid-day replica drain) through the delta \
     fair-share solver."
  in
  Cmd.v
    (Cmd.info "megauser" ~doc)
    Term.(
      const run $ duration_arg $ seed_arg $ classes_arg $ users_arg
      $ user_demand_arg $ cities_arg $ sites_arg $ ticks_arg $ headroom_arg
      $ solver_arg $ eager_arg $ metrics_out_arg $ report_arg)

(* --- topo ------------------------------------------------------------------ *)

let topo_cmd =
  let run pods =
    let ft = Fat_tree.build ~k:pods () in
    let topo = ft.Fat_tree.topo in
    Format.printf "fat-tree k=%d: %d hosts, %d switches, %d duplex links@." pods
      (Array.length ft.Fat_tree.hosts)
      (List.length (Topology.switches topo))
      (Topology.n_links topo / 2);
    Format.printf "first host: %a@." Topology.pp_node ft.Fat_tree.hosts.(0);
    let tree =
      Spf.shortest_tree topo ~src:ft.Fat_tree.hosts.(0).Topology.id
    in
    let last = Array.length ft.Fat_tree.hosts - 1 in
    Format.printf "equal-cost paths %s -> %s: %d@."
      ft.Fat_tree.hosts.(0).Topology.name ft.Fat_tree.hosts.(last).Topology.name
      (List.length
         (Spf.ecmp_paths ~max_paths:1000 tree topo
            ~dst:ft.Fat_tree.hosts.(last).Topology.id))
  in
  let doc = "Print a fat-tree topology summary." in
  Cmd.v (Cmd.info "topo" ~doc) Term.(const run $ pods_arg)

(* --------------------------------------------------------------------------- *)

let () =
  let doc = "Horse: hybrid control-plane emulation / data-plane simulation" in
  let info = Cmd.info "horse" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            te_cmd; multicore_cmd; fig1_cmd; baseline_cmd; wan_cmd;
            megauser_cmd; topo_cmd;
          ]))
