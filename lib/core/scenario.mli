(** The paper's demonstration, packaged: Fat-Tree data-centre traffic
    engineering with three control planes.

    One scenario run builds a [pods]-pod Fat-Tree (1 Gbps links),
    boots the chosen control plane at t = 0, starts one 1 Gbps UDP
    flow from every server to a distinct other server (seeded
    derangement), samples the aggregate rate arriving at the hosts,
    and runs the hybrid engine for the requested virtual duration.

    Used by the FIG3 and DEMO-TE benchmarks and the
    [datacenter_te] example. *)

open Horse_net
open Horse_engine
open Horse_stats

type te =
  | Bgp_ecmp  (** (i) BGP + ECMP hashing source and destination IP *)
  | Sdn_ecmp  (** (iii) SDN 5-tuple ECMP, reactive *)
  | Hedera_gff  (** (ii) Hedera with Global First Fit, 5 s polling *)
  | Hedera_annealing  (** Hedera variant with Simulated Annealing *)
  | P4_ecmp
      (** the future-work item realised: P4 pipelines programmed over
          runtime channels, in-switch hash-based ECMP *)

val te_name : te -> string
val all_te : te list
(** The demonstration's three approaches (GFF for Hedera). *)

type result = {
  te : te;
  pods : int;
  n_hosts : int;
  setup_wall_s : float;  (** building topology + control plane *)
  run_wall_s : float;  (** executing the experiment *)
  sched_stats : Sched.stats;
  aggregate : Series.t;  (** aggregate host rx rate over virtual time *)
  delivered_bits : float;
  offered_bits : float;
  converged_at : Time.t option;
      (** BGP: FIBs complete; SDN: all flows routed *)
  control_messages : int;
  control_bytes : int;
  flows_started : int;
  registry : Horse_telemetry.Registry.t;
      (** the experiment's telemetry registry, for exporters *)
  injector : Horse_faults.Injector.t option;
      (** present when a fault plan was armed: injection trace and
          per-fault reconvergence *)
  fib_fingerprint : string option;
      (** BGP scenario only: digest of every final FIB, for
          determinism checks *)
  causal : Causal.t option;
      (** the run's causal graph when [config.causal] (the default) *)
  fib_provenance : (string * Prefix.t * Causal.id) list;
      (** BGP scenario only: (node, prefix, causal id) for every
          BGP-learned FIB entry — the input to the convergence
          explainer *)
}

val run_fat_tree_te :
  ?seed:int ->
  ?sample_every:Time.t ->
  ?config:Sched.config ->
  ?flow_rate:float ->
  ?faults:Horse_faults.Plan.t ->
  ?classifier:Horse_openflow.Classifier.backend ->
  pods:int ->
  te:te ->
  duration:Time.t ->
  unit ->
  result
(** Defaults: seed 42, sampling every 500 ms, 1 Gbps flows, scheduler
    defaults (1 ms increment, 1 s quiet timeout). [faults] arms a
    fault-injection plan against the chosen control plane before the
    run ({!Bgp_ecmp}: full target; SDN variants: link faults only;
    raises [Invalid_argument] for {!P4_ecmp}, which has no fault
    surface yet). [classifier] selects the OpenFlow switches' slow-path
    lookup backend (default tuple-space search; ignored by the
    non-OpenFlow scenarios). *)

val pp_result : Format.formatter -> result -> unit

(** {1 Million-user CDN/anycast workload}

    A compressed "day" of CDN traffic on the WAN: Zipf city masses
    feed a {!Horse_topo.Traffic_matrix.gravity} demand matrix, each
    cell is carved into flow classes (one fluid flow standing for
    thousands of users, {!Horse_dataplane.Flow.t}[.users]) served from
    the city's nearest anycast replica, classes arrive and depart with
    each city's diurnal cycle (phase-shifted by time zone), and
    halfway through the day the busiest replica drains — steering
    every class it serves to the next-nearest site in one reroute
    storm. Exercises the delta fair-share solver end to end. *)

type megauser_result = {
  mu_cities : int;
  mu_sites : int;
  mu_classes_started : int;  (** classes ever admitted *)
  mu_classes_peak : int;  (** max concurrent classes (sampled at ticks) *)
  mu_users_peak : int;  (** max concurrent users represented *)
  mu_events : int;  (** arrivals + departures + reroutes *)
  mu_reroutes : int;
  mu_solves : int;  (** rate solves actually executed *)
  mu_solve_work : int;  (** total flows entering solves *)
  mu_delta : Horse_dataplane.Fair_share.Delta.stats option;
      (** [None] when the component solver was selected *)
  mu_setup_wall_s : float;
  mu_run_wall_s : float;
  mu_delivered_bits : float;
  mu_aggregate : Series.t;
  mu_sched_stats : Sched.stats;
  mu_registry : Horse_telemetry.Registry.t;
}

val run_wan_megauser :
  ?seed:int ->
  ?config:Sched.config ->
  ?solver:Horse_dataplane.Fluid.solver ->
  ?eager:bool ->
  ?wan:Horse_topo.Wan.t ->
  ?classes:int ->
  ?users:int ->
  ?user_demand:float ->
  ?headroom:float ->
  ?sites:int ->
  ?ticks:int ->
  ?sample_every:Time.t ->
  ?duration:Time.t ->
  unit ->
  megauser_result
(** Defaults: Abilene WAN, 20 000 peak flow classes standing for
    1 000 000 users at 150 kbps each, 3 anycast sites, 48 diurnal
    ticks over a 60 s virtual day, the incremental delta solver with
    coalesced (non-eager) recomputes. Links are capacity-planned for
    [headroom] (default 1.1) times their expected peak load, so the
    diurnal swing stays within plan — the solver's O(1) fast path —
    until the drain event concentrates load and saturates the
    under-planned paths for real. [classes], [users] and
    [user_demand] scale the workload; [eager] forces a solve per
    event (used by the A/B benchmarks).
    @raise Invalid_argument on [sites] outside [1, cities],
    [classes < 1] or [ticks < 1]. *)

val pp_megauser_result : Format.formatter -> megauser_result -> unit
