(* Tests for horse_dataplane: LPM forwarding, max-min fair share, the
   fluid engine, and the per-packet baseline engine. *)

open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Fwd (longest prefix match) ---------------------------------------- *)

let test_fwd_lpm_order () =
  let t = Fwd.create () in
  Fwd.set_route t Prefix.any ~next_hops:[ 1 ];
  Fwd.set_route t (Prefix.of_string_exn "10.0.0.0/8") ~next_hops:[ 2 ];
  Fwd.set_route t (Prefix.of_string_exn "10.1.0.0/16") ~next_hops:[ 3 ];
  Fwd.set_route t (Prefix.of_string_exn "10.1.2.3/32") ~next_hops:[ 4 ];
  let lookup s = Fwd.lookup t (Ipv4.of_string_exn s) in
  check (Alcotest.option (Alcotest.list Alcotest.int)) "/32 wins" (Some [ 4 ])
    (lookup "10.1.2.3");
  check (Alcotest.option (Alcotest.list Alcotest.int)) "/16" (Some [ 3 ])
    (lookup "10.1.9.9");
  check (Alcotest.option (Alcotest.list Alcotest.int)) "/8" (Some [ 2 ])
    (lookup "10.200.0.1");
  check (Alcotest.option (Alcotest.list Alcotest.int)) "default" (Some [ 1 ])
    (lookup "8.8.8.8")

let test_fwd_remove_and_replace () =
  let t = Fwd.create () in
  let p = Prefix.of_string_exn "192.168.0.0/24" in
  Fwd.set_route t p ~next_hops:[ 5; 3; 5 ];
  check (Alcotest.option (Alcotest.list Alcotest.int)) "dedup + sort"
    (Some [ 3; 5 ])
    (Fwd.lookup t (Ipv4.of_octets 192 168 0 1));
  check Alcotest.int "count" 1 (Fwd.route_count t);
  Fwd.set_route t p ~next_hops:[ 9 ];
  check Alcotest.int "replace keeps count" 1 (Fwd.route_count t);
  Fwd.remove_route t p;
  check Alcotest.int "removed" 0 (Fwd.route_count t);
  Fwd.remove_route t p (* idempotent *);
  check Alcotest.bool "no match" true
    (Fwd.lookup t (Ipv4.of_octets 192 168 0 1) = None)

let test_fwd_lookup_select () =
  let t = Fwd.create () in
  Fwd.set_route t Prefix.any ~next_hops:[ 10; 20; 30 ];
  check (Alcotest.option Alcotest.int) "selects by hash mod" (Some 20)
    (Fwd.lookup_select t Ipv4.any ~hash:7);
  check (Alcotest.option Alcotest.int) "hash 0" (Some 10)
    (Fwd.lookup_select t Ipv4.any ~hash:0)

let test_fwd_empty_group_rejected () =
  let t = Fwd.create () in
  Alcotest.check_raises "empty next hops"
    (Invalid_argument "Fwd.set_route: empty next-hop set") (fun () ->
      Fwd.set_route t Prefix.any ~next_hops:[])

(* LPM vs naive oracle. *)
let prop_fwd_matches_naive =
  qtest "fwd: lookup matches the naive longest-match oracle"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30)
           (pair int32 (int_range 0 32)))
        int32)
    (fun (routes, addr32) ->
      let t = Fwd.create () in
      let routes =
        List.mapi
          (fun i (a, len) -> (Prefix.make (Ipv4.of_int32 a) len, [ i + 1 ]))
          routes
      in
      (* Later set_route calls overwrite equal prefixes, mirroring the
         oracle's preference for the last binding. *)
      List.iter (fun (p, hops) -> Fwd.set_route t p ~next_hops:hops) routes;
      let addr = Ipv4.of_int32 addr32 in
      let naive =
        List.fold_left
          (fun acc (p, hops) ->
            if Prefix.mem addr p then
              (* Equal-length matching prefixes are identical, and the
                 last binding wins (replace semantics). *)
              match acc with
              | Some (best, _) when Prefix.length best > Prefix.length p -> acc
              | Some _ | None -> Some (p, hops)
            else acc)
          None routes
      in
      match (Fwd.lookup t addr, naive) with
      | None, None -> true
      | Some got, Some (_, want) -> got = want
      | Some _, None | None, Some _ -> false)

(* --- Fair share --------------------------------------------------------- *)

let capacity_all c _ = c

let test_fair_share_single_bottleneck () =
  (* Three flows share one 9 Gbps link: 3 Gbps each. *)
  let flows =
    Array.make 3 { Fair_share.demand = 10e9; links = [ 0 ] }
  in
  let rates = Fair_share.compute ~capacity:(capacity_all 9e9) flows in
  Array.iter (fun r -> check (Alcotest.float 1.0) "equal share" 3e9 r) rates

let test_fair_share_demand_limited () =
  (* One small flow keeps its demand; the rest split the remainder. *)
  let flows =
    [|
      { Fair_share.demand = 1e9; links = [ 0 ] };
      { Fair_share.demand = 10e9; links = [ 0 ] };
      { Fair_share.demand = 10e9; links = [ 0 ] };
    |]
  in
  let rates = Fair_share.compute ~capacity:(capacity_all 9e9) flows in
  check (Alcotest.float 1.0) "small keeps demand" 1e9 rates.(0);
  check (Alcotest.float 1.0) "big splits remainder" 4e9 rates.(1);
  check (Alcotest.float 1.0) "big splits remainder" 4e9 rates.(2)

let test_fair_share_two_bottlenecks () =
  (* Classic example: link0 cap 1, flows A(link0), B(link0+link1),
     link1 cap 10. A and B get 0.5 each on link0; B is bottlenecked
     there. *)
  let flows =
    [|
      { Fair_share.demand = 10.0; links = [ 0 ] };
      { Fair_share.demand = 10.0; links = [ 0; 1 ] };
    |]
  in
  let capacity = function 0 -> 1.0 | _ -> 10.0 in
  let rates = Fair_share.compute ~capacity flows in
  check (Alcotest.float 1e-9) "A" 0.5 rates.(0);
  check (Alcotest.float 1e-9) "B" 0.5 rates.(1)

let test_fair_share_cascade () =
  (* Water-filling across two links: flow C crosses only link1 and
     should pick up what B cannot use.
     link0 cap 1 (A, B), link1 cap 10 (B, C):
     A = B = 0.5; C = 9.5 capped at demand 2 -> 2. *)
  let flows =
    [|
      { Fair_share.demand = 10.0; links = [ 0 ] };
      { Fair_share.demand = 10.0; links = [ 0; 1 ] };
      { Fair_share.demand = 2.0; links = [ 1 ] };
    |]
  in
  let capacity = function 0 -> 1.0 | _ -> 10.0 in
  let rates = Fair_share.compute ~capacity flows in
  check (Alcotest.float 1e-9) "A" 0.5 rates.(0);
  check (Alcotest.float 1e-9) "B" 0.5 rates.(1);
  check (Alcotest.float 1e-9) "C demand-capped" 2.0 rates.(2)

let test_fair_share_empty_path () =
  let flows = [| { Fair_share.demand = 5.0; links = [] } |] in
  let rates = Fair_share.compute ~capacity:(capacity_all 1.0) flows in
  check (Alcotest.float 1e-9) "unconstrained = demand" 5.0 rates.(0)

let test_fair_share_zero_demand () =
  let flows = [| { Fair_share.demand = 0.0; links = [ 0 ] } |] in
  let rates = Fair_share.compute ~capacity:(capacity_all 1.0) flows in
  check (Alcotest.float 1e-9) "zero demand" 0.0 rates.(0)

let gen_fair_share_case =
  let open QCheck2.Gen in
  let* n_links = int_range 1 6 in
  let* caps = array_size (return n_links) (float_range 0.5 10.0) in
  let* n_flows = int_range 1 12 in
  let* flows =
    list_size (return n_flows)
      (let* demand = float_range 0.1 5.0 in
       let* path_len = int_range 1 n_links in
       let* links = list_size (return path_len) (int_range 0 (n_links - 1)) in
       return { Fair_share.demand; links = List.sort_uniq Int.compare links })
  in
  return (caps, Array.of_list flows)

let prop_fair_share_feasible =
  qtest "fair share: allocation is feasible and demand-capped"
    gen_fair_share_case (fun (caps, flows) ->
      let capacity l = caps.(l) in
      let rates = Fair_share.compute ~capacity flows in
      let demand_ok =
        Array.for_all2
          (fun r (f : Fair_share.flow_input) ->
            r >= -1e-9 && r <= f.Fair_share.demand +. 1e-9)
          rates flows
      in
      let load_ok =
        List.for_all
          (fun (l, load) -> load <= caps.(l) +. 1e-6)
          (Fair_share.link_loads flows rates)
      in
      demand_ok && load_ok)

let prop_fair_share_maxmin_bottleneck =
  (* Max-min optimality witness: every flow is either demand-capped
     or crosses a saturated link on which it has the maximal rate. *)
  qtest "fair share: every flow is demand- or bottleneck-limited"
    gen_fair_share_case (fun (caps, flows) ->
      let capacity l = caps.(l) in
      let rates = Fair_share.compute ~capacity flows in
      let loads = Fair_share.link_loads flows rates in
      let load l = List.assoc l loads in
      let ok = ref true in
      Array.iteri
        (fun i (f : Fair_share.flow_input) ->
          let demand_capped = rates.(i) >= f.Fair_share.demand -. 1e-6 in
          let bottlenecked =
            List.exists
              (fun l ->
                load l >= caps.(l) -. 1e-6
                && Array.for_all2
                     (fun r (g : Fair_share.flow_input) ->
                       (not (List.mem l g.Fair_share.links))
                       || r <= rates.(i) +. 1e-6)
                     rates flows)
              f.Fair_share.links
          in
          if not (demand_capped || bottlenecked) then ok := false)
        flows;
      !ok)

(* Differential generator: wider than the feasibility one — includes
   zero demands, empty paths and heavy demand duplication, the inputs
   where the batched water-filling could diverge from progressive
   filling. *)
let gen_differential_case =
  let open QCheck2.Gen in
  let* n_links = int_range 1 8 in
  let* caps = array_size (return n_links) (float_range 0.5 10.0) in
  let* n_flows = int_range 0 25 in
  let* demand_pool = array_size (return 4) (float_range 0.0 6.0) in
  let* flows =
    list_size (return n_flows)
      (let* demand =
         oneof
           [
             (let* i = int_range 0 3 in
              return demand_pool.(i));
             float_range 0.0 6.0;
             return 0.0;
           ]
       in
       let* path_len = int_range 0 n_links in
       let* links = list_size (return path_len) (int_range 0 (n_links - 1)) in
       return { Fair_share.demand; links = List.sort_uniq Int.compare links })
  in
  return (caps, Array.of_list flows)

let prop_fair_share_differential =
  qtest ~count:500 "fair share: water filling matches progressive filling"
    gen_differential_case (fun (caps, flows) ->
      let capacity l = caps.(l) in
      let fast = Fair_share.compute ~capacity flows in
      let slow = Fair_share.compute_reference ~capacity flows in
      Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-9) fast slow)

let prop_fair_share_differential_invariants =
  (* The production solver alone must satisfy the max-min witness on
     the wider input class too. *)
  qtest ~count:300 "fair share: invariants hold on degenerate inputs"
    gen_differential_case (fun (caps, flows) ->
      let capacity l = caps.(l) in
      let rates = Fair_share.compute ~capacity flows in
      let demand_ok =
        Array.for_all2
          (fun r (f : Fair_share.flow_input) ->
            r >= -1e-9 && r <= f.Fair_share.demand +. 1e-9)
          rates flows
      in
      let load_ok =
        List.for_all
          (fun (l, load) -> load <= caps.(l) +. 1e-6)
          (Fair_share.link_loads flows rates)
      in
      demand_ok && load_ok)

let prop_fair_share_arena_reuse_stable =
  (* Re-solving different problems through one arena must not leak
     state between calls. *)
  qtest ~count:100 "fair share: arena reuse is call-independent"
    QCheck2.Gen.(pair gen_differential_case gen_differential_case)
    (fun ((caps1, flows1), (caps2, flows2)) ->
      let arena = Fair_share.create_arena () in
      let solve caps flows =
        Fair_share.compute ~arena ~capacity:(fun l -> caps.(l)) flows
      in
      ignore (solve caps1 flows1);
      let second = solve caps2 flows2 in
      let fresh =
        Fair_share.compute ~arena:(Fair_share.create_arena ())
          ~capacity:(fun l -> caps2.(l))
          flows2
      in
      Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-12) second fresh)

(* --- Delta solver: random arrival/departure/reroute schedules ----------- *)

type delta_event =
  | Ev_add of float * int list
  | Ev_remove of int  (* picks the k-th alive flow, mod alive count *)
  | Ev_reroute of int * int list
  | Ev_flush

let gen_delta_schedule =
  let open QCheck2.Gen in
  let* n_links = int_range 1 8 in
  let* caps = array_size (return n_links) (float_range 0.5 10.0) in
  let* demand_pool = array_size (return 4) (float_range 0.0 6.0) in
  let gen_links =
    let* path_len = int_range 0 n_links in
    let* links = list_size (return path_len) (int_range 0 (n_links - 1)) in
    return (List.sort_uniq Int.compare links)
  in
  let gen_demand =
    oneof
      [
        (let* i = int_range 0 3 in
         return demand_pool.(i));
        float_range 0.0 6.0;
        return 0.0;
      ]
  in
  let* events =
    list_size (int_range 0 60)
      (frequency
         [
           ( 4,
             let* d = gen_demand in
             let* ls = gen_links in
             return (Ev_add (d, ls)) );
           ( 2,
             let* k = int_range 0 100 in
             return (Ev_remove k) );
           ( 2,
             let* k = int_range 0 100 in
             let* ls = gen_links in
             return (Ev_reroute (k, ls)) );
           (3, return Ev_flush);
         ])
  in
  return (caps, events)

(* Replays a schedule through Delta while mirroring the alive set, and
   at every flush asserts (a) flows outside [Delta.touched] kept
   bit-identical rates — the untouched region is physically unchanged
   — and (b) the full alive state matches the progressive-filling
   oracle. *)
let run_delta_schedule (caps, events) =
  let capacity l = caps.(l) in
  let delta = Fair_share.Delta.create ~capacity () in
  let alive : (int, Fair_share.flow_input) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let ok = ref true in
  let pick k =
    let ids =
      List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) alive [])
    in
    match ids with [] -> None | _ -> Some (List.nth ids (k mod List.length ids))
  in
  let flush () =
    let before =
      Hashtbl.fold
        (fun id _ acc ->
          (id, Int64.bits_of_float (Fair_share.Delta.rate delta ~id)) :: acc)
        alive []
    in
    Fair_share.Delta.flush delta;
    let touched = Fair_share.Delta.touched delta in
    List.iter
      (fun (id, bits) ->
        if
          (not (List.mem id touched))
          && Int64.bits_of_float (Fair_share.Delta.rate delta ~id) <> bits
        then ok := false)
      before;
    let ids =
      List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) alive [])
    in
    let flows = Array.of_list (List.map (Hashtbl.find alive) ids) in
    let want = Fair_share.compute_reference ~capacity flows in
    List.iteri
      (fun i id ->
        if Float.abs (Fair_share.Delta.rate delta ~id -. want.(i)) > 1e-9 then
          ok := false)
      ids
  in
  List.iter
    (fun ev ->
      match ev with
      | Ev_add (demand, links) ->
          let id = !next in
          incr next;
          Hashtbl.replace alive id { Fair_share.demand; links };
          Fair_share.Delta.add_flow delta ~id ~demand ~links
      | Ev_remove k -> (
          match pick k with
          | None -> ()
          | Some id ->
              Hashtbl.remove alive id;
              Fair_share.Delta.remove_flow delta ~id)
      | Ev_reroute (k, links) -> (
          match pick k with
          | None -> ()
          | Some id ->
              let f = Hashtbl.find alive id in
              Hashtbl.replace alive id { f with Fair_share.links };
              Fair_share.Delta.set_links delta ~id ~links)
      | Ev_flush -> flush ())
    events;
  flush ();
  !ok

let prop_fair_share_delta_schedule =
  qtest ~count:500
    "fair share: delta solves track the reference over random schedules"
    gen_delta_schedule run_delta_schedule

let test_delta_scoped_arrival () =
  (* Two disjoint bottlenecks; an arrival on one must not touch the
     other's flows. *)
  let capacity = capacity_all 1.0 in
  let d = Fair_share.Delta.create ~capacity () in
  Fair_share.Delta.add_flow d ~id:0 ~demand:2.0 ~links:[ 0 ];
  Fair_share.Delta.add_flow d ~id:1 ~demand:2.0 ~links:[ 1 ];
  Fair_share.Delta.flush d;
  check (Alcotest.float 1e-9) "f0 saturates" 1.0 (Fair_share.Delta.rate d ~id:0);
  Fair_share.Delta.add_flow d ~id:2 ~demand:2.0 ~links:[ 1 ];
  Fair_share.Delta.flush d;
  check (Alcotest.float 1e-9) "f1 halves" 0.5 (Fair_share.Delta.rate d ~id:1);
  check (Alcotest.float 1e-9) "f2 halves" 0.5 (Fair_share.Delta.rate d ~id:2);
  check (Alcotest.float 1e-9) "f0 keeps its rate" 1.0
    (Fair_share.Delta.rate d ~id:0);
  check Alcotest.bool "f0 outside the delta scope" false
    (List.mem 0 (Fair_share.Delta.touched d))

let test_delta_departure_propagates () =
  (* A departure frees capacity; the clamped survivors must be promoted
     and rise to the new level. *)
  let capacity = capacity_all 3.0 in
  let d = Fair_share.Delta.create ~capacity () in
  Fair_share.Delta.add_flow d ~id:0 ~demand:5.0 ~links:[ 0 ];
  Fair_share.Delta.add_flow d ~id:1 ~demand:5.0 ~links:[ 0 ];
  Fair_share.Delta.add_flow d ~id:2 ~demand:5.0 ~links:[ 0 ];
  Fair_share.Delta.flush d;
  check (Alcotest.float 1e-9) "thirds" 1.0 (Fair_share.Delta.rate d ~id:1);
  Fair_share.Delta.remove_flow d ~id:0;
  Fair_share.Delta.flush d;
  check (Alcotest.float 1e-9) "f1 rises" 1.5 (Fair_share.Delta.rate d ~id:1);
  check (Alcotest.float 1e-9) "f2 rises" 1.5 (Fair_share.Delta.rate d ~id:2);
  check (Alcotest.float 1e-9) "f0 gone" 0.0 (Fair_share.Delta.rate d ~id:0)

(* --- Fluid engine -------------------------------------------------------- *)

(* A 2-host dumbbell: h0 - s0 - s1 - h1, all 1 Gbps. *)
let dumbbell () =
  let topo = Topology.create () in
  let h0 = Topology.add_node topo ~ip:(Ipv4.of_octets 10 0 0 1) Topology.Host in
  let s0 = Topology.add_node topo Topology.Switch in
  let s1 = Topology.add_node topo Topology.Switch in
  let h1 = Topology.add_node topo ~ip:(Ipv4.of_octets 10 0 1 1) Topology.Host in
  let l0, _ = Topology.add_duplex topo ~capacity:1e9 h0 s0 in
  let l1, _ = Topology.add_duplex topo ~capacity:1e9 s0 s1 in
  let l2, _ = Topology.add_duplex topo ~capacity:1e9 s1 h1 in
  (topo, h0, h1, [ l0; l1; l2 ])

let key_i i =
  Flow_key.make
    ~src:(Ipv4.of_octets 10 0 0 1)
    ~dst:(Ipv4.of_octets 10 0 1 1)
    ~src_port:(1000 + i) ~dst_port:(2000 + i) ()

let test_fluid_single_flow_bits () =
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  let flow = ref None in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         flow := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 0) ~path)));
  ignore (Sched.run ~until:(Time.of_sec 10.0) sched);
  match !flow with
  | None -> Alcotest.fail "flow not started"
  | Some f ->
      check (Alcotest.float 1e6) "rate is full demand" 1e9 (Fluid.current_rate fluid f);
      check (Alcotest.float 1e7) "10 Gbit delivered in 10 s" 1e10
        (Fluid.delivered_bits fluid f)

let test_fluid_sharing_and_stop () =
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  let f1 = ref None and f2 = ref None in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         f1 := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 1) ~path)));
  ignore
    (Sched.schedule_at sched (Time.of_sec 2.0) (fun () ->
         f2 := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 2) ~path)));
  ignore
    (Sched.schedule_at sched (Time.of_sec 6.0) (fun () ->
         Fluid.stop_flow fluid (Option.get !f2)));
  ignore (Sched.run ~until:(Time.of_sec 8.0) sched);
  let f1 = Option.get !f1 and f2 = Option.get !f2 in
  (* f1: 2s at 1G, 4s at 0.5G, 2s at 1G = 6 Gbit.
     f2: 4s at 0.5G = 2 Gbit. *)
  check (Alcotest.float 2e7) "f1 bits" 6e9 (Fluid.delivered_bits fluid f1);
  check (Alcotest.float 2e7) "f2 bits" 2e9 (Fluid.delivered_bits fluid f2);
  check (Alcotest.float 1.0) "f1 back to full rate" 1e9
    (Fluid.current_rate fluid f1);
  check (Alcotest.float 1e-9) "stopped rate" 0.0 (Fluid.current_rate fluid f2);
  check Alcotest.int "one active flow" 1 (Fluid.flow_count fluid)

let test_fluid_reroute () =
  (* Diamond: h0-s0, s0-s1a-s2, s0-s1b-s2, s2-h1; reroute moves load. *)
  let topo = Topology.create () in
  let h0 = Topology.add_node topo ~ip:(Ipv4.of_octets 10 0 0 1) Topology.Host in
  let s0 = Topology.add_node topo Topology.Switch in
  let sa = Topology.add_node topo Topology.Switch in
  let sb = Topology.add_node topo Topology.Switch in
  let s2 = Topology.add_node topo Topology.Switch in
  let h1 = Topology.add_node topo ~ip:(Ipv4.of_octets 10 0 1 1) Topology.Host in
  let l_in, _ = Topology.add_duplex topo ~capacity:10e9 h0 s0 in
  let l0a, _ = Topology.add_duplex topo ~capacity:1e9 s0 sa in
  let la2, _ = Topology.add_duplex topo ~capacity:1e9 sa s2 in
  let l0b, _ = Topology.add_duplex topo ~capacity:1e9 s0 sb in
  let lb2, _ = Topology.add_duplex topo ~capacity:1e9 sb s2 in
  let l_out, _ = Topology.add_duplex topo ~capacity:10e9 s2 h1 in
  let path_a = [ l_in; l0a; la2; l_out ] in
  let path_b = [ l_in; l0b; lb2; l_out ] in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  let f1 = ref None and f2 = ref None in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         f1 := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 1) ~path:path_a);
         f2 := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 2) ~path:path_a)));
  (* Both collide on path A: 0.5 Gbps each. At t=5 move f2 to B. *)
  ignore
    (Sched.schedule_at sched (Time.of_sec 5.0) (fun () ->
         Fluid.set_path fluid (Option.get !f2) path_b));
  ignore (Sched.run ~until:(Time.of_sec 10.0) sched);
  let f1 = Option.get !f1 and f2 = Option.get !f2 in
  check (Alcotest.float 1.0) "f1 full after reroute" 1e9 (Fluid.current_rate fluid f1);
  check (Alcotest.float 1.0) "f2 full after reroute" 1e9 (Fluid.current_rate fluid f2);
  (* 5s at 0.5 + 5s at 1.0 = 7.5 Gbit each *)
  check (Alcotest.float 2e7) "f1 bits" 7.5e9 (Fluid.delivered_bits fluid f1);
  check (Alcotest.float 2e7) "f2 bits" 7.5e9 (Fluid.delivered_bits fluid f2);
  check (Alcotest.float 1.0) "link a carries f1 only" 1e9
    (Fluid.link_load fluid l0a.Topology.link_id);
  check (Alcotest.float 1e-6) "utilization" 1.0
    (Fluid.link_utilization fluid l0a.Topology.link_id)

let test_finite_flow_exact_completion () =
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  let completed = ref [] in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         ignore
           (Fluid.start_finite_flow ~demand:1e9 fluid ~key:(key_i 0) ~path
              ~size_bits:1e9 ~on_complete:(fun f ->
                completed := (Time.to_sec (Sched.now sched), f) :: !completed))));
  ignore (Sched.run ~until:(Time.of_sec 5.0) sched);
  match !completed with
  | [ (at, f) ] ->
      check (Alcotest.float 1e-6) "1 Gbit at 1 Gbps completes at 1s" 1.0 at;
      check (Alcotest.float 1e3) "delivered exactly the size" 1e9
        f.Flow.delivered_bits;
      check Alcotest.bool "flow stopped" false f.Flow.active;
      check Alcotest.int "no active flows left" 0 (Fluid.flow_count fluid);
      check (Alcotest.float 1e4) "total accounts completed flows" 1e9
        (Fluid.total_delivered_bits fluid)
  | other -> Alcotest.failf "expected one completion, got %d" (List.length other)

let test_finite_flows_sharing_eta_reaim () =
  (* Two finite flows share the bottleneck at 0.5 Gbps each; when the
     small one finishes the big one's completion must be re-aimed to
     the faster rate.
     small: 0.5 Gbit -> done at t=1. big: 1.5 Gbit: 0.5 by t=1, then
     1 Gbit at full rate -> done at t=2. *)
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  let times = ref [] in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         ignore
           (Fluid.start_finite_flow ~demand:1e9 fluid ~key:(key_i 1) ~path
              ~size_bits:0.5e9 ~on_complete:(fun _ ->
                times := ("small", Time.to_sec (Sched.now sched)) :: !times));
         ignore
           (Fluid.start_finite_flow ~demand:1e9 fluid ~key:(key_i 2) ~path
              ~size_bits:1.5e9 ~on_complete:(fun _ ->
                times := ("big", Time.to_sec (Sched.now sched)) :: !times))));
  ignore (Sched.run ~until:(Time.of_sec 5.0) sched);
  match List.rev !times with
  | [ ("small", t1); ("big", t2) ] ->
      check (Alcotest.float 1e-5) "small at 1s" 1.0 t1;
      check (Alcotest.float 1e-5) "big re-aimed to 2s" 2.0 t2
  | other -> Alcotest.failf "unexpected completions (%d)" (List.length other)

let test_finite_flow_stop_before_completion () =
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  let fired = ref 0 in
  let flow = ref None in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         flow :=
           Some
             (Fluid.start_finite_flow ~demand:1e9 fluid ~key:(key_i 0) ~path
                ~size_bits:10e9 ~on_complete:(fun _ -> incr fired))));
  ignore
    (Sched.schedule_at sched (Time.of_sec 2.0) (fun () ->
         Fluid.stop_flow fluid (Option.get !flow)));
  ignore (Sched.run ~until:(Time.of_sec 20.0) sched);
  check Alcotest.int "manual stop suppresses completion" 0 !fired;
  check (Alcotest.float 1e4) "partial delivery recorded" 2e9
    (Option.get !flow).Flow.delivered_bits

let test_fluid_sampling () =
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  Fluid.start_sampling fluid ~every:(Time.of_sec 1.0);
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         ignore (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 0) ~path)));
  ignore (Sched.run ~until:(Time.of_sec 5.0) sched);
  let series = Fluid.aggregate_series fluid in
  check Alcotest.int "samples at 0..5s" 6 (Horse_stats.Series.length series);
  check (Alcotest.float 1.0) "sampled aggregate" 1e9
    (Horse_stats.Series.max_value series);
  (* per-host series exists for the destination *)
  let topo_dst = 3 (* h1 in dumbbell *) in
  check Alcotest.bool "host series" true (Fluid.host_series fluid topo_dst <> None)

let test_fluid_validation () =
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  Alcotest.check_raises "bad demand"
    (Invalid_argument "Fluid.start_flow: demand <= 0") (fun () ->
      ignore (Fluid.start_flow ~demand:0.0 fluid ~key:(key_i 0) ~path));
  Alcotest.check_raises "discontiguous path"
    (Invalid_argument "Fluid: discontiguous path") (fun () ->
      ignore
        (Fluid.start_flow fluid ~key:(key_i 0) ~path:[ List.nth path 0; List.nth path 2 ]))

let test_fluid_coalescing () =
  (* A burst of k flow events inside one scheduler instant must cost
     one max-min solve; the eager engine pays k. *)
  let k = 10 in
  let run ~eager =
    let topo, _, _, path = dumbbell () in
    let sched = Sched.create () in
    let fluid = Fluid.create ~eager sched topo in
    ignore
      (Sched.schedule_at sched Time.zero (fun () ->
           for i = 0 to k - 1 do
             ignore (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i i) ~path)
           done));
    ignore (Sched.run ~until:(Time.of_sec 1.0) sched);
    fluid
  in
  let coalesced = run ~eager:false in
  check Alcotest.int "k requests recorded" k
    (Fluid.recompute_requests coalesced);
  check Alcotest.int "one solve for the burst" 1
    (Fluid.recompute_count coalesced);
  let eager = run ~eager:true in
  check Alcotest.int "eager solves once per mutation" k
    (Fluid.recompute_count eager);
  (* Both engines end at identical allocations. *)
  List.iter2
    (fun a b ->
      check (Alcotest.float 1.0) "same rate either way"
        (Fluid.current_rate eager a)
        (Fluid.current_rate coalesced b))
    (Fluid.active_flows eager)
    (Fluid.active_flows coalesced)

let test_fluid_coalesced_reads_are_fresh () =
  (* Reading a rate inside the mutating instant must observe the
     post-solve allocation even though the deferred flush has not run
     yet. *)
  let topo, _, _, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         let f1 = Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 1) ~path in
         let f2 = Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 2) ~path in
         check (Alcotest.float 1.0) "f1 sees the shared rate" 0.5e9
           (Fluid.current_rate fluid f1);
         check (Alcotest.float 1.0) "f2 sees the shared rate" 0.5e9
           (Fluid.current_rate fluid f2)));
  ignore (Sched.run ~until:(Time.of_sec 1.0) sched)

let test_fluid_indexes_after_churn () =
  (* find_flow / flows_on_link / host_rx_rate are backed by indexes
     now; churn (start, duplicate keys, stop) must keep them exact. *)
  let topo, _, h1, path = dumbbell () in
  let sched = Sched.create () in
  let fluid = Fluid.create sched topo in
  let l0 = (List.hd path).Topology.link_id in
  let fa = ref None and fb = ref None and fdup = ref None in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         fa := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 1) ~path);
         fb := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 2) ~path);
         (* Same 5-tuple as fa: the newest binding must win lookups. *)
         fdup := Some (Fluid.start_flow ~demand:1e9 fluid ~key:(key_i 1) ~path)));
  ignore (Sched.run ~until:(Time.of_sec 1.0) sched);
  let fa = Option.get !fa and fb = Option.get !fb and fdup = Option.get !fdup in
  check Alcotest.int "three flows cross the access link" 3
    (List.length (Fluid.flows_on_link fluid l0));
  (match Fluid.find_flow fluid (key_i 1) with
  | Some f -> check Alcotest.int "newest duplicate wins" fdup.Flow.id f.Flow.id
  | None -> Alcotest.fail "key 1 not found");
  Fluid.stop_flow fluid fdup;
  (match Fluid.find_flow fluid (key_i 1) with
  | Some f -> check Alcotest.int "older binding resurfaces" fa.Flow.id f.Flow.id
  | None -> Alcotest.fail "key 1 lost after stopping the duplicate");
  Fluid.stop_flow fluid fa;
  check Alcotest.bool "key 1 gone once both stopped" true
    (Fluid.find_flow fluid (key_i 1) = None);
  check Alcotest.int "one flow left on the link" 1
    (List.length (Fluid.flows_on_link fluid l0));
  check Alcotest.int "completed accumulator" 2
    (Fluid.completed_flow_count fluid);
  check (Alcotest.float 1.0) "host rate equals the survivor" 1e9
    (Fluid.host_rx_rate fluid h1.Topology.id);
  check (Alcotest.float 1.0) "fb holds the full link" 1e9
    (Fluid.current_rate fluid fb)

(* --- Packet engine -------------------------------------------------------- *)

let test_packet_engine_delivery () =
  let topo, h0, h1, path = dumbbell () in
  let sched = Sched.create () in
  let engine = Packet_engine.create sched topo () in
  (* Static routes along the dumbbell. *)
  let dst_ip = Ipv4.of_octets 10 0 1 1 in
  List.iteri
    (fun i (l : Topology.link) ->
      let node = if i = 0 then h0.Topology.id else l.Topology.src in
      Fwd.set_route (Packet_engine.table engine node) (Prefix.host dst_ip)
        ~next_hops:[ l.Topology.link_id ])
    path;
  let key = key_i 0 in
  (* 100 Mbps of 1250-byte packets for 1 s = 10^4 packets... keep it
     small: 1 Mbps -> 100 packets. *)
  ignore
    (Packet_engine.start_stream engine ~key ~at:h0.Topology.id ~rate:1e6
       ~pkt_bytes:1250);
  ignore (Sched.run ~until:(Time.of_sec 1.0) sched);
  check Alcotest.int "all delivered" (Packet_engine.tx_packets engine / 3)
    (Packet_engine.rx_packets engine);
  check Alcotest.int "no drops" 0 (Packet_engine.drops engine);
  check Alcotest.bool "bytes at destination" true
    (Packet_engine.rx_bytes engine h1.Topology.id > 0);
  check Alcotest.int "nothing at source" 0
    (Packet_engine.rx_bytes engine h0.Topology.id)

let test_packet_engine_matches_fluid_uncongested () =
  (* On an uncongested path the packet engine and the fluid model must
     agree on delivered volume (within one packet). *)
  let rate = 8e6 and pkt_bytes = 1000 and seconds = 2.0 in
  let topo, h0, _, path = dumbbell () in
  let sched = Sched.create () in
  let engine = Packet_engine.create sched topo () in
  let dst_ip = Ipv4.of_octets 10 0 1 1 in
  List.iteri
    (fun i (l : Topology.link) ->
      let node = if i = 0 then h0.Topology.id else l.Topology.src in
      Fwd.set_route (Packet_engine.table engine node) (Prefix.host dst_ip)
        ~next_hops:[ l.Topology.link_id ])
    path;
  ignore
    (Packet_engine.start_stream engine ~key:(key_i 0) ~at:h0.Topology.id ~rate
       ~pkt_bytes);
  ignore (Sched.run ~until:(Time.of_sec seconds) sched);
  let packet_bits = float_of_int (Packet_engine.total_rx_bytes engine) *. 8.0 in
  let sched2 = Sched.create () in
  let fluid = Fluid.create sched2 topo in
  let flow = ref None in
  ignore
    (Sched.schedule_at sched2 Time.zero (fun () ->
         flow := Some (Fluid.start_flow ~demand:rate fluid ~key:(key_i 0) ~path)));
  ignore (Sched.run ~until:(Time.of_sec seconds) sched2);
  let fluid_bits = Fluid.delivered_bits fluid (Option.get !flow) in
  check
    (Alcotest.float (float_of_int (pkt_bytes * 8 * 2)))
    "engines agree" fluid_bits packet_bits

let test_packet_engine_tail_drop () =
  (* Two 1 Gbps streams into one 1 Gbps link with a small queue: about
     half the packets must drop. *)
  let topo = Topology.create () in
  let h0 = Topology.add_node topo ~ip:(Ipv4.of_octets 10 9 0 1) Topology.Host in
  let h1 = Topology.add_node topo ~ip:(Ipv4.of_octets 10 9 0 2) Topology.Host in
  let s = Topology.add_node topo Topology.Switch in
  let h2 = Topology.add_node topo ~ip:(Ipv4.of_octets 10 9 0 3) Topology.Host in
  let l0, _ = Topology.add_duplex topo ~capacity:1e9 h0 s in
  let l1, _ = Topology.add_duplex topo ~capacity:1e9 h1 s in
  let l2, _ = Topology.add_duplex topo ~capacity:1e9 s h2 in
  let sched = Sched.create () in
  let engine = Packet_engine.create ~queue_pkts:10 sched topo () in
  let dst = Ipv4.of_octets 10 9 0 3 in
  Fwd.set_route (Packet_engine.table engine h0.Topology.id) (Prefix.host dst)
    ~next_hops:[ l0.Topology.link_id ];
  Fwd.set_route (Packet_engine.table engine h1.Topology.id) (Prefix.host dst)
    ~next_hops:[ l1.Topology.link_id ];
  Fwd.set_route (Packet_engine.table engine s.Topology.id) (Prefix.host dst)
    ~next_hops:[ l2.Topology.link_id ];
  let mk i src =
    ignore
      (Packet_engine.start_stream engine
         ~key:
           (Flow_key.make ~src ~dst ~src_port:(7000 + i) ~dst_port:(8000 + i) ())
         ~at:(if i = 0 then h0.Topology.id else h1.Topology.id)
         ~rate:1e9 ~pkt_bytes:1500)
  in
  mk 0 (Ipv4.of_octets 10 9 0 1);
  mk 1 (Ipv4.of_octets 10 9 0 2);
  ignore (Sched.run ~until:(Time.of_ms 100) sched);
  let rx = Packet_engine.rx_packets engine in
  let drops = Packet_engine.drops engine in
  check Alcotest.bool "significant drops" true (drops > rx / 4);
  (* Delivered rate close to the bottleneck capacity. *)
  let delivered_rate =
    float_of_int (Packet_engine.total_rx_bytes engine) *. 8.0 /. 0.1
  in
  check Alcotest.bool "bottleneck saturated" true
    (delivered_rate > 0.9e9 && delivered_rate < 1.05e9)

let test_packet_engine_latency () =
  (* Store-and-forward over 3 links: delay = 3 x (tx + prop).
     1250 B at 1 Gbps = 10 us tx; prop 10 us -> 60 us end to end. *)
  let topo, h0, _, path = dumbbell () in
  let sched = Sched.create () in
  let engine = Packet_engine.create sched topo () in
  let dst_ip = Ipv4.of_octets 10 0 1 1 in
  List.iteri
    (fun i (l : Topology.link) ->
      let node = if i = 0 then h0.Topology.id else l.Topology.src in
      Fwd.set_route (Packet_engine.table engine node) (Prefix.host dst_ip)
        ~next_hops:[ l.Topology.link_id ])
    path;
  Packet_engine.inject engine ~at:h0.Topology.id ~key:(key_i 0) ~bytes_len:1250;
  ignore (Sched.run ~until:(Time.of_ms 10) sched);
  check Alcotest.int "delivered" 1 (Packet_engine.rx_packets engine);
  check (Alcotest.float 1e-9) "exact store-and-forward latency" 60e-6
    (Packet_engine.mean_delay engine);
  check (Alcotest.float 1e-9) "max equals mean for one packet" 60e-6
    (Packet_engine.max_delay engine)

let test_packet_engine_queueing_delay () =
  (* Back-to-back burst into one link: the n-th packet waits behind
     n-1 transmissions, so mean delay grows beyond the unloaded
     latency. *)
  let topo, h0, _, path = dumbbell () in
  let sched = Sched.create () in
  let engine = Packet_engine.create sched topo () in
  let dst_ip = Ipv4.of_octets 10 0 1 1 in
  List.iteri
    (fun i (l : Topology.link) ->
      let node = if i = 0 then h0.Topology.id else l.Topology.src in
      Fwd.set_route (Packet_engine.table engine node) (Prefix.host dst_ip)
        ~next_hops:[ l.Topology.link_id ])
    path;
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         for _ = 1 to 10 do
           Packet_engine.inject engine ~at:h0.Topology.id ~key:(key_i 0)
             ~bytes_len:1250
         done));
  ignore (Sched.run ~until:(Time.of_ms 10) sched);
  check Alcotest.int "all delivered" 10 (Packet_engine.rx_packets engine);
  check Alcotest.bool "queueing inflates the tail" true
    (Packet_engine.max_delay engine > 100e-6);
  check Alcotest.bool "mean above unloaded latency" true
    (Packet_engine.mean_delay engine > 60e-6)

let test_packet_engine_no_route_drops () =
  let topo, h0, _, _ = dumbbell () in
  let sched = Sched.create () in
  let engine = Packet_engine.create sched topo () in
  Packet_engine.inject engine ~at:h0.Topology.id ~key:(key_i 0) ~bytes_len:100;
  ignore (Sched.run ~until:(Time.of_ms 10) sched);
  check Alcotest.int "dropped" 1 (Packet_engine.drops engine);
  check Alcotest.int "not delivered" 0 (Packet_engine.rx_packets engine)

let () =
  Alcotest.run "horse_dataplane"
    [
      ( "fwd",
        [
          Alcotest.test_case "lpm order" `Quick test_fwd_lpm_order;
          Alcotest.test_case "remove/replace" `Quick test_fwd_remove_and_replace;
          Alcotest.test_case "lookup_select" `Quick test_fwd_lookup_select;
          Alcotest.test_case "empty group rejected" `Quick
            test_fwd_empty_group_rejected;
          prop_fwd_matches_naive;
        ] );
      ( "fair_share",
        [
          Alcotest.test_case "single bottleneck" `Quick
            test_fair_share_single_bottleneck;
          Alcotest.test_case "demand limited" `Quick test_fair_share_demand_limited;
          Alcotest.test_case "two bottlenecks" `Quick test_fair_share_two_bottlenecks;
          Alcotest.test_case "cascade" `Quick test_fair_share_cascade;
          Alcotest.test_case "empty path" `Quick test_fair_share_empty_path;
          Alcotest.test_case "zero demand" `Quick test_fair_share_zero_demand;
          prop_fair_share_feasible;
          prop_fair_share_maxmin_bottleneck;
          prop_fair_share_differential;
          prop_fair_share_differential_invariants;
          prop_fair_share_arena_reuse_stable;
          prop_fair_share_delta_schedule;
          Alcotest.test_case "delta: scoped arrival" `Quick
            test_delta_scoped_arrival;
          Alcotest.test_case "delta: departure propagates" `Quick
            test_delta_departure_propagates;
        ] );
      ( "fluid",
        [
          Alcotest.test_case "single flow bits" `Quick test_fluid_single_flow_bits;
          Alcotest.test_case "sharing and stop" `Quick test_fluid_sharing_and_stop;
          Alcotest.test_case "reroute" `Quick test_fluid_reroute;
          Alcotest.test_case "finite flow exact completion" `Quick
            test_finite_flow_exact_completion;
          Alcotest.test_case "finite flows re-aim on sharing" `Quick
            test_finite_flows_sharing_eta_reaim;
          Alcotest.test_case "manual stop of finite flow" `Quick
            test_finite_flow_stop_before_completion;
          Alcotest.test_case "sampling" `Quick test_fluid_sampling;
          Alcotest.test_case "validation" `Quick test_fluid_validation;
          Alcotest.test_case "recompute coalescing" `Quick test_fluid_coalescing;
          Alcotest.test_case "coalesced reads are fresh" `Quick
            test_fluid_coalesced_reads_are_fresh;
          Alcotest.test_case "indexes after churn" `Quick
            test_fluid_indexes_after_churn;
        ] );
      ( "packet_engine",
        [
          Alcotest.test_case "delivery" `Quick test_packet_engine_delivery;
          Alcotest.test_case "agrees with fluid" `Quick
            test_packet_engine_matches_fluid_uncongested;
          Alcotest.test_case "tail drop at bottleneck" `Quick
            test_packet_engine_tail_drop;
          Alcotest.test_case "no route drops" `Quick
            test_packet_engine_no_route_drops;
          Alcotest.test_case "exact latency" `Quick test_packet_engine_latency;
          Alcotest.test_case "queueing delay" `Quick
            test_packet_engine_queueing_delay;
        ] );
    ]
