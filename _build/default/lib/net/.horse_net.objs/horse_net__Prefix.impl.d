lib/net/prefix.ml: Format Int Int32 Ipv4 Option Printf String
