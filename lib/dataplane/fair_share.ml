type flow_input = { demand : float; links : int list }

(* ------------------------------------------------------------------ *)
(* Reference implementation: textbook progressive filling.            *)
(* Kept verbatim for differential testing of the production solver.   *)
(* ------------------------------------------------------------------ *)

(* Per-link bookkeeping, maintained incrementally as flows freeze so
   each progressive-filling round is O(#links + #flows). *)
type link_state = {
  cap : float;
  mutable frozen_load : float;
  mutable unfrozen : int;
}

let compute_reference ~capacity flows =
  let n = Array.length flows in
  let rates = Array.make n 0.0 in
  let frozen = Array.make n false in
  let links : (int, link_state) Hashtbl.t = Hashtbl.create 64 in
  let link_state l =
    match Hashtbl.find_opt links l with
    | Some s -> s
    | None ->
        let cap = capacity l in
        if cap <= 0.0 then
          invalid_arg "Fair_share.compute: non-positive capacity";
        let s = { cap; frozen_load = 0.0; unfrozen = 0 } in
        Hashtbl.add links l s;
        s
  in
  Array.iter
    (fun f ->
      if f.demand < 0.0 then invalid_arg "Fair_share.compute: negative demand";
      List.iter (fun l -> (link_state l).unfrozen <- (link_state l).unfrozen + 1) f.links)
    flows;
  let n_unfrozen = ref n in
  let freeze i rate =
    rates.(i) <- rate;
    frozen.(i) <- true;
    decr n_unfrozen;
    List.iter
      (fun l ->
        let s = link_state l in
        s.frozen_load <- s.frozen_load +. rate;
        s.unfrozen <- s.unfrozen - 1)
      flows.(i).links
  in
  (* Zero-demand and pathless flows are trivially assigned. *)
  Array.iteri
    (fun i f ->
      if f.demand = 0.0 then freeze i 0.0
      else if f.links = [] then freeze i f.demand)
    flows;
  while !n_unfrozen > 0 do
    let link_min = ref None in
    Hashtbl.iter
      (fun l s ->
        if s.unfrozen > 0 then begin
          let share =
            Float.max 0.0 (s.cap -. s.frozen_load) /. float_of_int s.unfrozen
          in
          match !link_min with
          | None -> link_min := Some (l, share)
          | Some (_, best) -> if share < best then link_min := Some (l, share)
        end)
      links;
    let demand_min = ref None in
    Array.iteri
      (fun i f ->
        if not frozen.(i) then
          match !demand_min with
          | None -> demand_min := Some f.demand
          | Some d -> if f.demand < d then demand_min := Some f.demand)
      flows;
    let freeze_at_demand d =
      Array.iteri
        (fun i f -> if (not frozen.(i)) && f.demand = d then freeze i d)
        flows
    in
    match (!link_min, !demand_min) with
    | None, None -> assert false (* n_unfrozen > 0 implies a min demand *)
    | None, Some d -> freeze_at_demand d
    | Some (_, s), Some d when d <= s -> freeze_at_demand d
    | Some (bottleneck, s), _ ->
        Array.iteri
          (fun i f ->
            if (not frozen.(i)) && List.memq bottleneck f.links then freeze i s)
          flows
  done;
  rates

(* ------------------------------------------------------------------ *)
(* Production solver: sorted-demand water filling over dense arrays.  *)
(* ------------------------------------------------------------------ *)

(* The arena holds every scratch buffer the solver needs, grown
   geometrically and reused across calls, so the hot path (one solve
   per fluid-dataplane change instant) allocates only the result
   array. Link ids are mapped to dense indices through one Hashtbl
   that is cleared — never re-created — per call. *)
type arena = {
  mutable link_idx : (int, int) Hashtbl.t;  (* link id -> dense index *)
  mutable cap : float array;            (* per dense link *)
  mutable frozen_load : float array;
  mutable unfrozen : int array;
  mutable lf_off : int array;           (* CSR link -> member flows *)
  mutable lf_fill : int array;
  mutable lf_flow : int array;
  mutable fl_off : int array;           (* CSR flow -> dense links *)
  mutable fl_link : int array;
  mutable frozen : bool array;
  mutable order : int array;            (* flow indices by demand asc *)
}

let create_arena () =
  {
    link_idx = Hashtbl.create 256;
    cap = Array.make 64 0.0;
    frozen_load = Array.make 64 0.0;
    unfrozen = Array.make 64 0;
    lf_off = Array.make 65 0;
    lf_fill = Array.make 64 0;
    lf_flow = Array.make 64 0;
    fl_off = Array.make 65 0;
    fl_link = Array.make 64 0;
    frozen = Array.make 64 false;
    order = Array.make 64 0;
  }

let grown gen a n =
  if Array.length a >= n then a
  else begin
    let b = gen (2 * n) in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grown_f a n = grown (fun n -> Array.make n 0.0) a n
let grown_i a n = grown (fun n -> Array.make n 0) a n
let grown_b a n = grown (fun n -> Array.make n false) a n

(* In-place insertion-plus-heapsort hybrid is overkill here: demands
   repeat heavily (uniform TE workloads), so a simple bottom-up
   heapsort over [order.(0..n-1)] keyed by demand keeps the arena
   allocation-free. *)
let sort_by_demand order n key =
  let lt i j = key order.(i) < key order.(j) in
  let swap i j =
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  in
  let rec sift_down i len =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let largest = ref i in
    if l < len && lt !largest l then largest := l;
    if r < len && lt !largest r then largest := r;
    if !largest <> i then begin
      swap i !largest;
      sift_down !largest len
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift_down i n
  done;
  for last = n - 1 downto 1 do
    swap 0 last;
    sift_down 0 last
  done

let compute_with arena ~capacity flows =
  let n = Array.length flows in
  let rates = Array.make n 0.0 in
  if n = 0 then rates
  else begin
    Hashtbl.clear arena.link_idx;
    (* Pass 1: total path length, validation. *)
    let total = ref 0 in
    Array.iter
      (fun f ->
        if f.demand < 0.0 then
          invalid_arg "Fair_share.compute: negative demand";
        List.iter (fun _ -> incr total) f.links)
      flows;
    let total = !total in
    arena.fl_off <- grown_i arena.fl_off (n + 1);
    arena.fl_link <- grown_i arena.fl_link (max 1 total);
    arena.frozen <- grown_b arena.frozen n;
    arena.order <- grown_i arena.order n;
    let fl_off = arena.fl_off
    and frozen = arena.frozen
    and order = arena.order in
    (* Pass 2: dense link ids + flow->link CSR. *)
    let n_links = ref 0 in
    let pos = ref 0 in
    Array.iteri
      (fun i f ->
        fl_off.(i) <- !pos;
        frozen.(i) <- false;
        order.(i) <- i;
        List.iter
          (fun l ->
            let li =
              match Hashtbl.find_opt arena.link_idx l with
              | Some li -> li
              | None ->
                  let c = capacity l in
                  if c <= 0.0 then
                    invalid_arg "Fair_share.compute: non-positive capacity";
                  let li = !n_links in
                  incr n_links;
                  arena.cap <- grown_f arena.cap !n_links;
                  arena.frozen_load <- grown_f arena.frozen_load !n_links;
                  arena.unfrozen <- grown_i arena.unfrozen !n_links;
                  arena.lf_fill <- grown_i arena.lf_fill !n_links;
                  arena.cap.(li) <- c;
                  arena.frozen_load.(li) <- 0.0;
                  arena.unfrozen.(li) <- 0;
                  arena.lf_fill.(li) <- 0;
                  Hashtbl.add arena.link_idx l li;
                  li
            in
            arena.fl_link.(!pos) <- li;
            incr pos;
            arena.unfrozen.(li) <- arena.unfrozen.(li) + 1;
            arena.lf_fill.(li) <- arena.lf_fill.(li) + 1)
          f.links)
      flows;
    fl_off.(n) <- !pos;
    let n_links = !n_links in
    let cap = arena.cap
    and frozen_load = arena.frozen_load
    and unfrozen = arena.unfrozen
    and fl_link = arena.fl_link in
    (* Pass 3: link->flow CSR from the per-link counts. *)
    arena.lf_off <- grown_i arena.lf_off (n_links + 1);
    arena.lf_flow <- grown_i arena.lf_flow (max 1 total);
    let lf_off = arena.lf_off and lf_fill = arena.lf_fill in
    let acc = ref 0 in
    for li = 0 to n_links - 1 do
      lf_off.(li) <- !acc;
      acc := !acc + lf_fill.(li);
      lf_fill.(li) <- lf_off.(li)
    done;
    lf_off.(n_links) <- !acc;
    for i = 0 to n - 1 do
      for k = fl_off.(i) to fl_off.(i + 1) - 1 do
        let li = fl_link.(k) in
        arena.lf_flow.(lf_fill.(li)) <- i;
        lf_fill.(li) <- lf_fill.(li) + 1
      done
    done;
    let lf_flow = arena.lf_flow in
    (* Water filling. *)
    let n_unfrozen = ref n in
    let freeze i rate =
      rates.(i) <- rate;
      frozen.(i) <- true;
      decr n_unfrozen;
      for k = fl_off.(i) to fl_off.(i + 1) - 1 do
        let li = fl_link.(k) in
        frozen_load.(li) <- frozen_load.(li) +. rate;
        unfrozen.(li) <- unfrozen.(li) - 1
      done
    in
    Array.iteri
      (fun i f ->
        if f.demand = 0.0 then freeze i 0.0
        else if f.links = [] then freeze i f.demand)
      flows;
    sort_by_demand order n (fun i -> flows.(i).demand);
    let ptr = ref 0 in
    while !n_unfrozen > 0 do
      (* Bottleneck link: minimal equal share among remaining flows. *)
      let level = ref infinity and bott = ref (-1) in
      for li = 0 to n_links - 1 do
        if unfrozen.(li) > 0 then begin
          let share =
            Float.max 0.0 (cap.(li) -. frozen_load.(li))
            /. float_of_int unfrozen.(li)
          in
          if share < !level then begin
            level := share;
            bott := li
          end
        end
      done;
      while !ptr < n && frozen.(order.(!ptr)) do incr ptr done;
      (* !n_unfrozen > 0 guarantees !ptr < n here. *)
      let dmin = flows.(order.(!ptr)).demand in
      if !bott < 0 || dmin <= !level then begin
        (* As the water rises to [level], every flow whose demand sits
           below it saturates at that demand without any link filling
           up first; the sorted order lets us freeze the whole batch
           in one sweep instead of one progressive-filling round per
           distinct demand. *)
        let threshold = if !bott < 0 then dmin else !level in
        let continue = ref true in
        while !continue && !ptr < n do
          let i = order.(!ptr) in
          if frozen.(i) then incr ptr
          else if flows.(i).demand <= threshold then begin
            freeze i flows.(i).demand;
            incr ptr
          end
          else continue := false
        done
      end
      else begin
        (* The bottleneck saturates first: its members freeze at the
           equal share. *)
        let b = !bott in
        for k = lf_off.(b) to lf_off.(b + 1) - 1 do
          let i = lf_flow.(k) in
          if not frozen.(i) then freeze i !level
        done
      end
    done;
    rates
  end

let default_arena = lazy (create_arena ())

let compute ?arena ~capacity flows =
  let arena =
    match arena with Some a -> a | None -> Lazy.force default_arena
  in
  compute_with arena ~capacity flows

(* ------------------------------------------------------------------ *)
(* Delta solver: persistent bottleneck state, event-scoped resolves.  *)
(* ------------------------------------------------------------------ *)

module Delta = struct
  type dflow = {
    fid : int;
    demand : float;
    mutable flinks : int list;
    mutable rate : float;
  }

  type dlink = {
    lcap : float;
    mutable level : float;
        (* water level at which the link last saturated as the selected
           bottleneck; [infinity] when its members all froze
           demand-limited (residual may still be zero). *)
    mutable lload : float;
        (* sum of member rates. Recomputed exactly (ascending fid
           order) whenever the link is in a solve; adjusted by the
           event's own exact delta on fast-path commits. Only ever
           compared against [lcap], never fed into rate arithmetic, so
           ulp-level reassociation drift is harmless: it can only flip
           a marginal fast/slow decision, and the slow path is always
           correct. *)
    lmembers : (int, dflow) Hashtbl.t;
  }

  type stats = {
    solves : int;
    events : int;
    flows_touched : int;
    links_touched : int;
    expansions : int;
    promotions : int;
  }

  type t = {
    capacity : int -> float;
    dflows : (int, dflow) Hashtbl.t;
    dlinks : (int, dlink) Hashtbl.t;
    mutable seed_flows : int list;  (* dirtied since the last flush *)
    mutable seed_links : int list;
    mutable fast_touched : int list;
        (* flows committed by the fast path since the last flush *)
    mutable pending_fast_flows : int;
    mutable pending_fast_links : int;
        (* fast-path work, folded into the stats at the next flush so
           callers diffing stats around a solve see it *)
    mutable last_touched : int list;
    mutable s_solves : int;
    mutable s_events : int;
    mutable s_flows_touched : int;
    mutable s_links_touched : int;
    mutable s_expansions : int;
    mutable s_promotions : int;
  }

  let create ~capacity () =
    {
      capacity;
      dflows = Hashtbl.create 1024;
      dlinks = Hashtbl.create 256;
      seed_flows = [];
      seed_links = [];
      fast_touched = [];
      pending_fast_flows = 0;
      pending_fast_links = 0;
      last_touched = [];
      s_solves = 0;
      s_events = 0;
      s_flows_touched = 0;
      s_links_touched = 0;
      s_expansions = 0;
      s_promotions = 0;
    }

  let dlink t lid =
    match Hashtbl.find_opt t.dlinks lid with
    | Some l -> l
    | None ->
        let cap = t.capacity lid in
        if cap <= 0.0 then
          invalid_arg "Fair_share.Delta: non-positive capacity";
        let l =
          { lcap = cap; level = infinity; lload = 0.0;
            lmembers = Hashtbl.create 8 }
        in
        Hashtbl.add t.dlinks lid l;
        l

  (* Fast paths: an event whose links all sit strictly below
     saturation (level = infinity, and any added load fits in the
     residual) cannot change the bottleneck set — the new/removed/
     rerouted flow is demand-limited and every other flow's rate is
     untouched, so the event commits in O(path) with no water-fill at
     all. This is the common case for real workloads, where most links
     run below capacity; the scoped solve in {!flush} only runs for
     events that actually move a bottleneck. *)

  let fast_commit t ~id ~links =
    t.fast_touched <- id :: t.fast_touched;
    t.pending_fast_flows <- t.pending_fast_flows + 1;
    t.pending_fast_links <- t.pending_fast_links + List.length links

  let add_flow t ~id ~demand ~links =
    if demand < 0.0 then
      invalid_arg "Fair_share.Delta.add_flow: negative demand";
    if Hashtbl.mem t.dflows id then
      invalid_arg "Fair_share.Delta.add_flow: duplicate id";
    let f = { fid = id; demand; flinks = links; rate = 0.0 } in
    Hashtbl.add t.dflows id f;
    List.iter (fun lid -> Hashtbl.replace (dlink t lid).lmembers id f) links;
    t.s_events <- t.s_events + 1;
    let absorbed =
      List.for_all
        (fun lid ->
          let l = dlink t lid in
          l.level = infinity && l.lload +. demand <= l.lcap)
        links
    in
    if absorbed then begin
      f.rate <- demand;
      List.iter
        (fun lid ->
          let l = dlink t lid in
          l.lload <- l.lload +. demand)
        links;
      fast_commit t ~id ~links
    end
    else t.seed_flows <- id :: t.seed_flows

  let remove_flow t ~id =
    match Hashtbl.find_opt t.dflows id with
    | None -> ()
    | Some f ->
        Hashtbl.remove t.dflows id;
        let unsaturated =
          List.for_all
            (fun lid ->
              match Hashtbl.find_opt t.dlinks lid with
              | None -> true
              | Some l -> l.level = infinity)
            f.flinks
        in
        List.iter
          (fun lid ->
            match Hashtbl.find_opt t.dlinks lid with
            | None -> ()
            | Some l ->
                Hashtbl.remove l.lmembers id;
                if unsaturated then begin
                  l.lload <- l.lload -. f.rate;
                  if Hashtbl.length l.lmembers = 0 then
                    Hashtbl.remove t.dlinks lid
                end)
          f.flinks;
        t.s_events <- t.s_events + 1;
        if unsaturated then
          (* departure from links that never bind relaxes every
             constraint without moving a level: nobody's rate changes *)
          t.pending_fast_flows <- t.pending_fast_flows + 1
        else t.seed_links <- List.rev_append f.flinks t.seed_links

  let set_links t ~id ~links =
    match Hashtbl.find_opt t.dflows id with
    | None -> invalid_arg "Fair_share.Delta.set_links: unknown flow"
    | Some f ->
        let old_links = f.flinks in
        let old_unsaturated =
          (* rate = demand also rules out flows still waiting on their
             first solve, whose rate field is not yet meaningful *)
          f.rate = f.demand
          && List.for_all
               (fun lid ->
                 match Hashtbl.find_opt t.dlinks lid with
                 | None -> true
                 | Some l -> l.level = infinity)
               old_links
        in
        List.iter
          (fun lid ->
            match Hashtbl.find_opt t.dlinks lid with
            | None -> ()
            | Some l -> Hashtbl.remove l.lmembers id)
          old_links;
        f.flinks <- links;
        List.iter (fun lid -> Hashtbl.replace (dlink t lid).lmembers id f) links;
        t.s_events <- t.s_events + 1;
        let absorbed =
          old_unsaturated
          && List.for_all
               (fun lid ->
                 let l = dlink t lid in
                 l.level = infinity && l.lload +. f.rate <= l.lcap)
               links
        in
        if absorbed then begin
          List.iter
            (fun lid ->
              match Hashtbl.find_opt t.dlinks lid with
              | None -> ()
              | Some l ->
                  l.lload <- l.lload -. f.rate;
                  if Hashtbl.length l.lmembers = 0 then
                    Hashtbl.remove t.dlinks lid)
            old_links;
          List.iter
            (fun lid ->
              let l = dlink t lid in
              l.lload <- l.lload +. f.rate)
            links;
          fast_commit t ~id ~links
        end
        else begin
          t.seed_links <- List.rev_append old_links t.seed_links;
          t.seed_flows <- id :: t.seed_flows
        end

  let rate t ~id =
    match Hashtbl.find_opt t.dflows id with Some f -> f.rate | None -> 0.0

  let touched t = t.last_touched
  let flow_count t = Hashtbl.length t.dflows

  let stats t =
    {
      solves = t.s_solves;
      events = t.s_events;
      flows_touched = t.s_flows_touched;
      links_touched = t.s_links_touched;
      expansions = t.s_expansions;
      promotions = t.s_promotions;
    }

  (* One scoped water-fill over [n] flows with effective demands [eff]
     and dense link lists [fl]. Returns rates and per-dense-link
     saturation levels ([infinity] = never selected as bottleneck).
     Same sorted-demand arithmetic and demand-wins tie rule as
     [compute], and every freeze happens in ascending rate order, so a
     link's frozen load is a canonical ascending-order sum of its
     members' rates — which is what makes levels comparable across
     scoped and full solves. *)
  let waterfill n eff fl n_links cap lmem =
    let rates = Array.make n 0.0 in
    let levels = Array.make (max 1 n_links) infinity in
    let frozen = Array.make n false in
    let frozen_load = Array.make (max 1 n_links) 0.0 in
    let unfrozen = Array.make (max 1 n_links) 0 in
    Array.iter
      (Array.iter (fun li -> unfrozen.(li) <- unfrozen.(li) + 1))
      fl;
    let n_unfrozen = ref n in
    let freeze i r =
      rates.(i) <- r;
      frozen.(i) <- true;
      decr n_unfrozen;
      Array.iter
        (fun li ->
          frozen_load.(li) <- frozen_load.(li) +. r;
          unfrozen.(li) <- unfrozen.(li) - 1)
        fl.(i)
    in
    for i = 0 to n - 1 do
      if eff.(i) = 0.0 then freeze i 0.0
      else if Array.length fl.(i) = 0 then freeze i eff.(i)
    done;
    let order = Array.init n (fun i -> i) in
    sort_by_demand order n (fun i -> eff.(i));
    let ptr = ref 0 in
    while !n_unfrozen > 0 do
      let level = ref infinity and bott = ref (-1) in
      for li = 0 to n_links - 1 do
        if unfrozen.(li) > 0 then begin
          let share =
            Float.max 0.0 (cap.(li) -. frozen_load.(li))
            /. float_of_int unfrozen.(li)
          in
          if share < !level then begin
            level := share;
            bott := li
          end
        end
      done;
      while !ptr < n && frozen.(order.(!ptr)) do incr ptr done;
      let dmin = eff.(order.(!ptr)) in
      if !bott < 0 || dmin <= !level then begin
        let threshold = if !bott < 0 then dmin else !level in
        let continue = ref true in
        while !continue && !ptr < n do
          let i = order.(!ptr) in
          if frozen.(i) then incr ptr
          else if eff.(i) <= threshold then begin
            freeze i eff.(i);
            incr ptr
          end
          else continue := false
        done
      end
      else begin
        let b = !bott in
        levels.(b) <- !level;
        List.iter (fun i -> if not frozen.(i) then freeze i !level) lmem.(b)
      end
    done;
    (rates, levels)

  let flush t =
    let fast = t.fast_touched in
    t.fast_touched <- [];
    t.s_flows_touched <- t.s_flows_touched + t.pending_fast_flows;
    t.s_links_touched <- t.s_links_touched + t.pending_fast_links;
    t.pending_fast_flows <- 0;
    t.pending_fast_links <- 0;
    if t.seed_flows = [] && t.seed_links = [] then t.last_touched <- fast
    else begin
      (* Scope flows are fully re-solved (all their links join the
         in-solve set); every other member of an in-solve link is
         clamped at its previous rate, behaving exactly like a
         demand-limited flow whose external bottleneck is untouched. *)
      let scope : (int, dflow) Hashtbl.t = Hashtbl.create 64 in
      let insolve : (int, dlink) Hashtbl.t = Hashtbl.create 64 in
      let rec add_scope (f : dflow) =
        if not (Hashtbl.mem scope f.fid) then begin
          Hashtbl.add scope f.fid f;
          List.iter add_insolve f.flinks
        end
      and add_insolve lid =
        if not (Hashtbl.mem insolve lid) then
          Hashtbl.add insolve lid (dlink t lid)
      in
      List.iter
        (fun fid -> Option.iter add_scope (Hashtbl.find_opt t.dflows fid))
        t.seed_flows;
      List.iter add_insolve t.seed_links;
      t.seed_flows <- [];
      t.seed_links <- [];
      let stable = ref false in
      let first = ref true in
      while not !stable do
        if not !first then t.s_expansions <- t.s_expansions + 1;
        first := false;
        let clamped : (int, dflow) Hashtbl.t = Hashtbl.create 64 in
        Hashtbl.iter
          (fun _ (l : dlink) ->
            Hashtbl.iter
              (fun fid f ->
                if not (Hashtbl.mem scope fid) then
                  Hashtbl.replace clamped fid f)
              l.lmembers)
          insolve;
        (* Canonical flow order (scope first, then clamped, both by id)
           keeps the solve deterministic regardless of hash order. *)
        let sorted tbl =
          let a = Array.make (Hashtbl.length tbl) None in
          let i = ref 0 in
          Hashtbl.iter
            (fun _ f ->
              a.(!i) <- Some f;
              incr i)
            tbl;
          let a = Array.map Option.get a in
          Array.sort (fun (a : dflow) b -> Int.compare a.fid b.fid) a;
          a
        in
        let sf = sorted scope and cf = sorted clamped in
        let ns = Array.length sf in
        let n = ns + Array.length cf in
        let flows =
          Array.init n (fun i -> if i < ns then sf.(i) else cf.(i - ns))
        in
        let eff =
          Array.init n (fun i ->
              if i < ns then flows.(i).demand else flows.(i).rate)
        in
        (* Dense link ids over the in-solve set, in canonical
           first-reference order. Clamped flows keep only their
           in-solve links: at a fixpoint their rate is preserved, so
           their load on out-of-solve links is unchanged. *)
        let lidx : (int, int) Hashtbl.t = Hashtbl.create 64 in
        let lids = ref [] and n_links = ref 0 in
        let dense lid =
          match Hashtbl.find_opt lidx lid with
          | Some li -> li
          | None ->
              let li = !n_links in
              incr n_links;
              lids := lid :: !lids;
              Hashtbl.add lidx lid li;
              li
        in
        let fl =
          Array.mapi
            (fun i (f : dflow) ->
              let ls =
                if i < ns then f.flinks
                else List.filter (Hashtbl.mem insolve) f.flinks
              in
              Array.of_list (List.map dense ls))
            flows
        in
        let n_links = !n_links in
        let lid_of = Array.make (max 1 n_links) 0 in
        List.iteri (fun i lid -> lid_of.(n_links - 1 - i) <- lid) !lids;
        let cap = Array.map (fun lid -> (dlink t lid).lcap) lid_of in
        let lmem = Array.make (max 1 n_links) [] in
        Array.iteri
          (fun i links ->
            Array.iter (fun li -> lmem.(li) <- i :: lmem.(li)) links)
          fl;
        t.s_flows_touched <- t.s_flows_touched + n;
        t.s_links_touched <- t.s_links_touched + n_links;
        let rates, levels = waterfill n eff fl n_links cap lmem in
        (* Fixpoint checks: a clamped flow must reproduce its previous
           rate exactly, and no in-solve link's saturation level may
           change while it still has clamped members — either breach
           means the bottleneck structure shifted, so the breached
           flows join the scope and the solve expands. *)
        let promote : (int, dflow) Hashtbl.t = Hashtbl.create 8 in
        for i = ns to n - 1 do
          if rates.(i) <> flows.(i).rate then
            Hashtbl.replace promote flows.(i).fid flows.(i)
        done;
        for li = 0 to n_links - 1 do
          let l = Hashtbl.find insolve lid_of.(li) in
          if levels.(li) <> l.level then
            Hashtbl.iter
              (fun fid f ->
                if not (Hashtbl.mem scope fid) then
                  Hashtbl.replace promote fid f)
              l.lmembers
        done;
        if Hashtbl.length promote = 0 then begin
          for i = 0 to ns - 1 do
            sf.(i).rate <- rates.(i)
          done;
          Hashtbl.iter
            (fun lid (l : dlink) ->
              (l.level <-
                 (match Hashtbl.find_opt lidx lid with
                 | Some li -> levels.(li)
                 | None -> infinity));
              if Hashtbl.length l.lmembers = 0 then Hashtbl.remove t.dlinks lid
              else begin
                (* exact member-rate sum in ascending fid order — the
                   canonical order every solver freezes in — so the
                   fast path's residual checks start from a
                   reproducible baseline *)
                let fids =
                  Hashtbl.fold (fun fid _ acc -> fid :: acc) l.lmembers []
                  |> List.sort Int.compare
                in
                l.lload <-
                  List.fold_left
                    (fun acc fid ->
                      acc +. (Hashtbl.find l.lmembers fid).rate)
                    0.0 fids
              end)
            insolve;
          t.last_touched <-
            List.rev_append fast
              (Array.to_list (Array.map (fun f -> f.fid) sf));
          t.s_solves <- t.s_solves + 1;
          stable := true
        end
        else begin
          t.s_promotions <- t.s_promotions + Hashtbl.length promote;
          Hashtbl.iter (fun _ f -> add_scope f) promote
        end
      done
    end
end

let link_loads flows rates =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i f ->
      List.iter
        (fun l ->
          let cur = Option.value (Hashtbl.find_opt tbl l) ~default:0.0 in
          Hashtbl.replace tbl l (cur +. rates.(i)))
        f.links)
    flows;
  Hashtbl.fold (fun l v acc -> (l, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
