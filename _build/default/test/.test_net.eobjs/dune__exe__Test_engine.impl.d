test/test_engine.ml: Alcotest Array Event_queue Format Horse_engine Int List QCheck2 QCheck_alcotest Rng Sched Time Trace
