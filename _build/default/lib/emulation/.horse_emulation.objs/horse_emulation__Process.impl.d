lib/emulation/process.ml: Horse_engine List Sched
