(** The table-programming control protocol (a P4Runtime stand-in).

    Binary request/response messages carried over emulated control
    channels — so programming a P4 switch is control-plane traffic the
    Connection Manager observes, and table writes pull the hybrid
    clock into FTI mode exactly like FLOW_MODs do. *)

type request =
  | Hello
  | Insert of Interp.entry
  | Delete of { d_table : string; d_key : Interp.key_match list }
  | Counter_read of string

type response =
  | Ack
  | Nack of string
  | Counter_value of string * int

val encode_request : xid:int -> request -> Bytes.t
val decode_request : Bytes.t -> (int * request, string) result

val encode_response : xid:int -> response -> Bytes.t
val decode_response : Bytes.t -> (int * response, string) result

val request_equal : request -> request -> bool
val response_equal : response -> response -> bool
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
