(** The multicore engine: a {!Routed_fabric}-style BGP fabric sharded
    over a {!Horse_topo.Partition} and driven in deterministic
    lockstep by {!Horse_engine.Barrier}.

    Each shard owns a private scheduler (timing wheel, pollers,
    telemetry registry, causal graph) plus the speakers, processes and
    FIB tables of its nodes. Same-shard sessions use ordinary CM
    channels; sessions straddling the cut use split channels whose
    deliveries ride the barrier mailboxes. The shard structure is
    fixed by the partition alone — [domains] picks only the execution
    vehicle (sequential round-robin vs a domain pool), so [domains=1]
    and [domains=N] produce byte-identical fingerprints, causal
    hashes, mode timelines and fault traces. *)

open Horse_net
open Horse_engine
open Horse_topo

type t

val build :
  ?asn_base:int ->
  ?hold_time:Time.t ->
  ?mrai:Time.t ->
  ?packing:bool ->
  ?sched_config:Sched.config ->
  ?seed:int ->
  ?quantum:Time.t ->
  ?latency:Time.t ->
  partition:Partition.t ->
  originate:(int -> Prefix.t list) ->
  Topology.t ->
  t
(** Builds speakers, sessions and static routes exactly as
    {!Routed_fabric.build}, partitioned per shard. [quantum] (default
    1 ms) is the barrier epoch; [latency] (default 1 ms) the control
    channel latency.
    @raise Invalid_argument if [latency < quantum] (conservative
    lookahead would break) or the partition is invalid for the
    topology. *)

val start : t -> unit
(** Schedules every speaker's start at t=0 on its own shard. *)

val arm_convergence_checkers : ?check_every:Time.t -> t -> unit
(** Per-shard recurring checks (default 50 ms) that latch the virtual
    time at which the shard's FIBs became complete. *)

val arm_faults : ?check_every:Time.t -> t -> Horse_faults.Plan.t -> unit
(** Splits the plan per shard ({e Partition}/{e Heal} are expanded
    statically against the session list) and arms one injector per
    shard. The plan seed is copied into every slice and streams are
    keyed per site, so every site's flap/impairment sequence is
    identical to what the unsharded injector would draw. *)

val run : ?domains:int -> until:Time.t -> t -> unit
(** Drives all shards to [until] through the barrier. *)

(** {2 Merged views} — read after {!run} returns (the domain pool has
    been joined; cross-domain reads are safe). *)

val topo : t -> Topology.t
val n_shards : t -> int
val barrier : t -> Barrier.t
val shard_sched : t -> int -> Sched.t
val table : t -> int -> Horse_dataplane.Fwd.t
val all_prefixes : t -> Prefix.t list
val speakers : t -> (int * Horse_bgp.Speaker.t) list
val sessions_expected : t -> int
val sessions_established : t -> int
val fib_routes_installed : t -> int
val is_converged : t -> bool

val converged_at : t -> Time.t option
(** Max of the per-shard latch times; [None] until every shard has
    latched. *)

val fib_fingerprint : t -> string
(** Byte-compatible with {!Routed_fabric.fib_fingerprint}: the digest
    input is the same node-id-ordered table dump. *)

val causal_hash : t -> string
(** Digest over the per-shard causal hashes in shard order ("-" for a
    shard with tracing off). *)

val mode_timelines : t -> (int * string * string * string) list array
(** Per shard: [(at_us, from, to, reason)] per transition — wall time
    never enters, so timelines are replay-comparable. *)

val fault_traces : t -> string list array
val faults_injected : t -> int
val faults_skipped : t -> int
val control_messages : t -> int
val control_bytes : t -> int

val merged_registry : t -> Horse_telemetry.Registry.t
(** A fresh registry with every shard's metrics merged in
    ({!Horse_telemetry.Registry.merge_into}): counters summed, gauges
    maxed, histograms bucket-merged. *)

val fib_provenance : t -> (string * Prefix.t * int * Causal.id) list
(** [(node, prefix, shard, cause)] sorted by (node name, prefix); the
    cause id resolves against [shard]'s causal graph. *)

(** {2 The canned scenario} *)

type result = {
  pods : int;
  domains : int;
  shards : int;
  partition_name : string;
  setup_wall_s : float;
  run_wall_s : float;
  epochs : int;
  jumps : int;
  cross_messages : int;
  converged_at : Time.t option;
  fib_fingerprint : string;
  causal_hash : string;
  timelines : (int * string * string * string) list array;
  fault_trace : string list array;
  faults_injected : int;
  faults_skipped : int;
  control_messages : int;
  control_bytes : int;
  fib_writes : int;
  sessions_up : int;
  sessions_total : int;
  registry : Horse_telemetry.Registry.t;
}

val run_fat_tree :
  ?seed:int ->
  ?sched_config:Sched.config ->
  ?shards:int ->
  ?domains:int ->
  ?faults:Horse_faults.Plan.t ->
  pods:int ->
  duration:Time.t ->
  unit ->
  result
(** The BGP fat-tree convergence experiment (the [Bgp_ecmp] scenario's
    control plane, without the fluid data plane), sharded with
    {!Partition.fat_tree_pods} (default: one shard per pod) and run on
    [domains] domains. *)
