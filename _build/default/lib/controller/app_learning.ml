open Horse_net
open Horse_openflow

type t = {
  ctrl : Controller.t;
  priority : int;
  idle_timeout_s : int;
  learned : (int * Mac.t, int) Hashtbl.t;  (* (dpid, mac) -> port *)
  mutable floods : int;
  mutable unicasts : int;
}

let handle t sw (pi : Ofmsg.packet_in) =
  match Packet.decode pi.Ofmsg.data with
  | Error _ -> ()
  | Ok frame ->
      let eth = frame.Packet.eth in
      let dpid = Controller.dpid sw in
      (* Learn where the source lives. *)
      if not (Mac.is_multicast eth.Headers.Eth.src) then
        Hashtbl.replace t.learned (dpid, eth.Headers.Eth.src) pi.Ofmsg.in_port;
      let out_action =
        if Mac.is_multicast eth.Headers.Eth.dst then None
        else Hashtbl.find_opt t.learned (dpid, eth.Headers.Eth.dst)
      in
      (match out_action with
      | Some port ->
          t.unicasts <- t.unicasts + 1;
          Controller.send_flow_mod t.ctrl sw
            {
              Ofmsg.match_ =
                { Ofmatch.any with Ofmatch.m_eth_dst = Some eth.Headers.Eth.dst };
              cookie = 0;
              command = Ofmsg.Add;
              idle_timeout_s = t.idle_timeout_s;
              hard_timeout_s = 0;
              priority = t.priority;
              actions = [ Action.Output port ];
            };
          Controller.send_packet_out t.ctrl sw
            {
              Ofmsg.po_in_port = pi.Ofmsg.in_port;
              po_actions = [ Action.Output port ];
              po_data = pi.Ofmsg.data;
            }
      | None ->
          t.floods <- t.floods + 1;
          Controller.send_packet_out t.ctrl sw
            {
              Ofmsg.po_in_port = pi.Ofmsg.in_port;
              po_actions = [ Action.Flood ];
              po_data = pi.Ofmsg.data;
            })

let install ?(priority = 5) ?(idle_timeout_s = 60) ctrl =
  let t =
    {
      ctrl;
      priority;
      idle_timeout_s;
      learned = Hashtbl.create 64;
      floods = 0;
      unicasts = 0;
    }
  in
  Controller.on_packet_in ctrl (fun sw pi -> handle t sw pi);
  t

let lookup t ~dpid mac = Hashtbl.find_opt t.learned (dpid, mac)
let macs_learned t = Hashtbl.length t.learned
let floods t = t.floods
let unicasts t = t.unicasts
