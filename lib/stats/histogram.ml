(* The implementation moved to Horse_telemetry so the metrics registry
   can use it; this alias keeps the historical Horse_stats.Histogram
   path working. *)
include Horse_telemetry.Histogram
