(** Max-min fair bandwidth allocation.

    The fluid traffic model's rate assignment: every flow gets the
    largest rate such that (a) no link exceeds its capacity, (b) no
    flow exceeds its demand, and (c) a flow's rate can only be
    increased by decreasing the rate of a flow with an equal or
    smaller rate — the classic max-min fairness criterion that a
    network of fair queues converges to.

    Two implementations share the semantics: {!compute} is the
    production sorted-demand water-filling solver over dense arena
    buffers (the fluid hot path), {!compute_reference} is the textbook
    progressive-filling loop kept for differential testing. *)

type flow_input = {
  demand : float;  (** offered rate, bps; must be >= 0 *)
  links : int list;  (** directed link ids along the path; [] = unconstrained *)
}

type arena
(** Reusable scratch buffers for {!compute}: dense link indexing and
    CSR adjacency in both directions, grown geometrically and never
    shrunk, so a steady-state solve allocates only its result array.
    An arena is single-solver state — do not share one between
    concurrent solves (there is no concurrency in the simulator). *)

val create_arena : unit -> arena

val compute :
  ?arena:arena -> capacity:(int -> float) -> flow_input array -> float array
(** [compute ~capacity flows] returns the max-min rate of each flow,
    positionally. [capacity] gives the bps capacity of a link id and
    must be positive for every referenced link.

    Sorted-demand water filling: flows are ordered by demand once, and
    each round either saturates one bottleneck link or retires the
    whole batch of demand-limited flows below the current water level,
    so the round count is bounded by [#links + #distinct-demand-batches]
    rather than [#flows]. Without [?arena] a process-wide default
    arena is reused.

    @raise Invalid_argument on a negative demand or non-positive
    capacity. *)

val compute_reference :
  capacity:(int -> float) -> flow_input array -> float array
(** The original O(rounds × (flows + links)) progressive-filling
    implementation. Semantically identical to {!compute} (asserted by
    the differential property suite); kept as the testing oracle. *)

val link_loads : flow_input array -> float array -> (int * float) list
(** Total allocated rate per link id, for checking feasibility. *)
