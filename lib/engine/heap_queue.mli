(** Reference event queue: the binary min-heap {!Event_queue} used
    before the timing wheel, kept for the differential test suite.

    Semantics are contractually identical to {!Event_queue} — a pop
    stream ordered by (timestamp, insertion sequence), lazy O(1)
    cancellation, O(1) {!size}, and in-place {!reschedule} — so any
    divergence between the two under the same operation sequence is a
    bug in the wheel. Production code uses {!Event_queue}; nothing
    outside the tests should depend on this module. *)

type t
type handle

val create : unit -> t
val schedule : t -> Time.t -> (unit -> unit) -> handle
val cancel : handle -> unit
val is_cancelled : handle -> bool

val reschedule : handle -> Time.t -> unit
(** Re-aims the event at a new time, reusing its action. Equivalent to
    cancel + schedule (the event takes a fresh sequence number), and
    re-arms events that already fired or were cancelled. *)

val size : t -> int
val is_empty : t -> bool
val next_time : t -> Time.t option
val pop : t -> (Time.t * (unit -> unit)) option
val pop_until : t -> Time.t -> (Time.t * (unit -> unit)) option
val clear : t -> unit
