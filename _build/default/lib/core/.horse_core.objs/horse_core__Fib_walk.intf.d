lib/core/fib_walk.mli: Flow_key Fwd Horse_dataplane Horse_net Horse_topo Spf Topology
