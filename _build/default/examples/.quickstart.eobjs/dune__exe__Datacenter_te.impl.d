examples/datacenter_te.ml: Ascii Format Horse_core Horse_engine Horse_stats List Scenario Series Time
