(* Tests for horse_openflow: match semantics, the message codec, the
   flow table, and the switch agent over an emulated channel. *)

open Horse_net
open Horse_engine
open Horse_emulation
open Horse_openflow

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ip = Ipv4.of_string_exn
let p = Prefix.of_string_exn

let key_ab =
  Flow_key.make ~src:(ip "10.0.0.2") ~dst:(ip "10.1.0.2") ~src_port:1111
    ~dst_port:2222 ()

let fields ?(in_port = 1) key = Ofmatch.fields_of_key ~in_port key

(* --- Ofmatch ------------------------------------------------------------ *)

let test_match_any () =
  check Alcotest.bool "any matches" true (Ofmatch.matches Ofmatch.any (fields key_ab))

let test_match_exact_5tuple () =
  let m = Ofmatch.exact_5tuple key_ab in
  check Alcotest.bool "matches its own key" true (Ofmatch.matches m (fields key_ab));
  let other = { key_ab with Flow_key.src_port = 1112 } in
  check Alcotest.bool "different port misses" false
    (Ofmatch.matches m (fields other));
  let other = { key_ab with Flow_key.dst = ip "10.1.0.3" } in
  check Alcotest.bool "different dst misses" false
    (Ofmatch.matches m (fields other))

let test_match_prefix () =
  let m = Ofmatch.to_dst (p "10.1.0.0/16") in
  check Alcotest.bool "in prefix" true (Ofmatch.matches m (fields key_ab));
  let outside = { key_ab with Flow_key.dst = ip "10.2.0.2" } in
  check Alcotest.bool "outside prefix" false (Ofmatch.matches m (fields outside))

let test_match_in_port () =
  let m = { Ofmatch.any with Ofmatch.m_in_port = Some 3 } in
  check Alcotest.bool "right port" true
    (Ofmatch.matches m (fields ~in_port:3 key_ab));
  check Alcotest.bool "wrong port" false
    (Ofmatch.matches m (fields ~in_port:4 key_ab))

let gen_match =
  let open QCheck2.Gen in
  let opt g = option g in
  let* m_in_port = opt (int_range 1 48) in
  let* m_eth_type = opt (oneofl [ 0x0800; 0x0806 ]) in
  let* m_ip_src =
    opt (map2 (fun a l -> Prefix.make (Ipv4.of_int32 a) l) int32 (int_range 1 32))
  in
  let* m_ip_dst =
    opt (map2 (fun a l -> Prefix.make (Ipv4.of_int32 a) l) int32 (int_range 1 32))
  in
  let* m_ip_proto = opt (int_range 0 255) in
  let* m_tp_src = opt (int_range 0 65535) in
  let* m_tp_dst = opt (int_range 0 65535) in
  let* m_eth_src = opt (map (fun i -> Mac.of_index i) (int_bound 100000)) in
  let* m_eth_dst = opt (map (fun i -> Mac.of_index i) (int_bound 100000)) in
  return
    {
      Ofmatch.m_in_port;
      m_eth_src;
      m_eth_dst;
      m_eth_type;
      m_ip_src;
      m_ip_dst;
      m_ip_proto;
      m_tp_src;
      m_tp_dst;
    }

let prop_match_codec_roundtrip =
  qtest "ofmatch: 40-byte codec roundtrip" gen_match (fun m ->
      let buf = Bytes.make Ofmatch.size '\000' in
      Ofmatch.write buf 0 m;
      match Ofmatch.read buf 0 with
      | Ok m' -> Ofmatch.equal m m'
      | Error _ -> false)

let prop_match_exact_key_matches =
  let gen_key =
    let open QCheck2.Gen in
    let* src = map Ipv4.of_int32 int32 in
    let* dst = map Ipv4.of_int32 int32 in
    let* sp = int_range 0 65535 in
    let* dp = int_range 0 65535 in
    return (Flow_key.make ~src ~dst ~src_port:sp ~dst_port:dp ())
  in
  qtest "ofmatch: exact_5tuple matches exactly its key" gen_key (fun k ->
      Ofmatch.matches (Ofmatch.exact_5tuple k) (Ofmatch.fields_of_key k))

(* --- Mask / overlap semantics ------------------------------------------- *)

(* Concrete fields drawn from a small universe correlated with
   [gen_pool_match] below, so random probes actually hit rules. *)
let pool_ip =
  QCheck2.Gen.(
    map2
      (fun a b -> ip (Printf.sprintf "10.%d.%d.1" a b))
      (int_range 0 3) (int_range 0 3))

let gen_pool_fields =
  let open QCheck2.Gen in
  let* in_port = int_range 1 3 in
  let* ip_src = pool_ip in
  let* ip_dst = pool_ip in
  let* ip_proto = oneofl [ 6; 17 ] in
  let* tp_src = oneofl [ 80; 443; 1000 ] in
  let* tp_dst = oneofl [ 80; 443; 1000 ] in
  let* esrc = int_bound 3 in
  let* edst = int_bound 3 in
  return
    {
      Ofmatch.in_port;
      eth_src = Mac.of_index esrc;
      eth_dst = Mac.of_index edst;
      eth_type = 0x0800;
      ip_src;
      ip_dst;
      ip_proto;
      tp_src;
      tp_dst;
    }

let gen_pool_match =
  let open QCheck2.Gen in
  let opt g = option g in
  let prefix = map2 (fun a l -> Prefix.make a l) pool_ip (oneofl [ 8; 16; 24; 32 ]) in
  let* m_in_port = opt (int_range 1 3) in
  let* m_ip_src = opt prefix in
  let* m_ip_dst = opt prefix in
  let* m_ip_proto = opt (oneofl [ 6; 17 ]) in
  let* m_tp_src = opt (oneofl [ 80; 443; 1000 ]) in
  let* m_tp_dst = opt (oneofl [ 80; 443; 1000 ]) in
  let* m_eth_src = opt (map Mac.of_index (int_bound 3)) in
  let* m_eth_dst = opt (map Mac.of_index (int_bound 3)) in
  return
    {
      Ofmatch.m_in_port;
      m_eth_src;
      m_eth_dst;
      m_eth_type = Some 0x0800;
      m_ip_src;
      m_ip_dst;
      m_ip_proto;
      m_tp_src;
      m_tp_dst;
    }

let test_overlap_disjoint () =
  let m_tp a = { Ofmatch.any with Ofmatch.m_tp_src = Some a } in
  check Alcotest.bool "same exact value overlaps" true
    (Ofmatch.is_exact_overlap (m_tp 80) (m_tp 80));
  check Alcotest.bool "different exact values are disjoint" false
    (Ofmatch.is_exact_overlap (m_tp 80) (m_tp 81));
  check Alcotest.bool "wildcard overlaps any value" true
    (Ofmatch.is_exact_overlap (m_tp 80) Ofmatch.any);
  let m_dst q = Ofmatch.to_dst q in
  check Alcotest.bool "disjoint prefixes" false
    (Ofmatch.is_exact_overlap (m_dst (p "10.1.0.0/16")) (m_dst (p "10.2.0.0/16")));
  check Alcotest.bool "nested prefixes overlap" true
    (Ofmatch.is_exact_overlap (m_dst (p "10.1.0.0/16")) (m_dst (p "10.0.0.0/8")));
  let m_mac i = { Ofmatch.any with Ofmatch.m_eth_src = Some (Mac.of_index i) } in
  check Alcotest.bool "different macs are disjoint" false
    (Ofmatch.is_exact_overlap (m_mac 1) (m_mac 2));
  (* The pre-fix over-approximation: disjoint on one field even though
     another field agrees exactly. *)
  let a = { (m_tp 80) with Ofmatch.m_ip_proto = Some 6 } in
  let b = { (m_tp 81) with Ofmatch.m_ip_proto = Some 6 } in
  check Alcotest.bool "one disjoint field decides" false
    (Ofmatch.is_exact_overlap a b)

let prop_overlap_sound =
  qtest ~count:500 "ofmatch: both match a packet => overlap"
    QCheck2.Gen.(triple gen_pool_match gen_pool_match gen_pool_fields)
    (fun (a, b, f) ->
      (not (Ofmatch.matches a f && Ofmatch.matches b f))
      || Ofmatch.is_exact_overlap a b)

let prop_overlap_reflexive =
  qtest "ofmatch: overlap is reflexive" gen_match (fun m ->
      Ofmatch.is_exact_overlap m m)

let prop_mask_canonical_key =
  qtest ~count:500
    "ofmatch: matches m f <=> project (mask_of m) f = fields_of_match m"
    QCheck2.Gen.(pair gen_pool_match gen_pool_fields)
    (fun (m, f) ->
      let mask = Ofmatch.mask_of m in
      Ofmatch.matches m f
      = Ofmatch.fields_equal (Ofmatch.Mask.project mask f) (Ofmatch.fields_of_match m))

let prop_mask_projection_stable =
  qtest ~count:500 "ofmatch: projection under mask_of preserves the decision"
    QCheck2.Gen.(pair gen_match gen_pool_fields)
    (fun (m, f) ->
      let mask = Ofmatch.mask_of m in
      Ofmatch.matches m f = Ofmatch.matches m (Ofmatch.Mask.project mask f))

let prop_mask_union_subsumes =
  qtest "ofmatch: union subsumes both operands"
    QCheck2.Gen.(pair gen_match gen_match)
    (fun (a, b) ->
      let ma = Ofmatch.mask_of a and mb = Ofmatch.mask_of b in
      let u = Ofmatch.Mask.union ma mb in
      Ofmatch.Mask.subsumes u ma && Ofmatch.Mask.subsumes u mb
      && Ofmatch.Mask.subsumes ma Ofmatch.Mask.empty)

(* --- Ofmsg codec --------------------------------------------------------- *)

let gen_actions =
  QCheck2.Gen.(
    list_size (int_range 0 3)
      (oneof
         [
           map (fun p -> Action.Output p) (int_range 1 48);
           return Action.Flood;
           map (fun n -> Action.To_controller n) (int_range 0 1024);
         ]))

let gen_msg =
  let open QCheck2.Gen in
  oneof
    [
      oneofl
        [
          Ofmsg.Hello;
          Ofmsg.Echo_request;
          Ofmsg.Echo_reply;
          Ofmsg.Features_request;
          Ofmsg.Barrier_request;
          Ofmsg.Barrier_reply;
        ];
      (let* dpid = int_bound 1_000_000 in
       let* n_ports = int_range 0 64 in
       return (Ofmsg.Features_reply { dpid; n_ports }));
      (let* pst_reason = int_range 0 2 in
       let* pst_port = int_range 1 48 in
       return (Ofmsg.Port_status { Ofmsg.pst_reason; pst_port }));
      (let* in_port = int_range 0 48 in
       let* data = map Bytes.of_string (string_size (int_range 0 80)) in
       return
         (Ofmsg.Packet_in
            {
              buffer_id = 0xFFFFFFFF;
              total_len = Bytes.length data;
              in_port;
              reason = 0;
              data;
            }));
      (let* po_in_port = int_range 0 48 in
       let* po_actions = gen_actions in
       let* po_data = map Bytes.of_string (string_size (int_range 0 80)) in
       return (Ofmsg.Packet_out { po_in_port; po_actions; po_data }));
      (let* match_ = gen_match in
       let* command = oneofl [ Ofmsg.Add; Ofmsg.Modify; Ofmsg.Delete ] in
       let* priority = int_range 0 65535 in
       let* idle = int_range 0 3600 in
       let* hard = int_range 0 3600 in
       let* cookie = int_bound 1_000_000 in
       let* actions = gen_actions in
       return
         (Ofmsg.Flow_mod
            {
              Ofmsg.match_;
              cookie;
              command;
              idle_timeout_s = idle;
              hard_timeout_s = hard;
              priority;
              actions;
            }));
      (let* m = gen_match in
       return (Ofmsg.Stats_request (Ofmsg.Flow_stats_req m)));
      (let* port = oneof [ int_range 1 48; return 0xFFFF ] in
       return (Ofmsg.Stats_request (Ofmsg.Port_stats_req port)));
      (let* entries =
         list_size (int_range 0 4)
           (let* fs_match = gen_match in
            let* fs_priority = int_range 0 65535 in
            let* fs_cookie = int_bound 1_000_000 in
            let* fs_packets = int_bound 1_000_000_000 in
            let* fs_bytes = int_bound 1_000_000_000 in
            let* fs_duration_s = int_bound 100000 in
            let* fs_actions = gen_actions in
            return
              {
                Ofmsg.fs_match;
                fs_priority;
                fs_cookie;
                fs_packets;
                fs_bytes;
                fs_duration_s;
                fs_actions;
              })
       in
       return (Ofmsg.Stats_reply (Ofmsg.Flow_stats_rep entries)));
      (let* entries =
         list_size (int_range 0 6)
           (let* ps_port = int_range 1 48 in
            let* a = int_bound 1_000_000 in
            let* b = int_bound 1_000_000 in
            let* c = int_bound 1_000_000_000 in
            let* d = int_bound 1_000_000_000 in
            return
              {
                Ofmsg.ps_port;
                ps_rx_packets = a;
                ps_tx_packets = b;
                ps_rx_bytes = c;
                ps_tx_bytes = d;
              })
       in
       return (Ofmsg.Stats_reply (Ofmsg.Port_stats_rep entries)));
    ]

let prop_ofmsg_roundtrip =
  qtest ~count:500 "ofmsg: encode/decode roundtrip"
    (QCheck2.Gen.pair gen_msg (QCheck2.Gen.int_bound 0xFFFF))
    (fun (m, xid) ->
      match Ofmsg.decode (Ofmsg.encode ~xid m) with
      | Ok (m', xid') -> Ofmsg.equal m m' && xid = xid'
      | Error _ -> false)

let prop_ofmsg_decode_total =
  qtest ~count:500 "ofmsg: decoder never raises on arbitrary bytes"
    QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 120)))
    (fun junk -> match Ofmsg.decode junk with Ok _ | Error _ -> true)

let prop_ofmsg_decode_total_mutated =
  qtest ~count:300 "ofmsg: decoder never raises on mutated messages"
    (QCheck2.Gen.triple gen_msg (QCheck2.Gen.int_bound 300) (QCheck2.Gen.int_bound 255))
    (fun (m, pos, v) ->
      let buf = Ofmsg.encode m in
      if Bytes.length buf > 0 then
        Bytes.set_uint8 buf (pos mod Bytes.length buf) v;
      match Ofmsg.decode buf with Ok _ | Error _ -> true)

let test_ofmsg_header () =
  let buf = Ofmsg.encode ~xid:0xABCD Ofmsg.Hello in
  check Alcotest.int "version 1.0" 0x01 (Bytes.get_uint8 buf 0);
  check Alcotest.int "type hello" 0 (Bytes.get_uint8 buf 1);
  check Alcotest.int "length" 8 (Bytes.get_uint16_be buf 2);
  check Alcotest.int "xid" 0xABCD (Int32.to_int (Bytes.get_int32_be buf 4))

(* --- Flow table ------------------------------------------------------------ *)

let flow_mod ?(command = Ofmsg.Add) ?(priority = 10) ?(idle = 0) ?(hard = 0)
    ?(cookie = 0) match_ actions =
  {
    Ofmsg.match_;
    cookie;
    command;
    idle_timeout_s = idle;
    hard_timeout_s = hard;
    priority;
    actions;
  }

let test_table_priority () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:1 Ofmatch.any [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:100 (Ofmatch.exact_5tuple key_ab) [ Action.Output 2 ]);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "high priority wins" 100 e.Flow_table.priority
  | None -> Alcotest.fail "no match");
  let other = { key_ab with Flow_key.dst_port = 9 } in
  match Flow_table.lookup t (fields other) with
  | Some e -> check Alcotest.int "fallback to low priority" 1 e.Flow_table.priority
  | None -> Alcotest.fail "wildcard should match"

let test_table_add_replaces () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now (flow_mod Ofmatch.any [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now (flow_mod Ofmatch.any [ Action.Output 2 ]);
  check Alcotest.int "single entry" 1 (Flow_table.size t);
  match Flow_table.lookup t (fields key_ab) with
  | Some e ->
      check Alcotest.bool "latest actions" true
        (List.equal Action.equal [ Action.Output 2 ] e.Flow_table.actions)
  | None -> Alcotest.fail "missing"

let test_table_modify_and_delete () =
  let t = Flow_table.create () in
  let now = Time.zero in
  let m = Ofmatch.exact_5tuple key_ab in
  Flow_table.apply_flow_mod t ~now (flow_mod m [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~command:Ofmsg.Modify m [ Action.Output 7 ]);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e ->
      check Alcotest.bool "modified" true
        (List.equal Action.equal [ Action.Output 7 ] e.Flow_table.actions)
  | None -> Alcotest.fail "missing");
  (* Loose delete: wildcard removes everything overlapping. *)
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~command:Ofmsg.Delete Ofmatch.any []);
  check Alcotest.int "cleared" 0 (Flow_table.size t)

let test_table_timeouts () =
  let t = Flow_table.create () in
  Flow_table.apply_flow_mod t ~now:Time.zero
    (flow_mod ~hard:10 Ofmatch.any [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now:Time.zero
    (flow_mod ~priority:20 ~idle:5 (Ofmatch.exact_5tuple key_ab)
       [ Action.Output 2 ]);
  check Alcotest.int "both live at 4s" 0
    (List.length (Flow_table.expire t ~now:(Time.of_sec 4.0)));
  (* Keep the idle entry alive by accounting traffic at t=4. *)
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> Flow_table.account e ~now:(Time.of_sec 4.0) ~packets:1 ~bytes:100
  | None -> Alcotest.fail "entry missing");
  check Alcotest.int "still live at 8s" 0
    (List.length (Flow_table.expire t ~now:(Time.of_sec 8.0)));
  (* At 10s: hard timeout fires for the first, idle (9-4=5) for the
     second. *)
  let gone = Flow_table.expire t ~now:(Time.of_sec 10.0) in
  check Alcotest.int "both expired" 2 (List.length gone);
  check Alcotest.int "table empty" 0 (Flow_table.size t)

let test_table_equal_priority_fifo () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~cookie:1 (Ofmatch.to_dst (p "10.1.0.0/16")) [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~cookie:2 (Ofmatch.to_dst (p "10.0.0.0/8")) [ Action.Output 2 ]);
  match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "older entry wins ties" 1 e.Flow_table.cookie
  | None -> Alcotest.fail "no match"

(* --- Lookup hierarchy ------------------------------------------------------ *)

let test_hierarchy_counters () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:5 (Ofmatch.to_dst (p "10.1.0.0/16")) [ Action.Output 1 ]);
  let st = Flow_table.stats t in
  (* First probe goes through the classifier and fills both caches. *)
  check Alcotest.bool "slow path hit" true
    (Flow_table.lookup t (fields key_ab) <> None);
  check Alcotest.int "slow hits" 1 st.Flow_table.slow_hits;
  (* Same packet again: microflow. *)
  ignore (Flow_table.lookup t (fields key_ab));
  check Alcotest.int "micro hits" 1 st.Flow_table.micro_hits;
  (* Different packet, same /16 megaflow region: megaflow. *)
  let other =
    Flow_key.make ~src:(ip "10.3.0.9") ~dst:(ip "10.1.7.7") ~src_port:5
      ~dst_port:6 ()
  in
  check Alcotest.bool "still a hit" true
    (Flow_table.lookup t (fields ~in_port:2 other) <> None);
  check Alcotest.int "mega hits" 1 st.Flow_table.mega_hits;
  check Alcotest.int "one slow-path walk total" 1 st.Flow_table.slow_hits;
  (* Cached misses count as cache hits on repeat. *)
  let miss = { key_ab with Flow_key.dst = ip "11.0.0.1" } in
  check Alcotest.bool "miss" true (Flow_table.lookup t (fields miss) = None);
  check Alcotest.int "miss recorded" 1 st.Flow_table.misses;
  check Alcotest.bool "miss cached" true (Flow_table.lookup t (fields miss) = None);
  check Alcotest.int "cached miss is a micro hit" 2 st.Flow_table.micro_hits

let test_add_invalidates_caches () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:1 ~cookie:1 (Ofmatch.to_dst (p "10.0.0.0/8"))
       [ Action.Output 1 ]);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "low-priority rule first" 1 e.Flow_table.cookie
  | None -> Alcotest.fail "expected hit");
  (* A higher-priority rule covering the cached packet must take over
     immediately — both the microflow and megaflow cells for it are
     invalidated by the ADD. *)
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:9 ~cookie:2 (Ofmatch.exact_5tuple key_ab)
       [ Action.Output 2 ]);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "new rule wins" 2 e.Flow_table.cookie
  | None -> Alcotest.fail "expected hit");
  check Alcotest.bool "invalidations counted" true
    ((Flow_table.stats t).Flow_table.invalidations > 0);
  (* A cached miss must be invalidated by an ADD that covers it. *)
  let missk = { key_ab with Flow_key.dst = ip "11.2.3.4" } in
  check Alcotest.bool "miss" true (Flow_table.lookup t (fields missk) = None);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:3 ~cookie:7 (Ofmatch.to_dst (p "11.0.0.0/8"))
       [ Action.Output 3 ]);
  match Flow_table.lookup t (fields missk) with
  | Some e -> check Alcotest.int "former miss now hits" 7 e.Flow_table.cookie
  | None -> Alcotest.fail "cached miss survived an overlapping ADD"

let test_remove_invalidates_caches () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:9 ~cookie:1 (Ofmatch.exact_5tuple key_ab)
       [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:1 ~cookie:2
       { Ofmatch.any with Ofmatch.m_in_port = Some 1 }
       [ Action.Output 2 ]);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "exact rule wins" 1 e.Flow_table.cookie
  | None -> Alcotest.fail "expected hit");
  (* Loose delete on in_port=2 overlaps the exact rule (which leaves
     in_port wildcarded) but is provably disjoint from the in_port=1
     fallback — only the winner goes, and its cache cells with it. *)
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~command:Ofmsg.Delete
       { Ofmatch.any with Ofmatch.m_in_port = Some 2 }
       []);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "fallback after delete" 2 e.Flow_table.cookie
  | None -> Alcotest.fail "expected fallback hit");
  (* Expiry-driven invalidation behaves like delete. *)
  let t2 = Flow_table.create () in
  Flow_table.apply_flow_mod t2 ~now:Time.zero
    (flow_mod ~hard:2 (Ofmatch.exact_5tuple key_ab) [ Action.Output 1 ]);
  check Alcotest.bool "hit before expiry" true
    (Flow_table.lookup t2 (fields key_ab) <> None);
  ignore (Flow_table.expire t2 ~now:(Time.of_sec 3.0));
  check Alcotest.bool "expired entry not served from cache" true
    (Flow_table.lookup t2 (fields key_ab) = None)

let test_modify_invalidates_caches () =
  let t = Flow_table.create () in
  let now = Time.zero in
  let m = Ofmatch.exact_5tuple key_ab in
  Flow_table.apply_flow_mod t ~now (flow_mod m [ Action.Output 1 ]);
  ignore (Flow_table.lookup t (fields key_ab));
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~command:Ofmsg.Modify m [ Action.Output 7 ]);
  match Flow_table.lookup t (fields key_ab) with
  | Some e ->
      check Alcotest.bool "cache serves rewritten actions" true
        (List.equal Action.equal [ Action.Output 7 ] e.Flow_table.actions)
  | None -> Alcotest.fail "missing"

let test_o1_size_no_resort () =
  let t = Flow_table.create () in
  let now = Time.zero in
  let probe = fields key_ab in
  for i = 0 to 999 do
    let dst = Ipv4.of_octets 10 ((i lsr 8) land 0xFF) (i land 0xFF) 0 in
    Flow_table.apply_flow_mod t ~now
      (flow_mod ~priority:(i mod 7) (Ofmatch.to_dst (Prefix.make dst 24))
         [ Action.Output 1 ]);
    ignore (Flow_table.lookup t probe)
  done;
  check Alcotest.int "O(1) live count" 1000 (Flow_table.size t);
  let st = Flow_table.stats t in
  check Alcotest.int "hot path never sorts the table" 0 st.Flow_table.view_sorts;
  (* Only the sorted iteration / reference paths pay for a sort. *)
  check Alcotest.int "entries sees all rules" 1000 (List.length (Flow_table.entries t));
  check Alcotest.bool "one lazy sort for the view" true (st.Flow_table.view_sorts >= 1);
  let sorts_before = st.Flow_table.view_sorts in
  ignore (Flow_table.lookup_reference t probe);
  check Alcotest.int "view cached across reads" sorts_before
    (Flow_table.stats t).Flow_table.view_sorts

(* Differential suite: random flow_mod / traffic / expiry
   interleavings; on every probe the hierarchy must return the
   physically-same entry as the preserved linear scan — for both
   classifier backends. *)
let gen_op =
  let open QCheck2.Gen in
  let gen_fm =
    let* match_ = gen_pool_match in
    let* command = frequency [ (6, return Ofmsg.Add); (1, return Ofmsg.Modify); (1, return Ofmsg.Delete) ] in
    let* priority = int_range 0 9 in
    let* idle = frequency [ (4, return 0); (1, int_range 1 3) ] in
    let* hard = frequency [ (4, return 0); (1, int_range 1 3) ] in
    let* cookie = int_bound 1000 in
    let* actions = gen_actions in
    return
      (`Mod
        {
          Ofmsg.match_;
          cookie;
          command;
          idle_timeout_s = idle;
          hard_timeout_s = hard;
          priority;
          actions;
        })
  in
  frequency
    [
      (3, gen_fm);
      (6, map (fun f -> `Probe f) gen_pool_fields);
      (1, return `Tick);
    ]

let run_differential backend ops =
  let t = Flow_table.create ~backend () in
  let now = ref Time.zero in
  List.for_all
    (fun op ->
      match op with
      | `Mod fm ->
          Flow_table.apply_flow_mod t ~now:!now fm;
          true
      | `Tick ->
          now := Time.add !now (Time.of_sec 1.0);
          ignore (Flow_table.expire t ~now:!now);
          true
      | `Probe f -> (
          match (Flow_table.lookup t f, Flow_table.lookup_reference t f) with
          | Some a, Some b -> a == b
          | None, None -> true
          | _ -> false))
    ops

let prop_differential =
  qtest ~count:150 "flow_table: hierarchy == reference (both backends)"
    QCheck2.Gen.(list_size (int_range 10 80) gen_op)
    (fun ops ->
      run_differential Classifier.Tss ops
      && run_differential Classifier.Interval ops)

let test_interval_rebuild () =
  let cls = Classifier.create ~backend:Classifier.Interval () in
  for i = 0 to 199 do
    let dst = Ipv4.of_octets 10 0 (i land 0xFF) 0 in
    Classifier.insert cls
      ~match_:(Ofmatch.to_dst (Prefix.make dst 24))
      ~priority:(i mod 5) ~seq:i i
  done;
  check Alcotest.int "all rules live" 200 (Classifier.length cls);
  check Alcotest.int "no rebuild before first lookup" 0 (Classifier.rebuilds cls);
  let probe = fields { key_ab with Flow_key.dst = ip "10.0.7.9" } in
  (match Classifier.lookup cls probe with
  | Some r, _ -> check Alcotest.int "right rule" 7 r.Classifier.r_seq
  | None, _ -> Alcotest.fail "expected hit");
  check Alcotest.int "lazy rebuild happened" 1 (Classifier.rebuilds cls);
  Classifier.remove cls ~match_:(Ofmatch.to_dst (p "10.0.7.0/24")) ~seq:7;
  (match Classifier.lookup cls probe with
  | Some r, _ -> Alcotest.failf "tombstoned rule served (seq %d)" r.Classifier.r_seq
  | None, _ -> ());
  check Alcotest.int "length tracks tombstones" 199 (Classifier.length cls)

(* --- Switch agent ----------------------------------------------------------- *)

(* A switch agent plus a raw test controller endpoint. *)
let switch_rig () =
  let sched = Sched.create () in
  let chan = Channel.create sched ~latency:(Time.of_ms 1) () in
  let sw_end, ctrl_end = Channel.endpoints chan in
  let proc = Process.create sched ~name:"sw" in
  let agent =
    Switch.create proc ~dpid:42 ~ports:[ (1, 100); (2, 200) ] sw_end
  in
  let inbox = ref [] in
  Channel.set_receiver ctrl_end (fun bytes ->
      match Ofmsg.decode bytes with
      | Ok (msg, xid) -> inbox := (msg, xid) :: !inbox
      | Error e -> Alcotest.failf "controller decode error: %s" e);
  (sched, agent, ctrl_end, inbox)

let run sched until = ignore (Sched.run ~until sched)

let test_switch_handshake () =
  let sched, _agent, ctrl_end, inbox = switch_rig () in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end (Ofmsg.encode Ofmsg.Hello);
         Channel.send ctrl_end (Ofmsg.encode ~xid:7 Ofmsg.Features_request)));
  run sched (Time.of_ms 100);
  let replies = List.rev !inbox in
  check Alcotest.bool "features reply with dpid" true
    (List.exists
       (fun (m, xid) ->
         match m with
         | Ofmsg.Features_reply { dpid; n_ports } ->
             dpid = 42 && n_ports = 2 && xid = 7
         | _ -> false)
       replies)

let test_switch_flow_mod_and_lookup () =
  let sched, agent, ctrl_end, _ = switch_rig () in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end
           (Ofmsg.encode
              (Ofmsg.Flow_mod
                 (flow_mod (Ofmatch.exact_5tuple key_ab) [ Action.Output 2 ])))));
  run sched (Time.of_ms 100);
  check Alcotest.int "flow mod received" 1 (Switch.flow_mods_received agent);
  (match Switch.lookup agent (fields key_ab) with
  | Some e ->
      check Alcotest.bool "actions" true
        (List.equal Action.equal [ Action.Output 2 ] e.Flow_table.actions)
  | None -> Alcotest.fail "installed entry not found");
  check (Alcotest.option Alcotest.int) "port->link" (Some 200)
    (Switch.link_of_port agent 2);
  check (Alcotest.option Alcotest.int) "link->port" (Some 1)
    (Switch.port_of_link agent 100)

let test_switch_packet_in_and_stats () =
  let sched, agent, ctrl_end, inbox = switch_rig () in
  Switch.set_flow_stats_provider agent (fun _ -> (3, 4096));
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end
           (Ofmsg.encode
              (Ofmsg.Flow_mod
                 (flow_mod (Ofmatch.exact_5tuple key_ab) [ Action.Output 1 ])))));
  ignore
    (Sched.schedule_at sched (Time.of_ms 10) (fun () ->
         Switch.packet_in agent ~in_port:1 (Bytes.of_string "frame");
         Channel.send ctrl_end
           (Ofmsg.encode ~xid:9
              (Ofmsg.Stats_request (Ofmsg.Flow_stats_req Ofmatch.any)))));
  run sched (Time.of_ms 100);
  check Alcotest.int "one packet_in" 1 (Switch.packet_ins_sent agent);
  let got_packet_in =
    List.exists
      (fun (m, _) ->
        match m with
        | Ofmsg.Packet_in pi ->
            pi.Ofmsg.in_port = 1 && Bytes.to_string pi.Ofmsg.data = "frame"
        | _ -> false)
      !inbox
  in
  check Alcotest.bool "controller saw packet_in" true got_packet_in;
  let stats_ok =
    List.exists
      (fun (m, xid) ->
        match m with
        | Ofmsg.Stats_reply (Ofmsg.Flow_stats_rep [ fs ]) ->
            xid = 9 && fs.Ofmsg.fs_bytes = 4096 && fs.Ofmsg.fs_packets = 3
        | _ -> false)
      !inbox
  in
  check Alcotest.bool "stats served by provider" true stats_ok

let test_switch_expiry_hook () =
  let sched, agent, ctrl_end, _ = switch_rig () in
  let expired = ref [] in
  Switch.on_expired agent (fun e -> expired := e :: !expired);
  Switch.start agent;
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end
           (Ofmsg.encode
              (Ofmsg.Flow_mod
                 (flow_mod ~hard:2 (Ofmatch.exact_5tuple key_ab) [ Action.Output 1 ])))));
  run sched (Time.of_sec 5.0);
  check Alcotest.int "expired exactly once" 1 (List.length !expired);
  check Alcotest.int "table empty" 0 (Flow_table.size (Switch.table agent))

let test_switch_port_down () =
  let sched, agent, _ctrl_end, inbox = switch_rig () in
  check (Alcotest.option Alcotest.int) "port up" (Some 200)
    (Switch.link_of_port agent 2);
  Switch.set_port_down agent 2;
  Switch.set_port_down agent 2 (* idempotent: one notification *);
  ignore (Sched.run ~until:(Time.of_ms 50) sched);
  check Alcotest.bool "down port unresolvable" true
    (Switch.link_of_port agent 2 = None);
  check Alcotest.bool "marked down" true (Switch.is_port_down agent 2);
  check Alcotest.int "one PORT_STATUS delete" 1
    (List.length
       (List.filter
          (fun (m, _) ->
            match m with
            | Ofmsg.Port_status ps ->
                ps.Ofmsg.pst_port = 2 && ps.Ofmsg.pst_reason = 1
            | _ -> false)
          !inbox));
  Switch.set_port_up agent 2;
  ignore (Sched.run ~until:(Time.of_ms 100) sched);
  check (Alcotest.option Alcotest.int) "port back" (Some 200)
    (Switch.link_of_port agent 2);
  check Alcotest.bool "PORT_STATUS add seen" true
    (List.exists
       (fun (m, _) ->
         match m with
         | Ofmsg.Port_status ps -> ps.Ofmsg.pst_port = 2 && ps.Ofmsg.pst_reason = 0
         | _ -> false)
       !inbox)

let test_switch_echo_and_barrier () =
  let sched, _agent, ctrl_end, inbox = switch_rig () in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end (Ofmsg.encode ~xid:5 Ofmsg.Echo_request);
         Channel.send ctrl_end (Ofmsg.encode ~xid:6 Ofmsg.Barrier_request)));
  run sched (Time.of_ms 50);
  check Alcotest.bool "echo reply" true
    (List.exists (fun (m, x) -> m = Ofmsg.Echo_reply && x = 5) !inbox);
  check Alcotest.bool "barrier reply" true
    (List.exists (fun (m, x) -> m = Ofmsg.Barrier_reply && x = 6) !inbox)

let () =
  Alcotest.run "horse_openflow"
    [
      ( "match",
        [
          Alcotest.test_case "any" `Quick test_match_any;
          Alcotest.test_case "exact 5-tuple" `Quick test_match_exact_5tuple;
          Alcotest.test_case "prefix" `Quick test_match_prefix;
          Alcotest.test_case "in_port" `Quick test_match_in_port;
          prop_match_codec_roundtrip;
          prop_match_exact_key_matches;
          Alcotest.test_case "overlap disjointness" `Quick test_overlap_disjoint;
          prop_overlap_sound;
          prop_overlap_reflexive;
          prop_mask_canonical_key;
          prop_mask_projection_stable;
          prop_mask_union_subsumes;
        ] );
      ( "codec",
        [
          Alcotest.test_case "header" `Quick test_ofmsg_header;
          prop_ofmsg_roundtrip;
          prop_ofmsg_decode_total;
          prop_ofmsg_decode_total_mutated;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "priority" `Quick test_table_priority;
          Alcotest.test_case "add replaces" `Quick test_table_add_replaces;
          Alcotest.test_case "modify and delete" `Quick test_table_modify_and_delete;
          Alcotest.test_case "timeouts" `Quick test_table_timeouts;
          Alcotest.test_case "equal priority fifo" `Quick
            test_table_equal_priority_fifo;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "hit counters" `Quick test_hierarchy_counters;
          Alcotest.test_case "add invalidates" `Quick test_add_invalidates_caches;
          Alcotest.test_case "remove invalidates" `Quick
            test_remove_invalidates_caches;
          Alcotest.test_case "modify invalidates" `Quick
            test_modify_invalidates_caches;
          Alcotest.test_case "O(1) size, no resort" `Quick test_o1_size_no_resort;
          Alcotest.test_case "interval lazy rebuild" `Quick test_interval_rebuild;
          prop_differential;
        ] );
      ( "switch",
        [
          Alcotest.test_case "handshake" `Quick test_switch_handshake;
          Alcotest.test_case "flow mod + lookup" `Quick
            test_switch_flow_mod_and_lookup;
          Alcotest.test_case "packet_in + stats provider" `Quick
            test_switch_packet_in_and_stats;
          Alcotest.test_case "expiry hook" `Quick test_switch_expiry_hook;
          Alcotest.test_case "echo + barrier" `Quick test_switch_echo_and_barrier;
          Alcotest.test_case "port down/up" `Quick test_switch_port_down;
        ] );
    ]
