lib/topo/topology.mli: Format Horse_engine Horse_net Ipv4 Mac
