lib/dataplane/fwd.ml: Array Format Hashtbl Horse_net Int Int32 Ipv4 List Prefix
