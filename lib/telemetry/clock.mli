(** The process-wide wall-clock source.

    Every wall-time reading in the tree — {!Span} trackers, the
    scheduler's {!Horse_engine.Wall}, histogram timings — goes through
    this one function, so tests can substitute a deterministic clock
    and observe a single source. The default source is
    [Unix.gettimeofday]. *)

val now : unit -> float
(** Seconds since an arbitrary epoch, sub-millisecond resolution under
    the default source. *)

val set_source : (unit -> float) -> unit
(** Replace the clock source globally (for tests / replay). The source
    cell is an [Atomic.t], so readers on other domains always see a
    fully-published function. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_source src f] runs [f] with [src] installed, restoring the
    previous source afterwards (exception-safe). *)
