open Horse_topo
open Horse_openflow

let path_hops env path =
  List.filter_map
    (fun (l : Topology.link) ->
      match (Env.dpid_of_node env l.Topology.src, Env.port_of_link env l.Topology.link_id) with
      | Some dpid, Some port -> Some (dpid, port)
      | None, _ | _, None -> None)
    path

let install_path ctrl env ~match_ ?(priority = 10) ?(idle_timeout_s = 0)
    ?(hard_timeout_s = 0) ?(cookie = 0) path =
  List.iter
    (fun (dpid, port) ->
      match Controller.switch_by_dpid ctrl dpid with
      | None -> ()
      | Some sw ->
          Controller.send_flow_mod ctrl sw
            {
              Ofmsg.match_;
              cookie;
              command = Ofmsg.Add;
              idle_timeout_s;
              hard_timeout_s;
              priority;
              actions = [ Action.Output port ];
            })
    (path_hops env path)

let first_hop_port env path =
  match path_hops env path with [] -> None | hop :: _ -> Some hop
