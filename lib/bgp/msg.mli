(** BGP-4 messages and their wire codec (RFC 4271 subset).

    The speaker exchanges genuinely serialized messages over the
    emulated control channels — the Connection Manager observes real
    BGP bytes, as it would with Quagga. Supported: OPEN (no optional
    parameters), UPDATE with the ORIGIN / AS_PATH / NEXT_HOP / MED /
    LOCAL_PREF attributes (AS_PATH as one AS_SEQUENCE segment, 2-byte
    ASNs), KEEPALIVE, and NOTIFICATION. *)

open Horse_net

type origin = Igp | Egp | Incomplete

val origin_to_int : origin -> int
val origin_of_int : int -> (origin, string) result
val pp_origin : Format.formatter -> origin -> unit

type attrs = {
  origin : origin;
  as_path : int list;  (** nearest AS first *)
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : int list;
      (** RFC 1997 COMMUNITIES, each a 32-bit [AS:value] tag, sorted;
          conventionally written [(asn lsl 16) lor value] *)
}

val community : asn:int -> int -> int
(** [community ~asn v] is the 32-bit community [asn:v].
    @raise Invalid_argument if either half exceeds 16 bits. *)

val pp_community : Format.formatter -> int -> unit
(** Renders ["65001:300"]. *)

val pp_attrs : Format.formatter -> attrs -> unit
val attrs_equal : attrs -> attrs -> bool

val attrs_hash : attrs -> int
(** Structural hash consistent with {!attrs_equal}; non-negative.
    Suitable for [Hashtbl.Make] and precomputed by {!Attr_intern}. *)

type open_msg = { asn : int; hold_time_s : int; bgp_id : Ipv4.t }

type update = {
  withdrawn : Prefix.t list;
  reach : (attrs * Prefix.t list) option;
      (** the announced NLRI and their shared attributes *)
}

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of { code : int; subcode : int }

val encode : t -> Bytes.t
(** Full message including the 19-byte header with all-ones marker.
    @raise Invalid_argument if a field is out of range (ASN or hold
    time beyond 16 bits, AS_PATH longer than 255). *)

val decode : Bytes.t -> (t, string) result
(** Parses one whole message; verifies the marker, the length field
    and attribute well-formedness. *)

val header_size : int
(** 19 bytes. *)

val max_message_size : int
(** 4096 bytes — the RFC 4271 maximum; {!Packer} never exceeds it. *)

type packed = {
  bytes : Bytes.t;  (** one whole encoded UPDATE, ≤ {!max_message_size} *)
  announced : int;  (** NLRI prefixes carried *)
  withdrawn : int;  (** withdrawn prefixes carried *)
}

(** Packed UPDATE serializer with a reusable buffer arena.

    [pack] spreads a withdraw set plus one attribute group's NLRI over
    as few UPDATE messages as the 4096-byte limit allows: withdrawals
    are coalesced into the leading message(s), the shared path
    attributes are serialized exactly once into the arena and blitted
    into every message that carries NLRI. The arena (one 4096-byte
    build buffer plus the attrs slice) is reused across calls, so a
    steady flush allocates only the emitted messages themselves. *)
module Packer : sig
  type t

  val create : unit -> t

  val pack :
    t -> ?withdrawn:Prefix.t list -> ?reach:attrs * Prefix.t list -> unit ->
    packed list
  (** Empty inputs yield [[]]. Decoding each emitted message yields an
      [Update] whose withdrawn/NLRI sets partition the inputs. *)
end

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
