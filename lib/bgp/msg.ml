open Horse_net
open Wire

type origin = Igp | Egp | Incomplete

let origin_to_int = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_of_int = function
  | 0 -> Ok Igp
  | 1 -> Ok Egp
  | 2 -> Ok Incomplete
  | n -> Error (Printf.sprintf "bgp: bad origin %d" n)

let pp_origin fmt o =
  Format.pp_print_string fmt
    (match o with Igp -> "igp" | Egp -> "egp" | Incomplete -> "incomplete")

type attrs = {
  origin : origin;
  as_path : int list;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : int list;
}

let community ~asn v =
  if asn < 0 || asn > 0xFFFF || v < 0 || v > 0xFFFF then
    invalid_arg "Bgp.Msg.community: halves must fit 16 bits";
  (asn lsl 16) lor v

let pp_community fmt c = Format.fprintf fmt "%d:%d" (c lsr 16) (c land 0xFFFF)

let pp_attrs fmt a =
  Format.fprintf fmt "origin=%a as-path=[%s] next-hop=%a%s%s%s" pp_origin
    a.origin
    (String.concat " " (List.map string_of_int a.as_path))
    Ipv4.pp a.next_hop
    (match a.med with Some m -> Printf.sprintf " med=%d" m | None -> "")
    (match a.local_pref with
    | Some l -> Printf.sprintf " local-pref=%d" l
    | None -> "")
    (match a.communities with
    | [] -> ""
    | cs ->
        " communities="
        ^ String.concat ","
            (List.map (fun c -> Format.asprintf "%a" pp_community c) cs))

let attrs_equal a b =
  a.origin = b.origin
  && List.equal Int.equal a.as_path b.as_path
  && Ipv4.equal a.next_hop b.next_hop
  && Option.equal Int.equal a.med b.med
  && Option.equal Int.equal a.local_pref b.local_pref
  && List.equal Int.equal a.communities b.communities

let hash_int_list seed l =
  List.fold_left (fun h x -> (h * 31) + x + 1) seed l

let attrs_hash a =
  let h = origin_to_int a.origin in
  let h = (h * 31) + Ipv4.hash a.next_hop in
  let h = (h * 31) + Option.value a.med ~default:(-7) in
  let h = (h * 31) + Option.value a.local_pref ~default:(-13) in
  let h = hash_int_list h a.as_path in
  let h = hash_int_list h a.communities in
  h land max_int

type open_msg = { asn : int; hold_time_s : int; bgp_id : Ipv4.t }

type update = { withdrawn : Prefix.t list; reach : (attrs * Prefix.t list) option }

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of { code : int; subcode : int }

let header_size = 19

(* --- encoding ------------------------------------------------------ *)

let check_u16 what v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Bgp.Msg.encode: %s %d out of 16-bit range" what v)

let prefix_wire_size p = 1 + ((Prefix.length p + 7) / 8)

let write_prefix buf off p =
  let len = Prefix.length p in
  set_u8 buf off len;
  let nbytes = (len + 7) / 8 in
  let addr = Ipv4.to_int32 (Prefix.network p) in
  for i = 0 to nbytes - 1 do
    set_u8 buf (off + 1 + i)
      (Int32.to_int (Int32.shift_right_logical addr (24 - (8 * i))) land 0xFF)
  done;
  off + 1 + nbytes

let read_prefix buf off limit =
  let* len = u8 buf off in
  if len > 32 then Error (Printf.sprintf "bgp: prefix length %d > 32" len)
  else
    let nbytes = (len + 7) / 8 in
    if off + 1 + nbytes > limit then Error "bgp: truncated prefix"
    else begin
      let addr = ref 0l in
      let rec go i acc =
        if i = nbytes then Ok acc
        else
          let* b = u8 buf (off + 1 + i) in
          go (i + 1) (Int32.logor acc (Int32.shift_left (Int32.of_int b) (24 - (8 * i))))
      in
      let* a = go 0 !addr in
      Ok (Prefix.make (Ipv4.of_int32 a) len, off + 1 + nbytes)
    end

let attr_flags_transitive = 0x40
let attr_flags_optional = 0x80

let attrs_wire_size a =
  let as_path_len = List.length a.as_path in
  3 + 1 (* origin *)
  + 3 + (if as_path_len = 0 then 0 else 2 + (2 * as_path_len))
  + 3 + 4 (* next hop *)
  + (match a.med with Some _ -> 3 + 4 | None -> 0)
  + (match a.local_pref with Some _ -> 3 + 4 | None -> 0)
  + match a.communities with [] -> 0 | cs -> 3 + (4 * List.length cs)

let write_attrs buf off a =
  if List.length a.as_path > 255 then
    invalid_arg "Bgp.Msg.encode: AS_PATH longer than 255";
  List.iter (fun asn -> check_u16 "ASN" asn) a.as_path;
  let off = ref off in
  let attr type_ flags payload_len writer =
    set_u8 buf !off flags;
    set_u8 buf (!off + 1) type_;
    set_u8 buf (!off + 2) payload_len;
    writer (!off + 3);
    off := !off + 3 + payload_len
  in
  attr 1 attr_flags_transitive 1 (fun o -> set_u8 buf o (origin_to_int a.origin));
  let as_path_len = List.length a.as_path in
  let seg_len = if as_path_len = 0 then 0 else 2 + (2 * as_path_len) in
  attr 2 attr_flags_transitive seg_len (fun o ->
      if as_path_len > 0 then begin
        set_u8 buf o 2 (* AS_SEQUENCE *);
        set_u8 buf (o + 1) as_path_len;
        List.iteri (fun i asn -> set_u16 buf (o + 2 + (2 * i)) asn) a.as_path
      end);
  attr 3 attr_flags_transitive 4 (fun o -> set_ipv4 buf o a.next_hop);
  (match a.med with
  | Some m -> attr 4 attr_flags_optional 4 (fun o -> set_u32_int buf o m)
  | None -> ());
  (match a.local_pref with
  | Some l -> attr 5 attr_flags_transitive 4 (fun o -> set_u32_int buf o l)
  | None -> ());
  (match a.communities with
  | [] -> ()
  | cs ->
      if List.length cs > 63 then
        invalid_arg "Bgp.Msg.encode: more than 63 communities";
      attr 8
        (attr_flags_optional lor attr_flags_transitive)
        (4 * List.length cs)
        (fun o -> List.iteri (fun i c -> set_u32_int buf (o + (4 * i)) c) cs));
  !off

let body_size = function
  | Open _ -> 10
  | Keepalive -> 0
  | Notification _ -> 2
  | Update u ->
      let withdrawn = List.fold_left (fun acc p -> acc + prefix_wire_size p) 0 u.withdrawn in
      let reach =
        match u.reach with
        | None -> 0
        | Some (attrs, nlri) ->
            attrs_wire_size attrs
            + List.fold_left (fun acc p -> acc + prefix_wire_size p) 0 nlri
      in
      2 + withdrawn + 2 + reach

let type_code = function
  | Open _ -> 1
  | Update _ -> 2
  | Notification _ -> 3
  | Keepalive -> 4

let encode t =
  let len = header_size + body_size t in
  check_u16 "message length" len;
  let buf = Bytes.make len '\000' in
  Bytes.fill buf 0 16 '\xff';
  set_u16 buf 16 len;
  set_u8 buf 18 (type_code t);
  let off = header_size in
  (match t with
  | Keepalive -> ()
  | Notification { code; subcode } ->
      set_u8 buf off code;
      set_u8 buf (off + 1) subcode
  | Open o ->
      check_u16 "ASN" o.asn;
      check_u16 "hold time" o.hold_time_s;
      set_u8 buf off 4 (* version *);
      set_u16 buf (off + 1) o.asn;
      set_u16 buf (off + 3) o.hold_time_s;
      set_ipv4 buf (off + 5) o.bgp_id;
      set_u8 buf (off + 9) 0 (* no optional parameters *)
  | Update u ->
      let wlen =
        List.fold_left (fun acc p -> acc + prefix_wire_size p) 0 u.withdrawn
      in
      set_u16 buf off wlen;
      let o = ref (off + 2) in
      List.iter (fun p -> o := write_prefix buf !o p) u.withdrawn;
      let attr_len_pos = !o in
      o := !o + 2;
      (match u.reach with
      | None -> set_u16 buf attr_len_pos 0
      | Some (attrs, nlri) ->
          let attrs_end = write_attrs buf !o attrs in
          set_u16 buf attr_len_pos (attrs_end - !o);
          o := attrs_end;
          List.iter (fun p -> o := write_prefix buf !o p) nlri));
  buf

(* --- decoding ------------------------------------------------------ *)

let read_prefixes buf off limit =
  let rec go off acc =
    if off > limit then Error "bgp: prefix list overruns its length field"
    else if off = limit then Ok (List.rev acc)
    else
      let* p, off' = read_prefix buf off limit in
      go off' (p :: acc)
  in
  go off []

type partial_attrs = {
  p_origin : origin option;
  p_as_path : int list option;
  p_next_hop : Ipv4.t option;
  p_med : int option;
  p_local_pref : int option;
  p_communities : int list;
}

let empty_partial =
  {
    p_origin = None;
    p_as_path = None;
    p_next_hop = None;
    p_med = None;
    p_local_pref = None;
    p_communities = [];
  }

let read_as_path buf off len =
  if len = 0 then Ok []
  else
    let* seg_type = u8 buf off in
    if seg_type <> 2 then Error "bgp: only AS_SEQUENCE segments supported"
    else
      let* count = u8 buf (off + 1) in
      if 2 + (2 * count) <> len then Error "bgp: AS_PATH segment length mismatch"
      else
        let rec go i acc =
          if i = count then Ok (List.rev acc)
          else
            let* asn = u16 buf (off + 2 + (2 * i)) in
            go (i + 1) (asn :: acc)
        in
        go 0 []

let read_attrs buf off limit =
  let rec go off acc =
    if off > limit then Error "bgp: attributes overrun their length field"
    else if off = limit then Ok acc
    else
      let* flags = u8 buf off in
      let* type_ = u8 buf (off + 1) in
      let extended = flags land 0x10 <> 0 in
      let* len, val_off =
        if extended then
          let* l = u16 buf (off + 2) in
          Ok (l, off + 4)
        else
          let* l = u8 buf (off + 2) in
          Ok (l, off + 3)
      in
      if val_off + len > limit then Error "bgp: truncated attribute"
      else
        let* acc =
          match type_ with
          | 1 ->
              let* o = u8 buf val_off in
              let* origin = origin_of_int o in
              Ok { acc with p_origin = Some origin }
          | 2 ->
              let* path = read_as_path buf val_off len in
              Ok { acc with p_as_path = Some path }
          | 3 ->
              let* nh = ipv4 buf val_off in
              Ok { acc with p_next_hop = Some nh }
          | 4 ->
              let* m = u32_int buf val_off in
              Ok { acc with p_med = Some m }
          | 5 ->
              let* l = u32_int buf val_off in
              Ok { acc with p_local_pref = Some l }
          | 8 ->
              if len mod 4 <> 0 then Error "bgp: COMMUNITIES length not 4n"
              else
                let rec go i acc' =
                  if i = len / 4 then Ok (List.rev acc')
                  else
                    let* c = u32_int buf (val_off + (4 * i)) in
                    go (i + 1) (c :: acc')
                in
                let* cs = go 0 [] in
                Ok { acc with p_communities = cs }
          | _ ->
              (* Unknown attribute: skip (we never set partial bit). *)
              Ok acc
        in
        go (val_off + len) acc
  in
  let* partial = go off empty_partial in
  match (partial.p_origin, partial.p_as_path, partial.p_next_hop) with
  | Some origin, Some as_path, Some next_hop ->
      Ok
        (Some
           {
             origin;
             as_path;
             next_hop;
             med = partial.p_med;
             local_pref = partial.p_local_pref;
             communities = partial.p_communities;
           })
  | None, None, None -> Ok None
  | _, _, _ -> Error "bgp: missing mandatory attribute"

let decode buf =
  let* () = check buf 0 header_size in
  let marker_ok = ref true in
  for i = 0 to 15 do
    if Bytes.get buf i <> '\xff' then marker_ok := false
  done;
  if not !marker_ok then Error "bgp: bad marker"
  else
    let* len = u16 buf 16 in
    if len <> Bytes.length buf then Error "bgp: length field mismatch"
    else
      let* type_ = u8 buf 18 in
      let off = header_size in
      match type_ with
      | 4 -> if len = header_size then Ok Keepalive else Error "bgp: keepalive with body"
      | 3 ->
          let* code = u8 buf off in
          let* subcode = u8 buf (off + 1) in
          Ok (Notification { code; subcode })
      | 1 ->
          let* version = u8 buf off in
          if version <> 4 then Error (Printf.sprintf "bgp: version %d" version)
          else
            let* asn = u16 buf (off + 1) in
            let* hold_time_s = u16 buf (off + 3) in
            let* bgp_id = ipv4 buf (off + 5) in
            let* opt_len = u8 buf (off + 9) in
            if opt_len <> 0 then Error "bgp: optional parameters unsupported"
            else Ok (Open { asn; hold_time_s; bgp_id })
      | 2 ->
          let* wlen = u16 buf off in
          let wstart = off + 2 in
          let* withdrawn = read_prefixes buf wstart (wstart + wlen) in
          let* alen = u16 buf (wstart + wlen) in
          let astart = wstart + wlen + 2 in
          let* attrs = read_attrs buf astart (astart + alen) in
          let* nlri = read_prefixes buf (astart + alen) len in
          let* reach =
            match (attrs, nlri) with
            | Some a, _ -> Ok (Some (a, nlri))
            | None, [] -> Ok None
            | None, _ :: _ -> Error "bgp: NLRI without attributes"
          in
          Ok (Update { withdrawn; reach })
      | n -> Error (Printf.sprintf "bgp: unknown message type %d" n)

(* --- packed encoding ----------------------------------------------- *)

let max_message_size = 4096

type packed = { bytes : Bytes.t; announced : int; withdrawn : int }

module Packer = struct
  type t = { scratch : Bytes.t; mutable attrs_scratch : Bytes.t }

  let create () =
    {
      scratch = Bytes.create max_message_size;
      attrs_scratch = Bytes.create 1024;
    }

  (* Serialize the group's shared attributes once; every emitted
     message blits this slice instead of re-walking the attr lists. *)
  let prepare_attrs t attrs =
    let size = attrs_wire_size attrs in
    if Bytes.length t.attrs_scratch < size then
      t.attrs_scratch <- Bytes.create (2 * size);
    let end_ = write_attrs t.attrs_scratch 0 attrs in
    if end_ <> size then failwith "Bgp.Msg.Packer: attrs size mismatch";
    size

  (* Take prefixes from [ps] while their wire size fits in [room]. *)
  let take room ps =
    let rec go acc n used = function
      | p :: rest when used + prefix_wire_size p <= room ->
          go (p :: acc) (n + 1) (used + prefix_wire_size p) rest
      | rest -> (acc, n, used, rest)
    in
    go [] 0 0 ps

  let pack t ?(withdrawn = []) ?reach () =
    let attrs, nlri =
      match reach with
      | Some (a, (_ :: _ as nlri)) -> (Some a, nlri)
      | Some (_, []) | None -> (None, [])
    in
    let asize = match attrs with Some a -> prepare_attrs t a | None -> 0 in
    let budget = max_message_size - header_size - 4 in
    let msgs = ref [] in
    let emit ~withdrawn_rev ~n_w ~w_bytes ~nlri_rev ~n_n ~n_bytes =
      let len =
        header_size + 4 + w_bytes + (if n_n > 0 then asize else 0) + n_bytes
      in
      let buf = t.scratch in
      Bytes.fill buf 0 16 '\xff';
      set_u16 buf 16 len;
      set_u8 buf 18 2 (* UPDATE *);
      set_u16 buf header_size w_bytes;
      let o = ref (header_size + 2) in
      List.iter (fun p -> o := write_prefix buf !o p) (List.rev withdrawn_rev);
      if n_n > 0 then begin
        set_u16 buf !o asize;
        Bytes.blit t.attrs_scratch 0 buf (!o + 2) asize;
        o := !o + 2 + asize;
        List.iter (fun p -> o := write_prefix buf !o p) (List.rev nlri_rev)
      end
      else begin
        set_u16 buf !o 0;
        o := !o + 2
      end;
      msgs :=
        { bytes = Bytes.sub buf 0 len; announced = n_n; withdrawn = n_w }
        :: !msgs
    in
    let rec go withdrawn nlri =
      match (withdrawn, nlri) with
      | [], [] -> ()
      | _ ->
          let w_rev, n_w, w_bytes, w_rest = take budget withdrawn in
          (* NLRI rides along only once every withdrawal has been
             placed (coalesced into the leading messages). *)
          let n_rev, n_n, n_bytes, n_rest =
            if w_rest = [] then take (budget - w_bytes - asize) nlri
            else ([], 0, 0, nlri)
          in
          emit ~withdrawn_rev:w_rev ~n_w ~w_bytes ~nlri_rev:n_rev ~n_n ~n_bytes;
          go w_rest n_rest
    in
    go withdrawn nlri;
    List.rev !msgs
end

let equal a b =
  match (a, b) with
  | Keepalive, Keepalive -> true
  | Notification x, Notification y -> x.code = y.code && x.subcode = y.subcode
  | Open x, Open y ->
      x.asn = y.asn && x.hold_time_s = y.hold_time_s && Ipv4.equal x.bgp_id y.bgp_id
  | Update x, Update y ->
      List.equal Prefix.equal x.withdrawn y.withdrawn
      && Option.equal
           (fun (aa, an) (ba, bn) ->
             attrs_equal aa ba && List.equal Prefix.equal an bn)
           x.reach y.reach
  | (Keepalive | Notification _ | Open _ | Update _), _ -> false

let pp fmt = function
  | Keepalive -> Format.pp_print_string fmt "KEEPALIVE"
  | Notification { code; subcode } ->
      Format.fprintf fmt "NOTIFICATION %d/%d" code subcode
  | Open o ->
      Format.fprintf fmt "OPEN as=%d hold=%ds id=%a" o.asn o.hold_time_s Ipv4.pp
        o.bgp_id
  | Update u ->
      let pp_prefixes fmt ps =
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
          Prefix.pp fmt ps
      in
      Format.fprintf fmt "UPDATE";
      if u.withdrawn <> [] then
        Format.fprintf fmt " withdraw[%a]" pp_prefixes u.withdrawn;
      match u.reach with
      | Some (attrs, nlri) ->
          Format.fprintf fmt " announce[%a] %a" pp_prefixes nlri pp_attrs attrs
      | None -> ()
