type id = int

let none : id = -1
let is_none i = i < 0

type info = { at : Time.t; kind : string; detail : string; parent : id }

(* Recording happens on the scheduler's hot path; reading happens after
   the run. The layout serves the writer:

   - struct-of-arrays with unboxed int columns, so appending a node is
     four array stores and zero minor-heap allocation — nothing for
     the GC to promote (boxed per-node records measurably dominated
     tracing overhead on storm runs);
   - each column is a spine of fixed-size chunks allocated on demand
     and never copied: growth by array doubling left the dead
     generations as major-heap garbage, and that churn — not the
     stores — was the residual cost of tracing;
   - detail strings are stored as the caller's thunk and built only
     when read ({!info}, {!chain}, {!iter}, {!hash}) — formatting
     (prefixes, AS numbers) is the expensive part of a node. Thunks
     are called on every read, so they must be pure: capture only
     immutable data frozen at the call site, never state that later
     mutates, or same-seed {!hash} determinism breaks. *)

let chunk_bits = 12
let chunk = 1 lsl chunk_bits (* 4096 entries per chunk *)
let chunk_mask = chunk - 1

type t = {
  mutable at_us : int array array;
  mutable kinds : string array array;
  mutable details : (unit -> string) array array;
  mutable parents : int array array;
  mutable len : int;
  max_nodes : int;
  mutable n_dropped : int;
}

let no_detail () = ""

let create ?(max_nodes = 4_000_000) () =
  if max_nodes <= 0 then invalid_arg "Causal.create: max_nodes <= 0";
  {
    at_us = [||];
    kinds = [||];
    details = [||];
    parents = [||];
    len = 0;
    max_nodes;
    n_dropped = 0;
  }

(* Open chunk [c] in every column, doubling the (tiny) spines as
   needed. The chunks themselves are fixed-size and live for the
   graph's whole lifetime — nothing here is ever moved or dropped. *)
let add_chunk t c =
  if c >= Array.length t.at_us then begin
    let cap' = max 8 (2 * Array.length t.at_us) in
    let extend empty a =
      let a' = Array.make cap' empty in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    t.at_us <- extend [||] t.at_us;
    t.kinds <- extend [||] t.kinds;
    t.details <- extend [||] t.details;
    t.parents <- extend [||] t.parents
  end;
  t.at_us.(c) <- Array.make chunk 0;
  t.kinds.(c) <- Array.make chunk "";
  t.details.(c) <- Array.make chunk no_detail;
  t.parents.(c) <- Array.make chunk none

let node t ~at ~kind ~detail ~parent =
  if t.len >= t.max_nodes then begin
    t.n_dropped <- t.n_dropped + 1;
    none
  end
  else begin
    let i = t.len in
    let c = i lsr chunk_bits and o = i land chunk_mask in
    if o = 0 then add_chunk t c;
    t.at_us.(c).(o) <- Time.to_us at;
    t.kinds.(c).(o) <- kind;
    t.details.(c).(o) <- detail;
    (* A parent beyond the live range (dropped or foreign) degrades to
       a root rather than a dangling edge. *)
    t.parents.(c).(o) <- (if parent >= 0 && parent < i then parent else none);
    t.len <- i + 1;
    i
  end

let length t = t.len
let dropped t = t.n_dropped
let parent_of t i = t.parents.(i lsr chunk_bits).(i land chunk_mask)

let force t i =
  let c = i lsr chunk_bits and o = i land chunk_mask in
  {
    at = Time.of_us t.at_us.(c).(o);
    kind = t.kinds.(c).(o);
    detail = t.details.(c).(o) ();
    parent = t.parents.(c).(o);
  }

let info t i = if i >= 0 && i < t.len then Some (force t i) else None

let chain t i =
  let rec up acc i =
    if i < 0 || i >= t.len then acc else up (force t i :: acc) (parent_of t i)
  in
  up [] i

let iter t f =
  for i = 0 to t.len - 1 do
    f i (force t i)
  done

(* Block-chained digest: hash 64k-node blocks, feeding each block's
   digest into the next, so huge graphs never materialise one giant
   string.  Only virtual-time-deterministic fields enter. *)
let hash t =
  let block = 65536 in
  let buf = Buffer.create (block * 32) in
  let d = ref "" in
  let flush () =
    d := Digest.string (!d ^ Buffer.contents buf);
    Buffer.clear buf
  in
  for i = 0 to t.len - 1 do
    let c = i lsr chunk_bits and o = i land chunk_mask in
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf '|';
    Buffer.add_string buf (string_of_int t.at_us.(c).(o));
    Buffer.add_char buf '|';
    Buffer.add_string buf t.kinds.(c).(o);
    Buffer.add_char buf '|';
    Buffer.add_string buf (t.details.(c).(o) ());
    Buffer.add_char buf '|';
    Buffer.add_string buf (string_of_int t.parents.(c).(o));
    Buffer.add_char buf '\n';
    if i land (block - 1) = block - 1 then flush ()
  done;
  Buffer.add_string buf (Printf.sprintf "len=%d dropped=%d" t.len t.n_dropped);
  flush ();
  Digest.to_hex !d

let pp_chain fmt hops =
  let prev = ref None in
  List.iter
    (fun h ->
      let lat =
        match !prev with
        | None -> 0
        | Some p -> Time.to_us h.at - Time.to_us p.at
      in
      prev := Some h;
      Format.fprintf fmt "  [%.6fs] %s %s (+%dus)@."
        (Time.to_sec h.at) h.kind h.detail lat)
    hops
