lib/ospf/lsdb.ml: Hashtbl Horse_net Ipv4 List Option Ospf_msg Prefix
