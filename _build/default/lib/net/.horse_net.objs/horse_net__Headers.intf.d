lib/net/headers.mli: Bytes Checksum Format Ipv4 Mac Wire
