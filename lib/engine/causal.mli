(** The causal graph behind a run: who caused what, in virtual time.

    Every schedulable occurrence the engine considers interesting — a
    fault firing, a channel send (and its impaired duplicate or drop),
    a protocol message being handled, a routing decision, a FIB write
    — registers a {e node}: (virtual time, kind, detail) plus one
    parent edge pointing at the occurrence that caused it. The result
    is a forest rooted at spontaneous activity (timers armed at setup,
    poller-driven sends) whose paths are provenance chains: walking a
    FIB entry's node back to its root yields the exact
    fault → session event → UPDATE → decision → write sequence with
    per-hop virtual latencies.

    Nodes are identified by dense integer ids in creation order.
    Creation order is execution order, and every recorded field is a
    pure function of virtual time, so two same-seed runs produce
    byte-identical graphs — {!hash} is the determinism check, the
    causal analogue of [Routed_fabric.fib_fingerprint].

    The graph is append-only and capped: past [max_nodes] new nodes
    are counted in {!dropped} and {!none} is returned, so children of
    dropped occurrences simply root there. *)

type t

type id = int
(** Dense node id; {!none} marks "no cause". *)

val none : id
val is_none : id -> bool

type info = {
  at : Time.t;  (** virtual time of the occurrence *)
  kind : string;
      (** ["subsystem:event"], e.g. ["chan:send"], ["bgp:update"],
          ["fault:link_down"], ["fib:write"] — the prefix before [':']
          buckets per-protocol latency in the explainer *)
  detail : string;
  parent : id;
}

val create : ?max_nodes:int -> unit -> t
(** Default cap: 4_000_000 nodes.
    @raise Invalid_argument if [max_nodes <= 0]. *)

val node :
  t -> at:Time.t -> kind:string -> detail:(unit -> string) -> parent:id -> id
(** Appends a node; returns {!none} (and counts a drop) once full.

    [detail] is {e not} called here: it is stored and forced on first
    read ({!info}, {!chain}, {!iter}, {!hash}), keeping string
    formatting off the scheduler's hot path. It must be pure — capture
    only immutable data frozen at the call site (ints, names, prefix
    values), never state that later mutates — or same-seed {!hash}
    determinism breaks. *)

val length : t -> int
val dropped : t -> int

val info : t -> id -> info option
(** [None] for {!none} or an out-of-range id. *)

val chain : t -> id -> info list
(** Provenance chain of a node, root first, ending with the node
    itself; [[]] for {!none}. *)

val iter : t -> (id -> info -> unit) -> unit
(** All nodes in id (= creation) order. *)

val hash : t -> string
(** Hex digest over every node's (at, kind, detail, parent) in id
    order — identical across runs iff the causal graphs are
    identical. Wall time never enters. *)

val pp_chain : Format.formatter -> info list -> unit
(** One hop per line with the virtual latency from the previous hop:
    ["  [5.000000s] fault:link_down e1<->a1 (+0us)"]. *)
