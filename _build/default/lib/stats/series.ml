open Horse_engine

type t = {
  series_name : string;
  mutable times : Time.t array;
  mutable vals : float array;
  mutable n : int;
}

let create ?(name = "series") () =
  { series_name = name; times = Array.make 64 Time.zero; vals = Array.make 64 0.0; n = 0 }

let name t = t.series_name

let add t at v =
  if t.n > 0 && Time.(at < t.times.(t.n - 1)) then
    invalid_arg "Series.add: non-monotonic timestamp";
  if t.n = Array.length t.times then begin
    let times = Array.make (2 * t.n) Time.zero in
    let vals = Array.make (2 * t.n) 0.0 in
    Array.blit t.times 0 times 0 t.n;
    Array.blit t.vals 0 vals 0 t.n;
    t.times <- times;
    t.vals <- vals
  end;
  t.times.(t.n) <- at;
  t.vals.(t.n) <- v;
  t.n <- t.n + 1

let length t = t.n
let is_empty t = t.n = 0
let to_list t = List.init t.n (fun i -> (t.times.(i), t.vals.(i)))
let last t = if t.n = 0 then None else Some (t.times.(t.n - 1), t.vals.(t.n - 1))
let values t = List.init t.n (fun i -> t.vals.(i))

let mean t =
  if t.n = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.n - 1 do
      sum := !sum +. t.vals.(i)
    done;
    !sum /. float_of_int t.n
  end

let max_value t =
  let m = ref 0.0 in
  for i = 0 to t.n - 1 do
    if t.vals.(i) > !m then m := t.vals.(i)
  done;
  !m

let integrate t =
  let acc = ref 0.0 in
  for i = 0 to t.n - 2 do
    let dt = Time.to_sec (Time.sub t.times.(i + 1) t.times.(i)) in
    acc := !acc +. (t.vals.(i) *. dt)
  done;
  !acc

let between t start stop =
  let out = create ~name:t.series_name () in
  for i = 0 to t.n - 1 do
    if Time.(t.times.(i) >= start) && Time.(t.times.(i) <= stop) then
      add out t.times.(i) t.vals.(i)
  done;
  out

let map t ~f =
  let out = create ~name:t.series_name () in
  for i = 0 to t.n - 1 do
    add out t.times.(i) (f t.vals.(i))
  done;
  out

let merge_sum ?(name = "sum") series =
  match series with
  | [] -> create ~name ()
  | first :: _ ->
      let out = create ~name () in
      let n = first.n in
      List.iter
        (fun s ->
          if s.n <> n then invalid_arg "Series.merge_sum: length mismatch")
        series;
      for i = 0 to n - 1 do
        let at = first.times.(i) in
        let total =
          List.fold_left
            (fun acc s ->
              if not (Time.equal s.times.(i) at) then
                invalid_arg "Series.merge_sum: timestamp mismatch";
              acc +. s.vals.(i))
            0.0 series
        in
        add out at total
      done;
      out

let pp fmt t =
  Format.fprintf fmt "@[<v>%s (%d samples)" t.series_name t.n;
  List.iter
    (fun (at, v) -> Format.fprintf fmt "@,%a\t%.6g" Time.pp at v)
    (to_list t);
  Format.fprintf fmt "@]"
