type flow_input = { demand : float; links : int list }

(* Per-link bookkeeping, maintained incrementally as flows freeze so
   each progressive-filling round is O(#links + #flows). *)
type link_state = {
  cap : float;
  mutable frozen_load : float;
  mutable unfrozen : int;
}

let compute ~capacity flows =
  let n = Array.length flows in
  let rates = Array.make n 0.0 in
  let frozen = Array.make n false in
  let links : (int, link_state) Hashtbl.t = Hashtbl.create 64 in
  let link_state l =
    match Hashtbl.find_opt links l with
    | Some s -> s
    | None ->
        let cap = capacity l in
        if cap <= 0.0 then
          invalid_arg "Fair_share.compute: non-positive capacity";
        let s = { cap; frozen_load = 0.0; unfrozen = 0 } in
        Hashtbl.add links l s;
        s
  in
  Array.iter
    (fun f ->
      if f.demand < 0.0 then invalid_arg "Fair_share.compute: negative demand";
      List.iter (fun l -> (link_state l).unfrozen <- (link_state l).unfrozen + 1) f.links)
    flows;
  let n_unfrozen = ref n in
  let freeze i rate =
    rates.(i) <- rate;
    frozen.(i) <- true;
    decr n_unfrozen;
    List.iter
      (fun l ->
        let s = link_state l in
        s.frozen_load <- s.frozen_load +. rate;
        s.unfrozen <- s.unfrozen - 1)
      flows.(i).links
  in
  (* Zero-demand and pathless flows are trivially assigned. *)
  Array.iteri
    (fun i f ->
      if f.demand = 0.0 then freeze i 0.0
      else if f.links = [] then freeze i f.demand)
    flows;
  while !n_unfrozen > 0 do
    let link_min = ref None in
    Hashtbl.iter
      (fun l s ->
        if s.unfrozen > 0 then begin
          let share =
            Float.max 0.0 (s.cap -. s.frozen_load) /. float_of_int s.unfrozen
          in
          match !link_min with
          | None -> link_min := Some (l, share)
          | Some (_, best) -> if share < best then link_min := Some (l, share)
        end)
      links;
    let demand_min = ref None in
    Array.iteri
      (fun i f ->
        if not frozen.(i) then
          match !demand_min with
          | None -> demand_min := Some f.demand
          | Some d -> if f.demand < d then demand_min := Some f.demand)
      flows;
    let freeze_at_demand d =
      Array.iteri
        (fun i f -> if (not frozen.(i)) && f.demand = d then freeze i d)
        flows
    in
    match (!link_min, !demand_min) with
    | None, None -> assert false (* n_unfrozen > 0 implies a min demand *)
    | None, Some d -> freeze_at_demand d
    | Some (_, s), Some d when d <= s -> freeze_at_demand d
    | Some (bottleneck, s), _ ->
        Array.iteri
          (fun i f ->
            if (not frozen.(i)) && List.memq bottleneck f.links then freeze i s)
          flows
  done;
  rates

let link_loads flows rates =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i f ->
      List.iter
        (fun l ->
          let cur = Option.value (Hashtbl.find_opt tbl l) ~default:0.0 in
          Hashtbl.replace tbl l (cur +. rates.(i)))
        f.links)
    flows;
  Hashtbl.fold (fun l v acc -> (l, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
