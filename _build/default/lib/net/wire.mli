(** Safe big-endian readers/writers over [Bytes.t] for protocol codecs.

    All readers return [Error] instead of raising when the requested
    range falls outside the buffer, so decoders can be total. Writers
    raise [Invalid_argument] (a codec writing out of bounds is a
    programming error, not an input error). *)

type 'a reader = Bytes.t -> int -> ('a, string) result
(** [r buf off] reads a value at byte offset [off]. *)

val u8 : int reader
val u16 : int reader

val u32 : int32 reader
(** Big-endian 32-bit read (sign-preserving [int32]). *)

val u32_int : int reader
(** Big-endian 32-bit read as a non-negative [int] in [0, 2^32). *)

val bytes : int -> Bytes.t reader
(** [bytes n buf off] copies [n] bytes starting at [off]. *)

val ipv4 : Ipv4.t reader
val mac : Mac.t reader

val set_u8 : Bytes.t -> int -> int -> unit
val set_u16 : Bytes.t -> int -> int -> unit
val set_u32 : Bytes.t -> int -> int32 -> unit

val set_u32_int : Bytes.t -> int -> int -> unit
(** Writes the low 32 bits of the [int]. *)

val set_ipv4 : Bytes.t -> int -> Ipv4.t -> unit
val set_mac : Bytes.t -> int -> Mac.t -> unit

val check : Bytes.t -> int -> int -> (unit, string) result
(** [check buf off len] is [Ok ()] iff [off, off+len) lies inside
    [buf]; the [Error] names the shortfall. *)

val ( let* ) :
  ('a, string) result -> ('a -> ('b, string) result) -> ('b, string) result
(** Result bind, for sequencing decoder steps. *)
