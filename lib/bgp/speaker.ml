open Horse_net
open Horse_engine
open Horse_emulation
module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge

type peer_state = Idle | OpenSent | OpenConfirm | Established

let pp_peer_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Idle -> "Idle"
    | OpenSent -> "OpenSent"
    | OpenConfirm -> "OpenConfirm"
    | Established -> "Established")

type config = {
  asn : int;
  router_id : Ipv4.t;
  hold_time : Time.t;
  mrai : Time.t;
  multipath : bool;
  networks : Prefix.t list;
  processing_delay : Time.t;
}

let default_config ~asn ~router_id =
  {
    asn;
    router_id;
    hold_time = Time.of_sec 9.0;
    mrai = Time.zero;
    multipath = true;
    networks = [];
    processing_delay = Time.of_us 100;
  }

type counters = {
  opens_sent : int;
  updates_sent : int;
  updates_received : int;
  keepalives_sent : int;
  keepalives_received : int;
  notifications_sent : int;
  decode_errors : int;
}

module Prefix_set = Set.Make (struct
  type t = Prefix.t

  let compare = Prefix.compare
end)

type peer = {
  id : int;
  remote_asn : int;
  mutable endpoint : Channel.endpoint;
  import : Policy.t;
  export : Policy.t;
  mutable state : peer_state;
  mutable remote_id : Ipv4.t;
  mutable negotiated_hold : Time.t;
  mutable last_rx : Time.t;
  mutable keepalive_timer : Sched.recurring option;
  mutable pending_announce : Prefix_set.t;
  mutable pending_withdraw : Prefix_set.t;
  mutable mrai_armed : bool;
  mutable advertised : Prefix_set.t;
}

(* Registry handles shared by every speaker on the same scheduler:
   message counters are aggregates labeled by direction and type, the
   RIB gauge is per-router. *)
type metrics = {
  tx_open : Counter.t;
  tx_update : Counter.t;
  tx_keepalive : Counter.t;
  tx_notification : Counter.t;
  rx_open : Counter.t;
  rx_update : Counter.t;
  rx_keepalive : Counter.t;
  rx_notification : Counter.t;
  m_decode : Counter.t;
  g_established : Gauge.t;
  g_rib : Gauge.t;
}

let make_metrics reg ~router_id =
  let msg dir ty =
    Registry.counter reg ~subsystem:"bgp"
      ~help:"BGP messages by direction and type"
      ~labels:[ ("dir", dir); ("type", ty) ]
      "messages_total"
  in
  {
    tx_open = msg "tx" "open";
    tx_update = msg "tx" "update";
    tx_keepalive = msg "tx" "keepalive";
    tx_notification = msg "tx" "notification";
    rx_open = msg "rx" "open";
    rx_update = msg "rx" "update";
    rx_keepalive = msg "rx" "keepalive";
    rx_notification = msg "rx" "notification";
    m_decode =
      Registry.counter reg ~subsystem:"bgp" ~help:"Undecodable BGP messages"
        "decode_errors_total";
    g_established =
      Registry.gauge reg ~subsystem:"bgp"
        ~help:"Currently established BGP sessions" "established_sessions";
    g_rib =
      Registry.gauge reg ~subsystem:"bgp" ~help:"Loc-RIB prefixes per router"
        ~labels:[ ("router", Ipv4.to_string router_id) ]
        "rib_routes";
  }

type t = {
  proc : Process.t;
  cfg : config;
  rib : Rib.t;
  trace : Trace.t option;
  m : metrics;
  mutable peers : peer list;  (* reversed insertion order *)
  mutable next_peer_id : int;
  mutable rib_hooks : (Prefix.t -> Rib.route list -> unit) list;
  mutable established_hooks : (int -> unit) list;
  mutable down_hooks : (int -> unit) list;
  mutable started : bool;
  mutable opens_sent : int;
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable keepalives_sent : int;
  mutable keepalives_received : int;
  mutable notifications_sent : int;
  mutable decode_errors : int;
  inbox : (peer * Bytes.t) Queue.t;
  mutable busy : bool;
}

let sched t = Process.scheduler t.proc
let now t = Sched.now (sched t)

let tracef t fmt =
  match t.trace with
  | Some trace -> Trace.addf trace ~at:(now t) ~label:"bgp" fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let create ?trace proc cfg =
  let t =
    {
      proc;
      cfg;
      rib = Rib.create ();
      trace;
      m =
        make_metrics
          (Sched.registry (Process.scheduler proc))
          ~router_id:cfg.router_id;
      peers = [];
      next_peer_id = 0;
      rib_hooks = [];
      established_hooks = [];
      down_hooks = [];
      started = false;
      opens_sent = 0;
      updates_sent = 0;
      updates_received = 0;
      keepalives_sent = 0;
      keepalives_received = 0;
      notifications_sent = 0;
      decode_errors = 0;
      inbox = Queue.create ();
      busy = false;
    }
  in
  t

let process t = t.proc
let asn t = t.cfg.asn
let router_id t = t.cfg.router_id
let peer_list t = List.rev t.peers

let find_peer t id =
  match List.find_opt (fun p -> p.id = id) t.peers with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Speaker: unknown peer %d" id)

let peer_state t id = (find_peer t id).state
let peer_ids t = List.rev_map (fun p -> p.id) t.peers

let established_count t =
  List.length (List.filter (fun p -> p.state = Established) t.peers)

let best t prefix = Rib.best t.rib prefix
let routes t = Rib.loc_rib t.rib

let on_loc_rib_change t f = t.rib_hooks <- t.rib_hooks @ [ f ]
let on_established t f = t.established_hooks <- t.established_hooks @ [ f ]
let on_session_down t f = t.down_hooks <- t.down_hooks @ [ f ]

let counters t =
  {
    opens_sent = t.opens_sent;
    updates_sent = t.updates_sent;
    updates_received = t.updates_received;
    keepalives_sent = t.keepalives_sent;
    keepalives_received = t.keepalives_received;
    notifications_sent = t.notifications_sent;
    decode_errors = t.decode_errors;
  }

(* --- sending ------------------------------------------------------- *)

let send_msg t peer msg =
  (match msg with
  | Msg.Open _ ->
      t.opens_sent <- t.opens_sent + 1;
      Counter.incr t.m.tx_open
  | Msg.Update _ ->
      t.updates_sent <- t.updates_sent + 1;
      Counter.incr t.m.tx_update
  | Msg.Keepalive ->
      t.keepalives_sent <- t.keepalives_sent + 1;
      Counter.incr t.m.tx_keepalive
  | Msg.Notification _ ->
      t.notifications_sent <- t.notifications_sent + 1;
      Counter.incr t.m.tx_notification);
  Channel.send peer.endpoint (Msg.encode msg)

(* Export-time attribute rewrite (eBGP): prepend our ASN, set
   NEXT_HOP to ourselves, strip MED and LOCAL_PREF; COMMUNITIES are
   transitive and carried through. *)
let export_attrs t (route : Rib.route) =
  {
    Msg.origin = route.Rib.attrs.Msg.origin;
    as_path = t.cfg.asn :: route.Rib.attrs.Msg.as_path;
    next_hop = t.cfg.router_id;
    med = None;
    local_pref = None;
    communities = route.Rib.attrs.Msg.communities;
  }

(* Flush one peer's pending sets as UPDATE messages, grouping NLRI
   that share identical exported attributes. *)
let flush_peer t peer =
  peer.mrai_armed <- false;
  if peer.state = Established then begin
    let withdraws =
      Prefix_set.filter (fun p -> Prefix_set.mem p peer.advertised)
        peer.pending_withdraw
    in
    let announces = peer.pending_announce in
    peer.pending_withdraw <- Prefix_set.empty;
    peer.pending_announce <- Prefix_set.empty;
    (* Re-read the loc-rib at flush time (MRAI coalescing). *)
    let grouped : (Msg.attrs * Prefix.t list ref) list ref = ref [] in
    let extra_withdraws = ref Prefix_set.empty in
    Prefix_set.iter
      (fun prefix ->
        match Rib.best t.rib prefix with
        | [] -> extra_withdraws := Prefix_set.add prefix !extra_withdraws
        | (first :: _ : Rib.route list) as bests ->
            (* Split horizon: never advertise back to a source peer. *)
            let from_this_peer =
              List.exists (fun (r : Rib.route) -> r.Rib.peer = peer.id) bests
            in
            if from_this_peer then
              extra_withdraws := Prefix_set.add prefix !extra_withdraws
            else
              let attrs = export_attrs t first in
              (match Policy.eval peer.export prefix attrs with
              | None -> extra_withdraws := Prefix_set.add prefix !extra_withdraws
              | Some attrs -> (
                  match
                    List.find_opt (fun (a, _) -> Msg.attrs_equal a attrs) !grouped
                  with
                  | Some (_, nlri) -> nlri := prefix :: !nlri
                  | None -> grouped := (attrs, ref [ prefix ]) :: !grouped)))
      announces;
    let withdraws =
      Prefix_set.union withdraws
        (Prefix_set.filter (fun p -> Prefix_set.mem p peer.advertised)
           !extra_withdraws)
    in
    let withdraw_list = Prefix_set.elements withdraws in
    (* One UPDATE carrying all withdraws (possibly with the first
       announce group), then one per remaining group. *)
    (match (!grouped, withdraw_list) with
    | [], [] -> ()
    | [], w ->
        send_msg t peer (Msg.Update { withdrawn = w; reach = None });
        peer.advertised <-
          Prefix_set.diff peer.advertised (Prefix_set.of_list w)
    | groups, w ->
        List.iteri
          (fun i (attrs, nlri) ->
            let withdrawn = if i = 0 then w else [] in
            send_msg t peer
              (Msg.Update { withdrawn; reach = Some (attrs, List.rev !nlri) }))
          groups;
        peer.advertised <-
          Prefix_set.diff peer.advertised (Prefix_set.of_list w);
        List.iter
          (fun (_, nlri) ->
            peer.advertised <-
              Prefix_set.union peer.advertised (Prefix_set.of_list !nlri))
          groups)
  end

let schedule_flush t peer =
  if Time.equal t.cfg.mrai Time.zero then flush_peer t peer
  else if not peer.mrai_armed then begin
    peer.mrai_armed <- true;
    Process.after t.proc t.cfg.mrai (fun () -> flush_peer t peer)
  end

let enqueue_prefix t prefix =
  List.iter
    (fun peer ->
      if peer.state = Established then begin
        (match Rib.best t.rib prefix with
        | [] ->
            peer.pending_withdraw <- Prefix_set.add prefix peer.pending_withdraw;
            peer.pending_announce <- Prefix_set.remove prefix peer.pending_announce
        | _ :: _ ->
            peer.pending_announce <- Prefix_set.add prefix peer.pending_announce;
            peer.pending_withdraw <- Prefix_set.remove prefix peer.pending_withdraw);
        schedule_flush t peer
      end)
    t.peers

let notify_rib_change t prefix routes =
  List.iter (fun f -> f prefix routes) t.rib_hooks

let refresh_and_propagate t prefix =
  match Rib.refresh ~multipath:t.cfg.multipath t.rib prefix with
  | Rib.Unchanged -> ()
  | Rib.Changed routes ->
      Gauge.set t.m.g_rib (float_of_int (Rib.loc_rib_size t.rib));
      notify_rib_change t prefix routes;
      enqueue_prefix t prefix

(* --- session management -------------------------------------------- *)

let start_keepalive t peer =
  let interval = Time.div peer.negotiated_hold 3 in
  let interval = Time.max interval (Time.of_ms 100) in
  peer.keepalive_timer <-
    Some (Process.every t.proc interval (fun () -> send_msg t peer Msg.Keepalive))

let session_established t peer =
  peer.state <- Established;
  Gauge.add t.m.g_established 1.0;
  tracef t "session to AS%d established" peer.remote_asn;
  start_keepalive t peer;
  List.iter (fun f -> f peer.id) t.established_hooks;
  (* Initial table transfer: everything in the Loc-RIB. *)
  List.iter
    (fun (prefix, _) ->
      peer.pending_announce <- Prefix_set.add prefix peer.pending_announce)
    (Rib.loc_rib t.rib);
  schedule_flush t peer

let session_down t peer ~reason =
  if peer.state <> Idle then begin
    tracef t "session to AS%d down (%s)" peer.remote_asn reason;
    if peer.state = Established then Gauge.add t.m.g_established (-1.0);
    peer.state <- Idle;
    Option.iter Sched.cancel_recurring peer.keepalive_timer;
    peer.keepalive_timer <- None;
    peer.pending_announce <- Prefix_set.empty;
    peer.pending_withdraw <- Prefix_set.empty;
    peer.advertised <- Prefix_set.empty;
    let affected = Rib.drop_peer t.rib ~peer:peer.id in
    List.iter (refresh_and_propagate t) affected;
    List.iter (fun f -> f peer.id) t.down_hooks
  end

(* --- receiving ----------------------------------------------------- *)

let handle_open t peer (o : Msg.open_msg) =
  if o.Msg.asn <> peer.remote_asn then begin
    send_msg t peer (Msg.Notification { code = 2; subcode = 2 });
    session_down t peer ~reason:"bad peer AS"
  end
  else begin
    peer.remote_id <- o.Msg.bgp_id;
    peer.negotiated_hold <-
      Time.min t.cfg.hold_time (Time.of_sec (float_of_int o.Msg.hold_time_s));
    send_msg t peer Msg.Keepalive;
    match peer.state with
    | OpenSent -> peer.state <- OpenConfirm
    | Idle | OpenConfirm | Established -> peer.state <- OpenConfirm
  end

let handle_update t peer (u : Msg.update) =
  t.updates_received <- t.updates_received + 1;
  Counter.incr t.m.rx_update;
  let affected = ref Prefix_set.empty in
  List.iter
    (fun prefix ->
      Rib.withdraw_in t.rib ~peer:peer.id prefix;
      affected := Prefix_set.add prefix !affected)
    u.Msg.withdrawn;
  (match u.Msg.reach with
  | None -> ()
  | Some (attrs, nlri) ->
      (* AS-path loop prevention. *)
      if not (List.mem t.cfg.asn attrs.Msg.as_path) then
        List.iter
          (fun prefix ->
            match Policy.eval peer.import prefix attrs with
            | None ->
                Rib.withdraw_in t.rib ~peer:peer.id prefix;
                affected := Prefix_set.add prefix !affected
            | Some attrs ->
                Rib.set_in t.rib ~peer:peer.id ~peer_bgp_id:peer.remote_id
                  ~at:(now t) prefix attrs;
                affected := Prefix_set.add prefix !affected)
          nlri);
  Prefix_set.iter (refresh_and_propagate t) !affected

let handle_message t peer msg =
  peer.last_rx <- now t;
  match msg with
  | Msg.Open o ->
      Counter.incr t.m.rx_open;
      handle_open t peer o
  | Msg.Keepalive -> (
      t.keepalives_received <- t.keepalives_received + 1;
      Counter.incr t.m.rx_keepalive;
      match peer.state with
      | OpenConfirm -> session_established t peer
      | Idle | OpenSent | Established -> ())
  | Msg.Update u ->
      if peer.state = Established then handle_update t peer u
  | Msg.Notification { code; subcode } ->
      Counter.incr t.m.rx_notification;
      session_down t peer
        ~reason:(Printf.sprintf "notification %d/%d received" code subcode)

let process_message t peer bytes =
  match Msg.decode bytes with
  | Ok msg -> handle_message t peer msg
  | Error err ->
      t.decode_errors <- t.decode_errors + 1;
      Counter.incr t.m.m_decode;
      tracef t "decode error from AS%d: %s" peer.remote_asn err;
      send_msg t peer (Msg.Notification { code = 1; subcode = 0 });
      session_down t peer ~reason:"message decode error"

(* Received messages drain through a single serialised work queue,
   each consuming [processing_delay] of virtual CPU time — a real
   daemon is effectively single-threaded, and this is what stretches
   convergence into the multi-millisecond range the FTI mode tracks. *)
let rec process_next t =
  match Queue.take_opt t.inbox with
  | None -> t.busy <- false
  | Some (peer, bytes) ->
      process_message t peer bytes;
      Process.after t.proc t.cfg.processing_delay (fun () -> process_next t)

let receive t peer bytes =
  if Process.is_alive t.proc then
    if Time.equal t.cfg.processing_delay Time.zero then
      process_message t peer bytes
    else begin
      Queue.add (peer, bytes) t.inbox;
      if not t.busy then begin
        t.busy <- true;
        Process.after t.proc t.cfg.processing_delay (fun () -> process_next t)
      end
    end

let bind_endpoint t peer endpoint =
  peer.endpoint <- endpoint;
  Channel.set_receiver endpoint (fun bytes -> receive t peer bytes);
  Channel.set_on_close endpoint (fun () ->
      if Process.is_alive t.proc then
        session_down t peer ~reason:"channel closed")

let send_open t peer =
  peer.state <- OpenSent;
  peer.last_rx <- now t;
  send_msg t peer
    (Msg.Open
       {
         asn = t.cfg.asn;
         hold_time_s = int_of_float (Time.to_sec t.cfg.hold_time);
         bgp_id = t.cfg.router_id;
       })

let add_peer ?(import = Policy.accept_all) ?(export = Policy.accept_all) t
    ~remote_asn endpoint =
  let peer =
    {
      id = t.next_peer_id;
      remote_asn;
      endpoint;
      import;
      export;
      state = Idle;
      remote_id = Ipv4.any;
      negotiated_hold = t.cfg.hold_time;
      last_rx = Time.zero;
      keepalive_timer = None;
      pending_announce = Prefix_set.empty;
      pending_withdraw = Prefix_set.empty;
      mrai_armed = false;
      advertised = Prefix_set.empty;
    }
  in
  t.next_peer_id <- t.next_peer_id + 1;
  t.peers <- peer :: t.peers;
  bind_endpoint t peer endpoint;
  peer.id

(* Hold-timer supervision: one shared periodic check. *)
let check_holds t =
  List.iter
    (fun peer ->
      match peer.state with
      | Idle -> ()
      | OpenSent ->
          (* Retry OPEN if the peer stays silent. *)
          if Time.(Time.sub (now t) peer.last_rx > peer.negotiated_hold) then
            send_open t peer
      | OpenConfirm | Established ->
          if Time.(Time.sub (now t) peer.last_rx > peer.negotiated_hold) then begin
            send_msg t peer (Msg.Notification { code = 4; subcode = 0 });
            session_down t peer ~reason:"hold timer expired"
          end)
    t.peers

let local_attrs t =
  {
    Msg.origin = Msg.Igp;
    as_path = [];
    next_hop = t.cfg.router_id;
    med = None;
    local_pref = None;
    communities = [];
  }

let announce t prefix =
  Rib.add_local t.rib ~at:(now t) prefix (local_attrs t);
  refresh_and_propagate t prefix

let withdraw_network t prefix =
  Rib.remove_local t.rib prefix;
  refresh_and_propagate t prefix

let start t =
  if not t.started then begin
    t.started <- true;
    List.iter (fun prefix -> announce t prefix) t.cfg.networks;
    List.iter (fun peer -> send_open t peer) (peer_list t);
    let check_interval = Time.max (Time.div t.cfg.hold_time 3) (Time.of_ms 100) in
    ignore (Process.every t.proc check_interval (fun () -> check_holds t));
    tracef t "speaker AS%d started with %d peers" t.cfg.asn (List.length t.peers)
  end

let shutdown t =
  List.iter
    (fun peer ->
      if peer.state <> Idle then begin
        send_msg t peer (Msg.Notification { code = 6; subcode = 0 });
        session_down t peer ~reason:"administrative shutdown"
      end)
    t.peers

let start_peer t peer_id =
  let peer = find_peer t peer_id in
  if t.started && peer.state = Idle then send_open t peer

let replace_peer_endpoint t peer_id endpoint =
  let peer = find_peer t peer_id in
  if peer.state <> Idle then
    invalid_arg "Speaker.replace_peer_endpoint: session not Idle";
  bind_endpoint t peer endpoint
