lib/dataplane/packet_engine.mli: Flow_key Fwd Horse_engine Horse_net Horse_topo Sched Topology
