lib/baseline/mininet_model.ml: Array Fat_tree Flow_key Format Fwd Horse_dataplane Horse_engine Horse_net Horse_topo Ipv4 List Option Packet_engine Prefix Rng Sched Spf Time Topology Wall
