lib/p4/runtime.ml: Bytes Char Format Horse_net Int Interp List Printf String
