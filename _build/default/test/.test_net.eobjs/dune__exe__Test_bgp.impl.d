test/test_bgp.ml: Alcotest Bytes Channel Horse_bgp Horse_emulation Horse_engine Horse_net Ipv4 List Msg Policy Prefix Process QCheck2 QCheck_alcotest Rib Sched Speaker Time
