lib/dataplane/fwd.mli: Format Horse_net Ipv4 Prefix
