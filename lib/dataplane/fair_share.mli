(** Max-min fair bandwidth allocation.

    The fluid traffic model's rate assignment: every flow gets the
    largest rate such that (a) no link exceeds its capacity, (b) no
    flow exceeds its demand, and (c) a flow's rate can only be
    increased by decreasing the rate of a flow with an equal or
    smaller rate — the classic max-min fairness criterion that a
    network of fair queues converges to.

    Two implementations share the semantics: {!compute} is the
    production sorted-demand water-filling solver over dense arena
    buffers (the fluid hot path), {!compute_reference} is the textbook
    progressive-filling loop kept for differential testing. *)

type flow_input = {
  demand : float;  (** offered rate, bps; must be >= 0 *)
  links : int list;  (** directed link ids along the path; [] = unconstrained *)
}

type arena
(** Reusable scratch buffers for {!compute}: dense link indexing and
    CSR adjacency in both directions, grown geometrically and never
    shrunk, so a steady-state solve allocates only its result array.
    An arena is single-solver state — do not share one between
    concurrent solves (there is no concurrency in the simulator). *)

val create_arena : unit -> arena

val compute :
  ?arena:arena -> capacity:(int -> float) -> flow_input array -> float array
(** [compute ~capacity flows] returns the max-min rate of each flow,
    positionally. [capacity] gives the bps capacity of a link id and
    must be positive for every referenced link.

    Sorted-demand water filling: flows are ordered by demand once, and
    each round either saturates one bottleneck link or retires the
    whole batch of demand-limited flows below the current water level,
    so the round count is bounded by [#links + #distinct-demand-batches]
    rather than [#flows]. Without [?arena] a process-wide default
    arena is reused.

    @raise Invalid_argument on a negative demand or non-positive
    capacity. *)

val compute_reference :
  capacity:(int -> float) -> flow_input array -> float array
(** The original O(rounds × (flows + links)) progressive-filling
    implementation. Semantically identical to {!compute} (asserted by
    the differential property suite); kept as the testing oracle. *)

val link_loads : flow_input array -> float array -> (int * float) list
(** Total allocated rate per link id, for checking feasibility. *)

(** Incremental max-min solver with persistent bottleneck state.

    A {!Delta.t} holds the full flow/link membership plus, per link,
    the water level at which it last saturated. Arrival, departure and
    reroute events accumulate between flushes; {!Delta.flush} re-runs
    water filling only over the links the events touched, clamping
    every other member of those links at its previous rate (it behaves
    exactly like a demand-limited flow whose external bottleneck is
    untouched). The scoped solution is accepted only when (a) every
    clamped flow reproduces its previous rate bit-for-bit and (b) no
    in-solve link's saturation level changed while it still has
    clamped members; any breach promotes the breached flows into the
    scope and the solve expands along the flow/link sharing graph —
    the bottleneck-set change propagation of the delta design. The
    fixpoint therefore agrees with a from-scratch {!compute} of the
    component, while an event whose bottleneck structure is local
    costs work proportional to its neighbourhood, not the component.

    Events whose links all sit strictly below saturation skip the
    water-fill entirely: a link that never binds (level = infinity)
    with residual capacity for the added load cannot change the
    bottleneck set, so an arrival commits at its demand, and a
    departure or reroute off such links relaxes constraints without
    moving anyone's rate — O(path) per event, the common case when
    links run below capacity.

    Flows outside the final scope are never written: their rates are
    physically the same floats as before the flush. *)
module Delta : sig
  type t

  type stats = {
    solves : int;  (** flushes that had pending events *)
    events : int;  (** add/remove/reroute events received *)
    flows_touched : int;
        (** flows entering a scoped water-fill, summed over all solve
            iterations — the solver-work metric the benchmarks gate *)
    links_touched : int;
    expansions : int;  (** fixpoint iterations beyond the first *)
    promotions : int;  (** clamped flows pulled into a scope *)
  }

  val create : capacity:(int -> float) -> unit -> t
  (** [capacity] gives the bps capacity of a link id; it is consulted
      once per link on first reference and must be positive. *)

  val add_flow : t -> id:int -> demand:float -> links:int list -> unit
  (** @raise Invalid_argument on a negative demand or duplicate id. *)

  val remove_flow : t -> id:int -> unit
  (** Idempotent. *)

  val set_links : t -> id:int -> links:int list -> unit
  (** Reroute: move the flow onto a new path.
      @raise Invalid_argument on an unknown id. *)

  val flush : t -> unit
  (** Process all pending events with one delta solve (no-op when
      nothing is pending). *)

  val rate : t -> id:int -> float
  (** Rate as of the last flush (0 for an unknown id). *)

  val touched : t -> int list
  (** Flow ids whose rate was (re)assigned by the last flush —
      everything else is untouched memory. *)

  val flow_count : t -> int
  val stats : t -> stats
end
