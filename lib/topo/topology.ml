open Horse_net

type kind = Host | Switch | Router

let pp_kind fmt k =
  Format.pp_print_string fmt
    (match k with Host -> "host" | Switch -> "switch" | Router -> "router")

type node = {
  id : int;
  name : string;
  kind : kind;
  mutable ip : Ipv4.t option;
  mutable mac : Mac.t option;
}

type link = {
  link_id : int;
  src : int;
  dst : int;
  mutable capacity : float;
  delay : Horse_engine.Time.t;
  peer : int;
}

type t = {
  mutable node_arr : node array;
  mutable nn : int;
  mutable link_arr : link array;
  mutable nl : int;
  mutable adj : link list array;  (* out-links per node, reversed *)
}

let dummy_node = { id = -1; name = ""; kind = Host; ip = None; mac = None }

let dummy_link =
  { link_id = -1; src = -1; dst = -1; capacity = 0.0; delay = Horse_engine.Time.zero; peer = -1 }

let create () =
  {
    node_arr = Array.make 16 dummy_node;
    nn = 0;
    link_arr = Array.make 32 dummy_link;
    nl = 0;
    adj = Array.make 16 [];
  }

let ensure_node_capacity t =
  if t.nn = Array.length t.node_arr then begin
    let bigger = Array.make (2 * t.nn) dummy_node in
    Array.blit t.node_arr 0 bigger 0 t.nn;
    t.node_arr <- bigger;
    let adj = Array.make (2 * t.nn) [] in
    Array.blit t.adj 0 adj 0 t.nn;
    t.adj <- adj
  end

let ensure_link_capacity t =
  if t.nl + 1 >= Array.length t.link_arr then begin
    let bigger = Array.make (2 * Array.length t.link_arr) dummy_link in
    Array.blit t.link_arr 0 bigger 0 t.nl;
    t.link_arr <- bigger
  end

let default_name kind id =
  Format.asprintf "%a%d" pp_kind kind id

let add_node t ?name ?ip ?mac kind =
  ensure_node_capacity t;
  let id = t.nn in
  let name = Option.value name ~default:(default_name kind id) in
  let n = { id; name; kind; ip; mac } in
  t.node_arr.(id) <- n;
  t.nn <- t.nn + 1;
  n

let add_duplex t ?(delay = Horse_engine.Time.of_us 10) ~capacity (a : node) (b : node) =
  if capacity <= 0.0 then invalid_arg "Topology.add_duplex: capacity <= 0";
  if a.id = b.id then invalid_arg "Topology.add_duplex: self-loop";
  ensure_link_capacity t;
  let fwd_id = t.nl and rev_id = t.nl + 1 in
  let fwd =
    { link_id = fwd_id; src = a.id; dst = b.id; capacity; delay; peer = rev_id }
  in
  let rev =
    { link_id = rev_id; src = b.id; dst = a.id; capacity; delay; peer = fwd_id }
  in
  t.link_arr.(fwd_id) <- fwd;
  t.link_arr.(rev_id) <- rev;
  t.nl <- t.nl + 2;
  t.adj.(a.id) <- fwd :: t.adj.(a.id);
  t.adj.(b.id) <- rev :: t.adj.(b.id);
  (fwd, rev)

let node t id =
  if id < 0 || id >= t.nn then
    invalid_arg (Printf.sprintf "Topology.node: unknown id %d" id);
  t.node_arr.(id)

let link t id =
  if id < 0 || id >= t.nl then
    invalid_arg (Printf.sprintf "Topology.link: unknown id %d" id);
  t.link_arr.(id)

let set_capacity t id capacity =
  if capacity <= 0.0 then invalid_arg "Topology.set_capacity: capacity <= 0";
  (link t id).capacity <- capacity

let nodes t = List.init t.nn (fun i -> t.node_arr.(i))
let links t = List.init t.nl (fun i -> t.link_arr.(i))
let n_nodes t = t.nn
let n_links t = t.nl
let out_links t id = List.rev t.adj.(id)

let find_link t ~src ~dst =
  List.find_opt (fun l -> l.dst = dst) (out_links t src)

let filter_kind t kind = List.filter (fun n -> n.kind = kind) (nodes t)
let hosts t = filter_kind t Host
let switches t = filter_kind t Switch
let routers t = filter_kind t Router

let node_by_name t name =
  List.find_opt (fun n -> String.equal n.name name) (nodes t)

let node_by_ip t ip =
  List.find_opt
    (fun n -> match n.ip with Some a -> Ipv4.equal a ip | None -> false)
    (nodes t)

let pp_node fmt n =
  match n.ip with
  | Some ip -> Format.fprintf fmt "%s(%a)" n.name Ipv4.pp ip
  | None -> Format.pp_print_string fmt n.name

let pp_link t fmt l =
  Format.fprintf fmt "%s -> %s (%.1fGbps)" (node t l.src).name
    (node t l.dst).name (l.capacity /. 1e9)
