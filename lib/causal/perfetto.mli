(** Chrome-trace-event (Perfetto) JSON export.

    Writes a [{"traceEvents": [...]}] file that loads directly in
    {{:https://ui.perfetto.dev}ui.perfetto.dev} (or
    [chrome://tracing]), with timestamps in {b virtual} microseconds:

    - a {b spans} track: every completed [Horse_telemetry.Span] as a
      complete ("X") slice, named and nested as recorded;
    - a {b mode} track: the DES/FTI residency as back-to-back slices
      rebuilt from the scheduler's transition list, plus one instant
      ("i") event per transition carrying its reason;
    - one track per causal subsystem ([chan], [bgp], [fault], [fib],
      ...): each {!Horse_engine.Causal} node as a 1 µs slice, with a
      flow arrow ("s"/"f" pair) from its parent's slice — the arrows
      render the provenance chains across tracks.

    Only the newest [max_causal_events] causal nodes are exported
    (default 50_000) so a storm run cannot produce a file the UI
    chokes on; arrows into the dropped prefix are omitted. *)

val write :
  path:string ->
  ?graph:Horse_engine.Causal.t ->
  ?max_causal_events:int ->
  spans:Horse_telemetry.Span.record list ->
  transitions:Horse_engine.Sched.transition list ->
  end_time:Horse_engine.Time.t ->
  unit ->
  unit
(** Writes the file atomically enough for our purposes (single
    [open_out]/[close_out]). [end_time] closes the final mode slice. *)
