open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane

type size_dist =
  | Fixed of float
  | Uniform of float * float
  | Pareto of { scale : float; shape : float }
  | Mix of (float * size_dist) list

let rec sample_size rng = function
  | Fixed s -> s
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Pareto { scale; shape } ->
      let u = Float.max 1e-12 (Rng.float rng 1.0) in
      scale /. (u ** (1.0 /. shape))
  | Mix weighted ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
      let pick = Rng.float rng total in
      let rec go acc = function
        | [] -> Fixed 0.0 (* unreachable for non-empty mixes *)
        | (w, d) :: rest -> if pick < acc +. w then d else go (acc +. w) rest
      in
      sample_size rng (go 0.0 weighted)

(* Short queries, medium updates, heavy background — the classic
   web-search shape. *)
let websearch =
  Mix
    [
      (0.5, Uniform (8e3, 80e3)) (* 1-10 KB queries *);
      (0.3, Uniform (80e3, 8e6)) (* 10 KB - 1 MB *);
      (0.15, Uniform (8e6, 80e6)) (* 1-10 MB *);
      (0.05, Pareto { scale = 80e6; shape = 1.5 }) (* 10 MB+ tail *);
    ]

type record = {
  key : Flow_key.t;
  size_bits : float;
  started : Time.t;
  completed : Time.t;
  fct : Time.t;
}

type t = {
  demand : float;
  mutable n_arrivals : int;
  mutable n_unroutable : int;
  mutable rev_records : record list;
  mutable n_completed : int;
}

let poisson ?(demand = 1e9) ?(seed = 4242) ~exp ~hosts ~route ~arrival_rate
    ~sizes ~until () =
  if arrival_rate <= 0.0 then invalid_arg "Traffic.poisson: rate <= 0";
  if Array.length hosts < 2 then invalid_arg "Traffic.poisson: need >= 2 hosts";
  let t =
    {
      demand;
      n_arrivals = 0;
      n_unroutable = 0;
      rev_records = [];
      n_completed = 0;
    }
  in
  let rng = Rng.create seed in
  let sched = Experiment.scheduler exp in
  let fluid = Experiment.fluid exp in
  let next_gap () =
    let u = Float.max 1e-12 (Rng.float rng 1.0) in
    Time.of_sec (-.log u /. arrival_rate)
  in
  let launch () =
    let n = Array.length hosts in
    let si = Rng.int rng n in
    let di = (si + 1 + Rng.int rng (n - 1)) mod n in
    match (hosts.(si).Topology.ip, hosts.(di).Topology.ip) with
    | Some src, Some dst ->
        let key =
          Flow_key.make ~src ~dst
            ~src_port:(1024 + (t.n_arrivals mod 60000))
            ~dst_port:(2048 + (t.n_arrivals / 60000 mod 60000))
            ()
        in
        t.n_arrivals <- t.n_arrivals + 1;
        let size_bits = Float.max 1.0 (sample_size rng sizes) in
        (match route key with
        | Error _ -> t.n_unroutable <- t.n_unroutable + 1
        | Ok path ->
            ignore
              (Fluid.start_finite_flow ~demand:t.demand fluid ~key ~path
                 ~size_bits
                 ~on_complete:(fun (f : Flow.t) ->
                   let completed =
                     Option.value f.Flow.stopped_at ~default:(Sched.now sched)
                   in
                   t.n_completed <- t.n_completed + 1;
                   t.rev_records <-
                     {
                       key;
                       size_bits;
                       started = f.Flow.started;
                       completed;
                       fct = Time.sub completed f.Flow.started;
                     }
                     :: t.rev_records)))
    | None, _ | _, None -> t.n_unroutable <- t.n_unroutable + 1
  in
  let rec arm at =
    if Time.(at <= until) then
      ignore
        (Sched.schedule_at sched at (fun () ->
             launch ();
             arm (Time.add (Sched.now sched) (next_gap ()))))
  in
  arm (Time.add (Sched.now sched) (next_gap ()));
  t

let arrivals t = t.n_arrivals
let completions t = t.n_completed
let unroutable t = t.n_unroutable
let in_flight t = t.n_arrivals - t.n_unroutable - t.n_completed
let records t = List.rev t.rev_records
let fct_seconds t = List.rev_map (fun r -> Time.to_sec r.fct) t.rev_records

let slowdowns t =
  List.rev_map
    (fun r -> Time.to_sec r.fct /. (r.size_bits /. t.demand))
    t.rev_records
