open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane
open Horse_emulation
open Horse_bgp
module Registry = Horse_telemetry.Registry

(* A sharded BGP fabric: the Routed_fabric experiment partitioned over
   shards and driven in lockstep by a Barrier. The shard structure —
   which nodes live where, which sessions cross the cut — is fixed by
   the Partition alone; how many domains execute the shards is chosen
   at run time and changes nothing observable. That is the whole
   determinism argument, and the differential tests hold the
   implementation to it byte-for-byte. *)

type shard_ctx = {
  shard : Shard.t;
  sh_trace : Trace.t;
  sh_cm : Connection_manager.t;
  mutable sh_speakers : (int * Speaker.t) list;  (* node id asc *)
  mutable sh_fib_writes : int;
  sh_fib_prov : (int * Prefix.t, Causal.id) Hashtbl.t;
  mutable sh_peer_slots : int;  (* peers added across this shard's speakers *)
  mutable sh_injector : Horse_faults.Injector.t option;
  mutable sh_converged_at : Time.t option;
}

type session = {
  node_a : int;
  node_b : int;
  shard_a : int;  (* owner shard: applies faults, recreates channels *)
  shard_b : int;
  peer_at_a : int;
  peer_at_b : int;
  mutable channel : Channel.t;
  session_name : string;
}

type t = {
  mc_topo : Topology.t;
  partition : Partition.t;
  barrier : Barrier.t;
  ctxs : shard_ctx array;
  owner : int array;  (* node id -> shard index *)
  speakers : (int, Speaker.t) Hashtbl.t;
  processes : (int, Process.t) Hashtbl.t;
  tables : Fwd.t array;  (* per node id; each written only by its owner *)
  originated : (int, Prefix.t list) Hashtbl.t;
  mutable prefixes : Prefix.t list;
  mutable sessions : session list;
  session_by_site : (string, session) Hashtbl.t;
}

let synth_router_id id = Ipv4.of_octets 10 255 (id / 250) ((id mod 250) + 1)

let is_speaker_node (n : Topology.node) =
  match n.Topology.kind with
  | Topology.Switch | Topology.Router -> true
  | Topology.Host -> false

let node_name t id = (Topology.node t.mc_topo id).Topology.name

let site_key a b = if String.compare a b <= 0 then a ^ "<->" ^ b else b ^ "<->" ^ a

(* Same FIB translation as Routed_fabric, against the owner shard's
   scheduler and provenance table. Runs on the owner's domain. *)
let install_fib t ctx node peer_links prefix (routes : Rib.route list) =
  let sched = Shard.sched ctx.shard in
  let next_hops =
    List.filter_map
      (fun (r : Rib.route) ->
        if r.Rib.peer = Rib.local_peer then None
        else Hashtbl.find_opt peer_links r.Rib.peer)
      routes
  in
  let table = t.tables.(node) in
  let record_write () =
    ctx.sh_fib_writes <- ctx.sh_fib_writes + 1;
    let cause =
      Sched.cause_point sched ~kind:"fib:write" (fun () ->
          Printf.sprintf "%s %s" (node_name t node) (Prefix.to_string prefix))
    in
    Hashtbl.replace ctx.sh_fib_prov (node, prefix) cause
  in
  Sched.protect_cause sched (fun () ->
      match (routes, next_hops) with
      | [], _ ->
          Fwd.remove_route table prefix;
          record_write ()
      | _ :: _, [] -> ()
      | _ :: _, _ :: _ ->
          Fwd.set_route table prefix ~next_hops;
          record_write ())

let build ?(asn_base = 64512) ?(hold_time = Time.of_sec 9.0)
    ?(mrai = Time.zero) ?(packing = true) ?sched_config ?(seed = 42)
    ?(quantum = Time.of_ms 1) ?(latency = Time.of_ms 1) ~partition
    ~originate topo =
  if Time.(latency < quantum) then
    invalid_arg
      "Multicore.build: channel latency below the barrier quantum breaks \
       conservative lookahead";
  Partition.validate partition topo;
  let n_sh = Partition.n_shards partition in
  let ctxs =
    Array.init n_sh (fun i ->
        let shard =
          Shard.create ?config:sched_config ~index:i
            ~name:(Partition.shard_name partition i)
            ~seed ()
        in
        let sh_trace = Trace.create () in
        Trace.bind_registry sh_trace (Shard.registry shard);
        {
          shard;
          sh_trace;
          sh_cm =
            Connection_manager.create (Shard.sched shard) sh_trace;
          sh_speakers = [];
          sh_fib_writes = 0;
          sh_fib_prov = Hashtbl.create 256;
          sh_peer_slots = 0;
          sh_injector = None;
          sh_converged_at = None;
        })
  in
  let barrier = Barrier.create ~quantum (Array.map (fun c -> c.shard) ctxs) in
  let owner = Array.make (Topology.n_nodes topo) 0 in
  List.iter
    (fun (n : Topology.node) ->
      owner.(n.Topology.id) <- partition.Partition.owner n.Topology.id)
    (Topology.nodes topo);
  let t =
    {
      mc_topo = topo;
      partition;
      barrier;
      ctxs;
      owner;
      speakers = Hashtbl.create 64;
      processes = Hashtbl.create 64;
      tables = Array.init (Topology.n_nodes topo) (fun _ -> Fwd.create ());
      originated = Hashtbl.create 64;
      prefixes = [];
      sessions = [];
      session_by_site = Hashtbl.create 64;
    }
  in
  (* Speakers, each on its owner shard's scheduler. *)
  List.iter
    (fun (n : Topology.node) ->
      if is_speaker_node n then begin
        let ctx = ctxs.(owner.(n.Topology.id)) in
        let sched = Shard.sched ctx.shard in
        let networks = originate n.Topology.id in
        Hashtbl.replace t.originated n.Topology.id networks;
        t.prefixes <- networks @ t.prefixes;
        let router_id =
          match n.Topology.ip with
          | Some ip -> ip
          | None -> synth_router_id n.Topology.id
        in
        let proc = Process.create sched ~name:("bgp-" ^ n.Topology.name) in
        let config =
          {
            (Speaker.default_config ~asn:(asn_base + n.Topology.id) ~router_id) with
            Speaker.hold_time;
            mrai;
            networks;
            packing;
          }
        in
        let speaker = Speaker.create ~trace:ctx.sh_trace proc config in
        Hashtbl.replace t.speakers n.Topology.id speaker;
        Hashtbl.replace t.processes n.Topology.id proc;
        ctx.sh_speakers <- (n.Topology.id, speaker) :: ctx.sh_speakers
      end)
    (Topology.nodes topo);
  Array.iter
    (fun ctx ->
      ctx.sh_speakers <-
        List.sort (fun (a, _) (b, _) -> Int.compare a b) ctx.sh_speakers)
    ctxs;
  t.prefixes <- List.sort_uniq Prefix.compare t.prefixes;
  (* Sessions, one per inter-speaker duplex pair. Same-shard pairs get
     an ordinary CM channel; pairs straddling the cut get a split
     channel whose deliveries ride the barrier mailboxes. *)
  let peer_links : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let peer_links_of node =
    match Hashtbl.find_opt peer_links node with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.add peer_links node tbl;
        tbl
  in
  List.iter
    (fun (l : Topology.link) ->
      if l.Topology.link_id < l.Topology.peer then
        match
          ( Hashtbl.find_opt t.speakers l.Topology.src,
            Hashtbl.find_opt t.speakers l.Topology.dst )
        with
        | Some speaker_a, Some speaker_b ->
            let sa = owner.(l.Topology.src) and sb = owner.(l.Topology.dst) in
            let name =
              Printf.sprintf "bgp %s<->%s"
                (node_name t l.Topology.src)
                (node_name t l.Topology.dst)
            in
            let proc_a = Hashtbl.find t.processes l.Topology.src in
            let proc_b = Hashtbl.find t.processes l.Topology.dst in
            let channel =
              if sa = sb then
                Connection_manager.control_channel ~latency ~name
                  ~owner_a:proc_a ~owner_b:proc_b ctxs.(sa).sh_cm
              else
                Connection_manager.cross_channel ~latency ~name
                  ~cm_a:ctxs.(sa).sh_cm ~cm_b:ctxs.(sb).sh_cm
                  ~post_to_b:(Barrier.post barrier ~src:sa ~dst:sb)
                  ~post_to_a:(Barrier.post barrier ~src:sb ~dst:sa)
                  ~owner_a:proc_a ~owner_b:proc_b ()
            in
            let ep_a, ep_b = Channel.endpoints channel in
            let peer_at_a =
              Speaker.add_peer speaker_a ~remote_asn:(Speaker.asn speaker_b)
                ep_a
            in
            let peer_at_b =
              Speaker.add_peer speaker_b ~remote_asn:(Speaker.asn speaker_a)
                ep_b
            in
            ctxs.(sa).sh_peer_slots <- ctxs.(sa).sh_peer_slots + 1;
            ctxs.(sb).sh_peer_slots <- ctxs.(sb).sh_peer_slots + 1;
            Hashtbl.replace (peer_links_of l.Topology.src) peer_at_a
              l.Topology.link_id;
            Hashtbl.replace (peer_links_of l.Topology.dst) peer_at_b
              l.Topology.peer;
            let session =
              {
                node_a = l.Topology.src;
                node_b = l.Topology.dst;
                shard_a = sa;
                shard_b = sb;
                peer_at_a;
                peer_at_b;
                channel;
                session_name = name;
              }
            in
            t.sessions <- session :: t.sessions;
            Hashtbl.replace t.session_by_site
              (site_key
                 (node_name t l.Topology.src)
                 (node_name t l.Topology.dst))
              session
        | None, _ | _, None -> ())
    (Topology.links topo);
  (* FIB wiring, per shard in node order. *)
  Array.iter
    (fun ctx ->
      List.iter
        (fun (node, speaker) ->
          let links = peer_links_of node in
          Speaker.on_loc_rib_change speaker (fun prefix routes ->
              install_fib t ctx node links prefix routes))
        ctx.sh_speakers)
    ctxs;
  (* Static routes, identical to Routed_fabric. *)
  List.iter
    (fun (h : Topology.node) ->
      if h.Topology.kind = Topology.Host then
        match Topology.out_links topo h.Topology.id with
        | [ up ] -> (
            Fwd.set_route t.tables.(h.Topology.id) Prefix.any
              ~next_hops:[ up.Topology.link_id ];
            match h.Topology.ip with
            | Some ip ->
                let down = Topology.link topo up.Topology.peer in
                Fwd.set_route t.tables.(up.Topology.dst) (Prefix.host ip)
                  ~next_hops:[ down.Topology.link_id ]
            | None -> ())
        | [] | _ :: _ -> invalid_arg "Multicore.build: hosts must have degree 1")
    (Topology.nodes topo);
  t

(* --- convergence ----------------------------------------------------- *)

(* A shard is FIB-complete when every speaker it owns resolves every
   global prefix — purely shard-local state, so each shard samples its
   own flag on its own scheduler. The global convergence time is the
   max of the per-shard latch times. *)
let shard_fibs_complete t ctx =
  List.for_all
    (fun (node, _speaker) ->
      let own = Option.value (Hashtbl.find_opt t.originated node) ~default:[] in
      List.for_all
        (fun prefix ->
          List.exists (Prefix.equal prefix) own
          || Option.is_some (Fwd.lookup t.tables.(node) (Prefix.network prefix)))
        t.prefixes)
    ctx.sh_speakers

let shard_sessions_up ctx =
  List.fold_left
    (fun acc (_, speaker) -> acc + Speaker.established_count speaker)
    0 ctx.sh_speakers
  = ctx.sh_peer_slots

let arm_convergence_checkers ?(check_every = Time.of_ms 50) t =
  Array.iter
    (fun ctx ->
      let sched = Shard.sched ctx.shard in
      let recurring = ref None in
      let check () =
        if ctx.sh_converged_at = None && shard_fibs_complete t ctx then begin
          ctx.sh_converged_at <- Some (Sched.now sched);
          Registry.Gauge.set
            (Registry.gauge (Sched.registry sched) ~subsystem:"bgp"
               ~help:"Virtual time at which the fabric converged, seconds"
               "convergence_seconds")
            (Time.to_sec (Sched.now sched));
          Option.iter Sched.cancel_recurring !recurring
        end
      in
      recurring := Some (Sched.every sched check_every check))
    t.ctxs

let converged_at t =
  Array.fold_left
    (fun acc ctx ->
      match (acc, ctx.sh_converged_at) with
      | Some a, Some b -> Some (Time.max a b)
      | _, None | None, _ -> None)
    (Some Time.zero) t.ctxs

(* --- faults ---------------------------------------------------------- *)

let find_session t ~a ~b = Hashtbl.find_opt t.session_by_site (site_key a b)

(* All fault application for a session happens on its owner shard
   (shard_a); effects on the other side travel through the barrier
   like any other cross-shard event. *)

let fail_session t session =
  ignore t;
  if Channel.is_open session.channel then begin
    (if Channel.is_split session.channel then
       let ep_a, _ = Channel.endpoints session.channel in
       Channel.close_endpoint ep_a
     else Channel.close session.channel);
    true
  end
  else false

let restore_session t session =
  let ep_a_open =
    let ep_a, _ = Channel.endpoints session.channel in
    Channel.endpoint_open ep_a
  in
  if ep_a_open then false
  else
    match
      ( Hashtbl.find_opt t.speakers session.node_a,
        Hashtbl.find_opt t.speakers session.node_b )
    with
    | Some speaker_a, Some speaker_b ->
        let sa = session.shard_a and sb = session.shard_b in
        let ctx_a = t.ctxs.(sa) and ctx_b = t.ctxs.(sb) in
        let proc_a = Hashtbl.find t.processes session.node_a in
        let proc_b = Hashtbl.find t.processes session.node_b in
        if sa = sb then begin
          let channel =
            Connection_manager.control_channel ~name:session.session_name
              ~owner_a:proc_a ~owner_b:proc_b ctx_a.sh_cm
          in
          let ep_a, ep_b = Channel.endpoints channel in
          Speaker.replace_peer_endpoint speaker_a session.peer_at_a ep_a;
          Speaker.replace_peer_endpoint speaker_b session.peer_at_b ep_b;
          session.channel <- channel;
          Speaker.start_peer speaker_a session.peer_at_a;
          Speaker.start_peer speaker_b session.peer_at_b;
          true
        end
        else begin
          (* Runs on shard_a's domain: wire our side now, ship the
             peer side's wiring through the barrier. The peer comes up
             one epoch later — deterministically — and any OPEN sent
             from this side arrives after the peer's wiring, because
             delivery takes >= one quantum and the wiring thunk is
             drained at the very next barrier. *)
          let channel =
            Channel.create_split
              ~sched_a:(Shard.sched ctx_a.shard)
              ~sched_b:(Shard.sched ctx_b.shard)
              ~post_to_b:(Barrier.post t.barrier ~src:sa ~dst:sb)
              ~post_to_a:(Barrier.post t.barrier ~src:sb ~dst:sa)
              ()
          in
          let ep_a, ep_b = Channel.endpoints channel in
          Connection_manager.wire_endpoint ~name:session.session_name
            ~owner:proc_a ctx_a.sh_cm ep_a;
          Speaker.replace_peer_endpoint speaker_a session.peer_at_a ep_a;
          session.channel <- channel;
          Speaker.start_peer speaker_a session.peer_at_a;
          Barrier.post t.barrier ~src:sa ~dst:sb
            ~at:(Sched.now (Shard.sched ctx_a.shard))
            (fun () ->
              Sched.control_activity ~reason:"cross-shard link-up"
                (Shard.sched ctx_b.shard);
              Connection_manager.wire_endpoint ~name:session.session_name
                ~owner:proc_b ctx_b.sh_cm ep_b;
              Speaker.replace_peer_endpoint speaker_b session.peer_at_b ep_b;
              Speaker.start_peer speaker_b session.peer_at_b);
          true
        end
    | None, _ | _, None -> false

let impair_session t session ~rng imp =
  if Channel.is_split session.channel then begin
    let ep_a, ep_b = Channel.endpoints session.channel in
    (* Our direction draws from the site stream; the peer direction
       gets a sub-stream derived once, here, on our domain — the Rng
       value crosses the barrier exactly once and is owned by the peer
       afterwards. *)
    let remote_rng = Rng.split_key rng "peer-direction" in
    Channel.set_endpoint_impairment ep_a ~rng imp;
    Barrier.post t.barrier ~src:session.shard_a ~dst:session.shard_b
      ~at:(Sched.now (Shard.sched t.ctxs.(session.shard_a).shard))
      (fun () -> Channel.set_endpoint_impairment ep_b ~rng:remote_rng imp);
    true
  end
  else begin
    (match imp with
    | Some imp -> Channel.set_impairment session.channel ~rng imp
    | None -> Channel.clear_impairment session.channel);
    true
  end

let crash_node t node =
  match Hashtbl.find_opt t.processes node with
  | Some proc when Process.is_alive proc ->
      Process.kill proc;
      true
  | Some _ | None -> false

let restart_node t node =
  match Hashtbl.find_opt t.processes node with
  | Some proc when not (Process.is_alive proc) ->
      Process.restart proc;
      true
  | Some _ | None -> false

let reset_session t session =
  match Hashtbl.find_opt t.speakers session.node_a with
  | Some speaker ->
      Speaker.reset_session speaker session.peer_at_a;
      true
  | None -> false

let node_id t name =
  Option.map
    (fun (n : Topology.node) -> n.Topology.id)
    (Topology.node_by_name t.mc_topo name)

(* The fault target shard [s] arms its slice of the plan against: only
   sessions owned by [s] and nodes living on [s] apply; anything else
   reports false (and would indicate a plan-splitting bug, since
   [split_plan] routes every event to its owner). *)
let shard_target t s =
  let owned_session ~a ~b =
    match find_session t ~a ~b with
    | Some session when session.shard_a = s -> Some session
    | Some _ | None -> None
  in
  let owned_node name =
    match node_id t name with
    | Some id when t.owner.(id) = s -> Some id
    | Some _ | None -> None
  in
  {
    Horse_faults.Injector.describe =
      "multicore/" ^ Partition.shard_name t.partition s;
    link_down =
      (fun ~a ~b ->
        match owned_session ~a ~b with
        | Some session -> fail_session t session
        | None -> false);
    link_up =
      (fun ~a ~b ->
        match owned_session ~a ~b with
        | Some session -> restore_session t session
        | None -> false);
    node_crash =
      (fun n -> match owned_node n with Some id -> crash_node t id | None -> false);
    node_restart =
      (fun n ->
        match owned_node n with Some id -> restart_node t id | None -> false);
    session_reset =
      (fun ~a ~b ->
        match owned_session ~a ~b with
        | Some session -> reset_session t session
        | None -> false);
    impair =
      (fun ~a ~b ~rng imp ->
        match owned_session ~a ~b with
        | Some session -> impair_session t session ~rng imp
        | None -> false);
    links =
      (fun () ->
        List.filter_map
          (fun session ->
            if session.shard_a = s then
              Some (node_name t session.node_a, node_name t session.node_b)
            else None)
          (List.rev t.sessions));
    converged =
      (fun () ->
        let ctx = t.ctxs.(s) in
        shard_sessions_up ctx && shard_fibs_complete t ctx);
  }

(* Split a plan into per-shard plans. Every event keeps its timestamp
   and its site-keyed RNG streams (the plan seed is copied into every
   slice, and Injector derives streams per site label), so the union
   of the per-shard injections equals the unsharded plan's — only
   attributed to the shard that owns each site. Partition/Heal are
   expanded here, statically, against the full session list, because
   no single shard can see the whole cut. *)
let split_plan t (plan : Horse_faults.Plan.t) =
  let module P = Horse_faults.Plan in
  let n = Array.length t.ctxs in
  let events = Array.make n [] in
  let generators = Array.make n [] in
  let shard_of_site (s : P.site) =
    match find_session t ~a:s.P.a ~b:s.P.b with
    | Some session -> Some session.shard_a
    | None -> None
  in
  let shard_of_node name =
    Option.map (fun id -> t.owner.(id)) (node_id t name)
  in
  let add_event s ev = events.(s) <- ev :: events.(s) in
  let crossing group =
    let in_group name = List.mem name group in
    List.filter_map
      (fun session ->
        let a = node_name t session.node_a and b = node_name t session.node_b in
        if in_group a <> in_group b then Some (session, a, b) else None)
      (List.rev t.sessions)
  in
  List.iter
    (fun (ev : P.event) ->
      match ev.P.action with
      | P.Link_down s | P.Link_up s | P.Session_reset s
      | P.Impair (s, _) | P.Clear_impair s -> (
          match shard_of_site s with
          | Some sh -> add_event sh ev
          (* Unknown site: hand it to shard 0 so it is recorded as
             skipped, exactly as the unsharded injector would. *)
          | None -> add_event 0 ev)
      | P.Node_crash name | P.Node_restart name -> (
          match shard_of_node name with
          | Some sh -> add_event sh ev
          | None -> add_event 0 ev)
      | P.Partition group ->
          List.iter
            (fun (session, a, b) ->
              add_event session.shard_a
                { P.at = ev.P.at; action = P.Link_down { P.a; b } })
            (crossing group)
      | P.Heal group ->
          List.iter
            (fun (session, a, b) ->
              add_event session.shard_a
                { P.at = ev.P.at; action = P.Link_up { P.a; b } })
            (crossing group))
    plan.P.events;
  List.iter
    (fun (g : P.generator) ->
      let sh =
        match shard_of_site g.P.g_site with Some sh -> sh | None -> 0
      in
      generators.(sh) <- g :: generators.(sh))
    plan.P.generators;
  Array.init n (fun s ->
      {
        P.seed = plan.P.seed;
        events = List.rev events.(s);
        generators = List.rev generators.(s);
      })

let arm_faults ?check_every t plan =
  let slices = split_plan t plan in
  Array.iteri
    (fun s ctx ->
      ctx.sh_injector <-
        Some
          (Horse_faults.Injector.arm ?check_every (Shard.sched ctx.shard)
             ~target:(shard_target t s) slices.(s)))
    t.ctxs

(* --- running --------------------------------------------------------- *)

let start t =
  Array.iter
    (fun ctx ->
      let sched = Shard.sched ctx.shard in
      List.iter
        (fun (_, speaker) ->
          ignore
            (Sched.schedule_at sched Time.zero (fun () ->
                 Speaker.start speaker)))
        ctx.sh_speakers)
    t.ctxs

let run ?(domains = 1) ~until t = Barrier.run ~domains ~until t.barrier

(* --- merged views ---------------------------------------------------- *)

let topo t = t.mc_topo
let n_shards t = Array.length t.ctxs
let barrier t = t.barrier
let shard_sched t i = Shard.sched t.ctxs.(i).shard
let table t node = t.tables.(node)
let all_prefixes t = t.prefixes

let speakers t =
  Hashtbl.fold (fun node speaker acc -> (node, speaker) :: acc) t.speakers []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let sessions_expected t = List.length t.sessions

let sessions_established t =
  Array.fold_left
    (fun acc ctx ->
      List.fold_left
        (fun acc (_, speaker) -> acc + Speaker.established_count speaker)
        acc ctx.sh_speakers)
    0 t.ctxs
  / 2

let fib_routes_installed t =
  Array.fold_left (fun acc ctx -> acc + ctx.sh_fib_writes) 0 t.ctxs

let is_converged t =
  Array.for_all (fun ctx -> shard_fibs_complete t ctx) t.ctxs

(* Byte-compatible with Routed_fabric.fib_fingerprint: the per-shard
   tables are indexed by global node id, so the digest input is
   literally the same string an unsharded run would produce. *)
let fib_fingerprint t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun node table ->
      Buffer.add_string buf (string_of_int node);
      List.iter
        (fun (prefix, hops) ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (Prefix.to_string prefix);
          Buffer.add_char buf '>';
          List.iter
            (fun h ->
              Buffer.add_string buf (string_of_int h);
              Buffer.add_char buf ',')
            hops)
        (Fwd.routes table);
      Buffer.add_char buf '\n')
    t.tables;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* One digest over the per-shard causal hashes, in shard order. Each
   shard's graph is deterministic on its own; concatenating in
   partition order makes the combined hash deterministic too, without
   pretending there is a global creation order across shards. *)
let causal_hash t =
  let buf = Buffer.create 256 in
  Array.iter
    (fun ctx ->
      (match Sched.causal (Shard.sched ctx.shard) with
      | Some g -> Buffer.add_string buf (Causal.hash g)
      | None -> Buffer.add_string buf "-");
      Buffer.add_char buf '\n')
    t.ctxs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Wall time never enters: (at_us, from, to, reason) per transition,
   per shard — the replay-comparable timeline. *)
let mode_timelines t =
  Array.map
    (fun ctx ->
      List.map
        (fun (tr : Sched.transition) ->
          ( Time.to_us tr.Sched.at,
            Sched.mode_to_string tr.Sched.from_mode,
            Sched.mode_to_string tr.Sched.to_mode,
            tr.Sched.reason ))
        (Sched.snapshot (Shard.sched ctx.shard)).Sched.transitions)
    t.ctxs

let fault_traces t =
  Array.map
    (fun ctx ->
      match ctx.sh_injector with
      | Some inj -> Horse_faults.Injector.trace_labels inj
      | None -> [])
    t.ctxs

let faults_injected t =
  Array.fold_left
    (fun acc ctx ->
      acc
      + match ctx.sh_injector with
        | Some inj -> Horse_faults.Injector.injected inj
        | None -> 0)
    0 t.ctxs

let faults_skipped t =
  Array.fold_left
    (fun acc ctx ->
      acc
      + match ctx.sh_injector with
        | Some inj -> Horse_faults.Injector.skipped inj
        | None -> 0)
    0 t.ctxs

let control_messages t =
  Array.fold_left
    (fun acc ctx -> acc + Connection_manager.messages_observed ctx.sh_cm)
    0 t.ctxs

let control_bytes t =
  Array.fold_left
    (fun acc ctx -> acc + Connection_manager.bytes_observed ctx.sh_cm)
    0 t.ctxs

let merged_registry t =
  let merged = Registry.create () in
  Array.iter
    (fun ctx -> Registry.merge_into merged (Shard.registry ctx.shard))
    t.ctxs;
  merged

(* Per-BGP-prefix provenance, merged across shards and sorted exactly
   like Routed_fabric.fib_provenance. Causal ids are only meaningful
   against their own shard's graph, so each entry carries its shard
   index. *)
let fib_provenance t =
  let entries =
    Array.to_list t.ctxs
    |> List.concat_map (fun ctx ->
           List.concat_map
             (fun (node, _speaker) ->
               let own =
                 Option.value (Hashtbl.find_opt t.originated node) ~default:[]
               in
               List.filter_map
                 (fun prefix ->
                   if List.exists (Prefix.equal prefix) own then None
                   else if
                     Option.is_some
                       (Fwd.lookup t.tables.(node) (Prefix.network prefix))
                   then
                     let cause =
                       Option.value
                         (Hashtbl.find_opt ctx.sh_fib_prov (node, prefix))
                         ~default:Causal.none
                     in
                     Some
                       ( node_name t node,
                         prefix,
                         Shard.index ctx.shard,
                         cause )
                   else None)
                 t.prefixes)
             ctx.sh_speakers)
  in
  List.sort
    (fun (n1, p1, _, _) (n2, p2, _, _) ->
      match String.compare n1 n2 with
      | 0 -> Prefix.compare p1 p2
      | c -> c)
    entries

(* --- the canned scenario --------------------------------------------- *)

type result = {
  pods : int;
  domains : int;
  shards : int;
  partition_name : string;
  setup_wall_s : float;
  run_wall_s : float;
  epochs : int;
  jumps : int;
  cross_messages : int;
  converged_at : Time.t option;
  fib_fingerprint : string;
  causal_hash : string;
  timelines : (int * string * string * string) list array;
  fault_trace : string list array;
  faults_injected : int;
  faults_skipped : int;
  control_messages : int;
  control_bytes : int;
  fib_writes : int;
  sessions_up : int;
  sessions_total : int;
  registry : Registry.t;
}

(* The BGP fat-tree convergence experiment of Scenario.run_fat_tree_te
   (Bgp_ecmp), sharded. No fluid data plane in the sharded runner —
   the multicore engine targets control-plane scale; the satellites'
   differential tests pin its results to the sequential run. *)
let run_fat_tree ?(seed = 42) ?sched_config ?shards ?(domains = 1) ?faults
    ~pods ~duration () =
  let (t, ft), setup_wall_s =
    Wall.time (fun () ->
        let ft = Fat_tree.build ~k:pods () in
        let partition = Partition.fat_tree_pods ?shards ft in
        let edge_prefix = Hashtbl.create 64 in
        Array.iteri
          (fun pod edges ->
            Array.iteri
              (fun e (edge : Topology.node) ->
                Hashtbl.replace edge_prefix edge.Topology.id
                  [ Prefix.make (Ipv4.of_octets 10 pod e 0) 24 ])
              edges)
          ft.Fat_tree.edges;
        let t =
          build ?sched_config ~seed ~partition
            ~originate:(fun node ->
              Option.value (Hashtbl.find_opt edge_prefix node) ~default:[])
            ft.Fat_tree.topo
        in
        start t;
        arm_convergence_checkers t;
        (match faults with Some plan -> arm_faults t plan | None -> ());
        (t, ft))
  in
  ignore ft;
  let (), run_wall_s = Wall.time (fun () -> run ~domains ~until:duration t) in
  {
    pods;
    domains;
    shards = n_shards t;
    partition_name = t.partition.Partition.name;
    setup_wall_s;
    run_wall_s;
    epochs = Barrier.epochs t.barrier;
    jumps = Barrier.jumps t.barrier;
    cross_messages = Barrier.cross_messages t.barrier;
    converged_at = converged_at t;
    fib_fingerprint = fib_fingerprint t;
    causal_hash = causal_hash t;
    timelines = mode_timelines t;
    fault_trace = fault_traces t;
    faults_injected = faults_injected t;
    faults_skipped = faults_skipped t;
    control_messages = control_messages t;
    control_bytes = control_bytes t;
    fib_writes = fib_routes_installed t;
    sessions_up = sessions_established t;
    sessions_total = sessions_expected t;
    registry = merged_registry t;
  }
