module Tbl = Hashtbl.Make (struct
  type t = Msg.attrs

  let equal = Msg.attrs_equal
  let hash = Msg.attrs_hash
end)

type interned = {
  attrs : Msg.attrs;
  hash : int;
  path_len : int;
  uid : int;
}

type t = {
  tbl : interned Tbl.t;
  mutable next_uid : int;
  mutable hits : int;
  on_hit : unit -> unit;
  on_miss : unit -> unit;
}

let nop () = ()

let create ?(on_hit = nop) ?(on_miss = nop) () =
  { tbl = Tbl.create 64; next_uid = 0; hits = 0; on_hit; on_miss }

let intern t attrs =
  match Tbl.find_opt t.tbl attrs with
  | Some i ->
      t.hits <- t.hits + 1;
      t.on_hit ();
      i
  | None ->
      let i =
        {
          attrs;
          hash = Msg.attrs_hash attrs;
          path_len = List.length attrs.Msg.as_path;
          uid = t.next_uid;
        }
      in
      t.next_uid <- t.next_uid + 1;
      Tbl.replace t.tbl attrs i;
      t.on_miss ();
      i

let equal a b = a == b || a.uid = b.uid
let size t = Tbl.length t.tbl
let hits t = t.hits
