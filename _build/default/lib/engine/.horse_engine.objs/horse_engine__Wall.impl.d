lib/engine/wall.ml: Unix
