(* The paper's demonstration, as a runnable example: three
   traffic-engineering approaches on a 4-pod fat-tree.

   Every server sends one 1 Gbps UDP flow to another server (random
   permutation); the three control planes route them with different
   granularity and adaptivity:

   (i)   BGP + ECMP hashing source and destination IP only,
   (ii)  Hedera, polling flow statistics every 5 s and replacing big
         flows with Global First Fit,
   (iii) SDN reactive ECMP hashing the full 5-tuple.

   Run with:  dune exec examples/datacenter_te.exe *)

open Horse_engine
open Horse_stats
open Horse_core

let () =
  let pods = 4 and duration = Time.of_sec 30.0 in
  let results =
    List.map
      (fun te ->
        let r =
          Scenario.run_fat_tree_te ~pods ~te ~duration
            ~sample_every:(Time.of_sec 1.0) ()
        in
        Format.printf "%a@.@." Scenario.pp_result r;
        (te, r))
      Scenario.all_te
  in
  Format.printf "--- comparison -----------------------------------@.";
  Format.printf "%-12s %12s %12s %12s@." "te" "mean Gbps" "goodput %"
    "ctrl msgs";
  List.iter
    (fun (te, (r : Scenario.result)) ->
      Format.printf "%-12s %12.2f %12.1f %12d@." (Scenario.te_name te)
        (Series.mean r.Scenario.aggregate /. 1e9)
        (100.0 *. r.Scenario.delivered_bits /. r.Scenario.offered_bits)
        r.Scenario.control_messages)
    results;
  Format.printf "@.aggregate rate at the hosts over time (Gbps):@.";
  Ascii.plot ~height:12 Format.std_formatter
    (List.map
       (fun (te, (r : Scenario.result)) ->
         ( Scenario.te_name te,
           Series.map r.Scenario.aggregate ~f:(fun v -> v /. 1e9) ))
       results)
