lib/engine/rng.mli:
