(** The controller applications' view of the fabric.

    Real controllers learn the topology via LLDP discovery; the Horse
    demonstration (like most Ryu example apps) hands the application a
    topology map instead. [Env] bundles that map with the
    dpid↔node and link↔port translations the experiment scaffolding
    established, plus a cache of equal-cost shortest paths. *)

open Horse_net
open Horse_topo

type t

val create :
  topo:Topology.t ->
  dpid_of_node:(int -> int option) ->
  node_of_dpid:(int -> int option) ->
  port_of_link:(int -> int option) ->
  unit ->
  t
(** [port_of_link] maps a directed link id to the OpenFlow port number
    on its source switch. *)

val topo : t -> Topology.t
val dpid_of_node : t -> int -> int option
val node_of_dpid : t -> int -> int option
val port_of_link : t -> int -> int option

val host_of_ip : t -> Ipv4.t -> int option
(** Node id of the host owning this address (scans once, then
    cached). *)

val ecmp_paths : t -> src:int -> dst:int -> Spf.path list
(** All equal-cost shortest paths between two nodes, cached per
    source. *)

val edge_switch_of_host : t -> int -> int option
(** The switch adjacent to a host node. *)

val edge_dpids : t -> int list
(** Dpids of switches that have at least one host attached, sorted. *)

val set_link_usable : t -> int -> bool -> unit
(** Administratively marks a directed link up/down; down links are
    excluded from {!ecmp_paths} and the path caches are dropped. The
    applications call this from PORT_STATUS notifications. *)

val link_usable : t -> int -> bool

val invalidate : t -> unit
(** Drops the path and host caches (after a topology change). *)
