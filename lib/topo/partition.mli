(** Partitioning a topology into shards for the multicore engine.

    A partition assigns every node to exactly one shard by id. The
    shard structure — names and the owner function — fully determines
    the sharded experiment: per-shard RNG streams are keyed by shard
    name, cross-shard channels are fixed by which links straddle the
    cut, and the barrier delivers cross-shard traffic in shard-index
    order. How many domains later {e execute} those shards changes
    nothing observable. *)

type t = {
  name : string;  (** appears in traces and snapshots *)
  shards : string array;  (** shard [i]'s name — keys its RNG stream *)
  owner : int -> int;  (** node id -> shard index *)
}

val n_shards : t -> int
val shard_name : t -> int -> string

val of_fun : name:string -> shards:string array -> (int -> int) -> t
(** Wraps [owner] with a range check on its results.
    @raise Invalid_argument on an empty shard array. *)

val single : t
(** Everything on one shard — the degenerate partition whose sharded
    run coincides with the classic single-scheduler path. *)

val validate : t -> Topology.t -> unit
(** Applies [owner] to every node, forcing the range check.
    @raise Invalid_argument if any node maps outside [0, n_shards). *)

val fat_tree_pods : ?shards:int -> Fat_tree.t -> t
(** Contiguous pod groups (default one shard per pod): pod switches
    and their hosts stay together, core switches spread round-robin.
    Only pod-to-core links cross shards.
    @raise Invalid_argument if [shards] exceeds the pod count or is
    non-positive. *)

val round_robin : Topology.t -> shards:int -> t
(** Generic fallback: switches/routers round-robin in id order, hosts
    follow the first switch or router they attach to. *)
