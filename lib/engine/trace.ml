type entry = { at : Time.t; wall : float; label : string; detail : string }

(* Entries live in a FIFO queue. Unbounded by default (the historical
   behaviour); with [~capacity] the queue becomes a ring buffer that
   drops the oldest entry on overflow and counts the drops, so
   FTI-heavy runs can trace forever in constant memory. *)
type counters = {
  c_total : Horse_telemetry.Registry.Counter.t;
  c_dropped : Horse_telemetry.Registry.Counter.t;
}

type t = {
  entries_q : entry Queue.t;
  capacity : int option;
  mutable total : int;
  mutable dropped : int;
  created : float;
  mutable counters : counters option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | Some _ | None -> ());
  {
    entries_q = Queue.create ();
    capacity;
    total = 0;
    dropped = 0;
    created = Wall.now ();
    counters = None;
  }

let bind_registry t reg =
  let counter = Horse_telemetry.Registry.counter reg ~subsystem:"trace" in
  let c =
    {
      c_total = counter ~help:"Trace entries ever added" "entries_total";
      c_dropped =
        counter ~help:"Trace entries evicted by the ring buffer"
          "dropped_total";
    }
  in
  (* Catch the registry up with whatever happened before binding. *)
  let lag cnt target =
    let v = Horse_telemetry.Registry.Counter.value cnt in
    if target > v then Horse_telemetry.Registry.Counter.add cnt (target - v)
  in
  lag c.c_total t.total;
  lag c.c_dropped t.dropped;
  t.counters <- Some c

let add t ~at ~label detail =
  (match t.capacity with
  | Some cap when Queue.length t.entries_q >= cap ->
      ignore (Queue.pop t.entries_q);
      t.dropped <- t.dropped + 1;
      (match t.counters with
      | Some c -> Horse_telemetry.Registry.Counter.incr c.c_dropped
      | None -> ())
  | Some _ | None -> ());
  Queue.add
    { at; wall = Wall.now () -. t.created; label; detail }
    t.entries_q;
  t.total <- t.total + 1;
  match t.counters with
  | Some c -> Horse_telemetry.Registry.Counter.incr c.c_total
  | None -> ()

let addf t ~at ~label fmt = Format.kasprintf (fun s -> add t ~at ~label s) fmt

let entries t = List.of_seq (Queue.to_seq t.entries_q)

let by_label t label =
  List.filter (fun e -> String.equal e.label label) (entries t)

let length t = Queue.length t.entries_q
let total_added t = t.total
let dropped t = t.dropped
let capacity t = t.capacity

let clear t =
  Queue.clear t.entries_q;
  t.total <- 0;
  t.dropped <- 0

let pp_entry fmt e =
  Format.fprintf fmt "[%a] %-6s %s" Time.pp e.at e.label e.detail

let pp fmt t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_entry fmt (entries t)
