(** The process-wide metrics registry.

    A registry holds named metrics — monotonic {!Counter}s, settable
    {!Gauge}s and log-bucketed {!Histogram}s — plus one {!Span}
    tracker. Metric names follow the [horse_<subsystem>_<name>]
    convention and may carry Prometheus-style labels; registration is
    get-or-register, so any module can ask for
    [counter reg ~subsystem:"bgp" "updates_sent_total"] and all
    callers share the same cell.

    Each {!Horse_engine.Sched} (and therefore each
    [Horse_core.Experiment]) owns a registry by default so concurrent
    experiments in one process do not collide; {!default} provides a
    shared process-wide instance for code without a natural owner. *)

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment — counters are
      monotonic. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type entry = {
  name : string;  (** full name, [horse_<subsystem>_<name>] *)
  labels : (string * string) list;  (** sorted by label key *)
  help : string;
  metric : metric;
}

type t

val create : unit -> t

val default : unit -> t
(** The process-wide registry (created on first use). *)

val counter :
  t -> subsystem:string -> ?help:string -> ?labels:(string * string) list ->
  string -> Counter.t

val gauge :
  t -> subsystem:string -> ?help:string -> ?labels:(string * string) list ->
  string -> Gauge.t

val histogram :
  t -> subsystem:string -> ?help:string -> ?labels:(string * string) list ->
  ?buckets_per_decade:int -> lo:float -> hi:float -> string -> Histogram.t

(** All three raise [Invalid_argument] if the name contains characters
    outside [[a-z0-9_]], or if the same (name, labels) pair was
    already registered with a different metric kind. *)

val spans : t -> Span.tracker

val to_list : t -> entry list
(** Every registered metric, in registration order. *)

val find : t -> ?labels:(string * string) list -> string -> metric option
(** Lookup by full name (label order irrelevant). *)

val find_counter : t -> ?labels:(string * string) list -> string -> Counter.t option
val find_gauge : t -> ?labels:(string * string) list -> string -> Gauge.t option
val find_histogram :
  t -> ?labels:(string * string) list -> string -> Histogram.t option

val cardinality : t -> int
(** Number of registered metrics (not counting spans). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src]'s metrics into [dst]: counters
    sum, gauges take the max, histograms merge buckets exactly. Metrics
    missing from [dst] are registered (in [src] order, after [dst]'s
    existing entries); spans are not merged. This is how per-shard
    registries collapse into one run report.
    @raise Invalid_argument if a metric exists in both registries under
    different kinds, or a histogram's bucket layout differs. *)
