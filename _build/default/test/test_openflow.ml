(* Tests for horse_openflow: match semantics, the message codec, the
   flow table, and the switch agent over an emulated channel. *)

open Horse_net
open Horse_engine
open Horse_emulation
open Horse_openflow

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ip = Ipv4.of_string_exn
let p = Prefix.of_string_exn

let key_ab =
  Flow_key.make ~src:(ip "10.0.0.2") ~dst:(ip "10.1.0.2") ~src_port:1111
    ~dst_port:2222 ()

let fields ?(in_port = 1) key = Ofmatch.fields_of_key ~in_port key

(* --- Ofmatch ------------------------------------------------------------ *)

let test_match_any () =
  check Alcotest.bool "any matches" true (Ofmatch.matches Ofmatch.any (fields key_ab))

let test_match_exact_5tuple () =
  let m = Ofmatch.exact_5tuple key_ab in
  check Alcotest.bool "matches its own key" true (Ofmatch.matches m (fields key_ab));
  let other = { key_ab with Flow_key.src_port = 1112 } in
  check Alcotest.bool "different port misses" false
    (Ofmatch.matches m (fields other));
  let other = { key_ab with Flow_key.dst = ip "10.1.0.3" } in
  check Alcotest.bool "different dst misses" false
    (Ofmatch.matches m (fields other))

let test_match_prefix () =
  let m = Ofmatch.to_dst (p "10.1.0.0/16") in
  check Alcotest.bool "in prefix" true (Ofmatch.matches m (fields key_ab));
  let outside = { key_ab with Flow_key.dst = ip "10.2.0.2" } in
  check Alcotest.bool "outside prefix" false (Ofmatch.matches m (fields outside))

let test_match_in_port () =
  let m = { Ofmatch.any with Ofmatch.m_in_port = Some 3 } in
  check Alcotest.bool "right port" true
    (Ofmatch.matches m (fields ~in_port:3 key_ab));
  check Alcotest.bool "wrong port" false
    (Ofmatch.matches m (fields ~in_port:4 key_ab))

let gen_match =
  let open QCheck2.Gen in
  let opt g = option g in
  let* m_in_port = opt (int_range 1 48) in
  let* m_eth_type = opt (oneofl [ 0x0800; 0x0806 ]) in
  let* m_ip_src =
    opt (map2 (fun a l -> Prefix.make (Ipv4.of_int32 a) l) int32 (int_range 1 32))
  in
  let* m_ip_dst =
    opt (map2 (fun a l -> Prefix.make (Ipv4.of_int32 a) l) int32 (int_range 1 32))
  in
  let* m_ip_proto = opt (int_range 0 255) in
  let* m_tp_src = opt (int_range 0 65535) in
  let* m_tp_dst = opt (int_range 0 65535) in
  let* m_eth_src = opt (map (fun i -> Mac.of_index i) (int_bound 100000)) in
  let* m_eth_dst = opt (map (fun i -> Mac.of_index i) (int_bound 100000)) in
  return
    {
      Ofmatch.m_in_port;
      m_eth_src;
      m_eth_dst;
      m_eth_type;
      m_ip_src;
      m_ip_dst;
      m_ip_proto;
      m_tp_src;
      m_tp_dst;
    }

let prop_match_codec_roundtrip =
  qtest "ofmatch: 40-byte codec roundtrip" gen_match (fun m ->
      let buf = Bytes.make Ofmatch.size '\000' in
      Ofmatch.write buf 0 m;
      match Ofmatch.read buf 0 with
      | Ok m' -> Ofmatch.equal m m'
      | Error _ -> false)

let prop_match_exact_key_matches =
  let gen_key =
    let open QCheck2.Gen in
    let* src = map Ipv4.of_int32 int32 in
    let* dst = map Ipv4.of_int32 int32 in
    let* sp = int_range 0 65535 in
    let* dp = int_range 0 65535 in
    return (Flow_key.make ~src ~dst ~src_port:sp ~dst_port:dp ())
  in
  qtest "ofmatch: exact_5tuple matches exactly its key" gen_key (fun k ->
      Ofmatch.matches (Ofmatch.exact_5tuple k) (Ofmatch.fields_of_key k))

(* --- Ofmsg codec --------------------------------------------------------- *)

let gen_actions =
  QCheck2.Gen.(
    list_size (int_range 0 3)
      (oneof
         [
           map (fun p -> Action.Output p) (int_range 1 48);
           return Action.Flood;
           map (fun n -> Action.To_controller n) (int_range 0 1024);
         ]))

let gen_msg =
  let open QCheck2.Gen in
  oneof
    [
      oneofl
        [
          Ofmsg.Hello;
          Ofmsg.Echo_request;
          Ofmsg.Echo_reply;
          Ofmsg.Features_request;
          Ofmsg.Barrier_request;
          Ofmsg.Barrier_reply;
        ];
      (let* dpid = int_bound 1_000_000 in
       let* n_ports = int_range 0 64 in
       return (Ofmsg.Features_reply { dpid; n_ports }));
      (let* pst_reason = int_range 0 2 in
       let* pst_port = int_range 1 48 in
       return (Ofmsg.Port_status { Ofmsg.pst_reason; pst_port }));
      (let* in_port = int_range 0 48 in
       let* data = map Bytes.of_string (string_size (int_range 0 80)) in
       return
         (Ofmsg.Packet_in
            {
              buffer_id = 0xFFFFFFFF;
              total_len = Bytes.length data;
              in_port;
              reason = 0;
              data;
            }));
      (let* po_in_port = int_range 0 48 in
       let* po_actions = gen_actions in
       let* po_data = map Bytes.of_string (string_size (int_range 0 80)) in
       return (Ofmsg.Packet_out { po_in_port; po_actions; po_data }));
      (let* match_ = gen_match in
       let* command = oneofl [ Ofmsg.Add; Ofmsg.Modify; Ofmsg.Delete ] in
       let* priority = int_range 0 65535 in
       let* idle = int_range 0 3600 in
       let* hard = int_range 0 3600 in
       let* cookie = int_bound 1_000_000 in
       let* actions = gen_actions in
       return
         (Ofmsg.Flow_mod
            {
              Ofmsg.match_;
              cookie;
              command;
              idle_timeout_s = idle;
              hard_timeout_s = hard;
              priority;
              actions;
            }));
      (let* m = gen_match in
       return (Ofmsg.Stats_request (Ofmsg.Flow_stats_req m)));
      (let* port = oneof [ int_range 1 48; return 0xFFFF ] in
       return (Ofmsg.Stats_request (Ofmsg.Port_stats_req port)));
      (let* entries =
         list_size (int_range 0 4)
           (let* fs_match = gen_match in
            let* fs_priority = int_range 0 65535 in
            let* fs_cookie = int_bound 1_000_000 in
            let* fs_packets = int_bound 1_000_000_000 in
            let* fs_bytes = int_bound 1_000_000_000 in
            let* fs_duration_s = int_bound 100000 in
            let* fs_actions = gen_actions in
            return
              {
                Ofmsg.fs_match;
                fs_priority;
                fs_cookie;
                fs_packets;
                fs_bytes;
                fs_duration_s;
                fs_actions;
              })
       in
       return (Ofmsg.Stats_reply (Ofmsg.Flow_stats_rep entries)));
      (let* entries =
         list_size (int_range 0 6)
           (let* ps_port = int_range 1 48 in
            let* a = int_bound 1_000_000 in
            let* b = int_bound 1_000_000 in
            let* c = int_bound 1_000_000_000 in
            let* d = int_bound 1_000_000_000 in
            return
              {
                Ofmsg.ps_port;
                ps_rx_packets = a;
                ps_tx_packets = b;
                ps_rx_bytes = c;
                ps_tx_bytes = d;
              })
       in
       return (Ofmsg.Stats_reply (Ofmsg.Port_stats_rep entries)));
    ]

let prop_ofmsg_roundtrip =
  qtest ~count:500 "ofmsg: encode/decode roundtrip"
    (QCheck2.Gen.pair gen_msg (QCheck2.Gen.int_bound 0xFFFF))
    (fun (m, xid) ->
      match Ofmsg.decode (Ofmsg.encode ~xid m) with
      | Ok (m', xid') -> Ofmsg.equal m m' && xid = xid'
      | Error _ -> false)

let prop_ofmsg_decode_total =
  qtest ~count:500 "ofmsg: decoder never raises on arbitrary bytes"
    QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 120)))
    (fun junk -> match Ofmsg.decode junk with Ok _ | Error _ -> true)

let prop_ofmsg_decode_total_mutated =
  qtest ~count:300 "ofmsg: decoder never raises on mutated messages"
    (QCheck2.Gen.triple gen_msg (QCheck2.Gen.int_bound 300) (QCheck2.Gen.int_bound 255))
    (fun (m, pos, v) ->
      let buf = Ofmsg.encode m in
      if Bytes.length buf > 0 then
        Bytes.set_uint8 buf (pos mod Bytes.length buf) v;
      match Ofmsg.decode buf with Ok _ | Error _ -> true)

let test_ofmsg_header () =
  let buf = Ofmsg.encode ~xid:0xABCD Ofmsg.Hello in
  check Alcotest.int "version 1.0" 0x01 (Bytes.get_uint8 buf 0);
  check Alcotest.int "type hello" 0 (Bytes.get_uint8 buf 1);
  check Alcotest.int "length" 8 (Bytes.get_uint16_be buf 2);
  check Alcotest.int "xid" 0xABCD (Int32.to_int (Bytes.get_int32_be buf 4))

(* --- Flow table ------------------------------------------------------------ *)

let flow_mod ?(command = Ofmsg.Add) ?(priority = 10) ?(idle = 0) ?(hard = 0)
    ?(cookie = 0) match_ actions =
  {
    Ofmsg.match_;
    cookie;
    command;
    idle_timeout_s = idle;
    hard_timeout_s = hard;
    priority;
    actions;
  }

let test_table_priority () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:1 Ofmatch.any [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~priority:100 (Ofmatch.exact_5tuple key_ab) [ Action.Output 2 ]);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "high priority wins" 100 e.Flow_table.priority
  | None -> Alcotest.fail "no match");
  let other = { key_ab with Flow_key.dst_port = 9 } in
  match Flow_table.lookup t (fields other) with
  | Some e -> check Alcotest.int "fallback to low priority" 1 e.Flow_table.priority
  | None -> Alcotest.fail "wildcard should match"

let test_table_add_replaces () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now (flow_mod Ofmatch.any [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now (flow_mod Ofmatch.any [ Action.Output 2 ]);
  check Alcotest.int "single entry" 1 (Flow_table.size t);
  match Flow_table.lookup t (fields key_ab) with
  | Some e ->
      check Alcotest.bool "latest actions" true
        (List.equal Action.equal [ Action.Output 2 ] e.Flow_table.actions)
  | None -> Alcotest.fail "missing"

let test_table_modify_and_delete () =
  let t = Flow_table.create () in
  let now = Time.zero in
  let m = Ofmatch.exact_5tuple key_ab in
  Flow_table.apply_flow_mod t ~now (flow_mod m [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~command:Ofmsg.Modify m [ Action.Output 7 ]);
  (match Flow_table.lookup t (fields key_ab) with
  | Some e ->
      check Alcotest.bool "modified" true
        (List.equal Action.equal [ Action.Output 7 ] e.Flow_table.actions)
  | None -> Alcotest.fail "missing");
  (* Loose delete: wildcard removes everything overlapping. *)
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~command:Ofmsg.Delete Ofmatch.any []);
  check Alcotest.int "cleared" 0 (Flow_table.size t)

let test_table_timeouts () =
  let t = Flow_table.create () in
  Flow_table.apply_flow_mod t ~now:Time.zero
    (flow_mod ~hard:10 Ofmatch.any [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now:Time.zero
    (flow_mod ~priority:20 ~idle:5 (Ofmatch.exact_5tuple key_ab)
       [ Action.Output 2 ]);
  check Alcotest.int "both live at 4s" 0
    (List.length (Flow_table.expire t ~now:(Time.of_sec 4.0)));
  (* Keep the idle entry alive by accounting traffic at t=4. *)
  (match Flow_table.lookup t (fields key_ab) with
  | Some e -> Flow_table.account e ~now:(Time.of_sec 4.0) ~packets:1 ~bytes:100
  | None -> Alcotest.fail "entry missing");
  check Alcotest.int "still live at 8s" 0
    (List.length (Flow_table.expire t ~now:(Time.of_sec 8.0)));
  (* At 10s: hard timeout fires for the first, idle (9-4=5) for the
     second. *)
  let gone = Flow_table.expire t ~now:(Time.of_sec 10.0) in
  check Alcotest.int "both expired" 2 (List.length gone);
  check Alcotest.int "table empty" 0 (Flow_table.size t)

let test_table_equal_priority_fifo () =
  let t = Flow_table.create () in
  let now = Time.zero in
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~cookie:1 (Ofmatch.to_dst (p "10.1.0.0/16")) [ Action.Output 1 ]);
  Flow_table.apply_flow_mod t ~now
    (flow_mod ~cookie:2 (Ofmatch.to_dst (p "10.0.0.0/8")) [ Action.Output 2 ]);
  match Flow_table.lookup t (fields key_ab) with
  | Some e -> check Alcotest.int "older entry wins ties" 1 e.Flow_table.cookie
  | None -> Alcotest.fail "no match"

(* --- Switch agent ----------------------------------------------------------- *)

(* A switch agent plus a raw test controller endpoint. *)
let switch_rig () =
  let sched = Sched.create () in
  let chan = Channel.create sched ~latency:(Time.of_ms 1) () in
  let sw_end, ctrl_end = Channel.endpoints chan in
  let proc = Process.create sched ~name:"sw" in
  let agent =
    Switch.create proc ~dpid:42 ~ports:[ (1, 100); (2, 200) ] sw_end
  in
  let inbox = ref [] in
  Channel.set_receiver ctrl_end (fun bytes ->
      match Ofmsg.decode bytes with
      | Ok (msg, xid) -> inbox := (msg, xid) :: !inbox
      | Error e -> Alcotest.failf "controller decode error: %s" e);
  (sched, agent, ctrl_end, inbox)

let run sched until = ignore (Sched.run ~until sched)

let test_switch_handshake () =
  let sched, _agent, ctrl_end, inbox = switch_rig () in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end (Ofmsg.encode Ofmsg.Hello);
         Channel.send ctrl_end (Ofmsg.encode ~xid:7 Ofmsg.Features_request)));
  run sched (Time.of_ms 100);
  let replies = List.rev !inbox in
  check Alcotest.bool "features reply with dpid" true
    (List.exists
       (fun (m, xid) ->
         match m with
         | Ofmsg.Features_reply { dpid; n_ports } ->
             dpid = 42 && n_ports = 2 && xid = 7
         | _ -> false)
       replies)

let test_switch_flow_mod_and_lookup () =
  let sched, agent, ctrl_end, _ = switch_rig () in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end
           (Ofmsg.encode
              (Ofmsg.Flow_mod
                 (flow_mod (Ofmatch.exact_5tuple key_ab) [ Action.Output 2 ])))));
  run sched (Time.of_ms 100);
  check Alcotest.int "flow mod received" 1 (Switch.flow_mods_received agent);
  (match Switch.lookup agent (fields key_ab) with
  | Some e ->
      check Alcotest.bool "actions" true
        (List.equal Action.equal [ Action.Output 2 ] e.Flow_table.actions)
  | None -> Alcotest.fail "installed entry not found");
  check (Alcotest.option Alcotest.int) "port->link" (Some 200)
    (Switch.link_of_port agent 2);
  check (Alcotest.option Alcotest.int) "link->port" (Some 1)
    (Switch.port_of_link agent 100)

let test_switch_packet_in_and_stats () =
  let sched, agent, ctrl_end, inbox = switch_rig () in
  Switch.set_flow_stats_provider agent (fun _ -> (3, 4096));
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end
           (Ofmsg.encode
              (Ofmsg.Flow_mod
                 (flow_mod (Ofmatch.exact_5tuple key_ab) [ Action.Output 1 ])))));
  ignore
    (Sched.schedule_at sched (Time.of_ms 10) (fun () ->
         Switch.packet_in agent ~in_port:1 (Bytes.of_string "frame");
         Channel.send ctrl_end
           (Ofmsg.encode ~xid:9
              (Ofmsg.Stats_request (Ofmsg.Flow_stats_req Ofmatch.any)))));
  run sched (Time.of_ms 100);
  check Alcotest.int "one packet_in" 1 (Switch.packet_ins_sent agent);
  let got_packet_in =
    List.exists
      (fun (m, _) ->
        match m with
        | Ofmsg.Packet_in pi ->
            pi.Ofmsg.in_port = 1 && Bytes.to_string pi.Ofmsg.data = "frame"
        | _ -> false)
      !inbox
  in
  check Alcotest.bool "controller saw packet_in" true got_packet_in;
  let stats_ok =
    List.exists
      (fun (m, xid) ->
        match m with
        | Ofmsg.Stats_reply (Ofmsg.Flow_stats_rep [ fs ]) ->
            xid = 9 && fs.Ofmsg.fs_bytes = 4096 && fs.Ofmsg.fs_packets = 3
        | _ -> false)
      !inbox
  in
  check Alcotest.bool "stats served by provider" true stats_ok

let test_switch_expiry_hook () =
  let sched, agent, ctrl_end, _ = switch_rig () in
  let expired = ref [] in
  Switch.on_expired agent (fun e -> expired := e :: !expired);
  Switch.start agent;
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end
           (Ofmsg.encode
              (Ofmsg.Flow_mod
                 (flow_mod ~hard:2 (Ofmatch.exact_5tuple key_ab) [ Action.Output 1 ])))));
  run sched (Time.of_sec 5.0);
  check Alcotest.int "expired exactly once" 1 (List.length !expired);
  check Alcotest.int "table empty" 0 (Flow_table.size (Switch.table agent))

let test_switch_port_down () =
  let sched, agent, _ctrl_end, inbox = switch_rig () in
  check (Alcotest.option Alcotest.int) "port up" (Some 200)
    (Switch.link_of_port agent 2);
  Switch.set_port_down agent 2;
  Switch.set_port_down agent 2 (* idempotent: one notification *);
  ignore (Sched.run ~until:(Time.of_ms 50) sched);
  check Alcotest.bool "down port unresolvable" true
    (Switch.link_of_port agent 2 = None);
  check Alcotest.bool "marked down" true (Switch.is_port_down agent 2);
  check Alcotest.int "one PORT_STATUS delete" 1
    (List.length
       (List.filter
          (fun (m, _) ->
            match m with
            | Ofmsg.Port_status ps ->
                ps.Ofmsg.pst_port = 2 && ps.Ofmsg.pst_reason = 1
            | _ -> false)
          !inbox));
  Switch.set_port_up agent 2;
  ignore (Sched.run ~until:(Time.of_ms 100) sched);
  check (Alcotest.option Alcotest.int) "port back" (Some 200)
    (Switch.link_of_port agent 2);
  check Alcotest.bool "PORT_STATUS add seen" true
    (List.exists
       (fun (m, _) ->
         match m with
         | Ofmsg.Port_status ps -> ps.Ofmsg.pst_port = 2 && ps.Ofmsg.pst_reason = 0
         | _ -> false)
       !inbox)

let test_switch_echo_and_barrier () =
  let sched, _agent, ctrl_end, inbox = switch_rig () in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Channel.send ctrl_end (Ofmsg.encode ~xid:5 Ofmsg.Echo_request);
         Channel.send ctrl_end (Ofmsg.encode ~xid:6 Ofmsg.Barrier_request)));
  run sched (Time.of_ms 50);
  check Alcotest.bool "echo reply" true
    (List.exists (fun (m, x) -> m = Ofmsg.Echo_reply && x = 5) !inbox);
  check Alcotest.bool "barrier reply" true
    (List.exists (fun (m, x) -> m = Ofmsg.Barrier_reply && x = 6) !inbox)

let () =
  Alcotest.run "horse_openflow"
    [
      ( "match",
        [
          Alcotest.test_case "any" `Quick test_match_any;
          Alcotest.test_case "exact 5-tuple" `Quick test_match_exact_5tuple;
          Alcotest.test_case "prefix" `Quick test_match_prefix;
          Alcotest.test_case "in_port" `Quick test_match_in_port;
          prop_match_codec_roundtrip;
          prop_match_exact_key_matches;
        ] );
      ( "codec",
        [
          Alcotest.test_case "header" `Quick test_ofmsg_header;
          prop_ofmsg_roundtrip;
          prop_ofmsg_decode_total;
          prop_ofmsg_decode_total_mutated;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "priority" `Quick test_table_priority;
          Alcotest.test_case "add replaces" `Quick test_table_add_replaces;
          Alcotest.test_case "modify and delete" `Quick test_table_modify_and_delete;
          Alcotest.test_case "timeouts" `Quick test_table_timeouts;
          Alcotest.test_case "equal priority fifo" `Quick
            test_table_equal_priority_fifo;
        ] );
      ( "switch",
        [
          Alcotest.test_case "handshake" `Quick test_switch_handshake;
          Alcotest.test_case "flow mod + lookup" `Quick
            test_switch_flow_mod_and_lookup;
          Alcotest.test_case "packet_in + stats provider" `Quick
            test_switch_packet_in_and_stats;
          Alcotest.test_case "expiry hook" `Quick test_switch_expiry_hook;
          Alcotest.test_case "echo + barrier" `Quick test_switch_echo_and_barrier;
          Alcotest.test_case "port down/up" `Quick test_switch_port_down;
        ] );
    ]
