open Horse_net
open Wire

type fields = {
  in_port : int;
  eth_src : Mac.t;
  eth_dst : Mac.t;
  eth_type : int;
  ip_src : Ipv4.t;
  ip_dst : Ipv4.t;
  ip_proto : int;
  tp_src : int;
  tp_dst : int;
}

let fields_of_key ?(in_port = 0) (k : Flow_key.t) =
  {
    in_port;
    eth_src = Mac.of_index (Ipv4.hash k.Flow_key.src land 0xFFFF);
    eth_dst = Mac.of_index (Ipv4.hash k.Flow_key.dst land 0xFFFF);
    eth_type = 0x0800;
    ip_src = k.Flow_key.src;
    ip_dst = k.Flow_key.dst;
    ip_proto = Headers.Proto.to_int k.Flow_key.proto;
    tp_src = k.Flow_key.src_port;
    tp_dst = k.Flow_key.dst_port;
  }

type t = {
  m_in_port : int option;
  m_eth_src : Mac.t option;
  m_eth_dst : Mac.t option;
  m_eth_type : int option;
  m_ip_src : Prefix.t option;
  m_ip_dst : Prefix.t option;
  m_ip_proto : int option;
  m_tp_src : int option;
  m_tp_dst : int option;
}

let any =
  {
    m_in_port = None;
    m_eth_src = None;
    m_eth_dst = None;
    m_eth_type = None;
    m_ip_src = None;
    m_ip_dst = None;
    m_ip_proto = None;
    m_tp_src = None;
    m_tp_dst = None;
  }

let exact_5tuple (k : Flow_key.t) =
  {
    any with
    m_eth_type = Some 0x0800;
    m_ip_src = Some (Prefix.host k.Flow_key.src);
    m_ip_dst = Some (Prefix.host k.Flow_key.dst);
    m_ip_proto = Some (Headers.Proto.to_int k.Flow_key.proto);
    m_tp_src = Some k.Flow_key.src_port;
    m_tp_dst = Some k.Flow_key.dst_port;
  }

let to_dst prefix = { any with m_eth_type = Some 0x0800; m_ip_dst = Some prefix }

let fields_equal (a : fields) (b : fields) =
  a.in_port = b.in_port
  && Mac.equal a.eth_src b.eth_src
  && Mac.equal a.eth_dst b.eth_dst
  && a.eth_type = b.eth_type
  && Ipv4.equal a.ip_src b.ip_src
  && Ipv4.equal a.ip_dst b.ip_dst
  && a.ip_proto = b.ip_proto
  && a.tp_src = b.tp_src
  && a.tp_dst = b.tp_dst

let mix h k =
  let h = Int64.logxor h (Int64.mul k 0xff51afd7ed558ccdL) in
  Int64.mul
    (Int64.logxor h (Int64.shift_right_logical h 29))
    0xc4ceb9fe1a85ec53L

let u32 a = Int64.logand (Int64.of_int32 (Ipv4.to_int32 a)) 0xFFFFFFFFL

let hash_fields (f : fields) =
  let h = 0x9E3779B97F4A7C15L in
  let h = mix h (Int64.of_int ((f.in_port lsl 20) lor f.eth_type)) in
  let h = mix h (Mac.to_int64 f.eth_src) in
  let h = mix h (Mac.to_int64 f.eth_dst) in
  let h = mix h (u32 f.ip_src) in
  let h = mix h (u32 f.ip_dst) in
  let h =
    mix h (Int64.of_int ((f.ip_proto lsl 32) lor (f.tp_src lsl 16) lor f.tp_dst))
  in
  Int64.to_int h land max_int

module Fields_key = struct
  type t = fields

  let equal = fields_equal
  let hash = hash_fields
end

(* Truncate an address to its first [len] bits (a /len network). *)
let trunc addr len =
  if len <= 0 then Ipv4.any
  else if len >= 32 then addr
  else
    Ipv4.of_int32
      (Int32.logand (Ipv4.to_int32 addr) (Int32.shift_left 0xFFFFFFFFl (32 - len)))

module Mask = struct
  type t = {
    k_in_port : bool;
    k_eth_src : bool;
    k_eth_dst : bool;
    k_eth_type : bool;
    k_ip_src : int;
    k_ip_dst : int;
    k_ip_proto : bool;
    k_tp_src : bool;
    k_tp_dst : bool;
  }

  let empty =
    {
      k_in_port = false;
      k_eth_src = false;
      k_eth_dst = false;
      k_eth_type = false;
      k_ip_src = 0;
      k_ip_dst = 0;
      k_ip_proto = false;
      k_tp_src = false;
      k_tp_dst = false;
    }

  let union a b =
    {
      k_in_port = a.k_in_port || b.k_in_port;
      k_eth_src = a.k_eth_src || b.k_eth_src;
      k_eth_dst = a.k_eth_dst || b.k_eth_dst;
      k_eth_type = a.k_eth_type || b.k_eth_type;
      k_ip_src = Int.max a.k_ip_src b.k_ip_src;
      k_ip_dst = Int.max a.k_ip_dst b.k_ip_dst;
      k_ip_proto = a.k_ip_proto || b.k_ip_proto;
      k_tp_src = a.k_tp_src || b.k_tp_src;
      k_tp_dst = a.k_tp_dst || b.k_tp_dst;
    }

  (* The record holds only immediates, so structural equality and the
     polymorphic hash are exact and allocation-free. *)
  let equal (a : t) (b : t) = a = b
  let hash (t : t) = Hashtbl.hash t

  let subsumes a b =
    (b.k_in_port <= a.k_in_port)
    && (b.k_eth_src <= a.k_eth_src)
    && (b.k_eth_dst <= a.k_eth_dst)
    && (b.k_eth_type <= a.k_eth_type)
    && b.k_ip_src <= a.k_ip_src
    && b.k_ip_dst <= a.k_ip_dst
    && (b.k_ip_proto <= a.k_ip_proto)
    && (b.k_tp_src <= a.k_tp_src)
    && (b.k_tp_dst <= a.k_tp_dst)

  let project m (f : fields) =
    {
      in_port = (if m.k_in_port then f.in_port else 0);
      eth_src = (if m.k_eth_src then f.eth_src else Mac.zero);
      eth_dst = (if m.k_eth_dst then f.eth_dst else Mac.zero);
      eth_type = (if m.k_eth_type then f.eth_type else 0);
      ip_src = trunc f.ip_src m.k_ip_src;
      ip_dst = trunc f.ip_dst m.k_ip_dst;
      ip_proto = (if m.k_ip_proto then f.ip_proto else 0);
      tp_src = (if m.k_tp_src then f.tp_src else 0);
      tp_dst = (if m.k_tp_dst then f.tp_dst else 0);
    }

  let pp fmt m =
    let b name v = if v then Format.fprintf fmt " %s" name in
    Format.pp_print_string fmt "mask{";
    b "in_port" m.k_in_port;
    b "eth_src" m.k_eth_src;
    b "eth_dst" m.k_eth_dst;
    b "eth_type" m.k_eth_type;
    if m.k_ip_src > 0 then Format.fprintf fmt " ip_src/%d" m.k_ip_src;
    if m.k_ip_dst > 0 then Format.fprintf fmt " ip_dst/%d" m.k_ip_dst;
    b "ip_proto" m.k_ip_proto;
    b "tp_src" m.k_tp_src;
    b "tp_dst" m.k_tp_dst;
    Format.pp_print_string fmt " }"
end

let mask_of t =
  {
    Mask.k_in_port = t.m_in_port <> None;
    k_eth_src = t.m_eth_src <> None;
    k_eth_dst = t.m_eth_dst <> None;
    k_eth_type = t.m_eth_type <> None;
    k_ip_src = (match t.m_ip_src with None -> 0 | Some p -> Prefix.length p);
    k_ip_dst = (match t.m_ip_dst with None -> 0 | Some p -> Prefix.length p);
    k_ip_proto = t.m_ip_proto <> None;
    k_tp_src = t.m_tp_src <> None;
    k_tp_dst = t.m_tp_dst <> None;
  }

let fields_of_match t =
  {
    in_port = Option.value t.m_in_port ~default:0;
    eth_src = Option.value t.m_eth_src ~default:Mac.zero;
    eth_dst = Option.value t.m_eth_dst ~default:Mac.zero;
    eth_type = Option.value t.m_eth_type ~default:0;
    ip_src = (match t.m_ip_src with None -> Ipv4.any | Some p -> Prefix.network p);
    ip_dst = (match t.m_ip_dst with None -> Ipv4.any | Some p -> Prefix.network p);
    ip_proto = Option.value t.m_ip_proto ~default:0;
    tp_src = Option.value t.m_tp_src ~default:0;
    tp_dst = Option.value t.m_tp_dst ~default:0;
  }

module Match_key = struct
  type nonrec t = Mask.t * fields

  let of_match m = (mask_of m, fields_of_match m)

  let equal ((ma, fa) : t) ((mb, fb) : t) =
    Mask.equal ma mb && fields_equal fa fb

  let hash ((m, f) : t) = Hashtbl.hash (Mask.hash m, hash_fields f)
end

let match_key = Match_key.of_match

(* Does [t] admit any packet inside the region {P | project mask P =
   project mask rep}?  Fields outside [mask] are free in the region, so
   only the masked part of each constraint can exclude it. *)
let overlaps_region t (mask : Mask.t) (rep : fields) =
  (match t.m_in_port with
  | None -> true
  | Some v -> (not mask.Mask.k_in_port) || v = rep.in_port)
  && (match t.m_eth_src with
     | None -> true
     | Some m -> (not mask.Mask.k_eth_src) || Mac.equal m rep.eth_src)
  && (match t.m_eth_dst with
     | None -> true
     | Some m -> (not mask.Mask.k_eth_dst) || Mac.equal m rep.eth_dst)
  && (match t.m_eth_type with
     | None -> true
     | Some v -> (not mask.Mask.k_eth_type) || v = rep.eth_type)
  && (match t.m_ip_src with
     | None -> true
     | Some p ->
         let l = Int.min (Prefix.length p) mask.Mask.k_ip_src in
         Ipv4.equal (trunc (Prefix.network p) l) (trunc rep.ip_src l))
  && (match t.m_ip_dst with
     | None -> true
     | Some p ->
         let l = Int.min (Prefix.length p) mask.Mask.k_ip_dst in
         Ipv4.equal (trunc (Prefix.network p) l) (trunc rep.ip_dst l))
  && (match t.m_ip_proto with
     | None -> true
     | Some v -> (not mask.Mask.k_ip_proto) || v = rep.ip_proto)
  && (match t.m_tp_src with
     | None -> true
     | Some v -> (not mask.Mask.k_tp_src) || v = rep.tp_src)
  && match t.m_tp_dst with
     | None -> true
     | Some v -> (not mask.Mask.k_tp_dst) || v = rep.tp_dst

let check_opt v = function None -> true | Some expected -> expected = v

let matches t f =
  check_opt f.in_port t.m_in_port
  && (match t.m_eth_src with None -> true | Some m -> Mac.equal m f.eth_src)
  && (match t.m_eth_dst with None -> true | Some m -> Mac.equal m f.eth_dst)
  && check_opt f.eth_type t.m_eth_type
  && (match t.m_ip_src with None -> true | Some p -> Prefix.mem f.ip_src p)
  && (match t.m_ip_dst with None -> true | Some p -> Prefix.mem f.ip_dst p)
  && check_opt f.ip_proto t.m_ip_proto
  && check_opt f.tp_src t.m_tp_src
  && check_opt f.tp_dst t.m_tp_dst

(* Two constraints on one field exclude each other only when both are
   present and name provably different values. Each helper answers
   "disjoint on this field?" — [is_exact_overlap] is the conjunction's
   negation, so a single provably-disjoint field settles the pair. *)
let disjoint_exact a b =
  match (a, b) with Some x, Some y -> x <> y | None, _ | _, None -> false

let disjoint_mac a b =
  match (a, b) with
  | Some x, Some y -> not (Mac.equal x y)
  | None, _ | _, None -> false

let disjoint_prefix a b =
  match (a, b) with
  | Some p, Some q -> not (Prefix.overlaps p q)
  | None, _ | _, None -> false

let is_exact_overlap a b =
  not
    (disjoint_exact a.m_in_port b.m_in_port
    || disjoint_mac a.m_eth_src b.m_eth_src
    || disjoint_mac a.m_eth_dst b.m_eth_dst
    || disjoint_exact a.m_eth_type b.m_eth_type
    || disjoint_prefix a.m_ip_src b.m_ip_src
    || disjoint_prefix a.m_ip_dst b.m_ip_dst
    || disjoint_exact a.m_ip_proto b.m_ip_proto
    || disjoint_exact a.m_tp_src b.m_tp_src
    || disjoint_exact a.m_tp_dst b.m_tp_dst)

(* --- ofp_match codec ----------------------------------------------- *)

let size = 40

(* OFPFW_* wildcard bits (OpenFlow 1.0). *)
let fw_in_port = 1 lsl 0
let fw_dl_vlan = 1 lsl 1
let fw_dl_src = 1 lsl 2
let fw_dl_dst = 1 lsl 3
let fw_dl_type = 1 lsl 4
let fw_nw_proto = 1 lsl 5
let fw_tp_src = 1 lsl 6
let fw_tp_dst = 1 lsl 7
let fw_nw_src_shift = 8
let fw_nw_dst_shift = 14
let fw_dl_vlan_pcp = 1 lsl 20
let fw_nw_tos = 1 lsl 21

let nw_wildcard_bits = function
  | None -> 32 (* fully wildcarded *)
  | Some p -> 32 - Prefix.length p

let write buf off t =
  let wildcards =
    (if t.m_in_port = None then fw_in_port else 0)
    lor fw_dl_vlan
    lor (if t.m_eth_src = None then fw_dl_src else 0)
    lor (if t.m_eth_dst = None then fw_dl_dst else 0)
    lor (if t.m_eth_type = None then fw_dl_type else 0)
    lor (if t.m_ip_proto = None then fw_nw_proto else 0)
    lor (if t.m_tp_src = None then fw_tp_src else 0)
    lor (if t.m_tp_dst = None then fw_tp_dst else 0)
    lor (nw_wildcard_bits t.m_ip_src lsl fw_nw_src_shift)
    lor (nw_wildcard_bits t.m_ip_dst lsl fw_nw_dst_shift)
    lor fw_dl_vlan_pcp lor fw_nw_tos
  in
  set_u32_int buf off wildcards;
  set_u16 buf (off + 4) (Option.value t.m_in_port ~default:0);
  set_mac buf (off + 6) (Option.value t.m_eth_src ~default:Mac.zero);
  set_mac buf (off + 12) (Option.value t.m_eth_dst ~default:Mac.zero);
  set_u16 buf (off + 18) 0xFFFF (* dl_vlan: none *);
  set_u8 buf (off + 20) 0 (* dl_vlan_pcp *);
  set_u8 buf (off + 21) 0 (* pad *);
  set_u16 buf (off + 22) (Option.value t.m_eth_type ~default:0);
  set_u8 buf (off + 24) 0 (* nw_tos *);
  set_u8 buf (off + 25) (Option.value t.m_ip_proto ~default:0);
  set_u16 buf (off + 26) 0 (* pad *);
  set_ipv4 buf (off + 28)
    (match t.m_ip_src with Some p -> Prefix.network p | None -> Ipv4.any);
  set_ipv4 buf (off + 32)
    (match t.m_ip_dst with Some p -> Prefix.network p | None -> Ipv4.any);
  set_u16 buf (off + 36) (Option.value t.m_tp_src ~default:0);
  set_u16 buf (off + 38) (Option.value t.m_tp_dst ~default:0)

let read buf off =
  let* wildcards = u32_int buf off in
  let has bit = wildcards land bit = 0 in
  let* in_port = u16 buf (off + 4) in
  let* eth_src = mac buf (off + 6) in
  let* eth_dst = mac buf (off + 12) in
  let* eth_type = u16 buf (off + 22) in
  let* ip_proto = u8 buf (off + 25) in
  let* ip_src = ipv4 buf (off + 28) in
  let* ip_dst = ipv4 buf (off + 32) in
  let* tp_src = u16 buf (off + 36) in
  let* tp_dst = u16 buf (off + 38) in
  let nw_prefix shift addr =
    let bits = (wildcards lsr shift) land 0x3F in
    if bits >= 32 then None else Some (Prefix.make addr (32 - bits))
  in
  Ok
    {
      m_in_port = (if has fw_in_port then Some in_port else None);
      m_eth_src = (if has fw_dl_src then Some eth_src else None);
      m_eth_dst = (if has fw_dl_dst then Some eth_dst else None);
      m_eth_type = (if has fw_dl_type then Some eth_type else None);
      m_ip_src = nw_prefix fw_nw_src_shift ip_src;
      m_ip_dst = nw_prefix fw_nw_dst_shift ip_dst;
      m_ip_proto = (if has fw_nw_proto then Some ip_proto else None);
      m_tp_src = (if has fw_tp_src then Some tp_src else None);
      m_tp_dst = (if has fw_tp_dst then Some tp_dst else None);
    }

let equal a b =
  a.m_in_port = b.m_in_port
  && Option.equal Mac.equal a.m_eth_src b.m_eth_src
  && Option.equal Mac.equal a.m_eth_dst b.m_eth_dst
  && a.m_eth_type = b.m_eth_type
  && Option.equal Prefix.equal a.m_ip_src b.m_ip_src
  && Option.equal Prefix.equal a.m_ip_dst b.m_ip_dst
  && a.m_ip_proto = b.m_ip_proto
  && a.m_tp_src = b.m_tp_src
  && a.m_tp_dst = b.m_tp_dst

let pp fmt t =
  let field name pp_v fmt_v =
    match fmt_v with
    | None -> ()
    | Some v -> Format.fprintf fmt " %s=%a" name pp_v v
  in
  Format.pp_print_string fmt "match{";
  field "in_port" Format.pp_print_int t.m_in_port;
  field "eth_src" Mac.pp t.m_eth_src;
  field "eth_dst" Mac.pp t.m_eth_dst;
  field "eth_type"
    (fun fmt v -> Format.fprintf fmt "0x%04x" v)
    t.m_eth_type;
  field "ip_src" Prefix.pp t.m_ip_src;
  field "ip_dst" Prefix.pp t.m_ip_dst;
  field "proto" Format.pp_print_int t.m_ip_proto;
  field "tp_src" Format.pp_print_int t.m_tp_src;
  field "tp_dst" Format.pp_print_int t.m_tp_dst;
  Format.pp_print_string fmt " }"
