(** OpenFlow 1.0-style flow match: a 12-tuple with wildcards, plus the
    concrete header-field record it is tested against.

    Encoded as the 40-byte [ofp_match] structure, including the
    wildcard bitfield with the 6-bit CIDR mask sub-fields for the
    network addresses. *)

open Horse_net

(** Concrete packet fields as seen by a switch port. *)
type fields = {
  in_port : int;
  eth_src : Mac.t;
  eth_dst : Mac.t;
  eth_type : int;
  ip_src : Ipv4.t;
  ip_dst : Ipv4.t;
  ip_proto : int;
  tp_src : int;
  tp_dst : int;
}

val fields_of_key : ?in_port:int -> Flow_key.t -> fields
(** Synthesises fields from a 5-tuple (MACs derived from the
    addresses, ethertype IPv4). *)

type t = {
  m_in_port : int option;
  m_eth_src : Mac.t option;
  m_eth_dst : Mac.t option;
  m_eth_type : int option;
  m_ip_src : Prefix.t option;
  m_ip_dst : Prefix.t option;
  m_ip_proto : int option;
  m_tp_src : int option;
  m_tp_dst : int option;
}

val any : t
(** Matches everything (all fields wildcarded). *)

val exact_5tuple : Flow_key.t -> t
(** Matches exactly this 5-tuple (L2 fields wildcarded, as the SDN
    ECMP application installs). *)

val to_dst : Prefix.t -> t
(** Match on IPv4 destination prefix only. *)

val matches : t -> fields -> bool

val is_exact_overlap : t -> t -> bool
(** True when the two matches could both match some packet — used by
    flow-mod DELETE with loose matching semantics. Conservative
    (may return true for disjoint matches with different masks). *)

val size : int
(** 40 bytes encoded. *)

val write : Bytes.t -> int -> t -> unit
val read : t Wire.reader

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
