lib/stats/csv.mli: Format Series
