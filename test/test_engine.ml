(* Tests for horse_engine: virtual time, RNG, event queue, and the
   hybrid DES/FTI scheduler. *)

open Horse_engine

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Time ------------------------------------------------------------ *)

let test_time_conversions () =
  check Alcotest.int "of_ms" 1500000 (Time.to_us (Time.of_ms 1500));
  check (Alcotest.float 1e-9) "of_sec" 2.5 (Time.to_sec (Time.of_sec 2.5));
  check Alcotest.int "add" 3000 (Time.to_us (Time.add (Time.of_ms 1) (Time.of_ms 2)));
  check Alcotest.int "sub negative" (-1000)
    (Time.to_us (Time.sub (Time.of_ms 1) (Time.of_ms 2)));
  check Alcotest.bool "compare" true Time.(Time.of_ms 1 < Time.of_ms 2)

let test_time_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  check Alcotest.string "seconds" "2s" (s (Time.of_sec 2.0));
  check Alcotest.string "millis" "250ms" (s (Time.of_ms 250));
  check Alcotest.string "micros" "10us" (s (Time.of_us 10));
  check Alcotest.string "fractional" "1.500s" (s (Time.of_ms 1500))

(* --- Rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let same = ref true in
  for _ = 1 to 16 do
    if Rng.int a 1_000_000 <> Rng.int b 1_000_000 then same := false
  done;
  check Alcotest.bool "different seeds diverge" false !same

let prop_rng_int_bounds =
  qtest "rng: int within bounds"
    QCheck2.Gen.(pair (int_bound 1000) (int_range 1 500))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_rng_permutation_valid =
  qtest "rng: permutation is a bijection"
    QCheck2.Gen.(pair (int_bound 1000) (int_range 1 60))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.create seed) n in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) p;
      Array.for_all (fun b -> b) seen)

let prop_rng_derangement_no_fixpoint =
  qtest "rng: derangement has no fixed point"
    QCheck2.Gen.(pair (int_bound 1000) (int_range 2 60))
    (fun (seed, n) ->
      let d = Rng.derangement (Rng.create seed) n in
      let ok = ref true in
      Array.iteri (fun i v -> if i = v then ok := false) d;
      !ok)

let prop_rng_float_bounds =
  qtest "rng: float within bounds" (QCheck2.Gen.int_bound 1000) (fun seed ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Rng.float rng 3.5 in
        if v < 0.0 || v >= 3.5 then ok := false
      done;
      !ok)

(* --- Event queue ------------------------------------------------------ *)

let drain_all q =
  let rec go () =
    match Event_queue.pop q with
    | Some (_, action, _) ->
        action ();
        go ()
    | None -> ()
  in
  go ()

let test_queue_order () =
  let q = Event_queue.create () in
  let out = ref [] in
  let note label () = out := label :: !out in
  ignore (Event_queue.schedule q (Time.of_ms 5) (note "c"));
  ignore (Event_queue.schedule q (Time.of_ms 1) (note "a"));
  ignore (Event_queue.schedule q (Time.of_ms 3) (note "b"));
  drain_all q;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ]
    (List.rev !out)

let test_queue_fifo_same_time () =
  let q = Event_queue.create () in
  let out = ref [] in
  for i = 1 to 50 do
    ignore (Event_queue.schedule q (Time.of_ms 7) (fun () -> out := i :: !out))
  done;
  drain_all q;
  check (Alcotest.list Alcotest.int) "insertion order preserved"
    (List.init 50 (fun i -> i + 1))
    (List.rev !out)

let test_queue_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let h = Event_queue.schedule q (Time.of_ms 1) (fun () -> fired := true) in
  ignore (Event_queue.schedule q (Time.of_ms 2) (fun () -> ()));
  Event_queue.cancel h;
  check Alcotest.bool "cancelled flag" true (Event_queue.is_cancelled h);
  check Alcotest.int "size excludes cancelled" 1 (Event_queue.size q);
  drain_all q;
  check Alcotest.bool "cancelled never ran" false !fired

let test_queue_pop_until () =
  let q = Event_queue.create () in
  ignore (Event_queue.schedule q (Time.of_ms 10) (fun () -> ()));
  check Alcotest.bool "nothing before 5ms" true
    (Event_queue.pop_until q (Time.of_ms 5) = None);
  check Alcotest.bool "available at 10ms" true
    (Event_queue.pop_until q (Time.of_ms 10) <> None)

let prop_queue_sorted =
  qtest "event queue: pops in non-decreasing time order"
    QCheck2.Gen.(list_size (int_range 0 200) (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter
        (fun us -> ignore (Event_queue.schedule q (Time.of_us us) (fun () -> ())))
        times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (at, _, _) -> Time.(at >= last) && drain at
      in
      drain Time.zero)

let test_queue_size_after_cancel () =
  let q = Event_queue.create () in
  let handles =
    List.init 10 (fun i ->
        Event_queue.schedule q (Time.of_ms i) (fun () -> ()))
  in
  check Alcotest.int "all live" 10 (Event_queue.size q);
  List.iteri (fun i h -> if i mod 2 = 0 then Event_queue.cancel h) handles;
  check Alcotest.int "size drops with each cancel" 5 (Event_queue.size q);
  (* Cancelling twice must not double-decrement. *)
  Event_queue.cancel (List.hd handles);
  check Alcotest.int "idempotent cancel" 5 (Event_queue.size q);
  (* Cancelling an event that has already been popped must not touch
     the live count of the remaining heap (the fluid engine cancels
     completion timers that may have fired). *)
  let h_popped = List.nth handles 1 in
  (match Event_queue.pop q with
  | Some (at, _, _) ->
      check Alcotest.int "popped earliest live" 1 (Time.to_us at / 1000)
  | None -> Alcotest.fail "expected a live event");
  check Alcotest.int "pop decrements" 4 (Event_queue.size q);
  Event_queue.cancel h_popped;
  check Alcotest.int "cancel after pop is a no-op on size" 4 (Event_queue.size q);
  drain_all q;
  check Alcotest.int "drained" 0 (Event_queue.size q)

let test_queue_compaction_preserves_order () =
  (* Flood the heap with cancellations so the compaction sweep
     triggers, then check ordering and FIFO-at-same-time survive. *)
  let q = Event_queue.create () in
  let doomed = ref [] in
  for i = 0 to 499 do
    let h =
      Event_queue.schedule q (Time.of_us (i mod 50)) (fun () -> ())
    in
    if i mod 4 <> 0 then doomed := h :: !doomed
  done;
  List.iter Event_queue.cancel !doomed;
  check Alcotest.int "live after mass cancel" 125 (Event_queue.size q);
  (* Next schedules run the compaction path. *)
  let out = ref [] in
  for i = 0 to 9 do
    ignore (Event_queue.schedule q (Time.of_us 25) (fun () -> out := i :: !out))
  done;
  check Alcotest.int "live after compaction" 135 (Event_queue.size q);
  let rec drain last n =
    match Event_queue.pop q with
    | None -> n
    | Some (at, action, _) ->
        check Alcotest.bool "non-decreasing after compaction" true
          Time.(at >= last);
        action ();
        drain at (n + 1)
  in
  let popped = drain Time.zero 0 in
  check Alcotest.int "every live event pops exactly once" 135 popped;
  check (Alcotest.list Alcotest.int) "fifo among equals survives compaction"
    (List.init 10 (fun i -> i))
    (List.rev !out)

let test_queue_reschedule () =
  let q = Event_queue.create () in
  let out = ref [] in
  let ev i at = Event_queue.schedule q (Time.of_ms at) (fun () -> out := i :: !out) in
  let a = ev 1 10 and _b = ev 2 20 and c = ev 3 30 in
  (* Later, earlier, and re-arming an already-popped event. *)
  Event_queue.reschedule a (Time.of_ms 25);
  Event_queue.reschedule c (Time.of_ms 5);
  check Alcotest.int "reschedule keeps size" 3 (Event_queue.size q);
  (match Event_queue.pop q with
  | Some (at, action, _) ->
      check Alcotest.int "earliest is re-aimed c" 5 (Time.to_us at / 1000);
      action ()
  | None -> Alcotest.fail "expected an event");
  Event_queue.reschedule c (Time.of_ms 22);
  check Alcotest.int "fired event re-armed" 3 (Event_queue.size q);
  Event_queue.cancel a;
  Event_queue.reschedule a (Time.of_ms 21);
  drain_all q;
  check (Alcotest.list Alcotest.int) "order follows the re-aimed times"
    [ 3; 2; 1; 3 ] (List.rev !out)

let prop_wheel_matches_heap =
  (* Differential suite: the timing wheel against the retired binary
     heap under random schedule / cancel / reschedule / pop /
     pop_until interleavings, with deadlines drawn across every wheel
     level and the overflow heap. Any divergence in pop order,
     executed actions, or sizes is a wheel bug. *)
  qtest ~count:300 "event queue: wheel matches heap reference"
    QCheck2.Gen.(
      list_size (int_range 0 150)
        (triple (int_bound 9) (int_bound 3) (int_bound 0x3FFFFFFF)))
    (fun ops ->
      let wheel = Event_queue.create () in
      let heap = Heap_queue.create () in
      let w_out = ref [] and h_out = ref [] in
      let handles = ref [] and n_handles = ref 0 in
      let now = ref 0 and next_id = ref 0 in
      let ok = ref true in
      (* Deadlines land in wheel level [band] (or the overflow heap
         when band = 3) relative to the popped-up-to time. *)
      let time_of band off =
        let span =
          match band with
          | 0 -> 1 lsl 12
          | 1 -> 1 lsl 18
          | 2 -> 1 lsl 26
          | _ -> 1 lsl 30
        in
        Time.of_us (!now + (off mod span))
      in
      let add at =
        let id = !next_id in
        incr next_id;
        let wh = Event_queue.schedule wheel at (fun () -> w_out := id :: !w_out) in
        let hh = Heap_queue.schedule heap at (fun () -> h_out := id :: !h_out) in
        handles := (wh, hh) :: !handles;
        incr n_handles
      in
      let pick k = List.nth !handles (k mod !n_handles) in
      let pop_both until =
        let w =
          match until with
          | None -> Event_queue.pop wheel
          | Some u -> Event_queue.pop_until wheel u
        and h =
          match until with
          | None -> Heap_queue.pop heap
          | Some u -> Heap_queue.pop_until heap u
        in
        match (w, h) with
        | Some (tw, aw, _), Some (th, ah) ->
            if not (Time.equal tw th) then ok := false;
            aw ();
            ah ();
            now := max !now (Time.to_us tw)
        | None, None -> ()
        | Some _, None | None, Some _ -> ok := false
      in
      List.iter
        (fun (op, band, off) ->
          (match op with
          | 0 | 1 | 2 | 3 -> add (time_of band off)
          | 4 ->
              (* In the past: the queue is time-agnostic. *)
              add (Time.of_us (max 0 (!now - (off mod 4096))))
          | 5 ->
              if !n_handles > 0 then begin
                let wh, hh = pick off in
                Event_queue.cancel wh;
                Heap_queue.cancel hh;
                if Event_queue.is_cancelled wh <> Heap_queue.is_cancelled hh
                then ok := false
              end
          | 6 ->
              if !n_handles > 0 then begin
                let wh, hh = pick off in
                let at = time_of band (off / 7) in
                Event_queue.reschedule wh at;
                Heap_queue.reschedule hh at
              end
          | 7 | 8 -> pop_both None
          | _ -> pop_both (Some (time_of band off)));
          if Event_queue.size wheel <> Heap_queue.size heap then ok := false;
          (match (Event_queue.next_time wheel, Heap_queue.next_time heap) with
          | Some a, Some b -> if not (Time.equal a b) then ok := false
          | None, None -> ()
          | Some _, None | None, Some _ -> ok := false))
        ops;
      (* Drain both to the end and compare the executed-action order.
         Fuel bounds the loop so a pop-loses-events bug fails instead
         of hanging. *)
      let rec drain fuel =
        if fuel = 0 then ok := false
        else if not (Event_queue.is_empty wheel && Heap_queue.is_empty heap)
        then begin
          pop_both None;
          drain (fuel - 1)
        end
      in
      drain 1000;
      !ok && !w_out = !h_out
      && Event_queue.is_empty wheel
      && Heap_queue.is_empty heap)

(* --- Hybrid scheduler -------------------------------------------------- *)

let test_des_jumps () =
  let sched = Sched.create () in
  let seen = ref [] in
  ignore
    (Sched.schedule_at sched (Time.of_sec 100.0) (fun () ->
         seen := Time.to_sec (Sched.now sched) :: !seen));
  ignore
    (Sched.schedule_at sched (Time.of_sec 900.0) (fun () ->
         seen := Time.to_sec (Sched.now sched) :: !seen));
  let stats = Sched.run ~until:(Time.of_sec 1000.0) sched in
  check (Alcotest.list (Alcotest.float 1e-6)) "clock jumped to events"
    [ 100.0; 900.0 ] (List.rev !seen);
  check Alcotest.int "two events" 2 stats.Sched.events_executed;
  check Alcotest.int "no FTI at all" 0 stats.Sched.fti_increments;
  check (Alcotest.float 1e-6) "finished exactly at until" 1000.0
    (Time.to_sec stats.Sched.end_time)

let test_fti_transition_and_return () =
  let config =
    {
      Sched.default_config with
      Sched.fti_increment = Time.of_ms 1;
      quiet_timeout = Time.of_ms 100;
    }
  in
  let sched = Sched.create ~config () in
  ignore
    (Sched.schedule_at sched (Time.of_ms 50) (fun () ->
         Sched.control_activity ~reason:"test" sched));
  let stats = Sched.run ~until:(Time.of_sec 1.0) sched in
  match stats.Sched.transitions with
  | [ to_fti; to_des ] ->
      check Alcotest.string "first transition" "FTI"
        (Sched.mode_to_string to_fti.Sched.to_mode);
      check (Alcotest.float 1e-6) "enters FTI at the event" 0.05
        (Time.to_sec to_fti.Sched.at);
      check Alcotest.string "second transition" "DES"
        (Sched.mode_to_string to_des.Sched.to_mode);
      check (Alcotest.float 2e-3) "returns after quiet timeout" 0.15
        (Time.to_sec to_des.Sched.at);
      check Alcotest.bool "increment count" true
        (stats.Sched.fti_increments >= 99 && stats.Sched.fti_increments <= 102);
      check (Alcotest.float 5e-3) "virtual time in FTI" 0.1
        (Time.to_sec stats.Sched.virtual_in_fti)
  | transitions ->
      Alcotest.failf "expected 2 transitions, got %d" (List.length transitions)

let test_activity_refreshes_quiet_timer () =
  let config =
    { Sched.default_config with Sched.quiet_timeout = Time.of_ms 50 }
  in
  let sched = Sched.create ~config () in
  List.iter
    (fun ms ->
      ignore
        (Sched.schedule_at sched (Time.of_ms ms) (fun () ->
             Sched.control_activity sched)))
    [ 10; 40; 70; 100 ];
  let stats = Sched.run ~until:(Time.of_ms 300) sched in
  check Alcotest.int "exactly one FTI entry and one exit" 2
    (List.length stats.Sched.transitions);
  match List.rev stats.Sched.transitions with
  | exit_t :: _ ->
      check (Alcotest.float 3e-3) "exit 50ms after last activity" 0.15
        (Time.to_sec exit_t.Sched.at)
  | [] -> Alcotest.fail "no transitions"

let test_pollers_only_in_fti () =
  let config =
    { Sched.default_config with Sched.quiet_timeout = Time.of_ms 20 }
  in
  let sched = Sched.create ~config () in
  let polls = ref 0 in
  ignore
    (Sched.add_poller sched (fun () ->
         incr polls;
         Sched.Always));
  ignore (Sched.schedule_at sched (Time.of_ms 500) (fun () -> ()));
  ignore (Sched.run ~until:(Time.of_sec 1.0) sched);
  check Alcotest.int "no polls in pure DES run" 0 !polls;
  ignore
    (Sched.schedule_at sched (Time.of_sec 1.1) (fun () ->
         Sched.control_activity sched));
  ignore (Sched.run ~until:(Time.of_sec 2.0) sched);
  check Alcotest.bool "pollers ticked during FTI" true (!polls >= 20)

let test_events_during_fti_execute () =
  let config =
    { Sched.default_config with Sched.quiet_timeout = Time.of_ms 30 }
  in
  let sched = Sched.create ~config () in
  let fired_at = ref [] in
  ignore
    (Sched.schedule_at sched (Time.of_ms 1) (fun () ->
         Sched.control_activity sched;
         ignore
           (Sched.schedule_after sched (Time.of_ms 5) (fun () ->
                fired_at := Time.to_ms (Sched.now sched) :: !fired_at))));
  ignore (Sched.run ~until:(Time.of_ms 200) sched);
  match !fired_at with
  | [ at ] -> check Alcotest.bool "fired near 6ms" true (at >= 6.0 && at < 8.0)
  | other -> Alcotest.failf "expected one firing, got %d" (List.length other)

let test_recurring_and_cancel () =
  let sched = Sched.create () in
  let count = ref 0 in
  let r = Sched.every sched (Time.of_ms 10) (fun () -> incr count) in
  ignore
    (Sched.schedule_at sched (Time.of_ms 55) (fun () -> Sched.cancel_recurring r));
  ignore (Sched.run ~until:(Time.of_ms 200) sched);
  check Alcotest.int "fired at 10..50" 5 !count

let test_recurring_cadence_no_drift () =
  let sched = Sched.create () in
  let times = ref [] in
  let _r =
    Sched.every sched (Time.of_ms 100) (fun () ->
        times := Time.to_ms (Sched.now sched) :: !times)
  in
  ignore (Sched.run ~until:(Time.of_ms 1000) sched);
  check
    (Alcotest.list (Alcotest.float 1e-6))
    "fixed cadence"
    [ 100.; 200.; 300.; 400.; 500.; 600.; 700.; 800.; 900.; 1000. ]
    (List.rev !times)

let test_schedule_in_past_clamps () =
  let sched = Sched.create () in
  let at = ref (-1.0) in
  ignore
    (Sched.schedule_at sched (Time.of_ms 100) (fun () ->
         ignore
           (Sched.schedule_at sched (Time.of_ms 1) (fun () ->
                at := Time.to_ms (Sched.now sched)))));
  ignore (Sched.run ~until:(Time.of_ms 200) sched);
  check (Alcotest.float 1e-6) "clamped to now" 100.0 !at

let test_defer_runs_before_clock_advances () =
  let sched = Sched.create () in
  let trace = ref [] in
  let note label () =
    trace := (label, Time.to_ms (Sched.now sched)) :: !trace
  in
  ignore
    (Sched.schedule_at sched (Time.of_ms 1) (fun () ->
         Sched.defer sched (note "defer");
         note "first@1" ()));
  ignore (Sched.schedule_at sched (Time.of_ms 1) (note "second@1"));
  ignore (Sched.schedule_at sched (Time.of_ms 5) (note "later@5"));
  ignore (Sched.run sched);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "deferred work drains after the instant's events, before time moves"
    [ ("first@1", 1.0); ("second@1", 1.0); ("defer", 1.0); ("later@5", 5.0) ]
    (List.rev !trace)

let test_defer_chains_drain_in_instant () =
  (* A deferred callback may defer again; the whole chain must drain
     at the instant that started it. *)
  let sched = Sched.create () in
  let ran = ref 0 in
  ignore
    (Sched.schedule_at sched (Time.of_ms 2) (fun () ->
         let rec go n =
           Sched.defer sched (fun () ->
               check (Alcotest.float 1e-9) "still at 2ms" 2.0
                 (Time.to_ms (Sched.now sched));
               incr ran;
               if n > 0 then go (n - 1))
         in
         go 3));
  ignore (Sched.schedule_at sched (Time.of_ms 9) (fun () -> ()));
  ignore (Sched.run sched);
  check Alcotest.int "all chained callbacks ran" 4 !ran

let test_stop () =
  let sched = Sched.create () in
  let executed = ref 0 in
  ignore
    (Sched.schedule_at sched (Time.of_ms 1) (fun () ->
         incr executed;
         Sched.stop sched));
  ignore (Sched.schedule_at sched (Time.of_ms 2) (fun () -> incr executed));
  ignore (Sched.run ~until:(Time.of_sec 1.0) sched);
  check Alcotest.int "stopped after first event" 1 !executed

let test_start_in_fti () =
  let config =
    {
      Sched.default_config with
      Sched.start_in_fti = true;
      quiet_timeout = Time.of_ms 10;
    }
  in
  let sched = Sched.create ~config () in
  let stats = Sched.run ~until:(Time.of_ms 100) sched in
  check Alcotest.int "one transition to DES" 1
    (List.length stats.Sched.transitions);
  check Alcotest.bool "some increments" true (stats.Sched.fti_increments >= 10)

let test_fti_wall_cost_exceeds_des () =
  (* The paper's core claim in miniature: the same quiet virtual hour
     costs far less wall time in DES than in FTI. Pinned to the eager
     scheduler — fast-forward exists precisely to erase this cost. *)
  let run ~start_in_fti ~quiet_timeout =
    let config =
      {
        Sched.default_config with
        Sched.start_in_fti;
        quiet_timeout;
        fti_increment = Time.of_ms 1;
        fast_path = false;
      }
    in
    let sched = Sched.create ~config () in
    Sched.run ~until:(Time.of_sec 3600.0) sched
  in
  let des = run ~start_in_fti:false ~quiet_timeout:(Time.of_sec 1.0) in
  let fti = run ~start_in_fti:true ~quiet_timeout:(Time.of_sec 7200.0) in
  check Alcotest.int "DES: no increments" 0 des.Sched.fti_increments;
  check Alcotest.int "FTI: one increment per millisecond" 3_600_000
    fti.Sched.fti_increments;
  check Alcotest.bool "FTI costs more wall time" true
    (fti.Sched.wall_total > des.Sched.wall_total)

let test_fast_forward_skips_idle_fti () =
  (* The same quiet virtual hour again, fast path on: the increment
     count the experiment observes is unchanged, but almost all of the
     boundaries are fast-forwarded in O(1) jumps rather than stepped. *)
  let config =
    {
      Sched.default_config with
      Sched.start_in_fti = true;
      quiet_timeout = Time.of_sec 7200.0;
      fti_increment = Time.of_ms 1;
    }
  in
  let sched = Sched.create ~config () in
  let stats = Sched.run ~until:(Time.of_sec 3600.0) sched in
  check Alcotest.int "FTI: one increment per millisecond" 3_600_000
    stats.Sched.fti_increments;
  check Alcotest.bool "almost all increments fast-forwarded" true
    (stats.Sched.fti_increments_skipped > 3_599_000);
  check (Alcotest.float 1e-6) "virtual hour still elapses" 3600.0
    (Time.to_sec stats.Sched.end_time)

let test_fast_forward_respects_events_and_pollers () =
  (* Fast-forward must stop at event deadlines, and a runnable poller
     (hint [Always]) pins the scheduler to eager stepping; a dozing
     one ([Wake_at]) is woken exactly at its deadline. *)
  let config =
    {
      Sched.default_config with
      Sched.start_in_fti = true;
      quiet_timeout = Time.of_sec 60.0;
      fti_increment = Time.of_ms 1;
    }
  in
  let sched = Sched.create ~config () in
  let fired = ref (-1.0) in
  ignore
    (Sched.schedule_at sched (Time.of_sec 5.0) (fun () ->
         fired := Time.to_sec (Sched.now sched)));
  let wakes = ref [] in
  ignore
    (Sched.add_poller sched (fun () ->
         wakes := Time.to_sec (Sched.now sched) :: !wakes;
         Sched.Wake_at (Time.add (Sched.now sched) (Time.of_sec 2.0))));
  ignore (Sched.run ~until:(Time.of_sec 10.0) sched);
  check (Alcotest.float 1e-6) "event fired on time" 5.0 !fired;
  (* Woken every 2 s from the first increment: 0, 2, ..., 10. *)
  check Alcotest.int "poller woken at its deadlines only" 6
    (List.length !wakes);
  List.iteri
    (fun i at ->
      check (Alcotest.float 1e-6) "wake cadence" (float_of_int (5 - i) *. 2.0) at)
    !wakes

let test_rerun_continues () =
  let sched = Sched.create () in
  ignore (Sched.schedule_at sched (Time.of_ms 10) (fun () -> ()));
  let s1 = Sched.run ~until:(Time.of_ms 100) sched in
  ignore (Sched.schedule_at sched (Time.of_ms 150) (fun () -> ()));
  let s2 = Sched.run ~until:(Time.of_ms 200) sched in
  check (Alcotest.float 1e-6) "first run ends at horizon" 0.1
    (Time.to_sec s1.Sched.end_time);
  check (Alcotest.float 1e-6) "second run continues" 0.2
    (Time.to_sec s2.Sched.end_time);
  check Alcotest.int "cumulative events" 2 s2.Sched.events_executed

let prop_sched_matches_reference =
  (* Random one-shot schedules: the DES engine must execute exactly
     the reference order (sort by time, ties by insertion). *)
  qtest ~count:100 "sched: DES execution order matches reference simulator"
    QCheck2.Gen.(list_size (int_range 0 60) (int_bound 5_000))
    (fun times_us ->
      let sched = Sched.create () in
      let order = ref [] in
      List.iteri
        (fun i us ->
          ignore
            (Sched.schedule_at sched (Time.of_us us) (fun () ->
                 order := (i, Time.to_us (Sched.now sched)) :: !order)))
        times_us;
      ignore (Sched.run sched);
      let got = List.rev !order in
      let want =
        List.mapi (fun i us -> (i, us)) times_us
        |> List.stable_sort (fun (_, a) (_, b) -> Int.compare a b)
      in
      got = want)

let test_sched_metrics_agree_with_stats () =
  (* Sched.stats is a view over the telemetry registry: the exported
     gauges must agree with the stats record for the same run. *)
  let module Registry = Horse_telemetry.Registry in
  let config =
    { Sched.default_config with Sched.quiet_timeout = Time.of_ms 50 }
  in
  let sched = Sched.create ~config () in
  ignore
    (Sched.schedule_at sched (Time.of_ms 10) (fun () ->
         Sched.control_activity ~reason:"test" sched));
  let stats = Sched.run ~until:(Time.of_sec 2.0) sched in
  let reg = Sched.registry sched in
  let gauge name =
    match Registry.find_gauge reg ("horse_sched_" ^ name) with
    | Some g -> Registry.Gauge.value g
    | None -> Alcotest.failf "gauge horse_sched_%s not registered" name
  in
  let counter name =
    match Registry.find_counter reg ("horse_sched_" ^ name) with
    | Some c -> Registry.Counter.value c
    | None -> Alcotest.failf "counter horse_sched_%s not registered" name
  in
  check (Alcotest.float 1e-9) "virtual FTI residency"
    (Time.to_sec stats.Sched.virtual_in_fti)
    (gauge "virtual_in_fti_seconds");
  check (Alcotest.float 1e-9) "virtual DES residency"
    (Time.to_sec stats.Sched.virtual_in_des)
    (gauge "virtual_in_des_seconds");
  check (Alcotest.float 1e-9) "wall FTI residency" stats.Sched.wall_in_fti
    (gauge "wall_in_fti_seconds");
  check (Alcotest.float 1e-9) "wall DES residency" stats.Sched.wall_in_des
    (gauge "wall_in_des_seconds");
  check (Alcotest.float 1e-9) "end time"
    (Time.to_sec stats.Sched.end_time)
    (gauge "end_time_seconds");
  check Alcotest.int "events" stats.Sched.events_executed (counter "events_total");
  check Alcotest.int "fti increments" stats.Sched.fti_increments
    (counter "fti_increments_total");
  check Alcotest.int "transitions"
    (List.length stats.Sched.transitions)
    (counter "transitions_total");
  (* snapshot mid-lifecycle equals the returned stats after the run *)
  let snap = Sched.snapshot sched in
  check Alcotest.int "snapshot events" stats.Sched.events_executed
    snap.Sched.events_executed

(* --- Trace ------------------------------------------------------------ *)

let test_trace () =
  let trace = Trace.create () in
  Trace.add trace ~at:(Time.of_ms 1) ~label:"bgp" "hello";
  Trace.addf trace ~at:(Time.of_ms 2) ~label:"cm" "msg %d" 42;
  check Alcotest.int "length" 2 (Trace.length trace);
  (match Trace.entries trace with
  | [ a; b ] ->
      check Alcotest.string "first" "hello" a.Trace.detail;
      check Alcotest.string "second formatted" "msg 42" b.Trace.detail
  | _ -> Alcotest.fail "expected two entries");
  check Alcotest.int "by_label" 1 (List.length (Trace.by_label trace "bgp"));
  Trace.clear trace;
  check Alcotest.int "cleared" 0 (Trace.length trace)

let test_trace_ring_buffer () =
  let trace = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.addf trace ~at:(Time.of_ms i) ~label:"x" "e%d" i
  done;
  check Alcotest.int "retained" 3 (Trace.length trace);
  check Alcotest.int "total added" 5 (Trace.total_added trace);
  check Alcotest.int "dropped oldest" 2 (Trace.dropped trace);
  check (Alcotest.option Alcotest.int) "capacity" (Some 3) (Trace.capacity trace);
  (match Trace.entries trace with
  | [ a; _; c ] ->
      check Alcotest.string "oldest survivor" "e3" a.Trace.detail;
      check Alcotest.string "newest" "e5" c.Trace.detail
  | l -> Alcotest.failf "expected 3 entries, got %d" (List.length l));
  Trace.clear trace;
  check Alcotest.int "clear resets dropped" 0 (Trace.dropped trace);
  (* Unbounded traces never drop. *)
  let unbounded = Trace.create () in
  check (Alcotest.option Alcotest.int) "no capacity" None
    (Trace.capacity unbounded);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let () =
  Alcotest.run "horse_engine"
    [
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          prop_rng_int_bounds;
          prop_rng_permutation_valid;
          prop_rng_derangement_no_fixpoint;
          prop_rng_float_bounds;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_order;
          Alcotest.test_case "fifo at same time" `Quick test_queue_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "pop_until" `Quick test_queue_pop_until;
          Alcotest.test_case "size after cancel" `Quick
            test_queue_size_after_cancel;
          Alcotest.test_case "compaction preserves order" `Quick
            test_queue_compaction_preserves_order;
          Alcotest.test_case "reschedule re-aims in place" `Quick
            test_queue_reschedule;
          prop_queue_sorted;
          prop_wheel_matches_heap;
        ] );
      ( "hybrid_sched",
        [
          Alcotest.test_case "DES jumps" `Quick test_des_jumps;
          Alcotest.test_case "FTI transition and return" `Quick
            test_fti_transition_and_return;
          Alcotest.test_case "activity refreshes quiet timer" `Quick
            test_activity_refreshes_quiet_timer;
          Alcotest.test_case "pollers only in FTI" `Quick test_pollers_only_in_fti;
          Alcotest.test_case "events during FTI" `Quick
            test_events_during_fti_execute;
          Alcotest.test_case "recurring + cancel" `Quick test_recurring_and_cancel;
          Alcotest.test_case "recurring cadence" `Quick
            test_recurring_cadence_no_drift;
          Alcotest.test_case "past schedule clamps" `Quick
            test_schedule_in_past_clamps;
          Alcotest.test_case "defer before clock advance" `Quick
            test_defer_runs_before_clock_advances;
          Alcotest.test_case "defer chains drain in instant" `Quick
            test_defer_chains_drain_in_instant;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "start in FTI" `Quick test_start_in_fti;
          Alcotest.test_case "FTI wall cost exceeds DES" `Slow
            test_fti_wall_cost_exceeds_des;
          Alcotest.test_case "fast-forward skips idle FTI" `Quick
            test_fast_forward_skips_idle_fti;
          Alcotest.test_case "fast-forward respects events and pollers" `Quick
            test_fast_forward_respects_events_and_pollers;
          Alcotest.test_case "re-run continues" `Quick test_rerun_continues;
          prop_sched_matches_reference;
          Alcotest.test_case "metrics agree with stats" `Quick
            test_sched_metrics_agree_with_stats;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace;
          Alcotest.test_case "ring buffer" `Quick test_trace_ring_buffer;
        ] );
    ]
