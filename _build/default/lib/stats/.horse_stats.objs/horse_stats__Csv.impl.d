lib/stats/csv.ml: Array Buffer Format Horse_engine List Printf Series String Time
