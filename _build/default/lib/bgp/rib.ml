open Horse_net
open Horse_engine

let local_peer = -1

type route = {
  prefix : Prefix.t;
  attrs : Msg.attrs;
  peer : int;
  peer_bgp_id : Ipv4.t;
  learned_at : Time.t;
}

let pp_route fmt r =
  Format.fprintf fmt "%a via peer %d (%a)" Prefix.pp r.prefix r.peer
    Msg.pp_attrs r.attrs

module Prefix_tbl = Hashtbl.Make (struct
  type t = Prefix.t

  let equal = Prefix.equal
  let hash p = Ipv4.hash (Prefix.network p) lxor Prefix.length p
end)

type t = {
  adj_in : (int, route Prefix_tbl.t) Hashtbl.t;  (* peer -> prefix -> route *)
  local : route Prefix_tbl.t;
  loc : route list Prefix_tbl.t;
}

let create () =
  { adj_in = Hashtbl.create 8; local = Prefix_tbl.create 16; loc = Prefix_tbl.create 64 }

let peer_table t peer =
  match Hashtbl.find_opt t.adj_in peer with
  | Some table -> table
  | None ->
      let table = Prefix_tbl.create 32 in
      Hashtbl.add t.adj_in peer table;
      table

let set_in t ~peer ~peer_bgp_id ~at prefix attrs =
  Prefix_tbl.replace (peer_table t peer) prefix
    { prefix; attrs; peer; peer_bgp_id; learned_at = at }

let withdraw_in t ~peer prefix =
  match Hashtbl.find_opt t.adj_in peer with
  | Some table -> Prefix_tbl.remove table prefix
  | None -> ()

let drop_peer t ~peer =
  match Hashtbl.find_opt t.adj_in peer with
  | None -> []
  | Some table ->
      let prefixes = Prefix_tbl.fold (fun p _ acc -> p :: acc) table [] in
      Hashtbl.remove t.adj_in peer;
      prefixes

let add_local t ~at prefix attrs =
  Prefix_tbl.replace t.local prefix
    { prefix; attrs; peer = local_peer; peer_bgp_id = Ipv4.any; learned_at = at }

let remove_local t prefix = Prefix_tbl.remove t.local prefix

(* --- decision process --------------------------------------------- *)

let local_pref (r : route) = Option.value r.attrs.Msg.local_pref ~default:100
let as_path_len (r : route) = List.length r.attrs.Msg.as_path
let med (r : route) = Option.value r.attrs.Msg.med ~default:0

let neighbor_as (r : route) =
  match r.attrs.Msg.as_path with [] -> None | asn :: _ -> Some asn

(* Lexicographic filter: keep the routes minimal/maximal under each
   criterion in turn. *)
let keep_best_by f routes =
  match routes with
  | [] | [ _ ] -> routes
  | _ ->
      let best = List.fold_left (fun acc r -> Stdlib.min acc (f r)) max_int routes in
      List.filter (fun r -> f r = best) routes

let candidates t prefix =
  let from_peers =
    Hashtbl.fold
      (fun _peer table acc ->
        match Prefix_tbl.find_opt table prefix with
        | Some r -> r :: acc
        | None -> acc)
      t.adj_in []
  in
  match Prefix_tbl.find_opt t.local prefix with
  | Some r -> r :: from_peers
  | None -> from_peers

let decide ~multipath t prefix =
  let survivors = candidates t prefix in
  (* Step 1: highest local-pref (minimise the negation). *)
  let survivors = keep_best_by (fun r -> -local_pref r) survivors in
  (* Step 2: shortest AS path. *)
  let survivors = keep_best_by as_path_len survivors in
  (* Step 3: lowest origin. *)
  let survivors = keep_best_by (fun r -> Msg.origin_to_int r.attrs.Msg.origin) survivors in
  (* Step 4: lowest MED among routes via the same neighbour AS. A
     route only loses here to a strictly-better route with the same
     first hop AS. *)
  let survivors =
    List.filter
      (fun r ->
        not
          (List.exists
             (fun r' ->
               neighbor_as r' = neighbor_as r && med r' < med r)
             survivors))
      survivors
  in
  let tiebreak a b =
    (* Steps 5-6: lowest BGP id, then lowest peer id. *)
    match Ipv4.compare a.peer_bgp_id b.peer_bgp_id with
    | 0 -> Int.compare a.peer b.peer
    | c -> c
  in
  let sorted = List.sort tiebreak survivors in
  if multipath then sorted
  else match sorted with [] -> [] | winner :: _ -> [ winner ]

type refresh_outcome = Unchanged | Changed of route list

let routes_equal a b =
  List.equal
    (fun (x : route) (y : route) ->
      x.peer = y.peer
      && Prefix.equal x.prefix y.prefix
      && Msg.attrs_equal x.attrs y.attrs)
    a b

let refresh ?(multipath = true) t prefix =
  let best = decide ~multipath t prefix in
  let old = Option.value (Prefix_tbl.find_opt t.loc prefix) ~default:[] in
  if routes_equal best old then Unchanged
  else begin
    (match best with
    | [] -> Prefix_tbl.remove t.loc prefix
    | _ :: _ -> Prefix_tbl.replace t.loc prefix best);
    Changed best
  end

let best t prefix = Option.value (Prefix_tbl.find_opt t.loc prefix) ~default:[]

let loc_rib t =
  Prefix_tbl.fold (fun p routes acc -> (p, routes) :: acc) t.loc []
  |> List.sort (fun (p, _) (q, _) -> Prefix.compare p q)

let loc_rib_size t = Prefix_tbl.length t.loc

let adj_in t ~peer =
  match Hashtbl.find_opt t.adj_in peer with
  | None -> []
  | Some table ->
      Prefix_tbl.fold (fun p r acc -> (p, r.attrs) :: acc) table []
      |> List.sort (fun (p, _) (q, _) -> Prefix.compare p q)
