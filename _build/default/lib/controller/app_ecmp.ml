open Horse_net
open Horse_topo
open Horse_openflow

type mode = Five_tuple | Src_dst

type t = {
  ctrl : Controller.t;
  env : Env.t;
  mode : mode;
  priority : int;
  idle_timeout_s : int;
  routed : Spf.path Flow_key.Table.t;
  mutable reroute_hooks : (Flow_key.t -> Spf.path -> unit) list;
  mutable reroutes : int;
}

let hash_of_mode = function
  | Five_tuple -> Flow_key.hash_5tuple
  | Src_dst -> Flow_key.hash_src_dst

let select_path mode key candidates =
  match candidates with
  | [] -> None
  | _ :: _ ->
      let hash = hash_of_mode mode key in
      Some (List.nth candidates (Flow_key.select ~hash (List.length candidates)))

let match_of_mode mode key =
  match mode with
  | Five_tuple -> Ofmatch.exact_5tuple key
  | Src_dst ->
      {
        Ofmatch.any with
        Ofmatch.m_eth_type = Some 0x0800;
        m_ip_src = Some (Prefix.host key.Flow_key.src);
        m_ip_dst = Some (Prefix.host key.Flow_key.dst);
      }

let handle_packet_in t sw (pi : Ofmsg.packet_in) =
  match Packet.decode pi.Ofmsg.data with
  | Error _ -> ()
  | Ok frame -> (
      match Flow_key.of_packet frame with
      | None -> ()
      | Some key -> (
          match
            ( Env.host_of_ip t.env key.Flow_key.src,
              Env.host_of_ip t.env key.Flow_key.dst )
          with
          | Some src, Some dst -> (
              let candidates = Env.ecmp_paths t.env ~src ~dst in
              match select_path t.mode key candidates with
              | None -> ()
              | Some path ->
                  Install.install_path t.ctrl t.env
                    ~match_:(match_of_mode t.mode key) ~priority:t.priority
                    ~idle_timeout_s:t.idle_timeout_s path;
                  Flow_key.Table.replace t.routed key path;
                  (* Release the held packet at its ingress switch. *)
                  let release_port =
                    match Install.first_hop_port t.env path with
                    | Some (dpid, port) when dpid = Controller.dpid sw ->
                        Some port
                    | Some _ | None -> None
                  in
                  (match release_port with
                  | Some port ->
                      Controller.send_packet_out t.ctrl sw
                        {
                          Ofmsg.po_in_port = pi.Ofmsg.in_port;
                          po_actions = [ Action.Output port ];
                          po_data = pi.Ofmsg.data;
                        }
                  | None -> ()))
          | None, _ | _, None -> ()))

(* PORT_STATUS: recompute every routed flow whose path crossed the
   affected (dpid, port), now that the Env excludes (or restores) the
   link. *)
let handle_port_status t sw (ps : Ofmsg.port_status) =
  match Env.node_of_dpid t.env (Controller.dpid sw) with
  | None -> ()
  | Some node -> (
      match
        List.find_opt
          (fun (l : Topology.link) ->
            Env.port_of_link t.env l.Topology.link_id = Some ps.Ofmsg.pst_port)
          (Topology.out_links (Env.topo t.env) node)
      with
      | None -> ()
      | Some link ->
          Env.set_link_usable t.env link.Topology.link_id
            (ps.Ofmsg.pst_reason <> 1);
          let affected =
            Flow_key.Table.fold
              (fun key path acc ->
                let crosses =
                  List.exists
                    (fun (l : Topology.link) ->
                      l.Topology.link_id = link.Topology.link_id)
                    path
                in
                if crosses then key :: acc else acc)
              t.routed []
          in
          List.iter
            (fun key ->
              match
                ( Env.host_of_ip t.env key.Flow_key.src,
                  Env.host_of_ip t.env key.Flow_key.dst )
              with
              | Some src, Some dst -> (
                  let candidates = Env.ecmp_paths t.env ~src ~dst in
                  match select_path t.mode key candidates with
                  | None -> ()
                  | Some path ->
                      Install.install_path t.ctrl t.env
                        ~match_:(match_of_mode t.mode key) ~priority:t.priority
                        ~idle_timeout_s:t.idle_timeout_s path;
                      Flow_key.Table.replace t.routed key path;
                      t.reroutes <- t.reroutes + 1;
                      List.iter (fun f -> f key path) t.reroute_hooks)
              | None, _ | _, None -> ())
            affected)

let install ?(mode = Five_tuple) ?(priority = 10) ?(idle_timeout_s = 0) ctrl env =
  let t =
    {
      ctrl;
      env;
      mode;
      priority;
      idle_timeout_s;
      routed = Flow_key.Table.create 64;
      reroute_hooks = [];
      reroutes = 0;
    }
  in
  Controller.on_packet_in ctrl (fun sw pi -> handle_packet_in t sw pi);
  Controller.on_port_status ctrl (fun sw ps -> handle_port_status t sw ps);
  t

let flows_routed t = Flow_key.Table.length t.routed
let reroutes t = t.reroutes
let on_reroute t f = t.reroute_hooks <- t.reroute_hooks @ [ f ]
let path_of t key = Flow_key.Table.find_opt t.routed key

let routed_flows t =
  Flow_key.Table.fold (fun key path acc -> (key, path) :: acc) t.routed []
