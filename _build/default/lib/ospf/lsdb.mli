(** The link-state database and the intra-area SPF computation.

    One Router-LSA per router id, newest sequence number wins. Route
    computation follows RFC 2328 §16.1 for a pure point-to-point
    topology: Dijkstra over the adjacency graph — an edge is used only
    if {e both} endpoints advertise it (the two-way check) — then stub
    prefixes are attached to their routers. Equal-cost first hops are
    preserved as ECMP sets. *)

open Horse_net

type t

val create : unit -> t

type install_outcome =
  | Newer  (** installed; the LSA must be flooded on *)
  | Duplicate  (** same sequence already present; acknowledge only *)
  | Older  (** stale; ignore *)

val install : t -> Ospf_msg.lsa -> install_outcome

val lookup : t -> Ipv4.t -> Ospf_msg.lsa option
val lsas : t -> Ospf_msg.lsa list
(** Sorted by router id. *)

val size : t -> int
val remove : t -> Ipv4.t -> unit

type route = {
  prefix : Prefix.t;
  cost : int;
  next_hops : Ipv4.t list;  (** router ids of equal-cost first hops *)
}

val routes : t -> self:Ipv4.t -> route list
(** Shortest routes from [self] to every stub prefix in the database
    (excluding prefixes [self] originates itself), sorted by prefix.
    First hops are neighbour router ids; the daemon maps them to
    interfaces. *)
