open Horse_net.Wire

type flow_mod_command = Add | Modify | Delete

type flow_mod = {
  match_ : Ofmatch.t;
  cookie : int;
  command : flow_mod_command;
  idle_timeout_s : int;
  hard_timeout_s : int;
  priority : int;
  actions : Action.t list;
}

type packet_in = {
  buffer_id : int;
  total_len : int;
  in_port : int;
  reason : int;
  data : Bytes.t;
}

type packet_out = { po_in_port : int; po_actions : Action.t list; po_data : Bytes.t }

type flow_stats = {
  fs_match : Ofmatch.t;
  fs_priority : int;
  fs_cookie : int;
  fs_packets : int;
  fs_bytes : int;
  fs_duration_s : int;
  fs_actions : Action.t list;
}

type port_stats = {
  ps_port : int;
  ps_rx_packets : int;
  ps_tx_packets : int;
  ps_rx_bytes : int;
  ps_tx_bytes : int;
}

type stats_request = Flow_stats_req of Ofmatch.t | Port_stats_req of int

type stats_reply = Flow_stats_rep of flow_stats list | Port_stats_rep of port_stats list

type port_status = { pst_reason : int; pst_port : int }

type t =
  | Hello
  | Echo_request
  | Echo_reply
  | Features_request
  | Features_reply of { dpid : int; n_ports : int }
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Port_status of port_status
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Barrier_request
  | Barrier_reply

let header_size = 8

let set_u64 buf off v =
  set_u32_int buf off (v lsr 32);
  set_u32_int buf (off + 4) (v land 0xFFFFFFFF)

let u64 buf off =
  let* hi = u32_int buf off in
  let* lo = u32_int buf (off + 4) in
  Ok ((hi lsl 32) lor lo)

let type_code = function
  | Hello -> 0
  | Echo_request -> 2
  | Echo_reply -> 3
  | Features_request -> 5
  | Features_reply _ -> 6
  | Packet_in _ -> 10
  | Packet_out _ -> 13
  | Flow_mod _ -> 14
  | Port_status _ -> 12
  | Stats_request _ -> 16
  | Stats_reply _ -> 17
  | Barrier_request -> 18
  | Barrier_reply -> 19

let command_code = function Add -> 0 | Modify -> 1 | Delete -> 3

let command_of_code = function
  | 0 -> Ok Add
  | 1 -> Ok Modify
  | 3 -> Ok Delete
  | n -> Error (Printf.sprintf "openflow: flow_mod command %d unsupported" n)

let flow_stats_entry_size fs = 2 + 1 + 1 + Ofmatch.size + 20 + 8 + 8 + 8 + Action.list_size fs.fs_actions

let body_size = function
  | Hello | Echo_request | Echo_reply | Features_request | Barrier_request
  | Barrier_reply ->
      0
  | Features_reply _ -> 8 + 4 + 4 (* dpid, n_buffers, n_ports *)
  | Port_status _ -> 1 + 7 + 2 (* reason, pad, port *)
  | Packet_in pi -> 4 + 2 + 2 + 1 + 1 + Bytes.length pi.data
  | Packet_out po -> 4 + 2 + 2 + Action.list_size po.po_actions + Bytes.length po.po_data
  | Flow_mod fm -> Ofmatch.size + 8 + 2 + 2 + 2 + 2 + 4 + 2 + 2 + Action.list_size fm.actions
  | Stats_request (Flow_stats_req _) -> 4 + Ofmatch.size + 4
  | Stats_request (Port_stats_req _) -> 4 + 8
  | Stats_reply (Flow_stats_rep entries) ->
      4 + List.fold_left (fun acc e -> acc + flow_stats_entry_size e) 0 entries
  | Stats_reply (Port_stats_rep entries) -> 4 + (40 * List.length entries)

let encode ?(xid = 0) t =
  let len = header_size + body_size t in
  let buf = Bytes.make len '\000' in
  set_u8 buf 0 0x01 (* version *);
  set_u8 buf 1 (type_code t);
  set_u16 buf 2 len;
  set_u32_int buf 4 xid;
  let off = header_size in
  (match t with
  | Hello | Echo_request | Echo_reply | Features_request | Barrier_request
  | Barrier_reply ->
      ()
  | Features_reply { dpid; n_ports } ->
      set_u64 buf off dpid;
      set_u32_int buf (off + 8) 0 (* n_buffers *);
      set_u32_int buf (off + 12) n_ports
  | Port_status ps ->
      set_u8 buf off ps.pst_reason;
      set_u16 buf (off + 8) ps.pst_port
  | Packet_in pi ->
      set_u32_int buf off pi.buffer_id;
      set_u16 buf (off + 4) pi.total_len;
      set_u16 buf (off + 6) pi.in_port;
      set_u8 buf (off + 8) pi.reason;
      Bytes.blit pi.data 0 buf (off + 10) (Bytes.length pi.data)
  | Packet_out po ->
      set_u32_int buf off 0xFFFFFFFF (* buffer_id: none *);
      set_u16 buf (off + 4) po.po_in_port;
      set_u16 buf (off + 6) (Action.list_size po.po_actions);
      let o = Action.write_list buf (off + 8) po.po_actions in
      Bytes.blit po.po_data 0 buf o (Bytes.length po.po_data)
  | Flow_mod fm ->
      Ofmatch.write buf off fm.match_;
      let o = off + Ofmatch.size in
      set_u64 buf o fm.cookie;
      set_u16 buf (o + 8) (command_code fm.command);
      set_u16 buf (o + 10) fm.idle_timeout_s;
      set_u16 buf (o + 12) fm.hard_timeout_s;
      set_u16 buf (o + 14) fm.priority;
      set_u32_int buf (o + 16) 0xFFFFFFFF (* buffer_id *);
      set_u16 buf (o + 20) 0xFFFF (* out_port: any *);
      set_u16 buf (o + 22) 0 (* flags *);
      ignore (Action.write_list buf (o + 24) fm.actions)
  | Stats_request (Flow_stats_req m) ->
      set_u16 buf off 1 (* OFPST_FLOW *);
      set_u16 buf (off + 2) 0;
      Ofmatch.write buf (off + 4) m;
      set_u8 buf (off + 4 + Ofmatch.size) 0xFF (* table: all *);
      set_u16 buf (off + 4 + Ofmatch.size + 2) 0xFFFF (* out_port *)
  | Stats_request (Port_stats_req port) ->
      set_u16 buf off 4 (* OFPST_PORT *);
      set_u16 buf (off + 2) 0;
      set_u16 buf (off + 4) port
  | Stats_reply (Flow_stats_rep entries) ->
      set_u16 buf off 1;
      set_u16 buf (off + 2) 0;
      let o = ref (off + 4) in
      List.iter
        (fun e ->
          let entry_len = flow_stats_entry_size e in
          set_u16 buf !o entry_len;
          set_u8 buf (!o + 2) 0 (* table *);
          Ofmatch.write buf (!o + 4) e.fs_match;
          let p = !o + 4 + Ofmatch.size in
          set_u32_int buf p e.fs_duration_s;
          set_u32_int buf (p + 4) 0 (* nsec *);
          set_u16 buf (p + 8) e.fs_priority;
          set_u16 buf (p + 10) 0 (* idle *);
          set_u16 buf (p + 12) 0 (* hard *);
          (* 6 pad bytes already zero *)
          set_u64 buf (p + 20) e.fs_cookie;
          set_u64 buf (p + 28) e.fs_packets;
          set_u64 buf (p + 36) e.fs_bytes;
          ignore (Action.write_list buf (p + 44) e.fs_actions);
          o := !o + entry_len)
        entries
  | Stats_reply (Port_stats_rep entries) ->
      set_u16 buf off 4;
      set_u16 buf (off + 2) 0;
      let o = ref (off + 4) in
      List.iter
        (fun e ->
          set_u16 buf !o e.ps_port;
          set_u64 buf (!o + 8) e.ps_rx_packets;
          set_u64 buf (!o + 16) e.ps_tx_packets;
          set_u64 buf (!o + 24) e.ps_rx_bytes;
          set_u64 buf (!o + 32) e.ps_tx_bytes;
          o := !o + 40)
        entries);
  buf

let decode buf =
  let* version = u8 buf 0 in
  if version <> 0x01 then Error (Printf.sprintf "openflow: version 0x%02x" version)
  else
    let* type_ = u8 buf 1 in
    let* len = u16 buf 2 in
    if len <> Bytes.length buf then Error "openflow: length field mismatch"
    else
      let* xid = u32_int buf 4 in
      let off = header_size in
      let* msg =
        match type_ with
        | 0 -> Ok Hello
        | 2 -> Ok Echo_request
        | 3 -> Ok Echo_reply
        | 5 -> Ok Features_request
        | 18 -> Ok Barrier_request
        | 19 -> Ok Barrier_reply
        | 6 ->
            let* dpid = u64 buf off in
            let* n_ports = u32_int buf (off + 12) in
            Ok (Features_reply { dpid; n_ports })
        | 12 ->
            let* pst_reason = u8 buf off in
            let* pst_port = u16 buf (off + 8) in
            Ok (Port_status { pst_reason; pst_port })
        | 10 ->
            let* buffer_id = u32_int buf off in
            let* total_len = u16 buf (off + 4) in
            let* in_port = u16 buf (off + 6) in
            let* reason = u8 buf (off + 8) in
            let* data = bytes (len - off - 10) buf (off + 10) in
            Ok (Packet_in { buffer_id; total_len; in_port; reason; data })
        | 13 ->
            let* po_in_port = u16 buf (off + 4) in
            let* actions_len = u16 buf (off + 6) in
            let* po_actions =
              Action.read_list buf (off + 8) ~limit:(off + 8 + actions_len)
            in
            let data_off = off + 8 + actions_len in
            let* po_data = bytes (len - data_off) buf data_off in
            Ok (Packet_out { po_in_port; po_actions; po_data })
        | 14 ->
            let* match_ = Ofmatch.read buf off in
            let o = off + Ofmatch.size in
            let* cookie = u64 buf o in
            let* cmd = u16 buf (o + 8) in
            let* command = command_of_code cmd in
            let* idle_timeout_s = u16 buf (o + 10) in
            let* hard_timeout_s = u16 buf (o + 12) in
            let* priority = u16 buf (o + 14) in
            let* actions = Action.read_list buf (o + 24) ~limit:len in
            Ok
              (Flow_mod
                 {
                   match_;
                   cookie;
                   command;
                   idle_timeout_s;
                   hard_timeout_s;
                   priority;
                   actions;
                 })
        | 16 -> (
            let* stype = u16 buf off in
            match stype with
            | 1 ->
                let* m = Ofmatch.read buf (off + 4) in
                Ok (Stats_request (Flow_stats_req m))
            | 4 ->
                let* port = u16 buf (off + 4) in
                Ok (Stats_request (Port_stats_req port))
            | n -> Error (Printf.sprintf "openflow: stats type %d unsupported" n))
        | 17 -> (
            let* stype = u16 buf off in
            match stype with
            | 1 ->
                let rec go o acc =
                  if o > len then Error "openflow: flow stats overrun"
                  else if o = len then Ok (List.rev acc)
                  else
                    let* entry_len = u16 buf o in
                    if entry_len < 44 + Ofmatch.size + 4 then
                      Error "openflow: flow stats entry too short"
                    else
                      let* fs_match = Ofmatch.read buf (o + 4) in
                      let p = o + 4 + Ofmatch.size in
                      let* fs_duration_s = u32_int buf p in
                      let* fs_priority = u16 buf (p + 8) in
                      let* fs_cookie = u64 buf (p + 20) in
                      let* fs_packets = u64 buf (p + 28) in
                      let* fs_bytes = u64 buf (p + 36) in
                      let* fs_actions =
                        Action.read_list buf (p + 44) ~limit:(o + entry_len)
                      in
                      go (o + entry_len)
                        ({
                           fs_match;
                           fs_priority;
                           fs_cookie;
                           fs_packets;
                           fs_bytes;
                           fs_duration_s;
                           fs_actions;
                         }
                        :: acc)
                in
                let* entries = go (off + 4) [] in
                Ok (Stats_reply (Flow_stats_rep entries))
            | 4 ->
                let rec go o acc =
                  if o > len then Error "openflow: port stats overrun"
                  else if o = len then Ok (List.rev acc)
                  else
                    let* ps_port = u16 buf o in
                    let* ps_rx_packets = u64 buf (o + 8) in
                    let* ps_tx_packets = u64 buf (o + 16) in
                    let* ps_rx_bytes = u64 buf (o + 24) in
                    let* ps_tx_bytes = u64 buf (o + 32) in
                    go (o + 40)
                      ({ ps_port; ps_rx_packets; ps_tx_packets; ps_rx_bytes; ps_tx_bytes }
                      :: acc)
                in
                let* entries = go (off + 4) [] in
                Ok (Stats_reply (Port_stats_rep entries))
            | n -> Error (Printf.sprintf "openflow: stats type %d unsupported" n))
        | n -> Error (Printf.sprintf "openflow: message type %d unsupported" n)
      in
      Ok (msg, xid)

let flow_stats_equal a b =
  Ofmatch.equal a.fs_match b.fs_match
  && a.fs_priority = b.fs_priority && a.fs_cookie = b.fs_cookie
  && a.fs_packets = b.fs_packets && a.fs_bytes = b.fs_bytes
  && a.fs_duration_s = b.fs_duration_s
  && List.equal Action.equal a.fs_actions b.fs_actions

let equal a b =
  match (a, b) with
  | Hello, Hello
  | Echo_request, Echo_request
  | Echo_reply, Echo_reply
  | Features_request, Features_request
  | Barrier_request, Barrier_request
  | Barrier_reply, Barrier_reply ->
      true
  | Features_reply x, Features_reply y ->
      x.dpid = y.dpid && x.n_ports = y.n_ports
  | Packet_in x, Packet_in y ->
      x.buffer_id = y.buffer_id && x.total_len = y.total_len
      && x.in_port = y.in_port && x.reason = y.reason
      && Bytes.equal x.data y.data
  | Packet_out x, Packet_out y ->
      x.po_in_port = y.po_in_port
      && List.equal Action.equal x.po_actions y.po_actions
      && Bytes.equal x.po_data y.po_data
  | Flow_mod x, Flow_mod y ->
      Ofmatch.equal x.match_ y.match_
      && x.cookie = y.cookie && x.command = y.command
      && x.idle_timeout_s = y.idle_timeout_s
      && x.hard_timeout_s = y.hard_timeout_s
      && x.priority = y.priority
      && List.equal Action.equal x.actions y.actions
  | Stats_request (Flow_stats_req x), Stats_request (Flow_stats_req y) ->
      Ofmatch.equal x y
  | Stats_request (Port_stats_req x), Stats_request (Port_stats_req y) -> x = y
  | Stats_reply (Flow_stats_rep x), Stats_reply (Flow_stats_rep y) ->
      List.equal flow_stats_equal x y
  | Stats_reply (Port_stats_rep x), Stats_reply (Port_stats_rep y) ->
      List.equal ( = ) x y
  | Port_status x, Port_status y ->
      x.pst_reason = y.pst_reason && x.pst_port = y.pst_port
  | ( ( Hello | Echo_request | Echo_reply | Features_request | Features_reply _
      | Packet_in _ | Packet_out _ | Flow_mod _ | Port_status _
      | Stats_request _ | Stats_reply _ | Barrier_request | Barrier_reply ),
      _ ) ->
      false

let pp fmt = function
  | Hello -> Format.pp_print_string fmt "HELLO"
  | Echo_request -> Format.pp_print_string fmt "ECHO_REQUEST"
  | Echo_reply -> Format.pp_print_string fmt "ECHO_REPLY"
  | Features_request -> Format.pp_print_string fmt "FEATURES_REQUEST"
  | Features_reply { dpid; n_ports } ->
      Format.fprintf fmt "FEATURES_REPLY dpid=%d ports=%d" dpid n_ports
  | Packet_in pi ->
      Format.fprintf fmt "PACKET_IN in_port=%d len=%d" pi.in_port
        (Bytes.length pi.data)
  | Packet_out po ->
      Format.fprintf fmt "PACKET_OUT in_port=%d actions=[%a]" po.po_in_port
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           Action.pp)
        po.po_actions
  | Flow_mod fm ->
      Format.fprintf fmt "FLOW_MOD %s prio=%d %a actions=[%a]"
        (match fm.command with Add -> "add" | Modify -> "mod" | Delete -> "del")
        fm.priority Ofmatch.pp fm.match_
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           Action.pp)
        fm.actions
  | Stats_request (Flow_stats_req _) -> Format.pp_print_string fmt "STATS_REQUEST flow"
  | Stats_request (Port_stats_req p) ->
      Format.fprintf fmt "STATS_REQUEST port=%d" p
  | Stats_reply (Flow_stats_rep entries) ->
      Format.fprintf fmt "STATS_REPLY flow n=%d" (List.length entries)
  | Stats_reply (Port_stats_rep entries) ->
      Format.fprintf fmt "STATS_REPLY port n=%d" (List.length entries)
  | Port_status ps ->
      Format.fprintf fmt "PORT_STATUS port=%d %s" ps.pst_port
        (match ps.pst_reason with 0 -> "up" | 1 -> "down" | _ -> "modified")
  | Barrier_request -> Format.pp_print_string fmt "BARRIER_REQUEST"
  | Barrier_reply -> Format.pp_print_string fmt "BARRIER_REPLY"
