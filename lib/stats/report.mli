(** The human run report over a telemetry registry.

    Renders, in order: counters as a horizontal bar chart (scaled to
    the busiest counter), gauges as an aligned table, each histogram
    through {!Histogram.pp}, and the span tree indented by depth with
    both virtual and wall durations. This is what [horse ... --report]
    prints after a run. *)

val pp : Format.formatter -> Horse_telemetry.Registry.t -> unit
