lib/topo/spf.ml: Array Int List Topology
