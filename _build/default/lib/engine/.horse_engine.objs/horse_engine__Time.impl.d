lib/engine/time.ml: Format Int64 Stdlib
