lib/ospf/ospf_msg.ml: Bytes Checksum Format Horse_net Int32 Ipv4 List Prefix Printf Wire
