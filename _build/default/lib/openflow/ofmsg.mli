(** OpenFlow 1.0-style protocol messages and their binary codec.

    Structure follows the OpenFlow 1.0 wire protocol (8-byte header
    with version 0x01, the 40-byte [ofp_match], 8-byte output
    actions). Two documented simplifications: FEATURES_REPLY carries a
    port {e count} instead of the full 48-byte port descriptors, and
    PORT_STATS entries carry the four main counters only. *)

type flow_mod_command = Add | Modify | Delete

type flow_mod = {
  match_ : Ofmatch.t;
  cookie : int;
  command : flow_mod_command;
  idle_timeout_s : int;  (** 0 = no idle expiry *)
  hard_timeout_s : int;  (** 0 = no hard expiry *)
  priority : int;
  actions : Action.t list;
}

type packet_in = {
  buffer_id : int;
  total_len : int;
  in_port : int;
  reason : int;  (** 0 = no match, 1 = action *)
  data : Bytes.t;
}

type packet_out = { po_in_port : int; po_actions : Action.t list; po_data : Bytes.t }

type flow_stats = {
  fs_match : Ofmatch.t;
  fs_priority : int;
  fs_cookie : int;
  fs_packets : int;
  fs_bytes : int;
  fs_duration_s : int;
  fs_actions : Action.t list;
}

type port_stats = {
  ps_port : int;
  ps_rx_packets : int;
  ps_tx_packets : int;
  ps_rx_bytes : int;
  ps_tx_bytes : int;
}

type stats_request = Flow_stats_req of Ofmatch.t | Port_stats_req of int
(** Port number, or 0xFFFF for all ports. *)

type stats_reply = Flow_stats_rep of flow_stats list | Port_stats_rep of port_stats list

type port_status = {
  pst_reason : int;  (** 0 = add (up), 1 = delete (down), 2 = modify *)
  pst_port : int;
}

type t =
  | Hello
  | Echo_request
  | Echo_reply
  | Features_request
  | Features_reply of { dpid : int; n_ports : int }
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Port_status of port_status
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Barrier_request
  | Barrier_reply

val encode : ?xid:int -> t -> Bytes.t
val decode : Bytes.t -> (t * int, string) result
(** Returns the message and its transaction id. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
