lib/emulation/channel.mli: Bytes Horse_engine Sched Time
