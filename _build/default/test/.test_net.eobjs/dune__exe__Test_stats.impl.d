test/test_stats.ml: Alcotest Ascii Csv Float Format Histogram Horse_engine Horse_stats List QCheck2 QCheck_alcotest Series String Summary Time
