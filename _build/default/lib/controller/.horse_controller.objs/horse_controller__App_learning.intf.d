lib/controller/app_learning.mli: Controller Horse_net Mac
