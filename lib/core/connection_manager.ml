open Horse_engine
open Horse_emulation
module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge

type t = {
  sched : Sched.t;
  cm_trace : Trace.t;
  m_channels : Counter.t;
  m_messages : Counter.t;
  m_bytes : Counter.t;
  g_last_activity : Gauge.t;
  mutable last_activity : Time.t;
}

let create sched trace =
  let reg = Sched.registry sched in
  let counter = Registry.counter reg ~subsystem:"cm" in
  {
    sched;
    cm_trace = trace;
    m_channels =
      counter ~help:"Control channels created" "channels_created_total";
    m_messages =
      counter ~help:"Control-plane messages observed" "messages_total";
    m_bytes = counter ~help:"Control-plane bytes observed" "bytes_total";
    g_last_activity =
      Registry.gauge reg ~subsystem:"cm"
        ~help:"Virtual time of the last observed control message, seconds"
        "last_activity_seconds";
    last_activity = Time.zero;
  }

let scheduler t = t.sched
let trace t = t.cm_trace

let control_channel ?latency ?(name = "control") ?owner_a ?owner_b t =
  let channel = Channel.create t.sched ?latency () in
  Counter.incr t.m_channels;
  Trace.addf t.cm_trace ~at:(Sched.now t.sched) ~label:"cm"
    "channel %d created (%s)" (Counter.value t.m_channels) name;
  Channel.set_observer channel (fun _dir msg ->
      Counter.incr t.m_messages;
      Counter.add t.m_bytes (Bytes.length msg);
      t.last_activity <- Sched.now t.sched;
      Gauge.set t.g_last_activity (Time.to_sec t.last_activity);
      Sched.control_activity ~reason:name t.sched);
  (* The CM sits between emulation and simulation, so it is also the
     component that wires demand into the scheduler's fast path:
     delivery on either side wakes the owning process's dozing
     pollers. *)
  let ep_a, ep_b = Channel.endpoints channel in
  (match owner_a with
  | Some p -> Channel.set_wake ep_a (fun () -> Process.wake p)
  | None -> ());
  (match owner_b with
  | Some p -> Channel.set_wake ep_b (fun () -> Process.wake p)
  | None -> ());
  channel

(* One side of a split channel, wired to one shard's CM: counters,
   observer, control activity and wake all on that shard. Must run on
   the domain owning the endpoint's side — the sharded fabric calls it
   for the local side directly and ships the remote side's call
   through a barrier mailbox. *)
let wire_endpoint ?(name = "control") ?owner t ep =
  Counter.incr t.m_channels;
  Trace.addf t.cm_trace ~at:(Sched.now t.sched) ~label:"cm"
    "channel %d created (%s, cross-shard)" (Counter.value t.m_channels) name;
  Channel.set_endpoint_observer ep (fun _dir msg ->
      Counter.incr t.m_messages;
      Counter.add t.m_bytes (Bytes.length msg);
      t.last_activity <- Sched.now t.sched;
      Gauge.set t.g_last_activity (Time.to_sec t.last_activity);
      Sched.control_activity ~reason:name t.sched);
  match owner with
  | Some p -> Channel.set_wake ep (fun () -> Process.wake p)
  | None -> ()

(* The cross-shard variant of [control_channel]: each side has its own
   CM (the owning shard's), which observes only the traffic sent from
   that side. The two CMs' counters therefore partition the channel's
   traffic, and merging shard registries recovers the totals a single
   CM would have seen. Setup-time only (single-threaded): it wires
   both sides at once. *)
let cross_channel ?latency ?(name = "control") ~cm_a ~cm_b ~post_to_b
    ~post_to_a ?owner_a ?owner_b () =
  let channel =
    Channel.create_split ~sched_a:cm_a.sched ~sched_b:cm_b.sched ~post_to_b
      ~post_to_a ?latency ()
  in
  let ep_a, ep_b = Channel.endpoints channel in
  wire_endpoint ~name ?owner:owner_a cm_a ep_a;
  wire_endpoint ~name ?owner:owner_b cm_b ep_b;
  channel

let channels_created t = Counter.value t.m_channels
let messages_observed t = Counter.value t.m_messages
let bytes_observed t = Counter.value t.m_bytes
let quiet_since t = t.last_activity
