(* Tests for horse_ospf: packet codec, LSDB/SPF, live daemons, and
   the OSPF fabric end-to-end. *)

open Horse_net
open Horse_engine
open Horse_emulation
open Horse_topo
open Horse_ospf
open Horse_core

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ip = Ipv4.of_string_exn
let p = Prefix.of_string_exn

(* --- codec --------------------------------------------------------------- *)

let gen_router_id = QCheck2.Gen.map Ipv4.of_int32 QCheck2.Gen.int32

let gen_lsa =
  let open QCheck2.Gen in
  let* adv_router = gen_router_id in
  let* seq = int_range 1 1_000_000 in
  let* links =
    list_size (int_range 0 6)
      (oneof
         [
           (let* neighbor = gen_router_id in
            let* metric = int_range 1 100 in
            return (Ospf_msg.Point_to_point { neighbor; metric }));
           (let* a = int32 in
            let* len = int_range 0 32 in
            let* metric = int_range 0 100 in
            return
              (Ospf_msg.Stub { prefix = Prefix.make (Ipv4.of_int32 a) len; metric }));
         ])
  in
  return { Ospf_msg.adv_router; seq; links }

let gen_msg =
  let open QCheck2.Gen in
  oneof
    [
      (let* hello_interval_s = int_range 1 60 in
       let* dead_interval_s = int_range 4 240 in
       let* neighbors = list_size (int_range 0 4) gen_router_id in
       return (Ospf_msg.Hello { hello_interval_s; dead_interval_s; neighbors }));
      (let* lsas = list_size (int_range 0 4) gen_lsa in
       return (Ospf_msg.Ls_update lsas));
      (let* acks =
         list_size (int_range 0 6) (pair gen_router_id (int_range 1 100000))
       in
       return (Ospf_msg.Ls_ack acks));
    ]

let prop_codec_roundtrip =
  qtest ~count:400 "ospf msg: encode/decode roundtrip"
    (QCheck2.Gen.pair gen_router_id gen_msg) (fun (rid, m) ->
      match Ospf_msg.decode (Ospf_msg.encode ~router_id:rid m) with
      | Ok (rid', m') -> Ipv4.equal rid rid' && Ospf_msg.equal m m'
      | Error _ -> false)

let prop_decode_total =
  qtest ~count:500 "ospf msg: decoder never raises on arbitrary bytes"
    QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 120)))
    (fun junk -> match Ospf_msg.decode junk with Ok _ | Error _ -> true)

let prop_decode_total_mutated =
  qtest ~count:300 "ospf msg: decoder never raises on mutated packets"
    (QCheck2.Gen.triple (QCheck2.Gen.pair gen_router_id gen_msg)
       (QCheck2.Gen.int_bound 300) (QCheck2.Gen.int_bound 255))
    (fun ((rid, m), pos, v) ->
      let buf = Ospf_msg.encode ~router_id:rid m in
      if Bytes.length buf > 0 then
        Bytes.set_uint8 buf (pos mod Bytes.length buf) v;
      match Ospf_msg.decode buf with Ok _ | Error _ -> true)

let test_codec_corruption () =
  let buf =
    Ospf_msg.encode ~router_id:(ip "1.1.1.1")
      (Ospf_msg.Hello
         { hello_interval_s = 10; dead_interval_s = 40; neighbors = [] })
  in
  Bytes.set_uint8 buf 20 (Bytes.get_uint8 buf 20 lxor 1);
  match Ospf_msg.decode buf with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted OSPF packet accepted"

(* --- LSDB / SPF ------------------------------------------------------------ *)

let lsa adv seq links = { Ospf_msg.adv_router = ip adv; seq; links }
let p2p n m = Ospf_msg.Point_to_point { neighbor = ip n; metric = m }
let stub s m = Ospf_msg.Stub { prefix = p s; metric = m }

let test_lsdb_install_order () =
  let db = Lsdb.create () in
  check Alcotest.bool "fresh" true (Lsdb.install db (lsa "1.1.1.1" 2 []) = Lsdb.Newer);
  check Alcotest.bool "same seq" true
    (Lsdb.install db (lsa "1.1.1.1" 2 []) = Lsdb.Duplicate);
  check Alcotest.bool "older" true
    (Lsdb.install db (lsa "1.1.1.1" 1 []) = Lsdb.Older);
  check Alcotest.bool "newer" true
    (Lsdb.install db (lsa "1.1.1.1" 3 [ stub "9.9.0.0/16" 1 ]) = Lsdb.Newer);
  check Alcotest.int "one lsa" 1 (Lsdb.size db);
  match Lsdb.lookup db (ip "1.1.1.1") with
  | Some l -> check Alcotest.int "latest kept" 3 l.Ospf_msg.seq
  | None -> Alcotest.fail "missing"

(* Triangle with unequal metrics: A-B (1), B-C (1), A-C (5).
   From A: C is cheaper via B (cost 2 + stub). *)
let triangle_db () =
  let db = Lsdb.create () in
  ignore (Lsdb.install db (lsa "1.1.1.1" 1 [ p2p "2.2.2.2" 1; p2p "3.3.3.3" 5 ]));
  ignore (Lsdb.install db (lsa "2.2.2.2" 1 [ p2p "1.1.1.1" 1; p2p "3.3.3.3" 1 ]));
  ignore
    (Lsdb.install db
       (lsa "3.3.3.3" 1
          [ p2p "1.1.1.1" 5; p2p "2.2.2.2" 1; stub "30.0.0.0/8" 0 ]));
  db

let test_spf_metrics () =
  let db = triangle_db () in
  match Lsdb.routes db ~self:(ip "1.1.1.1") with
  | [ r ] ->
      check Alcotest.bool "prefix" true (Prefix.equal r.Lsdb.prefix (p "30.0.0.0/8"));
      check Alcotest.int "cost via B" 2 r.Lsdb.cost;
      check
        (Alcotest.list Alcotest.string)
        "next hop is B"
        [ "2.2.2.2" ]
        (List.map Ipv4.to_string r.Lsdb.next_hops)
  | routes -> Alcotest.failf "expected 1 route, got %d" (List.length routes)

let test_spf_two_way_check () =
  (* B advertises the link to C but C does not advertise back: the
     edge must not be used. *)
  let db = Lsdb.create () in
  ignore (Lsdb.install db (lsa "1.1.1.1" 1 [ p2p "2.2.2.2" 1 ]));
  ignore (Lsdb.install db (lsa "2.2.2.2" 1 [ p2p "1.1.1.1" 1; p2p "3.3.3.3" 1 ]));
  ignore (Lsdb.install db (lsa "3.3.3.3" 1 [ stub "30.0.0.0/8" 0 ]));
  check Alcotest.int "no route across a one-way link" 0
    (List.length (Lsdb.routes db ~self:(ip "1.1.1.1")))

let test_spf_ecmp () =
  (* Square: A-B-D and A-C-D with equal metrics; D's stub must get
     two next hops at A. *)
  let db = Lsdb.create () in
  ignore (Lsdb.install db (lsa "1.1.1.1" 1 [ p2p "2.2.2.2" 1; p2p "3.3.3.3" 1 ]));
  ignore (Lsdb.install db (lsa "2.2.2.2" 1 [ p2p "1.1.1.1" 1; p2p "4.4.4.4" 1 ]));
  ignore (Lsdb.install db (lsa "3.3.3.3" 1 [ p2p "1.1.1.1" 1; p2p "4.4.4.4" 1 ]));
  ignore
    (Lsdb.install db
       (lsa "4.4.4.4" 1 [ p2p "2.2.2.2" 1; p2p "3.3.3.3" 1; stub "40.0.0.0/8" 0 ]));
  match Lsdb.routes db ~self:(ip "1.1.1.1") with
  | [ r ] ->
      check Alcotest.int "two equal-cost hops" 2 (List.length r.Lsdb.next_hops)
  | routes -> Alcotest.failf "expected 1 route, got %d" (List.length routes)

(* --- live daemons ------------------------------------------------------------ *)

let two_daemons () =
  let sched = Sched.create () in
  let chan = Channel.create sched () in
  let ep_a, ep_b = Channel.endpoints chan in
  let mk name stubs =
    Daemon.create
      (Process.create sched ~name)
      {
        (Daemon.default_config ~router_id:(ip name)) with
        Daemon.stub_prefixes = stubs;
      }
  in
  let a = mk "1.1.1.1" [ (p "10.1.0.0/16", 0) ] in
  let b = mk "2.2.2.2" [ (p "10.2.0.0/16", 0) ] in
  let ia = Daemon.add_interface a ep_a in
  let ib = Daemon.add_interface b ep_b in
  (sched, a, b, ia, ib)

let test_adjacency_and_routes () =
  let sched, a, b, ia, ib = two_daemons () in
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Daemon.start a;
         Daemon.start b));
  ignore (Sched.run ~until:(Time.of_sec 10.0) sched);
  check Alcotest.bool "a full" true (Daemon.neighbor_state a ia = Daemon.Full);
  check Alcotest.bool "b full" true (Daemon.neighbor_state b ib = Daemon.Full);
  check Alcotest.int "lsdb synchronised" 2 (Lsdb.size (Daemon.lsdb a));
  (match Daemon.routes a with
  | [ r ] ->
      check Alcotest.bool "a routes to b's stub" true
        (Prefix.equal r.Lsdb.prefix (p "10.2.0.0/16"))
  | routes -> Alcotest.failf "a has %d routes" (List.length routes));
  check (Alcotest.option Alcotest.int) "interface_of_neighbor" (Some ia)
    (Daemon.interface_of_neighbor a (ip "2.2.2.2"));
  let c = Daemon.counters a in
  check Alcotest.bool "hellos flowed" true (c.Daemon.hellos_sent >= 4);
  check Alcotest.bool "updates flowed" true (c.Daemon.updates_sent >= 1);
  check Alcotest.bool "acks sent" true (c.Daemon.acks_sent >= 1)

let test_daemon_crash_clears_routes () =
  let sched = Sched.create () in
  let chan = Channel.create sched () in
  let ep_a, ep_b = Channel.endpoints chan in
  let proc_b = Process.create sched ~name:"2.2.2.2" in
  let a =
    Daemon.create
      (Process.create sched ~name:"1.1.1.1")
      (Daemon.default_config ~router_id:(ip "1.1.1.1"))
  in
  let b =
    Daemon.create proc_b
      {
        (Daemon.default_config ~router_id:(ip "2.2.2.2")) with
        Daemon.stub_prefixes = [ (p "10.2.0.0/16", 0) ];
      }
  in
  let ia = Daemon.add_interface a ep_a in
  ignore (Daemon.add_interface b ep_b);
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Daemon.start a;
         Daemon.start b));
  ignore (Sched.run ~until:(Time.of_sec 5.0) sched);
  check Alcotest.int "route learned" 1 (List.length (Daemon.routes a));
  ignore (Sched.schedule_at sched (Time.of_sec 6.0) (fun () -> Process.kill proc_b));
  ignore (Sched.run ~until:(Time.of_sec 30.0) sched);
  check Alcotest.bool "adjacency dead" true (Daemon.neighbor_state a ia = Daemon.Down);
  check Alcotest.int "routes cleared" 0 (List.length (Daemon.routes a))

(* Restart a crashed daemon: hellos resume, the adjacency re-forms
   through Init -> TwoWay -> Full and the routes come back. *)
let test_daemon_restart_reforms_adjacency () =
  let sched = Sched.create () in
  let chan = Channel.create sched () in
  let ep_a, ep_b = Channel.endpoints chan in
  let proc_b = Process.create sched ~name:"2.2.2.2" in
  let a =
    Daemon.create
      (Process.create sched ~name:"1.1.1.1")
      (Daemon.default_config ~router_id:(ip "1.1.1.1"))
  in
  let b =
    Daemon.create proc_b
      {
        (Daemon.default_config ~router_id:(ip "2.2.2.2")) with
        Daemon.stub_prefixes = [ (p "10.2.0.0/16", 0) ];
      }
  in
  let ia = Daemon.add_interface a ep_a in
  ignore (Daemon.add_interface b ep_b);
  ignore
    (Sched.schedule_at sched Time.zero (fun () ->
         Daemon.start a;
         Daemon.start b));
  ignore (Sched.run ~until:(Time.of_sec 5.0) sched);
  ignore (Sched.schedule_at sched (Time.of_sec 6.0) (fun () -> Process.kill proc_b));
  ignore (Sched.run ~until:(Time.of_sec 30.0) sched);
  check Alcotest.bool "adjacency down after dead interval" true
    (Daemon.neighbor_state a ia = Daemon.Down);
  ignore
    (Sched.schedule_at sched (Time.of_sec 31.0) (fun () -> Process.restart proc_b));
  ignore (Sched.run ~until:(Time.of_sec 60.0) sched);
  check Alcotest.bool "adjacency full again" true
    (Daemon.neighbor_state a ia = Daemon.Full);
  check Alcotest.int "route re-learned" 1 (List.length (Daemon.routes a))

(* --- fabric ------------------------------------------------------------------- *)

let test_ospf_fabric_wan () =
  let wan = Wan.abilene () in
  let exp = Experiment.create wan.Wan.topo in
  let fabric =
    Ospf_fabric.build ~cm:(Experiment.cm exp)
      ~originate:(fun node -> [ (Wan.router_prefix wan node, 0) ])
      wan.Wan.topo
  in
  check Alcotest.int "adjacency per link" 15 (Ospf_fabric.adjacencies_expected fabric);
  let converged_at = ref None in
  Experiment.at exp Time.zero (fun () -> Ospf_fabric.start fabric);
  Ospf_fabric.when_converged fabric (fun () ->
      converged_at := Some (Sched.now (Experiment.scheduler exp)));
  let stats = Experiment.run ~until:(Time.of_sec 30.0) exp in
  check Alcotest.bool "converged" true (Ospf_fabric.is_converged fabric);
  check Alcotest.bool "reported" true (!converged_at <> None);
  check Alcotest.int "all adjacencies full" 15 (Ospf_fabric.adjacencies_full fabric);
  check Alcotest.bool "hellos kept the engine busy" true
    (stats.Sched.fti_increments > 0);
  (* Routing correctness: hop distances via the FIBs match SPF over
     the topology for a few pairs. *)
  let tree = Spf.shortest_tree wan.Wan.topo ~src:0 in
  List.iter
    (fun dst ->
      let key =
        Flow_key.make ~src:(Wan.router_ip wan 0)
          ~dst:(Ipv4.add (Prefix.network (Wan.router_prefix wan dst)) 1)
          ()
      in
      (* Walk the FIBs router-by-router: the source "host" is the
         router itself here, so walk manually from node 0. *)
      let table = Ospf_fabric.table fabric in
      let rec hops node n =
        if node = dst then Some n
        else if n > 15 then None
        else
          match
            Horse_dataplane.Fwd.lookup_select (table node)
              key.Flow_key.dst ~hash:0
          with
          | None -> None
          | Some link_id ->
              hops (Topology.link wan.Wan.topo link_id).Topology.dst (n + 1)
      in
      match (hops 0 0, Spf.distance tree dst) with
      | Some got, Some want ->
          check Alcotest.int (Printf.sprintf "hops to r%d" dst) want got
      | _, _ -> Alcotest.failf "no path to r%d" dst)
    [ 4; 7; 10 ]

let test_ospf_fabric_failure () =
  let wan = Wan.ring 6 in
  let exp = Experiment.create wan.Wan.topo in
  let fabric =
    Ospf_fabric.build ~cm:(Experiment.cm exp)
      ~originate:(fun node -> [ (Wan.router_prefix wan node, 0) ])
      wan.Wan.topo
  in
  Experiment.at exp Time.zero (fun () -> Ospf_fabric.start fabric);
  ignore (Experiment.run ~until:(Time.of_sec 10.0) exp);
  check Alcotest.bool "converged" true (Ospf_fabric.is_converged fabric);
  (* r0's route to r3's prefix: two ECMP ways around the ring. *)
  let dst = Prefix.network (Wan.router_prefix wan 3) in
  let group_size () =
    match Horse_dataplane.Fwd.lookup (Ospf_fabric.table fabric 0) dst with
    | Some g -> List.length g
    | None -> 0
  in
  check Alcotest.int "ecmp around the ring" 2 (group_size ());
  (* Cut r0-r1: everything must go the other way. *)
  Experiment.at exp (Time.of_sec 11.0) (fun () ->
      check Alcotest.bool "failed" true (Ospf_fabric.fail_link fabric ~a:0 ~b:1));
  ignore (Experiment.run ~until:(Time.of_sec 30.0) exp);
  check Alcotest.bool "still converged" true (Ospf_fabric.is_converged fabric);
  check Alcotest.int "single path after failure" 1 (group_size ())

let test_ospf_periodic_fti () =
  (* The OSPF-vs-BGP contrast: converged OSPF still hellos, so the
     engine keeps re-entering FTI long after convergence. *)
  let wan = Wan.linear 2 in
  let config =
    { Sched.default_config with Sched.quiet_timeout = Time.of_ms 500 }
  in
  let exp = Experiment.create ~config wan.Wan.topo in
  let fabric =
    Ospf_fabric.build ~cm:(Experiment.cm exp)
      ~originate:(fun node -> [ (Wan.router_prefix wan node, 0) ])
      wan.Wan.topo
  in
  Experiment.at exp Time.zero (fun () -> Ospf_fabric.start fabric);
  let stats = Experiment.run ~until:(Time.of_sec 20.0) exp in
  (* Hellos every 2 s with a 0.5 s quiet timeout: roughly one FTI
     episode per hello round. *)
  check Alcotest.bool "many transitions" true
    (List.length stats.Sched.transitions >= 10)

let () =
  Alcotest.run "horse_ospf"
    [
      ( "codec",
        [
          prop_codec_roundtrip;
          prop_decode_total;
          prop_decode_total_mutated;
          Alcotest.test_case "corruption detected" `Quick test_codec_corruption;
        ] );
      ( "lsdb",
        [
          Alcotest.test_case "install ordering" `Quick test_lsdb_install_order;
          Alcotest.test_case "spf metrics" `Quick test_spf_metrics;
          Alcotest.test_case "two-way check" `Quick test_spf_two_way_check;
          Alcotest.test_case "spf ecmp" `Quick test_spf_ecmp;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "adjacency and routes" `Quick test_adjacency_and_routes;
          Alcotest.test_case "crash clears routes" `Quick
            test_daemon_crash_clears_routes;
          Alcotest.test_case "restart re-forms adjacency" `Quick
            test_daemon_restart_reforms_adjacency;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "abilene converges + correct hops" `Quick
            test_ospf_fabric_wan;
          Alcotest.test_case "ring failure reroutes" `Quick
            test_ospf_fabric_failure;
          Alcotest.test_case "periodic hellos re-enter FTI" `Quick
            test_ospf_periodic_fti;
        ] );
    ]
