open Horse_net

type t = { topo : Topology.t; routers : Topology.node array }

let loopback i = Ipv4.of_octets 192 0 ((i / 250) + 2) ((i mod 250) + 1)

let make_routers topo n =
  Array.init n (fun i ->
      Topology.add_node topo
        ~name:(Printf.sprintf "r%d" i)
        ~ip:(loopback i) Topology.Router)

let defaults capacity delay =
  (Option.value capacity ~default:10e9, Option.value delay ~default:(Horse_engine.Time.of_ms 5))

let linear ?capacity ?delay n =
  if n < 1 then invalid_arg "Wan.linear: n < 1";
  let capacity, delay = defaults capacity delay in
  let topo = Topology.create () in
  let routers = make_routers topo n in
  for i = 0 to n - 2 do
    ignore (Topology.add_duplex topo ~delay ~capacity routers.(i) routers.(i + 1))
  done;
  { topo; routers }

let ring ?capacity ?delay n =
  if n < 3 then invalid_arg "Wan.ring: n < 3";
  let capacity, delay = defaults capacity delay in
  let topo = Topology.create () in
  let routers = make_routers topo n in
  for i = 0 to n - 1 do
    ignore
      (Topology.add_duplex topo ~delay ~capacity routers.(i)
         routers.((i + 1) mod n))
  done;
  { topo; routers }

let star ?capacity ?delay n =
  if n < 1 then invalid_arg "Wan.star: n < 1";
  let capacity, delay = defaults capacity delay in
  let topo = Topology.create () in
  let routers = make_routers topo (n + 1) in
  for i = 1 to n do
    ignore (Topology.add_duplex topo ~delay ~capacity routers.(0) routers.(i))
  done;
  { topo; routers }

let random_gnp ?capacity ?delay ~seed ~n ~p () =
  if n < 1 then invalid_arg "Wan.random_gnp: n < 1";
  if p < 0.0 || p > 1.0 then invalid_arg "Wan.random_gnp: p outside [0,1]";
  let capacity, delay = defaults capacity delay in
  let rng = Horse_engine.Rng.create seed in
  let topo = Topology.create () in
  let routers = make_routers topo n in
  let connected = Array.make_matrix n n false in
  let connect i j =
    if not connected.(i).(j) then begin
      connected.(i).(j) <- true;
      connected.(j).(i) <- true;
      ignore (Topology.add_duplex topo ~delay ~capacity routers.(i) routers.(j))
    end
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Horse_engine.Rng.float rng 1.0 < p then connect i j
    done
  done;
  (* Spanning chain over a random permutation guarantees
     connectivity. *)
  let order = Horse_engine.Rng.permutation rng n in
  for i = 0 to n - 2 do
    connect order.(i) order.(i + 1)
  done;
  { topo; routers }

(* Abilene: 11 PoPs; adjacency from the standard published map. *)
let abilene_edges =
  [
    (0, 1) (* Seattle - Sunnyvale *);
    (0, 2) (* Seattle - Denver *);
    (1, 3) (* Sunnyvale - Los Angeles *);
    (1, 2) (* Sunnyvale - Denver *);
    (2, 4) (* Denver - Kansas City *);
    (3, 5) (* Los Angeles - Houston *);
    (4, 5) (* Kansas City - Houston *);
    (4, 6) (* Kansas City - Indianapolis *);
    (5, 7) (* Houston - Atlanta *);
    (6, 7) (* Indianapolis - Atlanta *);
    (6, 8) (* Indianapolis - Chicago *);
    (7, 9) (* Atlanta - Washington *);
    (8, 9) (* Chicago - Washington *);
    (8, 10) (* Chicago - New York *);
    (9, 10) (* Washington - New York *);
  ]

let abilene ?capacity ?delay () =
  let capacity, delay = defaults capacity delay in
  let topo = Topology.create () in
  let routers = make_routers topo 11 in
  List.iter
    (fun (i, j) ->
      ignore (Topology.add_duplex topo ~delay ~capacity routers.(i) routers.(j)))
    abilene_edges;
  { topo; routers }

let attach_hosts ?(capacity = 1e9) ?(delay = Horse_engine.Time.of_ms 1) t =
  Array.mapi
    (fun i router ->
      let prefix = Prefix.make (Ipv4.of_octets 203 (i / 256) (i mod 256) 0) 24 in
      let host =
        Topology.add_node t.topo
          ~name:(Printf.sprintf "h%d" i)
          ~ip:(Ipv4.add (Prefix.network prefix) 1)
          ~mac:(Mac.of_index (100000 + i))
          Topology.Host
      in
      ignore (Topology.add_duplex t.topo ~delay ~capacity router host);
      host)
    t.routers

let router_ip t i =
  match t.routers.(i).Topology.ip with
  | Some ip -> ip
  | None -> assert false (* every WAN router is built with a loopback *)

let router_prefix _t i =
  Prefix.make (Ipv4.of_octets 203 (i / 256) (i mod 256) 0) 24
