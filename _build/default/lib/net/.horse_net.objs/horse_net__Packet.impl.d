lib/net/packet.ml: Arp Bytes Checksum Eth Format Headers Ip Ipv4 Mac Proto Tcp Udp Wire
