lib/ospf/daemon.ml: Channel Format Horse_emulation Horse_engine Horse_net Ipv4 List Lsdb Option Ospf_msg Prefix Printf Process Sched Time Trace
