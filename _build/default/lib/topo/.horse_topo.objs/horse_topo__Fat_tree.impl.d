lib/topo/fat_tree.ml: Array Horse_engine Horse_net Ipv4 Mac Prefix Printf Topology
