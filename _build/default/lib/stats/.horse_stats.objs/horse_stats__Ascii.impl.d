lib/stats/ascii.ml: Array Buffer Float Format Horse_engine List Printf Series Stdlib String Time
