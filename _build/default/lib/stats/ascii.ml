open Horse_engine

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline xs =
  match xs with
  | [] -> ""
  | _ ->
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let range = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
      let buf = Buffer.create (List.length xs * 3) in
      List.iter
        (fun x ->
          let level = int_of_float ((x -. lo) /. range *. 7.0) in
          Buffer.add_string buf blocks.(Stdlib.max 0 (Stdlib.min 7 level)))
        xs;
      Buffer.contents buf

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

(* Average the samples of [s] into [width] buckets spanning
   [t0, t1]. NaN marks empty buckets. *)
let resample s ~t0 ~t1 ~width =
  let sums = Array.make width 0.0 and counts = Array.make width 0 in
  let span = Stdlib.max 1e-9 (t1 -. t0) in
  List.iter
    (fun (at, v) ->
      let x = (Time.to_sec at -. t0) /. span in
      let col = Stdlib.min (width - 1) (Stdlib.max 0 (int_of_float (x *. float_of_int (width - 1)))) in
      sums.(col) <- sums.(col) +. v;
      counts.(col) <- counts.(col) + 1)
    (Series.to_list s);
  Array.init width (fun i ->
      if counts.(i) = 0 then Float.nan else sums.(i) /. float_of_int counts.(i))

let plot ?(width = 72) ?(height = 16) ?(unit_label = "") fmt series =
  let non_empty = List.filter (fun (_, s) -> not (Series.is_empty s)) series in
  match non_empty with
  | [] -> Format.fprintf fmt "(no data)@."
  | _ ->
      let t0 =
        List.fold_left
          (fun acc (_, s) ->
            match Series.to_list s with
            | (at, _) :: _ -> Float.min acc (Time.to_sec at)
            | [] -> acc)
          infinity non_empty
      and t1 =
        List.fold_left
          (fun acc (_, s) ->
            match Series.last s with
            | Some (at, _) -> Float.max acc (Time.to_sec at)
            | None -> acc)
          neg_infinity non_empty
      in
      let vmax =
        List.fold_left (fun acc (_, s) -> Float.max acc (Series.max_value s))
          0.0 non_empty
      in
      let vmax = if vmax <= 0.0 then 1.0 else vmax in
      let cols = List.map (fun (_, s) -> resample s ~t0 ~t1 ~width) non_empty in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si col ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          Array.iteri
            (fun x v ->
              if not (Float.is_nan v) then begin
                let y = int_of_float (v /. vmax *. float_of_int (height - 1)) in
                let y = Stdlib.max 0 (Stdlib.min (height - 1) y) in
                grid.(height - 1 - y).(x) <- glyph
              end)
            col)
        cols;
      Format.fprintf fmt "%8.3g +" vmax;
      Format.fprintf fmt "%s@." (String.make width '-');
      Array.iteri
        (fun row line ->
          let label =
            if row = height - 1 then Printf.sprintf "%8.3g |" 0.0
            else "         |"
          in
          Format.fprintf fmt "%s%s@." label (String.init width (fun i -> line.(i))))
        grid;
      Format.fprintf fmt "          +%s@." (String.make width '-');
      let left = Printf.sprintf "%.3gs" t0 and right = Printf.sprintf "%.3gs" t1 in
      Format.fprintf fmt "           %s%*s@." left
        (width - String.length left) right;
      List.iteri
        (fun si (label, _) ->
          Format.fprintf fmt "           %c = %s%s@."
            glyphs.(si mod Array.length glyphs)
            label
            (if String.equal unit_label "" then "" else " (" ^ unit_label ^ ")"))
        non_empty

let bar_chart ?(width = 50) fmt items =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 items in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  let label_w =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 items
  in
  List.iter
    (fun (label, v) ->
      let n = int_of_float (v /. vmax *. float_of_int width) in
      Format.fprintf fmt "%-*s | %s %.3g@." label_w label
        (String.make (Stdlib.max 0 n) '#')
        v)
    items
