(* Two routing protocols, two control-plane rhythms.

   The same Abilene WAN runs once under BGP and once under OSPF. Both
   converge — but BGP (with a WAN-scale hold time) goes quiet
   afterwards and lets the hybrid clock live in DES, while OSPF's
   periodic HELLOs pull the experiment back into FTI forever. Horse
   makes that difference directly visible (and billable, in wall
   time).

   Run with:  dune exec examples/ospf_vs_bgp.exe *)

open Horse_engine
open Horse_topo
open Horse_core

let run_wan name build =
  let wan = Wan.abilene () in
  let exp = Experiment.create wan.Wan.topo in
  let converged = ref None in
  build wan exp converged;
  let stats = Experiment.run ~until:(Time.of_sec 60.0) exp in
  let cm = Experiment.cm exp in
  Format.printf
    "%-5s: converged %-8s  %5d msgs  %3d transitions  FTI %4.1f%% of virtual \
     time@."
    name
    (match !converged with
    | Some at -> Format.asprintf "%a" Time.pp at
    | None -> "never")
    (Connection_manager.messages_observed cm)
    (List.length stats.Sched.transitions)
    (100.0
    *. Time.to_sec stats.Sched.virtual_in_fti
    /. Time.to_sec stats.Sched.end_time);
  stats

let () =
  Format.printf "Abilene (11 routers), one /24 per router, 60s virtual@.@.";
  let bgp_stats =
    run_wan "bgp" (fun wan exp converged ->
        let fabric =
          Routed_fabric.build ~cm:(Experiment.cm exp)
            ~hold_time:(Time.of_sec 90.0)
            ~originate:(fun node -> [ Wan.router_prefix wan node ])
            wan.Wan.topo
        in
        Experiment.at exp Time.zero (fun () -> Routed_fabric.start fabric);
        Routed_fabric.when_converged fabric (fun () ->
            converged := Some (Sched.now (Experiment.scheduler exp))))
  in
  let ospf_stats =
    run_wan "ospf" (fun wan exp converged ->
        let fabric =
          Ospf_fabric.build ~cm:(Experiment.cm exp)
            ~originate:(fun node -> [ (Wan.router_prefix wan node, 0) ])
            wan.Wan.topo
        in
        Experiment.at exp Time.zero (fun () -> Ospf_fabric.start fabric);
        Ospf_fabric.when_converged fabric (fun () ->
            converged := Some (Sched.now (Experiment.scheduler exp))))
  in
  Format.printf
    "@.OSPF spent %.1fx as much virtual time in FTI as BGP — hello chatter is@."
    (Time.to_sec ospf_stats.Sched.virtual_in_fti
    /. Float.max 1e-9 (Time.to_sec bgp_stats.Sched.virtual_in_fti));
  Format.printf
    "exactly the kind of control-plane realism a pure simulator would flatten@."
