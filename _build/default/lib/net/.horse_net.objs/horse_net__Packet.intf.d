lib/net/packet.mli: Bytes Format Headers Ipv4 Mac
