(** Nested region timing against both clocks.

    A span records one named region of a run — "setup", "experiment
    run", "spf" — with its start and end in {b virtual} time (the
    scheduler clock, passed in as integer microseconds so this library
    can sit below the engine) and in {b wall} time (sampled here).
    Spans nest: entering while another span is open records the new
    one as its child.

    Virtual timestamps are [int64] microseconds — exactly the
    representation of [Horse_engine.Time.t]; callers above the engine
    convert with [Time.to_us]. *)

type tracker
type handle

type record = {
  name : string;
  depth : int;  (** 0 for top-level spans *)
  parent : string option;
  start_us : int64;  (** virtual start, microseconds *)
  end_us : int64;  (** virtual end, microseconds *)
  wall_start_s : float;  (** wall seconds since tracker creation *)
  wall_end_s : float;
}

val create_tracker : unit -> tracker

val enter : tracker -> name:string -> at_us:int64 -> handle

val exit : tracker -> handle -> at_us:int64 -> unit
(** Ends the span. Any deeper spans still open are closed at the same
    instant; exiting a handle that is no longer open is a no-op. *)

val with_span :
  tracker -> name:string -> now_us:(unit -> int64) -> (unit -> 'a) -> 'a
(** [with_span tr ~name ~now_us f] brackets [f] in a span, reading
    virtual time from [now_us] on entry and exit (exception-safe). *)

val records : tracker -> record list
(** Completed spans, in virtual start order. *)

val open_count : tracker -> int

val virtual_duration_s : record -> float
val wall_duration_s : record -> float

val pp_record : Format.formatter -> record -> unit
val pp : Format.formatter -> tracker -> unit
(** Indented by depth, one record per line. *)
