lib/net/wire.ml: Bytes Int32 Int64 Ipv4 Mac Printf Result
