lib/core/routed_fabric.mli: Connection_manager Flow_key Fwd Horse_bgp Horse_dataplane Horse_engine Horse_net Horse_topo Prefix Speaker Spf Time Topology
