open Horse_net
open Horse_engine

type t = {
  id : int;
  key : Flow_key.t;
  demand : float;
  users : int;
  started : Time.t;
  mutable path : Horse_topo.Spf.path;
  mutable rate : float;
  mutable delivered_bits : float;
  mutable last_integration : Time.t;
  mutable active : bool;
  mutable stopped_at : Time.t option;
}

let src_node t =
  match t.path with [] -> None | l :: _ -> Some l.Horse_topo.Topology.src

let dst_node t =
  match List.rev t.path with
  | [] -> None
  | l :: _ -> Some l.Horse_topo.Topology.dst

let link_ids t = List.map (fun l -> l.Horse_topo.Topology.link_id) t.path

let pp fmt t =
  Format.fprintf fmt "flow#%d %a demand=%.3gMbps rate=%.3gMbps hops=%d%s%s" t.id
    Flow_key.pp t.key (t.demand /. 1e6) (t.rate /. 1e6) (List.length t.path)
    (if t.users = 1 then "" else Printf.sprintf " users=%d" t.users)
    (if t.active then "" else " (stopped)")
