open Headers

type l4 =
  | Udp of Udp.t * Bytes.t
  | Tcp of Tcp.t * Bytes.t
  | Raw_l4 of Proto.t * Bytes.t

type body = Arp of Arp.t | Ipv4 of Ip.t * l4 | Raw of Bytes.t

type t = { eth : Eth.t; body : body }

let l4_size = function
  | Udp (_, p) -> Udp.size + Bytes.length p
  | Tcp (_, p) -> Tcp.size + Bytes.length p
  | Raw_l4 (_, p) -> Bytes.length p

let size t =
  Eth.size
  +
  match t.body with
  | Arp _ -> Arp.size
  | Ipv4 (_, l4) -> Ip.size + l4_size l4
  | Raw p -> Bytes.length p

let encode t =
  let buf = Bytes.make (size t) '\000' in
  Eth.write buf 0 t.eth;
  let off = Eth.size in
  (match t.body with
  | Arp a -> Arp.write buf off a
  | Raw p -> Bytes.blit p 0 buf off (Bytes.length p)
  | Ipv4 (ip, l4) ->
      let total_length = Ip.size + l4_size l4 in
      let proto =
        match l4 with
        | Udp _ -> Proto.Udp
        | Tcp _ -> Proto.Tcp
        | Raw_l4 (p, _) -> p
      in
      Ip.write buf off { ip with total_length; proto };
      let l4_off = off + Ip.size in
      (match l4 with
      | Udp (u, payload) ->
          let payload_off = l4_off + Udp.size in
          Bytes.blit payload 0 buf payload_off (Bytes.length payload);
          Udp.write_with_checksum buf l4_off
            { u with length = Udp.size + Bytes.length payload }
            ~src:ip.Ip.src ~dst:ip.Ip.dst ~payload_off
      | Tcp (tc, payload) ->
          let payload_off = l4_off + Tcp.size in
          Bytes.blit payload 0 buf payload_off (Bytes.length payload);
          Tcp.write_with_checksum buf l4_off tc ~src:ip.Ip.src ~dst:ip.Ip.dst
            ~payload_off ~payload_len:(Bytes.length payload)
      | Raw_l4 (_, payload) ->
          Bytes.blit payload 0 buf l4_off (Bytes.length payload)));
  buf

let decode_l4 buf off (ip : Ip.t) =
  let open Wire in
  let avail = ip.total_length - Ip.size in
  let* () =
    if avail < 0 then Error "ip: total_length shorter than header"
    else check buf off avail
  in
  match ip.proto with
  | Proto.Udp ->
      let* u = Udp.read buf off in
      if u.Udp.length > avail then Error "udp: length exceeds ip payload"
      else
        let sum =
          pseudo_header_sum ~src:ip.src ~dst:ip.dst ~proto:Proto.Udp
            ~length:u.Udp.length
        in
        let sum = Checksum.add_bytes sum buf off u.Udp.length in
        if Checksum.finish sum <> 0 then Error "udp: bad checksum"
        else
          let* payload = bytes (u.Udp.length - Udp.size) buf (off + Udp.size) in
          Ok (Udp (u, payload))
  | Proto.Tcp ->
      let* tc = Tcp.read buf off in
      let sum =
        pseudo_header_sum ~src:ip.src ~dst:ip.dst ~proto:Proto.Tcp
          ~length:avail
      in
      let sum = Checksum.add_bytes sum buf off avail in
      if Checksum.finish sum <> 0 then Error "tcp: bad checksum"
      else
        let* payload = bytes (avail - Tcp.size) buf (off + Tcp.size) in
        Ok (Tcp (tc, payload))
  | Proto.Icmp | Proto.Other _ ->
      let* payload = bytes avail buf off in
      Ok (Raw_l4 (ip.proto, payload))

let decode buf =
  let open Wire in
  let* eth = Eth.read buf 0 in
  let off = Eth.size in
  let* body =
    match eth.Eth.ethertype with
    | Eth.Arp_type ->
        let* a = Arp.read buf off in
        Ok (Arp a)
    | Eth.Ipv4_type ->
        let* ip = Ip.read buf off in
        let* l4 = decode_l4 buf (off + Ip.size) ip in
        Ok (Ipv4 (ip, l4))
    | Eth.Unknown _ ->
        let* payload = bytes (Bytes.length buf - off) buf off in
        Ok (Raw payload)
  in
  Ok { eth; body }

let ip_header ?(ttl = 64) ~src ~dst proto =
  {
    Ip.dscp = 0;
    ident = 0;
    dont_fragment = true;
    ttl;
    proto;
    src;
    dst;
    total_length = 0 (* recomputed by encode *);
  }

let udp ~src_mac ~dst_mac ~src ~dst ~src_port ~dst_port ?(ttl = 64) payload =
  {
    eth = { Eth.dst = dst_mac; src = src_mac; ethertype = Eth.Ipv4_type };
    body =
      Ipv4
        ( ip_header ~ttl ~src ~dst Proto.Udp,
          Udp ({ Udp.src_port; dst_port; length = 0 }, payload) );
  }

let tcp ~src_mac ~dst_mac ~src ~dst ~src_port ~dst_port ?(ttl = 64)
    ?(flags = Tcp.no_flags) ?(seq = 0) payload =
  {
    eth = { Eth.dst = dst_mac; src = src_mac; ethertype = Eth.Ipv4_type };
    body =
      Ipv4
        ( ip_header ~ttl ~src ~dst Proto.Tcp,
          Tcp
            ( { Tcp.src_port; dst_port; seq; ack_num = 0; flags; window = 65535 },
              payload ) );
  }

let arp_request ~src_mac ~src ~target =
  {
    eth = { Eth.dst = Mac.broadcast; src = src_mac; ethertype = Eth.Arp_type };
    body =
      Arp
        {
          Arp.op = Arp.Request;
          sender_mac = src_mac;
          sender_ip = src;
          target_mac = Mac.zero;
          target_ip = target;
        };
  }

let arp_reply ~src_mac ~dst_mac ~src ~target =
  {
    eth = { Eth.dst = dst_mac; src = src_mac; ethertype = Eth.Arp_type };
    body =
      Arp
        {
          Arp.op = Arp.Reply;
          sender_mac = src_mac;
          sender_ip = src;
          target_mac = dst_mac;
          target_ip = target;
        };
  }

let l4_equal a b =
  match (a, b) with
  | Udp (ua, pa), Udp (ub, pb) ->
      (* The length field is owned by the codec; ports and payload are
         the semantic content. *)
      ua.Udp.src_port = ub.Udp.src_port
      && ua.Udp.dst_port = ub.Udp.dst_port
      && Bytes.equal pa pb
  | Tcp (ta, pa), Tcp (tb, pb) -> Tcp.equal ta tb && Bytes.equal pa pb
  | Raw_l4 (qa, pa), Raw_l4 (qb, pb) -> Proto.equal qa qb && Bytes.equal pa pb
  | (Udp _ | Tcp _ | Raw_l4 _), _ -> false

let body_equal a b =
  match (a, b) with
  | Arp x, Arp y -> Arp.equal x y
  | Ipv4 (ia, la), Ipv4 (ib, lb) ->
      (* Length/ident fields are owned by the codec; compare the
         semantic fields only. *)
      Ipv4.equal ia.Ip.src ib.Ip.src
      && Ipv4.equal ia.Ip.dst ib.Ip.dst
      && Proto.equal ia.Ip.proto ib.Ip.proto
      && ia.Ip.ttl = ib.Ip.ttl && l4_equal la lb
  | Raw x, Raw y -> Bytes.equal x y
  | (Arp _ | Ipv4 _ | Raw _), _ -> false

let equal a b = Eth.equal a.eth b.eth && body_equal a.body b.body

let pp fmt t =
  match t.body with
  | Arp a -> Arp.pp fmt a
  | Ipv4 (ip, Udp (u, _)) -> Format.fprintf fmt "%a %a" Ip.pp ip Udp.pp u
  | Ipv4 (ip, Tcp (tc, _)) -> Format.fprintf fmt "%a %a" Ip.pp ip Tcp.pp tc
  | Ipv4 (ip, Raw_l4 _) -> Ip.pp fmt ip
  | Raw p -> Format.fprintf fmt "raw{%d bytes}" (Bytes.length p)
