lib/dataplane/flow.mli: Flow_key Format Horse_engine Horse_net Horse_topo Time
