(** The hybrid scheduler — Horse's core contribution.

    The scheduler owns the virtual clock and the event queue and runs
    in one of two modes (paper, §2):

    - {b DES} (Discrete Event Simulation): the clock jumps straight to
      the timestamp of the next event. This is the fast mode used when
      only (fluid) data-plane traffic is active.
    - {b FTI} (Fixed Time Increment): the clock advances in small
      fixed increments, and every registered poller (an emulated
      control-plane process) gets a tick per increment. This
      reproduces the real-time interleaving that real routing daemons
      experience.

    The transition rules are exactly the paper's: any control-plane
    activity (reported by the Connection Manager via
    {!control_activity}) forces FTI mode and refreshes a quiet timer;
    after a user-defined timeout with no control activity the
    scheduler falls back to DES. All transitions are recorded and
    returned in {!stats} (this drives the Figure 1 reproduction).

    Every scheduler owns (or is given) a telemetry registry and keeps
    its counters there — [horse_sched_events_total],
    [horse_sched_wall_in_des_seconds] and friends; {!stats} is a view
    over those metrics, so exporters and {!stats} can never
    disagree. *)

type t

type mode = Des | Fti

val pp_mode : Format.formatter -> mode -> unit
val mode_to_string : mode -> string

type config = {
  fti_increment : Time.t;
      (** FTI step, default 1 ms. Smaller is more faithful and
          slower. *)
  quiet_timeout : Time.t;
      (** control-plane silence needed to return to DES; default 1 s *)
  start_in_fti : bool;
      (** begin the run in FTI mode (a control plane that boots at
          t=0 will trigger FTI immediately anyway); default [false] *)
  fti_pacing : float;
      (** 0 (default) runs FTI as fast as possible; [x > 0] sleeps so
          FTI virtual time advances at [x]× wall speed — only useful
          for interactive demonstrations. *)
  max_wall_s : float;
      (** Wall-clock watchdog: a {!run} that exceeds this many wall
          seconds is aborted gracefully between steps — {!run} returns
          a snapshot with [aborted = true] and registered {!on_abort}
          hooks fire first, so callers can still flush telemetry and
          print a partial report. [0.0] (default) disables it. *)
  fast_path : bool;
      (** default [true]: honour poller wake hints (dozing pollers are
          skipped) and fast-forward the clock over provably idle FTI
          windows. [false] reproduces the original eager loop — every
          poller ticks every increment, every increment is stepped —
          for A/B comparisons; results (event order, FIBs, the mode
          timeline, [fti_increments]) are identical either way, only
          wall cost differs. *)
  causal : bool;
      (** default [true]: record the causal graph — every interesting
          occurrence ({!cause_point}) becomes a node whose parent is
          the occurrence that caused it, with the edge carried
          automatically through {!schedule_at}, {!defer} and {!every}.
          [false] makes every causal primitive a no-op (no nodes, no
          detail strings formatted, behaviour byte-identical — only
          wall cost differs, A/B'd by [bench trace-overhead]). *)
  profile : bool;
      (** default [false]: record a per-poller wall-cost histogram
          ([horse_sched_poller_tick_seconds{poller=...}]) on every
          tick — the scheduler self-profiler. Off by default because
          two [Wall.now] calls per tick are measurable on storm
          workloads. *)
}

val default_config : config

type transition = {
  at : Time.t;
  wall : float;  (** wall seconds since [run] started *)
  from_mode : mode;
  to_mode : mode;
  reason : string;
}

type stats = {
  events_executed : int;
  fti_increments : int;
      (** increments the virtual clock advanced by, including
          fast-forwarded ones — identical for eager and fast-path
          runs of the same experiment *)
  fti_increments_skipped : int;
      (** of {!field-fti_increments}, how many fast-forward covered in
          one step instead of looping *)
  poller_ticks : int;  (** poller invocations actually made *)
  poller_ticks_saved : int;
      (** poller invocations avoided by dozing and fast-forward *)
  transitions : transition list;  (** chronological *)
  virtual_in_fti : Time.t;
  virtual_in_des : Time.t;
  wall_in_fti : float;
  wall_in_des : float;
  wall_total : float;
  end_time : Time.t;
  aborted : bool;
      (** the run was cut short by the [max_wall_s] watchdog *)
}

val pp_stats : Format.formatter -> stats -> unit

val pp_transition : Format.formatter -> transition -> unit
(** ["[1.003s] FTI -> DES (quiet timeout)"]. *)

val pp_timeline : Format.formatter -> stats -> unit
(** The whole transition list, one per line, as the Figure 1
    timeline. *)

val create :
  ?config:config -> ?registry:Horse_telemetry.Registry.t -> unit -> t
(** Without [?registry], the scheduler creates a private registry so
    concurrent experiments in one process never share counters. Pass
    one explicitly (e.g. [Horse_telemetry.Registry.default ()]) to
    aggregate across schedulers. *)

val config : t -> config
val now : t -> Time.t
val mode : t -> mode

val registry : t -> Horse_telemetry.Registry.t
(** The registry holding this scheduler's metrics; subsystems built on
    this scheduler (Connection Manager, speakers, the fluid data
    plane) register their own metrics here. *)

(** {2 Causal tracing}

    When [config.causal] is set the scheduler owns a {!Causal.t} and
    an {e ambient cause} — the id of the occurrence responsible for
    whatever code is currently running. {!cause_point} records a new
    occurrence under the ambient cause and makes it ambient;
    {!schedule_at}, {!schedule_after}, {!every} and {!defer} capture
    the ambient cause at registration and restore it when the action
    fires, so provenance follows timers, delayed deliveries and
    coalesced recomputes for free. Poller ticks reset the ambient
    cause — poller-driven activity roots fresh chains. With tracing
    off, every primitive here is a no-op returning {!Causal.none}. *)

val causal : t -> Causal.t option
(** The causal graph, when tracing is enabled. *)

val current_cause : t -> Causal.id
(** The ambient cause ({!Causal.none} when tracing is off or nothing
    interesting is on the stack). *)

val cause_point : t -> kind:string -> (unit -> string) -> Causal.id
(** [cause_point t ~kind detail] records an occurrence at the current
    virtual time under the ambient cause and makes it the new ambient
    cause. [detail] is a thunk so the string is never built with
    tracing off. Callers creating {e sibling} points in a loop must
    wrap each iteration in {!protect_cause}, or the siblings chain
    under one another. *)

val with_cause : t -> Causal.id -> (unit -> 'a) -> 'a
(** Runs [f] with the given ambient cause, restoring the previous one
    after (exception-safe). Used to re-attach work to a cause captured
    earlier — e.g. a message sitting in a mailbox. *)

val protect_cause : t -> (unit -> 'a) -> 'a
(** Runs [f] and restores the ambient cause afterwards
    (exception-safe), without changing it first — the save/restore
    bracket for loops that create sibling {!cause_point}s. *)

val snapshot : t -> stats
(** The current statistics view over the registry, readable at any
    point (including mid-run, from an event). *)

val with_span : t -> name:string -> (unit -> 'a) -> 'a
(** Brackets [f] in a telemetry span recorded against this scheduler's
    virtual clock (and wall time); spans nest. Exception-safe. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> Event_queue.handle
(** Schedules an event at an absolute virtual time; a time in the past
    is clamped to [now]. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> Event_queue.handle
(** Relative variant; a negative delay is clamped to zero. *)

val cancel : Event_queue.handle -> unit

val reschedule : t -> Event_queue.handle -> Time.t -> unit
(** Re-aims a scheduled event at a new absolute time (clamped to
    [now]), reusing its action — O(1) on the timing wheel. An event
    that already fired or was cancelled is re-armed, which is exactly
    what a deadline timer wants: one handle per deadline, re-aimed on
    every refresh. *)

val defer : t -> (unit -> unit) -> unit
(** Registers end-of-instant work: [f] runs before the virtual clock
    advances past the current instant — after every event scheduled at
    the current timestamp has executed, and before {!run} returns or
    an FTI increment closes. Callbacks run in registration order and
    may defer again; everything drains before time moves. This is the
    coalescing hook: a subsystem asked to recompute k times inside one
    event batch defers once and pays for one recomputation. Work
    deferred while the scheduler is idle runs when the next {!run}
    starts (before its first event). *)

type recurring
(** A repeating event; lives until cancelled or the run ends. *)

val every : t -> ?start_after:Time.t -> Time.t -> (unit -> unit) -> recurring
(** [every t ~start_after period f] runs [f] at [now + start_after]
    (default: one period from now) and every [period] thereafter.
    @raise Invalid_argument if the period is not positive. *)

val cancel_recurring : recurring -> unit

type wake_hint =
  | Wake_at of Time.t
      (** doze until the given virtual time (a time at or before [now]
          keeps the poller runnable) *)
  | Wake_on_input
      (** doze until {!wake_poller} — typically wired to message
          delivery via [Process]/[Channel] *)
  | Always  (** stay runnable: tick again next increment *)

type poller
(** A registered poller: runnable or dozing. *)

val add_poller : ?name:string -> t -> (unit -> wake_hint) -> poller
(** Registers a per-FTI-increment tick callback. [?name] labels the
    poller in the self-profiler's histograms (default
    ["poller-<index>"]). Pollers model the
    scheduling quantum an emulated process receives; they run only in
    FTI mode, once per increment, in registration order. Each tick
    returns a wake hint; with [fast_path] the scheduler skips dozing
    pollers (and whole increments when none are runnable), with eager
    config the hint is ignored and every poller ticks every increment.
    Pollers start runnable. *)

val wake_poller : poller -> unit
(** Makes a dozing poller runnable again from the next increment on
    (idempotent). Input delivery calls this so a [Wake_on_input]
    poller reacts on the increment after its message arrives — the
    same latency it had when it polled eagerly. *)

val next_activity : t -> Time.t option
(** The earliest virtual time at which this scheduler could do
    anything on its own: pending deferred work or a runnable poller in
    FTI mode means "now"; otherwise the earlier of the next queued
    event and (in FTI mode) the quiet-timeout boundary. [None] means
    fully idle — nothing will ever fire without outside input. The
    multicore barrier driver uses this as its lookahead probe to jump
    globally idle epochs, mirroring what {!run}'s internal
    fast-forward does within one scheduler. *)

val control_activity : ?reason:string -> t -> unit
(** Report control-plane activity at the current instant: switches to
    FTI if in DES (recording a transition) and refreshes the quiet
    timer. Called by the Connection Manager, never by data-plane
    code. *)

val stop : t -> unit
(** Makes the current {!run} return after the event in progress. *)

val on_abort : t -> (unit -> unit) -> unit
(** Registers a hook run (in registration order) when the [max_wall_s]
    watchdog aborts a run, before {!run} returns. Use it to flush
    exporters or mark partial results. *)

val aborted : t -> bool
(** Whether the last (or current) run was aborted by the watchdog. *)

val run : ?until:Time.t -> t -> stats
(** Executes events until [until] (virtual), or — when [until] is
    omitted — until the event queue drains while in DES mode. The
    clock finishes exactly at [until] when given. Re-entrant calls are
    a programming error.
    @raise Invalid_argument if called while already running. *)
