open Horse_engine
module Json = Horse_telemetry.Json
module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge

type target = {
  describe : string;
  link_down : a:string -> b:string -> bool;
  link_up : a:string -> b:string -> bool;
  node_crash : string -> bool;
  node_restart : string -> bool;
  session_reset : a:string -> b:string -> bool;
  impair :
    a:string ->
    b:string ->
    rng:Rng.t ->
    Horse_emulation.Channel.impairment option -> bool;
  links : unit -> (string * string) list;
  converged : unit -> bool;
}

type record = {
  at : Time.t;
  label : string;
  applied : bool;
  cause : Causal.id;
}

type t = {
  sched : Sched.t;
  target : target;
  seed : int;
  mutable rev_trace : record list;
  mutable outstanding : (string * Time.t) list;  (* reversed *)
  mutable rev_recon : (string * Time.t * Time.t) list;
  mutable n_injected : int;
  mutable n_skipped : int;
  mutable last_at : Time.t option;
  (* Impairment streams are per site and persistent, so re-impairing a
     site continues its stream instead of restarting it. *)
  impair_rngs : (string, Rng.t) Hashtbl.t;
  m_injected : string -> Counter.t;
  m_skipped : Counter.t;
  g_outstanding : Gauge.t;
  h_recon : Horse_telemetry.Histogram.t;
}

let injected t = t.n_injected
let skipped t = t.n_skipped
let pending t = List.length t.outstanding
let last_fault_at t = t.last_at
let trace t = List.rev t.rev_trace

let trace_labels t =
  List.rev_map
    (fun r ->
      Printf.sprintf "%d %s%s" (Time.to_us r.at) r.label
        (if r.applied then "" else " (skipped)"))
    t.rev_trace

let reconvergence t = List.rev t.rev_recon

(* --- applying one action -------------------------------------------- *)

let site_rng t site =
  let key = Plan.site_label site in
  match Hashtbl.find_opt t.impair_rngs key with
  | Some rng -> rng
  | None ->
      let rng = Rng.split_key (Rng.create t.seed) ("impair:" ^ key) in
      Hashtbl.add t.impair_rngs key rng;
      rng

(* A partition cuts every link with exactly one endpoint inside the
   group; healing restores the same cut set. *)
let crossing_links t group =
  let in_group n = List.mem n group in
  List.filter
    (fun (a, b) -> in_group a <> in_group b)
    (t.target.links ())

let apply t (action : Plan.action) =
  let tgt = t.target in
  match action with
  | Plan.Link_down { a; b } -> tgt.link_down ~a ~b
  | Plan.Link_up { a; b } -> tgt.link_up ~a ~b
  | Plan.Node_crash n -> tgt.node_crash n
  | Plan.Node_restart n -> tgt.node_restart n
  | Plan.Session_reset { a; b } -> tgt.session_reset ~a ~b
  | Plan.Impair (site, imp) ->
      tgt.impair ~a:site.Plan.a ~b:site.Plan.b ~rng:(site_rng t site)
        (Some imp)
  | Plan.Clear_impair site ->
      tgt.impair ~a:site.Plan.a ~b:site.Plan.b ~rng:(site_rng t site) None
  | Plan.Partition group ->
      List.fold_left
        (fun any (a, b) -> tgt.link_down ~a ~b || any)
        false (crossing_links t group)
  | Plan.Heal group ->
      List.fold_left
        (fun any (a, b) -> tgt.link_up ~a ~b || any)
        false (crossing_links t group)

let fire t (action : Plan.action) =
  let kind = Plan.action_kind action in
  let label = Plan.action_label action in
  let at = Sched.now t.sched in
  (* The fault node roots the provenance chain of everything its
     application triggers — session teardowns, withdrawals, FIB
     churn. Protected: consecutive faults are siblings. *)
  let cause = ref Causal.none in
  let applied =
    Sched.protect_cause t.sched (fun () ->
        cause :=
          Sched.cause_point t.sched ~kind:("fault:" ^ kind) (fun () -> label);
        Sched.with_span t.sched
          ~name:("fault:" ^ kind)
          (fun () -> apply t action))
  in
  t.rev_trace <- { at; label; applied; cause = !cause } :: t.rev_trace;
  if applied then begin
    t.n_injected <- t.n_injected + 1;
    t.last_at <- Some at;
    Counter.incr (t.m_injected kind);
    t.outstanding <- (label, at) :: t.outstanding;
    Gauge.set t.g_outstanding (float_of_int (List.length t.outstanding))
  end
  else begin
    t.n_skipped <- t.n_skipped + 1;
    Counter.incr t.m_skipped
  end

(* --- reconvergence sampling ----------------------------------------- *)

let check_converged t =
  if t.outstanding <> [] && t.target.converged () then begin
    let now = Sched.now t.sched in
    List.iter
      (fun (label, at) ->
        let d = Time.to_sec (Time.sub now at) in
        Horse_telemetry.Histogram.add t.h_recon d;
        t.rev_recon <- (label, at, now) :: t.rev_recon)
      (List.rev t.outstanding);
    t.outstanding <- [];
    Gauge.set t.g_outstanding 0.0
  end

(* --- generator expansion -------------------------------------------- *)

(* Expansion happens at arm time from per-site keyed streams: the
   sequence for site X is a function of (plan seed, X) only. *)
let expand_generator seed (g : Plan.generator) =
  let rng = Rng.split_key (Rng.create seed) ("flap:" ^ Plan.site_label g.Plan.g_site) in
  let events = ref [] in
  let flap at =
    events := { Plan.at; action = Plan.Link_down g.Plan.g_site } :: !events;
    events :=
      { Plan.at = Time.add at g.Plan.g_down_for;
        action = Plan.Link_up g.Plan.g_site }
      :: !events
  in
  (match g.Plan.g_flavor with
  | Plan.Periodic period ->
      let at = ref g.Plan.g_start in
      while Time.(!at < g.Plan.g_stop) do
        flap !at;
        at := Time.add !at period
      done
  | Plan.Poisson rate ->
      let gap () =
        let u = Rng.float rng 1.0 in
        Time.of_sec (-.log (1.0 -. u) /. rate)
      in
      let at = ref (Time.add g.Plan.g_start (gap ())) in
      while Time.(!at < g.Plan.g_stop) do
        flap !at;
        at := Time.add !at (Time.add g.Plan.g_down_for (gap ()))
      done);
  List.rev !events

(* --- arming --------------------------------------------------------- *)

let arm ?(check_every = Time.of_ms 50) sched ~target (plan : Plan.t) =
  let reg = Sched.registry sched in
  let m_injected kind =
    Registry.counter reg ~subsystem:"faults"
      ~help:"Faults injected, by kind"
      ~labels:[ ("kind", kind) ]
      "injected_total"
  in
  let m_skipped =
    Registry.counter reg ~subsystem:"faults"
      ~help:"Plan events that did not apply (unknown site or state)"
      "skipped_total"
  in
  let g_outstanding =
    Registry.gauge reg ~subsystem:"faults"
      ~help:"Injected faults not yet matched by a converged observation"
      "outstanding"
  in
  let h_recon =
    Registry.histogram reg ~subsystem:"faults"
      ~help:"Virtual seconds from fault injection to FIBs-complete"
      ~lo:1e-3 ~hi:1e3 "reconvergence_seconds"
  in
  let t =
    {
      sched;
      target;
      seed = plan.Plan.seed;
      rev_trace = [];
      outstanding = [];
      rev_recon = [];
      n_injected = 0;
      n_skipped = 0;
      last_at = None;
      impair_rngs = Hashtbl.create 8;
      m_injected;
      m_skipped;
      g_outstanding;
      h_recon;
    }
  in
  let generated =
    List.concat_map (expand_generator plan.Plan.seed) plan.Plan.generators
  in
  (* Stable merge: explicit events before generated ones at equal
     timestamps, both in their own order. *)
  let all =
    List.stable_sort
      (fun (e1 : Plan.event) e2 -> Time.compare e1.Plan.at e2.Plan.at)
      (plan.Plan.events @ generated)
  in
  List.iter
    (fun (ev : Plan.event) ->
      ignore
        (Sched.schedule_at sched ev.Plan.at (fun () -> fire t ev.Plan.action)))
    all;
  if all <> [] then
    ignore (Sched.every sched check_every (fun () -> check_converged t));
  t

let report_json t =
  let events =
    List.map
      (fun r ->
        Json.Obj
          [
            ("at_s", Json.Float (Time.to_sec r.at));
            ("label", Json.String r.label);
            ("applied", Json.Bool r.applied);
          ])
      (trace t)
  in
  let recon =
    List.map
      (fun (label, at, back) ->
        Json.Obj
          [
            ("label", Json.String label);
            ("injected_s", Json.Float (Time.to_sec at));
            ("reconverged_s", Json.Float (Time.to_sec back));
            ("seconds", Json.Float (Time.to_sec (Time.sub back at)));
          ])
      (reconvergence t)
  in
  Json.Obj
    [
      ("target", Json.String t.target.describe);
      ("injected", Json.Int t.n_injected);
      ("skipped", Json.Int t.n_skipped);
      ("pending", Json.Int (pending t));
      ("events", Json.List events);
      ("reconvergence", Json.List recon);
    ]
