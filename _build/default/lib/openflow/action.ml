open Horse_net.Wire

type t = Output of int | Flood | To_controller of int

let port_flood = 0xFFFB
let port_controller = 0xFFFD

let size _ = 8
let list_size actions = 8 * List.length actions

let write buf off a =
  set_u16 buf off 0 (* OFPAT_OUTPUT *);
  set_u16 buf (off + 2) 8;
  (match a with
  | Output port ->
      set_u16 buf (off + 4) port;
      set_u16 buf (off + 6) 0
  | Flood ->
      set_u16 buf (off + 4) port_flood;
      set_u16 buf (off + 6) 0
  | To_controller max_len ->
      set_u16 buf (off + 4) port_controller;
      set_u16 buf (off + 6) max_len);
  off + 8

let read buf off =
  let* type_ = u16 buf off in
  if type_ <> 0 then Error (Printf.sprintf "ofp_action: unsupported type %d" type_)
  else
    let* len = u16 buf (off + 2) in
    if len <> 8 then Error "ofp_action: bad length"
    else
      let* port = u16 buf (off + 4) in
      let* max_len = u16 buf (off + 6) in
      let action =
        if port = port_flood then Flood
        else if port = port_controller then To_controller max_len
        else Output port
      in
      Ok (action, off + 8)

let write_list buf off actions =
  List.fold_left (fun off a -> write buf off a) off actions

let read_list buf off ~limit =
  let rec go off acc =
    if off > limit then Error "ofp_action: list overruns"
    else if off = limit then Ok (List.rev acc)
    else
      let* a, off' = read buf off in
      go off' (a :: acc)
  in
  go off []

let equal a b =
  match (a, b) with
  | Output p, Output q -> p = q
  | Flood, Flood -> true
  | To_controller m, To_controller n -> m = n
  | (Output _ | Flood | To_controller _), _ -> false

let pp fmt = function
  | Output p -> Format.fprintf fmt "output:%d" p
  | Flood -> Format.pp_print_string fmt "flood"
  | To_controller n -> Format.fprintf fmt "controller:%d" n
