(** Hedera dynamic flow scheduling (Al-Fares et al., NSDI 2010) — the
    demonstration's TE approach (ii).

    New flows are first routed reactively by 5-tuple ECMP (embedded
    {!App_ecmp}). Every polling interval — 5 seconds in the paper and
    by default — the application:

    + requests flow statistics from every edge switch (real
      STATS_REQUEST/REPLY round trips, so each poll pulls the hybrid
      clock back into FTI mode);
    + reconstructs the active flow set from the returned exact-match
      entries;
    + runs the NSDI demand estimator ({!Demand}) on the host-pair
      matrix;
    + selects flows whose estimated demand exceeds the threshold (10%
      of NIC rate);
    + places them with Global First Fit (or Simulated Annealing) over
      their equal-cost paths ({!Placer});
    + installs higher-priority entries for flows whose placement
      changed.

    This periodic control activity is exactly why Hedera spends more
    wall time in FTI mode than the one-shot ECMP schemes in Figure 3's
    experiment. *)

open Horse_engine
open Horse_net
open Horse_topo

type placer_kind = Gff | Annealing

type t

val install :
  ?poll_interval:Time.t ->
  ?threshold:float ->
  ?placer:placer_kind ->
  ?nic_bps:float ->
  ?seed:int ->
  Controller.t ->
  Env.t ->
  t
(** Defaults: poll 5 s, threshold 0.1, GFF, 1 Gbps NICs, seed 42
    (annealing only). Polling starts when the first switch
    handshake completes. *)

val polls_completed : t -> int
val reroutes : t -> int
(** Total big-flow placements that changed a path. *)

val last_big_flows : t -> int
(** Number of large flows detected in the most recent poll. *)

val path_of : t -> Flow_key.t -> Spf.path option
(** Current path (scheduler override if any, otherwise the ECMP
    choice). *)

val on_reroute : t -> (Flow_key.t -> Spf.path -> unit) -> unit
(** Observe placement changes (the experiment scaffolding re-paths the
    corresponding fluid flows). *)
