(** The Connection Manager (paper §2, Figure 2): "the bridge between
    the emulation and simulation. The CM has visibility to control
    plane packets and is responsible for sending events that trigger a
    change to the FTI mode."

    Every control-plane channel in an experiment is created through
    the CM, which installs an observer so that each message sent —
    BGP or OpenFlow, in either direction — reports control activity to
    the hybrid scheduler (forcing/holding FTI mode) and bumps the
    CM's counters. *)

open Horse_engine
open Horse_emulation

type t

val create : Sched.t -> Trace.t -> t

val scheduler : t -> Sched.t
val trace : t -> Trace.t

val control_channel :
  ?latency:Time.t ->
  ?name:string ->
  ?owner_a:Process.t ->
  ?owner_b:Process.t ->
  t ->
  Channel.t
(** A duplex channel whose traffic is observed by the CM. The name
    appears in the FTI-transition reasons and in the trace. When the
    owning processes are known, pass them: the CM then wires each
    side's delivery to [Process.wake], so processes dozing under the
    scheduler fast path get their poll quantum back the moment input
    arrives for them. *)

val wire_endpoint :
  ?name:string -> ?owner:Process.t -> t -> Channel.endpoint -> unit
(** Wires one side of a split channel to this CM: bumps the channel
    counter, installs the per-endpoint observer (counters + control
    activity on this CM's scheduler) and, when the owner is known, the
    wake hook. Must be called on the domain owning the endpoint's side
    — the restore path of a sharded fabric wires the local side
    directly and posts the remote side's wiring through the
    barrier. *)

val cross_channel :
  ?latency:Time.t ->
  ?name:string ->
  cm_a:t ->
  cm_b:t ->
  post_to_b:(at:Time.t -> (unit -> unit) -> unit) ->
  post_to_a:(at:Time.t -> (unit -> unit) -> unit) ->
  ?owner_a:Process.t ->
  ?owner_b:Process.t ->
  unit ->
  Channel.t
(** A split channel whose sides live on two shards: side a on [cm_a]'s
    scheduler, side b on [cm_b]'s. Each CM observes (and reports
    control activity for) only the traffic sent from its own side, so
    the per-shard counters partition the channel's traffic; the post
    functions carry deliveries through the barrier mailboxes (see
    {!Horse_emulation.Channel.create_split} for the latency >= quantum
    requirement). *)

val channels_created : t -> int
val messages_observed : t -> int
val bytes_observed : t -> int

val quiet_since : t -> Time.t
(** Virtual time of the last observed control message ({!Time.zero}
    before any). *)
