open Horse_net

type match_ = Any | Exact of Prefix.t | Within of Prefix.t | Has_community of int

type action = Accept | Reject | Accept_with of modifier list

and modifier =
  | Set_local_pref of int
  | Set_med of int
  | Prepend of int * int
  | Add_community of int
  | Remove_community of int

type rule = { match_ : match_; action : action }

type t = { rules : rule list; default : action }

let make ?(default = Accept) rules = { rules; default }

let accept_all = { rules = []; default = Accept }
let reject_all = { rules = []; default = Reject }

let match_equal a b =
  match (a, b) with
  | Any, Any -> true
  | Exact p, Exact q | Within p, Within q -> Prefix.equal p q
  | Has_community c, Has_community d -> c = d
  | (Any | Exact _ | Within _ | Has_community _), _ -> false

let modifier_equal (a : modifier) (b : modifier) = a = b

let action_equal a b =
  match (a, b) with
  | Accept, Accept | Reject, Reject -> true
  | Accept_with m, Accept_with n -> List.equal modifier_equal m n
  | (Accept | Reject | Accept_with _), _ -> false

let rule_equal a b =
  match_equal a.match_ b.match_ && action_equal a.action b.action

let equal a b =
  a == b || (List.equal rule_equal a.rules b.rules && action_equal a.default b.default)

let prefix_independent t =
  List.for_all
    (fun r ->
      match r.match_ with
      | Any | Has_community _ -> true
      | Exact _ | Within _ -> false)
    t.rules

let matches m prefix (attrs : Msg.attrs) =
  match m with
  | Any -> true
  | Exact p -> Prefix.equal p prefix
  | Within p -> Prefix.subset prefix p
  | Has_community c -> List.mem c attrs.Msg.communities

let apply_modifier (attrs : Msg.attrs) = function
  | Set_local_pref l -> { attrs with Msg.local_pref = Some l }
  | Set_med m -> { attrs with Msg.med = Some m }
  | Prepend (asn, times) ->
      let rec prepend n path = if n = 0 then path else prepend (n - 1) (asn :: path) in
      { attrs with Msg.as_path = prepend times attrs.Msg.as_path }
  | Add_community c ->
      {
        attrs with
        Msg.communities = List.sort_uniq Int.compare (c :: attrs.Msg.communities);
      }
  | Remove_community c ->
      {
        attrs with
        Msg.communities = List.filter (fun c' -> c' <> c) attrs.Msg.communities;
      }

let run_action action attrs =
  match action with
  | Accept -> Some attrs
  | Reject -> None
  | Accept_with mods -> Some (List.fold_left apply_modifier attrs mods)

let eval t prefix attrs =
  let rec go = function
    | [] -> run_action t.default attrs
    | rule :: rest ->
        if matches rule.match_ prefix attrs then run_action rule.action attrs
        else go rest
  in
  go t.rules

let pp_match fmt = function
  | Any -> Format.pp_print_string fmt "any"
  | Exact p -> Format.fprintf fmt "exact %a" Prefix.pp p
  | Within p -> Format.fprintf fmt "within %a" Prefix.pp p
  | Has_community c -> Format.fprintf fmt "community %a" Msg.pp_community c

let pp_action fmt = function
  | Accept -> Format.pp_print_string fmt "accept"
  | Reject -> Format.pp_print_string fmt "reject"
  | Accept_with mods ->
      Format.fprintf fmt "accept+%d-modifiers" (List.length mods)

let pp fmt t =
  List.iter
    (fun r -> Format.fprintf fmt "%a -> %a; " pp_match r.match_ pp_action r.action)
    t.rules;
  Format.fprintf fmt "default %a" pp_action t.default
