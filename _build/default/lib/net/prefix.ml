type t = { net : Ipv4.t; len : int }

let mask_of_len len =
  if len = 0 then 0l
  else Int32.shift_left 0xFFFFFFFFl (32 - len)

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: bad length %d" len);
  { net = Ipv4.of_int32 (Int32.logand (Ipv4.to_int32 addr) (mask_of_len len)); len }

let of_string s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string s)
  | Some i ->
      let addr = String.sub s 0 i in
      let len_s = String.sub s (i + 1) (String.length s - i - 1) in
      let len_ok =
        String.length len_s > 0
        && String.length len_s <= 2
        && String.for_all (function '0' .. '9' -> true | _ -> false) len_s
      in
      if not len_ok then None
      else
        let len = int_of_string len_s in
        if len > 32 then None
        else Option.map (fun a -> make a len) (Ipv4.of_string addr)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.net) p.len
let network p = p.net
let length p = p.len
let netmask p = Ipv4.of_int32 (mask_of_len p.len)

let size p = 1 lsl (32 - p.len)

let broadcast p = Ipv4.add p.net (size p - 1)

let mem a p =
  Int32.equal
    (Int32.logand (Ipv4.to_int32 a) (mask_of_len p.len))
    (Ipv4.to_int32 p.net)

let subset p q = q.len <= p.len && mem p.net q
let overlaps p q = subset p q || subset q p

let nth p i =
  if i < 0 || i >= size p then None else Some (Ipv4.add p.net i)

let split p =
  if p.len = 32 then None
  else
    let len = p.len + 1 in
    Some (make p.net len, make (Ipv4.add p.net (1 lsl (32 - len))) len)

let any = { net = Ipv4.any; len = 0 }
let host a = make a 32

let compare p q =
  match Ipv4.compare p.net q.net with 0 -> Int.compare p.len q.len | c -> c

let equal p q = Ipv4.equal p.net q.net && p.len = q.len
let pp fmt p = Format.pp_print_string fmt (to_string p)
