lib/core/traffic.ml: Array Experiment Float Flow Flow_key Fluid Horse_dataplane Horse_engine Horse_net Horse_topo List Option Rng Sched Time Topology
