type key_match =
  | K_exact of int
  | K_lpm of int * int
  | K_ternary of int * int

type entry = {
  e_table : string;
  key : key_match list;
  priority : int;
  action : string;
  args : int list;
}

let key_match_equal a b =
  match (a, b) with
  | K_exact x, K_exact y -> x = y
  | K_lpm (v, l), K_lpm (v', l') -> v = v' && l = l'
  | K_ternary (v, m), K_ternary (v', m') -> v = v' && m = m'
  | (K_exact _ | K_lpm _ | K_ternary _), _ -> false

let entry_key_equal = List.equal key_match_equal

type stored = { entry : entry; seq : int }

type t = {
  prog : Prog.t;
  tables : (string, stored list ref) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  mutable next_seq : int;
}

let program t = t.prog

let create prog =
  match Prog.validate prog with
  | Error _ as e -> e
  | Ok () ->
      let t =
        {
          prog;
          tables = Hashtbl.create 8;
          counters = Hashtbl.create 8;
          next_seq = 0;
        }
      in
      List.iter
        (fun (tb : Prog.table_def) ->
          Hashtbl.replace t.tables tb.Prog.table_name (ref []))
        prog.Prog.tables;
      List.iter (fun c -> Hashtbl.replace t.counters c (ref 0)) prog.Prog.counters;
      Ok t

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let mask_of_width w = (1 lsl w) - 1

let check_key (tb : Prog.table_def) prog key =
  if List.length key <> List.length tb.Prog.keys then
    err "p4: entry key arity mismatch for table %s" tb.Prog.table_name
  else
    List.fold_left2
      (fun acc (field, kind) k ->
        Result.bind acc (fun () ->
            let width =
              Option.value (Prog.field_width prog field) ~default:0
            in
            match ((kind : Prog.match_kind), k) with
            | Prog.Exact, K_exact _ -> Ok ()
            | Prog.Lpm, K_lpm (_, len) when len >= 0 && len <= width -> Ok ()
            | Prog.Lpm, K_lpm _ -> err "p4: LPM length out of range"
            | Prog.Ternary, K_ternary _ -> Ok ()
            | Prog.Exact, (K_lpm _ | K_ternary _)
            | Prog.Lpm, (K_exact _ | K_ternary _)
            | Prog.Ternary, (K_exact _ | K_lpm _) ->
                err "p4: key kind mismatch in table %s" tb.Prog.table_name))
      (Ok ()) tb.Prog.keys key

let insert t entry =
  match Prog.find_table t.prog entry.e_table with
  | None -> err "p4: unknown table %s" entry.e_table
  | Some tb -> (
      match check_key tb t.prog entry.key with
      | Error _ as e -> e
      | Ok () ->
          if not (List.mem entry.action tb.Prog.action_refs) then
            err "p4: action %s not permitted in table %s" entry.action
              entry.e_table
          else (
            match Prog.find_action t.prog entry.action with
            | None -> err "p4: unknown action %s" entry.action
            | Some a when List.length a.Prog.params <> List.length entry.args ->
                err "p4: action %s arity mismatch" entry.action
            | Some _ ->
                let store = Hashtbl.find t.tables entry.e_table in
                store :=
                  List.filter
                    (fun s -> not (entry_key_equal s.entry.key entry.key))
                    !store;
                store := { entry; seq = t.next_seq } :: !store;
                t.next_seq <- t.next_seq + 1;
                Ok ()))

let delete t ~table ~key =
  match Hashtbl.find_opt t.tables table with
  | None -> false
  | Some store ->
      let before = List.length !store in
      store := List.filter (fun s -> not (entry_key_equal s.entry.key key)) !store;
      List.length !store < before

let table_entries t name =
  match Hashtbl.find_opt t.tables name with
  | None -> []
  | Some store ->
      List.map (fun s -> s.entry)
        (List.sort (fun a b -> Int.compare a.seq b.seq) !store)

let table_size t name = List.length (table_entries t name)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> invalid_arg (Printf.sprintf "Interp.counter: unknown counter %s" name)

type outcome = Forwarded of int | Dropped

(* Deterministic field hashing (splitmix64 chain), independent of the
   host's polymorphic hash. *)
let hash_values values =
  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let acc =
    List.fold_left
      (fun acc v -> mix (Int64.logxor acc (Int64.of_int (v + 0x9E37))))
      0x5EEDL values
  in
  Int64.to_int acc land max_int

type run_state = {
  meta : (string, int) Hashtbl.t;
  mutable egress : int option;
  mutable dropped : bool;
}

let read st field = Option.value (Hashtbl.find_opt st.meta field) ~default:0

let rec eval t st ~args e =
  match (e : Prog.expr) with
  | Prog.Const n -> n
  | Prog.Field f -> read st f
  | Prog.Param p -> Option.value (List.assoc_opt p args) ~default:0
  | Prog.Add (a, b) -> eval t st ~args a + eval t st ~args b
  | Prog.Xor (a, b) -> eval t st ~args a lxor eval t st ~args b
  | Prog.Mod (a, b) ->
      let d = eval t st ~args b in
      if d = 0 then 0 else eval t st ~args a mod d
  | Prog.Hash fields -> hash_values (List.map (read st) fields)

let run_stmt t st ~args = function
  | Prog.Set_field (f, e) ->
      let width = Option.value (Prog.field_width t.prog f) ~default:62 in
      Hashtbl.replace st.meta f (eval t st ~args e land mask_of_width width)
  | Prog.Drop -> st.dropped <- true
  | Prog.Forward e -> st.egress <- Some (eval t st ~args e)
  | Prog.Count c -> (
      match Hashtbl.find_opt t.counters c with
      | Some r -> incr r
      | None -> ())

let run_action t st name args =
  match Prog.find_action t.prog name with
  | None -> ()
  | Some a ->
      let bound = List.combine (List.map fst a.Prog.params) args in
      List.iter (fun s -> run_stmt t st ~args:bound s) a.Prog.body

(* Matching: all keys must match; scoring prefers longer LPM prefixes,
   then higher priority, then older entries. *)
let match_entry t st (tb : Prog.table_def) (s : stored) =
  let ok =
    List.for_all2
      (fun (field, _) k ->
        let v = read st field in
        let width = Option.value (Prog.field_width t.prog field) ~default:62 in
        match k with
        | K_exact x -> v = x
        | K_lpm (x, len) ->
            let shift = width - len in
            len = 0 || v lsr shift = x lsr shift
        | K_ternary (x, m) -> v land m = x land m)
      tb.Prog.keys s.entry.key
  in
  if not ok then None
  else
    let lpm_score =
      List.fold_left
        (fun acc k -> match k with K_lpm (_, len) -> acc + len | K_exact _ | K_ternary _ -> acc)
        0 s.entry.key
    in
    Some (lpm_score, s.entry.priority, -s.seq)

let apply_table t st name =
  match (Prog.find_table t.prog name, Hashtbl.find_opt t.tables name) with
  | Some tb, Some store ->
      let best =
        List.fold_left
          (fun best s ->
            match match_entry t st tb s with
            | None -> best
            | Some score -> (
                match best with
                | Some (bscore, _) when bscore >= score -> best
                | Some _ | None -> Some (score, s.entry)))
          None !store
      in
      (match best with
      | Some (_, entry) -> run_action t st entry.action entry.args
      | None ->
          let name, args = tb.Prog.default_action in
          run_action t st name args)
  | (None | Some _), _ -> ()

let rec run_control t st = function
  | Prog.Nop -> ()
  | Prog.Apply name -> apply_table t st name
  | Prog.Seq cs -> List.iter (run_control t st) cs
  | Prog.If (cond, yes, no) ->
      if eval t st ~args:[] cond <> 0 then run_control t st yes
      else run_control t st no

let exec t initial =
  let st = { meta = Hashtbl.create 16; egress = None; dropped = false } in
  List.iter
    (fun (f, v) ->
      match Prog.field_width t.prog f with
      | Some w -> Hashtbl.replace st.meta f (v land mask_of_width w)
      | None -> ())
    initial;
  run_control t st t.prog.Prog.pipeline;
  if st.dropped then Dropped
  else match st.egress with Some port -> Forwarded port | None -> Dropped
