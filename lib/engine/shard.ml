type t = {
  index : int;
  name : string;
  sched : Sched.t;
  rng : Rng.t;
}

let create ?config ?registry ~index ~name ~seed () =
  if index < 0 then invalid_arg "Shard.create: negative index";
  {
    index;
    name;
    sched = Sched.create ?config ?registry ();
    rng = Rng.split_key (Rng.create seed) ("shard:" ^ name);
  }

let index t = t.index
let name t = t.name
let sched t = t.sched
let rng t = t.rng
let registry t = Sched.registry t.sched
