open Horse_engine

let escape field =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' -> true | _ -> false) field
  in
  if not needs_quoting then field
  else
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf

let write_row fmt fields =
  Format.fprintf fmt "%s@." (String.concat "," (List.map escape fields))

let write_rows fmt ~header rows =
  write_row fmt header;
  List.iter (write_row fmt) rows

let write_series fmt series =
  match series with
  | [] -> ()
  | (_, first) :: _ ->
      let n = Series.length first in
      List.iter
        (fun (_, s) ->
          if Series.length s <> n then
            invalid_arg "Csv.write_series: sampling grid mismatch")
        series;
      write_row fmt ("time_s" :: List.map fst series);
      let columns = List.map (fun (_, s) -> Array.of_list (Series.to_list s)) series in
      for i = 0 to n - 1 do
        let at, _ = (List.hd columns).(i) in
        let fields =
          Printf.sprintf "%.6f" (Time.to_sec at)
          :: List.map
               (fun col ->
                 let at', v = col.(i) in
                 if not (Time.equal at at') then
                   invalid_arg "Csv.write_series: sampling grid mismatch";
                 Printf.sprintf "%.6g" v)
               columns
        in
        write_row fmt fields
      done

let save_series ~path series =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  (try write_series fmt series
   with e ->
     Format.pp_print_flush fmt ();
     close_out oc;
     raise e);
  Format.pp_print_flush fmt ();
  close_out oc
