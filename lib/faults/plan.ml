open Horse_engine
module Json = Horse_telemetry.Json
module Channel = Horse_emulation.Channel

type site = { a : string; b : string }

type action =
  | Link_down of site
  | Link_up of site
  | Node_crash of string
  | Node_restart of string
  | Session_reset of site
  | Impair of site * Channel.impairment
  | Clear_impair of site
  | Partition of string list
  | Heal of string list

type event = { at : Time.t; action : action }
type flavor = Periodic of Time.t | Poisson of float

type generator = {
  g_site : site;
  g_start : Time.t;
  g_stop : Time.t;
  g_down_for : Time.t;
  g_flavor : flavor;
}

type t = { seed : int; events : event list; generators : generator list }

let empty = { seed = 0; events = []; generators = [] }

let flap_storm ~seed ~sites ~start ~stop ?period ?(rate = 0.5) ~down_for () =
  let flavor =
    match period with Some p -> Periodic p | None -> Poisson rate
  in
  {
    seed;
    events = [];
    generators =
      List.map
        (fun (a, b) ->
          {
            g_site = { a; b };
            g_start = start;
            g_stop = stop;
            g_down_for = down_for;
            g_flavor = flavor;
          })
        sites;
  }

let site_label { a; b } = if String.compare a b <= 0 then a ^ "<->" ^ b else b ^ "<->" ^ a

let group_label group = String.concat "," (List.sort String.compare group)

let action_kind = function
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Node_crash _ -> "node_crash"
  | Node_restart _ -> "node_restart"
  | Session_reset _ -> "session_reset"
  | Impair _ -> "impair"
  | Clear_impair _ -> "clear_impair"
  | Partition _ -> "partition"
  | Heal _ -> "heal"

let action_label = function
  | Link_down s -> "link_down " ^ site_label s
  | Link_up s -> "link_up " ^ site_label s
  | Node_crash n -> "node_crash " ^ n
  | Node_restart n -> "node_restart " ^ n
  | Session_reset s -> "session_reset " ^ site_label s
  | Impair (s, imp) ->
      Printf.sprintf "impair %s loss=%g delay=%gs jitter=%gs dup=%g"
        (site_label s) imp.Channel.loss
        (Time.to_sec imp.Channel.extra_delay)
        (Time.to_sec imp.Channel.jitter)
        imp.Channel.duplicate
  | Clear_impair s -> "clear_impair " ^ site_label s
  | Partition g -> "partition " ^ group_label g
  | Heal g -> "heal " ^ group_label g

(* --- JSON ----------------------------------------------------------- *)

let time_json t = Json.Float (Time.to_sec t)

let site_fields { a; b } = [ ("a", Json.String a); ("b", Json.String b) ]

let event_to_json { at; action } =
  let base = [ ("at", time_json at); ("action", Json.String (action_kind action)) ] in
  let rest =
    match action with
    | Link_down s | Link_up s | Session_reset s | Clear_impair s ->
        site_fields s
    | Node_crash n | Node_restart n -> [ ("node", Json.String n) ]
    | Impair (s, imp) ->
        site_fields s
        @ [
            ("loss", Json.Float imp.Channel.loss);
            ("extra_delay", time_json imp.Channel.extra_delay);
            ("jitter", time_json imp.Channel.jitter);
            ("duplicate", Json.Float imp.Channel.duplicate);
          ]
    | Partition g | Heal g ->
        [ ("group", Json.List (List.map (fun n -> Json.String n) g)) ]
  in
  Json.Obj (base @ rest)

let generator_to_json g =
  let kind_fields =
    match g.g_flavor with
    | Periodic p -> [ ("kind", Json.String "periodic"); ("period", time_json p) ]
    | Poisson r -> [ ("kind", Json.String "poisson"); ("rate", Json.Float r) ]
  in
  Json.Obj
    (site_fields g.g_site @ kind_fields
    @ [
        ("down_for", time_json g.g_down_for);
        ("start", time_json g.g_start);
        ("stop", time_json g.g_stop);
      ])

let to_json t =
  Json.Obj
    [
      ("seed", Json.Int t.seed);
      ("events", Json.List (List.map event_to_json t.events));
      ("generators", Json.List (List.map generator_to_json t.generators));
    ]

let to_string t = Json.to_string (to_json t)

(* Decoding: forgiving on numbers (ints accepted where floats are
   documented), strict on structure. *)
let ( let* ) = Result.bind

let num = function
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float f -> Ok f
  | _ -> Error "expected a number"

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let num_field name j =
  let* v = field name j in
  Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) (num v)

let time_field name j =
  let* s = num_field name j in
  if s < 0.0 then Error (Printf.sprintf "field %S: negative time" name)
  else Ok (Time.of_sec s)

let string_field name j =
  let* v = field name j in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let site_of j =
  let* a = string_field "a" j in
  let* b = string_field "b" j in
  Ok { a; b }

let group_of j =
  let* v = field "group" j in
  match v with
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Json.String s -> Ok (s :: acc)
          | _ -> Error "field \"group\": expected strings")
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "field \"group\": expected a list"

let impairment_of j =
  let opt_num name default =
    match Json.member name j with
    | None -> Ok default
    | Some v ->
        Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) (num v)
  in
  let* loss = opt_num "loss" 0.0 in
  let* duplicate = opt_num "duplicate" 0.0 in
  let* extra_delay = opt_num "extra_delay" 0.0 in
  let* jitter = opt_num "jitter" 0.0 in
  Ok
    {
      Channel.loss;
      duplicate;
      extra_delay = Time.of_sec extra_delay;
      jitter = Time.of_sec jitter;
    }

let event_of j =
  let* at = time_field "at" j in
  let* kind = string_field "action" j in
  let* action =
    match kind with
    | "link_down" ->
        let* s = site_of j in
        Ok (Link_down s)
    | "link_up" ->
        let* s = site_of j in
        Ok (Link_up s)
    | "node_crash" ->
        let* n = string_field "node" j in
        Ok (Node_crash n)
    | "node_restart" ->
        let* n = string_field "node" j in
        Ok (Node_restart n)
    | "session_reset" ->
        let* s = site_of j in
        Ok (Session_reset s)
    | "impair" ->
        let* s = site_of j in
        let* imp = impairment_of j in
        Ok (Impair (s, imp))
    | "clear_impair" ->
        let* s = site_of j in
        Ok (Clear_impair s)
    | "partition" ->
        let* g = group_of j in
        Ok (Partition g)
    | "heal" ->
        let* g = group_of j in
        Ok (Heal g)
    | other -> Error (Printf.sprintf "unknown action %S" other)
  in
  Ok { at; action }

let generator_of j =
  let* site = site_of j in
  let* kind = string_field "kind" j in
  let* flavor =
    match kind with
    | "periodic" ->
        let* p = time_field "period" j in
        if Time.(p <= Time.zero) then Error "field \"period\": must be positive"
        else Ok (Periodic p)
    | "poisson" ->
        let* r = num_field "rate" j in
        if r <= 0.0 then Error "field \"rate\": must be positive"
        else Ok (Poisson r)
    | other -> Error (Printf.sprintf "unknown generator kind %S" other)
  in
  let* down_for = time_field "down_for" j in
  let* start = time_field "start" j in
  let* stop = time_field "stop" j in
  Ok
    {
      g_site = site;
      g_start = start;
      g_stop = stop;
      g_down_for = down_for;
      g_flavor = flavor;
    }

let list_of name of_item j =
  match Json.member name j with
  | None -> Ok []
  | Some (Json.List items) ->
      let rec go acc i = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match of_item item with
            | Ok v -> go (v :: acc) (i + 1) rest
            | Error e ->
                Error (Printf.sprintf "%s[%d]: %s" name i e))
      in
      go [] 0 items
  | Some _ -> Error (Printf.sprintf "field %S: expected a list" name)

let of_json j =
  let* seed =
    match Json.member "seed" j with
    | None -> Ok 0
    | Some (Json.Int i) -> Ok i
    | Some _ -> Error "field \"seed\": expected an integer"
  in
  let* events = list_of "events" event_of j in
  let* generators = list_of "generators" generator_of j in
  Ok { seed; events; generators }

let of_string s =
  let* j = Json.parse s in
  of_json j

let save_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t ^ "\n"))

let load_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error e -> Error e
