lib/ospf/lsdb.mli: Horse_net Ipv4 Ospf_msg Prefix
