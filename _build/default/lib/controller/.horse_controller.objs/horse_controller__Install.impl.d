lib/controller/install.ml: Action Controller Env Horse_openflow Horse_topo List Ofmsg Topology
