open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane
open Horse_controller
open Horse_stats

type te = Bgp_ecmp | Sdn_ecmp | Hedera_gff | Hedera_annealing | P4_ecmp

let te_name = function
  | Bgp_ecmp -> "bgp-ecmp"
  | Sdn_ecmp -> "sdn-ecmp"
  | Hedera_gff -> "hedera-gff"
  | Hedera_annealing -> "hedera-sa"
  | P4_ecmp -> "p4-ecmp"

let all_te = [ Bgp_ecmp; Hedera_gff; Sdn_ecmp ]

type result = {
  te : te;
  pods : int;
  n_hosts : int;
  setup_wall_s : float;
  run_wall_s : float;
  sched_stats : Sched.stats;
  aggregate : Series.t;
  delivered_bits : float;
  offered_bits : float;
  converged_at : Time.t option;
  control_messages : int;
  control_bytes : int;
  flows_started : int;
  registry : Horse_telemetry.Registry.t;
  injector : Horse_faults.Injector.t option;
  fib_fingerprint : string option;
  causal : Causal.t option;
  fib_provenance : (string * Prefix.t * Causal.id) list;
}

(* The demonstration's flow set: one UDP flow per server towards a
   distinct server, distinct ports so 5-tuple hashing has entropy. *)
let demo_keys exp (ft : Fat_tree.t) =
  let pairs = Experiment.permutation_pairs exp ft.Fat_tree.hosts in
  Array.mapi
    (fun i ((src : Topology.node), (dst : Topology.node)) ->
      match (src.Topology.ip, dst.Topology.ip) with
      | Some s, Some d ->
          Flow_key.make ~src:s ~dst:d
            ~src_port:(10000 + (i mod 50000))
            ~dst_port:(20000 + (i mod 40000))
            ()
      | None, _ | _, None -> assert false (* fat-tree hosts have IPs *))
    pairs

type runtime = {
  exp : Experiment.t;
  keys : Flow_key.t array;
  flow_rate : float;
  started : Flow.t Flow_key.Table.t;
  mutable converged_at : Time.t option;
}

let start_flow rt key path =
  if not (Flow_key.Table.mem rt.started key) then begin
    let flow =
      Fluid.start_flow ~demand:rt.flow_rate (Experiment.fluid rt.exp) ~key ~path
    in
    Flow_key.Table.replace rt.started key flow
  end

let mark_converged rt =
  if rt.converged_at = None then
    rt.converged_at <- Some (Sched.now (Experiment.scheduler rt.exp))

(* --- BGP + ECMP (src/dst hash) ------------------------------------- *)

(* SDN fabrics expose link up/down only; expose that subset as a
   fault-injection target so flap plans still apply (crashes and
   impairments are recorded as skipped). *)
let sdn_fault_target fabric (topo : Topology.t) =
  let id name =
    Option.map
      (fun (n : Topology.node) -> n.Topology.id)
      (Topology.node_by_name topo name)
  in
  let with2 a b f =
    match (id a, id b) with Some a, Some b -> f a b | _, _ -> false
  in
  let is_switch (n : Topology.node) =
    match n.Topology.kind with
    | Topology.Switch | Topology.Router -> true
    | Topology.Host -> false
  in
  {
    Horse_faults.Injector.describe = "sdn-fabric";
    link_down = (fun ~a ~b -> with2 a b (fun a b -> Sdn_fabric.fail_link fabric ~a ~b));
    link_up = (fun ~a ~b -> with2 a b (fun a b -> Sdn_fabric.restore_link fabric ~a ~b));
    node_crash = (fun _ -> false);
    node_restart = (fun _ -> false);
    session_reset = (fun ~a:_ ~b:_ -> false);
    impair = (fun ~a:_ ~b:_ ~rng:_ _ -> false);
    links =
      (fun () ->
        List.filter_map
          (fun (l : Topology.link) ->
            if l.Topology.link_id < l.Topology.peer then
              let src = Topology.node topo l.Topology.src in
              let dst = Topology.node topo l.Topology.dst in
              if is_switch src && is_switch dst then
                Some (src.Topology.name, dst.Topology.name)
              else None
            else None)
          (Topology.links topo));
    converged = (fun () -> Sdn_fabric.pending_flows fabric = 0);
  }

let setup_bgp rt (ft : Fat_tree.t) =
  let half = ft.Fat_tree.k / 2 in
  let edge_prefix = Hashtbl.create 64 in
  Array.iteri
    (fun pod edges ->
      Array.iteri
        (fun e (edge : Topology.node) ->
          Hashtbl.replace edge_prefix edge.Topology.id
            [ Prefix.make (Ipv4.of_octets 10 pod e 0) 24 ])
        edges)
    ft.Fat_tree.edges;
  ignore half;
  let fabric =
    Routed_fabric.build ~cm:(Experiment.cm rt.exp)
      ~originate:(fun node ->
        Option.value (Hashtbl.find_opt edge_prefix node) ~default:[])
      ft.Fat_tree.topo
  in
  Experiment.at rt.exp Time.zero (fun () -> Routed_fabric.start fabric);
  Routed_fabric.when_converged fabric (fun () ->
      mark_converged rt;
      Array.iter
        (fun key ->
          match Routed_fabric.path_for fabric key with
          | Ok path -> start_flow rt key path
          | Error msg ->
              Trace.addf (Experiment.trace rt.exp)
                ~at:(Sched.now (Experiment.scheduler rt.exp))
                ~label:"scenario" "flow %a unroutable: %s" Flow_key.pp key msg)
        rt.keys);
  ( Some (Routed_fabric.fault_target fabric),
    Some (fun () -> Routed_fabric.fib_fingerprint fabric),
    Some (fun () -> Routed_fabric.fib_provenance fabric) )

(* --- SDN (reactive controller) -------------------------------------- *)

let setup_sdn ?classifier rt (ft : Fat_tree.t) te =
  let fabric =
    Sdn_fabric.build ?classifier ~cm:(Experiment.cm rt.exp)
      ~fluid:(Experiment.fluid rt.exp) ft.Fat_tree.topo
  in
  let ctrl = Sdn_fabric.controller fabric in
  let env = Sdn_fabric.env fabric in
  let on_app_reroute key path =
    match Flow_key.Table.find_opt rt.started key with
    | None -> ()
    | Some flow ->
        let sched = Experiment.scheduler rt.exp in
        ignore
          (Sched.schedule_after sched (Time.of_ms 2) (fun () ->
               if flow.Flow.active then
                 Fluid.set_path (Experiment.fluid rt.exp) flow path))
  in
  (match te with
  | Sdn_ecmp ->
      let app = App_ecmp.install ~mode:App_ecmp.Five_tuple ctrl env in
      App_ecmp.on_reroute app on_app_reroute
  | Hedera_gff | Hedera_annealing ->
      let placer =
        match te with
        | Hedera_annealing -> App_hedera.Annealing
        | Hedera_gff | Sdn_ecmp | Bgp_ecmp | P4_ecmp -> App_hedera.Gff
      in
      let app = App_hedera.install ~placer ctrl env in
      (* The scheduler's FLOW_MODs take one channel latency to land in
         the tables; move the fluid flow onto the new path once they
         have. *)
      App_hedera.on_reroute app on_app_reroute
  | Bgp_ecmp | P4_ecmp -> invalid_arg "setup_sdn: not an OpenFlow scenario");
  (* Give the OpenFlow handshake a head start, then launch all flows;
     each resolves via PACKET_IN round trips. *)
  let n = Array.length rt.keys in
  Experiment.at rt.exp (Time.of_ms 10) (fun () ->
      Array.iter
        (fun key ->
          Sdn_fabric.route_flow fabric key ~on_ready:(fun path ->
              start_flow rt key path;
              if Flow_key.Table.length rt.started = n then mark_converged rt))
        rt.keys);
  (Some (sdn_fault_target fabric ft.Fat_tree.topo), None, None)

(* --- P4 (programmable pipelines) ------------------------------------- *)

let setup_p4 rt (ft : Fat_tree.t) =
  let fabric =
    match P4_fabric.build ~cm:(Experiment.cm rt.exp) ft.Fat_tree.topo with
    | Ok fabric -> fabric
    | Error msg -> invalid_arg ("setup_p4: " ^ msg)
  in
  Experiment.at rt.exp Time.zero (fun () -> P4_fabric.program_routes fabric);
  P4_fabric.when_programmed fabric (fun () ->
      mark_converged rt;
      Array.iter
        (fun key ->
          match P4_fabric.path_for fabric key with
          | Ok path -> start_flow rt key path
          | Error msg ->
              Trace.addf (Experiment.trace rt.exp)
                ~at:(Sched.now (Experiment.scheduler rt.exp))
                ~label:"scenario" "flow %a unroutable: %s" Flow_key.pp key msg)
        rt.keys);
  (None, None, None)

(* --- entry point ----------------------------------------------------- *)

let run_fat_tree_te ?(seed = 42) ?(sample_every = Time.of_ms 500) ?config
    ?(flow_rate = 1e9) ?faults ?classifier ~pods ~te ~duration () =
  let (rt, injector, fingerprint, provenance), setup_wall_s =
    Wall.time (fun () ->
        let ft = Fat_tree.build ~k:pods () in
        let exp = Experiment.create ?config ~seed ft.Fat_tree.topo in
        let rt =
          {
            exp;
            keys = demo_keys exp ft;
            flow_rate;
            started = Flow_key.Table.create 256;
            converged_at = None;
          }
        in
        let target, fingerprint, provenance =
          Sched.with_span (Experiment.scheduler exp) ~name:"setup" (fun () ->
              match te with
              | Bgp_ecmp -> setup_bgp rt ft
              | P4_ecmp -> setup_p4 rt ft
              | Sdn_ecmp | Hedera_gff | Hedera_annealing ->
                  setup_sdn ?classifier rt ft te)
        in
        let injector =
          match (faults, target) with
          | None, _ -> None
          | Some plan, Some target ->
              Some
                (Horse_faults.Injector.arm
                   (Experiment.scheduler exp)
                   ~target plan)
          | Some _, None ->
              invalid_arg
                (Printf.sprintf "run_fat_tree_te: %s has no fault target"
                   (te_name te))
        in
        Fluid.start_sampling (Experiment.fluid exp) ~every:sample_every;
        (rt, injector, fingerprint, provenance))
  in
  let sched_stats, run_wall_s =
    Wall.time (fun () -> Experiment.run ~until:duration rt.exp)
  in
  let fluid = Experiment.fluid rt.exp in
  let delivered_bits = Fluid.total_delivered_bits fluid in
  let n_hosts = Array.length rt.keys in
  {
    te;
    pods;
    n_hosts;
    setup_wall_s;
    run_wall_s;
    sched_stats;
    aggregate = Fluid.aggregate_series fluid;
    delivered_bits;
    offered_bits = float_of_int n_hosts *. flow_rate *. Time.to_sec duration;
    converged_at = rt.converged_at;
    control_messages = Connection_manager.messages_observed (Experiment.cm rt.exp);
    control_bytes = Connection_manager.bytes_observed (Experiment.cm rt.exp);
    flows_started = Flow_key.Table.length rt.started;
    registry = Experiment.registry rt.exp;
    injector;
    fib_fingerprint = Option.map (fun f -> f ()) fingerprint;
    causal = Sched.causal (Experiment.scheduler rt.exp);
    fib_provenance =
      (match provenance with Some f -> f () | None -> []);
  }

(* --- Million-user CDN/anycast workload on the WAN -------------------- *)

type megauser_result = {
  mu_cities : int;
  mu_sites : int;
  mu_classes_started : int;
  mu_classes_peak : int;
  mu_users_peak : int;
  mu_events : int;
  mu_reroutes : int;
  mu_solves : int;
  mu_solve_work : int;
  mu_delta : Fair_share.Delta.stats option;
  mu_setup_wall_s : float;
  mu_run_wall_s : float;
  mu_delivered_bits : float;
  mu_aggregate : Series.t;
  mu_sched_stats : Sched.stats;
  mu_registry : Horse_telemetry.Registry.t;
}

(* One traffic-matrix cell: users in [city] consuming [content]'s
   service, served from the anycast [served_by] replica. The cell's
   aggregate demand is carved into [k] flow classes that arrive and
   depart with the city's diurnal cycle. *)
type mu_cell = {
  mc_city : int;
  mc_content : int;
  mc_k : int;
  mc_demand : float;  (* per class, bps *)
  mc_users : int;  (* per class *)
  mutable mc_served_by : int;
  mutable mc_active : Flow.t list;  (* newest first *)
  mutable mc_seq : int;
}

let run_wan_megauser ?(seed = 42) ?config ?(solver = Fluid.Delta)
    ?(eager = false) ?wan ?(classes = 20_000) ?(users = 1_000_000)
    ?(user_demand = 150e3) ?(headroom = 1.1) ?(sites = 3) ?(ticks = 48)
    ?(sample_every = Time.of_ms 500) ?(duration = Time.of_sec 60.0) () =
  let wan = match wan with Some w -> w | None -> Wan.abilene () in
  let n_cities = Array.length wan.Wan.routers in
  if sites < 1 || sites > n_cities then
    invalid_arg "run_wan_megauser: sites outside [1, cities]";
  if classes < 1 then invalid_arg "run_wan_megauser: classes < 1";
  if ticks < 1 then invalid_arg "run_wan_megauser: ticks < 1";
  let state, setup_wall_s =
    Wall.time (fun () ->
        let topo = wan.Wan.topo in
        let hosts = Wan.attach_hosts ~capacity:40e9 wan in
        let sched = Sched.create ?config () in
        let fluid = Fluid.create ~eager ~solver sched topo in
        ignore seed;
        (* Anycast replicas: site cities spread across the index range
           (for Abilene that is roughly west-to-east). *)
        let site_city = Array.init sites (fun s -> s * n_cities / sites) in
        let site_tree =
          Array.map
            (fun c -> Spf.shortest_tree topo ~src:hosts.(c).Topology.id)
            site_city
        in
        (* Per city: replica sites ranked by shortest-path distance. *)
        let ranked =
          Array.init n_cities (fun c ->
              let ds =
                Array.mapi
                  (fun s tree ->
                    ( Option.value
                        (Spf.distance tree hosts.(c).Topology.id)
                        ~default:max_int,
                      s ))
                  site_tree
              in
              Array.sort compare ds;
              Array.map snd ds)
        in
        let path_from_site s c =
          if site_city.(s) = c then [] (* served in-city: unconstrained *)
          else
            Option.value
              (Spf.first_path site_tree.(s) topo ~dst:hosts.(c).Topology.id)
              ~default:[]
        in
        (* Gravity traffic matrix over the cities; cell (i, j) is city
           i's users consuming content j, delivered from i's nearest
           replica. *)
        let masses = Traffic_matrix.zipf_masses n_cities in
        let total_demand = float_of_int users *. user_demand in
        let tm = Traffic_matrix.gravity ~total:total_demand ~masses in
        let cells = ref [] in
        Traffic_matrix.iter tm (fun ~src ~dst d ->
            let k =
              max 1
                (int_of_float
                   (Float.round (float_of_int classes *. d /. total_demand)))
            in
            cells :=
              {
                mc_city = src;
                mc_content = dst;
                mc_k = k;
                mc_demand = d /. float_of_int k;
                mc_users =
                  max 1
                    (int_of_float
                       (Float.round
                          (float_of_int users *. d /. total_demand
                          /. float_of_int k)));
                mc_served_by = ranked.(src).(0);
                mc_active = [];
                mc_seq = 0;
              }
              :: !cells);
        let cells = Array.of_list (List.rev !cells) in
        (* Capacity planning: size every link for its expected peak
           load plus headroom, the way operators provision a WAN
           against a forecast matrix. The diurnal swing then rides
           within plan — the delta solver's fast path proves the
           bottleneck set never moves — while the unplanned mid-day
           site drain concentrates load onto paths sized for someone
           else's traffic and genuinely saturates them. *)
        let expected : (int, float) Hashtbl.t = Hashtbl.create 64 in
        Array.iter
          (fun (cell : mu_cell) ->
            let agg = float_of_int cell.mc_k *. cell.mc_demand in
            List.iter
              (fun (l : Topology.link) ->
                let cur =
                  Option.value
                    (Hashtbl.find_opt expected l.Topology.link_id)
                    ~default:0.0
                in
                Hashtbl.replace expected l.Topology.link_id (cur +. agg))
              (path_from_site cell.mc_served_by cell.mc_city))
          cells;
        Hashtbl.iter
          (fun lid load ->
            let l = Topology.link topo lid in
            if l.Topology.capacity < headroom *. load then
              Topology.set_capacity topo lid (headroom *. load))
          expected;
        let duration_s = Time.to_sec duration in
        let phase_of c =
          (* Time-zone spread: a quarter-cycle of phase across the
             city list, west to east. *)
          0.25 *. float_of_int c /. float_of_int (max 1 (n_cities - 1))
        in
        let reroutes = ref 0 in
        let classes_peak = ref 0 and users_peak = ref 0 in
        let start_class (cell : mu_cell) =
          let city_host = hosts.(cell.mc_city) in
          let site_host = hosts.(site_city.(cell.mc_served_by)) in
          match (site_host.Topology.ip, city_host.Topology.ip) with
          | Some src, Some dst ->
              let key =
                Flow_key.make ~src ~dst
                  ~src_port:(8000 + (cell.mc_content mod 50000))
                  ~dst_port:(10000 + (cell.mc_seq mod 50000))
                  ()
              in
              cell.mc_seq <- cell.mc_seq + 1;
              let path = path_from_site cell.mc_served_by cell.mc_city in
              let f =
                Fluid.start_flow ~demand:cell.mc_demand ~users:cell.mc_users
                  fluid ~key ~path
              in
              cell.mc_active <- f :: cell.mc_active
          | None, _ | _, None -> assert false (* WAN hosts have IPs *)
        in
        let stop_class (cell : mu_cell) =
          match cell.mc_active with
          | [] -> ()
          | f :: rest ->
              cell.mc_active <- rest;
              Fluid.stop_flow fluid f
        in
        let tick_dt = duration_s /. float_of_int ticks in
        let tick m =
          let t_s = float_of_int m *. tick_dt in
          let now = Sched.now sched in
          Array.iter
            (fun (cell : mu_cell) ->
              let f =
                Traffic_matrix.diurnal_factor ~period_s:duration_s
                  ~phase:(phase_of cell.mc_city) t_s
              in
              let target =
                max 0
                  (int_of_float (Float.round (float_of_int cell.mc_k *. f)))
              in
              let cur = List.length cell.mc_active in
              let delta = target - cur in
              (* Spread the cell's arrivals/departures across the tick
                 window so each is its own solve instant. *)
              for j = 0 to abs delta - 1 do
                let at =
                  Time.add now
                    (Time.of_sec
                       (tick_dt
                       *. float_of_int (j + 1)
                       /. float_of_int (abs delta + 1)))
                in
                ignore
                  (Sched.schedule_at sched at (fun () ->
                       if delta > 0 then start_class cell else stop_class cell))
              done)
            cells;
          classes_peak := max !classes_peak (Fluid.flow_count fluid);
          users_peak := max !users_peak (Fluid.active_users fluid)
        in
        for m = 0 to ticks - 1 do
          ignore
            (Sched.schedule_at sched
               (Time.of_sec (float_of_int m *. tick_dt))
               (fun () -> tick m))
        done;
        (* Anycast steering: halfway through the day the busiest
           replica drains for maintenance, and every cell it serves is
           steered to the city's next-nearest site — a reroute storm
           that pushes its load onto paths planned for someone else's
           traffic. The site returns at 5/8 of the day and traffic is
           steered home, so the congested regime is a bounded window,
           as a real maintenance drain is. *)
        (if sites > 1 then begin
           let drained = ref [] in
           let drain () =
             let served = Array.make sites 0 in
             Array.iter
               (fun (c : mu_cell) ->
                 served.(c.mc_served_by) <-
                   served.(c.mc_served_by) + List.length c.mc_active)
               cells;
             let busiest = ref 0 in
             Array.iteri
               (fun s n -> if n > served.(!busiest) then busiest := s)
               served;
             Array.iter
               (fun (cell : mu_cell) ->
                 if cell.mc_served_by = !busiest then begin
                   let alt =
                     Array.fold_left
                       (fun acc s -> if acc = -1 && s <> !busiest then s else acc)
                       (-1) ranked.(cell.mc_city)
                   in
                   drained := (cell, !busiest) :: !drained;
                   cell.mc_served_by <- alt;
                   let path = path_from_site alt cell.mc_city in
                   List.iter
                     (fun f ->
                       if f.Flow.active then begin
                         Fluid.set_path fluid f path;
                         incr reroutes
                       end)
                     cell.mc_active
                 end)
               cells
           in
           let restore () =
             List.iter
               (fun ((cell : mu_cell), home) ->
                 cell.mc_served_by <- home;
                 let path = path_from_site home cell.mc_city in
                 List.iter
                   (fun f ->
                     if f.Flow.active then begin
                       Fluid.set_path fluid f path;
                       incr reroutes
                     end)
                   cell.mc_active)
               !drained;
             drained := []
           in
           ignore
             (Sched.schedule_at sched
                (Time.of_sec (duration_s /. 2.0))
                (fun () -> drain ()));
           ignore
             (Sched.schedule_at sched
                (Time.of_sec (duration_s *. 0.625))
                (fun () -> restore ()))
         end);
        Fluid.start_sampling fluid ~every:sample_every;
        (sched, fluid, reroutes, classes_peak, users_peak))
  in
  let sched, fluid, reroutes, classes_peak, users_peak = state in
  let sched_stats, run_wall_s =
    Wall.time (fun () -> Sched.run ~until:duration sched)
  in
  {
    mu_cities = n_cities;
    mu_sites = sites;
    mu_classes_started =
      Fluid.flow_count fluid + Fluid.completed_flow_count fluid;
    mu_classes_peak = !classes_peak;
    mu_users_peak = !users_peak;
    mu_events = Fluid.recompute_requests fluid;
    mu_reroutes = !reroutes;
    mu_solves = Fluid.recompute_count fluid;
    mu_solve_work = Fluid.solve_work fluid;
    mu_delta = Fluid.delta_stats fluid;
    mu_setup_wall_s = setup_wall_s;
    mu_run_wall_s = run_wall_s;
    mu_delivered_bits = Fluid.total_delivered_bits fluid;
    mu_aggregate = Fluid.aggregate_series fluid;
    mu_sched_stats = sched_stats;
    mu_registry = Sched.registry sched;
  }

let pp_megauser_result fmt r =
  Format.fprintf fmt
    "@[<v>megauser: %d cities, %d sites, %d classes started (peak %d, %d \
     users)@,\
     %d events (%d reroutes) -> %d solves, %d flows of solve work (%.1f per \
     event)@,\
     setup %.3fs wall, run %.3fs wall; delivered %.4g bits, mean aggregate \
     %.2f Gbps@]"
    r.mu_cities r.mu_sites r.mu_classes_started r.mu_classes_peak
    r.mu_users_peak r.mu_events r.mu_reroutes r.mu_solves r.mu_solve_work
    (float_of_int r.mu_solve_work /. float_of_int (max 1 r.mu_events))
    r.mu_setup_wall_s r.mu_run_wall_s r.mu_delivered_bits
    (Series.mean r.mu_aggregate /. 1e9)

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>%s pods=%d hosts=%d@,\
     setup %.3fs wall, run %.3fs wall for %a virtual@,\
     converged at %s; %d/%d flows; %d control msgs (%d bytes)@,\
     delivered %.4g bits (%.1f%% of offered)@,\
     mean aggregate rate %.3f Gbps@]"
    (te_name r.te) r.pods r.n_hosts r.setup_wall_s r.run_wall_s Time.pp
    r.sched_stats.Sched.end_time
    (match r.converged_at with
    | Some at -> Format.asprintf "%a" Time.pp at
    | None -> "never")
    r.flows_started r.n_hosts r.control_messages r.control_bytes
    r.delivered_bits
    (100.0 *. r.delivered_bits /. Float.max 1.0 r.offered_bits)
    (Series.mean r.aggregate /. 1e9)
