(** Hash-consing of BGP path attributes.

    A speaker sees the same attribute record thousands of times — once
    per prefix per peer — and the decision process, update-group
    keying and Adj-RIB-Out grouping all compare attributes. Interning
    maps every structurally equal {!Msg.attrs} to one shared
    {!interned} handle carrying a precomputed hash, the cached AS-path
    length, and a dense [uid], so those comparisons become integer
    equality instead of list walks. The table is per speaker (attrs
    never migrate between speakers' tables). *)

type interned = private {
  attrs : Msg.attrs;  (** the canonical (shared) record *)
  hash : int;  (** {!Msg.attrs_hash} of [attrs] *)
  path_len : int;  (** [List.length attrs.as_path] *)
  uid : int;  (** dense, unique within one table *)
}

type t

val create : ?on_hit:(unit -> unit) -> ?on_miss:(unit -> unit) -> unit -> t
(** The callbacks let the owner feed telemetry counters without this
    module depending on the registry. *)

val intern : t -> Msg.attrs -> interned
(** O(1) expected (one structural hash + one bucket probe). *)

val equal : interned -> interned -> bool
(** O(1): uid comparison — valid only for handles from one table. *)

val size : t -> int
(** Distinct attribute records interned so far. *)

val hits : t -> int
