open Horse_engine

type t = {
  proc_name : string;
  sched : Sched.t;
  mutable alive : bool;
  mutable recurrings : Sched.recurring list;
  mutable pollers : Sched.poller list;  (* persistent across restarts *)
  mutable kill_hooks : (unit -> unit) list;  (* reversed; persistent *)
  mutable restart_hooks : (unit -> unit) list;  (* reversed; persistent *)
}

let alive_gauge sched =
  Horse_telemetry.Registry.gauge
    (Sched.registry sched)
    ~subsystem:"emulation" ~help:"Emulated processes currently alive"
    "alive_processes"

let restarts_counter sched =
  Horse_telemetry.Registry.counter
    (Sched.registry sched)
    ~subsystem:"emulation" ~help:"Emulated process restarts"
    "process_restarts_total"

let create sched ~name =
  Horse_telemetry.Registry.Gauge.add (alive_gauge sched) 1.0;
  {
    proc_name = name;
    sched;
    alive = true;
    recurrings = [];
    pollers = [];
    kill_hooks = [];
    restart_hooks = [];
  }

let name t = t.proc_name
let scheduler t = t.sched
let is_alive t = t.alive

let after t delay f =
  ignore
    (Sched.schedule_after t.sched delay (fun () -> if t.alive then f ()))

let every t ?start_after period f =
  let r = Sched.every t.sched ?start_after period (fun () -> if t.alive then f ()) in
  t.recurrings <- r :: t.recurrings;
  r

let tick t f =
  let m_ticks =
    Horse_telemetry.Registry.counter
      (Sched.registry t.sched)
      ~subsystem:"emulation" ~help:"FTI poller invocations across processes"
      "poll_ticks_total"
  in
  let p =
    Sched.add_poller ~name:t.proc_name t.sched (fun () ->
        if t.alive then begin
          Horse_telemetry.Registry.Counter.incr m_ticks;
          f ()
        end
        else
          (* A dead process has nothing to poll for until some input —
             a restart, or a message queued for its revival — shows
             up. *)
          Sched.Wake_on_input)
  in
  t.pollers <- p :: t.pollers

(* Input arrived (or the process respawned): give its pollers their
   quantum again. Idempotent and cheap, so delivery paths call it
   unconditionally. *)
let wake t = List.iter Sched.wake_poller t.pollers

let on_kill t f = t.kill_hooks <- f :: t.kill_hooks
let on_restart t f = t.restart_hooks <- f :: t.restart_hooks

(* Hooks persist across kill/restart cycles, so a daemon registered
   once at creation keeps cleaning up and re-arming on every crash. *)
let kill t =
  if t.alive then begin
    t.alive <- false;
    Horse_telemetry.Registry.Gauge.add (alive_gauge t.sched) (-1.0);
    List.iter Sched.cancel_recurring t.recurrings;
    t.recurrings <- [];
    List.iter (fun f -> f ()) (List.rev t.kill_hooks)
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    Horse_telemetry.Registry.Gauge.add (alive_gauge t.sched) 1.0;
    Horse_telemetry.Registry.Counter.incr (restarts_counter t.sched);
    wake t;
    List.iter (fun f -> f ()) (List.rev t.restart_hooks)
  end
