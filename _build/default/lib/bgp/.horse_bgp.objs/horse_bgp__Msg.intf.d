lib/bgp/msg.mli: Bytes Format Horse_net Ipv4 Prefix
