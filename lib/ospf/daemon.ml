open Horse_net
open Horse_engine
open Horse_emulation

type config = {
  router_id : Ipv4.t;
  hello_interval : Time.t;
  dead_interval : Time.t;
  stub_prefixes : (Prefix.t * int) list;
  spf_delay : Time.t;
  processing_delay : Time.t;
}

let default_config ~router_id =
  {
    router_id;
    hello_interval = Time.of_sec 2.0;
    dead_interval = Time.of_sec 8.0;
    stub_prefixes = [];
    spf_delay = Time.of_ms 10;
    processing_delay = Time.of_us 50;
  }

type neighbor_state = Down | Init | Full

let pp_neighbor_state fmt s =
  Format.pp_print_string fmt
    (match s with Down -> "Down" | Init -> "Init" | Full -> "Full")

type iface = {
  iface_id : int;
  mutable endpoint : Channel.endpoint;
  metric : int;
  mutable nbr_id : Ipv4.t option;
  mutable nbr_state : neighbor_state;
  mutable last_hello : Time.t;
  mutable dead_ev : Event_queue.handle option;
      (* per-interface dead-interval deadline, re-aimed on every hello *)
}

type counters = {
  hellos_sent : int;
  hellos_received : int;
  updates_sent : int;
  updates_received : int;
  acks_sent : int;
  spf_runs : int;
  lsa_originations : int;
}

module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge

(* Shared registry handles: aggregates across every daemon on the
   same scheduler, labeled by direction and message type. *)
type metrics = {
  tx_hello : Counter.t;
  tx_update : Counter.t;
  tx_ack : Counter.t;
  rx_hello : Counter.t;
  rx_update : Counter.t;
  m_spf : Counter.t;
  m_originations : Counter.t;
  g_full : Gauge.t;
}

let make_metrics reg =
  let msg dir ty =
    Registry.counter reg ~subsystem:"ospf"
      ~help:"OSPF messages by direction and type"
      ~labels:[ ("dir", dir); ("type", ty) ]
      "messages_total"
  in
  {
    tx_hello = msg "tx" "hello";
    tx_update = msg "tx" "ls_update";
    tx_ack = msg "tx" "ls_ack";
    rx_hello = msg "rx" "hello";
    rx_update = msg "rx" "ls_update";
    m_spf =
      Registry.counter reg ~subsystem:"ospf" ~help:"SPF recomputations"
        "spf_runs_total";
    m_originations =
      Registry.counter reg ~subsystem:"ospf" ~help:"Router-LSA originations"
        "lsa_originations_total";
    g_full =
      Registry.gauge reg ~subsystem:"ospf"
        ~help:"Adjacencies currently in state Full" "full_adjacencies";
  }

type t = {
  proc : Process.t;
  cfg : config;
  db : Lsdb.t;
  trace : Trace.t option;
  m : metrics;
  mutable ifaces : iface list;  (* reversed *)
  mutable next_iface : int;
  mutable seq : int;
  mutable started : bool;
  mutable spf_pending : bool;
  mutable route_cache : Lsdb.route list;
  mutable route_hooks : (Lsdb.route list -> unit) list;
  mutable nbr_hooks : (int -> neighbor_state -> unit) list;
  mutable hellos_sent : int;
  mutable hellos_received : int;
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable acks_sent : int;
  mutable spf_runs : int;
  mutable lsa_originations : int;
}

let now t = Sched.now (Process.scheduler t.proc)

let tracef t fmt =
  match t.trace with
  | Some trace -> Trace.addf trace ~at:(now t) ~label:"ospf" fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let router_id t = t.cfg.router_id
let lsdb t = t.db
let iface_list t = List.rev t.ifaces

let find_iface t id =
  match List.find_opt (fun i -> i.iface_id = id) t.ifaces with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Ospf.Daemon: unknown interface %d" id)

let neighbor_state t id = (find_iface t id).nbr_state

let full_neighbors t =
  List.length (List.filter (fun i -> i.nbr_state = Full) t.ifaces)

let interface_of_neighbor t rid =
  List.find_map
    (fun i ->
      match i.nbr_id with
      | Some r when Ipv4.equal r rid && i.nbr_state = Full -> Some i.iface_id
      | Some _ | None -> None)
    t.ifaces

let routes t = t.route_cache
let on_routes_change t f = t.route_hooks <- t.route_hooks @ [ f ]
let on_neighbor_change t f = t.nbr_hooks <- t.nbr_hooks @ [ f ]

let counters t =
  {
    hellos_sent = t.hellos_sent;
    hellos_received = t.hellos_received;
    updates_sent = t.updates_sent;
    updates_received = t.updates_received;
    acks_sent = t.acks_sent;
    spf_runs = t.spf_runs;
    lsa_originations = t.lsa_originations;
  }

(* --- sending --------------------------------------------------------- *)

let send t iface msg =
  (match msg with
  | Ospf_msg.Hello _ ->
      t.hellos_sent <- t.hellos_sent + 1;
      Counter.incr t.m.tx_hello
  | Ospf_msg.Ls_update _ ->
      t.updates_sent <- t.updates_sent + 1;
      Counter.incr t.m.tx_update
  | Ospf_msg.Ls_ack _ ->
      t.acks_sent <- t.acks_sent + 1;
      Counter.incr t.m.tx_ack);
  Channel.send iface.endpoint (Ospf_msg.encode ~router_id:t.cfg.router_id msg)

let send_hello t iface =
  send t iface
    (Ospf_msg.Hello
       {
         hello_interval_s = int_of_float (Time.to_sec t.cfg.hello_interval);
         dead_interval_s = int_of_float (Time.to_sec t.cfg.dead_interval);
         neighbors = Option.to_list iface.nbr_id;
       })

let flood t ?except lsas =
  List.iter
    (fun iface ->
      if iface.nbr_state = Full && Some iface.iface_id <> except then
        send t iface (Ospf_msg.Ls_update lsas))
    t.ifaces

(* --- SPF scheduling --------------------------------------------------- *)

let routes_equal a b =
  List.equal
    (fun (x : Lsdb.route) y ->
      Prefix.equal x.Lsdb.prefix y.Lsdb.prefix
      && x.Lsdb.cost = y.Lsdb.cost
      && List.equal Ipv4.equal x.Lsdb.next_hops y.Lsdb.next_hops)
    a b

let run_spf t =
  t.spf_pending <- false;
  t.spf_runs <- t.spf_runs + 1;
  Counter.incr t.m.m_spf;
  let fresh = Lsdb.routes t.db ~self:t.cfg.router_id in
  if not (routes_equal fresh t.route_cache) then begin
    t.route_cache <- fresh;
    tracef t "routing table changed: %d routes" (List.length fresh);
    Sched.protect_cause (Process.scheduler t.proc) (fun () ->
        ignore
          (Sched.cause_point (Process.scheduler t.proc) ~kind:"ospf:spf"
             (fun () -> Printf.sprintf "%d routes" (List.length fresh)));
        List.iter (fun f -> f fresh) t.route_hooks)
  end

let schedule_spf t =
  if not t.spf_pending then begin
    t.spf_pending <- true;
    Process.after t.proc t.cfg.spf_delay (fun () -> run_spf t)
  end

(* --- LSA origination --------------------------------------------------- *)

let originate t =
  t.seq <- t.seq + 1;
  t.lsa_originations <- t.lsa_originations + 1;
  Counter.incr t.m.m_originations;
  let p2p =
    List.filter_map
      (fun iface ->
        match (iface.nbr_state, iface.nbr_id) with
        | Full, Some neighbor ->
            Some (Ospf_msg.Point_to_point { neighbor; metric = iface.metric })
        | (Full | Init | Down), _ -> None)
      (iface_list t)
  in
  let stubs =
    List.map
      (fun (prefix, metric) -> Ospf_msg.Stub { prefix; metric })
      t.cfg.stub_prefixes
  in
  let lsa =
    { Ospf_msg.adv_router = t.cfg.router_id; seq = t.seq; links = p2p @ stubs }
  in
  ignore (Lsdb.install t.db lsa);
  flood t [ lsa ];
  schedule_spf t

(* --- receiving ---------------------------------------------------------- *)

let set_neighbor_state t iface state =
  if iface.nbr_state <> state then begin
    ignore
      (Sched.cause_point (Process.scheduler t.proc) ~kind:"ospf:adj"
         (fun () ->
           Format.asprintf "iface %d -> %a" iface.iface_id pp_neighbor_state
             state));
    tracef t "interface %d neighbor %s -> %a" iface.iface_id
      (match iface.nbr_id with Some r -> Ipv4.to_string r | None -> "?")
      pp_neighbor_state state;
    if iface.nbr_state = Full then Gauge.add t.m.g_full (-1.0)
    else if state = Full then Gauge.add t.m.g_full 1.0;
    iface.nbr_state <- state;
    List.iter (fun f -> f iface.iface_id state) t.nbr_hooks
  end

(* Neighbour liveness: one deadline event per interface at
   [last_hello + dead_interval], re-aimed in place by every hello —
   replaces the shared sweep that used to piggyback on the hello
   timer, so a healthy adjacency costs no polling between hellos. *)
let rec arm_dead t iface =
  let deadline = Time.add iface.last_hello t.cfg.dead_interval in
  let sched = Process.scheduler t.proc in
  match iface.dead_ev with
  | Some h -> Sched.reschedule sched h deadline
  | None ->
      iface.dead_ev <-
        Some (Sched.schedule_at sched deadline (fun () -> dead_expired t iface))

and dead_expired t iface =
  if Process.is_alive t.proc && iface.nbr_state <> Down then
    if Time.(Time.sub (now t) iface.last_hello >= t.cfg.dead_interval) then begin
      let was_full = iface.nbr_state = Full in
      set_neighbor_state t iface Down;
      if was_full then originate t
    end
    else
      (* A hello raced the deadline without re-aiming it (defensive;
         handle_hello re-arms): aim at the true deadline. *)
      arm_dead t iface

let handle_hello t iface sender (h : Ospf_msg.hello) =
  t.hellos_received <- t.hellos_received + 1;
  Counter.incr t.m.rx_hello;
  iface.last_hello <- now t;
  arm_dead t iface;
  iface.nbr_id <- Some sender;
  let sees_us = List.exists (Ipv4.equal t.cfg.router_id) h.Ospf_msg.neighbors in
  match (iface.nbr_state, sees_us) with
  | Full, true -> ()
  | (Down | Init), true ->
      set_neighbor_state t iface Full;
      (* Adjacency up: re-originate (the new link) and synchronise the
         new neighbour with our whole database. *)
      originate t;
      let db = Lsdb.lsas t.db in
      if db <> [] then send t iface (Ospf_msg.Ls_update db)
  | (Down | Init | Full), false -> set_neighbor_state t iface Init

let handle_update t iface lsas =
  t.updates_received <- t.updates_received + 1;
  Counter.incr t.m.rx_update;
  ignore
    (Sched.cause_point (Process.scheduler t.proc) ~kind:"ospf:lsa" (fun () ->
         Printf.sprintf "%d LSAs via iface %d" (List.length lsas)
           iface.iface_id));
  let to_ack = ref [] in
  List.iter
    (fun (lsa : Ospf_msg.lsa) ->
      (* Never accept somebody else's version of our own LSA. *)
      if not (Ipv4.equal lsa.Ospf_msg.adv_router t.cfg.router_id) then begin
        match Lsdb.install t.db lsa with
        | Lsdb.Newer ->
            to_ack := (lsa.Ospf_msg.adv_router, lsa.Ospf_msg.seq) :: !to_ack;
            flood t ~except:iface.iface_id [ lsa ];
            schedule_spf t
        | Lsdb.Duplicate ->
            to_ack := (lsa.Ospf_msg.adv_router, lsa.Ospf_msg.seq) :: !to_ack
        | Lsdb.Older -> ()
      end)
    lsas;
  if !to_ack <> [] then send t iface (Ospf_msg.Ls_ack (List.rev !to_ack))

let handle t iface sender msg =
  match (msg : Ospf_msg.t) with
  | Ospf_msg.Hello h -> handle_hello t iface sender h
  | Ospf_msg.Ls_update lsas -> handle_update t iface lsas
  | Ospf_msg.Ls_ack _ -> () (* channels are reliable; no retransmit state *)

let receive t iface bytes =
  if Process.is_alive t.proc then
    let process () =
      match Ospf_msg.decode bytes with
      | Ok (sender, msg) -> handle t iface sender msg
      | Error err -> tracef t "decode error: %s" err
    in
    if Time.equal t.cfg.processing_delay Time.zero then process ()
    else Process.after t.proc t.cfg.processing_delay process

(* --- lifecycle ------------------------------------------------------------ *)

let create ?trace proc cfg =
  {
    proc;
    cfg;
    db = Lsdb.create ();
    trace;
    m = make_metrics (Sched.registry (Process.scheduler proc));
    ifaces = [];
    next_iface = 0;
    seq = 0;
    started = false;
    spf_pending = false;
    route_cache = [];
    route_hooks = [];
    nbr_hooks = [];
    hellos_sent = 0;
    hellos_received = 0;
    updates_sent = 0;
    updates_received = 0;
    acks_sent = 0;
    spf_runs = 0;
    lsa_originations = 0;
  }

let bind_iface t iface endpoint =
  iface.endpoint <- endpoint;
  Channel.set_receiver endpoint (fun bytes -> receive t iface bytes);
  Channel.set_wake endpoint (fun () -> Process.wake t.proc);
  Channel.set_on_close endpoint (fun () ->
      if Process.is_alive t.proc && iface.nbr_state <> Down then begin
        let was_full = iface.nbr_state = Full in
        set_neighbor_state t iface Down;
        if was_full then originate t
      end)

let add_interface ?(metric = 1) t endpoint =
  let iface =
    {
      iface_id = t.next_iface;
      endpoint;
      metric;
      nbr_id = None;
      nbr_state = Down;
      last_hello = Time.zero;
      dead_ev = None;
    }
  in
  t.next_iface <- t.next_iface + 1;
  t.ifaces <- iface :: t.ifaces;
  bind_iface t iface endpoint;
  iface.iface_id

let rebind_interface t iface_id endpoint =
  let iface = find_iface t iface_id in
  bind_iface t iface endpoint;
  (* The adjacency re-forms through hellos; reset the liveness clock
     so the dead deadline measures from the repair, not from before
     the failure. *)
  iface.last_hello <- now t;
  if t.started && Process.is_alive t.proc then send_hello t iface

let arm_timers t =
  ignore
    (Process.every t.proc t.cfg.hello_interval (fun () ->
         List.iter (fun iface -> send_hello t iface) (iface_list t)))

(* A crash loses all protocol state: adjacencies drop silently (the
   neighbours' dead-interval timers notice), pending SPF work is
   forgotten and the routing table empties so installed routes are
   withdrawn from the data plane. The LSDB survives as scratch state
   — a restarted daemon re-originates with a higher sequence number
   and neighbours resynchronise it anyway. *)
let crash_cleanup t =
  t.spf_pending <- false;
  List.iter
    (fun iface ->
      iface.nbr_id <- None;
      Option.iter Sched.cancel iface.dead_ev;
      if iface.nbr_state <> Down then set_neighbor_state t iface Down)
    t.ifaces;
  if t.route_cache <> [] then begin
    t.route_cache <- [];
    List.iter (fun f -> f []) t.route_hooks
  end

let revive t =
  if t.started then begin
    tracef t "daemon %a restarted" Ipv4.pp t.cfg.router_id;
    originate t;
    List.iter (fun iface -> send_hello t iface) (iface_list t);
    arm_timers t
  end

let start t =
  if not t.started then begin
    t.started <- true;
    (* The daemon's FTI scheduling quantum (paper §2). All protocol
       work is event-driven (hellos and SPF run off timers, messages
       off channel deliveries), so the quantum dozes until input
       arrives and channel delivery wakes it. *)
    Process.tick t.proc (fun () -> Sched.Wake_on_input);
    Process.on_kill t.proc (fun () -> crash_cleanup t);
    Process.on_restart t.proc (fun () -> revive t);
    originate t (* stub-only LSA until adjacencies form *);
    List.iter (fun iface -> send_hello t iface) (iface_list t);
    arm_timers t;
    tracef t "daemon %a started with %d interfaces" Ipv4.pp t.cfg.router_id
      (List.length t.ifaces)
  end
