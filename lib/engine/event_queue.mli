(** The simulator's pending-event set: a binary min-heap ordered by
    (timestamp, insertion sequence number).

    Two events at the same timestamp execute in insertion order, which
    makes runs deterministic. Cancellation is O(1) lazy: a cancelled
    event stays in the heap but is skipped when it surfaces, and the
    live count is maintained at cancel time so {!size} is O(1). When
    cancelled entries outnumber live ones the heap is compacted in one
    O(n) sweep, so cancel-heavy workloads (e.g. completion-timer
    re-aiming) keep the heap proportional to the live set. *)

type t
(** A mutable event queue. *)

type handle
(** Names one scheduled event, for cancellation. *)

val create : unit -> t

val schedule : t -> Time.t -> (unit -> unit) -> handle
(** [schedule q at action] enqueues [action] to run at virtual time
    [at]. Scheduling in the past is the caller's responsibility: the
    queue itself is time-agnostic and will happily return such an
    event first. *)

val cancel : handle -> unit
(** Idempotent. A cancelled event never runs. *)

val is_cancelled : handle -> bool

val size : t -> int
(** Number of live (non-cancelled) events. O(1). *)

val is_empty : t -> bool

val next_time : t -> Time.t option
(** Timestamp of the earliest live event, without removing it. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Removes and returns the earliest live event. *)

val pop_until : t -> Time.t -> (Time.t * (unit -> unit)) option
(** Like {!pop} but only if the earliest live event is at or before
    the given time. *)

val clear : t -> unit
