lib/controller/controller.mli: Channel Horse_emulation Horse_engine Horse_openflow Ofmatch Ofmsg Process Trace
