examples/ospf_vs_bgp.ml: Connection_manager Experiment Float Format Horse_core Horse_engine Horse_topo List Ospf_fabric Routed_fabric Sched Time Wan
