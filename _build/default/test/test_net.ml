(* Tests for horse_net: addresses, prefixes, checksums, codecs,
   flow keys. *)

open Horse_net

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- generators ----------------------------------------------------- *)

let gen_ipv4 = QCheck2.Gen.map Ipv4.of_int32 QCheck2.Gen.int32

let gen_prefix =
  QCheck2.Gen.map2
    (fun a len -> Prefix.make (Ipv4.of_int32 a) len)
    QCheck2.Gen.int32 (QCheck2.Gen.int_range 0 32)

let gen_mac =
  QCheck2.Gen.map
    (fun i -> Mac.of_int64 (Int64.of_int i))
    (QCheck2.Gen.int_bound max_int)

let gen_port = QCheck2.Gen.int_range 0 65535

let gen_flow_key =
  let open QCheck2.Gen in
  let* src = gen_ipv4 in
  let* dst = gen_ipv4 in
  let* proto = oneofl [ Headers.Proto.Udp; Headers.Proto.Tcp; Headers.Proto.Icmp ] in
  let* src_port = gen_port in
  let* dst_port = gen_port in
  return (Flow_key.make ~src ~dst ~proto ~src_port ~dst_port ())

(* --- IPv4 ------------------------------------------------------------ *)

let test_ipv4_literals () =
  check Alcotest.string "to_string" "10.1.2.3"
    (Ipv4.to_string (Ipv4.of_octets 10 1 2 3));
  check Alcotest.string "any" "0.0.0.0" (Ipv4.to_string Ipv4.any);
  check Alcotest.string "broadcast" "255.255.255.255"
    (Ipv4.to_string Ipv4.broadcast);
  check Alcotest.string "localhost" "127.0.0.1" (Ipv4.to_string Ipv4.localhost)

let test_ipv4_parse_good () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | Some a -> check Alcotest.string s s (Ipv4.to_string a)
      | None -> Alcotest.failf "should parse: %s" s)
    [ "0.0.0.0"; "255.255.255.255"; "192.168.1.1"; "8.8.8.8" ]

let test_ipv4_parse_bad () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | None -> ()
      | Some _ -> Alcotest.failf "should not parse: %S" s)
    [
      ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "1.2.3.999"; "a.b.c.d";
      "1..2.3"; " 1.2.3.4"; "1.2.3.4 "; "-1.2.3.4"; "1.2.3.4/24";
    ]

let test_ipv4_arithmetic () =
  let a = Ipv4.of_octets 10 0 0 255 in
  check Alcotest.string "succ wraps octet" "10.0.1.0" (Ipv4.to_string (Ipv4.succ a));
  check Alcotest.string "add 257" "10.0.2.0"
    (Ipv4.to_string (Ipv4.add a 257));
  check Alcotest.int "diff" 257 (Ipv4.diff (Ipv4.add a 257) a);
  check Alcotest.string "wrap around" "0.0.0.0"
    (Ipv4.to_string (Ipv4.succ Ipv4.broadcast))

let test_ipv4_unsigned_order () =
  let lo = Ipv4.of_octets 1 0 0 0 and hi = Ipv4.of_octets 200 0 0 0 in
  check Alcotest.bool "unsigned compare" true (Ipv4.compare lo hi < 0)

let prop_ipv4_roundtrip =
  qtest "ipv4: of_string (to_string a) = a" gen_ipv4 (fun a ->
      match Ipv4.of_string (Ipv4.to_string a) with
      | Some b -> Ipv4.equal a b
      | None -> false)

let prop_ipv4_octets_roundtrip =
  qtest "ipv4: octets roundtrip" gen_ipv4 (fun a ->
      let x, y, z, w = Ipv4.to_octets a in
      Ipv4.equal a (Ipv4.of_octets x y z w))

(* --- Prefix ---------------------------------------------------------- *)

let test_prefix_parse () =
  let p = Prefix.of_string_exn "10.1.2.3/16" in
  check Alcotest.string "canonicalized" "10.1.0.0/16" (Prefix.to_string p);
  check Alcotest.int "length" 16 (Prefix.length p);
  check Alcotest.string "netmask" "255.255.0.0" (Ipv4.to_string (Prefix.netmask p));
  check Alcotest.string "broadcast" "10.1.255.255"
    (Ipv4.to_string (Prefix.broadcast p));
  check Alcotest.bool "bare address is /32" true
    (Prefix.equal (Prefix.of_string_exn "1.2.3.4") (Prefix.host (Ipv4.of_octets 1 2 3 4)));
  check Alcotest.bool "bad length rejected" true
    (Prefix.of_string "10.0.0.0/33" = None);
  check Alcotest.bool "empty length rejected" true (Prefix.of_string "10.0.0.0/" = None)

let test_prefix_mem () =
  let p = Prefix.of_string_exn "192.168.0.0/24" in
  check Alcotest.bool "inside" true (Prefix.mem (Ipv4.of_octets 192 168 0 77) p);
  check Alcotest.bool "outside" false (Prefix.mem (Ipv4.of_octets 192 168 1 77) p);
  check Alcotest.bool "default route matches all" true
    (Prefix.mem (Ipv4.of_octets 8 8 8 8) Prefix.any)

let prop_prefix_split_partition =
  qtest "prefix: split partitions the space"
    (QCheck2.Gen.map2
       (fun a len -> Prefix.make (Ipv4.of_int32 a) len)
       QCheck2.Gen.int32 (QCheck2.Gen.int_range 0 31))
    (fun p ->
      match Prefix.split p with
      | None -> false
      | Some (l, r) ->
          Prefix.size l = Prefix.size p / 2
          && Prefix.size r = Prefix.size p / 2
          && Prefix.subset l p && Prefix.subset r p
          && (not (Prefix.overlaps l r))
          && Ipv4.equal (Prefix.network l) (Prefix.network p)
          && Ipv4.equal (Ipv4.add (Prefix.broadcast l) 1) (Prefix.network r))

let prop_prefix_mem_network =
  qtest "prefix: network and broadcast are members" gen_prefix (fun p ->
      Prefix.mem (Prefix.network p) p && Prefix.mem (Prefix.broadcast p) p)

let prop_prefix_subset_mem =
  qtest "prefix: subset implies member containment"
    (QCheck2.Gen.pair gen_prefix gen_prefix) (fun (p, q) ->
      (not (Prefix.subset p q)) || Prefix.mem (Prefix.network p) q)

let prop_prefix_string_roundtrip =
  qtest "prefix: string roundtrip" gen_prefix (fun p ->
      match Prefix.of_string (Prefix.to_string p) with
      | Some q -> Prefix.equal p q
      | None -> false)

let test_prefix_nth () =
  let p = Prefix.of_string_exn "10.0.0.0/30" in
  check Alcotest.(option string) "nth 0" (Some "10.0.0.0")
    (Option.map Ipv4.to_string (Prefix.nth p 0));
  check Alcotest.(option string) "nth 3" (Some "10.0.0.3")
    (Option.map Ipv4.to_string (Prefix.nth p 3));
  check Alcotest.(option string) "nth 4 out of range" None
    (Option.map Ipv4.to_string (Prefix.nth p 4))

(* --- MAC ------------------------------------------------------------- *)

let test_mac_basics () =
  let m = Mac.of_string_exn "00:1B:21:3c:9D:f8" in
  check Alcotest.string "lowercase format" "00:1b:21:3c:9d:f8" (Mac.to_string m);
  check Alcotest.bool "broadcast is multicast" true (Mac.is_multicast Mac.broadcast);
  check Alcotest.bool "of_index is unicast" false
    (Mac.is_multicast (Mac.of_index 7));
  check Alcotest.bool "bad string" true (Mac.of_string "00:1b:21:3c:9d" = None);
  check Alcotest.bool "bad hex" true (Mac.of_string "zz:1b:21:3c:9d:f8" = None)

let prop_mac_roundtrip =
  qtest "mac: string roundtrip" gen_mac (fun m ->
      match Mac.of_string (Mac.to_string m) with
      | Some m' -> Mac.equal m m'
      | None -> false)

let prop_mac_of_index_injective =
  qtest "mac: of_index injective on distinct indices"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 1_000_000) (QCheck2.Gen.int_bound 1_000_000))
    (fun (i, j) -> i = j || not (Mac.equal (Mac.of_index i) (Mac.of_index j)))

(* --- Checksum -------------------------------------------------------- *)

let gen_bytes =
  QCheck2.Gen.map Bytes.of_string QCheck2.Gen.(string_size (int_range 0 200))

let prop_checksum_verifies =
  qtest "checksum: data + stored checksum verifies" gen_bytes (fun data ->
      (* Append the checksum as the final 16-bit word; the whole
         region must then verify. *)
      let padded =
        if Bytes.length data mod 2 = 0 then data
        else Bytes.cat data (Bytes.make 1 '\000')
      in
      let c = Checksum.of_bytes padded 0 (Bytes.length padded) in
      let whole = Bytes.cat padded (Bytes.make 2 '\000') in
      Bytes.set_uint16_be whole (Bytes.length padded) c;
      Checksum.verify whole 0 (Bytes.length whole))

let prop_checksum_split_invariance =
  qtest "checksum: splitting at even offsets preserves the sum"
    (QCheck2.Gen.pair gen_bytes (QCheck2.Gen.int_bound 100))
    (fun (data, cut) ->
      let cut = cut * 2 in
      if cut > Bytes.length data then true
      else
        let whole = Checksum.of_bytes data 0 (Bytes.length data) in
        let acc = Checksum.add_bytes Checksum.empty data 0 cut in
        let acc = Checksum.add_bytes acc data cut (Bytes.length data - cut) in
        Checksum.finish acc = whole)

let test_checksum_known () =
  (* RFC 1071's worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
     checksum 220d. *)
  let data = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "rfc1071 example" 0x220D (Checksum.of_bytes data 0 8)

(* --- Headers / Packet ------------------------------------------------ *)

let gen_payload =
  QCheck2.Gen.map Bytes.of_string QCheck2.Gen.(string_size (int_range 0 64))

let gen_udp_packet =
  let open QCheck2.Gen in
  let* src = gen_ipv4 in
  let* dst = gen_ipv4 in
  let* src_port = gen_port in
  let* dst_port = gen_port in
  let* src_mac = gen_mac in
  let* dst_mac = gen_mac in
  let* payload = gen_payload in
  return
    (Packet.udp ~src_mac ~dst_mac ~src ~dst ~src_port ~dst_port payload)

let gen_tcp_packet =
  let open QCheck2.Gen in
  let* src = gen_ipv4 in
  let* dst = gen_ipv4 in
  let* src_port = gen_port in
  let* dst_port = gen_port in
  let* seq = int_bound 0xFFFF in
  let* payload = gen_payload in
  return
    (Packet.tcp
       ~src_mac:(Mac.of_index 1)
       ~dst_mac:(Mac.of_index 2)
       ~src ~dst ~src_port ~dst_port ~seq payload)

let prop_packet_udp_roundtrip =
  qtest "packet: udp encode/decode roundtrip" gen_udp_packet (fun p ->
      match Packet.decode (Packet.encode p) with
      | Ok q -> Packet.equal p q
      | Error _ -> false)

let prop_packet_tcp_roundtrip =
  qtest "packet: tcp encode/decode roundtrip" gen_tcp_packet (fun p ->
      match Packet.decode (Packet.encode p) with
      | Ok q -> Packet.equal p q
      | Error _ -> false)

let prop_packet_decode_total =
  qtest ~count:500 "packet: decoder never raises on arbitrary bytes"
    QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 120)))
    (fun junk ->
      match Packet.decode junk with Ok _ | Error _ -> true)

let prop_packet_decode_total_mutated =
  qtest ~count:300 "packet: decoder never raises on mutated frames"
    (QCheck2.Gen.triple gen_udp_packet (QCheck2.Gen.int_bound 200)
       (QCheck2.Gen.int_bound 255))
    (fun (p, pos, v) ->
      let buf = Packet.encode p in
      if Bytes.length buf > 0 then
        Bytes.set_uint8 buf (pos mod Bytes.length buf) v;
      match Packet.decode buf with Ok _ | Error _ -> true)

let prop_packet_size =
  qtest "packet: size matches encoding" gen_udp_packet (fun p ->
      Bytes.length (Packet.encode p) = Packet.size p)

let test_packet_arp_roundtrip () =
  let req =
    Packet.arp_request
      ~src_mac:(Mac.of_index 3)
      ~src:(Ipv4.of_octets 10 0 0 1)
      ~target:(Ipv4.of_octets 10 0 0 2)
  in
  (match Packet.decode (Packet.encode req) with
  | Ok q -> check Alcotest.bool "arp request" true (Packet.equal req q)
  | Error e -> Alcotest.fail e);
  let rep =
    Packet.arp_reply
      ~src_mac:(Mac.of_index 4)
      ~dst_mac:(Mac.of_index 3)
      ~src:(Ipv4.of_octets 10 0 0 2)
      ~target:(Ipv4.of_octets 10 0 0 2)
  in
  match Packet.decode (Packet.encode rep) with
  | Ok q -> check Alcotest.bool "arp reply" true (Packet.equal rep q)
  | Error e -> Alcotest.fail e

let test_packet_corruption_detected () =
  let p =
    Packet.udp ~src_mac:(Mac.of_index 1) ~dst_mac:(Mac.of_index 2)
      ~src:(Ipv4.of_octets 10 0 0 1) ~dst:(Ipv4.of_octets 10 0 0 2)
      ~src_port:1234 ~dst_port:80 (Bytes.of_string "hello")
  in
  let buf = Packet.encode p in
  (* Flip a payload byte: the UDP checksum must catch it. *)
  let off = Bytes.length buf - 1 in
  Bytes.set_uint8 buf off (Bytes.get_uint8 buf off lxor 0xFF);
  match Packet.decode buf with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted packet decoded successfully"

let test_packet_truncation_detected () =
  let p =
    Packet.udp ~src_mac:(Mac.of_index 1) ~dst_mac:(Mac.of_index 2)
      ~src:(Ipv4.of_octets 10 0 0 1) ~dst:(Ipv4.of_octets 10 0 0 2)
      ~src_port:1234 ~dst_port:80 (Bytes.of_string "hello world")
  in
  let buf = Packet.encode p in
  let short = Bytes.sub buf 0 (Bytes.length buf - 4) in
  match Packet.decode short with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated packet decoded successfully"

let test_ip_header_checksum () =
  let header =
    {
      Headers.Ip.dscp = 0;
      ident = 42;
      dont_fragment = true;
      ttl = 64;
      proto = Headers.Proto.Udp;
      src = Ipv4.of_octets 192 168 0 1;
      dst = Ipv4.of_octets 192 168 0 2;
      total_length = 20;
    }
  in
  let buf = Bytes.make 20 '\000' in
  Headers.Ip.write buf 0 header;
  check Alcotest.bool "verifies" true (Checksum.verify buf 0 20);
  Bytes.set_uint8 buf 8 63 (* corrupt TTL *);
  match Headers.Ip.read buf 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt IP header accepted"

(* --- Flow keys ------------------------------------------------------- *)

let test_flow_key_of_packet () =
  let p =
    Packet.udp ~src_mac:(Mac.of_index 1) ~dst_mac:(Mac.of_index 2)
      ~src:(Ipv4.of_octets 10 0 0 1) ~dst:(Ipv4.of_octets 10 0 0 2)
      ~src_port:5555 ~dst_port:53 Bytes.empty
  in
  match Flow_key.of_packet p with
  | Some k ->
      check Alcotest.int "src port" 5555 k.Flow_key.src_port;
      check Alcotest.int "dst port" 53 k.Flow_key.dst_port;
      check Alcotest.string "src" "10.0.0.1" (Ipv4.to_string k.Flow_key.src)
  | None -> Alcotest.fail "no flow key for UDP packet"

let prop_flow_key_hash_deterministic =
  qtest "flow_key: hashes are deterministic and non-negative" gen_flow_key
    (fun k ->
      Flow_key.hash_5tuple k = Flow_key.hash_5tuple k
      && Flow_key.hash_src_dst k = Flow_key.hash_src_dst k
      && Flow_key.hash_5tuple k >= 0
      && Flow_key.hash_src_dst k >= 0)

let prop_flow_key_src_dst_ignores_ports =
  qtest "flow_key: src/dst hash ignores ports"
    (QCheck2.Gen.triple gen_flow_key gen_port gen_port)
    (fun (k, sp, dp) ->
      Flow_key.hash_src_dst k
      = Flow_key.hash_src_dst { k with Flow_key.src_port = sp; dst_port = dp })

let prop_flow_key_reverse_involution =
  qtest "flow_key: reverse is an involution" gen_flow_key (fun k ->
      Flow_key.equal k (Flow_key.reverse (Flow_key.reverse k)))

let test_flow_key_select_bounds () =
  let k =
    Flow_key.make ~src:(Ipv4.of_octets 1 2 3 4) ~dst:(Ipv4.of_octets 5 6 7 8) ()
  in
  for n = 1 to 20 do
    let i = Flow_key.select ~hash:(Flow_key.hash_5tuple k) n in
    if i < 0 || i >= n then Alcotest.failf "select out of range: %d of %d" i n
  done;
  Alcotest.check_raises "select on empty" (Invalid_argument "Flow_key.select: empty bucket set")
    (fun () -> ignore (Flow_key.select ~hash:3 0))

let test_hash_spread () =
  (* 5-tuple hashing over 4 buckets should use every bucket for the
     demonstration's flow population. *)
  let counts = Array.make 4 0 in
  for i = 0 to 127 do
    let k =
      Flow_key.make
        ~src:(Ipv4.of_octets 10 0 (i / 8) (i mod 8 + 2))
        ~dst:(Ipv4.of_octets 10 1 (i / 8) (i mod 8 + 2))
        ~src_port:(10000 + i) ~dst_port:(20000 + i) ()
    in
    let b = Flow_key.select ~hash:(Flow_key.hash_5tuple k) 4 in
    counts.(b) <- counts.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if c = 0 then Alcotest.failf "bucket %d never used" i)
    counts

let () =
  Alcotest.run "horse_net"
    [
      ( "ipv4",
        [
          Alcotest.test_case "literals" `Quick test_ipv4_literals;
          Alcotest.test_case "parse good" `Quick test_ipv4_parse_good;
          Alcotest.test_case "parse bad" `Quick test_ipv4_parse_bad;
          Alcotest.test_case "arithmetic" `Quick test_ipv4_arithmetic;
          Alcotest.test_case "unsigned order" `Quick test_ipv4_unsigned_order;
          prop_ipv4_roundtrip;
          prop_ipv4_octets_roundtrip;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "parse" `Quick test_prefix_parse;
          Alcotest.test_case "mem" `Quick test_prefix_mem;
          Alcotest.test_case "nth" `Quick test_prefix_nth;
          prop_prefix_split_partition;
          prop_prefix_mem_network;
          prop_prefix_subset_mem;
          prop_prefix_string_roundtrip;
        ] );
      ( "mac",
        [
          Alcotest.test_case "basics" `Quick test_mac_basics;
          prop_mac_roundtrip;
          prop_mac_of_index_injective;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "known value" `Quick test_checksum_known;
          prop_checksum_verifies;
          prop_checksum_split_invariance;
        ] );
      ( "packet",
        [
          Alcotest.test_case "arp roundtrip" `Quick test_packet_arp_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_packet_corruption_detected;
          Alcotest.test_case "truncation detected" `Quick test_packet_truncation_detected;
          Alcotest.test_case "ip header checksum" `Quick test_ip_header_checksum;
          prop_packet_udp_roundtrip;
          prop_packet_decode_total;
          prop_packet_decode_total_mutated;
          prop_packet_tcp_roundtrip;
          prop_packet_size;
        ] );
      ( "flow_key",
        [
          Alcotest.test_case "of_packet" `Quick test_flow_key_of_packet;
          Alcotest.test_case "select bounds" `Quick test_flow_key_select_bounds;
          Alcotest.test_case "hash spread" `Quick test_hash_spread;
          prop_flow_key_hash_deterministic;
          prop_flow_key_src_dst_ignores_ports;
          prop_flow_key_reverse_involution;
        ] );
    ]
