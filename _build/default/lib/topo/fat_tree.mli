(** The k-ary Fat-Tree of Al-Fares et al. (SIGCOMM 2008) — the
    demonstration topology of the Horse paper.

    For an even [k] ("pods" in the paper's terminology):
    - [k] pods, each with [k/2] edge and [k/2] aggregation switches;
    - [(k/2)^2] core switches;
    - [k/2] hosts per edge switch, [k^3/4] hosts in total;
    - every link has the same capacity (1 Gbps in the demo).

    Addressing follows the original paper: pod switch [s] of pod [p]
    is [10.p.s.1] (edge switches are [s < k/2], aggregation
    [k/2 <= s < k]); core switch [(j,i)] is [10.k.j.i]; host [h] of
    edge switch [e] in pod [p] is [10.p.e.(h+2)]. *)

open Horse_net

type t = {
  k : int;
  topo : Topology.t;
  hosts : Topology.node array;  (** all [k^3/4] hosts, pod-major order *)
  edges : Topology.node array array;  (** [edges.(pod).(e)] *)
  aggs : Topology.node array array;  (** [aggs.(pod).(a)] *)
  cores : Topology.node array;  (** row-major [(j-1)*(k/2) + (i-1)] *)
}

val build : ?capacity:float -> ?delay:Horse_engine.Time.t -> k:int -> unit -> t
(** [build ~k ()] constructs the Fat-Tree. Default capacity 1 Gbps,
    default delay 10 µs per link.
    @raise Invalid_argument if [k] is odd or [k < 2]. *)

val n_hosts : k:int -> int
(** [k^3/4], without building. *)

val n_switches : k:int -> int
(** [5k^2/4] (edge + aggregation + core), without building. *)

val host_ip : t -> int -> Ipv4.t
(** Address of host number [i] (pod-major). *)

val host_of_ip : t -> Ipv4.t -> Topology.node option
(** Reverse lookup within this Fat-Tree's host range. *)

val pod_of_host : t -> int -> int
(** Pod number of host [i]. *)

val host_prefix : t -> Topology.node -> Prefix.t
(** The /32 of a host, as advertised by its edge switch in the BGP
    scenario. *)
