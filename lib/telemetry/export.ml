(* --- Prometheus text format ----------------------------------------- *)

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else Printf.sprintf "%.9g" f

let prom_label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k (prom_label_escape v))
             labels)
      ^ "}"

let render_entry fmt (e : Registry.entry) =
  let labels = e.Registry.labels in
  match e.Registry.metric with
  | Registry.M_counter c ->
      Format.fprintf fmt "%s%s %d@." e.Registry.name (prom_labels labels)
        (Registry.Counter.value c)
  | Registry.M_gauge g ->
      Format.fprintf fmt "%s%s %s@." e.Registry.name (prom_labels labels)
        (prom_float (Registry.Gauge.value g))
  | Registry.M_histogram h ->
      List.iter
        (fun (le, count) ->
          Format.fprintf fmt "%s_bucket%s %d@." e.Registry.name
            (prom_labels (labels @ [ ("le", prom_float le) ]))
            count)
        (Histogram.cumulative h);
      Format.fprintf fmt "%s_sum%s %s@." e.Registry.name (prom_labels labels)
        (prom_float (Histogram.sum h));
      Format.fprintf fmt "%s_count%s %d@." e.Registry.name (prom_labels labels)
        (Histogram.count h)

(* Entries grouped by metric name, first-seen order preserved — all
   label sets of a name render under one HELP/TYPE header. This
   replaces the per-callsite seen-header hashtable and is what
   guarantees a merged multi-shard registry (where one name's label
   sets arrive interleaved across shards) still renders each header
   exactly once. *)
let group_by_name entries =
  let tbl = Hashtbl.create 16 in
  let rev_names = ref [] in
  List.iter
    (fun (e : Registry.entry) ->
      match Hashtbl.find_opt tbl e.Registry.name with
      | Some rev -> rev := e :: !rev
      | None ->
          Hashtbl.replace tbl e.Registry.name (ref [ e ]);
          rev_names := e.Registry.name :: !rev_names)
    entries;
  List.rev_map
    (fun name -> (name, List.rev !(Hashtbl.find tbl name)))
    !rev_names

let prometheus fmt registry =
  List.iter
    (fun (name, entries) ->
      (match entries with
      | [] -> ()
      | (e : Registry.entry) :: _ ->
          if e.Registry.help <> "" then
            Format.fprintf fmt "# HELP %s %s@." name e.Registry.help;
          Format.fprintf fmt "# TYPE %s %s@." name
            (match e.Registry.metric with
            | Registry.M_counter _ -> "counter"
            | Registry.M_gauge _ -> "gauge"
            | Registry.M_histogram _ -> "histogram"));
      List.iter (fun e -> render_entry fmt e) entries)
    (group_by_name (Registry.to_list registry))

(* --- JSON views ------------------------------------------------------ *)

let json_of_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let json_of_entry (e : Registry.entry) =
  let common =
    [
      ("name", Json.String e.Registry.name);
      ("labels", json_of_labels e.Registry.labels);
    ]
  in
  match e.Registry.metric with
  | Registry.M_counter c ->
      Json.Obj
        (("type", Json.String "counter")
        :: common
        @ [ ("value", Json.Int (Registry.Counter.value c)) ])
  | Registry.M_gauge g ->
      Json.Obj
        (("type", Json.String "gauge")
        :: common
        @ [ ("value", Json.Float (Registry.Gauge.value g)) ])
  | Registry.M_histogram h ->
      Json.Obj
        (("type", Json.String "histogram")
        :: common
        @ [
            ("count", Json.Int (Histogram.count h));
            ("sum", Json.Float (Histogram.sum h));
            ( "buckets",
              Json.List
                (List.map
                   (fun (le, count) ->
                     Json.Obj
                       [
                         ( "le",
                           if le = Float.infinity then Json.String "+Inf"
                           else Json.Float le );
                         ("count", Json.Int count);
                       ])
                   (Histogram.cumulative h)) );
          ])

let json_of_span (r : Span.record) =
  Json.Obj
    [
      ("type", Json.String "span");
      ("name", Json.String r.Span.name);
      ("depth", Json.Int r.Span.depth);
      ( "parent",
        match r.Span.parent with
        | Some p -> Json.String p
        | None -> Json.Null );
      ("virtual_start_s", Json.Float (Int64.to_float r.Span.start_us /. 1e6));
      ("virtual_end_s", Json.Float (Int64.to_float r.Span.end_us /. 1e6));
      ("virtual_duration_s", Json.Float (Span.virtual_duration_s r));
      ("wall_start_s", Json.Float r.Span.wall_start_s);
      ("wall_end_s", Json.Float r.Span.wall_end_s);
      ("wall_duration_s", Json.Float (Span.wall_duration_s r));
    ]

(* JSON-lines event stream: one object per metric, then one per
   completed span — machine-readable without a streaming parser. *)
let jsonl fmt registry =
  List.iter
    (fun e -> Format.fprintf fmt "%s@." (Json.to_string (json_of_entry e)))
    (Registry.to_list registry);
  List.iter
    (fun r -> Format.fprintf fmt "%s@." (Json.to_string (json_of_span r)))
    (Span.records (Registry.spans registry))

(* Single-object snapshot, for BENCH_*.json artefacts. *)
let json registry =
  Json.Obj
    [
      ( "metrics",
        Json.List (List.map json_of_entry (Registry.to_list registry)) );
      ( "spans",
        Json.List (List.map json_of_span (Span.records (Registry.spans registry)))
      );
    ]

let to_file ~path render registry =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let fmt = Format.formatter_of_out_channel oc in
      render fmt registry;
      Format.pp_print_flush fmt ())

let validate_jsonl_line line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok json -> (
      match Json.member "type" json with
      | Some (Json.String ("counter" | "gauge" | "histogram" | "span")) -> Ok ()
      | Some (Json.String other) -> Error ("unknown record type " ^ other)
      | Some _ | None -> Error "record has no string \"type\" field")
