lib/openflow/ofmsg.mli: Action Bytes Format Ofmatch
