type t = int64

let zero = 0L
let of_us n = Int64.of_int n
let of_ms n = Int64.mul (Int64.of_int n) 1_000L
let of_sec s = Int64.of_float (s *. 1e6)
let to_us t = Int64.to_int t
let to_ms t = Int64.to_float t /. 1e3
let to_sec t = Int64.to_float t /. 1e6
let add = Int64.add
let sub = Int64.sub
let mul t n = Int64.mul t (Int64.of_int n)
let div t n = Int64.div t (Int64.of_int n)
let min : t -> t -> t = Stdlib.min
let max : t -> t -> t = Stdlib.max
let compare = Int64.compare
let equal = Int64.equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let pp fmt t =
  let us = Int64.to_int t in
  let mag = Stdlib.abs us in
  if us mod 1_000_000 = 0 then Format.fprintf fmt "%ds" (us / 1_000_000)
  else if Stdlib.( >= ) mag 1_000_000 then Format.fprintf fmt "%.3fs" (to_sec t)
  else if us mod 1_000 = 0 then Format.fprintf fmt "%dms" (us / 1_000)
  else if Stdlib.( >= ) mag 1_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else Format.fprintf fmt "%dus" us
