open Horse_net
open Horse_topo
open Horse_dataplane

let path_for ?(hash = Flow_key.hash_src_dst) ~topo ~table (key : Flow_key.t) =
  match Topology.node_by_ip topo key.Flow_key.src with
  | None -> Error "unknown source address"
  | Some src ->
      let h = hash key in
      let rec walk node acc hops =
        let n = Topology.node topo node in
        match n.Topology.ip with
        | Some ip when Ipv4.equal ip key.Flow_key.dst -> Ok (List.rev acc)
        | Some _ | None -> (
            if hops > 64 then Error "path exceeds 64 hops (routing loop?)"
            else
              match Fwd.lookup_select (table node) key.Flow_key.dst ~hash:h with
              | None ->
                  Error
                    (Printf.sprintf "no route to %s at %s"
                       (Ipv4.to_string key.Flow_key.dst)
                       n.Topology.name)
              | Some link_id ->
                  let link = Topology.link topo link_id in
                  walk link.Topology.dst (link :: acc) (hops + 1))
      in
      walk src.Topology.id [] 0
