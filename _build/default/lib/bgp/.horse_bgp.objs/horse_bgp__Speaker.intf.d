lib/bgp/speaker.mli: Channel Format Horse_emulation Horse_engine Horse_net Ipv4 Policy Prefix Process Rib Time Trace
