lib/bgp/speaker.ml: Bytes Channel Format Horse_emulation Horse_engine Horse_net Ipv4 List Msg Option Policy Prefix Printf Process Queue Rib Sched Set Time Trace
