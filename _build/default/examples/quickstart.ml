(* Quickstart: the smallest complete Horse experiment.

   Builds a 2-pod fat-tree (2 servers), runs the SDN control plane
   (reactive 5-tuple ECMP) over it for 10 virtual seconds with one
   1 Gbps flow per server, and prints what the hybrid engine did.

   Run with:  dune exec examples/quickstart.exe *)

open Horse_engine
open Horse_core

let () =
  let result =
    Scenario.run_fat_tree_te ~pods:2 ~te:Scenario.Sdn_ecmp
      ~duration:(Time.of_sec 10.0) ()
  in
  Format.printf "--- result ---------------------------------------@.";
  Format.printf "%a@.@." Scenario.pp_result result;

  Format.printf "--- what the hybrid clock did --------------------@.";
  let stats = result.Scenario.sched_stats in
  List.iter
    (fun (tr : Sched.transition) ->
      Format.printf "[%a] %a -> %a  (%s)@." Time.pp tr.Sched.at Sched.pp_mode
        tr.Sched.from_mode Sched.pp_mode tr.Sched.to_mode tr.Sched.reason)
    stats.Sched.transitions;
  Format.printf "@.%a@." Sched.pp_stats stats;

  (* The headline idea in two numbers: the experiment covered 10
     virtual seconds, but only the instants with control-plane
     activity (flow setup at the start) ran in small increments —
     everything else was leapt over in DES mode. *)
  Format.printf
    "@.%.1f%% of the virtual time ran in fast DES mode; wall time %.3fs@."
    (100.0
    *. Time.to_sec stats.Sched.virtual_in_des
    /. Time.to_sec stats.Sched.end_time)
    stats.Sched.wall_total
