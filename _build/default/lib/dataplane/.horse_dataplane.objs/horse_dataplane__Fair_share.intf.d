lib/dataplane/fair_share.mli:
