(** Virtual (simulated) time.

    Time is a count of microseconds since the start of the experiment,
    held in an [int64]. All experiment-facing APIs accept and return
    this type; wall-clock time (the thing Horse saves) is measured
    separately by {!Wall}. *)

type t
(** Microseconds since experiment start. Always non-negative in values
    produced by the engine; arithmetic is unchecked. *)

val zero : t
val of_us : int -> t
val of_ms : int -> t
val of_sec : float -> t

val to_us : t -> int
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] may be negative; compare with {!zero} when in doubt. *)

val mul : t -> int -> t
val div : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-oriented rendering: ["1.500s"], ["250ms"], ["10us"]. *)
