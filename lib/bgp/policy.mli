(** Route policy: ordered prefix filters applied on import and export.

    A small subset of a real routing policy language — enough to
    express the classic experiments (filter a customer's
    announcements, prefer one upstream by local-pref, prepend on a
    backup path). Rules are evaluated in order; the first matching
    rule decides. *)

open Horse_net

type match_ =
  | Any
  | Exact of Prefix.t
  | Within of Prefix.t  (** the route's prefix is a subset of this one *)
  | Has_community of int
      (** the route carries this RFC 1997 community tag *)

type action =
  | Accept
  | Reject
  | Accept_with of modifier list

and modifier =
  | Set_local_pref of int
  | Set_med of int
  | Prepend of int * int  (** AS, times *)
  | Add_community of int
  | Remove_community of int

type rule = { match_ : match_; action : action }

type t

val make : ?default:action -> rule list -> t
(** Default action when no rule matches: [Accept]. *)

val accept_all : t
val reject_all : t

val equal : t -> t -> bool
(** Structural equality (fast-pathed on physical equality). Peers
    whose export policies are [equal] share one update group. *)

val prefix_independent : t -> bool
(** True when no rule matches on the route's prefix ([Exact]/[Within])
    — evaluation then depends on the attributes alone, so export
    results can be memoized per interned attribute record. *)

val eval : t -> Prefix.t -> Msg.attrs -> Msg.attrs option
(** [None] = rejected; [Some attrs] = accepted, with modifiers
    applied. Community sets stay sorted and duplicate-free. *)

val pp : Format.formatter -> t -> unit
