type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding -------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f || Float.abs f = Float.infinity then
    (* JSON has no NaN/Inf; null is the conventional stand-in. *)
    "null"
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

exception Parse_error of string

type parser_state = { input : string; mutable pos : int }

let peek p = if p.pos < String.length p.input then Some p.input.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | Some _ | None -> ()

let expect p c =
  match peek p with
  | Some got when got = c -> advance p
  | Some got -> fail p (Printf.sprintf "expected %c, got %c" c got)
  | None -> fail p (Printf.sprintf "expected %c, got end of input" c)

let parse_literal p word value =
  if
    p.pos + String.length word <= String.length p.input
    && String.sub p.input p.pos (String.length word) = word
  then begin
    p.pos <- p.pos + String.length word;
    value
  end
  else fail p (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string_body p =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' ->
        advance p;
        Buffer.contents buf
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some 'n' -> advance p; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance p; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance p; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance p; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance p; Buffer.add_char buf '\012'; go ()
        | Some '/' -> advance p; Buffer.add_char buf '/'; go ()
        | Some '"' -> advance p; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance p; Buffer.add_char buf '\\'; go ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.input then fail p "bad \\u escape";
            let hex = String.sub p.input p.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail p "bad \\u escape"
            in
            p.pos <- p.pos + 4;
            (* Encode the code point as UTF-8 (BMP only, no surrogate
               pairing — enough for validation). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | Some c -> fail p (Printf.sprintf "bad escape \\%c" c)
        | None -> fail p "unterminated escape")
    | Some c ->
        advance p;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number p =
  let start = p.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek p with
    | Some c when is_number_char c ->
        advance p;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub p.input start (p.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail p (Printf.sprintf "bad number %S" text))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' ->
      advance p;
      String (parse_string_body p)
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        List []
      end
      else
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              items (v :: acc)
          | Some ']' ->
              advance p;
              List (List.rev (v :: acc))
          | _ -> fail p "expected , or ] in array"
        in
        items []
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws p;
          expect p '"';
          let key = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance p;
              Obj (List.rev ((key, v) :: acc))
          | _ -> fail p "expected , or } in object"
        in
        fields []
  | Some c -> fail p (Printf.sprintf "unexpected character %c" c)

let parse s =
  let p = { input = s; pos = 0 } in
  try
    let v = parse_value p in
    skip_ws p;
    if p.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
