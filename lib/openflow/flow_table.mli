(** An OpenFlow switch's flow table: priority-ordered entries with
    idle/hard timeouts and traffic counters, served by a three-level
    lookup hierarchy (OVS-style):

    + an exact-match {e microflow cache} keyed on the hashed packet
      fields;
    + a {e megaflow cache} of wildcarded cells whose masks un-wildcard
      only the fields the slow path actually consulted, so one cell
      covers a whole traffic class;
    + the swappable {!Classifier} slow path (tuple-space search by
      default, interval tree for very large tables).

    Matching returns the highest-priority matching entry; among equal
    priorities the oldest entry wins (stable, deterministic), and the
    cached paths return the identical entry the slow path would —
    {!lookup_reference} keeps the original linear scan as the oracle.

    Invalidation: ADD drops exactly the cells the new rule overlaps
    (cached misses included); DELETE / MODIFY / {!expire} drop the
    cells produced by the touched rules (cells are tagged with their
    source-rule seq; cached misses survive removals).  Expiry is
    driven explicitly by the owner via {!expire} — the switch agent
    calls it from a periodic virtual-time timer. *)

open Horse_engine

type entry = {
  match_ : Ofmatch.t;
  priority : int;
  actions : Action.t list;
  cookie : int;
  idle_timeout : Time.t option;
  hard_timeout : Time.t option;
  installed_at : Time.t;
  mutable last_used : Time.t;
  mutable packets : int;
  mutable bytes : int;
}

(** Lookup-hierarchy counters, monotonic over the table's lifetime.
    [lookups = micro_hits + mega_hits + slow_hits + misses];
    [view_sorts] counts rebuilds of the lazy sorted view (only the
    reference scan and entry iteration sort — the hot path never
    does). *)
type stats = {
  mutable micro_hits : int;
  mutable mega_hits : int;
  mutable slow_hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable view_sorts : int;
  mutable lookups : int;
}

type t

val create : ?backend:Classifier.backend -> unit -> t
(** Default slow-path backend is {!Classifier.Tss}. *)

val backend : t -> Classifier.backend
val stats : t -> stats

val cache_sizes : t -> int * int
(** [(microflow cells, megaflow cells)] currently cached. *)

val apply_flow_mod : t -> now:Time.t -> Ofmsg.flow_mod -> unit
(** ADD replaces an entry with the same match and priority; MODIFY
    rewrites the actions of entries with an equal match (or behaves
    like ADD when none exists); DELETE removes every entry whose match
    overlaps the given one (an all-wildcard match clears the
    table). *)

val lookup : t -> Ofmatch.fields -> entry option
(** The hierarchy (microflow, then megaflow, then slow path; misses
    are cached too).  Does not touch counters — use {!account} when
    traffic actually hits the entry. *)

val lookup_reference : t -> Ofmatch.fields -> entry option
(** The original linear scan over the sorted view — the oracle of the
    differential suite, byte-identical decisions to {!lookup}. *)

val account : entry -> now:Time.t -> packets:int -> bytes:int -> unit
(** Adds to the counters and refreshes the idle timestamp. *)

val expire : t -> now:Time.t -> entry list
(** Removes and returns entries past an idle or hard deadline. *)

val entries : t -> entry list
(** Priority order (the match order). *)

val matching_entries : t -> Ofmatch.t -> entry list
(** Entries whose match overlaps the given one — the flow-stats
    request semantics. *)

val size : t -> int
(** O(1) live count. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
