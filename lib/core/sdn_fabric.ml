open Horse_net
open Horse_engine
open Horse_topo
open Horse_dataplane
open Horse_emulation
open Horse_openflow
open Horse_controller

type pending = {
  key : Flow_key.t;
  on_ready : Spf.path -> unit;
  asked : (int, unit) Hashtbl.t;  (* dpids already sent a PACKET_IN *)
}

type t = {
  fabric_topo : Topology.t;
  sched : Sched.t;
  fluid : Fluid.t;
  ctrl : Controller.t;
  fabric_env : Env.t;
  agents : (int, Switch.t) Hashtbl.t;  (* node id -> agent *)
  ports : (int, int) Hashtbl.t;  (* directed link id -> port on src *)
  mutable pending : pending list;
  mutable retry_scheduled : bool;
  mutable n_switches : int;
}

(* 5-tuple reconstruction from an exact-match entry (as installed by
   the ECMP/Hedera applications), for backing flow statistics with
   fluid-engine byte integrals. *)
let key_of_match (m : Ofmatch.t) =
  match (m.Ofmatch.m_ip_src, m.Ofmatch.m_ip_dst) with
  | Some src_p, Some dst_p
    when Prefix.length src_p = 32 && Prefix.length dst_p = 32 ->
      Some
        (Flow_key.make ~src:(Prefix.network src_p) ~dst:(Prefix.network dst_p)
           ~proto:
             (Headers.Proto.of_int (Option.value m.Ofmatch.m_ip_proto ~default:17))
           ~src_port:(Option.value m.Ofmatch.m_tp_src ~default:0)
           ~dst_port:(Option.value m.Ofmatch.m_tp_dst ~default:0)
           ())
  | Some _, Some _ | None, _ | _, None -> None

let first_frame (key : Flow_key.t) =
  Packet.encode
    (Packet.udp
       ~src_mac:(Mac.of_index (Ipv4.hash key.Flow_key.src land 0xFFFF))
       ~dst_mac:(Mac.of_index (Ipv4.hash key.Flow_key.dst land 0xFFFF))
       ~src:key.Flow_key.src ~dst:key.Flow_key.dst
       ~src_port:key.Flow_key.src_port ~dst_port:key.Flow_key.dst_port
       (Bytes.make 64 '\000'))

(* Walk the flow tables from the source host. [side_effects] controls
   whether misses raise PACKET_INs. *)
let walk t (key : Flow_key.t) ~side_effects ~asked =
  match
    ( Env.host_of_ip t.fabric_env key.Flow_key.src,
      Env.host_of_ip t.fabric_env key.Flow_key.dst )
  with
  | None, _ | _, None -> Error "unknown host address"
  | Some src, Some dst -> (
      match Topology.out_links t.fabric_topo src with
      | [ first ] ->
          let rec step node in_link acc hops =
            if node = dst then Ok (List.rev acc)
            else if hops > 64 then Error "path exceeds 64 hops"
            else
              match Hashtbl.find_opt t.agents node with
              | None -> Error "walk reached a non-switch node"
              | Some agent -> (
                  let in_port =
                    Option.value
                      (Hashtbl.find_opt t.ports (in_link : Topology.link).Topology.peer)
                      ~default:0
                  in
                  let fields = Ofmatch.fields_of_key ~in_port key in
                  let miss reason =
                    if side_effects && not (Hashtbl.mem asked node) then begin
                      Hashtbl.replace asked node ();
                      Switch.packet_in agent ~in_port (first_frame key)
                    end;
                    Error reason
                  in
                  match Switch.lookup agent fields with
                  | None -> miss "table miss"
                  | Some entry -> (
                      let out_port =
                        List.find_map
                          (function
                            | Action.Output p -> Some p
                            | Action.Flood | Action.To_controller _ -> None)
                          entry.Flow_table.actions
                      in
                      match out_port with
                      | None -> Error "entry without an output action"
                      | Some port -> (
                          match Switch.link_of_port agent port with
                          | None ->
                              (* Stale entry towards a down port: let
                                 the controller repair it. *)
                              miss "entry outputs to a down port"
                          | Some link_id ->
                              let link = Topology.link t.fabric_topo link_id in
                              step link.Topology.dst link (link :: acc) (hops + 1))))
          in
          step first.Topology.dst first [ first ] 0
      | [] | _ :: _ -> Error "source host must have degree 1")

let retry_pending t =
  t.retry_scheduled <- false;
  let still =
    List.filter
      (fun p ->
        match walk t p.key ~side_effects:true ~asked:p.asked with
        | Ok path ->
            p.on_ready path;
            false
        | Error _ -> true)
      t.pending
  in
  t.pending <- still

let schedule_retry t =
  if (not t.retry_scheduled) && t.pending <> [] then begin
    t.retry_scheduled <- true;
    ignore (Sched.schedule_after t.sched Time.zero (fun () -> retry_pending t))
  end

let build ?(channel_latency = Time.of_ms 1) ?classifier ~cm ~fluid topo =
  let sched = Connection_manager.scheduler cm in
  let trace = Connection_manager.trace cm in
  let ctrl_proc = Process.create sched ~name:"controller" in
  let ctrl = Controller.create ~trace ctrl_proc in
  let t =
    {
      fabric_topo = topo;
      sched;
      fluid;
      ctrl;
      fabric_env =
        Env.create ~topo
          ~dpid_of_node:(fun node ->
            match Topology.node topo node with
            | { Topology.kind = Topology.Switch; _ } -> Some node
            | { Topology.kind = Topology.Host | Topology.Router; _ } -> None)
          ~node_of_dpid:(fun dpid ->
            if dpid >= 0 && dpid < Topology.n_nodes topo then Some dpid else None)
          ~port_of_link:(fun _ -> None) (* replaced below *)
          ();
      agents = Hashtbl.create 64;
      ports = Hashtbl.create 256;
      pending = [];
      retry_scheduled = false;
      n_switches = 0;
    }
  in
  (* Port numbering: the i-th out-link of a switch is port i+1. *)
  List.iter
    (fun (n : Topology.node) ->
      if n.Topology.kind = Topology.Switch then
        List.iteri
          (fun i (l : Topology.link) ->
            Hashtbl.replace t.ports l.Topology.link_id (i + 1))
          (Topology.out_links topo n.Topology.id))
    (Topology.nodes topo);
  let env =
    Env.create ~topo
      ~dpid_of_node:(fun node ->
        match (Topology.node topo node).Topology.kind with
        | Topology.Switch -> Some node
        | Topology.Host | Topology.Router -> None)
      ~node_of_dpid:(fun dpid ->
        if dpid >= 0 && dpid < Topology.n_nodes topo then Some dpid else None)
      ~port_of_link:(fun link_id -> Hashtbl.find_opt t.ports link_id)
      ()
  in
  let t = { t with fabric_env = env } in
  (* Agents and control channels. *)
  List.iter
    (fun (n : Topology.node) ->
      if n.Topology.kind = Topology.Switch then begin
        t.n_switches <- t.n_switches + 1;
        let proc = Process.create sched ~name:("of-" ^ n.Topology.name) in
        let channel =
          Connection_manager.control_channel ~latency:channel_latency
            ~name:("openflow " ^ n.Topology.name)
            ~owner_a:proc cm
        in
        let switch_end, ctrl_end = Channel.endpoints channel in
        let ports =
          List.mapi
            (fun i (l : Topology.link) -> (i + 1, l.Topology.link_id))
            (Topology.out_links topo n.Topology.id)
        in
        let agent =
          Switch.create ~trace ?classifier proc ~dpid:n.Topology.id ~ports
            switch_end
        in
        Hashtbl.replace t.agents n.Topology.id agent;
        (* Flow statistics backed by the fluid engine. *)
        Switch.set_flow_stats_provider agent (fun entry ->
            match key_of_match entry.Flow_table.match_ with
            | None -> (entry.Flow_table.packets, entry.Flow_table.bytes)
            | Some key -> (
                match Fluid.find_flow fluid key with
                | None -> (entry.Flow_table.packets, entry.Flow_table.bytes)
                | Some flow ->
                    let bytes =
                      int_of_float (Fluid.delivered_bits fluid flow /. 8.0)
                    in
                    (bytes / 1500, bytes)));
        Switch.set_port_stats_provider agent (fun port ->
            let tx_bytes =
              match Switch.link_of_port agent port with
              | None -> 0
              | Some link_id ->
                  (* Approximate: cumulative bits of flows currently
                     crossing the link. Iterated, not listed — the
                     stats poller runs every polling interval on every
                     port, so this path stays allocation-free. *)
                  let acc = ref 0 in
                  Fluid.iter_flows_on_link fluid link_id (fun f ->
                      acc :=
                        !acc
                        + int_of_float (Fluid.delivered_bits fluid f /. 8.0));
                  !acc
            in
            {
              Ofmsg.ps_port = port;
              ps_rx_packets = 0;
              ps_tx_packets = tx_bytes / 1500;
              ps_rx_bytes = 0;
              ps_tx_bytes = tx_bytes;
            });
        Switch.on_flow_mod agent (fun _fm -> schedule_retry t);
        Switch.on_packet_out agent (fun _po -> schedule_retry t);
        Switch.start agent;
        Controller.connect ctrl ctrl_end
      end)
    (Topology.nodes topo);
  t

let controller t = t.ctrl
let env t = t.fabric_env
let agent t node = Hashtbl.find_opt t.agents node

let route_flow t key ~on_ready =
  let asked = Hashtbl.create 4 in
  match walk t key ~side_effects:true ~asked with
  | Ok path -> on_ready path
  | Error _ -> t.pending <- { key; on_ready; asked } :: t.pending

let resolve_now t key =
  match walk t key ~side_effects:false ~asked:(Hashtbl.create 1) with
  | Ok path -> Some path
  | Error _ -> None

let pending_flows t = List.length t.pending

let packet_ins t =
  Hashtbl.fold (fun _ agent acc -> acc + Switch.packet_ins_sent agent) t.agents 0

let handshaken t = List.length (Controller.switches t.ctrl) = t.n_switches

(* Take the duplex link between two adjacent switches administratively
   down (or up): the agents raise PORT_STATUS and the applications
   reroute around it. *)
let set_link t ~a ~b ~up =
  match Topology.find_link t.fabric_topo ~src:a ~dst:b with
  | None -> false
  | Some fwd -> (
      let rev = Topology.link t.fabric_topo fwd.Topology.peer in
      match (Hashtbl.find_opt t.agents a, Hashtbl.find_opt t.agents b) with
      | Some agent_a, Some agent_b -> (
          match
            ( Switch.port_of_link agent_a fwd.Topology.link_id,
              Switch.port_of_link agent_b rev.Topology.link_id )
          with
          | Some port_a, Some port_b ->
              if up then begin
                Switch.set_port_up agent_a port_a;
                Switch.set_port_up agent_b port_b
              end
              else begin
                Switch.set_port_down agent_a port_a;
                Switch.set_port_down agent_b port_b
              end;
              true
          | None, _ | _, None -> false)
      | None, _ | _, None -> false)

let fail_link t ~a ~b = set_link t ~a ~b ~up:false
let restore_link t ~a ~b = set_link t ~a ~b ~up:true
