lib/controller/app_ecmp.mli: Controller Env Flow_key Horse_net Horse_topo Spf
