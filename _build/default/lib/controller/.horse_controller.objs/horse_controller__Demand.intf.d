lib/controller/demand.mli:
