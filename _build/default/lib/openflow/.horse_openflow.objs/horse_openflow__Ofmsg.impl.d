lib/openflow/ofmsg.ml: Action Bytes Format Horse_net List Ofmatch Printf
