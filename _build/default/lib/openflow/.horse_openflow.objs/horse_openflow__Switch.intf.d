lib/openflow/switch.mli: Bytes Channel Flow_table Horse_emulation Horse_engine Ofmatch Ofmsg Process Trace
