(** Top-level experiment assembly — the OCaml equivalent of Horse's
    Python API.

    An experiment bundles the hybrid scheduler, the Connection
    Manager, the fluid data plane and a trace over one topology.
    Control planes (a {!Routed_fabric}, an {!Sdn_fabric}, or anything
    hand-built from the lower layers) and traffic are attached by the
    caller; {!run} executes and returns the scheduler statistics that
    include the DES/FTI breakdown. *)

open Horse_engine
open Horse_topo
open Horse_dataplane

type t

val create :
  ?config:Sched.config ->
  ?registry:Horse_telemetry.Registry.t ->
  ?solver:Fluid.solver ->
  ?seed:int ->
  Topology.t ->
  t
(** Default scheduler config: 1 ms FTI increment, 1 s quiet timeout.
    Default seed 42. A fresh telemetry registry is created unless one
    is supplied. [?solver] picks the fluid engine's rate solver
    (default the incremental delta solver). *)

val scheduler : t -> Sched.t

(** The scheduler's telemetry registry — every subsystem attached to
    this experiment registers its metrics here; {!run} is bracketed in
    a ["run"] span. *)
val registry : t -> Horse_telemetry.Registry.t
val topology : t -> Topology.t
val cm : t -> Connection_manager.t
val fluid : t -> Fluid.t
val trace : t -> Trace.t
val rng : t -> Rng.t

val at : t -> Time.t -> (unit -> unit) -> unit
(** Schedule setup work at an absolute virtual time (e.g. boot the
    control plane at t = 0). *)

val run : ?until:Time.t -> t -> Sched.stats

val permutation_pairs : t -> Topology.node array -> (Topology.node * Topology.node) array
(** The demonstration's traffic pattern: each host paired with a
    distinct other host (seeded random derangement). *)
