lib/emulation/process.mli: Horse_engine Sched Time
