type accumulator = int

let empty = 0

let fold16 sum =
  let sum = (sum land 0xFFFF) + (sum lsr 16) in
  (sum land 0xFFFF) + (sum lsr 16)

let add_bytes acc buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.add_bytes: range out of bounds";
  let sum = ref acc in
  let i = ref off in
  let last = off + len in
  while !i + 1 < last do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8)
           + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < last then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  fold16 !sum

let add_uint16 acc w = fold16 (acc + (w land 0xFFFF))
let finish acc = lnot (fold16 acc) land 0xFFFF
let of_bytes buf off len = finish (add_bytes empty buf off len)
let verify buf off len = fold16 (add_bytes empty buf off len) = 0xFFFF
