open Horse_net
open Horse_engine
open Horse_topo
module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge
module Histogram = Horse_telemetry.Histogram

type metrics = {
  m_started : Counter.t;
  m_stopped : Counter.t;
  m_recomputes : Counter.t;
  g_active : Gauge.t;
  h_duration : Histogram.t;
  h_recompute_wall : Histogram.t;
}

let make_metrics reg =
  {
    m_started =
      Registry.counter reg ~subsystem:"fluid" ~help:"Fluid flows started"
        "flows_started_total";
    m_stopped =
      Registry.counter reg ~subsystem:"fluid"
        ~help:"Fluid flows stopped or completed" "flows_stopped_total";
    m_recomputes =
      Registry.counter reg ~subsystem:"fluid"
        ~help:"Max-min fair-share reallocations" "recomputes_total";
    g_active =
      Registry.gauge reg ~subsystem:"fluid" ~help:"Currently active fluid flows"
        "active_flows";
    h_duration =
      Registry.histogram reg ~subsystem:"fluid"
        ~help:"Virtual lifetime of stopped flows, seconds" ~lo:1e-4 ~hi:1e3
        "flow_duration_seconds";
    h_recompute_wall =
      Registry.histogram reg ~subsystem:"fluid"
        ~help:"Wall-clock cost of one fair-share recompute, seconds" ~lo:1e-7
        ~hi:1.0 "recompute_wall_seconds";
  }

type finite_state = {
  size : float;
  on_complete : Flow.t -> unit;
  mutable timer : Event_queue.handle option;
}

type t = {
  sched : Sched.t;
  topo : Topology.t;
  m : metrics;
  mutable rev_flows : Flow.t list;  (* newest first, including stopped *)
  mutable n_active : int;
  mutable next_id : int;
  mutable recomputes : int;
  mutable completed_bits : float;  (* delivered by stopped flows *)
  finite : (int, finite_state) Hashtbl.t;  (* flow id -> finite state *)
  aggregate : Horse_stats.Series.t;
  host_series : (int, Horse_stats.Series.t) Hashtbl.t;
  mutable sampler : Sched.recurring option;
}

let create sched topo =
  {
    sched;
    topo;
    m = make_metrics (Sched.registry sched);
    rev_flows = [];
    n_active = 0;
    next_id = 0;
    recomputes = 0;
    completed_bits = 0.0;
    finite = Hashtbl.create 32;
    aggregate = Horse_stats.Series.create ~name:"aggregate-rx-bps" ();
    host_series = Hashtbl.create 32;
    sampler = None;
  }

let topology t = t.topo
let scheduler t = t.sched

let active_flows t =
  List.rev (List.filter (fun (f : Flow.t) -> f.Flow.active) t.rev_flows)

let flow_count t = t.n_active

let find_flow t key =
  List.find_opt
    (fun (f : Flow.t) -> f.Flow.active && Flow_key.equal f.Flow.key key)
    t.rev_flows

(* Integrate a flow's delivered bits up to [now] at its current
   rate. *)
let integrate_flow now (f : Flow.t) =
  if f.Flow.active then begin
    let dt = Time.to_sec (Time.sub now f.Flow.last_integration) in
    if dt > 0.0 then
      f.Flow.delivered_bits <- f.Flow.delivered_bits +. (f.Flow.rate *. dt)
  end;
  f.Flow.last_integration <- Time.max f.Flow.last_integration now

(* Full reallocation: integrate everything at old rates, solve
   max-min over the active flows, then re-aim the completion events of
   finite flows whose ETA changed. *)
let rec recompute t =
  let wall0 = Unix.gettimeofday () in
  let now = Sched.now t.sched in
  (* Stopped flows were integrated when they stopped; only active
     flows accrue bits. *)
  let active = Array.of_list (active_flows t) in
  Array.iter (integrate_flow now) active;
  let inputs =
    Array.map
      (fun (f : Flow.t) ->
        { Fair_share.demand = f.Flow.demand; links = Flow.link_ids f })
      active
  in
  let rates =
    Fair_share.compute
      ~capacity:(fun l -> (Topology.link t.topo l).Topology.capacity)
      inputs
  in
  Array.iteri (fun i (f : Flow.t) -> f.Flow.rate <- rates.(i)) active;
  t.recomputes <- t.recomputes + 1;
  Counter.incr t.m.m_recomputes;
  Array.iter (fun f -> aim_completion t f) active;
  Histogram.add t.m.h_recompute_wall (Unix.gettimeofday () -. wall0)

and aim_completion t (f : Flow.t) =
  match Hashtbl.find_opt t.finite f.Flow.id with
  | None -> ()
  | Some fin ->
      Option.iter Event_queue.cancel fin.timer;
      fin.timer <- None;
      if f.Flow.active then begin
        let remaining = Float.max 0.0 (fin.size -. f.Flow.delivered_bits) in
        let fire at =
          fin.timer <- Some (Sched.schedule_at t.sched at (fun () -> complete t f))
        in
        if remaining <= 0.0 then fire (Sched.now t.sched)
        else if f.Flow.rate > 0.0 then
          fire
            (Time.add (Sched.now t.sched) (Time.of_sec (remaining /. f.Flow.rate)))
      end

and complete t (f : Flow.t) =
  match Hashtbl.find_opt t.finite f.Flow.id with
  | None -> ()
  | Some fin ->
      Hashtbl.remove t.finite f.Flow.id;
      stop_flow t f;
      fin.on_complete f

and stop_flow t (f : Flow.t) =
  if f.Flow.active then begin
    integrate_flow (Sched.now t.sched) f;
    f.Flow.active <- false;
    f.Flow.rate <- 0.0;
    f.Flow.stopped_at <- Some (Sched.now t.sched);
    t.n_active <- t.n_active - 1;
    Counter.incr t.m.m_stopped;
    Gauge.set t.m.g_active (float_of_int t.n_active);
    Histogram.add t.m.h_duration
      (Time.to_sec (Time.sub (Sched.now t.sched) f.Flow.started));
    t.completed_bits <- t.completed_bits +. f.Flow.delivered_bits;
    (match Hashtbl.find_opt t.finite f.Flow.id with
    | Some fin ->
        Option.iter Event_queue.cancel fin.timer;
        Hashtbl.remove t.finite f.Flow.id
    | None -> ());
    recompute t
  end

let check_path path =
  let rec contiguous = function
    | [] | [ _ ] -> true
    | (a : Topology.link) :: (b :: _ as rest) ->
        a.Topology.dst = b.Topology.src && contiguous rest
  in
  if not (contiguous path) then
    invalid_arg "Fluid: discontiguous path"

let start_flow ?(demand = 1e9) t ~key ~path =
  if demand <= 0.0 then invalid_arg "Fluid.start_flow: demand <= 0";
  check_path path;
  let now = Sched.now t.sched in
  let f =
    {
      Flow.id = t.next_id;
      key;
      demand;
      started = now;
      path;
      rate = 0.0;
      delivered_bits = 0.0;
      last_integration = now;
      active = true;
      stopped_at = None;
    }
  in
  t.next_id <- t.next_id + 1;
  t.rev_flows <- f :: t.rev_flows;
  t.n_active <- t.n_active + 1;
  Counter.incr t.m.m_started;
  Gauge.set t.m.g_active (float_of_int t.n_active);
  recompute t;
  f

let start_finite_flow ?demand t ~key ~path ~size_bits ~on_complete =
  if size_bits <= 0.0 then
    invalid_arg "Fluid.start_finite_flow: size <= 0";
  let f = start_flow ?demand t ~key ~path in
  Hashtbl.replace t.finite f.Flow.id
    { size = size_bits; on_complete; timer = None };
  aim_completion t f;
  f

let set_path t (f : Flow.t) path =
  if not f.Flow.active then invalid_arg "Fluid.set_path: flow is stopped";
  check_path path;
  f.Flow.path <- path;
  recompute t

let current_rate _t (f : Flow.t) = if f.Flow.active then f.Flow.rate else 0.0

let delivered_bits t (f : Flow.t) =
  let now = Sched.now t.sched in
  if f.Flow.active then
    let dt = Time.to_sec (Time.sub now f.Flow.last_integration) in
    f.Flow.delivered_bits +. (f.Flow.rate *. Float.max 0.0 dt)
  else f.Flow.delivered_bits

let link_load t link_id =
  List.fold_left
    (fun acc (f : Flow.t) ->
      if f.Flow.active && List.exists (fun l -> l.Topology.link_id = link_id) f.Flow.path
      then acc +. f.Flow.rate
      else acc)
    0.0 t.rev_flows

let link_utilization t link_id =
  link_load t link_id /. (Topology.link t.topo link_id).Topology.capacity

let total_rx_rate t =
  List.fold_left
    (fun acc (f : Flow.t) -> if f.Flow.active then acc +. f.Flow.rate else acc)
    0.0 t.rev_flows

let host_rx_rate t node_id =
  List.fold_left
    (fun acc (f : Flow.t) ->
      if f.Flow.active && Flow.dst_node f = Some node_id then acc +. f.Flow.rate
      else acc)
    0.0 t.rev_flows

let sample t =
  let now = Sched.now t.sched in
  Horse_stats.Series.add t.aggregate now (total_rx_rate t);
  List.iter
    (fun (f : Flow.t) ->
      if f.Flow.active then
        match Flow.dst_node f with
        | None -> ()
        | Some dst ->
            if not (Hashtbl.mem t.host_series dst) then
              Hashtbl.add t.host_series dst
                (Horse_stats.Series.create
                   ~name:(Printf.sprintf "host-%d-rx-bps" dst)
                   ()))
    t.rev_flows;
  Hashtbl.iter
    (fun dst series -> Horse_stats.Series.add series now (host_rx_rate t dst))
    t.host_series

let start_sampling t ~every =
  Option.iter Sched.cancel_recurring t.sampler;
  sample t;
  t.sampler <- Some (Sched.every t.sched every (fun () -> sample t))

let stop_sampling t =
  Option.iter Sched.cancel_recurring t.sampler;
  t.sampler <- None

let aggregate_series t = t.aggregate
let host_series t node_id = Hashtbl.find_opt t.host_series node_id
let recompute_count t = t.recomputes

let total_delivered_bits t =
  List.fold_left
    (fun acc (f : Flow.t) ->
      if f.Flow.active then acc +. delivered_bits t f else acc)
    t.completed_bits t.rev_flows
