(* Tests for horse_telemetry: the registry, spans, the JSON codec and
   the three exporters. *)

module Registry = Horse_telemetry.Registry
module Counter = Registry.Counter
module Gauge = Registry.Gauge
module Histogram = Horse_telemetry.Histogram
module Span = Horse_telemetry.Span
module Clock = Horse_telemetry.Clock
module Export = Horse_telemetry.Export
module Json = Horse_telemetry.Json

let check = Alcotest.check

(* --- registry --------------------------------------------------------- *)

let test_get_or_register () =
  let reg = Registry.create () in
  let a = Registry.counter reg ~subsystem:"bgp" "updates_total" in
  let b = Registry.counter reg ~subsystem:"bgp" "updates_total" in
  Counter.incr a;
  Counter.incr b;
  check Alcotest.int "same cell" 2 (Counter.value a);
  check Alcotest.int "one entry" 1 (Registry.cardinality reg);
  (* Distinct label sets are distinct metrics under one name. *)
  let tx =
    Registry.counter reg ~subsystem:"bgp" ~labels:[ ("dir", "tx") ] "msgs_total"
  in
  let rx =
    Registry.counter reg ~subsystem:"bgp" ~labels:[ ("dir", "rx") ] "msgs_total"
  in
  Counter.incr tx;
  check Alcotest.int "labels separate cells" 0 (Counter.value rx);
  check Alcotest.int "three entries" 3 (Registry.cardinality reg)

let test_name_prefix_and_validation () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~subsystem:"sched" "events_total" in
  ignore c;
  (match Registry.to_list reg with
  | [ e ] ->
      check Alcotest.string "prefixed name" "horse_sched_events_total"
        e.Registry.name
  | _ -> Alcotest.fail "expected one entry");
  Alcotest.check_raises "bad characters rejected"
    (Invalid_argument "Registry: bad metric name Bad-Name") (fun () ->
      ignore (Registry.counter reg ~subsystem:"x" "Bad-Name"))

let test_kind_mismatch () =
  let reg = Registry.create () in
  ignore (Registry.counter reg ~subsystem:"a" "thing");
  let raised =
    try
      ignore (Registry.gauge reg ~subsystem:"a" "thing");
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "kind mismatch raises" true raised

let test_counter_gauge_histogram () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~subsystem:"t" "c_total" in
  Counter.incr c;
  Counter.add c 4;
  check Alcotest.int "counter" 5 (Counter.value c);
  Alcotest.check_raises "counters are monotonic"
    (Invalid_argument "Registry.Counter.add: negative increment") (fun () ->
      Counter.add c (-1));
  let g = Registry.gauge reg ~subsystem:"t" "g" in
  Gauge.set g 2.5;
  Gauge.add g (-1.0);
  check (Alcotest.float 1e-9) "gauge" 1.5 (Gauge.value g);
  let h = Registry.histogram reg ~subsystem:"t" ~lo:1e-3 ~hi:1.0 "h_seconds" in
  Histogram.add h 0.01;
  Histogram.add h 0.02;
  Histogram.add h 5.0;
  check Alcotest.int "histogram count" 3 (Histogram.count h);
  check (Alcotest.float 1e-9) "histogram sum" 5.03 (Histogram.sum h);
  (* The shared cell is findable by full name. *)
  match Registry.find_histogram reg "horse_t_h_seconds" with
  | Some h' -> check Alcotest.int "find_histogram" 3 (Histogram.count h')
  | None -> Alcotest.fail "histogram not found"

(* --- spans ------------------------------------------------------------ *)

let test_span_nesting () =
  let tr = Span.create_tracker () in
  let outer = Span.enter tr ~name:"outer" ~at_us:0L in
  let inner = Span.enter tr ~name:"inner" ~at_us:100L in
  Span.exit tr inner ~at_us:300L;
  Span.exit tr outer ~at_us:1000L;
  match Span.records tr with
  | [ o; i ] ->
      check Alcotest.string "outer first (virtual start order)" "outer"
        o.Span.name;
      check Alcotest.int "outer depth" 0 o.Span.depth;
      check Alcotest.int "inner depth" 1 i.Span.depth;
      check (Alcotest.option Alcotest.string) "inner parent" (Some "outer")
        i.Span.parent;
      check (Alcotest.float 1e-9) "inner virtual duration" 200e-6
        (Span.virtual_duration_s i);
      check (Alcotest.float 1e-9) "outer virtual duration" 1e-3
        (Span.virtual_duration_s o);
      check Alcotest.bool "wall monotone" true (Span.wall_duration_s o >= 0.0)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let test_span_implicit_close_and_with_span () =
  let tr = Span.create_tracker () in
  let outer = Span.enter tr ~name:"outer" ~at_us:0L in
  let _inner = Span.enter tr ~name:"inner" ~at_us:10L in
  (* Exiting the outer span closes the still-open inner one. *)
  Span.exit tr outer ~at_us:50L;
  check Alcotest.int "both closed" 2 (List.length (Span.records tr));
  check Alcotest.int "none open" 0 (Span.open_count tr);
  let clock = ref 0L in
  let r =
    Span.with_span tr ~name:"work" ~now_us:(fun () -> !clock) (fun () ->
        clock := 42L;
        "result")
  in
  check Alcotest.string "with_span returns" "result" r;
  check Alcotest.int "with_span recorded" 3 (List.length (Span.records tr))

(* --- Wall clock source ------------------------------------------------ *)

let test_clock_source () =
  (* Every wall-clock read in the tree goes through Clock; swapping
     the source makes wall timing deterministic for tests. *)
  let real = Clock.now () in
  check Alcotest.bool "default source is real time" true (real > 0.0);
  let fake = ref 100.0 in
  let inside =
    Clock.with_source
      (fun () -> !fake)
      (fun () ->
        let a = Clock.now () in
        fake := 107.5;
        let b = Clock.now () in
        (a, b))
  in
  check (Alcotest.pair (Alcotest.float 0.0) (Alcotest.float 0.0))
    "scoped source is read on every call" (100.0, 107.5) inside;
  check Alcotest.bool "source restored after with_source" true
    (Clock.now () >= real);
  (* Restored even when the thunk raises. *)
  (try
     Clock.with_source (fun () -> 1.0) (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "source restored after raise" true (Clock.now () >= real)

(* --- JSON codec ------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "horse \"x\"\nline");
        ("n", Json.Int 42);
        ("f", Json.Float 1.5);
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v' ->
      check Alcotest.string "roundtrip" (Json.to_string v) (Json.to_string v');
      (match Json.member "n" v' with
      | Some (Json.Int 42) -> ()
      | _ -> Alcotest.fail "member lookup");
      check Alcotest.bool "trailing junk rejected" true
        (Result.is_error (Json.parse "{} trailing"));
      check Alcotest.string "nan encodes as null" "null"
        (Json.to_string (Json.Float Float.nan))

(* --- exporters -------------------------------------------------------- *)

(* A small fixed registry whose exporter output is stable. *)
let golden_registry () =
  let reg = Registry.create () in
  let c =
    Registry.counter reg ~subsystem:"bgp" ~help:"Messages"
      ~labels:[ ("dir", "tx") ] "messages_total"
  in
  Counter.add c 7;
  let g = Registry.gauge reg ~subsystem:"sched" ~help:"Mode" "mode" in
  Gauge.set g 1.0;
  ignore (Span.enter (Registry.spans reg) ~name:"run" ~at_us:0L);
  reg

let test_prometheus_golden () =
  let reg = golden_registry () in
  let out = Format.asprintf "%a" Export.prometheus reg in
  let expected_lines =
    [
      "# HELP horse_bgp_messages_total Messages";
      "# TYPE horse_bgp_messages_total counter";
      "horse_bgp_messages_total{dir=\"tx\"} 7";
      "# HELP horse_sched_mode Mode";
      "# TYPE horse_sched_mode gauge";
      "horse_sched_mode 1";
    ]
  in
  List.iter
    (fun line ->
      let found =
        List.exists (String.equal line) (String.split_on_char '\n' out)
      in
      if not found then Alcotest.failf "missing line %S in:\n%s" line out)
    expected_lines

let test_histogram_prometheus_expansion () =
  let reg = Registry.create () in
  let h =
    Registry.histogram reg ~subsystem:"x" ~buckets_per_decade:1 ~lo:0.1 ~hi:10.0
      "h_seconds"
  in
  Histogram.add h 0.05;
  (* underflow: still counted in every bucket *)
  Histogram.add h 0.5;
  Histogram.add h 99.0;
  (* overflow: only in +Inf *)
  let out = Format.asprintf "%a" Export.prometheus reg in
  let has s =
    let lines = String.split_on_char '\n' out in
    List.exists (String.equal s) lines
  in
  check Alcotest.bool "le=1 cumulative" true
    (has "horse_x_h_seconds_bucket{le=\"1\"} 2");
  check Alcotest.bool "+Inf equals count" true
    (has "horse_x_h_seconds_bucket{le=\"+Inf\"} 3");
  check Alcotest.bool "count line" true (has "horse_x_h_seconds_count 3")

let test_jsonl_golden () =
  let reg = golden_registry () in
  let out = Format.asprintf "%a" Export.jsonl reg in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  check Alcotest.bool "at least the two metrics" true (List.length lines >= 2);
  List.iter
    (fun line ->
      match Export.validate_jsonl_line line with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid line %S: %s" line e)
    lines;
  (* First line is the counter, with its labels. *)
  match Json.parse (List.hd lines) with
  | Ok j ->
      (match Json.member "type" j with
      | Some (Json.String "counter") -> ()
      | _ -> Alcotest.fail "first line should be the counter");
      (match Json.member "value" j with
      | Some (Json.Int 7) -> ()
      | _ -> Alcotest.fail "counter value 7")
  | Error e -> Alcotest.failf "unparseable first line: %s" e

let test_json_snapshot () =
  let reg = golden_registry () in
  match Export.json reg with
  | Json.Obj fields ->
      check Alcotest.bool "has metrics" true (List.mem_assoc "metrics" fields);
      check Alcotest.bool "has spans" true (List.mem_assoc "spans" fields)
  | _ -> Alcotest.fail "expected an object"

let () =
  Alcotest.run "horse_telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "get-or-register" `Quick test_get_or_register;
          Alcotest.test_case "naming" `Quick test_name_prefix_and_validation;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "counter/gauge/histogram" `Quick
            test_counter_gauge_histogram;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "implicit close + with_span" `Quick
            test_span_implicit_close_and_with_span;
        ] );
      ("clock", [ Alcotest.test_case "swappable source" `Quick test_clock_source ]);
      ("json", [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip ]);
      ( "export",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "histogram expansion" `Quick
            test_histogram_prometheus_expansion;
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "json snapshot" `Quick test_json_snapshot;
        ] );
    ]
