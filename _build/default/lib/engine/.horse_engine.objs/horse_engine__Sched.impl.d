lib/engine/sched.ml: Array Event_queue Format List Option Time Unix Wall
