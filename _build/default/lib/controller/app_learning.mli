(** A classic L2 learning switch application.

    Not part of the paper's demonstration, but the canonical first SDN
    app; included as the quickstart example's control plane and as a
    second exerciser of the PACKET_IN / PACKET_OUT / FLOW_MOD path
    with real Ethernet frames. *)

open Horse_net

type t

val install : ?priority:int -> ?idle_timeout_s:int -> Controller.t -> t
(** Defaults: priority 5, idle timeout 60 s. *)

val lookup : t -> dpid:int -> Mac.t -> int option
(** The port this app has learned for a MAC on a switch. *)

val macs_learned : t -> int
(** Total (dpid, mac) bindings currently known. *)

val floods : t -> int
val unicasts : t -> int
