lib/dataplane/flow.ml: Flow_key Format Horse_engine Horse_net Horse_topo List Time
