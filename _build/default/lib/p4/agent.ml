open Horse_engine
open Horse_emulation

type t = {
  proc : Process.t;
  engine : Interp.t;
  ports : (int * int) list;
  endpoint : Channel.endpoint;
  trace : Trace.t option;
  mutable writes : int;
  mutable nacks : int;
}

let tracef t fmt =
  match t.trace with
  | Some trace ->
      Trace.addf trace ~at:(Sched.now (Process.scheduler t.proc)) ~label:"p4" fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let reply t xid resp = Channel.send t.endpoint (Runtime.encode_response ~xid resp)

let handle t xid req =
  match (req : Runtime.request) with
  | Runtime.Hello -> reply t xid Runtime.Ack
  | Runtime.Insert entry -> (
      match Interp.insert t.engine entry with
      | Ok () ->
          t.writes <- t.writes + 1;
          reply t xid Runtime.Ack
      | Error msg ->
          t.nacks <- t.nacks + 1;
          reply t xid (Runtime.Nack msg))
  | Runtime.Delete { d_table; d_key } ->
      if Interp.delete t.engine ~table:d_table ~key:d_key then begin
        t.writes <- t.writes + 1;
        reply t xid Runtime.Ack
      end
      else begin
        t.nacks <- t.nacks + 1;
        reply t xid (Runtime.Nack "no such entry")
      end
  | Runtime.Counter_read c -> (
      match Interp.counter t.engine c with
      | v -> reply t xid (Runtime.Counter_value (c, v))
      | exception Invalid_argument msg ->
          t.nacks <- t.nacks + 1;
          reply t xid (Runtime.Nack msg))

let receive t bytes =
  if Process.is_alive t.proc then
    match Runtime.decode_request bytes with
    | Ok (xid, req) -> handle t xid req
    | Error msg -> tracef t "runtime decode error: %s" msg

let create ?trace proc ~program ~ports endpoint =
  let port_numbers = List.map fst ports in
  if List.length (List.sort_uniq Int.compare port_numbers) <> List.length ports
  then Error "Agent.create: duplicate port numbers"
  else
    match Interp.create program with
    | Error _ as e -> e
    | Ok engine ->
        let t =
          { proc; engine; ports; endpoint; trace; writes = 0; nacks = 0 }
        in
        Channel.set_receiver endpoint (fun bytes -> receive t bytes);
        Ok t

let interp t = t.engine
let dpid_ports t = t.ports
let link_of_port t port = List.assoc_opt port t.ports

let port_of_link t link =
  List.find_map (fun (p, l) -> if l = link then Some p else None) t.ports

let process t fields = Interp.exec t.engine fields
let writes_applied t = t.writes
let nacks_sent t = t.nacks
