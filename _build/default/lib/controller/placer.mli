(** Hedera's large-flow placement algorithms.

    Both take, per flow, an estimated demand and the candidate
    (equal-cost) paths, and choose one path per flow so that demands
    fit the link capacities as well as possible.

    {!global_first_fit} is the paper's primary scheduler: greedily
    assign each flow to the first candidate path with enough spare
    reservation on every hop. {!annealing} is the paper's alternative
    probabilistic search, included as an extension and exercised by
    the ablation benchmarks. *)

open Horse_topo

type request = {
  tag : int;  (** caller's flow identifier *)
  demand_bps : float;
  candidates : Spf.path list;
}

type placement = { p_tag : int; path : Spf.path option }
(** [path = None]: no candidate fits — leave the flow where it is. *)

val global_first_fit :
  capacity:(int -> float) -> request list -> placement list
(** Reservation-based greedy placement, requests processed in the
    given order (Hedera processes in detection order). *)

val annealing :
  capacity:(int -> float) ->
  rng:Horse_engine.Rng.t ->
  ?iters:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  request list ->
  placement list
(** Minimises total link over-subscription by simulated annealing over
    the joint path assignment (defaults: 1000 iterations, T₀ = 1 Gbps
    equivalent, geometric cooling 0.995). Deterministic given the
    RNG. Flows without candidates get [path = None]. *)

val oversubscription :
  capacity:(int -> float) -> (float * Spf.path) list -> float
(** Total excess demand over capacity across links, in bps — the
    annealing energy function, exposed for tests. *)
