lib/openflow/ofmatch.mli: Bytes Flow_key Format Horse_net Ipv4 Mac Prefix Wire
