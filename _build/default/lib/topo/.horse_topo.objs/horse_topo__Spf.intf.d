lib/topo/spf.mli: Topology
