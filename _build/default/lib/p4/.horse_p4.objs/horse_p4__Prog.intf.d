lib/p4/prog.mli: Format
