open Horse_net.Wire

type request =
  | Hello
  | Insert of Interp.entry
  | Delete of { d_table : string; d_key : Interp.key_match list }
  | Counter_read of string

type response =
  | Ack
  | Nack of string
  | Counter_value of string * int

(* Wire helpers: strings are u16-length-prefixed; ints are 8 bytes
   big-endian (values fit 62 bits). *)

let string_size s = 2 + String.length s

let write_string buf off s =
  set_u16 buf off (String.length s);
  Bytes.blit_string s 0 buf (off + 2) (String.length s);
  off + string_size s

let read_string buf off =
  let* len = u16 buf off in
  let* b = bytes len buf (off + 2) in
  Ok (Bytes.to_string b, off + 2 + len)

let set_u62 buf off v =
  set_u32_int buf off (v lsr 31);
  set_u32_int buf (off + 4) (v land 0x7FFFFFFF)

let u62 buf off =
  let* hi = u32_int buf off in
  let* lo = u32_int buf (off + 4) in
  Ok ((hi lsl 31) lor lo)

let key_size = 17 (* kind byte + two u62 *)

let write_key buf off k =
  (match (k : Interp.key_match) with
  | Interp.K_exact v ->
      set_u8 buf off 0;
      set_u62 buf (off + 1) v;
      set_u62 buf (off + 9) 0
  | Interp.K_lpm (v, len) ->
      set_u8 buf off 1;
      set_u62 buf (off + 1) v;
      set_u62 buf (off + 9) len
  | Interp.K_ternary (v, m) ->
      set_u8 buf off 2;
      set_u62 buf (off + 1) v;
      set_u62 buf (off + 9) m);
  off + key_size

let read_key buf off =
  let* kind = u8 buf off in
  let* a = u62 buf (off + 1) in
  let* b = u62 buf (off + 9) in
  let* k =
    match kind with
    | 0 -> Ok (Interp.K_exact a)
    | 1 -> Ok (Interp.K_lpm (a, b))
    | 2 -> Ok (Interp.K_ternary (a, b))
    | n -> Error (Printf.sprintf "p4runtime: key kind %d" n)
  in
  Ok (k, off + key_size)

let write_key_list buf off keys =
  set_u16 buf off (List.length keys);
  List.fold_left (fun off k -> write_key buf off k) (off + 2) keys

let read_key_list buf off =
  let* n = u16 buf off in
  let rec go i off acc =
    if i = n then Ok (List.rev acc, off)
    else
      let* k, off' = read_key buf off in
      go (i + 1) off' (k :: acc)
  in
  go 0 (off + 2) []

(* Header: magic 'P4' (2), type (1), xid (4). *)
let header_size = 7

let frame type_ xid body_size writer =
  let buf = Bytes.make (header_size + body_size) '\000' in
  set_u8 buf 0 (Char.code 'P');
  set_u8 buf 1 (Char.code '4');
  set_u8 buf 2 type_;
  set_u32_int buf 3 xid;
  writer buf header_size;
  buf

let check_header buf =
  let* m0 = u8 buf 0 in
  let* m1 = u8 buf 1 in
  if m0 <> Char.code 'P' || m1 <> Char.code '4' then Error "p4runtime: bad magic"
  else
    let* type_ = u8 buf 2 in
    let* xid = u32_int buf 3 in
    Ok (type_, xid)

let encode_request ~xid = function
  | Hello -> frame 0 xid 0 (fun _ _ -> ())
  | Insert e ->
      let size =
        string_size e.Interp.e_table
        + 2
        + (key_size * List.length e.Interp.key)
        + 4 (* priority *)
        + string_size e.Interp.action
        + 2
        + (8 * List.length e.Interp.args)
      in
      frame 1 xid size (fun buf off ->
          let off = write_string buf off e.Interp.e_table in
          let off = write_key_list buf off e.Interp.key in
          set_u32_int buf off e.Interp.priority;
          let off = write_string buf (off + 4) e.Interp.action in
          set_u16 buf off (List.length e.Interp.args);
          ignore
            (List.fold_left
               (fun off a ->
                 set_u62 buf off a;
                 off + 8)
               (off + 2) e.Interp.args))
  | Delete { d_table; d_key } ->
      let size = string_size d_table + 2 + (key_size * List.length d_key) in
      frame 2 xid size (fun buf off ->
          let off = write_string buf off d_table in
          ignore (write_key_list buf off d_key))
  | Counter_read c ->
      frame 3 xid (string_size c) (fun buf off -> ignore (write_string buf off c))

let decode_request buf =
  let* type_, xid = check_header buf in
  let off = header_size in
  let* req =
    match type_ with
    | 0 -> Ok Hello
    | 1 ->
        let* e_table, off = read_string buf off in
        let* key, off = read_key_list buf off in
        let* priority = u32_int buf off in
        let* action, off = read_string buf (off + 4) in
        let* n_args = u16 buf off in
        let rec go i off acc =
          if i = n_args then Ok (List.rev acc)
          else
            let* a = u62 buf off in
            go (i + 1) (off + 8) (a :: acc)
        in
        let* args = go 0 (off + 2) [] in
        Ok (Insert { Interp.e_table; key; priority; action; args })
    | 2 ->
        let* d_table, off = read_string buf off in
        let* d_key, _ = read_key_list buf off in
        Ok (Delete { d_table; d_key })
    | 3 ->
        let* c, _ = read_string buf off in
        Ok (Counter_read c)
    | n -> Error (Printf.sprintf "p4runtime: request type %d" n)
  in
  Ok (xid, req)

let encode_response ~xid = function
  | Ack -> frame 16 xid 0 (fun _ _ -> ())
  | Nack msg ->
      frame 17 xid (string_size msg) (fun buf off ->
          ignore (write_string buf off msg))
  | Counter_value (c, v) ->
      frame 18 xid
        (string_size c + 8)
        (fun buf off ->
          let off = write_string buf off c in
          set_u62 buf off v)

let decode_response buf =
  let* type_, xid = check_header buf in
  let off = header_size in
  let* resp =
    match type_ with
    | 16 -> Ok Ack
    | 17 ->
        let* msg, _ = read_string buf off in
        Ok (Nack msg)
    | 18 ->
        let* c, off = read_string buf off in
        let* v = u62 buf off in
        Ok (Counter_value (c, v))
    | n -> Error (Printf.sprintf "p4runtime: response type %d" n)
  in
  Ok (xid, resp)

let request_equal a b =
  match (a, b) with
  | Hello, Hello -> true
  | Insert x, Insert y ->
      String.equal x.Interp.e_table y.Interp.e_table
      && Interp.entry_key_equal x.Interp.key y.Interp.key
      && x.Interp.priority = y.Interp.priority
      && String.equal x.Interp.action y.Interp.action
      && List.equal Int.equal x.Interp.args y.Interp.args
  | Delete x, Delete y ->
      String.equal x.d_table y.d_table && Interp.entry_key_equal x.d_key y.d_key
  | Counter_read x, Counter_read y -> String.equal x y
  | (Hello | Insert _ | Delete _ | Counter_read _), _ -> false

let response_equal a b =
  match (a, b) with
  | Ack, Ack -> true
  | Nack x, Nack y -> String.equal x y
  | Counter_value (c, v), Counter_value (c', v') -> String.equal c c' && v = v'
  | (Ack | Nack _ | Counter_value _), _ -> false

let pp_request fmt = function
  | Hello -> Format.pp_print_string fmt "HELLO"
  | Insert e -> Format.fprintf fmt "INSERT %s -> %s" e.Interp.e_table e.Interp.action
  | Delete { d_table; _ } -> Format.fprintf fmt "DELETE %s" d_table
  | Counter_read c -> Format.fprintf fmt "COUNTER %s" c

let pp_response fmt = function
  | Ack -> Format.pp_print_string fmt "ACK"
  | Nack msg -> Format.fprintf fmt "NACK %s" msg
  | Counter_value (c, v) -> Format.fprintf fmt "COUNTER %s=%d" c v
