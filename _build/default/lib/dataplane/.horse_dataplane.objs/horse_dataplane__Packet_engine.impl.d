lib/dataplane/packet_engine.ml: Array Bytes Flow_key Fwd Headers Horse_engine Horse_net Horse_topo Ipv4 Mac Packet Sched Stdlib Time Topology
