examples/bgp_wan.mli:
