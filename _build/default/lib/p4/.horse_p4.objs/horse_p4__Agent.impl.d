lib/p4/agent.ml: Channel Format Horse_emulation Horse_engine Int Interp List Process Runtime Sched Trace
