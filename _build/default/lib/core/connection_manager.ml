open Horse_engine
open Horse_emulation

type t = {
  sched : Sched.t;
  cm_trace : Trace.t;
  mutable channels : int;
  mutable messages : int;
  mutable bytes : int;
  mutable last_activity : Time.t;
}

let create sched trace =
  {
    sched;
    cm_trace = trace;
    channels = 0;
    messages = 0;
    bytes = 0;
    last_activity = Time.zero;
  }

let scheduler t = t.sched
let trace t = t.cm_trace

let control_channel ?latency ?(name = "control") t =
  let channel = Channel.create t.sched ?latency () in
  t.channels <- t.channels + 1;
  Trace.addf t.cm_trace ~at:(Sched.now t.sched) ~label:"cm"
    "channel %d created (%s)" t.channels name;
  Channel.set_observer channel (fun _dir msg ->
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + Bytes.length msg;
      t.last_activity <- Sched.now t.sched;
      Sched.control_activity ~reason:name t.sched);
  channel

let channels_created t = t.channels
let messages_observed t = t.messages
let bytes_observed t = t.bytes
let quiet_since t = t.last_activity
