(** Registry exporters.

    Three views over the same snapshot: Prometheus text exposition
    (for scraping / diffing), a JSON-lines event stream (one metric or
    span per line, for pipelines), and a single JSON object (the
    [BENCH_*.json] artefacts). The human "run report" lives in
    [Horse_stats.Report], where the ASCII renderers are. *)

val prometheus : Format.formatter -> Registry.t -> unit
(** Prometheus text format: [# HELP]/[# TYPE] headers, one sample line
    per metric, [_bucket]/[_sum]/[_count] expansion for histograms. *)

val jsonl : Format.formatter -> Registry.t -> unit
(** One JSON object per line: every metric, then every completed
    span. *)

val json : Registry.t -> Json.t
(** The whole snapshot as one object: [{"metrics": [...], "spans":
    [...]}]. *)

val to_file : path:string -> (Format.formatter -> Registry.t -> unit) ->
  Registry.t -> unit
(** [to_file ~path render reg] writes [render]'s output to [path]
    (e.g. [to_file ~path Export.prometheus reg]). *)

val validate_jsonl_line : string -> (unit, string) result
(** Checks one line of {!jsonl} output: parses as JSON and carries a
    known ["type"]. Used by the [@telemetry-smoke] alias. *)
