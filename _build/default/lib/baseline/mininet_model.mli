(** The Figure 3 comparator: a container-based-emulator cost model.

    Mininet's cost on the demonstration workload has two components:

    - {b topology bring-up}: forking a shell per host, creating
      network namespaces and veth pairs, starting daemons. We cannot
      fork namespaces in this environment, so bring-up is an explicit
      {e model}: per-element constants (defaults measured in published
      Mininet studies and of the magnitude the paper's VM would see)
      summed and reported — never slept.
    - {b execution}: every packet of every 1 Gbps UDP flow traverses
      real network stacks. This part is {e really executed} here by
      {!Horse_dataplane.Packet_engine}: per-packet store-and-forward
      DES with optional real frame encode/decode per hop. Execution
      wall time is measured, not modeled.

    Both Horse and this baseline run the identical scenario (same
    topology, same seeded traffic permutation, same ECMP hashing), so
    the Figure 3 comparison is like for like. *)

open Horse_engine

(** Bring-up cost constants, seconds per element. *)
type creation_model = {
  per_switch : float;
  per_host : float;
  per_link : float;
  base : float;
}

val default_creation_model : creation_model
(** 0.30 s/switch, 0.12 s/host, 0.025 s/link, 1.0 s base — the
    magnitude reported for stock Mininet on a small VM. *)

val creation_seconds : creation_model -> n_switches:int -> n_hosts:int -> n_links:int -> float

type result = {
  pods : int;
  creation_modeled_s : float;  (** modeled bring-up (documented above) *)
  creation_real_s : float;  (** measured: building graph + tables *)
  exec_wall_s : float;  (** measured: running the packet engine *)
  exec_realtime_s : float;
      (** modeled wall time of real-time emulation for the full
          experiment: virtual duration × contention overhead. A
          container emulator executes in real time; overload degrades
          {e fidelity} (see [delivered_bits]), not speed. *)
  virtual_duration : Time.t;
  delivered_bits : float;
  offered_bits : float;
  packets_delivered : int;
  packets_dropped : int;
  hops_processed : int;
}

val run_fat_tree :
  ?creation:creation_model ->
  ?pkt_bytes:int ->
  ?rate:float ->
  ?stack_work:bool ->
  ?seed:int ->
  ?contention:float ->
  ?realtime_duration:Time.t ->
  pods:int ->
  duration:Time.t ->
  unit ->
  result
(** Runs the demonstration workload (each server sends one constant
    UDP flow to another server, random derangement) through the
    packet engine on a [pods]-pod Fat-Tree with static ECMP routing.
    [duration] is the window the packet engine {e actually executes}
    (for cost and fidelity measurement); [realtime_duration] (default:
    [duration]) is the full experiment length used for the real-time
    wall-clock model: [exec_realtime_s = realtime_duration ×
    contention]. Defaults: 1500-byte packets, 1 Gbps per flow,
    [stack_work = true], seed 42, contention 1.2 (CPU oversubscription
    on the paper's 4-core VM). *)

val pp_result : Format.formatter -> result -> unit
