(** Arms a {!Plan} on a scheduler against a fabric.

    The injector turns the plan into concrete scheduler events:
    explicit events fire at their timestamps, generators are expanded
    {e at arm time} into a deterministic flap sequence using one
    {!Horse_engine.Rng.split_key} stream per fault site. Application
    goes through a {!target} — a record of callbacks the fabrics
    provide — so the injector knows nothing about BGP, OSPF or SDN.

    Observability: every injection increments
    [horse_faults_injected_total] (labeled by fault kind) and opens a
    telemetry span; reconvergence — the virtual time from an
    injection until the target reports converged again (FIBs complete,
    sessions re-established) — is sampled by a periodic check and
    recorded in the [horse_faults_reconvergence_seconds] histogram and
    in {!reconvergence}. *)

open Horse_engine

type target = {
  describe : string;  (** for traces/reports, e.g. ["routed-fabric"] *)
  link_down : a:string -> b:string -> bool;
  link_up : a:string -> b:string -> bool;
  node_crash : string -> bool;
  node_restart : string -> bool;
  session_reset : a:string -> b:string -> bool;
  impair :
    a:string ->
    b:string ->
    rng:Rng.t ->
    Horse_emulation.Channel.impairment option -> bool;
      (** [None] clears; the rng is the site's seeded stream and must
          be handed to {!Horse_emulation.Channel.set_impairment} *)
  links : unit -> (string * string) list;
      (** every failable link, by endpoint names — used to expand
          [Partition]/[Heal] into per-link cuts *)
  converged : unit -> bool;
      (** "the control plane has healed": FIBs complete and sessions /
          adjacencies re-established, as the fabric defines it *)
}
(** Callbacks return whether the fault applied ([false] = unknown
    name or inapplicable state; recorded as skipped, not an error). *)

type record = {
  at : Time.t;
  label : string;
  applied : bool;
  cause : Causal.id;
      (** root of the fault's causal subtree; {!Causal.none} when
          tracing is off or the action did not apply *)
}

type t

val arm : ?check_every:Time.t -> Sched.t -> target:target -> Plan.t -> t
(** Expands and schedules the whole plan now. [check_every] (default
    50 ms virtual) is the reconvergence sampling period — recorded
    reconvergence times are upper bounds quantized by it. *)

val injected : t -> int
(** Faults applied so far. *)

val skipped : t -> int

val pending : t -> int
(** Injections not yet matched by a converged observation. *)

val last_fault_at : t -> Time.t option

val trace : t -> record list
(** Chronological injection trace; with equal seed + plan two runs
    produce identical traces (the determinism acceptance check). *)

val trace_labels : t -> string list
(** ["<at_us> <label>"] lines — convenient for equality assertions. *)

val reconvergence : t -> (string * Time.t * Time.t) list
(** [(label, injected_at, reconverged_at)], chronological by
    injection. A fault injected while the fabric is still healing
    from an earlier one shares its reconvergence observation. *)

val report_json : t -> Horse_telemetry.Json.t
(** The per-fault record for run reports and bench artifacts. *)
